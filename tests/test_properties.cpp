// Cross-cutting property suites: each TEST_P sweep checks one invariant
// from DESIGN.md section 5 across a parameterized family of instances.

#include <gtest/gtest.h>

#include <cmath>

#include "bdd/bdd.hpp"
#include "bdd/bdd_decompose.hpp"
#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "core/column_cop.hpp"
#include "core/cop_solvers.hpp"
#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "core/row_cubic_cop.hpp"
#include "funcs/registry.hpp"
#include "ising/exhaustive.hpp"
#include "ising/poly_solvers.hpp"
#include "ising/qubo.hpp"
#include "lut/decomposed_lut.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

BooleanMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  return m;
}

ColumnSetting random_setting(std::size_t r, std::size_t c, Rng& rng) {
  ColumnSetting s;
  s.v1 = BitVec(r);
  s.v2 = BitVec(r);
  s.t = BitVec(c);
  for (std::size_t i = 0; i < r; ++i) {
    s.v1.set(i, rng.next_bool());
    s.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < c; ++j) {
    s.t.set(j, rng.next_bool());
  }
  return s;
}

// ----------------------------------------------------------------------
// Invariant: Theorems 1 and 2 accept exactly the same matrices, across
// shapes with different row/column balances.
struct ShapeSeed {
  std::size_t r;
  std::size_t c;
  int seed;
};

class TheoremEquivalence : public ::testing::TestWithParam<ShapeSeed> {};

TEST_P(TheoremEquivalence, RowAndColumnConditionsAgree) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.seed) * 977 + p.r * 31 + p.c);
  int accepted = 0;
  for (int trial = 0; trial < 120; ++trial) {
    // Mix random and planted-decomposable matrices.
    BooleanMatrix m = random_matrix(p.r, p.c, rng);
    if (trial % 3 == 0) {
      m = realize(random_setting(p.r, p.c, rng));
    }
    const bool row_ok = check_row_decomposition(m).has_value();
    const bool col_ok = check_column_decomposition(m).has_value();
    ASSERT_EQ(row_ok, col_ok);
    accepted += col_ok;
    if (col_ok) {
      // Both witnesses must realize the matrix itself.
      EXPECT_EQ(realize(*check_row_decomposition(m)), m);
      EXPECT_EQ(realize(*check_column_decomposition(m)), m);
    }
  }
  EXPECT_GT(accepted, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TheoremEquivalence,
    ::testing::Values(ShapeSeed{2, 2, 0}, ShapeSeed{2, 8, 1},
                      ShapeSeed{8, 2, 2}, ShapeSeed{4, 4, 3},
                      ShapeSeed{3, 16, 4}, ShapeSeed{16, 3, 5}));

// ----------------------------------------------------------------------
// Invariant: the QUBO view of the core COP (binary variables, before the
// spin substitution) matches the ColumnCop objective and its Ising model:
// objective == qubo.value(bits) == qubo.to_ising().energy(spins).
class QuboChain : public ::testing::TestWithParam<int> {};

TEST_P(QuboChain, ObjectiveQuboIsingAgree) {
  Rng rng(static_cast<std::uint64_t>(5000 + GetParam()));
  const std::size_t r = 3 + GetParam() % 3;
  const std::size_t c = 4 + GetParam() % 4;
  const auto m = random_matrix(r, c, rng);
  std::vector<double> probs(r * c, 1.0 / static_cast<double>(r * c));
  const auto cop = ColumnCop::separate(m, probs);

  // Rebuild the COP as an explicit QUBO over (v1, v2, t) bits using Eq. (3).
  Qubo q(cop.num_spins());
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const double cost0 = cop.cell_cost(i, j, false);
      const double cost1 = cop.cell_cost(i, j, true);
      // cost = cost0 + (cost1-cost0) * [(1-t) v1 + t v2].
      const double g = cost1 - cost0;
      q.add_constant(cost0);
      q.add_linear(cop.v1_spin(i), g);
      q.add_quadratic(cop.v1_spin(i), cop.t_spin(j), -g);
      q.add_quadratic(cop.v2_spin(i), cop.t_spin(j), g);
    }
  }

  const IsingModel from_qubo = q.to_ising();
  const IsingModel direct = cop.to_ising();
  for (int trial = 0; trial < 50; ++trial) {
    const auto s = random_setting(r, c, rng);
    const auto spins = cop.encode(s);
    const auto bits = Qubo::spins_to_binary(spins);
    const double obj = cop.objective(s);
    EXPECT_NEAR(q.value(bits), obj, 1e-12);
    EXPECT_NEAR(from_qubo.energy(spins), obj, 1e-12);
    EXPECT_NEAR(direct.energy(spins), obj, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboChain, ::testing::Range(0, 6));

// ----------------------------------------------------------------------
// Invariant: hardware evaluation == algebraic composition == matrix
// realization, across partitions.
class LutConsistency : public ::testing::TestWithParam<int> {};

TEST_P(LutConsistency, LutComposeMatrixAgree) {
  Rng rng(static_cast<std::uint64_t>(6000 + GetParam()));
  const unsigned n = 6 + GetParam() % 3;
  const unsigned free_size = 2 + GetParam() % 3;
  const auto w = InputPartition::random(n, free_size, rng);
  const auto s = random_setting(w.num_rows(), w.num_cols(), rng);

  const BitVec composed = compose_output(s, w);
  const auto lut = DecomposedLut::from_column_setting(w, s);
  EXPECT_EQ(lut.truth_table(), composed);

  const auto m = realize(s);
  for (std::uint64_t x = 0; x < composed.size(); x += 3) {
    EXPECT_EQ(composed.get(x), m.at(w.row_of(x), w.col_of(x)));
    EXPECT_EQ(lut.evaluate(x), composed.get(x));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LutConsistency, ::testing::Range(0, 9));

// ----------------------------------------------------------------------
// Invariant: alternating the two closed-form resets is monotone
// non-increasing in the objective, for both modes.
class AlternationMonotone : public ::testing::TestWithParam<int> {};

TEST_P(AlternationMonotone, EveryHalfStepImproves) {
  Rng rng(static_cast<std::uint64_t>(7000 + GetParam()));
  const std::size_t r = 5;
  const std::size_t c = 9;
  const auto m = random_matrix(r, c, rng);
  std::vector<double> probs(r * c, 1.0 / 45.0);
  ColumnCop cop = [&] {
    if (GetParam() % 2 == 0) {
      return ColumnCop::separate(m, probs);
    }
    std::vector<double> d(r * c);
    for (auto& v : d) {
      v = std::floor(rng.next_double(-7.0, 7.0));
    }
    return ColumnCop::joint(m, probs, d, 4.0);
  }();

  auto s = random_setting(r, c, rng);
  double prev = cop.objective(s);
  for (int step = 0; step < 12; ++step) {
    if (step % 2 == 0) {
      cop.reset_optimal_t(s);
    } else {
      cop.reset_optimal_v(s);
    }
    const double now = cop.objective(s);
    ASSERT_LE(now, prev + 1e-12) << "step " << step;
    prev = now;
  }
  EXPECT_GE(prev, cop.ideal_bound() - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlternationMonotone, ::testing::Range(0, 10));

// ----------------------------------------------------------------------
// Invariant: the cubic row formulation and the quadratic column
// formulation have identical exact optima across shapes.
class FormulationEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(FormulationEquivalence, CubicAndQuadraticOptimaCoincide) {
  Rng rng(static_cast<std::uint64_t>(8000 + GetParam()));
  const std::size_t r = 2 + GetParam() % 2;
  const std::size_t c = 3 + GetParam() % 3;
  const auto m = random_matrix(r, c, rng);
  std::vector<double> probs(r * c, 1.0 / static_cast<double>(r * c));

  const auto cubic = RowCubicCop::separate(m, probs);
  const auto cubic_opt = solve_exhaustive_poly(cubic.to_poly_ising());

  const auto col = ColumnCop::separate(m, probs);
  const auto col_opt = solve_exhaustive(col.to_ising());

  EXPECT_NEAR(cubic_opt.energy, col_opt.energy, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FormulationEquivalence,
                         ::testing::Range(0, 8));

// ----------------------------------------------------------------------
// Invariant: in joint mode, the objective committed for the last optimized
// output (bit 0 of the final round) IS the final MED -- the D terms fold in
// every other output's final approximation.
class LastCommitIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(LastCommitIdentity, LastJointObjectiveEqualsFinalMed) {
  const unsigned n = 7;  // continuous-only sweep: odd n excludes arithmetic
  const unsigned m = paper_output_bits(GetParam(), n);
  const auto exact = make_benchmark_table(GetParam(), n, m);
  const auto dist = InputDistribution::uniform(n);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 2;
  params.mode = DecompMode::kJoint;
  params.seed = 5;
  const AlternatingCoreSolver solver(4);
  const auto res = run_dalta(exact, dist, params, solver);
  EXPECT_NEAR(res.outputs[0].objective, res.med, 1e-9)
      << "the final commit's joint objective must equal the final MED";
}

INSTANTIATE_TEST_SUITE_P(Continuous, LastCommitIdentity,
                         ::testing::Values("cos", "tan", "exp", "ln", "erf",
                                           "denoise"));

// ----------------------------------------------------------------------
// Invariant: BDD column multiplicity == matrix distinct-column count,
// across widths and free sizes.
struct BddSweep {
  unsigned n;
  unsigned free_size;
};

class BddMultiplicity : public ::testing::TestWithParam<BddSweep> {};

TEST_P(BddMultiplicity, MatchesMatrixEverywhere) {
  const auto p = GetParam();
  Rng rng(static_cast<std::uint64_t>(9000 + p.n * 13 + p.free_size));
  BddManager mgr(p.n);
  BitVec bits(std::uint64_t{1} << p.n);
  for (std::uint64_t x = 0; x < bits.size(); ++x) {
    bits.set(x, rng.next_bool());
  }
  const auto f = mgr.from_truth_table(bits);
  TruthTable tt(p.n, 1);
  tt.set_output(0, bits);
  for (int trial = 0; trial < 8; ++trial) {
    const auto w = InputPartition::random(p.n, p.free_size, rng);
    const auto matrix = BooleanMatrix::from_function(tt, 0, w);
    EXPECT_EQ(bdd_column_multiplicity(mgr, f, w),
              matrix.distinct_columns().size());
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BddMultiplicity,
                         ::testing::Values(BddSweep{5, 2}, BddSweep{6, 2},
                                           BddSweep{6, 3}, BddSweep{8, 3},
                                           BddSweep{8, 4}, BddSweep{9, 4}));

// ----------------------------------------------------------------------
// Invariant: every inexact solver's objective is sandwiched between the
// exhaustive optimum and the trivial all-zero setting, and the reported
// stats.objective equals the recomputed objective of the returned setting.
class SolverSandwich : public ::testing::TestWithParam<int> {};

TEST_P(SolverSandwich, AllSolversWithinBounds) {
  Rng rng(static_cast<std::uint64_t>(10000 + GetParam()));
  const std::size_t r = 4;
  const std::size_t c = 5;
  const auto m = random_matrix(r, c, rng);
  std::vector<double> probs(r * c, 1.0 / 20.0);
  const auto cop = ColumnCop::separate(m, probs);

  CoreSolveStats es;
  (void)ExhaustiveCoreSolver().solve(cop, 0, &es);

  ColumnSetting zero;
  zero.v1 = BitVec(r);
  zero.v2 = BitVec(r);
  zero.t = BitVec(c);
  const double trivial = cop.objective(zero);

  const SolverRegistry& registry = SolverRegistry::global();
  const auto ising = registry.make_from_spec("prop,n=5");
  const auto alt = registry.make_from_spec("alt,restarts=4");
  const auto greedy = registry.make("dalta");
  const auto ba = registry.make("ba");
  const auto bnb = registry.make("ilp");
  const CoreCopSolver* solvers[] = {ising.get(), alt.get(), greedy.get(),
                                    ba.get(), bnb.get()};
  for (const auto* solver : solvers) {
    CoreSolveStats stats;
    const auto s = solver->solve(
        cop, static_cast<std::uint64_t>(GetParam()), &stats);
    EXPECT_NEAR(stats.objective, cop.objective(s), 1e-12) << solver->name();
    EXPECT_GE(stats.objective, es.objective - 1e-12) << solver->name();
    EXPECT_LE(stats.objective, trivial + 1e-12)
        << solver->name() << " worse than the all-zero setting";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverSandwich, ::testing::Range(0, 8));

}  // namespace
}  // namespace adsd
