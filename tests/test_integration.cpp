#include <gtest/gtest.h>

#include <cmath>

#include "boolean/error_metrics.hpp"
#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "lut/decomposed_lut.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

/// End-to-end: quantize a function, decompose it with the proposed Ising
/// solver, realize it as LUT hardware, and validate every reported metric
/// against the hardware's own outputs.
TEST(Integration, FullFlowOnExpBenchmark) {
  const unsigned n = 8;
  const unsigned m = 8;
  const auto exact = make_benchmark_table("exp", n, m);
  const auto dist = InputDistribution::uniform(n);

  DaltaParams params;
  params.free_size = 4;
  params.num_partitions = 8;
  params.rounds = 1;
  params.mode = DecompMode::kJoint;
  params.seed = 1;
  const auto solver = SolverRegistry::global().make_from_spec(
      "prop,n=" + std::to_string(n));

  const auto res = run_dalta(exact, dist, params, *solver);

  // The approximation must be sane: bounded MED, LUT network consistent.
  EXPECT_LT(res.med, 64.0) << "MED above 2^6 for an 8-bit word means the "
                              "decomposition is broken";
  const auto net = res.to_lut_network();
  EXPECT_EQ(net.to_truth_table(), res.approx);

  // Hardware-level metric recomputation.
  double med = 0.0;
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    const auto a = static_cast<std::int64_t>(exact.word(x));
    const auto b = static_cast<std::int64_t>(net.evaluate(x));
    med += dist.prob(x) * static_cast<double>(std::llabs(a - b));
  }
  EXPECT_NEAR(med, res.med, 1e-9);

  // Fig. 1 saving: 2^8 -> 2^4 + 2^5 bits per output.
  EXPECT_EQ(net.total_flat_size_bits(), m * 256u);
  EXPECT_EQ(net.total_size_bits(), m * (16u + 32u));
}

TEST(Integration, AllTenBenchmarksRunAtReducedScale) {
  const unsigned n = 8;
  const auto dist = InputDistribution::uniform(n);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.mode = DecompMode::kJoint;
  params.seed = 3;
  const AlternatingCoreSolver solver(4);

  for (const auto& bench : benchmark_suite()) {
    const unsigned m = paper_output_bits(bench.name, n);
    const auto exact = make_benchmark_table(bench.name, n, m);
    const auto res = run_dalta(exact, dist, params, solver);
    EXPECT_EQ(res.outputs.size(), m) << bench.name;
    EXPECT_GE(res.med, 0.0) << bench.name;
    EXPECT_LE(res.error_rate, 1.0) << bench.name;
    const auto net = res.to_lut_network();
    EXPECT_EQ(net.to_truth_table(), res.approx) << bench.name;
  }
}

TEST(Integration, IsingSolverBeatsGreedyHeuristicOnAverage) {
  // The headline qualitative claim of the paper at reduced scale: the
  // bSB-based solver reaches lower MED than the fast greedy baseline on the
  // same candidate partitions.
  const unsigned n = 8;
  const auto dist = InputDistribution::uniform(n);
  DaltaParams params;
  params.free_size = 4;
  params.num_partitions = 6;
  params.rounds = 1;
  params.mode = DecompMode::kJoint;
  params.seed = 5;

  double ising_total = 0.0;
  double greedy_total = 0.0;
  for (const char* name : {"cos", "exp", "ln"}) {
    const auto exact = make_benchmark_table(name, n, n);
    const auto ising = SolverRegistry::global().make_from_spec(
        "prop,n=" + std::to_string(n));
    const auto greedy = SolverRegistry::global().make("dalta");
    ising_total += run_dalta(exact, dist, params, *ising).med;
    greedy_total += run_dalta(exact, dist, params, *greedy).med;
  }
  EXPECT_LE(ising_total, greedy_total + 1e-9)
      << "proposed solver should not lose to the greedy baseline in total";
}

TEST(Integration, NonUniformDistributionChangesOptimum) {
  // Weight mass on the low half of the domain: the decomposition should
  // achieve lower weighted MED there than the uniform solution evaluated
  // under the same weights, or at least not be worse.
  const unsigned n = 7;
  const auto exact = make_benchmark_table("tan", n, n);
  std::vector<double> weights(exact.num_patterns(), 1.0);
  for (std::uint64_t x = 0; x < weights.size() / 2; ++x) {
    weights[x] = 50.0;
  }
  const auto skewed = InputDistribution::from_weights(std::move(weights));
  const auto uniform = InputDistribution::uniform(n);

  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 6;
  params.rounds = 1;
  params.mode = DecompMode::kJoint;
  params.seed = 11;
  const AlternatingCoreSolver solver(6);

  const auto res_skewed = run_dalta(exact, skewed, params, solver);
  const auto res_uniform = run_dalta(exact, uniform, params, solver);
  const double cross =
      mean_error_distance(exact, res_uniform.approx, skewed);
  EXPECT_LE(res_skewed.med, cross * 1.10 + 1e-9)
      << "optimizing under the target distribution should pay off";
}

TEST(Integration, SolverIterationsReflectDynamicStop) {
  const unsigned n = 7;
  const auto exact = make_benchmark_table("erf", n, n);
  const auto dist = InputDistribution::uniform(n);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.mode = DecompMode::kSeparate;
  params.seed = 13;

  const std::string spec = "prop,n=" + std::to_string(n) + ",max-iter=20000";
  const auto with_stop = run_dalta(
      exact, dist, params,
      *SolverRegistry::global().make_from_spec(spec));
  const auto without = run_dalta(
      exact, dist, params,
      *SolverRegistry::global().make_from_spec(spec + ",stop=0"));
  EXPECT_LT(with_stop.solver_iterations, without.solver_iterations);
  EXPECT_GT(with_stop.early_stops, 0u);
  EXPECT_EQ(without.early_stops, 0u);
}

}  // namespace
}  // namespace adsd
