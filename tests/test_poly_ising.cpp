#include <gtest/gtest.h>

#include <cmath>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "core/column_cop.hpp"
#include "core/cop_solvers.hpp"
#include "core/row_cubic_cop.hpp"
#include "ising/exhaustive.hpp"
#include "ising/model.hpp"
#include "ising/poly_model.hpp"
#include "ising/poly_solvers.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

std::vector<std::int8_t> spins_from_bits(std::uint64_t bits, std::size_t n) {
  std::vector<std::int8_t> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = ((bits >> i) & 1) ? std::int8_t{1} : std::int8_t{-1};
  }
  return s;
}

// ---------------------------------------------------------------- SpinPoly

TEST(SpinPoly, ConstantAndVariableEvaluate) {
  const auto c = SpinPoly::constant(2.5);
  const auto v = SpinPoly::variable(1);
  const auto spins = spins_from_bits(0b10, 2);
  EXPECT_DOUBLE_EQ(c.evaluate(spins), 2.5);
  EXPECT_DOUBLE_EQ(v.evaluate(spins), 1.0);
  EXPECT_DOUBLE_EQ(SpinPoly::variable(0).evaluate(spins), -1.0);
}

TEST(SpinPoly, BinaryIndicator) {
  const auto b = SpinPoly::binary(0);
  EXPECT_DOUBLE_EQ(b.evaluate(spins_from_bits(1, 1)), 1.0);
  EXPECT_DOUBLE_EQ(b.evaluate(spins_from_bits(0, 1)), 0.0);
}

TEST(SpinPoly, SquareOfVariableIsOne) {
  const auto v = SpinPoly::variable(2);
  const auto sq = v * v;
  EXPECT_EQ(sq.num_terms(), 1u);
  EXPECT_DOUBLE_EQ(sq.evaluate(spins_from_bits(0, 3)), 1.0);
}

TEST(SpinPoly, ArithmeticMatchesEvaluation) {
  Rng rng(3);
  const auto a = SpinPoly::binary(0);
  const auto b = SpinPoly::binary(1);
  const auto v = SpinPoly::binary(2);
  // P = b + a*v - 2*a*b*v, the row-based predictor.
  auto abv = a * b * v;
  const SpinPoly p = b + a * v - (abv + abv);
  for (std::uint64_t bits = 0; bits < 8; ++bits) {
    const auto spins = spins_from_bits(bits, 3);
    const double av = a.evaluate(spins);
    const double bv = b.evaluate(spins);
    const double vv = v.evaluate(spins);
    EXPECT_NEAR(p.evaluate(spins), bv + av * vv - 2 * av * bv * vv, 1e-12);
  }
}

TEST(SpinPoly, CancellationRemovesTerms) {
  auto p = SpinPoly::variable(0) - SpinPoly::variable(0);
  EXPECT_EQ(p.num_terms(), 0u);
}

TEST(SpinPoly, ScaleByZeroClears) {
  auto p = SpinPoly::variable(0) + SpinPoly::constant(1.0);
  p.scale(0.0);
  EXPECT_EQ(p.num_terms(), 0u);
}

TEST(SpinPoly, AddToModelRoundTrips) {
  const auto a = SpinPoly::binary(0);
  const auto b = SpinPoly::binary(1);
  const SpinPoly p = a * b + SpinPoly::constant(0.25);
  PolyIsingModel m(2);
  p.add_to(m, 2.0);
  m.finalize();
  for (std::uint64_t bits = 0; bits < 4; ++bits) {
    const auto spins = spins_from_bits(bits, 2);
    EXPECT_NEAR(m.energy(spins), 2.0 * p.evaluate(spins), 1e-12);
  }
}

// ----------------------------------------------------------- PolyIsingModel

TEST(PolyIsingModel, RepeatedVariablesCancel) {
  PolyIsingModel m(3);
  m.add_term({1, 1}, 5.0);     // sigma^2 = 1 -> constant
  m.add_term({0, 2, 2}, 3.0);  // -> sigma_0
  m.finalize();
  EXPECT_DOUBLE_EQ(m.constant(), 5.0);
  EXPECT_EQ(m.max_order(), 1u);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b001, 3)), 5.0 + 3.0);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b000, 3)), 5.0 - 3.0);
}

TEST(PolyIsingModel, DuplicateTermsMerge) {
  PolyIsingModel m(2);
  m.add_term({0, 1}, 1.0);
  m.add_term({1, 0}, 2.0);
  m.finalize();
  EXPECT_EQ(m.num_terms(), 1u);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b11, 2)), 3.0);
}

TEST(PolyIsingModel, MatchesQuadraticModelOnConvertedInstance) {
  Rng rng(7);
  IsingModel quad(6);
  PolyIsingModel poly(6);
  for (std::size_t i = 0; i < 6; ++i) {
    const double h = rng.next_double(-1.0, 1.0);
    quad.set_bias(i, h);
    poly.add_term({i}, -h);  // E = -sum h sigma ...
    for (std::size_t j = i + 1; j < 6; ++j) {
      if (rng.next_bool()) {
        const double jv = rng.next_double(-1.0, 1.0);
        quad.add_coupling(i, j, jv);
        poly.add_term({i, j}, -jv);
      }
    }
  }
  quad.finalize();
  poly.finalize();
  for (std::uint64_t bits = 0; bits < 64; ++bits) {
    const auto spins = spins_from_bits(bits, 6);
    EXPECT_NEAR(quad.energy(spins), poly.energy(spins), 1e-12);
  }
}

TEST(PolyIsingModel, FlipDeltaMatchesEnergyDifference) {
  Rng rng(11);
  PolyIsingModel m(8);
  for (int t = 0; t < 30; ++t) {
    std::vector<std::size_t> vars;
    const std::size_t order = 1 + rng.next_below(3);
    for (std::size_t v = 0; v < order; ++v) {
      vars.push_back(rng.next_below(8));
    }
    m.add_term(std::move(vars), rng.next_double(-1.0, 1.0));
  }
  m.finalize();
  for (int trial = 0; trial < 40; ++trial) {
    auto spins = spins_from_bits(rng.next_u64(), 8);
    const std::size_t i = rng.next_below(8);
    const double before = m.energy(spins);
    const double delta = m.flip_delta(spins, i);
    spins[i] = static_cast<std::int8_t>(-spins[i]);
    EXPECT_NEAR(m.energy(spins) - before, delta, 1e-12);
  }
}

TEST(PolyIsingModel, GradientMatchesFiniteDifference) {
  Rng rng(13);
  PolyIsingModel m(5);
  m.add_term({0}, 0.7);
  m.add_term({0, 1}, -0.4);
  m.add_term({1, 2, 3}, 1.3);
  m.add_term({0, 2, 4}, -0.9);
  m.finalize();
  std::vector<double> x(5);
  for (auto& xi : x) {
    xi = rng.next_double(-1.0, 1.0);
  }
  std::vector<double> g(5);
  m.gradient(x, g);
  const double eps = 1e-6;
  for (std::size_t i = 0; i < 5; ++i) {
    auto energy_at = [&](double xi) {
      // Multilinear evaluation by direct term expansion.
      double e = m.constant();
      std::vector<double> xv = x;
      xv[i] = xi;
      // Recompute using gradient identity: E is multilinear, so evaluate
      // numerically via the polynomial through SpinPoly is overkill; use
      // central differences on a helper lambda instead.
      // Terms are private; approximate E via the known structure:
      e = 0.7 * xv[0] - 0.4 * xv[0] * xv[1] + 1.3 * xv[1] * xv[2] * xv[3] -
          0.9 * xv[0] * xv[2] * xv[4];
      return e;
    };
    const double fd =
        (energy_at(x[i] + eps) - energy_at(x[i] - eps)) / (2 * eps);
    EXPECT_NEAR(g[i], fd, 1e-6);
  }
}

TEST(PolyIsingModel, CoeffRms) {
  PolyIsingModel m(3);
  m.add_term({0}, 3.0);
  m.add_term({0, 1, 2}, -4.0);
  m.add_constant(100.0);  // constant excluded from the rms
  m.finalize();
  EXPECT_NEAR(m.coeff_rms(), std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
  PolyIsingModel empty(2);
  empty.finalize();
  EXPECT_DOUBLE_EQ(empty.coeff_rms(), 0.0);
}

TEST(PolyIsingModel, Validation) {
  EXPECT_THROW(PolyIsingModel(0), std::invalid_argument);
  PolyIsingModel m(2);
  EXPECT_THROW(m.add_term({5}, 1.0), std::out_of_range);
  EXPECT_THROW((void)m.energy(spins_from_bits(0, 2)), std::logic_error);
}

// ------------------------------------------------------------ Poly solvers

PolyIsingModel random_cubic(std::size_t n, Rng& rng) {
  PolyIsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.add_term({i}, rng.next_double(-0.5, 0.5));
  }
  for (int t = 0; t < 24; ++t) {
    std::size_t a = rng.next_below(n);
    std::size_t b = rng.next_below(n);
    std::size_t c = rng.next_below(n);
    if (a != b && b != c && a != c) {
      m.add_term({a, b, c}, rng.next_double(-1.0, 1.0));
    }
  }
  m.finalize();
  return m;
}

TEST(PolySolvers, ExhaustiveMatchesBruteForce) {
  Rng rng(17);
  const auto m = random_cubic(9, rng);
  const auto res = solve_exhaustive_poly(m);
  double best = 1e300;
  for (std::uint64_t bits = 0; bits < 512; ++bits) {
    best = std::min(best, m.energy(spins_from_bits(bits, 9)));
  }
  EXPECT_NEAR(res.energy, best, 1e-9);
}

TEST(PolySolvers, SbPolyNearGroundOnCubicInstances) {
  Rng rng(19);
  int hits = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto m = random_cubic(10, rng);
    const auto exact = solve_exhaustive_poly(m);
    SbParams p;
    p.max_iterations = 2000;
    p.seed = 100 + trial;
    const auto res = solve_sb_poly(m, p);
    EXPECT_GE(res.energy, exact.energy - 1e-9);
    // Cubic landscapes are rugged; require closeness, not exact hits.
    EXPECT_LE(res.energy,
              exact.energy + 0.35 * std::fabs(exact.energy) + 0.5);
    hits += std::fabs(res.energy - exact.energy) < 1e-9;
  }
  EXPECT_GE(hits, 2);
}

TEST(PolySolvers, SaPolyNearGround) {
  Rng rng(23);
  const auto m = random_cubic(10, rng);
  const auto exact = solve_exhaustive_poly(m);
  SaParams p;
  p.sweeps = 600;
  p.seed = 5;
  const auto res = solve_sa_poly(m, p);
  EXPECT_GE(res.energy, exact.energy - 1e-9);
  EXPECT_LE(res.energy, exact.energy + 1.5);
}

TEST(PolySolvers, SbPolyAgreesWithQuadraticSbOnQuadraticInstance) {
  // A quadratic instance expressed both ways must give the same trajectory
  // quality class (not bit-identical spins, but both near the optimum).
  Rng rng(29);
  IsingModel quad(10);
  PolyIsingModel poly(10);
  for (std::size_t i = 0; i < 10; ++i) {
    for (std::size_t j = i + 1; j < 10; ++j) {
      if (rng.next_bool()) {
        const double jv = rng.next_double(-1.0, 1.0);
        quad.add_coupling(i, j, jv);
        poly.add_term({i, j}, -jv);
      }
    }
  }
  quad.finalize();
  poly.finalize();
  const auto exact = solve_exhaustive(quad);
  SbParams p;
  p.max_iterations = 2000;
  p.seed = 3;
  const auto a = solve_sb(quad, p);
  const auto b = solve_sb_poly(poly, p);
  EXPECT_LE(a.energy, exact.energy + 1.0);
  EXPECT_LE(b.energy, exact.energy + 1.0);
}

TEST(PolySolvers, DynamicStopWorks) {
  Rng rng(31);
  const auto m = random_cubic(8, rng);
  SbParams p;
  p.max_iterations = 100000;
  p.stop.enabled = true;
  p.stop.sample_interval = 10;
  p.stop.window = 10;
  p.stop.epsilon = 1e-8;
  p.seed = 7;
  const auto res = solve_sb_poly(m, p);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.iterations, 100000u);
}

TEST(PolySolvers, SaPolyDynamicStop) {
  Rng rng(33);
  const auto m = random_cubic(8, rng);
  SaParams p;
  p.sweeps = 100000;
  p.beta_start = 1.0;
  p.beta_end = 1000.0;
  p.seed = 11;
  p.stop.enabled = true;
  p.stop.sample_interval = 1;
  p.stop.window = 20;
  p.stop.epsilon = 1e-10;
  const auto res = solve_sa_poly(m, p);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.iterations, 100000u);
}

TEST(PolySolvers, Validation) {
  PolyIsingModel unfinalized(3);
  unfinalized.add_term({0, 1}, 1.0);
  SbParams sp;
  EXPECT_THROW((void)solve_sb_poly(unfinalized, sp), std::invalid_argument);
  SaParams sa;
  EXPECT_THROW((void)solve_sa_poly(unfinalized, sa), std::invalid_argument);
  EXPECT_THROW((void)solve_exhaustive_poly(unfinalized),
               std::invalid_argument);
  PolyIsingModel big(25);
  big.finalize();
  EXPECT_THROW((void)solve_exhaustive_poly(big), std::invalid_argument);
}

// ------------------------------------------------------------- RowCubicCop

BooleanMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  return m;
}

TEST(RowCubicCop, ModelIsThirdOrder) {
  Rng rng(37);
  const auto m = random_matrix(3, 4, rng);
  const auto cop =
      RowCubicCop::separate(m, std::vector<double>(12, 1.0 / 12.0));
  const auto model = cop.to_poly_ising();
  EXPECT_EQ(model.max_order(), 3u)
      << "the row-based COP must need a third-order model (Sec. 3.1)";
  EXPECT_EQ(model.num_spins(), 4u + 2u * 3u);
}

TEST(RowCubicCop, EnergyEqualsObjectiveEverywhere) {
  Rng rng(41);
  const auto m = random_matrix(3, 4, rng);
  const auto cop =
      RowCubicCop::separate(m, std::vector<double>(12, 1.0 / 12.0));
  const auto model = cop.to_poly_ising();
  for (std::uint64_t bits = 0; bits < (1u << cop.num_spins()); ++bits) {
    const auto spins = spins_from_bits(bits, cop.num_spins());
    const RowSetting s = cop.decode(spins);
    EXPECT_NEAR(model.energy(spins), cop.objective(s), 1e-12);
  }
}

TEST(RowCubicCop, EncodeDecodeRoundTrip) {
  Rng rng(43);
  const auto m = random_matrix(4, 5, rng);
  const auto cop =
      RowCubicCop::separate(m, std::vector<double>(20, 0.05));
  RowSetting s;
  s.pattern = BitVec(5);
  s.types.resize(4);
  for (std::size_t j = 0; j < 5; ++j) {
    s.pattern.set(j, rng.next_bool());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    s.types[i] = static_cast<RowType>(rng.next_below(4));
  }
  const auto spins = cop.encode(s);
  const RowSetting back = cop.decode(spins);
  EXPECT_EQ(back.pattern, s.pattern);
  EXPECT_EQ(back.types, s.types);
}

TEST(RowCubicCop, CubicOptimumEqualsColumnCopOptimum) {
  // Theorems 1 and 2 describe the same decomposable set, so the exact
  // optima of the two formulations coincide.
  Rng rng(47);
  for (int trial = 0; trial < 5; ++trial) {
    const auto m = random_matrix(3, 4, rng);
    const std::vector<double> probs(12, 1.0 / 12.0);
    const auto cubic = RowCubicCop::separate(m, probs);
    const auto cubic_res = solve_exhaustive_poly(cubic.to_poly_ising());
    const auto col = ColumnCop::separate(m, probs);
    const ExhaustiveCoreSolver exact;
    CoreSolveStats cs;
    (void)exact.solve(col, 0, &cs);
    EXPECT_NEAR(cubic_res.energy, cs.objective, 1e-12);
  }
}

TEST(RowCubicCop, SbPolySolvesDecomposableExactly) {
  Rng rng(53);
  const auto w = InputPartition::trivial(6, 2);
  TruthTable tt(6, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cop = RowCubicCop::separate(
      m, std::vector<double>(m.rows() * m.cols(), 1.0 / 64.0));
  const auto model = cop.to_poly_ising();
  SbParams p;
  p.max_iterations = 3000;
  p.seed = 5;
  const auto res = solve_sb_poly(model, p);
  const RowSetting s = cop.decode(res.spins);
  EXPECT_NEAR(cop.objective(s), 0.0, 1e-12);
}

}  // namespace
}  // namespace adsd
