// Tests for the dispatched force-kernel layer (DESIGN.md §4.6): cpuid
// dispatch and its fallback chain on masked feature sets, registry/CLI
// kernel selection, the dense-plane materialization in
// IsingModel::finalize(), and the layer's central contract — every
// dispatched variant (explicit-SIMD CSR and dense fast path alike)
// produces bit-identical force planes, solve results, and DALTA runs.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/column_cop.hpp"
#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/continuous.hpp"
#include "ising/bsb.hpp"
#include "ising/bsb_batch.hpp"
#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

using kernels::ForceKernel;

IsingModel random_model(std::size_t n, double density, Rng& rng) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_bias(i, rng.next_double(-1.0, 1.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < density) {
        m.add_coupling(i, j, rng.next_double(-1.0, 1.0));
      }
    }
  }
  m.finalize();
  return m;
}

/// The n = 9 column-COP Ising model of the paper: near-half dense, which
/// sits far below the measured dense-path crossover (~0.95), so no dense
/// plane is materialized and auto-dispatch stays on the CSR kernels.
IsingModel column_cop_model() {
  const auto exact = make_continuous_table(continuous_spec("exp"), 9, 9);
  const auto w = InputPartition::trivial(9, 4);
  const auto m = BooleanMatrix::from_function(exact, 0, w);
  const auto dist = InputDistribution::uniform(9);
  const auto probs = matrix_probs(dist, w);
  Rng rng(17);
  std::vector<double> d(m.rows() * m.cols());
  for (auto& v : d) {
    v = std::floor(rng.next_double(-6.0, 6.0));
  }
  const auto cop = ColumnCop::joint(m, probs, d, 2.0);
  return cop.to_ising();
}

SbParams quick_params(std::uint64_t seed) {
  SbParams p;
  p.max_iterations = 200;
  p.seed = seed;
  return p;
}

CpuFeatures no_features() { return CpuFeatures{}; }

CpuFeatures avx2_features() {
  CpuFeatures f;
  f.avx2 = true;
  f.fma = true;
  return f;
}

CpuFeatures avx512_features() {
  CpuFeatures f = avx2_features();
  f.avx512f = true;
  return f;
}

// ------------------------------------------------------------ name parsing

TEST(ForceKernelNames, RoundTrip) {
  for (ForceKernel k :
       {ForceKernel::kAuto, ForceKernel::kScalar, ForceKernel::kAvx2,
        ForceKernel::kAvx512, ForceKernel::kDense}) {
    EXPECT_EQ(kernels::parse_force_kernel(kernels::force_kernel_name(k)), k);
  }
}

TEST(ForceKernelNames, UnknownNameThrowsListingValidNames) {
  try {
    kernels::parse_force_kernel("sse9");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("sse9"), std::string::npos);
    EXPECT_NE(what.find("avx2"), std::string::npos);
    EXPECT_NE(what.find("dense"), std::string::npos);
  }
}

// ---------------------------------------------------------------- dispatch

TEST(ForceKernelDispatch, NoFeaturesResolvesScalar) {
  const auto sel =
      kernels::select_force_kernel(ForceKernel::kAuto, no_features(), false);
  EXPECT_EQ(sel.kind, ForceKernel::kScalar);
  EXPECT_STREQ(sel.name, "scalar");
  ASSERT_NE(sel.continuous, nullptr);
  ASSERT_NE(sel.discrete, nullptr);
}

TEST(ForceKernelDispatch, SimdRequestsFallBackToScalarWithoutFeatures) {
  // A masked feature set must walk the whole chain down to scalar even when
  // the SIMD code is compiled in: the OS/CPU probe is the authority.
  for (ForceKernel k : {ForceKernel::kAvx2, ForceKernel::kAvx512}) {
    const auto sel = kernels::select_force_kernel(k, no_features(), false);
    EXPECT_EQ(sel.kind, ForceKernel::kScalar);
    EXPECT_STREQ(sel.name, "scalar");
  }
}

TEST(ForceKernelDispatch, Avx512RequestFallsBackToAvx2) {
  if (!kernels::force_kernel_compiled(ForceKernel::kAvx2)) {
    GTEST_SKIP() << "AVX2 kernels not compiled into this binary";
  }
  const auto sel = kernels::select_force_kernel(ForceKernel::kAvx512,
                                                avx2_features(), false);
  EXPECT_EQ(sel.kind, ForceKernel::kAvx2);
  EXPECT_STREQ(sel.name, "avx2");
}

TEST(ForceKernelDispatch, AutoPicksWidestSupportedIsa) {
  if (kernels::force_kernel_compiled(ForceKernel::kAvx512)) {
    const auto sel = kernels::select_force_kernel(ForceKernel::kAuto,
                                                  avx512_features(), false);
    EXPECT_EQ(sel.kind, ForceKernel::kAvx512);
    EXPECT_STREQ(sel.name, "avx512");
  }
  if (kernels::force_kernel_compiled(ForceKernel::kAvx2)) {
    const auto sel = kernels::select_force_kernel(ForceKernel::kAuto,
                                                  avx2_features(), false);
    EXPECT_EQ(sel.kind, ForceKernel::kAvx2);
    EXPECT_STREQ(sel.name, "avx2");
  }
}

TEST(ForceKernelDispatch, Avx2NeedsFmaToo) {
  // The AVX2 translation unit is built with -mavx2 -mfma, so a CPU with
  // AVX2 but no FMA must not dispatch into it.
  CpuFeatures f;
  f.avx2 = true;
  f.fma = false;
  const auto sel = kernels::select_force_kernel(ForceKernel::kAvx2, f, false);
  EXPECT_EQ(sel.kind, ForceKernel::kScalar);
}

TEST(ForceKernelDispatch, AutoPrefersDenseWhenPlaneAvailable) {
  const auto sel =
      kernels::select_force_kernel(ForceKernel::kAuto, no_features(), true);
  EXPECT_EQ(sel.kind, ForceKernel::kDense);
  EXPECT_STREQ(sel.name, "dense-scalar");
}

TEST(ForceKernelDispatch, DenseNameCarriesIsaTier) {
  if (!kernels::force_kernel_compiled(ForceKernel::kAvx2)) {
    GTEST_SKIP() << "AVX2 kernels not compiled into this binary";
  }
  const auto sel = kernels::select_force_kernel(ForceKernel::kDense,
                                                avx2_features(), true);
  EXPECT_EQ(sel.kind, ForceKernel::kDense);
  EXPECT_STREQ(sel.name, "dense-avx2");
}

TEST(ForceKernelDispatch, DenseRequestWithoutPlaneFallsBackToCsr) {
  const auto sel = kernels::select_force_kernel(ForceKernel::kDense,
                                                no_features(), false);
  EXPECT_EQ(sel.kind, ForceKernel::kScalar);
  EXPECT_STREQ(sel.name, "scalar");
}

TEST(ForceKernelDispatch, ExplicitCsrRequestIgnoresDensePlane) {
  const auto sel = kernels::select_force_kernel(ForceKernel::kScalar,
                                                avx512_features(), true);
  EXPECT_EQ(sel.kind, ForceKernel::kScalar);
  EXPECT_STREQ(sel.name, "scalar");
}

TEST(ForceKernelDispatch, SelectableKernelsResolveToThemselves) {
  for (bool dense : {false, true}) {
    const auto kinds = kernels::selectable_force_kernels(dense);
    ASSERT_FALSE(kinds.empty());
    EXPECT_EQ(kinds.front(), ForceKernel::kScalar);
    for (ForceKernel k : kinds) {
      const auto sel = kernels::select_force_kernel(k, cpu_features(), dense);
      EXPECT_EQ(sel.kind, k) << kernels::force_kernel_name(k);
    }
  }
}

// ---------------------------------------------------------------- registry

TEST(ForceKernelRegistry, PropAcceptsKernelKey) {
  for (const char* name : {"auto", "scalar", "avx2", "avx512", "dense"}) {
    EXPECT_NO_THROW(SolverRegistry::global().make_from_spec(
        std::string("prop,kernel=") + name));
  }
}

TEST(ForceKernelRegistry, PropRejectsBogusKernel) {
  EXPECT_THROW(SolverRegistry::global().make_from_spec("prop,kernel=sse9"),
               std::invalid_argument);
}

// ------------------------------------------------------------- dense plane

TEST(DensePlane, MaterializedAboveThresholdAndMatchesCsr) {
  Rng rng(31);
  const auto model = random_model(40, 0.98, rng);
  ASSERT_TRUE(model.has_dense_plane());
  const std::size_t stride = model.dense_stride();
  EXPECT_GE(stride, model.num_spins());
  EXPECT_EQ(stride % 8, 0u);
  const auto plane = model.dense_plane();
  ASSERT_EQ(plane.size(), model.num_spins() * stride);
  for (std::size_t i = 0; i < model.num_spins(); ++i) {
    std::vector<double> row(stride, 0.0);
    for (const auto& [j, w] : model.neighbors(i)) {
      row[j] = w;
    }
    for (std::size_t j = 0; j < stride; ++j) {
      EXPECT_EQ(plane[i * stride + j], row[j]) << i << "," << j;
    }
  }
}

TEST(DensePlane, NotMaterializedBelowThreshold) {
  // A ring is ~2/n dense; far below any sensible threshold at n = 64.
  IsingModel m(64);
  for (std::size_t i = 0; i < 64; ++i) {
    m.add_coupling(i, (i + 1) % 64, 1.0);
  }
  m.finalize();
  EXPECT_LT(m.edge_density(), 0.05);
  EXPECT_FALSE(m.has_dense_plane());
  EXPECT_EQ(m.dense_stride(), 0u);
  EXPECT_TRUE(m.dense_plane().empty());
}

TEST(DensePlane, ColumnCopModelStaysBelowMeasuredCrossover) {
  // The paper's column-COP models are near-half dense -- well short of the
  // measured ~0.95 crossover where the dense kernel stops losing to the
  // lane-batched CSR kernels (DESIGN.md §4.6) -- so finalize() must not
  // spend O(n^2) memory on a plane auto-dispatch would never profit from.
  const auto model = column_cop_model();
  EXPECT_GT(model.edge_density(), 0.10);
  EXPECT_LT(model.edge_density(), 0.95);
  EXPECT_FALSE(model.has_dense_plane());
}

TEST(DensePlane, RefinalizeRebuildsPlane) {
  Rng rng(32);
  IsingModel m = random_model(16, 1.0, rng);
  ASSERT_TRUE(m.has_dense_plane());
  m.add_coupling(0, 15, 2.5);
  m.finalize();
  ASSERT_TRUE(m.has_dense_plane());
  EXPECT_EQ(m.dense_plane()[0 * m.dense_stride() + 15],
            m.dense_plane()[15 * m.dense_stride() + 0]);
}

// ------------------------------------------------- force-plane bit parity

/// Runs compute_forces() once per selectable kernel on identical positions
/// and expects bit-identical force planes.
void expect_force_parity(const IsingModel& model, bool discrete,
                         std::size_t replicas, std::uint64_t seed) {
  SbParams params = quick_params(seed);
  params.discrete = discrete;

  std::vector<double> reference;
  for (ForceKernel k :
       kernels::selectable_force_kernels(model.has_dense_plane())) {
    params.kernel = k;
    BsbBatchEngine engine(model, params, replicas);
    Rng rng(seed);
    auto x = engine.positions();
    for (double& v : x) {
      v = rng.next_double(-1.0, 1.0);
    }
    engine.compute_forces();
    const auto f = engine.forces();
    if (reference.empty()) {
      reference.assign(f.begin(), f.end());
      continue;
    }
    ASSERT_EQ(f.size(), reference.size());
    EXPECT_EQ(std::memcmp(f.data(), reference.data(),
                          f.size() * sizeof(double)),
              0)
        << "kernel " << kernels::force_kernel_name(k) << " R=" << replicas
        << (discrete ? " discrete" : " continuous");
  }
}

TEST(ForceKernelParity, ForcePlanesBitIdenticalSparseModel) {
  Rng rng(41);
  const auto model = random_model(33, 0.3, rng);
  for (std::size_t replicas : {1u, 2u, 8u, 13u}) {
    expect_force_parity(model, false, replicas, 900 + replicas);
    expect_force_parity(model, true, replicas, 900 + replicas);
  }
}

TEST(ForceKernelParity, ForcePlanesBitIdenticalColumnCopModel) {
  const auto model = column_cop_model();
  for (std::size_t replicas : {1u, 2u, 8u, 13u}) {
    expect_force_parity(model, false, replicas, 700 + replicas);
    expect_force_parity(model, true, replicas, 700 + replicas);
  }
}

TEST(ForceKernelParity, ForcePlanesBitIdenticalDenseModel) {
  // Near-complete model: the dense plane is materialized, so the parity
  // sweep includes the dense kernel at the host's widest ISA tier.
  Rng rng(43);
  const auto model = random_model(48, 1.0, rng);
  ASSERT_TRUE(model.has_dense_plane());
  for (std::size_t replicas : {1u, 2u, 8u, 13u}) {
    expect_force_parity(model, false, replicas, 800 + replicas);
    expect_force_parity(model, true, replicas, 800 + replicas);
  }
}

// ------------------------------------------------- full-solve bit parity

TEST(ForceKernelParity, SolveBitIdenticalAcrossKernels) {
  Rng rng(47);
  const IsingModel models[] = {column_cop_model(),
                               random_model(48, 1.0, rng)};
  ASSERT_TRUE(models[1].has_dense_plane());
  for (const IsingModel& model : models) {
    for (bool discrete : {false, true}) {
      for (std::size_t replicas : {1u, 2u, 8u}) {
        SbParams params = quick_params(55);
        params.discrete = discrete;
        params.kernel = ForceKernel::kScalar;
        const auto reference = solve_sb_batch(model, params, replicas);
        for (ForceKernel k :
             kernels::selectable_force_kernels(model.has_dense_plane())) {
          params.kernel = k;
          const auto got = solve_sb_batch(model, params, replicas);
          EXPECT_EQ(got.energy, reference.energy)
              << kernels::force_kernel_name(k);
          EXPECT_EQ(got.spins, reference.spins)
              << kernels::force_kernel_name(k);
          EXPECT_EQ(got.iterations, reference.iterations);
          EXPECT_EQ(got.stopped_early, reference.stopped_early);
        }
      }
    }
  }
}

TEST(ForceKernelParity, EngineReportsResolvedKernelName) {
  const auto model = column_cop_model();
  SbParams params = quick_params(1);
  params.kernel = ForceKernel::kScalar;
  BsbBatchEngine scalar_engine(model, params, 2);
  EXPECT_STREQ(scalar_engine.kernel_name(), "scalar");
  EXPECT_EQ(scalar_engine.kernel_kind(), ForceKernel::kScalar);

  params.kernel = ForceKernel::kAuto;
  BsbBatchEngine auto_engine(model, params, 2);
  EXPECT_EQ(auto_engine.kernel_kind(),
            kernels::select_force_kernel(ForceKernel::kAuto, cpu_features(),
                                         model.has_dense_plane())
                .kind);
}

// -------------------------------------------------- DALTA-level bit parity

TEST(ForceKernelParity, DaltaResultBitIdenticalAcrossKernels) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.seed = 7;
  params.parallel = false;

  const auto reference_solver =
      SolverRegistry::global().make_from_spec("prop,n=7,kernel=scalar");
  const auto reference = run_dalta(exact, dist, params, *reference_solver);

  for (ForceKernel k : kernels::selectable_force_kernels(true)) {
    const auto solver = SolverRegistry::global().make_from_spec(
        std::string("prop,n=7,kernel=") + kernels::force_kernel_name(k));
    const auto got = run_dalta(exact, dist, params, *solver);
    EXPECT_EQ(got.approx, reference.approx) << kernels::force_kernel_name(k);
    EXPECT_EQ(got.med, reference.med) << kernels::force_kernel_name(k);
    EXPECT_EQ(got.error_rate, reference.error_rate);
    EXPECT_EQ(got.cop_solves, reference.cop_solves);
  }
}

}  // namespace
}  // namespace adsd
