#include <gtest/gtest.h>

#include "bdd/bdd.hpp"
#include "bdd/bdd_decompose.hpp"
#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "core/partition_screen.hpp"
#include "funcs/registry.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

BitVec random_table(unsigned n, Rng& rng) {
  BitVec bits(std::uint64_t{1} << n);
  for (std::uint64_t x = 0; x < bits.size(); ++x) {
    bits.set(x, rng.next_bool());
  }
  return bits;
}

// ------------------------------------------------------------ Fundamentals

TEST(Bdd, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_TRUE(mgr.evaluate(BddManager::kTrue, 0));
  EXPECT_FALSE(mgr.evaluate(BddManager::kFalse, 5));
  const auto x1 = mgr.var(1);
  EXPECT_TRUE(mgr.evaluate(x1, 0b010));
  EXPECT_FALSE(mgr.evaluate(x1, 0b101));
  const auto nx1 = mgr.nvar(1);
  EXPECT_FALSE(mgr.evaluate(nx1, 0b010));
  EXPECT_TRUE(mgr.evaluate(nx1, 0b101));
}

TEST(Bdd, HashConsingCanonicity) {
  BddManager mgr(4);
  // Same function built two ways must be the same node.
  const auto a = mgr.land(mgr.var(0), mgr.var(1));
  const auto b = mgr.lnot(mgr.lor(mgr.lnot(mgr.var(0)), mgr.lnot(mgr.var(1))));
  EXPECT_EQ(a, b) << "De Morgan identity must hash-cons to one node";
  const auto c = mgr.lxor(mgr.var(2), mgr.var(2));
  EXPECT_EQ(c, BddManager::kFalse);
  EXPECT_EQ(mgr.lor(mgr.var(3), mgr.lnot(mgr.var(3))), BddManager::kTrue);
}

TEST(Bdd, IteSemantics) {
  BddManager mgr(3);
  const auto f = mgr.ite(mgr.var(0), mgr.var(1), mgr.var(2));
  for (std::uint64_t x = 0; x < 8; ++x) {
    const bool expect = (x & 1) ? ((x >> 1) & 1) : ((x >> 2) & 1);
    EXPECT_EQ(mgr.evaluate(f, x), expect) << x;
  }
}

TEST(Bdd, OpsMatchBitwiseTruthTables) {
  Rng rng(3);
  BddManager mgr(5);
  const BitVec ta = random_table(5, rng);
  const BitVec tb = random_table(5, rng);
  const auto a = mgr.from_truth_table(ta);
  const auto b = mgr.from_truth_table(tb);
  const auto f_and = mgr.land(a, b);
  const auto f_or = mgr.lor(a, b);
  const auto f_xor = mgr.lxor(a, b);
  const auto f_not = mgr.lnot(a);
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_EQ(mgr.evaluate(f_and, x), ta.get(x) && tb.get(x));
    EXPECT_EQ(mgr.evaluate(f_or, x), ta.get(x) || tb.get(x));
    EXPECT_EQ(mgr.evaluate(f_xor, x), ta.get(x) != tb.get(x));
    EXPECT_EQ(mgr.evaluate(f_not, x), !ta.get(x));
  }
}

TEST(Bdd, TruthTableRoundTrip) {
  Rng rng(5);
  BddManager mgr(7);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec bits = random_table(7, rng);
    const auto f = mgr.from_truth_table(bits);
    EXPECT_EQ(mgr.to_truth_table(f), bits);
  }
}

TEST(Bdd, EqualFunctionsShareOneNode) {
  Rng rng(7);
  BddManager mgr(6);
  const BitVec bits = random_table(6, rng);
  const auto f = mgr.from_truth_table(bits);
  const auto g = mgr.from_truth_table(bits);
  EXPECT_EQ(f, g);
}

TEST(Bdd, CountSatMatchesPopcount) {
  Rng rng(9);
  BddManager mgr(8);
  for (int trial = 0; trial < 10; ++trial) {
    const BitVec bits = random_table(8, rng);
    const auto f = mgr.from_truth_table(bits);
    EXPECT_EQ(mgr.count_sat(f), bits.count());
  }
  EXPECT_EQ(mgr.count_sat(BddManager::kTrue), 256u);
  EXPECT_EQ(mgr.count_sat(BddManager::kFalse), 0u);
  EXPECT_EQ(mgr.count_sat(mgr.var(3)), 128u);
}

TEST(Bdd, RestrictIsShannonCofactor) {
  Rng rng(11);
  BddManager mgr(6);
  const BitVec bits = random_table(6, rng);
  const auto f = mgr.from_truth_table(bits);
  for (unsigned v = 0; v < 6; ++v) {
    for (int value = 0; value <= 1; ++value) {
      const auto g = mgr.restrict_var(f, v, value != 0);
      for (std::uint64_t x = 0; x < 64; ++x) {
        std::uint64_t forced = x;
        if (value != 0) {
          forced |= std::uint64_t{1} << v;
        } else {
          forced &= ~(std::uint64_t{1} << v);
        }
        EXPECT_EQ(mgr.evaluate(g, x), bits.get(forced));
      }
    }
  }
}

TEST(Bdd, MajorityHasCompactDiagram) {
  // maj(x0, x1, x2): 4 internal nodes in any order; the table is 8 bits.
  BddManager mgr(3);
  const auto f = mgr.lor(
      mgr.lor(mgr.land(mgr.var(0), mgr.var(1)),
              mgr.land(mgr.var(0), mgr.var(2))),
      mgr.land(mgr.var(1), mgr.var(2)));
  EXPECT_LE(mgr.node_count(f), 4u);
  EXPECT_EQ(mgr.count_sat(f), 4u);
}

TEST(Bdd, XorChainIsLinearSize) {
  BddManager mgr(12);
  auto f = mgr.var(0);
  for (unsigned v = 1; v < 12; ++v) {
    f = mgr.lxor(f, mgr.var(v));
  }
  // Parity has exactly 2n-1 nodes as a reduced BDD.
  EXPECT_EQ(mgr.node_count(f), 23u);
  EXPECT_EQ(mgr.count_sat(f), 2048u);
}

TEST(Bdd, TotalNodesGrowsWithDistinctFunctions) {
  BddManager mgr(4);
  const std::size_t before = mgr.total_nodes();
  (void)mgr.var(0);
  (void)mgr.var(1);
  EXPECT_EQ(mgr.total_nodes(), before + 2);
  (void)mgr.var(0);  // hash-consed: no growth
  EXPECT_EQ(mgr.total_nodes(), before + 2);
}

TEST(Bdd, RealCircuitBddIsCompact) {
  // The 12-input Brent-Kung sum bit has a polynomial-size BDD in the
  // interleaved-ish default order; sanity bound well below 2^12.
  const auto tt = make_benchmark_table("brent-kung", 12, 7);
  BddManager mgr(12);
  const auto f = mgr.from_truth_table(tt.output(5));
  EXPECT_LT(mgr.node_count(f), 200u);
  // And it still evaluates correctly.
  for (std::uint64_t x = 0; x < 4096; x += 97) {
    EXPECT_EQ(mgr.evaluate(f, x), tt.bit(5, x));
  }
}

TEST(Bdd, Validation) {
  EXPECT_THROW(BddManager(0), std::invalid_argument);
  BddManager mgr(3);
  EXPECT_THROW((void)mgr.var(3), std::out_of_range);
  EXPECT_THROW((void)mgr.from_truth_table(BitVec(4)), std::invalid_argument);
}

// ------------------------------------------------- Column multiplicity

TEST(BddDecompose, MultiplicityMatchesMatrixDistinctColumns) {
  Rng rng(13);
  for (int trial = 0; trial < 25; ++trial) {
    const unsigned n = 7;
    BddManager mgr(n);
    const BitVec bits = random_table(n, rng);
    const auto f = mgr.from_truth_table(bits);
    const auto w = InputPartition::random(n, 3, rng);

    TruthTable tt(n, 1);
    tt.set_output(0, bits);
    const auto matrix = BooleanMatrix::from_function(tt, 0, w);

    EXPECT_EQ(bdd_column_multiplicity(mgr, f, w),
              matrix.distinct_columns().size())
        << w.to_string();
  }
}

TEST(BddDecompose, AgreesWithTheorem2Check) {
  Rng rng(17);
  int decomposable = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const unsigned n = 6;
    BddManager mgr(n);
    const auto w = InputPartition::random(n, 2, rng);
    // Mix decomposable and random functions.
    const BitVec bits = (trial % 2 == 0) ? random_decomposable_output(w, rng)
                                         : random_table(n, rng);
    const auto f = mgr.from_truth_table(bits);

    TruthTable tt(n, 1);
    tt.set_output(0, bits);
    const auto matrix = BooleanMatrix::from_function(tt, 0, w);
    const bool matrix_ok = check_column_decomposition(matrix).has_value();
    EXPECT_EQ(bdd_is_decomposable(mgr, f, w), matrix_ok);
    decomposable += matrix_ok;
  }
  EXPECT_GT(decomposable, 10);
}

TEST(BddDecompose, FindsPlantedPartition) {
  Rng rng(19);
  const unsigned n = 7;
  const InputPartition planted({1, 3, 6}, {0, 2, 4, 5});
  const BitVec bits = random_decomposable_output(planted, rng);
  BddManager mgr(n);
  const auto f = mgr.from_truth_table(bits);
  const auto found = bdd_find_decomposable_partition(mgr, f, 3);
  ASSERT_TRUE(found.has_value());
  EXPECT_TRUE(bdd_is_decomposable(mgr, f, *found));
}

TEST(BddDecompose, RandomFunctionHasNoDecomposablePartition) {
  Rng rng(23);
  const unsigned n = 7;
  BddManager mgr(n);
  const auto f = mgr.from_truth_table(random_table(n, rng));
  EXPECT_FALSE(bdd_find_decomposable_partition(mgr, f, 3).has_value());
}

TEST(BddDecompose, BrentKungCarryDecomposes) {
  // The adder's MSB (carry-out) depends on its operands through the prefix
  // structure; sanity-check multiplicity behaviour on a real circuit
  // output at small width.
  const auto tt = make_benchmark_table("brent-kung", 6, 4);
  BddManager mgr(6);
  const auto f = mgr.from_truth_table(tt.output(3));  // carry bit
  // Partition by operand: rows = first operand, cols = second.
  const InputPartition w({0, 1, 2}, {3, 4, 5});
  const std::size_t mu = bdd_column_multiplicity(mgr, f, w);
  TruthTable single(6, 1);
  single.set_output(0, tt.output(3));
  const auto matrix = BooleanMatrix::from_function(single, 0, w);
  EXPECT_EQ(mu, matrix.distinct_columns().size());
  EXPECT_GT(mu, 2u) << "carry is not disjoint-decomposable by operand split";
}

TEST(PartitionScreen, MultiplicityMatchesMatrix) {
  Rng rng(29);
  const auto tt = make_benchmark_table("exp", 7, 7);
  const PartitionScreener screener(tt.output(5), 7);
  for (int trial = 0; trial < 10; ++trial) {
    const auto w = InputPartition::random(7, 3, rng);
    TruthTable single(7, 1);
    single.set_output(0, tt.output(5));
    const auto matrix = BooleanMatrix::from_function(single, 0, w);
    EXPECT_EQ(screener.multiplicity(w), matrix.distinct_columns().size());
  }
}

TEST(PartitionScreen, KeepsLowestMultiplicityCandidates) {
  Rng rng(31);
  const auto tt = make_benchmark_table("cos", 7, 7);
  const PartitionScreener screener(tt.output(6), 7);
  std::vector<InputPartition> candidates;
  for (int i = 0; i < 12; ++i) {
    candidates.push_back(InputPartition::random(7, 3, rng));
  }
  const auto kept = screener.screen(candidates, 3);
  ASSERT_EQ(kept.size(), 3u);
  std::size_t worst_kept = 0;
  for (const auto& w : kept) {
    worst_kept = std::max(worst_kept, screener.multiplicity(w));
  }
  // No discarded candidate may beat the worst kept one.
  std::size_t best_possible = 1000;
  for (const auto& w : candidates) {
    best_possible = std::min(best_possible, screener.multiplicity(w));
  }
  EXPECT_LE(screener.multiplicity(kept.front()), worst_kept);
  EXPECT_EQ(screener.multiplicity(kept.front()), best_possible);
}

TEST(PartitionScreen, KeepAllWhenBudgetCoversCandidates) {
  Rng rng(37);
  const auto tt = make_benchmark_table("erf", 6, 6);
  const PartitionScreener screener(tt.output(0), 6);
  std::vector<InputPartition> candidates;
  for (int i = 0; i < 4; ++i) {
    candidates.push_back(InputPartition::random(6, 3, rng));
  }
  EXPECT_EQ(screener.screen(candidates, 10).size(), 4u);
}

TEST(BddDecompose, WidthMismatchThrows) {
  BddManager mgr(5);
  const auto w = InputPartition::trivial(6, 3);
  EXPECT_THROW((void)bdd_column_multiplicity(mgr, BddManager::kTrue, w),
               std::invalid_argument);
}

}  // namespace
}  // namespace adsd
