#include <gtest/gtest.h>

#include <cmath>

#include "boolean/boolean_matrix.hpp"
#include "boolean/error_metrics.hpp"
#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "core/column_cop.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

BooleanMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  return m;
}

ColumnSetting random_setting(std::size_t r, std::size_t c, Rng& rng) {
  ColumnSetting s;
  s.v1 = BitVec(r);
  s.v2 = BitVec(r);
  s.t = BitVec(c);
  for (std::size_t i = 0; i < r; ++i) {
    s.v1.set(i, rng.next_bool());
    s.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < c; ++j) {
    s.t.set(j, rng.next_bool());
  }
  return s;
}

std::vector<double> uniform_probs(std::size_t r, std::size_t c, unsigned n) {
  return std::vector<double>(r * c, 1.0 / static_cast<double>(1u << n));
}

// ------------------------------------------------------ matrix_probs

TEST(MatrixProbs, UniformFillsConstant) {
  const auto w = InputPartition::trivial(6, 3);
  const auto d = InputDistribution::uniform(6);
  const auto p = matrix_probs(d, w);
  ASSERT_EQ(p.size(), 64u);
  for (double v : p) {
    EXPECT_DOUBLE_EQ(v, 1.0 / 64.0);
  }
}

TEST(MatrixProbs, NonUniformRouting) {
  std::vector<double> weights(16, 0.0);
  weights[0b0110] = 1.0;  // single input pattern carries all mass
  const auto d = InputDistribution::from_weights(std::move(weights));
  const InputPartition w({0, 1}, {2, 3});
  const auto p = matrix_probs(d, w);
  // Pattern 0110: row bits (x0,x1) = (0,1) -> row 2; col (x2,x3) = (1,0)
  // -> col 1.
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(p[i * 4 + j], (i == 2 && j == 1) ? 1.0 : 0.0);
    }
  }
}

// --------------------------------------------------- Separate-mode COP

TEST(ColumnCopSeparate, ObjectiveIsWeightedErrorRate) {
  Rng rng(1);
  const std::size_t r = 4;
  const std::size_t c = 8;
  const auto m = random_matrix(r, c, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(r, c, 5));
  for (int trial = 0; trial < 30; ++trial) {
    const auto s = random_setting(r, c, rng);
    const double expected =
        static_cast<double>(mismatch_count(m, s)) / 32.0;
    EXPECT_NEAR(cop.objective(s), expected, 1e-12);
  }
}

TEST(ColumnCopSeparate, PerfectSettingHasZeroObjective) {
  Rng rng(2);
  const auto w = InputPartition::trivial(6, 2);
  TruthTable tt(6, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cs = check_column_decomposition(m);
  ASSERT_TRUE(cs.has_value());
  const auto cop = ColumnCop::separate(m, uniform_probs(4, 16, 6));
  EXPECT_NEAR(cop.objective(*cs), 0.0, 1e-15);
}

TEST(ColumnCopSeparate, IsingEnergyEqualsObjective) {
  Rng rng(3);
  const std::size_t r = 3;
  const std::size_t c = 5;
  const auto m = random_matrix(r, c, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(r, c, 4));
  const IsingModel model = cop.to_ising();
  EXPECT_EQ(model.num_spins(), 2 * r + c);
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = random_setting(r, c, rng);
    const auto spins = cop.encode(s);
    EXPECT_NEAR(model.energy(spins), cop.objective(s), 1e-12)
        << "Eq. (9) energy must equal the weighted ER";
  }
}

TEST(ColumnCopSeparate, DecodeEncodeRoundTrip) {
  Rng rng(4);
  const auto m = random_matrix(5, 6, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(5, 6, 5));
  const auto s = random_setting(5, 6, rng);
  const auto spins = cop.encode(s);
  const auto back = cop.decode(spins);
  EXPECT_EQ(back.v1, s.v1);
  EXPECT_EQ(back.v2, s.v2);
  EXPECT_EQ(back.t, s.t);
}

// ------------------------------------------------------ Joint-mode COP

/// Brute-force |2^k * Ohat + D| objective for validation.
double true_joint_objective(const BooleanMatrix& m, const ColumnSetting& s,
                            const std::vector<double>& probs,
                            const std::vector<double>& d, double weight) {
  double total = 0.0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      const double ohat = s.value(i, j) ? 1.0 : 0.0;
      total += probs[i * m.cols() + j] *
               std::fabs(weight * ohat + d[i * m.cols() + j]);
    }
  }
  return total;
}

TEST(ColumnCopJoint, LinearizationIsExactForAllDCases) {
  Rng rng(5);
  const std::size_t r = 3;
  const std::size_t c = 4;
  const double weight = 4.0;  // bit 2
  const auto m = random_matrix(r, c, rng);
  const auto probs = uniform_probs(r, c, 4);
  // Ds covering all three regimes: D > 0, -w <= D <= 0, D < -w.
  std::vector<double> d(r * c);
  for (auto& v : d) {
    v = std::floor(rng.next_double(-10.0, 10.0));
  }
  const auto cop = ColumnCop::joint(m, probs, d, weight);
  for (int trial = 0; trial < 60; ++trial) {
    const auto s = random_setting(r, c, rng);
    EXPECT_NEAR(cop.objective(s), true_joint_objective(m, s, probs, d, weight),
                1e-12)
        << "Eqs. (13)/(15) must reproduce |2^(k-1) Ohat + D| exactly";
  }
}

TEST(ColumnCopJoint, IsingEnergyEqualsObjective) {
  Rng rng(6);
  const std::size_t r = 4;
  const std::size_t c = 4;
  const auto m = random_matrix(r, c, rng);
  const auto probs = uniform_probs(r, c, 4);
  std::vector<double> d(r * c);
  for (auto& v : d) {
    v = std::floor(rng.next_double(-6.0, 6.0));
  }
  const auto cop = ColumnCop::joint(m, probs, d, 2.0);
  const IsingModel model = cop.to_ising();
  for (int trial = 0; trial < 100; ++trial) {
    const auto s = random_setting(r, c, rng);
    EXPECT_NEAR(model.energy(cop.encode(s)), cop.objective(s), 1e-12)
        << "Eq. (16) energy must equal the linearized MED";
  }
}

TEST(ColumnCopJoint, ZeroDReducesToScaledSeparate) {
  Rng rng(7);
  const std::size_t r = 4;
  const std::size_t c = 6;
  const auto m = random_matrix(r, c, rng);
  const auto probs = uniform_probs(r, c, 5);
  const std::vector<double> d(r * c, 0.0);
  const auto joint = ColumnCop::joint(m, probs, d, 8.0);
  const auto sep = ColumnCop::separate(m, probs);
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = random_setting(r, c, rng);
    // D = 0: |8*Ohat - 0| = 8*Ohat... but the exact value only contributes
    // through D, so joint cost = 8 * Ohat regardless of O. Compare against
    // the closed form directly.
    double expect = 0.0;
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < c; ++j) {
        expect += probs[i * c + j] * 8.0 * (s.value(i, j) ? 1.0 : 0.0);
      }
    }
    EXPECT_NEAR(joint.objective(s), expect, 1e-12);
    (void)sep;
  }
}

TEST(ColumnCopJoint, ConsistentDGivesZeroAtExactSetting) {
  // If the other outputs are exact and this output's matrix decomposes
  // exactly, then D = -2^k * O and the exact setting has zero cost.
  Rng rng(8);
  const auto w = InputPartition::trivial(5, 2);
  TruthTable tt(5, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cs = check_column_decomposition(m);
  ASSERT_TRUE(cs.has_value());
  const double weight = 4.0;
  const std::size_t r = m.rows();
  const std::size_t c = m.cols();
  std::vector<double> d(r * c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      d[i * c + j] = -weight * (m.at(i, j) ? 1.0 : 0.0);
    }
  }
  const auto cop = ColumnCop::joint(m, uniform_probs(r, c, 5), d, weight);
  EXPECT_NEAR(cop.objective(*cs), 0.0, 1e-15);
}

// --------------------------------------------------------- Theorem 3

TEST(Theorem3, ResetNeverIncreasesObjective) {
  Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t r = 4;
    const std::size_t c = 8;
    const auto m = random_matrix(r, c, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(r, c, 5));
    auto s = random_setting(r, c, rng);
    const double before = cop.objective(s);
    cop.reset_optimal_t(s);
    EXPECT_LE(cop.objective(s), before + 1e-12);
  }
}

TEST(Theorem3, ResetIsOptimalOverAllT) {
  Rng rng(10);
  const std::size_t r = 3;
  const std::size_t c = 4;
  const auto m = random_matrix(r, c, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(r, c, 4));
  auto s = random_setting(r, c, rng);
  cop.reset_optimal_t(s);
  const double opt = cop.objective(s);
  // Exhaustive check over all 2^c type vectors with the same V1/V2.
  for (std::uint64_t bits = 0; bits < (1u << c); ++bits) {
    auto alt = s;
    for (std::size_t j = 0; j < c; ++j) {
      alt.t.set(j, (bits >> j) & 1);
    }
    EXPECT_GE(cop.objective(alt), opt - 1e-12);
  }
}

TEST(Theorem3, VResetNeverIncreasesAndIsOptimal) {
  Rng rng(11);
  const std::size_t r = 3;
  const std::size_t c = 5;
  const auto m = random_matrix(r, c, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(r, c, 4));
  auto s = random_setting(r, c, rng);
  const double before = cop.objective(s);
  cop.reset_optimal_v(s);
  const double after = cop.objective(s);
  EXPECT_LE(after, before + 1e-12);
  // Exhaustive over all V1 for fixed V2, T.
  for (std::uint64_t bits = 0; bits < (1u << r); ++bits) {
    auto alt = s;
    for (std::size_t i = 0; i < r; ++i) {
      alt.v1.set(i, (bits >> i) & 1);
    }
    EXPECT_GE(cop.objective(alt), after - 1e-12);
  }
}

TEST(ColumnCop, IdealBoundIsALowerBound) {
  Rng rng(12);
  for (int trial = 0; trial < 40; ++trial) {
    const auto m = random_matrix(4, 6, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(4, 6, 5));
    const auto s = random_setting(4, 6, rng);
    EXPECT_LE(cop.ideal_bound(), cop.objective(s) + 1e-12);
  }
}

TEST(ColumnCop, SpinLayoutIndices) {
  Rng rng(13);
  const auto m = random_matrix(4, 6, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(4, 6, 5));
  EXPECT_EQ(cop.num_spins(), 14u);
  EXPECT_EQ(cop.v1_spin(0), 0u);
  EXPECT_EQ(cop.v2_spin(0), 4u);
  EXPECT_EQ(cop.t_spin(0), 8u);
  EXPECT_EQ(cop.t_spin(5), 13u);
}

TEST(ColumnCop, ValidationErrors) {
  Rng rng(14);
  const auto m = random_matrix(2, 2, rng);
  EXPECT_THROW((void)ColumnCop::separate(m, {0.25}), std::invalid_argument);
  std::vector<double> probs(4, 0.25);
  std::vector<double> d(3, 0.0);
  EXPECT_THROW((void)ColumnCop::joint(m, probs, d, 1.0),
               std::invalid_argument);
  d.resize(4, 0.0);
  EXPECT_THROW((void)ColumnCop::joint(m, probs, d, 0.0),
               std::invalid_argument);
  const auto cop = ColumnCop::separate(m, probs);
  EXPECT_THROW((void)cop.decode(std::vector<std::int8_t>(3)),
               std::invalid_argument);
}

// Parameterized sweep: energy/objective agreement across shapes and modes.
struct ShapeParam {
  std::size_t r;
  std::size_t c;
  bool joint;
};

class CopEnergySweep : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(CopEnergySweep, EnergyMatchesObjectiveEverywhere) {
  const auto param = GetParam();
  Rng rng(77 + param.r * 13 + param.c + (param.joint ? 1000 : 0));
  const auto m = random_matrix(param.r, param.c, rng);
  std::vector<double> probs(param.r * param.c);
  double total = 0.0;
  for (auto& p : probs) {
    p = rng.next_double(0.0, 1.0);
    total += p;
  }
  for (auto& p : probs) {
    p /= total;  // arbitrary non-uniform input distribution
  }
  ColumnCop cop = [&] {
    if (!param.joint) {
      return ColumnCop::separate(m, probs);
    }
    std::vector<double> d(param.r * param.c);
    for (auto& v : d) {
      v = std::floor(rng.next_double(-9.0, 9.0));
    }
    return ColumnCop::joint(m, probs, d, 4.0);
  }();
  const IsingModel model = cop.to_ising();
  for (int trial = 0; trial < 40; ++trial) {
    const auto s = random_setting(param.r, param.c, rng);
    EXPECT_NEAR(model.energy(cop.encode(s)), cop.objective(s), 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CopEnergySweep,
    ::testing::Values(ShapeParam{2, 2, false}, ShapeParam{2, 8, false},
                      ShapeParam{8, 2, false}, ShapeParam{4, 16, false},
                      ShapeParam{16, 4, false}, ShapeParam{2, 2, true},
                      ShapeParam{4, 8, true}, ShapeParam{8, 8, true},
                      ShapeParam{16, 32, true}));

}  // namespace
}  // namespace adsd
