#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "support/run_context.hpp"
#include "support/telemetry.hpp"
#include "support/thread_pool.hpp"

namespace adsd {
namespace {

// ------------------------------------------------------------- telemetry

TEST(Telemetry, CountersAggregate) {
  TelemetrySink sink;
  sink.add("a/b");
  sink.add("a/b", 4);
  sink.add("a/c", 2);
  EXPECT_EQ(sink.counter("a/b"), 5u);
  EXPECT_EQ(sink.counter("a/c"), 2u);
  EXPECT_EQ(sink.counter("missing"), 0u);
}

TEST(Telemetry, SpansRecordDurationAggregates) {
  TelemetrySink sink;
  sink.record_ns("s", 100);
  sink.record_ns("s", 300);
  const auto snap = sink.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].path, "s");
  EXPECT_TRUE(snap[0].is_span);
  EXPECT_EQ(snap[0].count, 2u);
  EXPECT_EQ(snap[0].total_ns, 400u);
  EXPECT_EQ(snap[0].min_ns, 100u);
  EXPECT_EQ(snap[0].max_ns, 300u);
}

TEST(Telemetry, RaiiSpanClosesOnDestruction) {
  TelemetrySink sink;
  { const auto s = sink.span("scope"); }
  const auto snap = sink.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, 1u);
  EXPECT_TRUE(snap[0].is_span);
}

TEST(Telemetry, ConcurrentUpdatesAreLossless) {
  TelemetrySink sink;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kPerThread; ++i) {
        sink.add("hot", 1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(sink.counter("hot"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Telemetry, JsonReportIsStableAndSorted) {
  TelemetrySink sink;
  sink.add("z/counter", 7);
  sink.add("a/counter", 3);
  sink.record_ns("m/span", 1000000);
  const std::string a = sink.to_json();
  const std::string b = sink.to_json();
  EXPECT_EQ(a, b);
  EXPECT_LT(a.find("\"a/counter\": 3"), a.find("\"z/counter\": 7"));
  EXPECT_NE(a.find("\"counters\""), std::string::npos);
  EXPECT_NE(a.find("\"spans\""), std::string::npos);
  EXPECT_NE(a.find("\"m/span\""), std::string::npos);
}

// ----------------------------------------------------------- RNG streams

TEST(RunContext, StreamSeedsAreDeterministic) {
  const RunContext a(std::uint64_t{123});
  const RunContext b(std::uint64_t{123});
  EXPECT_EQ(a.stream_seed("dalta/partitions", 1, 2),
            b.stream_seed("dalta/partitions", 1, 2));
  EXPECT_EQ(a.stream("x", 5).next_u64(), b.stream("x", 5).next_u64());
}

TEST(RunContext, StreamsAreIndependentAcrossTagsCountersAndSeeds) {
  const RunContext ctx(std::uint64_t{123});
  const RunContext other(std::uint64_t{124});
  std::set<std::uint64_t> seen;
  seen.insert(ctx.stream_seed("a"));
  seen.insert(ctx.stream_seed("b"));
  seen.insert(ctx.stream_seed("a", 1));
  seen.insert(ctx.stream_seed("a", 0, 1));
  seen.insert(ctx.stream_seed("a", 0, 0, 1));
  seen.insert(other.stream_seed("a"));
  EXPECT_EQ(seen.size(), 6u) << "every (seed, tag, counters) must differ";
}

// ------------------------------------------------------------- deadline

TEST(RunContext, DeadlineExpiresAndUnlimitedDoesNot) {
  RunContext::Options opts;
  opts.time_budget_s = 1e-9;
  const RunContext tight(opts);
  EXPECT_TRUE(tight.expired());

  const RunContext unlimited;
  EXPECT_FALSE(unlimited.expired());
}

TEST(RunContext, DeadlineStopsDaltaSolvesEarly) {
  const auto exact = make_benchmark_table("exp", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.parallel = false;
  const auto solver = SolverRegistry::global().make_from_spec(
      "prop,n=7,stop=0,max-iter=100000");

  RunContext::Options opts;
  opts.seed = 7;
  opts.time_budget_s = 1e-9;  // expired before the first Euler step
  const RunContext tight(opts);
  const auto res = run_dalta(exact, dist, params, *solver, tight);

  RunContext::Options slack = opts;
  slack.time_budget_s = 0.0;
  const RunContext free_ctx(slack);
  const auto full = run_dalta(exact, dist, params, *solver, free_ctx);

  EXPECT_LT(res.solver_iterations, full.solver_iterations)
      << "an expired deadline must cut the per-solve iteration budget";
  EXPECT_GT(res.early_stops, 0u);
}

// ----------------------------------------------------- thread-pool nesting

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  std::atomic<int> inline_nested{0};
  pool.parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(ThreadPool::in_parallel_region());
    outer.fetch_add(1);
    // Nested call on the same pool: must complete inline, not deadlock.
    pool.parallel_for(4, [&](std::size_t) {
      inner.fetch_add(1);
      inline_nested += ThreadPool::in_parallel_region() ? 1 : 0;
    });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 32);
  EXPECT_EQ(inline_nested.load(), 32);
  EXPECT_FALSE(ThreadPool::in_parallel_region());
}

TEST(ThreadPool, NestedCrossPoolCallDoesNotOversubscribe) {
  ThreadPool outer_pool(4);
  ThreadPool inner_pool(4);
  std::atomic<int> nested_threads_used{0};
  outer_pool.parallel_for(8, [&](std::size_t) {
    const auto caller = std::this_thread::get_id();
    inner_pool.parallel_for_chunks(64, 8, [&](std::size_t, std::size_t) {
      if (std::this_thread::get_id() != caller) {
        nested_threads_used.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(nested_threads_used.load(), 0)
      << "nested chunks must stay on the calling thread";
}

// ------------------------------------- determinism across thread counts

TEST(RunContext, DaltaResultBitIdenticalAcrossThreadCounts) {
  const auto exact = make_benchmark_table("cos", 7, 5);
  const auto dist = InputDistribution::uniform(7);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 6;
  params.rounds = 1;
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=7");

  std::vector<DaltaResult> results;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                    std::size_t{8}}) {
    RunContext::Options opts;
    opts.seed = 5;
    opts.threads = threads;
    const RunContext ctx(opts);
    results.push_back(run_dalta(exact, dist, params, *solver, ctx));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0].approx, results[i].approx)
        << "thread count must not change the result";
    EXPECT_EQ(results[0].med, results[i].med);
    EXPECT_EQ(results[0].cop_solves, results[i].cop_solves);
    ASSERT_EQ(results[0].outputs.size(), results[i].outputs.size());
    for (std::size_t k = 0; k < results[0].outputs.size(); ++k) {
      EXPECT_EQ(results[0].outputs[k].objective,
                results[i].outputs[k].objective);
    }
  }
}

TEST(RunContext, ContextOverloadMatchesLegacyOverload) {
  const auto exact = make_benchmark_table("ln", 7, 5);
  const auto dist = InputDistribution::uniform(7);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.seed = 21;
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=7");

  const auto legacy = run_dalta(exact, dist, params, *solver);
  RunContext::Options opts;
  opts.seed = params.seed;
  const RunContext ctx(opts);
  const auto modern = run_dalta(exact, dist, params, *solver, ctx);
  EXPECT_EQ(legacy.approx, modern.approx);
  EXPECT_EQ(legacy.med, modern.med);
}

TEST(RunContext, TelemetryCapturesSolveHierarchy) {
  const auto exact = make_benchmark_table("exp", 6, 4);
  const auto dist = InputDistribution::uniform(6);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=6");

  const RunContext ctx(std::uint64_t{3});
  const auto res = run_dalta(exact, dist, params, *solver, ctx);
  const TelemetrySink& sink = ctx.telemetry();
  EXPECT_EQ(sink.counter("dalta/cop_solves"), res.cop_solves);
  EXPECT_EQ(sink.counter("core/solves"), res.cop_solves);
  EXPECT_EQ(sink.counter("core/iterations"), res.solver_iterations);

  bool found_solve_span = false;
  bool found_run_span = false;
  for (const auto& m : sink.snapshot()) {
    found_solve_span |= m.path == "core/solve/ising-bsb" && m.is_span;
    found_run_span |= m.path == "dalta/run" && m.is_span;
  }
  EXPECT_TRUE(found_solve_span);
  EXPECT_TRUE(found_run_span);
}

}  // namespace
}  // namespace adsd
