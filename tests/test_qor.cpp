#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/dalta.hpp"
#include "core/nondisjoint_dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "support/json.hpp"
#include "support/qor.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

TEST(QorRecorder, CountersAndSamplesAccumulate) {
  QorRecorder qor;
  qor.add("a/b");
  qor.add("a/b", 2.5);
  qor.sample("s", 3.0);
  qor.sample("s", -1.0);
  qor.sample("s", 2.0);
  EXPECT_DOUBLE_EQ(qor.counter("a/b"), 3.5);
  EXPECT_DOUBLE_EQ(qor.counter("never"), 0.0);

  const json::Value doc = json::parse(qor.to_json());
  EXPECT_EQ(doc.at("schema").as_string(), "adsd-qor-v1");
  const json::Value& s = doc.at("samples").at("s");
  EXPECT_DOUBLE_EQ(s.at("count").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(s.at("min").as_number(), -1.0);
  EXPECT_DOUBLE_EQ(s.at("max").as_number(), 3.0);
  EXPECT_DOUBLE_EQ(s.at("sum").as_number(), 4.0);
  EXPECT_NEAR(s.at("mean").as_number(), 4.0 / 3.0, 1e-12);
}

TEST(QorRecorder, CurvesAreBoundedWithDropAccounting) {
  QorRecorder qor(/*curve_capacity=*/4);
  const std::uint64_t a = qor.begin_curve("a");
  const std::uint64_t b = qor.begin_curve("b");
  for (std::uint64_t i = 0; i < 5; ++i) {
    qor.curve_point(a, i, -static_cast<double>(i));
  }
  qor.curve_point(b, 0, 1.0);  // capacity shared across curves: dropped
  EXPECT_EQ(qor.dropped(), 2u);
  EXPECT_EQ(qor.curve_count(), 2u);

  const json::Value doc = json::parse(qor.to_json());
  const auto& curves = doc.at("curves").as_array();
  ASSERT_EQ(curves.size(), 2u);
  EXPECT_EQ(curves[0].at("iterations").as_array().size(), 4u);
  EXPECT_EQ(curves[1].at("iterations").as_array().size(), 0u);
  EXPECT_DOUBLE_EQ(doc.at("dropped").as_number(), 2.0);
}

TEST(QorRecorder, OutOfRangeCurveIdIsIgnored) {
  QorRecorder qor;
  qor.curve_point(99, 0, 1.0);  // no curve registered: silently dropped
  EXPECT_EQ(qor.dropped(), 0u);
  EXPECT_EQ(qor.curve_count(), 0u);
}

TEST(QorRecorder, NullSafeHelpersNoOpOnNullptr) {
  qor_add(nullptr, "x");
  qor_sample(nullptr, "x", 1.0);  // must not crash
  QorRecorder qor;
  qor_add(&qor, "x", 2.0);
  qor_sample(&qor, "y", 1.0);
  EXPECT_DOUBLE_EQ(qor.counter("x"), 2.0);
}

TEST(QorRecorder, FinalSummaryRoundTripsThroughJson) {
  QorRecorder qor;
  EXPECT_FALSE(qor.has_final());
  EXPECT_THROW(qor.final_summary(), std::runtime_error);

  QorRecorder::Final fin;
  fin.stage = "dalta";
  fin.med = 0.25;
  fin.error_rate = 0.125;
  fin.lut_bits = 48;
  fin.flat_bits = 256;
  fin.outputs.push_back({0.125, 48, 256});
  qor.record_final(fin);
  ASSERT_TRUE(qor.has_final());
  EXPECT_EQ(qor.final_summary().lut_bits, 48u);

  const json::Value doc = json::parse(qor.to_json());
  const auto& finals = doc.at("finals").as_array();
  ASSERT_EQ(finals.size(), 1u);
  EXPECT_EQ(finals[0].at("stage").as_string(), "dalta");
  EXPECT_DOUBLE_EQ(finals[0].at("med").as_number(), 0.25);
  EXPECT_DOUBLE_EQ(finals[0].at("lut_bits").as_number(), 48.0);
  ASSERT_EQ(finals[0].at("outputs").as_array().size(), 1u);
}

TEST(JsonWriter, RoundTripsValues) {
  std::map<std::string, json::Value> obj;
  obj.emplace("b", json::Value::make_bool(true));
  obj.emplace("n", json::Value::make_number(1.5));
  obj.emplace("i", json::Value::make_number(1234567.0));
  obj.emplace("s", json::Value::make_string("a \"quoted\"\n\ttail"));
  obj.emplace("a", json::Value::make_array(
                       {json::Value::make_null(),
                        json::Value::make_number(-2.0)}));
  const json::Value v = json::Value::make_object(std::move(obj));
  const json::Value back = json::parse(json::dump(v));
  EXPECT_TRUE(back.at("b").as_bool());
  EXPECT_DOUBLE_EQ(back.at("n").as_number(), 1.5);
  EXPECT_DOUBLE_EQ(back.at("i").as_number(), 1234567.0);
  EXPECT_EQ(back.at("s").as_string(), "a \"quoted\"\n\ttail");
  ASSERT_EQ(back.at("a").as_array().size(), 2u);
  EXPECT_TRUE(back.at("a").as_array()[0].is_null());
  // Exact integers print without a decimal point (stable baselines).
  EXPECT_NE(json::dump(v).find("1234567"), std::string::npos);
}

DaltaParams small_params() {
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 3;
  params.rounds = 1;
  params.seed = 7;
  return params;
}

TEST(QorIntegration, DaltaIsBitIdenticalWithQorOnVsOff) {
  const auto exact = make_benchmark_table("exp", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make("prop", {});
  const DaltaParams params = small_params();

  auto run_with = [&](bool qor) {
    RunContext::Options opts;
    opts.seed = params.seed;
    opts.qor = qor;
    const RunContext ctx(opts);
    return run_dalta(exact, dist, params, *solver, ctx);
  };
  const auto plain = run_with(false);
  const auto recorded = run_with(true);

  ASSERT_EQ(plain.approx.num_patterns(), recorded.approx.num_patterns());
  for (std::uint64_t x = 0; x < plain.approx.num_patterns(); ++x) {
    ASSERT_EQ(plain.approx.word(x), recorded.approx.word(x))
        << "pattern " << x;
  }
  EXPECT_DOUBLE_EQ(plain.med, recorded.med);
  EXPECT_DOUBLE_EQ(plain.error_rate, recorded.error_rate);
  EXPECT_EQ(plain.solver_iterations, recorded.solver_iterations);
  for (unsigned k = 0; k < plain.approx.num_outputs(); ++k) {
    EXPECT_DOUBLE_EQ(plain.outputs[k].objective,
                     recorded.outputs[k].objective);
  }
}

TEST(QorIntegration, NdDaltaIsBitIdenticalWithQorOnVsOff) {
  const auto exact = make_benchmark_table("cos", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make("prop", {});
  NdDaltaParams params;
  params.free_size = 3;
  params.shared_size = 1;
  params.num_partitions = 3;
  params.rounds = 1;
  params.seed = 11;

  auto run_with = [&](bool qor) {
    RunContext::Options opts;
    opts.seed = params.seed;
    opts.qor = qor;
    const RunContext ctx(opts);
    return run_dalta_nd(exact, dist, params, *solver, ctx);
  };
  const auto plain = run_with(false);
  const auto recorded = run_with(true);

  for (std::uint64_t x = 0; x < plain.approx.num_patterns(); ++x) {
    ASSERT_EQ(plain.approx.word(x), recorded.approx.word(x))
        << "pattern " << x;
  }
  EXPECT_DOUBLE_EQ(plain.med, recorded.med);
  EXPECT_EQ(plain.solver_iterations, recorded.solver_iterations);
}

TEST(QorIntegration, DaltaRunFillsDecisionsCurvesAndFinal) {
  const auto exact = make_benchmark_table("exp", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make("prop", {});
  const DaltaParams params = small_params();

  RunContext::Options opts;
  opts.seed = params.seed;
  opts.qor = true;
  const RunContext ctx(opts);
  const auto res = run_dalta(exact, dist, params, *solver, ctx);

  const QorRecorder* qor = ctx.qor();
  ASSERT_NE(qor, nullptr);
  // One commit per (round, output), each trying every candidate partition.
  EXPECT_EQ(qor->decision_count(),
            params.rounds * exact.num_outputs());
  EXPECT_DOUBLE_EQ(qor->counter("dalta/commits"),
                   static_cast<double>(params.rounds * exact.num_outputs()));
  EXPECT_GE(qor->counter("dalta/partitions_tried"),
            static_cast<double>(qor->decision_count()));
  // The prop solver runs bSB under the hood: convergence curves and
  // Theorem-3 reset counters must be present.
  EXPECT_GT(qor->curve_count(), 0u);
  EXPECT_GT(qor->counter("ising/theorem3/resets"), 0.0);

  ASSERT_TRUE(qor->has_final());
  const QorRecorder::Final fin = qor->final_summary();
  EXPECT_EQ(fin.stage, "dalta");
  EXPECT_DOUBLE_EQ(fin.med, res.med);
  EXPECT_DOUBLE_EQ(fin.error_rate, res.error_rate);
  const auto net = res.to_lut_network();
  EXPECT_EQ(fin.lut_bits, net.total_size_bits());
  EXPECT_EQ(fin.flat_bits, net.total_flat_size_bits());
  ASSERT_EQ(fin.outputs.size(), exact.num_outputs());

  // The export parses and carries every section.
  std::ostringstream out;
  qor->write_json(out);
  const json::Value doc = json::parse(out.str());
  EXPECT_EQ(doc.at("schema").as_string(), "adsd-qor-v1");
  EXPECT_FALSE(doc.at("decisions").as_array().empty());
  EXPECT_FALSE(doc.at("curves").as_array().empty());
  EXPECT_FALSE(doc.at("finals").as_array().empty());
  EXPECT_TRUE(doc.at("samples").contains("core/objective/ising-bsb"));
}

double counter_total(const TelemetrySink& sink, const std::string& path) {
  for (const auto& m : sink.snapshot()) {
    if (m.path == path) {
      return static_cast<double>(m.sum);
    }
  }
  return 0.0;
}

TEST(QorIntegration, TightDeadlineTriggersBudgetRescale) {
  const auto exact = make_benchmark_table("exp", 8, 8);
  const auto dist = InputDistribution::uniform(8);
  // High iteration count + replicas with the variance stop disabled, so
  // the first sampling point's timing estimate says the full run cannot
  // fit the budget and the engine must rescale. The budget must be small
  // enough that max-iter cannot fit, but large enough that the first
  // solve *starts* before it expires -- the engine's deadline-at-entry
  // check returns immediately (no rescale) on an already-expired context.
  const auto solver = SolverRegistry::global().make(
      "prop",
      SolverRegistry::parse_spec("prop,replicas=4,max-iter=2000000,stop=0")
          .second);
  DaltaParams params;
  params.free_size = 4;
  params.num_partitions = 2;
  params.rounds = 1;
  params.seed = 3;
  params.parallel = false;

  RunContext::Options opts;
  opts.seed = params.seed;
  opts.qor = true;
  opts.parallel = false;
  opts.time_budget_s = 0.05;
  const RunContext ctx(opts);
  (void)run_dalta(exact, dist, params, *solver, ctx);

  EXPECT_GT(counter_total(ctx.telemetry(), "ising/sb/budget_rescales"), 0.0);
  EXPECT_GT(ctx.qor()->counter("ising/sb/budget_rescales"), 0.0);
}

TEST(QorIntegration, NoDeadlineNeverRescales) {
  const auto exact = make_benchmark_table("exp", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make("prop", {});
  const DaltaParams params = small_params();

  RunContext::Options opts;
  opts.seed = params.seed;
  opts.qor = true;
  const RunContext ctx(opts);
  (void)run_dalta(exact, dist, params, *solver, ctx);
  EXPECT_DOUBLE_EQ(ctx.qor()->counter("ising/sb/budget_rescales"), 0.0);
}

}  // namespace
}  // namespace adsd
