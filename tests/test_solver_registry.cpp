#include <gtest/gtest.h>

#include <stdexcept>

#include "boolean/boolean_matrix.hpp"
#include "core/column_cop.hpp"
#include "core/solver_registry.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

ColumnCop random_cop(std::uint64_t seed, std::size_t r = 5,
                     std::size_t c = 10) {
  Rng rng(seed);
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  const std::vector<double> probs(r * c, 1.0 / static_cast<double>(r * c));
  return ColumnCop::separate(m, probs);
}

TEST(SolverRegistry, AllCanonicalNamesBuild) {
  const SolverRegistry& r = SolverRegistry::global();
  for (const char* name :
       {"prop", "sa", "simcim", "doch", "portfolio", "dalta", "dalta-lit",
        "ilp", "ba", "alt", "exhaustive"}) {
    const auto solver = r.make(name);
    ASSERT_NE(solver, nullptr) << name;
  }
}

TEST(SolverRegistry, AliasesResolveToTheSameEntryAsTheClassName) {
  const SolverRegistry& r = SolverRegistry::global();
  // Aliases are the CoreCopSolver::name() strings, so registry lookups and
  // telemetry paths ("core/solve/<name>") agree.
  const std::pair<const char*, const char*> pairs[] = {
      {"prop", "ising-bsb"},     {"dalta", "dalta-greedy"},
      {"ilp", "ilp-bnb"},        {"ba", "ba-anneal"},
      {"alt", "alternating"},    {"sa", "ising-sa"},
      {"simcim", "ising-simcim"}, {"doch", "ising-doch"},
  };
  for (const auto& [canonical, alias] : pairs) {
    EXPECT_EQ(r.find(canonical), r.find(alias)) << canonical;
    EXPECT_EQ(r.make(alias)->name(), alias);
  }
}

TEST(SolverRegistry, EveryEntryBuildsWithAnEmptyConfig) {
  for (const auto& entry : SolverRegistry::global().entries()) {
    EXPECT_TRUE(entry.accepts(entry.name));
    const auto solver = entry.factory(SolverConfig{});
    ASSERT_NE(solver, nullptr) << entry.name;
    EXPECT_FALSE(solver->name().empty()) << entry.name;
  }
}

TEST(SolverRegistry, UnknownNameThrowsWithKnownList) {
  try {
    (void)SolverRegistry::global().make("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("prop"), std::string::npos)
        << "the error should list the known solvers";
  }
}

TEST(SolverRegistry, UnknownKeyThrowsStrictly) {
  SolverConfig config;
  config.set("bogus", "1");
  EXPECT_THROW((void)SolverRegistry::global().make("prop", config),
               std::invalid_argument);
  // A key valid for one solver is still rejected on another.
  SolverConfig budget;
  budget.set("budget", "1.0");
  EXPECT_THROW((void)SolverRegistry::global().make("dalta", budget),
               std::invalid_argument);
}

// Fixture for the enriched unknown-name diagnostic: every canonical name
// appears in sorted order, followed by an "aliases:" section listing the
// class-name spellings, so a typo'd spec is self-correcting.
TEST(SolverRegistry, UnknownNameErrorEnumeratesTheFullRoster) {
  try {
    (void)SolverRegistry::global().make("nope");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown solver 'nope'"), std::string::npos) << msg;
    std::size_t last = 0;
    for (const char* name :
         {"alt", "ba", "dalta", "dalta-lit", "doch", "exhaustive", "ilp",
          "portfolio", "prop", "sa", "simcim"}) {
      const std::size_t pos = msg.find(name, last);
      EXPECT_NE(pos, std::string::npos) << name << " missing in: " << msg;
      last = pos;
    }
    const std::size_t aliases = msg.find("aliases:");
    ASSERT_NE(aliases, std::string::npos) << msg;
    for (const char* alias :
         {"ising-bsb", "ising-doch", "ising-sa", "ising-simcim"}) {
      EXPECT_NE(msg.find(alias, aliases), std::string::npos)
          << alias << " missing in: " << msg;
    }
  }
}

// Fixture for the enriched unknown-key diagnostic: the offending key is
// named and the solver's declared keys are listed sorted.
TEST(SolverRegistry, UnknownKeyErrorEnumeratesDeclaredKeys) {
  SolverConfig config;
  config.set("bogus", "1");
  try {
    (void)SolverRegistry::global().make("sa", config);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("solver 'sa' does not take key 'bogus'"),
              std::string::npos)
        << msg;
    // Sorted declared keys: beta-end before beta-start before n ...
    std::size_t last = 0;
    for (const char* key :
         {"beta-end", "beta-start", "n", "polish", "replicas", "sweeps"}) {
      const std::size_t pos = msg.find(key, last);
      EXPECT_NE(pos, std::string::npos) << key << " missing in: " << msg;
      last = pos;
    }
  }
  // A keyless solver reports that it takes none.
  SolverConfig any;
  any.set("x", "1");
  try {
    (void)SolverRegistry::global().make("exhaustive", any);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no keys"), std::string::npos)
        << e.what();
  }
}

TEST(SolverRegistry, MalformedValuesThrow) {
  SolverConfig config;
  config.set("replicas", "4x");
  EXPECT_THROW((void)SolverRegistry::global().make("prop", config),
               std::invalid_argument);
  SolverConfig config2;
  config2.set("theorem3", "maybe");
  EXPECT_THROW((void)SolverRegistry::global().make("prop", config2),
               std::invalid_argument);
}

TEST(SolverRegistry, SpecParsing) {
  const auto [name, config] =
      SolverRegistry::parse_spec("prop,replicas=4,stop-epsilon=1e-6");
  EXPECT_EQ(name, "prop");
  EXPECT_EQ(config.get_size("replicas", 1), 4u);
  EXPECT_DOUBLE_EQ(config.get_double("stop-epsilon", 0.0), 1e-6);
  EXPECT_FALSE(config.has("n"));

  EXPECT_THROW((void)SolverRegistry::parse_spec(""), std::invalid_argument);
  EXPECT_THROW((void)SolverRegistry::parse_spec("prop,novalue"),
               std::invalid_argument);
  EXPECT_THROW((void)SolverRegistry::parse_spec("prop,=3"),
               std::invalid_argument);
}

TEST(SolverRegistry, RegistryBuiltSolverMatchesDirectConstruction) {
  const auto cop = random_cop(77);
  // The registry path must be bit-identical to hand-built construction:
  // same options, same seed, same setting.
  auto options = IsingCoreSolver::Options::paper_defaults(9);
  options.replicas = 2;
  const IsingCoreSolver direct(options);
  const auto via_registry =
      SolverRegistry::global().make_from_spec("prop,n=9,replicas=2");

  for (const std::uint64_t seed : {1u, 5u, 42u}) {
    CoreSolveStats ds;
    CoreSolveStats rs;
    const auto d = direct.solve(cop, seed, &ds);
    const auto r = via_registry->solve(cop, seed, &rs);
    EXPECT_TRUE(d.v1 == r.v1 && d.v2 == r.v2 && d.t == r.t);
    EXPECT_EQ(ds.objective, rs.objective);
    EXPECT_EQ(ds.iterations, rs.iterations);
  }
}

TEST(SolverRegistry, ConfigTypedGetterFallbacks) {
  SolverConfig config;
  config.set("k", "12");
  config.set("f", "0.5");
  config.set("b", "off");
  EXPECT_EQ(config.get_size("k", 0), 12u);
  EXPECT_EQ(config.get_size("absent", 9), 9u);
  EXPECT_DOUBLE_EQ(config.get_double("f", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(config.get_double("absent", 2.5), 2.5);
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("absent", true));
}

TEST(SolverRegistry, DuplicateRegistrationThrows) {
  SolverRegistry local;
  local.add({"x", "", {"y"}, {}, [](const SolverConfig&) {
               return SolverRegistry::global().make("dalta");
             }});
  SolverRegistry::Entry dup{"y", "", {}, {}, [](const SolverConfig&) {
                              return SolverRegistry::global().make("dalta");
                            }};
  EXPECT_THROW(local.add(dup), std::invalid_argument);
}

}  // namespace
}  // namespace adsd
