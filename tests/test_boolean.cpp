#include <gtest/gtest.h>

#include <stdexcept>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "boolean/error_metrics.hpp"
#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

// ------------------------------------------------------------ TruthTable

TEST(TruthTable, ShapeAndDefaults) {
  TruthTable tt(4, 3);
  EXPECT_EQ(tt.num_inputs(), 4u);
  EXPECT_EQ(tt.num_outputs(), 3u);
  EXPECT_EQ(tt.num_patterns(), 16u);
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(tt.word(x), 0u);
  }
}

TEST(TruthTable, FromFunctionTabulates) {
  auto tt = TruthTable::from_function(4, 5, [](std::uint64_t x) {
    return x + 1;  // 5 bits enough for 16+1
  });
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(tt.word(x), x + 1);
  }
}

TEST(TruthTable, WordSetAndBitConsistency) {
  TruthTable tt(3, 4);
  tt.set_word(5, 0b1010);
  EXPECT_EQ(tt.word(5), 0b1010u);
  EXPECT_FALSE(tt.bit(0, 5));
  EXPECT_TRUE(tt.bit(1, 5));
  EXPECT_FALSE(tt.bit(2, 5));
  EXPECT_TRUE(tt.bit(3, 5));
  tt.set_bit(0, 5, true);
  EXPECT_EQ(tt.word(5), 0b1011u);
}

TEST(TruthTable, HighBitsOfWordIgnored) {
  TruthTable tt(2, 2);
  tt.set_word(0, 0xFF);
  EXPECT_EQ(tt.word(0), 0b11u);
}

TEST(TruthTable, SetOutputValidatesSize) {
  TruthTable tt(3, 2);
  EXPECT_THROW(tt.set_output(0, BitVec(4)), std::invalid_argument);
  tt.set_output(0, BitVec(8, true));
  EXPECT_TRUE(tt.bit(0, 7));
}

TEST(TruthTable, DiffCount) {
  auto a = TruthTable::from_function(3, 2, [](std::uint64_t x) { return x; });
  auto b = a;
  EXPECT_EQ(a.diff_count(b), 0u);
  b.set_word(3, a.word(3) ^ 1);
  b.set_word(5, a.word(5) ^ 2);
  EXPECT_EQ(a.diff_count(b), 2u);
  EXPECT_NE(a, b);
}

TEST(TruthTable, RejectsBadShapes) {
  EXPECT_THROW(TruthTable(0, 1), std::invalid_argument);
  EXPECT_THROW(TruthTable(27, 1), std::invalid_argument);
  EXPECT_THROW(TruthTable(4, 0), std::invalid_argument);
}

// -------------------------------------------------------- InputPartition

TEST(InputPartition, TrivialSplit) {
  const auto w = InputPartition::trivial(5, 2);
  EXPECT_EQ(w.free_vars().size(), 2u);
  EXPECT_EQ(w.bound_vars().size(), 3u);
  EXPECT_EQ(w.num_rows(), 4u);
  EXPECT_EQ(w.num_cols(), 8u);
}

TEST(InputPartition, RowColExtraction) {
  // A = {x0, x2}, B = {x1, x3}: row bits from positions 0 and 2.
  const InputPartition w({0, 2}, {1, 3});
  const std::uint64_t x = 0b1011;  // x0=1 x1=1 x2=0 x3=1
  EXPECT_EQ(w.row_of(x), 0b01u);
  EXPECT_EQ(w.col_of(x), 0b11u);
}

TEST(InputPartition, InputOfInvertsRowCol) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto w = InputPartition::random(8, 3, rng);
    for (std::uint64_t x = 0; x < 256; x += 7) {
      EXPECT_EQ(w.input_of(w.row_of(x), w.col_of(x)), x);
    }
  }
}

TEST(InputPartition, RowColCoverAllCells) {
  const auto w = InputPartition::trivial(6, 3);
  std::vector<bool> seen(64, false);
  for (std::uint64_t x = 0; x < 64; ++x) {
    const auto idx = w.row_of(x) * 8 + w.col_of(x);
    EXPECT_FALSE(seen[idx]);
    seen[idx] = true;
  }
}

TEST(InputPartition, RandomHasRequestedSizes) {
  Rng rng(17);
  const auto w = InputPartition::random(16, 7, rng);
  EXPECT_EQ(w.free_vars().size(), 7u);
  EXPECT_EQ(w.bound_vars().size(), 9u);
}

TEST(InputPartition, RandomIsSortedAndDisjoint) {
  Rng rng(23);
  const auto w = InputPartition::random(10, 4, rng);
  std::vector<bool> seen(10, false);
  unsigned prev = 0;
  bool first = true;
  for (unsigned v : w.free_vars()) {
    EXPECT_TRUE(first || v > prev);
    prev = v;
    first = false;
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  for (unsigned v : w.bound_vars()) {
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
}

TEST(InputPartition, RejectsInvalid) {
  EXPECT_THROW(InputPartition({}, {0, 1}), std::invalid_argument);
  EXPECT_THROW(InputPartition({0}, {}), std::invalid_argument);
  EXPECT_THROW(InputPartition({0, 0}, {1}), std::invalid_argument);
  EXPECT_THROW(InputPartition({0, 5}, {1}), std::invalid_argument);
  EXPECT_THROW(InputPartition::trivial(4, 0), std::invalid_argument);
  EXPECT_THROW(InputPartition::trivial(4, 4), std::invalid_argument);
}

TEST(InputPartition, ToStringMentionsVariables) {
  const InputPartition w({1, 3}, {0, 2});
  const std::string s = w.to_string();
  EXPECT_NE(s.find("x1"), std::string::npos);
  EXPECT_NE(s.find("x2"), std::string::npos);
}

// ------------------------------------------------------ PartitionIndexer

TEST(PartitionIndexer, MatchesRowColOfExhaustively) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const unsigned n = 4 + static_cast<unsigned>(rng.next_below(8));
    const unsigned free =
        1 + static_cast<unsigned>(rng.next_below(n - 1));
    const auto w = InputPartition::random(n, free, rng);
    const PartitionIndexer idx(w);
    for (std::uint64_t x = 0; x < (std::uint64_t{1} << n); ++x) {
      ASSERT_EQ(idx.row_of(x), w.row_of(x)) << w.to_string() << " x=" << x;
      ASSERT_EQ(idx.col_of(x), w.col_of(x)) << w.to_string() << " x=" << x;
    }
  }
}

TEST(PartitionIndexer, HandlesMultiBytePatterns) {
  // 12 inputs span two LUT bytes; interleave the sets across the byte edge.
  const InputPartition w({0, 7, 8, 11}, {1, 2, 3, 4, 5, 6, 9, 10});
  const PartitionIndexer idx(w);
  for (std::uint64_t x = 0; x < (std::uint64_t{1} << 12); ++x) {
    ASSERT_EQ(idx.row_of(x), w.row_of(x));
    ASSERT_EQ(idx.col_of(x), w.col_of(x));
  }
}

// --------------------------------------------------------- BooleanMatrix

TEST(BooleanMatrix, FromFunctionMatchesTable) {
  auto tt = TruthTable::from_function(4, 1, [](std::uint64_t x) {
    return (x * 7 + 3) & 1;
  });
  const auto w = InputPartition::trivial(4, 2);
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  for (std::uint64_t x = 0; x < 16; ++x) {
    EXPECT_EQ(m.at(w.row_of(x), w.col_of(x)), tt.bit(0, x));
  }
}

TEST(BooleanMatrix, FromFunctionIntoReusesStorage) {
  auto tt = TruthTable::from_function(6, 2, [](std::uint64_t x) {
    return (x * 5 + 1) & 3;
  });
  Rng rng(7);
  BooleanMatrix scratch(1, 1);
  for (int trial = 0; trial < 8; ++trial) {
    const unsigned free = 1 + static_cast<unsigned>(rng.next_below(5));
    const auto w = InputPartition::random(6, free, rng);
    const PartitionIndexer idx(w);
    for (unsigned k = 0; k < 2; ++k) {
      BooleanMatrix::from_function_into(tt, k, w, idx, scratch);
      EXPECT_EQ(scratch, BooleanMatrix::from_function(tt, k, w));
    }
  }
}

TEST(BooleanMatrix, ReshapeClearsBits) {
  BooleanMatrix m(2, 2);
  m.set(1, 1, true);
  m.reshape(4, 2);
  EXPECT_EQ(m.rows(), 4u);
  EXPECT_EQ(m.cols(), 2u);
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_FALSE(m.at(i, j));
    }
  }
  EXPECT_THROW(m.reshape(0, 2), std::invalid_argument);
}

TEST(BooleanMatrix, RowAndColumnViews) {
  BooleanMatrix m(2, 3);
  m.set(0, 1, true);
  m.set(1, 2, true);
  EXPECT_EQ(m.row(0).to_string(), "010");
  EXPECT_EQ(m.row(1).to_string(), "001");
  EXPECT_EQ(m.column(1).to_string(), "10");
  EXPECT_EQ(m.column(2).to_string(), "01");
}

TEST(BooleanMatrix, DistinctRowsAndColumns) {
  // Matrix from Fig. 2 of the paper: rows (1010),(0000),(0101),(1111)
  // wait -- use the actual figure: V = 1100 with S = (3,1,2,4).
  BooleanMatrix m(4, 4);
  auto set_row = [&m](std::size_t i, const std::string& bits) {
    for (std::size_t j = 0; j < 4; ++j) {
      m.set(i, j, bits[j] == '1');
    }
  };
  set_row(0, "1100");  // V
  set_row(1, "0000");  // all-0
  set_row(2, "1111");  // all-1
  set_row(3, "0011");  // ~V
  EXPECT_EQ(m.distinct_rows().size(), 4u);
  EXPECT_EQ(m.distinct_columns().size(), 2u);
}

TEST(BooleanMatrix, FromFunctionRejectsMismatch) {
  auto tt = TruthTable::from_function(4, 2, [](std::uint64_t) { return 0; });
  const auto w5 = InputPartition::trivial(5, 2);
  EXPECT_THROW((void)BooleanMatrix::from_function(tt, 0, w5),
               std::invalid_argument);
  const auto w4 = InputPartition::trivial(4, 2);
  EXPECT_THROW((void)BooleanMatrix::from_function(tt, 2, w4),
               std::invalid_argument);
}

// ----------------------------------------- Decomposition (Theorems 1, 2)

/// Fig. 2 matrix of the paper: decomposable, V = (1,1,0,0), two column
/// patterns (1,0,1,0) and (0,0,1,1).
BooleanMatrix paper_fig2_matrix() {
  BooleanMatrix m(4, 4);
  const char* rows[4] = {"1100", "0000", "1111", "0011"};
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      m.set(i, j, rows[i][j] == '1');
    }
  }
  return m;
}

TEST(Decomposition, PaperFig2RowCheckSucceeds) {
  const auto m = paper_fig2_matrix();
  const auto rs = check_row_decomposition(m);
  ASSERT_TRUE(rs.has_value());
  EXPECT_EQ(rs->pattern.to_string(), "1100");
  EXPECT_EQ(rs->types[0], RowType::kPattern);
  EXPECT_EQ(rs->types[1], RowType::kAllZero);
  EXPECT_EQ(rs->types[2], RowType::kAllOne);
  EXPECT_EQ(rs->types[3], RowType::kComplement);
  EXPECT_EQ(realize(*rs), m);
}

TEST(Decomposition, PaperFig2ColumnCheckSucceeds) {
  const auto m = paper_fig2_matrix();
  const auto cs = check_column_decomposition(m);
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(cs->v1.to_string(), "1010");
  EXPECT_EQ(cs->v2.to_string(), "0011");
  EXPECT_EQ(cs->t.to_string(), "0011");
  EXPECT_EQ(realize(*cs), m);
}

TEST(Decomposition, ThreeColumnPatternsFailBothChecks) {
  BooleanMatrix m(2, 3);
  // Columns: 00, 01, 10 -> three distinct columns; rows 001 and 010 are
  // neither constant nor complementary.
  m.set(1, 1, true);
  m.set(0, 2, true);
  EXPECT_FALSE(check_column_decomposition(m).has_value());
  EXPECT_FALSE(check_row_decomposition(m).has_value());
}

TEST(Decomposition, ConstantMatrixDecomposes) {
  BooleanMatrix m(4, 4);
  auto rs = check_row_decomposition(m);
  auto cs = check_column_decomposition(m);
  ASSERT_TRUE(rs.has_value());
  ASSERT_TRUE(cs.has_value());
  EXPECT_EQ(realize(*rs), m);
  EXPECT_EQ(realize(*cs), m);
}

TEST(Decomposition, Theorem1IffTheorem2OnRandomMatrices) {
  Rng rng(99);
  int decomposable = 0;
  for (int trial = 0; trial < 400; ++trial) {
    BooleanMatrix m(4, 4);
    // Small random matrices: some decompose, some do not.
    for (std::size_t i = 0; i < 4; ++i) {
      for (std::size_t j = 0; j < 4; ++j) {
        m.set(i, j, rng.next_bool());
      }
    }
    const bool row_ok = check_row_decomposition(m).has_value();
    const bool col_ok = check_column_decomposition(m).has_value();
    EXPECT_EQ(row_ok, col_ok) << "Theorem 1 and 2 disagree";
    decomposable += row_ok;
  }
  EXPECT_GT(decomposable, 0);  // the sweep hit both classes
}

TEST(Decomposition, RandomDecomposableAlwaysPassesBothChecks) {
  Rng rng(123);
  for (int trial = 0; trial < 50; ++trial) {
    const auto w = InputPartition::random(8, 3, rng);
    const BitVec out = random_decomposable_output(w, rng);
    TruthTable tt(8, 1);
    tt.set_output(0, out);
    const auto m = BooleanMatrix::from_function(tt, 0, w);
    EXPECT_TRUE(check_row_decomposition(m).has_value());
    EXPECT_TRUE(check_column_decomposition(m).has_value());
  }
}

TEST(Decomposition, SettingConversionsPreserveMatrix) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    ColumnSetting cs;
    cs.v1 = BitVec(5);
    cs.v2 = BitVec(5);
    cs.t = BitVec(6);
    for (std::size_t i = 0; i < 5; ++i) {
      cs.v1.set(i, rng.next_bool());
      cs.v2.set(i, rng.next_bool());
    }
    for (std::size_t j = 0; j < 6; ++j) {
      cs.t.set(j, rng.next_bool());
    }
    const RowSetting rs = to_row_setting(cs);
    EXPECT_EQ(realize(rs), realize(cs));
    const ColumnSetting back = to_column_setting(rs);
    EXPECT_EQ(realize(back), realize(cs));
  }
}

TEST(Decomposition, ComposeOutputMatchesRealize) {
  Rng rng(31);
  const auto w = InputPartition::random(7, 3, rng);
  ColumnSetting cs;
  cs.v1 = BitVec(w.num_rows());
  cs.v2 = BitVec(w.num_rows());
  cs.t = BitVec(w.num_cols());
  for (std::size_t i = 0; i < cs.v1.size(); ++i) {
    cs.v1.set(i, rng.next_bool());
    cs.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < cs.t.size(); ++j) {
    cs.t.set(j, rng.next_bool());
  }
  const BitVec out = compose_output(cs, w);
  const auto m = realize(cs);
  for (std::uint64_t x = 0; x < out.size(); ++x) {
    EXPECT_EQ(out.get(x), m.at(w.row_of(x), w.col_of(x)));
  }
}

TEST(Decomposition, MismatchCountZeroForWitness) {
  const auto m = paper_fig2_matrix();
  EXPECT_EQ(mismatch_count(m, *check_row_decomposition(m)), 0u);
  EXPECT_EQ(mismatch_count(m, *check_column_decomposition(m)), 0u);
}

TEST(Decomposition, MismatchCountCountsCells) {
  const auto m = paper_fig2_matrix();
  auto cs = *check_column_decomposition(m);
  cs.t.flip(0);  // column 0 switches from pattern 1 to pattern 2
  EXPECT_EQ(mismatch_count(m, cs),
            m.column(0).hamming_distance(cs.v2));
}

// ----------------------------------------------------------- Metrics

TEST(InputDistributionTest, UniformSumsToOne) {
  const auto d = InputDistribution::uniform(6);
  double total = 0.0;
  for (std::uint64_t x = 0; x < d.num_patterns(); ++x) {
    total += d.prob(x);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_TRUE(d.is_uniform());
}

TEST(InputDistributionTest, WeightsNormalized) {
  auto d = InputDistribution::from_weights({1.0, 3.0, 0.0, 4.0});
  EXPECT_DOUBLE_EQ(d.prob(0), 0.125);
  EXPECT_DOUBLE_EQ(d.prob(1), 0.375);
  EXPECT_DOUBLE_EQ(d.prob(2), 0.0);
  EXPECT_DOUBLE_EQ(d.prob(3), 0.5);
  EXPECT_EQ(d.num_inputs(), 2u);
  EXPECT_FALSE(d.is_uniform());
}

TEST(InputDistributionTest, RejectsBadWeights) {
  EXPECT_THROW((void)InputDistribution::from_weights({1.0, 2.0, 3.0}),
               std::invalid_argument);
  EXPECT_THROW((void)InputDistribution::from_weights({0.0, 0.0}),
               std::invalid_argument);
  EXPECT_THROW((void)InputDistribution::from_weights({-1.0, 2.0}),
               std::invalid_argument);
}

TEST(Metrics, ErrorRateSingleOutput) {
  const auto d = InputDistribution::uniform(3);
  BitVec a(8);
  BitVec b(8);
  b.set(0, true);
  b.set(5, true);
  EXPECT_DOUBLE_EQ(error_rate(a, b, d), 0.25);
  EXPECT_DOUBLE_EQ(error_rate(a, a, d), 0.0);
}

TEST(Metrics, ErrorRateMultiOutputAnyBit) {
  const auto d = InputDistribution::uniform(2);
  auto g = TruthTable::from_function(2, 2, [](std::uint64_t x) { return x; });
  auto h = g;
  h.set_word(1, 0);  // one pattern differs (in one bit)
  h.set_word(2, 1);  // another differs (in two bits) -- still one pattern
  EXPECT_DOUBLE_EQ(error_rate(g, h, d), 0.5);
}

TEST(Metrics, MedMatchesHandComputation) {
  const auto d = InputDistribution::uniform(2);
  auto g = TruthTable::from_function(2, 3, [](std::uint64_t x) { return x; });
  auto h = g;
  h.set_word(0, 4);  // |0-4| = 4
  h.set_word(3, 1);  // |3-1| = 2
  EXPECT_DOUBLE_EQ(mean_error_distance(g, h, d), (4.0 + 2.0) / 4.0);
}

TEST(Metrics, MedWeightedByDistribution) {
  auto d = InputDistribution::from_weights({3.0, 1.0});
  auto g = TruthTable::from_function(1, 2, [](std::uint64_t) { return 0; });
  auto h = g;
  h.set_word(0, 2);
  EXPECT_DOUBLE_EQ(mean_error_distance(g, h, d), 0.75 * 2.0);
}

TEST(Metrics, WorstCaseError) {
  auto g = TruthTable::from_function(2, 4, [](std::uint64_t x) { return x; });
  auto h = g;
  h.set_word(1, 9);
  h.set_word(2, 3);
  EXPECT_EQ(worst_case_error(g, h), 8u);
  EXPECT_EQ(worst_case_error(g, g), 0u);
}

TEST(Metrics, MeanRelativeError) {
  const auto d = InputDistribution::uniform(1);
  auto g = TruthTable::from_function(1, 3, [](std::uint64_t x) {
    return x == 0 ? 0 : 4;
  });
  auto h = g;
  h.set_word(0, 1);  // |0-1|/max(1,0) = 1
  h.set_word(1, 2);  // |4-2|/4 = 0.5
  EXPECT_DOUBLE_EQ(mean_relative_error(g, h, d), (1.0 + 0.5) / 2.0);
}

TEST(Metrics, ShapeMismatchThrows) {
  const auto d = InputDistribution::uniform(3);
  auto g = TruthTable::from_function(2, 2, [](std::uint64_t x) { return x; });
  EXPECT_THROW((void)mean_error_distance(g, g, d), std::invalid_argument);
  auto h = TruthTable::from_function(2, 3, [](std::uint64_t x) { return x; });
  EXPECT_THROW((void)g.diff_count(h), std::invalid_argument);
}

// Property sweep: MED is zero iff tables are equal, ER bounds MED/ max.
class MetricPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricPropertyTest, MedZeroIffEqualAndBounds) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const unsigned n = 5;
  const unsigned m = 4;
  const auto d = InputDistribution::uniform(n);
  auto g = TruthTable::from_function(
      n, m, [&](std::uint64_t) { return rng.next_u64() & 0xF; });
  auto h = TruthTable::from_function(
      n, m, [&](std::uint64_t) { return rng.next_u64() & 0xF; });

  const double med = mean_error_distance(g, h, d);
  const double er = error_rate(g, h, d);
  const auto wce = worst_case_error(g, h);

  EXPECT_EQ(med == 0.0, g == h);
  EXPECT_EQ(er == 0.0, g == h);
  // Per-pattern distance is at least 1 whenever the word differs and at
  // most WCE, so er <= med <= er * wce.
  EXPECT_LE(er, med + 1e-12);
  EXPECT_LE(med, er * static_cast<double>(wce) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace adsd
