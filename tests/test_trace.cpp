// Tests for the tracing layer: the in-repo JSON parser, TraceRecorder's
// Chrome/report exports (balance under contention, pinned quantiles, drop
// accounting), the zero-event disabled path, TelemetrySink saturation
// reporting, and bit-identity of a traced vs untraced solve.

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "support/json.hpp"
#include "support/run_context.hpp"
#include "support/telemetry.hpp"
#include "support/trace.hpp"

namespace adsd {
namespace {

using json::Value;

TEST(Json, ParsesScalarsAndContainers) {
  const Value v = json::parse(
      R"({"a": [1, 2.5, -3e2], "b": {"x": true, "y": null}, "s": "hi"})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[1].as_number(), 2.5);
  EXPECT_DOUBLE_EQ(v.at("a").as_array()[2].as_number(), -300.0);
  EXPECT_TRUE(v.at("b").at("x").as_bool());
  EXPECT_TRUE(v.at("b").at("y").is_null());
  EXPECT_EQ(v.at("s").as_string(), "hi");
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("nope"));
}

TEST(Json, DecodesEscapesIncludingSurrogatePairs) {
  const Value v =
      json::parse(R"({"s": "a\"b\\c\n\t\u0041\u00e9\ud83d\ude00"})");
  EXPECT_EQ(v.at("s").as_string(),
            "a\"b\\c\n\tA\xC3\xA9\xF0\x9F\x98\x80");
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\": 1} x"), std::runtime_error);
  EXPECT_THROW(json::parse("\"\\ud800\""), std::runtime_error);  // lone high
  EXPECT_THROW(json::parse("01"), std::runtime_error);
  EXPECT_THROW(json::parse(""), std::runtime_error);
}

// Walks an exported Chrome trace and checks that every thread's B/E events
// form properly nested, fully closed stacks.
void expect_balanced(const Value& doc, std::size_t expect_threads) {
  std::map<double, std::vector<std::string>> stacks;
  std::set<double> tids;
  for (const Value& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") {
      continue;
    }
    const double tid = e.at("tid").as_number();
    tids.insert(tid);
    if (ph == "B") {
      stacks[tid].push_back(e.at("name").as_string());
    } else if (ph == "E") {
      ASSERT_FALSE(stacks[tid].empty());
      EXPECT_EQ(stacks[tid].back(), e.at("name").as_string());
      stacks[tid].pop_back();
    }
  }
  for (const auto& [tid, stack] : stacks) {
    EXPECT_TRUE(stack.empty()) << "unclosed spans on tid " << tid;
  }
  EXPECT_EQ(tids.size(), expect_threads);
}

TEST(TraceRecorder, ChromeExportBalancedUnderContention) {
  TraceRecorder rec;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kIters = 400;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, t] {
      for (std::size_t i = 0; i < kIters; ++i) {
        const TraceSpan outer(&rec, "outer");
        rec.counter("progress", static_cast<double>(i));
        {
          const TraceSpan inner(&rec, t % 2 == 0 ? "inner_a" : "inner_b");
          rec.instant("tick");
        }
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }

  EXPECT_EQ(rec.dropped(), 0u);
  EXPECT_EQ(rec.thread_count(), kThreads);
  // 2 spans (B+E each) + 1 counter + 1 instant per iteration.
  EXPECT_EQ(rec.event_count(), kThreads * kIters * 6);

  const Value doc = json::parse(rec.chrome_json());
  expect_balanced(doc, kThreads);
  EXPECT_DOUBLE_EQ(doc.at("otherData").at("dropped").as_number(), 0.0);
}

TEST(TraceRecorder, NearestRankQuantiles) {
  // N = 10: p50 -> 5th smallest, p95 -> 10th, p99 -> 10th.
  std::vector<double> sorted;
  for (int i = 1; i <= 10; ++i) {
    sorted.push_back(i * 1.0);
  }
  EXPECT_DOUBLE_EQ(TraceRecorder::quantile_sorted(sorted, 0.50), 5.0);
  EXPECT_DOUBLE_EQ(TraceRecorder::quantile_sorted(sorted, 0.95), 10.0);
  EXPECT_DOUBLE_EQ(TraceRecorder::quantile_sorted(sorted, 0.99), 10.0);
  EXPECT_DOUBLE_EQ(TraceRecorder::quantile_sorted(sorted, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(TraceRecorder::quantile_sorted({7.0}, 0.5), 7.0);
}

TEST(TraceRecorder, ReportQuantilesMatchHandComputedValues) {
  TraceRecorder rec;
  // 20 sequential spans with durations 1..20 us staged at exact
  // timestamps. Nearest-rank over N = 20: p50 = 10 us, p95 = 19 us,
  // p99 = 20 us.
  std::uint64_t t = 0;
  for (std::uint64_t d = 1; d <= 20; ++d) {
    rec.emit(TraceRecorder::EventType::kBegin, "work", t);
    rec.emit(TraceRecorder::EventType::kEnd, "work", t + d * 1000);
    t += d * 1000 + 500;
  }
  const Value doc = json::parse(rec.report_json());
  const Value& span = doc.at("spans").at("work");
  EXPECT_DOUBLE_EQ(span.at("count").as_number(), 20.0);
  EXPECT_NEAR(span.at("p50_s").as_number(), 10e-6, 1e-12);
  EXPECT_NEAR(span.at("p95_s").as_number(), 19e-6, 1e-12);
  EXPECT_NEAR(span.at("p99_s").as_number(), 20e-6, 1e-12);
  EXPECT_NEAR(span.at("min_s").as_number(), 1e-6, 1e-12);
  EXPECT_NEAR(span.at("max_s").as_number(), 20e-6, 1e-12);
  EXPECT_NEAR(span.at("total_s").as_number(), 210e-6, 1e-12);
  EXPECT_DOUBLE_EQ(doc.at("meta").at("unmatched_begins").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(doc.at("meta").at("unmatched_ends").as_number(), 0.0);
}

TEST(TraceRecorder, SaturationDropsWholeSpansAndCounts) {
  TraceRecorder rec(/*capacity_per_thread=*/8);
  for (int i = 0; i < 100; ++i) {
    const TraceSpan span(&rec, "s");
    rec.instant("i");
  }
  EXPECT_GT(rec.dropped(), 0u);
  EXPECT_LE(rec.event_count(), 8u);
  const Value doc = json::parse(rec.chrome_json());
  expect_balanced(doc, 1);
  EXPECT_GT(doc.at("otherData").at("dropped").as_number(), 0.0);
  // The report carries the same drop count.
  const Value report = json::parse(rec.report_json());
  EXPECT_GT(report.at("meta").at("dropped").as_number(), 0.0);
}

TEST(TraceRecorder, DisabledPathRecordsNothing) {
  RunContext::Options opts;
  ASSERT_FALSE(opts.trace);  // off by default
  const RunContext ctx(opts);
  EXPECT_EQ(ctx.tracer(), nullptr);
  // All helpers must no-op on a null recorder.
  const TraceSpan span(ctx.tracer(), "x");
  trace_instant(ctx.tracer(), "x");
  trace_counter(ctx.tracer(), "x", 1.0);
}

TEST(TraceRecorder, EnabledContextOwnsRecorder) {
  RunContext::Options opts;
  opts.trace = true;
  const RunContext ctx(opts);
  ASSERT_NE(ctx.tracer(), nullptr);
  { const TraceSpan span(ctx.tracer(), "x"); }
  EXPECT_EQ(ctx.tracer()->event_count(), 2u);
}

TEST(TraceRecorder, TracedSolveIsBitIdenticalToUntraced) {
  const auto exact = make_benchmark_table("exp", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make("prop", {});
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 3;
  params.rounds = 1;
  params.seed = 7;

  auto run_with = [&](bool trace) {
    RunContext::Options opts;
    opts.seed = params.seed;
    opts.trace = trace;
    const RunContext ctx(opts);
    return run_dalta(exact, dist, params, *solver, ctx);
  };
  const auto plain = run_with(false);
  const auto traced = run_with(true);

  ASSERT_EQ(plain.approx.num_patterns(), traced.approx.num_patterns());
  for (std::uint64_t x = 0; x < plain.approx.num_patterns(); ++x) {
    ASSERT_EQ(plain.approx.word(x), traced.approx.word(x)) << "pattern " << x;
  }
  EXPECT_DOUBLE_EQ(plain.med, traced.med);
  EXPECT_EQ(plain.solver_iterations, traced.solver_iterations);
}

TEST(TraceRecorder, SolveTraceContainsConvergenceCounters) {
  const auto exact = make_benchmark_table("exp", 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make("prop", {});
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 3;
  params.rounds = 1;
  params.seed = 7;
  RunContext::Options opts;
  opts.seed = params.seed;
  opts.trace = true;
  const RunContext ctx(opts);
  (void)run_dalta(exact, dist, params, *solver, ctx);

  const Value report = json::parse(ctx.tracer()->report_json(&ctx.telemetry()));
  EXPECT_TRUE(report.at("spans").contains("dalta/run"));
  EXPECT_TRUE(report.at("spans").contains("dalta/candidate"));
  EXPECT_TRUE(report.at("spans").contains("ising/bsb/run"));
  EXPECT_TRUE(report.at("counters").contains("ising/bsb/best_energy"));
  EXPECT_TRUE(report.at("counters").contains("ising/bsb/stop_variance"));
  const Value& telemetry = report.at("telemetry");
  EXPECT_GT(telemetry.at("counters").at("ising/sb/energy_samples")
                .as_number(), 0.0);
  EXPECT_TRUE(telemetry.at("counters").contains("ising/theorem3/resets"));
}

TEST(TelemetrySink, ReportsDroppedPathsOnSaturation) {
  TelemetrySink sink;
  for (int i = 0; i < 2000; ++i) {
    sink.add("spill/" + std::to_string(i));
  }
  EXPECT_GT(sink.dropped(), 0u);
  const Value doc = json::parse(sink.to_json());
  EXPECT_GT(doc.at("dropped").as_number(), 0.0);
  // Early paths made it into the table and keep working.
  EXPECT_EQ(sink.counter("spill/0"), 1u);
}

}  // namespace
}  // namespace adsd
