#include <gtest/gtest.h>

#include <cmath>

#include "boolean/decomposition.hpp"
#include "boolean/error_metrics.hpp"
#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/continuous.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

DaltaParams small_params(DecompMode mode) {
  DaltaParams p;
  p.free_size = 3;
  p.num_partitions = 6;
  p.rounds = 1;
  p.mode = mode;
  p.seed = 7;
  p.parallel = false;
  return p;
}

TruthTable exactly_decomposable_table(unsigned n, unsigned m,
                                      std::uint64_t seed) {
  Rng rng(seed);
  TruthTable tt(n, m);
  // Every output decomposes under the same trivial partition, which the
  // random candidate pool contains with high probability only by luck --
  // so build each output decomposable under *every* partition by making it
  // constant or a single-variable function.
  for (unsigned k = 0; k < m; ++k) {
    const unsigned var = static_cast<unsigned>(rng.next_below(n));
    BitVec bits(tt.num_patterns());
    for (std::uint64_t x = 0; x < tt.num_patterns(); ++x) {
      bits.set(x, (x >> var) & 1);
    }
    tt.set_output(k, bits);
  }
  return tt;
}

TEST(Dalta, SingleVariableOutputsDecomposeLosslessly) {
  // g_k(x) = x_v is decomposable under any partition (x_v lands in A or B);
  // the framework must find zero-error settings for every output.
  const auto exact = exactly_decomposable_table(7, 4, 11);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=7");
  const auto res = run_dalta(exact, dist, small_params(DecompMode::kJoint),
                             *solver);
  EXPECT_DOUBLE_EQ(res.med, 0.0);
  EXPECT_DOUBLE_EQ(res.error_rate, 0.0);
  EXPECT_EQ(res.approx, exact);
}

TEST(Dalta, ReportedMedMatchesRecomputation) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const AlternatingCoreSolver solver(4);
  const auto res =
      run_dalta(exact, dist, small_params(DecompMode::kJoint), solver);
  EXPECT_NEAR(res.med, mean_error_distance(exact, res.approx, dist), 1e-12);
  EXPECT_NEAR(res.error_rate, error_rate(exact, res.approx, dist), 1e-12);
}

TEST(Dalta, EveryOutputGetsASetting) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 6, 5);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  const auto res =
      run_dalta(exact, dist, small_params(DecompMode::kSeparate), solver);
  ASSERT_EQ(res.outputs.size(), 5u);
  for (const auto& out : res.outputs) {
    EXPECT_EQ(out.partition.num_inputs(), 6u);
    EXPECT_EQ(out.setting.v1.size(), out.partition.num_rows());
    EXPECT_EQ(out.setting.t.size(), out.partition.num_cols());
  }
}

TEST(Dalta, ApproxOutputsRealizeChosenSettings) {
  const auto exact = make_continuous_table(continuous_spec("ln"), 6, 4);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  const auto res =
      run_dalta(exact, dist, small_params(DecompMode::kJoint), solver);
  for (unsigned k = 0; k < 4; ++k) {
    const BitVec expect =
        compose_output(res.outputs[k].setting, res.outputs[k].partition);
    EXPECT_EQ(res.approx.output(k), expect);
  }
}

TEST(Dalta, LutNetworkReproducesApproximation) {
  const auto exact = make_continuous_table(continuous_spec("erf"), 6, 5);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  const auto res =
      run_dalta(exact, dist, small_params(DecompMode::kJoint), solver);
  const auto net = res.to_lut_network();
  EXPECT_EQ(net.to_truth_table(), res.approx)
      << "hardware LUT evaluation must agree with the committed approximation";
  // Paper scheme: per-output saving from 2^6 = 64 bits to 2^3 + 2^4 = 24.
  EXPECT_LT(net.total_size_bits(), net.total_flat_size_bits());
}

TEST(Dalta, DeterministicAcrossParallelModes) {
  const auto exact = make_continuous_table(continuous_spec("tan"), 6, 4);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  auto params = small_params(DecompMode::kJoint);
  params.parallel = false;
  const auto serial = run_dalta(exact, dist, params, solver);
  params.parallel = true;
  const auto parallel = run_dalta(exact, dist, params, solver);
  EXPECT_EQ(serial.approx, parallel.approx)
      << "partition evaluation order must not affect the result";
  EXPECT_EQ(serial.med, parallel.med);
}

TEST(Dalta, MorePartitionsNeverHurtJointObjectiveMuch) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 6, 6);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  auto few = small_params(DecompMode::kJoint);
  few.num_partitions = 2;
  auto many = small_params(DecompMode::kJoint);
  many.num_partitions = 12;
  const auto res_few = run_dalta(exact, dist, few, solver);
  const auto res_many = run_dalta(exact, dist, many, solver);
  // Not a strict guarantee (commits are greedy and sequential), but with
  // a 6x larger candidate pool the MED should not degrade noticeably.
  EXPECT_LE(res_many.med, res_few.med * 1.5 + 1e-9);
}

TEST(Dalta, SecondRoundDoesNotHurt) {
  const auto exact = make_continuous_table(continuous_spec("denoise"), 6, 6);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  auto one = small_params(DecompMode::kJoint);
  one.rounds = 1;
  auto two = small_params(DecompMode::kJoint);
  two.rounds = 2;
  const auto res1 = run_dalta(exact, dist, one, solver);
  const auto res2 = run_dalta(exact, dist, two, solver);
  EXPECT_LE(res2.med, res1.med * 1.5 + 1e-9);
}

TEST(Dalta, StatsAccounting) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 6, 3);
  const auto dist = InputDistribution::uniform(6);
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=6");
  auto params = small_params(DecompMode::kSeparate);
  params.rounds = 2;
  const auto res = run_dalta(exact, dist, params, *solver);
  // 3 outputs x 6 partitions x 2 rounds solves.
  EXPECT_EQ(res.cop_solves, 3u * 6u * 2u);
  EXPECT_GT(res.solver_iterations, 0u);
  EXPECT_GT(res.seconds, 0.0);
}

TEST(Dalta, SeparateModeMinimizesPerBitErrors) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const AlternatingCoreSolver solver(6);
  const auto sep =
      run_dalta(exact, dist, small_params(DecompMode::kSeparate), solver);
  const auto joint =
      run_dalta(exact, dist, small_params(DecompMode::kJoint), solver);
  // The paper's qualitative claim: joint mode yields smaller MED because it
  // respects bit significance. The commits are greedy, so allow slack for
  // small instances rather than asserting strict dominance.
  EXPECT_LE(joint.med, sep.med * 1.10 + 0.25);
}

TEST(Dalta, PartitionScreeningIsDeterministicAndRarelyWorse) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const AlternatingCoreSolver solver(4);

  auto base = small_params(DecompMode::kJoint);
  base.num_partitions = 4;
  auto screened = base;
  screened.screen_factor = 6;

  const auto r_scr1 = run_dalta(exact, dist, screened, solver);
  const auto r_scr2 = run_dalta(exact, dist, screened, solver);
  EXPECT_EQ(r_scr1.approx, r_scr2.approx) << "screening must be deterministic";
  // Same solver budget either way: P solves per output.
  EXPECT_EQ(r_scr1.cop_solves, run_dalta(exact, dist, base, solver).cop_solves);

  // Low-multiplicity partitions approximate better on smooth functions.
  // "Rarely worse" is a property of the seed distribution, not of any one
  // draw, so compare mean MED across several seeds.
  double med_base = 0.0;
  double med_scr = 0.0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    base.seed = seed;
    screened.seed = seed;
    med_base += run_dalta(exact, dist, base, solver).med;
    med_scr += run_dalta(exact, dist, screened, solver).med;
  }
  EXPECT_LE(med_scr, med_base * 1.05 + 1e-9);
}

TEST(Dalta, ScreenFactorOneMatchesDefault) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 6, 4);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);
  auto a = small_params(DecompMode::kJoint);
  auto b = a;
  b.screen_factor = 1;
  const auto ra = run_dalta(exact, dist, a, solver);
  const auto rb = run_dalta(exact, dist, b, solver);
  EXPECT_EQ(ra.approx, rb.approx);
}

TEST(Dalta, RejectsBadParameters) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 6, 3);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(2);
  auto params = small_params(DecompMode::kJoint);
  params.free_size = 0;
  EXPECT_THROW((void)run_dalta(exact, dist, params, solver),
               std::invalid_argument);
  params = small_params(DecompMode::kJoint);
  params.free_size = 6;
  EXPECT_THROW((void)run_dalta(exact, dist, params, solver),
               std::invalid_argument);
  params = small_params(DecompMode::kJoint);
  params.num_partitions = 0;
  EXPECT_THROW((void)run_dalta(exact, dist, params, solver),
               std::invalid_argument);
  const auto dist5 = InputDistribution::uniform(5);
  EXPECT_THROW(
      (void)run_dalta(exact, dist5, small_params(DecompMode::kJoint), solver),
      std::invalid_argument);
}

}  // namespace
}  // namespace adsd
