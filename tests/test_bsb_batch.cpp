#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/column_cop.hpp"
#include "core/cop_solvers.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "ising/bsb.hpp"
#include "ising/bsb_batch.hpp"
#include "ising/model.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

IsingModel random_model(std::size_t n, double density, Rng& rng) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_bias(i, rng.next_double(-1.0, 1.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < density) {
        m.add_coupling(i, j, rng.next_double(-1.0, 1.0));
      }
    }
  }
  m.finalize();
  return m;
}

SbParams quick_params(std::uint64_t seed) {
  SbParams p;
  p.max_iterations = 200;
  p.seed = seed;
  return p;
}

// ------------------------------------------------- R=1 bit-for-bit parity

TEST(BsbBatchParity, SingleReplicaMatchesScalarBitForBit) {
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    const auto model = random_model(12 + trial, 0.5, rng);
    const SbParams params = quick_params(100 + trial);
    const auto scalar = solve_sb_scalar(model, params);
    const auto batch = solve_sb_batch(model, params, 1);
    EXPECT_EQ(scalar.energy, batch.energy) << "trial " << trial;
    EXPECT_EQ(scalar.spins, batch.spins) << "trial " << trial;
    EXPECT_EQ(scalar.iterations, batch.iterations);
    EXPECT_EQ(scalar.stopped_early, batch.stopped_early);
  }
}

TEST(BsbBatchParity, SingleReplicaMatchesScalarWithDynamicStop) {
  Rng rng(12);
  for (int trial = 0; trial < 4; ++trial) {
    const auto model = random_model(10, 0.6, rng);
    SbParams params = quick_params(7 + trial);
    params.max_iterations = 2000;
    params.stop.enabled = true;
    params.stop.epsilon = 1e-6;
    params.stop.sample_interval = 5;
    params.stop.window = 6;
    const auto scalar = solve_sb_scalar(model, params);
    const auto batch = solve_sb_batch(model, params, 1);
    EXPECT_EQ(scalar.energy, batch.energy);
    EXPECT_EQ(scalar.spins, batch.spins);
    EXPECT_EQ(scalar.iterations, batch.iterations);
    EXPECT_EQ(scalar.stopped_early, batch.stopped_early);
  }
}

TEST(BsbBatchParity, SingleReplicaMatchesScalarDiscreteVariant) {
  Rng rng(13);
  const auto model = random_model(14, 0.4, rng);
  SbParams params = quick_params(21);
  params.discrete = true;
  const auto scalar = solve_sb_scalar(model, params);
  const auto batch = solve_sb_batch(model, params, 1);
  EXPECT_EQ(scalar.energy, batch.energy);
  EXPECT_EQ(scalar.spins, batch.spins);
}

TEST(BsbBatchParity, SingleReplicaMatchesScalarWithHook) {
  Rng rng(14);
  const auto model = random_model(10, 0.5, rng);
  SbParams params = quick_params(33);
  params.stop.sample_interval = 10;

  // The same pinning intervention expressed through both hook interfaces.
  SbSampleHook scalar_hook = [](std::span<double> x, std::span<double> y) {
    x[0] = 1.0;
    y[0] = 0.0;
  };
  SbBatchHook batch_hook = [](std::size_t, ReplicaView v) {
    v.x(0) = 1.0;
    v.y(0) = 0.0;
  };
  const auto scalar = solve_sb_scalar(model, params, scalar_hook);
  const auto batch = solve_sb_batch(model, params, 1, batch_hook);
  EXPECT_EQ(scalar.energy, batch.energy);
  EXPECT_EQ(scalar.spins, batch.spins);
}

TEST(BsbBatchParity, SolveSbDelegatesToBatchedEngine) {
  Rng rng(15);
  const auto model = random_model(16, 0.5, rng);
  const SbParams params = quick_params(55);
  const auto via_solve_sb = solve_sb(model, params);
  const auto scalar = solve_sb_scalar(model, params);
  EXPECT_EQ(via_solve_sb.energy, scalar.energy);
  EXPECT_EQ(via_solve_sb.spins, scalar.spins);
}

// --------------------------------------------- incremental-energy tracking

TEST(BsbBatchEnergy, TrackedEnergiesMatchScratchRecompute) {
  Rng rng(16);
  for (int trial = 0; trial < 6; ++trial) {
    const auto model = random_model(8 + 2 * trial, 0.3 + 0.1 * trial, rng);
    SbParams params = quick_params(1000 + trial);
    BsbBatchEngine engine(model, params, 4);
    for (int block = 0; block < 10; ++block) {
      for (int s = 0; s < 20; ++s) {
        engine.step();
      }
      engine.sample();
      const auto energies = engine.energies();
      const auto spins = engine.spins();
      for (std::size_t r = 0; r < engine.replicas(); ++r) {
        std::vector<std::int8_t> replica(engine.num_spins());
        for (std::size_t i = 0; i < engine.num_spins(); ++i) {
          replica[i] = spins[i * engine.replicas() + r];
        }
        EXPECT_NEAR(energies[r], model.energy(replica), 1e-9)
            << "trial " << trial << " block " << block << " replica " << r;
      }
    }
  }
}

TEST(BsbBatchEnergy, TrackingSurvivesHookStylePositionEdits) {
  Rng rng(17);
  const auto model = random_model(12, 0.5, rng);
  SbParams params = quick_params(9);
  BsbBatchEngine engine(model, params, 3);
  Rng edits(99);
  for (int block = 0; block < 15; ++block) {
    for (int s = 0; s < 10; ++s) {
      engine.step();
    }
    // Emulate an intervention hook: force a few oscillators to a pole.
    for (std::size_t r = 0; r < engine.replicas(); ++r) {
      ReplicaView v = engine.view(r);
      const std::size_t i = edits.next_below(engine.num_spins());
      v.x(i) = edits.next_bool() ? 1.0 : -1.0;
      v.y(i) = 0.0;
    }
    engine.sample();
    const auto energies = engine.energies();
    const auto spins = engine.spins();
    for (std::size_t r = 0; r < engine.replicas(); ++r) {
      std::vector<std::int8_t> replica(engine.num_spins());
      for (std::size_t i = 0; i < engine.num_spins(); ++i) {
        replica[i] = spins[i * engine.replicas() + r];
      }
      EXPECT_NEAR(energies[r], model.energy(replica), 1e-9);
    }
  }
}

// ----------------------------------------------------- replica view layout

TEST(BsbBatchView, ViewMapsToSoALanes) {
  Rng rng(18);
  const auto model = random_model(6, 0.8, rng);
  SbParams params = quick_params(3);
  BsbBatchEngine engine(model, params, 4);
  auto x = engine.positions();
  for (std::size_t k = 0; k < x.size(); ++k) {
    x[k] = static_cast<double>(k);
  }
  for (std::size_t r = 0; r < 4; ++r) {
    ReplicaView v = engine.view(r);
    ASSERT_EQ(v.size(), engine.num_spins());
    EXPECT_EQ(v.stride(), engine.replicas());
    for (std::size_t i = 0; i < v.size(); ++i) {
      EXPECT_EQ(v.x(i), static_cast<double>(i * 4 + r));
    }
  }
}

TEST(BsbBatchView, StridedHookPinsOnlyItsReplica) {
  Rng rng(19);
  const auto model = random_model(8, 0.5, rng);
  SbParams params = quick_params(4);
  params.max_iterations = 40;
  params.stop.sample_interval = 10;

  std::vector<std::size_t> seen;
  SbBatchHook hook = [&seen](std::size_t r, ReplicaView v) {
    seen.push_back(r);
    if (r == 1) {
      v.x(2) = 1.0;
      v.y(2) = 0.0;
    }
  };
  BsbBatchEngine engine(model, params, 3);
  engine.run(hook);
  // 40 iterations, sample every 10 -> 4 sampling points x 3 replicas.
  ASSERT_EQ(seen.size(), 12u);
  for (std::size_t p = 0; p < seen.size(); ++p) {
    EXPECT_EQ(seen[p], p % 3);
  }
  // The pinned oscillator belongs to replica 1 only.
  EXPECT_EQ(engine.view(1).x(2), 1.0);
}

// ---------------------------------------------------------- ensemble logic

TEST(BsbBatch, MatchesBestOfIndependentScalarRuns) {
  Rng rng(20);
  const auto model = random_model(14, 0.5, rng);
  SbParams params = quick_params(77);
  const std::size_t replicas = 5;
  double best = 1e300;
  for (std::size_t r = 0; r < replicas; ++r) {
    SbParams p = params;
    p.seed = params.seed + 0x9e3779b9u * r;
    best = std::min(best, solve_sb_scalar(model, p).energy);
  }
  const auto batch = solve_sb_batch(model, params, replicas);
  EXPECT_DOUBLE_EQ(batch.energy, best);
  EXPECT_EQ(batch.iterations, 200u * replicas);
}

TEST(BsbBatch, RejectsBadArguments) {
  Rng rng(21);
  const auto model = random_model(4, 1.0, rng);
  SbParams params = quick_params(1);
  EXPECT_THROW(solve_sb_batch(model, params, 0), std::invalid_argument);
  SbParams bad = params;
  bad.dt = 0.0;
  EXPECT_THROW(solve_sb_batch(model, bad, 2), std::invalid_argument);
  bad = params;
  bad.initial_positions.assign(3, 0.0);  // wrong size
  EXPECT_THROW(solve_sb_batch(model, bad, 2), std::invalid_argument);
  IsingModel unfinalized(4);
  EXPECT_THROW(solve_sb_batch(unfinalized, params, 2),
               std::invalid_argument);
}

// --------------------------------------------- row-sharded force kernel

TEST(BsbBatchSharding, ForceShardingIsBitIdenticalAcrossThreadCounts) {
  // n * R = 256 * 32 = 8192 lanes: exactly the threshold where the engine
  // shards force rows across the context pool.
  Rng rng(30);
  const auto model = random_model(256, 0.05, rng);
  SbParams params = quick_params(64);
  params.max_iterations = 60;
  const std::size_t replicas = 32;

  const auto serial = solve_sb_batch(model, params, replicas);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    RunContext::Options opts;
    opts.threads = threads;
    const RunContext ctx(opts);
    const auto sharded =
        solve_sb_batch(model, params, replicas, nullptr, nullptr, &ctx);
    EXPECT_EQ(serial.energy, sharded.energy) << threads << " threads";
    EXPECT_EQ(serial.spins, sharded.spins) << threads << " threads";
    EXPECT_EQ(serial.iterations, sharded.iterations);
  }
}

TEST(BsbBatchSharding, ShardedEngineStateMatchesSerialPlaneForPlane) {
  Rng rng(31);
  const auto model = random_model(512, 0.03, rng);
  SbParams params = quick_params(5);
  const std::size_t replicas = 16;

  BsbBatchEngine serial(model, params, replicas);
  RunContext::Options opts;
  opts.threads = 8;
  const RunContext ctx(opts);
  BsbBatchEngine sharded(model, params, replicas);
  sharded.set_context(&ctx);

  for (int s = 0; s < 50; ++s) {
    serial.step();
    sharded.step();
  }
  const auto xa = serial.positions();
  const auto xb = sharded.positions();
  ASSERT_EQ(xa.size(), xb.size());
  for (std::size_t k = 0; k < xa.size(); ++k) {
    ASSERT_EQ(xa[k], xb[k]) << "lane " << k;
  }
}

// -------------------------------------------------- IsingCoreSolver wiring

TEST(IsingCoreSolverReplicas, MultiReplicaNeverWorseAndDeterministic) {
  const TruthTable tt = make_benchmark_table("exp", 9, 7);
  const InputDistribution dist = InputDistribution::uniform(9);
  const InputPartition w = InputPartition::trivial(9, 4);
  const BooleanMatrix matrix = BooleanMatrix::from_function(tt, 3, w);
  const std::vector<double> probs = matrix_probs(dist, w);
  const ColumnCop cop = ColumnCop::separate(matrix, probs);

  CoreSolveStats stats1;
  const auto single = SolverRegistry::global().make_from_spec("prop,n=9");
  const ColumnSetting s1 = single->solve(cop, 42, &stats1);

  const auto multi =
      SolverRegistry::global().make_from_spec("prop,n=9,replicas=4");
  CoreSolveStats stats4a;
  CoreSolveStats stats4b;
  const ColumnSetting s4a = multi->solve(cop, 42, &stats4a);
  const ColumnSetting s4b = multi->solve(cop, 42, &stats4b);

  EXPECT_LE(stats4a.objective, stats1.objective + 1e-9);
  EXPECT_EQ(stats4a.objective, stats4b.objective);
  EXPECT_TRUE(s4a.v1 == s4b.v1 && s4a.v2 == s4b.v2 && s4a.t == s4b.t);
  EXPECT_NEAR(cop.objective(s4a), stats4a.objective, 1e-12);
  EXPECT_NEAR(cop.objective(s1), stats1.objective, 1e-12);
}

}  // namespace
}  // namespace adsd
