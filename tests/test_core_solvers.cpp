#include <gtest/gtest.h>

#include <cmath>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "boolean/truth_table.hpp"
#include "core/column_cop.hpp"
#include "core/cop_solvers.hpp"
#include "core/row_ilp.hpp"
#include "core/solver_registry.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

// Registry-built solver: the construction path used everywhere outside
// the per-class unit tests (direct Options construction stays reserved
// for testing the options structs themselves).
std::unique_ptr<CoreCopSolver> reg(const std::string& spec) {
  return SolverRegistry::global().make_from_spec(spec);
}

BooleanMatrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  return m;
}

std::vector<double> uniform_probs(std::size_t r, std::size_t c) {
  return std::vector<double>(r * c, 1.0 / static_cast<double>(r * c));
}

ColumnCop small_separate_cop(Rng& rng, std::size_t r = 4, std::size_t c = 8) {
  const auto m = random_matrix(r, c, rng);
  return ColumnCop::separate(m, uniform_probs(r, c));
}

// ----------------------------------------------------------- Exhaustive

TEST(ExhaustiveCore, RejectsLargeInstances) {
  Rng rng(1);
  const auto m = random_matrix(16, 16, rng);  // 48 spins
  const auto cop = ColumnCop::separate(m, uniform_probs(16, 16));
  const ExhaustiveCoreSolver solver;
  EXPECT_THROW((void)solver.solve(cop, 0, nullptr), std::invalid_argument);
}

TEST(ExhaustiveCore, ZeroErrorOnDecomposableMatrix) {
  Rng rng(2);
  const auto w = InputPartition::trivial(6, 2);
  TruthTable tt(6, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cop = ColumnCop::separate(m, uniform_probs(4, 16));
  const ExhaustiveCoreSolver solver;
  CoreSolveStats stats;
  (void)solver.solve(cop, 0, &stats);
  EXPECT_NEAR(stats.objective, 0.0, 1e-15);
  EXPECT_TRUE(stats.proven_optimal);
}

// ---------------------------------------------------- Heuristic solvers

TEST(AlternatingCore, NeverWorseThanSingleStart) {
  Rng rng(3);
  const auto cop = small_separate_cop(rng);
  const AlternatingCoreSolver one(1);
  const AlternatingCoreSolver many(16);
  CoreSolveStats s1;
  CoreSolveStats s16;
  (void)one.solve(cop, 7, &s1);
  (void)many.solve(cop, 7, &s16);
  EXPECT_LE(s16.objective, s1.objective + 1e-12);
}

TEST(AlternatingCore, ReachesOptimumOnTinyInstances) {
  Rng rng(4);
  int optimal_hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = random_matrix(3, 4, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(3, 4));
    const ExhaustiveCoreSolver exact;
    CoreSolveStats es;
    (void)exact.solve(cop, 0, &es);
    const AlternatingCoreSolver alt(16);
    CoreSolveStats as;
    (void)alt.solve(cop, static_cast<std::uint64_t>(trial), &as);
    EXPECT_GE(as.objective, es.objective - 1e-12);
    optimal_hits += std::fabs(as.objective - es.objective) < 1e-12;
  }
  EXPECT_GE(optimal_hits, 8);
}

TEST(HeuristicCore, ZeroErrorOnDecomposableMatrix) {
  Rng rng(5);
  const auto w = InputPartition::trivial(7, 3);
  TruthTable tt(7, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cop =
      ColumnCop::separate(m, uniform_probs(m.rows(), m.cols()));
  const HeuristicCoreSolver solver;
  CoreSolveStats stats;
  (void)solver.solve(cop, 0, &stats);
  // The two most frequent distinct columns ARE the two patterns here.
  EXPECT_NEAR(stats.objective, 0.0, 1e-15);
}

TEST(HeuristicCore, ReturnsValidSetting) {
  Rng rng(6);
  const auto cop = small_separate_cop(rng, 8, 16);
  const HeuristicCoreSolver solver;
  const auto s = solver.solve(cop, 0, nullptr);
  EXPECT_EQ(s.v1.size(), 8u);
  EXPECT_EQ(s.v2.size(), 8u);
  EXPECT_EQ(s.t.size(), 16u);
  EXPECT_GE(cop.objective(s), cop.ideal_bound() - 1e-12);
}

TEST(AnnealCore, IncrementalDeltasConsistent) {
  // The solver verifies its tracked objective at the end; a mismatch in the
  // incremental deltas would surface as a suboptimal reported objective.
  Rng rng(7);
  const auto cop = small_separate_cop(rng, 5, 9);
  const AnnealCoreSolver solver;
  CoreSolveStats stats;
  const auto s = solver.solve(cop, 3, &stats);
  EXPECT_NEAR(stats.objective, cop.objective(s), 1e-12);
}

TEST(AnnealCore, NearOptimalOnTinyInstances) {
  Rng rng(8);
  for (int trial = 0; trial < 5; ++trial) {
    const auto m = random_matrix(3, 4, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(3, 4));
    const ExhaustiveCoreSolver exact;
    CoreSolveStats es;
    (void)exact.solve(cop, 0, &es);
    AnnealCoreSolver::Options opt;
    opt.sweeps = 200;
    opt.restarts = 3;
    const AnnealCoreSolver solver(opt);
    CoreSolveStats as;
    (void)solver.solve(cop, static_cast<std::uint64_t>(trial), &as);
    EXPECT_GE(as.objective, es.objective - 1e-12);
    EXPECT_LE(as.objective, es.objective + 0.15);
  }
}

// ------------------------------------------------------------ B&B (ILP)

TEST(BnbCore, ExactOnSmallInstances) {
  Rng rng(9);
  for (int trial = 0; trial < 8; ++trial) {
    const auto m = random_matrix(3, 5, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(3, 5));
    const ExhaustiveCoreSolver exact;
    CoreSolveStats es;
    (void)exact.solve(cop, 0, &es);
    BnbCoreSolver::Options opt;
    opt.time_budget_s = 0.0;  // run to proven optimality
    const BnbCoreSolver bnb(opt);
    CoreSolveStats bs;
    (void)bnb.solve(cop, static_cast<std::uint64_t>(trial), &bs);
    EXPECT_NEAR(bs.objective, es.objective, 1e-12);
    EXPECT_TRUE(bs.proven_optimal);
  }
}

TEST(BnbCore, ExactOnJointInstances) {
  Rng rng(10);
  const auto m = random_matrix(4, 4, rng);
  std::vector<double> d(16);
  for (auto& v : d) {
    v = std::floor(rng.next_double(-6.0, 6.0));
  }
  const auto cop = ColumnCop::joint(m, uniform_probs(4, 4), d, 4.0);
  const ExhaustiveCoreSolver exact;
  CoreSolveStats es;
  (void)exact.solve(cop, 0, &es);
  BnbCoreSolver::Options opt;
  opt.time_budget_s = 0.0;
  const BnbCoreSolver bnb(opt);
  CoreSolveStats bs;
  (void)bnb.solve(cop, 1, &bs);
  EXPECT_NEAR(bs.objective, es.objective, 1e-12);
}

TEST(BnbCore, AnytimeReturnsWarmIncumbentUnderTinyBudget) {
  Rng rng(11);
  const auto cop = small_separate_cop(rng, 8, 20);
  BnbCoreSolver::Options opt;
  opt.time_budget_s = 1e-9;
  const BnbCoreSolver bnb(opt);
  CoreSolveStats stats;
  const auto s = bnb.solve(cop, 5, &stats);
  EXPECT_NEAR(stats.objective, cop.objective(s), 1e-12);
  EXPECT_FALSE(stats.proven_optimal);
}

TEST(BnbCore, MatchesExhaustiveAcrossSeeds) {
  Rng rng(12);
  for (int trial = 0; trial < 5; ++trial) {
    const auto m = random_matrix(4, 6, rng);  // 14 spins: exhaustive ok
    const auto cop = ColumnCop::separate(m, uniform_probs(4, 6));
    const ExhaustiveCoreSolver exact;
    CoreSolveStats es;
    (void)exact.solve(cop, 0, &es);
    BnbCoreSolver::Options opt;
    opt.time_budget_s = 0.0;
    const BnbCoreSolver bnb(opt);
    CoreSolveStats bs;
    (void)bnb.solve(cop, static_cast<std::uint64_t>(trial), &bs);
    EXPECT_NEAR(bs.objective, es.objective, 1e-12);
  }
}

// ------------------------------------------------------------ Ising/bSB

TEST(IsingCore, PaperDefaultsMatchPaperParameters) {
  const auto small = IsingCoreSolver::Options::paper_defaults(9);
  EXPECT_EQ(small.sb.stop.sample_interval, 20u);
  EXPECT_EQ(small.sb.stop.window, 20u);
  EXPECT_DOUBLE_EQ(small.sb.stop.epsilon, 1e-8);
  const auto large = IsingCoreSolver::Options::paper_defaults(16);
  EXPECT_EQ(large.sb.stop.sample_interval, 10u);
  EXPECT_EQ(large.sb.stop.window, 10u);
}

TEST(IsingCore, ZeroErrorOnDecomposableMatrix) {
  Rng rng(13);
  const auto w = InputPartition::trivial(7, 3);
  TruthTable tt(7, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cop =
      ColumnCop::separate(m, uniform_probs(m.rows(), m.cols()));
  const auto solver = reg("prop,n=7");
  CoreSolveStats stats;
  (void)solver->solve(cop, 42, &stats);
  EXPECT_NEAR(stats.objective, 0.0, 1e-15)
      << "bSB must recover an exact decomposition when one exists";
}

TEST(IsingCore, NearOptimalOnTinyInstances) {
  Rng rng(14);
  int hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = random_matrix(3, 5, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(3, 5));
    const ExhaustiveCoreSolver exact;
    CoreSolveStats es;
    (void)exact.solve(cop, 0, &es);
    const auto solver = reg("prop,n=4");
    CoreSolveStats is;
    (void)solver->solve(cop, static_cast<std::uint64_t>(trial), &is);
    EXPECT_GE(is.objective, es.objective - 1e-12);
    hits += std::fabs(is.objective - es.objective) < 1e-12;
  }
  EXPECT_GE(hits, 8);
}

TEST(IsingCore, DynamicStopReducesIterations) {
  Rng rng(15);
  const auto cop = small_separate_cop(rng, 8, 16);
  const std::string base =
      "prop,max-iter=50000,stop-interval=20,stop-window=20,"
      "stop-epsilon=1e-8";
  CoreSolveStats s_with;
  CoreSolveStats s_without;
  (void)reg(base + ",stop=1")->solve(cop, 1, &s_with);
  (void)reg(base + ",stop=0")->solve(cop, 1, &s_without);
  EXPECT_TRUE(s_with.stopped_early);
  EXPECT_LT(s_with.iterations, s_without.iterations);
  EXPECT_EQ(s_without.iterations, 50000u);
}

TEST(IsingCore, Theorem3InterventionHelpsOnStructuredInstances) {
  // Noisy decomposable matrices: a planted two-pattern structure with a few
  // flipped cells. These have the long flat basins where the Sec. 3.3.2
  // feedback (and its anti-collapse strengthening) earns its keep; on
  // fully random matrices the effect is noise-level.
  Rng rng(16);
  double with_sum = 0.0;
  double without_sum = 0.0;
  for (int trial = 0; trial < 12; ++trial) {
    const auto w = InputPartition::trivial(8, 3);
    TruthTable tt(8, 1);
    tt.set_output(0, random_decomposable_output(w, rng));
    auto m = BooleanMatrix::from_function(tt, 0, w);
    for (int noise = 0; noise < 6; ++noise) {
      m.set(rng.next_below(m.rows()), rng.next_below(m.cols()),
            rng.next_bool());
    }
    const auto cop =
        ColumnCop::separate(m, uniform_probs(m.rows(), m.cols()));
    // polish/seed-init off isolate the intervention itself.
    const auto with = reg("prop,n=8,polish=0,seed-init=0,theorem3=1");
    const auto without =
        reg("prop,n=8,polish=0,seed-init=0,theorem3=0,anti-collapse=0");
    CoreSolveStats sw;
    CoreSolveStats so;
    (void)with->solve(cop, static_cast<std::uint64_t>(trial), &sw);
    (void)without->solve(cop, static_cast<std::uint64_t>(trial), &so);
    with_sum += sw.objective;
    without_sum += so.objective;
  }
  EXPECT_LE(with_sum, without_sum + 1e-9)
      << "the Sec. 3.3.2 heuristic should help (or at worst tie) in total";
}

TEST(IsingCore, AntiCollapseEscapesRankOneFixedPoint) {
  // A matrix whose columns split into two clusters but whose rows carry a
  // strong common bias: plain bSB collapses to the single majority pattern
  // (V1 == V2); the anti-collapse reseed must recover the two-pattern
  // solution. Construct: 8 columns, half equal to pattern A (mostly ones),
  // half equal to pattern B (A with the last three rows flipped).
  const std::size_t r = 6;
  const std::size_t c = 8;
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const bool a_bit = i < 4;  // pattern A = 111100
      const bool b_bit = i < 2;  // pattern B = 110000
      m.set(i, j, j < 4 ? a_bit : b_bit);
    }
  }
  const auto cop = ColumnCop::separate(m, uniform_probs(r, c));
  // The two-pattern optimum is exact (zero error).
  const ExhaustiveCoreSolver exact;
  CoreSolveStats es;
  (void)exact.solve(cop, 0, &es);
  ASSERT_NEAR(es.objective, 0.0, 1e-15);

  CoreSolveStats with;
  (void)reg("prop,n=6,seed-init=0,polish=0,anti-collapse=1")
      ->solve(cop, 3, &with);
  EXPECT_NEAR(with.objective, 0.0, 1e-15)
      << "anti-collapse must recover the planted two-pattern solution";
}

TEST(IsingCore, DeterministicForFixedSeed) {
  Rng rng(17);
  const auto cop = small_separate_cop(rng, 6, 12);
  const auto solver = reg("prop,n=6");
  CoreSolveStats a;
  CoreSolveStats b;
  const auto sa = solver->solve(cop, 99, &a);
  const auto sb = solver->solve(cop, 99, &b);
  EXPECT_EQ(sa.v1, sb.v1);
  EXPECT_EQ(sa.v2, sb.v2);
  EXPECT_EQ(sa.t, sb.t);
  EXPECT_EQ(a.objective, b.objective);
}

TEST(IsingCore, RestartsImproveOrTie) {
  Rng rng(18);
  const auto cop = small_separate_cop(rng, 8, 16);
  CoreSolveStats s1;
  CoreSolveStats s4;
  (void)reg("prop,n=7,restarts=1")->solve(cop, 5, &s1);
  (void)reg("prop,n=7,restarts=4")->solve(cop, 5, &s4);
  EXPECT_LE(s4.objective, s1.objective + 1e-12);
}

// ---------------------------------------------------------- Row-ILP path

TEST(RowIlp, EncodingSolvesTinyCopExactly) {
  Rng rng(19);
  for (int trial = 0; trial < 3; ++trial) {
    const auto m = random_matrix(2, 3, rng);
    std::vector<double> probs(6, 1.0 / 6.0);
    const auto enc = encode_row_cop_separate(m, probs);
    IlpParams params;
    params.time_budget_s = 30.0;
    const auto sol = solve_ilp(enc.problem, params);
    ASSERT_EQ(sol.status, IlpStatus::kOptimal);

    const RowSetting rs = decode_row_ilp(enc, sol.x);
    // The decoded row setting's true weighted error equals the ILP value.
    double err = 0.0;
    for (std::size_t i = 0; i < 2; ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        err += probs[i * 3 + j] * (rs.value(i, j) != m.at(i, j) ? 1.0 : 0.0);
      }
    }
    EXPECT_NEAR(err, sol.objective, 1e-9);

    // And matches the exhaustive column-COP optimum (the two formulations
    // describe the same search space).
    const auto cop = ColumnCop::separate(m, probs);
    const ExhaustiveCoreSolver exact;
    CoreSolveStats es;
    (void)exact.solve(cop, 0, &es);
    EXPECT_NEAR(sol.objective, es.objective, 1e-9)
        << "row-based ILP and column-based COP optima must agree";
  }
}

TEST(RowIlp, EncodingShape) {
  Rng rng(20);
  const auto m = random_matrix(2, 4, rng);
  const auto enc = encode_row_cop_separate(m, std::vector<double>(8, 0.125));
  EXPECT_EQ(enc.rows, 2u);
  EXPECT_EQ(enc.cols, 4u);
  // Variables: 4 V + 8 s + 2*8 z.
  EXPECT_EQ(enc.problem.lp.num_vars(), 4u + 8u + 16u);
  // Binaries: V and s only.
  std::size_t binaries = 0;
  for (bool b : enc.problem.is_binary) {
    binaries += b;
  }
  EXPECT_EQ(binaries, 12u);
}

TEST(RowIlp, JointEncodingMatchesExhaustiveOptimum) {
  Rng rng(25);
  const auto m = random_matrix(2, 3, rng);
  std::vector<double> probs(6, 1.0 / 6.0);
  std::vector<double> d(6);
  for (auto& v : d) {
    v = std::floor(rng.next_double(-5.0, 5.0));
  }
  const double weight = 2.0;

  const auto enc = encode_row_cop_joint(m, probs, d, weight);
  IlpParams params;
  params.time_budget_s = 30.0;
  const auto sol = solve_ilp(enc.problem, params);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);

  const auto cop = ColumnCop::joint(m, probs, d, weight);
  const ExhaustiveCoreSolver exact;
  CoreSolveStats es;
  (void)exact.solve(cop, 0, &es);
  EXPECT_NEAR(sol.objective, es.objective, 1e-9)
      << "row-based joint ILP and column-based joint COP optima must agree";

  // The decoded setting's true |2^k Ohat + D| cost equals the ILP value.
  const RowSetting rs = decode_row_ilp(enc, sol.x);
  double med = 0.0;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      const double ohat = rs.value(i, j) ? 1.0 : 0.0;
      med += probs[i * 3 + j] * std::fabs(weight * ohat + d[i * 3 + j]);
    }
  }
  EXPECT_NEAR(med, sol.objective, 1e-9);
}

TEST(RowIlp, GeneralCostValidation) {
  Rng rng(26);
  const auto m = random_matrix(2, 2, rng);
  EXPECT_THROW((void)encode_row_cop(m, std::vector<double>(3),
                                    std::vector<double>(4)),
               std::invalid_argument);
  EXPECT_THROW((void)encode_row_cop_joint(m, std::vector<double>(4, 0.25),
                                          std::vector<double>(4, 0.0), 0.0),
               std::invalid_argument);
}

TEST(RowIlp, ProbsMismatchThrows) {
  Rng rng(21);
  const auto m = random_matrix(2, 4, rng);
  EXPECT_THROW((void)encode_row_cop_separate(m, std::vector<double>(7)),
               std::invalid_argument);
}

TEST(IsingCore, DiscreteVariantAlsoSolvesDecomposable) {
  Rng rng(60);
  const auto w = InputPartition::trivial(7, 3);
  TruthTable tt(7, 1);
  tt.set_output(0, random_decomposable_output(w, rng));
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cop =
      ColumnCop::separate(m, uniform_probs(m.rows(), m.cols()));
  CoreSolveStats stats;
  (void)reg("prop,n=7,discrete=1")->solve(cop, 5, &stats);
  EXPECT_NEAR(stats.objective, 0.0, 1e-15);
}

TEST(HeuristicCore, LiteralVariantNoWorseThanRefinedNever) {
  // The refined greedy must dominate (or tie) the literal one-shot variant.
  Rng rng(61);
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = random_matrix(6, 10, rng);
    const auto cop = ColumnCop::separate(m, uniform_probs(6, 10));
    CoreSolveStats lit;
    CoreSolveStats refined;
    (void)reg("dalta-lit")->solve(cop, 0, &lit);
    (void)reg("dalta,sweeps=4")->solve(cop, 0, &refined);
    EXPECT_LE(refined.objective, lit.objective + 1e-12);
  }
}

TEST(HeuristicCore, LiteralVariantUsesTheorem3Types) {
  // Even the one-shot variant assigns column types optimally for its seed
  // patterns (Theorem 3), so a manual T improvement must not exist.
  Rng rng(62);
  const auto m = random_matrix(4, 6, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(4, 6));
  CoreSolveStats stats;
  auto s = reg("dalta-lit")->solve(cop, 0, &stats);
  const double before = cop.objective(s);
  cop.reset_optimal_t(s);
  EXPECT_NEAR(cop.objective(s), before, 1e-15);
}

// Cross-solver ordering property: exact <= bnb(unbounded) <= heuristics.
class SolverOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverOrderProperty, ObjectiveOrdering) {
  Rng rng(static_cast<std::uint64_t>(3000 + GetParam()));
  const auto m = random_matrix(4, 6, rng);
  const auto cop = ColumnCop::separate(m, uniform_probs(4, 6));
  const std::uint64_t seed = static_cast<std::uint64_t>(GetParam());

  CoreSolveStats exact_s;
  (void)reg("exhaustive")->solve(cop, seed, &exact_s);

  CoreSolveStats bnb_s;
  (void)reg("ilp,budget=0")->solve(cop, seed, &bnb_s);

  CoreSolveStats alt_s;
  (void)reg("alt,restarts=4")->solve(cop, seed, &alt_s);
  CoreSolveStats heur_s;
  (void)reg("dalta")->solve(cop, seed, &heur_s);
  CoreSolveStats ising_s;
  (void)reg("prop,n=5")->solve(cop, seed, &ising_s);

  EXPECT_NEAR(bnb_s.objective, exact_s.objective, 1e-12);
  EXPECT_GE(alt_s.objective, exact_s.objective - 1e-12);
  EXPECT_GE(heur_s.objective, exact_s.objective - 1e-12);
  EXPECT_GE(ising_s.objective, exact_s.objective - 1e-12);
  EXPECT_GE(cop.ideal_bound() - 1e-12, -1e-12);
  EXPECT_LE(exact_s.objective, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverOrderProperty, ::testing::Range(0, 8));

}  // namespace
}  // namespace adsd
