// SA-on-engine coverage (DESIGN.md §4.8): the rehosted SaEngine must keep
// the historical solver's exact fixed-seed trajectories (the hex-float
// goldens below were captured from the pre-refactor standalone loop), agree
// with its registry-built counterpart, and honor RunContext deadlines the
// shared sweep driver now supplies.
#include <gtest/gtest.h>

#include <stdexcept>
#include <thread>

#include "core/column_cop.hpp"
#include "core/solver_registry.hpp"
#include "ising/model.hpp"
#include "ising/sa.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

// Identical construction to the golden-capture harness that produced the
// hex-float energies below (biases in (-0.5, 0.5), couplings in (-1, 1)).
IsingModel random_model(std::size_t n, double density, Rng& rng) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_bias(i, rng.next_double(-0.5, 0.5));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < density) {
        m.add_coupling(i, j, rng.next_double(-1.0, 1.0));
      }
    }
  }
  m.finalize();
  return m;
}

ColumnCop random_cop(std::uint64_t seed, std::size_t r, std::size_t c) {
  Rng rng(seed);
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  const std::vector<double> probs(r * c, 1.0 / static_cast<double>(r * c));
  return ColumnCop::separate(m, probs);
}

// ------------------------------------------------ fixed-seed goldens

// Captured from the pre-engine-refactor solve_sa() at exactly these
// parameters; bit-for-bit equality is the refactor's contract, so these are
// compared with == on the doubles, not with a tolerance.
TEST(SaEngine, FixedSeedBitReproducibility) {
  Rng model_rng(7);
  const auto m = random_model(14, 0.5, model_rng);

  const struct {
    std::uint64_t seed;
    double energy;
  } goldens[] = {
      {1, -0x1.e58a229b8643cp+3},
      {9, -0x1.e58a229b8644p+3},
      {123, -0x1.e58a229b8643ap+3},
  };
  for (const auto& g : goldens) {
    SaParams p;
    p.sweeps = 200;
    p.seed = g.seed;
    const auto res = solve_sa(m, p);
    EXPECT_EQ(res.energy, g.energy) << "seed " << g.seed;
    EXPECT_EQ(res.iterations, 200u);
    EXPECT_FALSE(res.stopped_early);
    EXPECT_NEAR(m.energy(res.spins), res.energy, 1e-9);
  }
}

TEST(SaEngine, FixedSeedDynamicStopGolden) {
  Rng model_rng(7);
  const auto m = random_model(14, 0.5, model_rng);
  SaParams p;
  p.sweeps = 400;
  p.seed = 5;
  p.stop.enabled = true;
  p.stop.sample_interval = 1;
  p.stop.window = 12;
  p.stop.epsilon = 1e-10;
  const auto res = solve_sa(m, p);
  EXPECT_EQ(res.energy, -0x1.e58a229b86443p+3);
  EXPECT_EQ(res.iterations, 243u);
  EXPECT_TRUE(res.stopped_early);
}

TEST(SaEngine, RerunIsBitIdentical) {
  Rng model_rng(21);
  const auto m = random_model(12, 0.6, model_rng);
  SaParams p;
  p.sweeps = 150;
  p.seed = 77;
  const auto a = solve_sa(m, p);
  const auto b = solve_sa(m, p);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.spins, b.spins);
  EXPECT_EQ(a.iterations, b.iterations);
}

// ------------------------------------------------ registry equivalence

// A registry-built "sa" solver and a hand-configured IsingCoreSolver with
// the same options must be the same solver: identical objective and
// setting on the same COP and seed.
TEST(SaEngine, RegistryMatchesDirectConstruction) {
  SolverConfig config;
  config.set("n", "5");
  config.set("replicas", "2");
  config.set("sweeps", "150");
  const auto from_registry = SolverRegistry::global().make("sa", config);

  auto options = IsingCoreSolver::Options::paper_defaults(5);
  options.engine = IsingEngineKind::kSa;
  options.use_theorem3 = false;
  options.anti_collapse = false;
  options.replicas = 2;
  options.sa.sweeps = 150;
  options.sa.stop = options.sb.stop;
  const IsingCoreSolver direct(options);

  const RunContext ctx{RunContext::Options{}};
  for (std::uint64_t seed : {11ull, 42ull, 99ull}) {
    const ColumnCop cop = random_cop(seed, 5, 12);
    CoreSolveStats reg_stats;
    CoreSolveStats direct_stats;
    const ColumnSetting a = from_registry->solve(cop, ctx, seed, &reg_stats);
    const ColumnSetting b = direct.solve(cop, ctx, seed, &direct_stats);
    EXPECT_EQ(reg_stats.objective, direct_stats.objective) << "seed " << seed;
    EXPECT_EQ(reg_stats.iterations, direct_stats.iterations);
    EXPECT_TRUE(a.v1 == b.v1 && a.v2 == b.v2 && a.t == b.t);
  }
}

TEST(SaEngine, RegistryAliasAndSpinFlipKeysAreWired) {
  const auto& reg = SolverRegistry::global();
  ASSERT_NE(reg.find("sa"), nullptr);
  EXPECT_EQ(reg.find("ising-sa"), reg.find("sa"));
  // Spin-flip dynamics take no kernel/dt keys; asking for one must fail
  // the strict-key check rather than being silently ignored.
  EXPECT_THROW((void)reg.make_from_spec("sa,kernel=avx2"),
               std::invalid_argument);
  EXPECT_THROW((void)reg.make_from_spec("sa,dt=0.5"), std::invalid_argument);
  EXPECT_NO_THROW(
      (void)reg.make_from_spec("sa,sweeps=10,beta-start=0.2,beta-end=8"));
}

// ------------------------------------------------ deadline honoring

// An already-expired deadline must stop the solve at the entry check: the
// initial assignment comes back, marked stopped_early, with zero executed
// sweeps and the deadline-hit telemetry counter bumped.
TEST(SaEngine, ExpiredDeadlineStopsBeforeFirstSweep) {
  Rng model_rng(3);
  const auto m = random_model(10, 0.5, model_rng);
  RunContext::Options opts;
  opts.time_budget_s = 1e-9;
  const RunContext ctx(opts);
  while (!ctx.expired()) {
    std::this_thread::yield();
  }
  SaParams p;
  p.sweeps = 100000;
  const auto res = solve_sa(m, p, &ctx);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_EQ(res.iterations, 0u);
  EXPECT_NEAR(m.energy(res.spins), res.energy, 1e-9);
  EXPECT_GE(ctx.telemetry().counter("ising/sa/deadline_hits"), 1u);
}

// A deadline that expires mid-run stops within one sweep of it firing and
// still returns the best energy seen so far.
TEST(SaEngine, MidRunDeadlineStopsEarly) {
  Rng model_rng(5);
  const auto m = random_model(16, 0.6, model_rng);
  RunContext::Options opts;
  opts.time_budget_s = 0.02;
  const RunContext ctx(opts);
  SaParams p;
  p.sweeps = 50000000;  // far beyond the budget on any host
  const auto res = solve_sa(m, p, &ctx);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.iterations, p.sweeps);
  EXPECT_NEAR(m.energy(res.spins), res.energy, 1e-9);
}

// ------------------------------------------------ validation

TEST(SaEngine, RejectsBadParameters) {
  Rng model_rng(1);
  const auto m = random_model(6, 0.5, model_rng);
  SaParams zero_sweeps;
  zero_sweeps.sweeps = 0;
  EXPECT_THROW((void)solve_sa(m, zero_sweeps), std::invalid_argument);

  IsingModel unfinalized(4);
  SaParams p;
  EXPECT_THROW((void)solve_sa(unfinalized, p), std::invalid_argument);
}

}  // namespace
}  // namespace adsd
