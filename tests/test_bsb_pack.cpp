#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "core/column_cop.hpp"
#include "core/cop_solvers.hpp"
#include "core/dalta.hpp"
#include "core/nondisjoint_dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "ising/bsb.hpp"
#include "ising/bsb_batch.hpp"
#include "ising/bsb_pack.hpp"
#include "ising/model.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

IsingModel random_model(std::size_t n, double density, Rng& rng) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_bias(i, rng.next_double(-1.0, 1.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < density) {
        m.add_coupling(i, j, rng.next_double(-1.0, 1.0));
      }
    }
  }
  m.finalize();
  return m;
}

std::vector<IsingModel> member_models(std::size_t count, std::size_t n,
                                      std::uint64_t seed) {
  Rng rng(seed);
  std::vector<IsingModel> models;
  models.reserve(count);
  for (std::size_t m = 0; m < count; ++m) {
    models.push_back(random_model(n, 0.3 + 0.1 * (m % 5), rng));
  }
  return models;
}

/// The standalone reference every packed member must reproduce bit-for-bit:
/// BsbBatchEngine on the member's own model with SbParams.seed = its seed.
IsingSolveResult standalone(const IsingModel& model, SbParams params,
                            std::uint64_t seed, std::size_t replicas) {
  params.seed = seed;
  BsbBatchEngine engine(model, params, replicas);
  return engine.run();
}

// ------------------------------------------------------- member bit parity

TEST(BsbPackParity, MembersMatchStandaloneAcrossLayoutsAndReplicas) {
  const auto models = member_models(5, 12, 101);
  SbParams params;
  params.max_iterations = 300;
  params.stop.enabled = true;
  params.stop.epsilon = 1e-6;
  params.stop.sample_interval = 5;
  params.stop.window = 6;

  for (const PackLayout layout : {PackLayout::kSlots, PackLayout::kBlocks}) {
    for (const std::size_t replicas :
         {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
      std::vector<PackMember> members;
      for (std::size_t m = 0; m < models.size(); ++m) {
        members.push_back({&models[m], 1000 + 7 * m, {}});
      }
      BsbPackEngine engine(members, params, replicas, layout);
      const auto packed = engine.run();
      ASSERT_EQ(packed.size(), models.size());
      for (std::size_t m = 0; m < models.size(); ++m) {
        const auto ref =
            standalone(models[m], params, members[m].seed, replicas);
        EXPECT_EQ(ref.energy, packed[m].energy)
            << pack_layout_name(layout) << " R=" << replicas << " m=" << m;
        EXPECT_EQ(ref.spins, packed[m].spins)
            << pack_layout_name(layout) << " R=" << replicas << " m=" << m;
        EXPECT_EQ(ref.iterations, packed[m].iterations);
        EXPECT_EQ(ref.stopped_early, packed[m].stopped_early);
      }
    }
  }
}

TEST(BsbPackParity, MembersMatchStandaloneAtEveryKernelRequest) {
  const auto models = member_models(4, 10, 202);
  for (const kernels::ForceKernel kernel :
       {kernels::ForceKernel::kScalar, kernels::ForceKernel::kAvx2,
        kernels::ForceKernel::kAvx512, kernels::ForceKernel::kDense,
        kernels::ForceKernel::kAuto}) {
    SbParams params;
    params.max_iterations = 250;
    params.kernel = kernel;
    params.stop.enabled = true;
    params.stop.epsilon = 1e-7;
    params.stop.sample_interval = 10;
    params.stop.window = 5;

    for (const PackLayout layout :
         {PackLayout::kSlots, PackLayout::kBlocks}) {
      std::vector<PackMember> members;
      for (std::size_t m = 0; m < models.size(); ++m) {
        members.push_back({&models[m], 31 + m, {}});
      }
      BsbPackEngine engine(members, params, 2, layout);
      const auto packed = engine.run();
      for (std::size_t m = 0; m < models.size(); ++m) {
        const auto ref = standalone(models[m], params, members[m].seed, 2);
        EXPECT_EQ(ref.energy, packed[m].energy)
            << kernels::force_kernel_name(kernel) << " "
            << pack_layout_name(layout) << " m=" << m;
        EXPECT_EQ(ref.spins, packed[m].spins);
        EXPECT_EQ(ref.iterations, packed[m].iterations);
      }
    }
  }
}

TEST(BsbPackParity, DiscreteVariantMatchesStandalone) {
  const auto models = member_models(3, 11, 303);
  SbParams params;
  params.max_iterations = 150;
  params.discrete = true;
  std::vector<PackMember> members;
  for (std::size_t m = 0; m < models.size(); ++m) {
    members.push_back({&models[m], 71 + m, {}});
  }
  for (const PackLayout layout : {PackLayout::kSlots, PackLayout::kBlocks}) {
    BsbPackEngine engine(members, params, 1, layout);
    const auto packed = engine.run();
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto ref = standalone(models[m], params, members[m].seed, 1);
      EXPECT_EQ(ref.energy, packed[m].energy);
      EXPECT_EQ(ref.spins, packed[m].spins);
    }
  }
}

TEST(BsbPackParity, InitialPositionsWarmStartMatchesStandalone) {
  const auto models = member_models(3, 9, 404);
  SbParams params;
  params.max_iterations = 120;
  Rng rng(55);
  std::vector<std::vector<double>> warm(models.size());
  std::vector<PackMember> members;
  for (std::size_t m = 0; m < models.size(); ++m) {
    warm[m].resize(9);
    for (double& v : warm[m]) {
      v = rng.next_double(-0.1, 0.1);
    }
    members.push_back({&models[m], 5 + m, warm[m]});
  }
  for (const PackLayout layout : {PackLayout::kSlots, PackLayout::kBlocks}) {
    BsbPackEngine engine(members, params, 2, layout);
    const auto packed = engine.run();
    for (std::size_t m = 0; m < models.size(); ++m) {
      SbParams p = params;
      p.initial_positions = warm[m];
      const auto ref = standalone(models[m], p, members[m].seed, 2);
      EXPECT_EQ(ref.energy, packed[m].energy);
      EXPECT_EQ(ref.spins, packed[m].spins);
    }
  }
}

// ------------------------------------------- retirement at different steps

TEST(BsbPackRetirement, MembersRetireAtDifferentIterationsAndStayExact) {
  // A loose variance window makes each member's dynamic stop fire at its
  // own step; the packed run must retire them one by one (slot compaction
  // in kSlots) without disturbing the survivors.
  const auto models = member_models(6, 10, 505);
  SbParams params;
  params.max_iterations = 4000;
  params.stop.enabled = true;
  params.stop.epsilon = 1e-3;
  params.stop.sample_interval = 5;
  params.stop.window = 4;

  for (const PackLayout layout : {PackLayout::kSlots, PackLayout::kBlocks}) {
    std::vector<PackMember> members;
    for (std::size_t m = 0; m < models.size(); ++m) {
      members.push_back({&models[m], 900 + 13 * m, {}});
    }
    BsbPackEngine engine(members, params, 1, layout);
    const auto packed = engine.run();
    std::set<std::size_t> distinct;
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto ref = standalone(models[m], params, members[m].seed, 1);
      EXPECT_EQ(ref.energy, packed[m].energy)
          << pack_layout_name(layout) << " m=" << m;
      EXPECT_EQ(ref.spins, packed[m].spins);
      EXPECT_EQ(ref.iterations, packed[m].iterations);
      EXPECT_TRUE(packed[m].stopped_early) << "m=" << m;
      distinct.insert(packed[m].iterations);
    }
    // The point of the test: retirement actually happened at unequal steps.
    EXPECT_GT(distinct.size(), 1u) << pack_layout_name(layout);
  }
}

// ----------------------------------------------------- intervention hooks

TEST(BsbPackHook, PlaneHookSeesStandaloneLayoutAndStaysExact) {
  const auto models = member_models(4, 8, 606);
  SbParams params;
  params.max_iterations = 100;
  params.stop.sample_interval = 10;
  const std::size_t replicas = 2;

  // Per-member pinning intervention, written once against the standalone
  // plane layout (element i of replica r at i * replicas + r).
  auto pin = [](std::size_t member, std::span<double> x, std::span<double> y,
                std::size_t reps) {
    const std::size_t i = member % 8;
    for (std::size_t r = 0; r < reps; ++r) {
      x[i * reps + r] = (member % 2 == 0) ? 1.0 : -1.0;
      y[i * reps + r] = 0.0;
    }
  };

  for (const PackLayout layout : {PackLayout::kSlots, PackLayout::kBlocks}) {
    std::vector<PackMember> members;
    for (std::size_t m = 0; m < models.size(); ++m) {
      members.push_back({&models[m], 40 + m, {}});
    }
    BsbPackEngine engine(members, params, replicas, layout);
    const auto packed = engine.run(pin);
    for (std::size_t m = 0; m < models.size(); ++m) {
      SbParams p = params;
      p.seed = members[m].seed;
      BsbBatchEngine ref_engine(models[m], p, replicas);
      const auto ref = ref_engine.run(
          nullptr, [&](std::span<double> x, std::span<double> y,
                       std::size_t reps) { pin(m, x, y, reps); });
      EXPECT_EQ(ref.energy, packed[m].energy)
          << pack_layout_name(layout) << " m=" << m;
      EXPECT_EQ(ref.spins, packed[m].spins);
    }
  }
}

// ------------------------------------------------- tile-width bit parity

TEST(BsbPackParity, TileWidthsAreBitIdentical) {
  // Any slot-tile width must reproduce the standalone trajectories: tiles
  // only change which slots advance together between sampling points, and
  // members never interact between sampling points.
  const auto models = member_models(7, 10, 808);
  SbParams params;
  params.max_iterations = 200;
  params.stop.enabled = true;
  params.stop.epsilon = 1e-6;
  params.stop.sample_interval = 5;
  params.stop.window = 5;

  for (const std::size_t tile :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{64}}) {
    std::vector<PackMember> members;
    for (std::size_t m = 0; m < models.size(); ++m) {
      members.push_back({&models[m], 4000 + 11 * m, {}});
    }
    PackEngineOptions o;
    o.layout = PackLayout::kSlots;
    o.tile = tile;
    BsbPackEngine engine(members, params, 1, o);
    EXPECT_GE(engine.tile(), 1u);
    EXPECT_LE(engine.tile(), members.size());
    const auto packed = engine.run();
    for (std::size_t m = 0; m < models.size(); ++m) {
      const auto ref = standalone(models[m], params, members[m].seed, 1);
      EXPECT_EQ(ref.energy, packed[m].energy) << "tile=" << tile << " m=" << m;
      EXPECT_EQ(ref.spins, packed[m].spins) << "tile=" << tile << " m=" << m;
      EXPECT_EQ(ref.iterations, packed[m].iterations);
    }
  }
}

// --------------------------------------------------- shared-J bit parity

TEST(BsbPackParity, SharedJMatchesStandaloneAndPerSlotPlanes) {
  // Restart-style packs: every member references the same model with its
  // own seed. The broadcast-weight kernels must match both the standalone
  // solves and the per-slot-plane pack bit for bit.
  Rng rng(909);
  const IsingModel model = random_model(12, 0.4, rng);
  for (const bool discrete : {false, true}) {
    SbParams params;
    params.max_iterations = 180;
    params.discrete = discrete;
    params.stop.enabled = true;
    params.stop.epsilon = 1e-6;
    params.stop.sample_interval = 5;
    params.stop.window = 5;
    std::vector<PackMember> members;
    for (std::size_t m = 0; m < 9; ++m) {
      members.push_back({&model, 6000 + 23 * m, {}});
    }
    PackEngineOptions shared;
    shared.share_j = true;
    BsbPackEngine engine(members, params, 2, shared);
    EXPECT_TRUE(engine.shared_j());
    EXPECT_EQ(engine.layout(), PackLayout::kSlots);
    EXPECT_NE(std::string(engine.kernel_name()).find("sharedj"),
              std::string::npos);
    const auto packed = engine.run();

    BsbPackEngine per_slot(members, params, 2, PackLayout::kSlots);
    const auto plain = per_slot.run();
    for (std::size_t m = 0; m < members.size(); ++m) {
      const auto ref = standalone(model, params, members[m].seed, 2);
      EXPECT_EQ(ref.energy, packed[m].energy)
          << "discrete=" << discrete << " m=" << m;
      EXPECT_EQ(ref.spins, packed[m].spins);
      EXPECT_EQ(ref.iterations, packed[m].iterations);
      EXPECT_EQ(plain[m].energy, packed[m].energy);
      EXPECT_EQ(plain[m].spins, packed[m].spins);
    }
  }
}

// ---------------------------------------------------- mixed-n bit parity

TEST(BsbPackParity, MixedSpinCountsMatchStandalone) {
  // Members of different sizes share one pack: smaller members ride with
  // inert padded spins and must still match their standalone solves.
  Rng rng(111);
  std::vector<IsingModel> models;
  for (const std::size_t n :
       {std::size_t{6}, std::size_t{12}, std::size_t{9}, std::size_t{5},
        std::size_t{12}, std::size_t{8}}) {
    models.push_back(random_model(n, 0.5, rng));
  }
  SbParams params;
  params.max_iterations = 220;
  params.stop.enabled = true;
  params.stop.epsilon = 1e-6;
  params.stop.sample_interval = 5;
  params.stop.window = 5;

  for (const PackLayout layout : {PackLayout::kSlots, PackLayout::kBlocks}) {
    for (const std::size_t replicas : {std::size_t{1}, std::size_t{2}}) {
      std::vector<PackMember> members;
      for (std::size_t m = 0; m < models.size(); ++m) {
        members.push_back({&models[m], 7000 + 31 * m, {}});
      }
      BsbPackEngine engine(members, params, replicas, layout);
      EXPECT_EQ(engine.num_spins(), 12u);
      EXPECT_EQ(engine.member_spins(0), 6u);
      const auto packed = engine.run();
      for (std::size_t m = 0; m < models.size(); ++m) {
        const auto ref =
            standalone(models[m], params, members[m].seed, replicas);
        EXPECT_EQ(ref.energy, packed[m].energy)
            << pack_layout_name(layout) << " R=" << replicas << " m=" << m;
        EXPECT_EQ(ref.spins, packed[m].spins);
        EXPECT_EQ(ref.iterations, packed[m].iterations);
        ASSERT_EQ(packed[m].spins.size(), models[m].num_spins());
      }
    }
  }
}

// ------------------------------------------------------ deadline handling

TEST(BsbPackDeadline, ExpiredContextRetiresEveryMemberImmediately) {
  const auto models = member_models(3, 8, 707);
  SbParams params;
  params.max_iterations = 100000;
  RunContext::Options opts;
  opts.time_budget_s = 1e-9;
  const RunContext ctx(opts);
  while (!ctx.expired()) {
  }
  std::vector<PackMember> members;
  for (std::size_t m = 0; m < models.size(); ++m) {
    members.push_back({&models[m], 3 + m, {}});
  }
  BsbPackEngine engine(members, params, 1);
  engine.set_context(&ctx);
  const auto packed = engine.run();
  for (const auto& res : packed) {
    EXPECT_TRUE(res.stopped_early);
    EXPECT_EQ(res.iterations, 0u);
  }
}

TEST(BsbPackDeadline, BlocksLayoutCompactsMidSolveOnDeadline) {
  // A deadline that expires in the middle of a run must retire members at
  // their next sampling point without disturbing the survivors' blocks.
  // Member 2's hook burns the whole budget at the first sampling point
  // (step 10): members 0 and 1 passed their deadline check before it ran,
  // so they survive to step 20, while members 2..5 retire at step 10.
  const auto models = member_models(6, 8, 1212);
  SbParams params;
  params.max_iterations = 20;
  params.stop.sample_interval = 10;

  auto run_layout = [&](PackLayout layout) {
    RunContext::Options opts;
    opts.time_budget_s = 0.25;
    const RunContext ctx(opts);
    auto burn = [&](std::size_t member, std::span<double>, std::span<double>,
                    std::size_t) {
      if (member == 2) {
        while (!ctx.expired()) {
        }
      }
    };
    std::vector<PackMember> members;
    for (std::size_t m = 0; m < models.size(); ++m) {
      members.push_back({&models[m], 50 + m, {}});
    }
    BsbPackEngine engine(members, params, 1, layout);
    engine.set_context(&ctx);
    return engine.run(burn);
  };

  const auto blocks = run_layout(PackLayout::kBlocks);
  const auto slots = run_layout(PackLayout::kSlots);
  for (std::size_t m = 0; m < models.size(); ++m) {
    EXPECT_EQ(blocks[m].iterations, m < 2 ? 20u : 10u) << "m=" << m;
    EXPECT_TRUE(blocks[m].stopped_early) << "m=" << m;
    // The two layouts follow the same retirement schedule, so the whole
    // result set must agree bit for bit.
    EXPECT_EQ(blocks[m].energy, slots[m].energy) << "m=" << m;
    EXPECT_EQ(blocks[m].spins, slots[m].spins) << "m=" << m;
    EXPECT_EQ(blocks[m].iterations, slots[m].iterations) << "m=" << m;
    // Results stay internally consistent after mid-solve compaction.
    EXPECT_EQ(blocks[m].energy, models[m].energy(blocks[m].spins)) << "m=" << m;
  }
}

TEST(BsbPackDeadline, BatchEngineChecksDeadlineAtRestartBoundary) {
  Rng rng(14);
  const auto model = random_model(8, 0.5, rng);
  SbParams params;
  params.max_iterations = 100000;
  RunContext::Options opts;
  opts.time_budget_s = 1e-9;
  const RunContext ctx(opts);
  while (!ctx.expired()) {
  }
  const auto res = solve_sb_batch(model, params, 1, nullptr, nullptr, &ctx);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_EQ(res.iterations, 0u);
}

// ------------------------------------------------------ argument checking

TEST(BsbPack, RejectsBadArguments) {
  Rng rng(21);
  const auto a = random_model(6, 0.8, rng);
  const auto b = random_model(7, 0.8, rng);
  SbParams params;
  EXPECT_THROW(BsbPackEngine({}, params, 1), std::invalid_argument);
  {
    // Mixed spin counts are legal (padded), but shared-J demands one model.
    const std::vector<PackMember> mixed = {{&a, 1, {}}, {&b, 2, {}}};
    BsbPackEngine ok(mixed, params, 1);
    EXPECT_EQ(ok.num_spins(), 7u);
    PackEngineOptions shared;
    shared.share_j = true;
    EXPECT_THROW(BsbPackEngine(mixed, params, 1, shared),
                 std::invalid_argument);
    // shared-J is a slot-layout fast path; the block layout has no shared
    // plane to use.
    const std::vector<PackMember> same = {{&a, 1, {}}, {&a, 2, {}}};
    shared.layout = PackLayout::kBlocks;
    EXPECT_THROW(BsbPackEngine(same, params, 1, shared),
                 std::invalid_argument);
  }
  {
    IsingModel unfinalized(6);
    const std::vector<PackMember> raw = {{&unfinalized, 1, {}}};
    EXPECT_THROW(BsbPackEngine(raw, params, 1), std::invalid_argument);
  }
  EXPECT_THROW(parse_pack_layout("bogus"), std::invalid_argument);
  EXPECT_EQ(parse_pack_layout("slots"), PackLayout::kSlots);
  EXPECT_EQ(parse_pack_layout("blocks"), PackLayout::kBlocks);
  EXPECT_EQ(parse_pack_layout("auto"), PackLayout::kAuto);
}

// ------------------------------------------------- packed core COP solver

ColumnCop benchmark_cop(unsigned output, unsigned shift = 0) {
  const TruthTable tt = make_benchmark_table("exp", 9, 7);
  const InputDistribution dist = InputDistribution::uniform(9);
  Rng rng(77 + shift);
  const InputPartition w = InputPartition::random(9, 4, rng);
  const BooleanMatrix matrix = BooleanMatrix::from_function(tt, output, w);
  const std::vector<double> probs = matrix_probs(dist, w);
  return ColumnCop::separate(matrix, probs);
}

TEST(PackedCoreCopSolver, SingleSolveMatchesIsingCoreSolver) {
  const ColumnCop cop = benchmark_cop(3);
  const auto plain = SolverRegistry::global().make_from_spec("prop,n=9");
  const auto packed =
      SolverRegistry::global().make_from_spec("prop,n=9,pack=8");
  CoreSolveStats sp;
  CoreSolveStats sq;
  const ColumnSetting p = plain->solve(cop, 42, &sp);
  const ColumnSetting q = packed->solve(cop, 42, &sq);
  EXPECT_TRUE(p.v1 == q.v1 && p.v2 == q.v2 && p.t == q.t);
  EXPECT_EQ(sp.objective, sq.objective);
  EXPECT_EQ(sp.iterations, sq.iterations);
  EXPECT_EQ(sp.stopped_early, sq.stopped_early);
}

TEST(PackedCoreCopSolver, BatchMatchesLoopedSolvesAcrossConfigs) {
  std::vector<ColumnCop> cops;
  for (unsigned k = 0; k < 6; ++k) {
    cops.push_back(benchmark_cop(k % 7, k));
  }
  std::vector<std::uint64_t> seeds;
  for (std::size_t i = 0; i < cops.size(); ++i) {
    seeds.push_back(1000 + 17 * i);
  }
  // Theorem-3 + dynamic stop are on by default; replicas=1 lands in the
  // slot layout, replicas=4 in the block layout, restarts=2 exercises the
  // per-attempt reseed, pack=3 forces multiple chunks per batch. The
  // pack-* keys exist only on the packed side (they change nothing about
  // per-member results); `plain` is the key set the reference sees.
  struct Config {
    std::string packed;
    std::string plain;
  };
  for (const Config& cfg :
       {Config{"", ""}, Config{",replicas=4", ",replicas=4"},
        Config{",restarts=2", ",restarts=2"},
        Config{",pack-layout=blocks", ""}, Config{",pack-tile=2", ""},
        Config{",restarts=3,pack-share-j=1", ",restarts=3"}}) {
    const std::string& extra = cfg.packed;
    const auto plain =
        SolverRegistry::global().make_from_spec("prop,n=9" + cfg.plain);
    const auto packed = SolverRegistry::global().make_from_spec(
        "prop,n=9,pack=3" + extra);
    const RunContext ctx(std::uint64_t{7});
    std::vector<CoreSolveStats> packed_stats;
    const auto batch = packed->solve_batch(cops, ctx, seeds, &packed_stats);
    ASSERT_EQ(batch.size(), cops.size());
    for (std::size_t i = 0; i < cops.size(); ++i) {
      CoreSolveStats ref_stats;
      const ColumnSetting ref =
          plain->solve(cops[i], ctx, seeds[i], &ref_stats);
      EXPECT_TRUE(ref.v1 == batch[i].v1 && ref.v2 == batch[i].v2 &&
                  ref.t == batch[i].t)
          << "config '" << extra << "' instance " << i;
      EXPECT_EQ(ref_stats.objective, packed_stats[i].objective);
      EXPECT_EQ(ref_stats.iterations, packed_stats[i].iterations);
      EXPECT_EQ(ref_stats.stopped_early, packed_stats[i].stopped_early);
    }
  }
}

TEST(PackedCoreCopSolver, UnbatchedSolverBatchEqualsLoop) {
  // The default solve_batch path (no batched() override) must equal a
  // caller-side loop for any solver.
  std::vector<ColumnCop> cops;
  for (unsigned k = 0; k < 3; ++k) {
    cops.push_back(benchmark_cop(k, 10 + k));
  }
  const std::vector<std::uint64_t> seeds = {5, 6, 7};
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=9");
  const RunContext ctx(std::uint64_t{3});
  std::vector<CoreSolveStats> stats;
  const auto batch = solver->solve_batch(cops, ctx, seeds, &stats);
  for (std::size_t i = 0; i < cops.size(); ++i) {
    CoreSolveStats ref_stats;
    const ColumnSetting ref = solver->solve(cops[i], ctx, seeds[i], &ref_stats);
    EXPECT_TRUE(ref.v1 == batch[i].v1 && ref.v2 == batch[i].v2 &&
                ref.t == batch[i].t);
    EXPECT_EQ(ref_stats.objective, stats[i].objective);
  }
  EXPECT_THROW(solver->solve_batch(cops, ctx, std::vector<std::uint64_t>{1}),
               std::invalid_argument);
}

// ----------------------------------------------------- registry spec keys

TEST(PackedCoreCopSolver, RegistrySpecBuildsPackedSolver) {
  const auto packed =
      SolverRegistry::global().make_from_spec("prop,pack=16");
  EXPECT_EQ(packed->name(), "ising-bsb-pack");
  EXPECT_TRUE(packed->batched());
  const auto plain = SolverRegistry::global().make_from_spec("prop");
  EXPECT_EQ(plain->name(), "ising-bsb");
  EXPECT_FALSE(plain->batched());
  // pack-* keys without pack are configuration errors; bogus values too.
  EXPECT_THROW(
      SolverRegistry::global().make_from_spec("prop,pack-layout=slots"),
      std::invalid_argument);
  EXPECT_THROW(
      SolverRegistry::global().make_from_spec("prop,pack-tile=4"),
      std::invalid_argument);
  EXPECT_THROW(
      SolverRegistry::global().make_from_spec("prop,pack-share-j=1"),
      std::invalid_argument);
  EXPECT_THROW(
      SolverRegistry::global().make_from_spec("prop,pack=4,pack-layout=x"),
      std::invalid_argument);
  // Malformed pack-tile enumerates the accepted values in the message.
  try {
    SolverRegistry::global().make_from_spec("prop,pack=4,pack-tile=huge");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("pack-tile"), std::string::npos);
    EXPECT_NE(what.find("auto"), std::string::npos);
    EXPECT_NE(what.find("positive"), std::string::npos);
  }
  EXPECT_THROW(
      SolverRegistry::global().make_from_spec("prop,pack=4,pack-tile=0"),
      std::invalid_argument);
  const auto tiled = SolverRegistry::global().make_from_spec(
      "prop,pack=16,pack-tile=8,pack-share-j=1");
  EXPECT_EQ(tiled->name(), "ising-bsb-pack");
}

// --------------------------------------------------- end-to-end DALTA runs

TEST(DaltaPacked, RunDaltaBitIdenticalWithPackedSolver) {
  const TruthTable exact = make_benchmark_table("exp", 8, 6);
  const InputDistribution dist = InputDistribution::uniform(8);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.seed = 42;

  const auto plain = SolverRegistry::global().make_from_spec("prop,n=8");
  const auto packed =
      SolverRegistry::global().make_from_spec("prop,n=8,pack=4");
  const auto a = run_dalta(exact, dist, params, *plain);
  const auto b = run_dalta(exact, dist, params, *packed);

  EXPECT_EQ(a.med, b.med);
  EXPECT_EQ(a.error_rate, b.error_rate);
  EXPECT_EQ(a.cop_solves, b.cop_solves);
  EXPECT_EQ(a.solver_iterations, b.solver_iterations);
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    ASSERT_EQ(a.approx.word(x), b.approx.word(x)) << "pattern " << x;
  }
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t k = 0; k < a.outputs.size(); ++k) {
    EXPECT_EQ(a.outputs[k].objective, b.outputs[k].objective);
  }
}

TEST(DaltaPacked, RunDaltaNdBitIdenticalWithPackedSolver) {
  const TruthTable exact = make_benchmark_table("exp", 8, 6);
  const InputDistribution dist = InputDistribution::uniform(8);
  NdDaltaParams params;
  params.free_size = 3;
  params.shared_size = 1;
  params.num_partitions = 3;
  params.rounds = 1;
  params.seed = 42;

  const auto plain = SolverRegistry::global().make_from_spec("prop,n=8");
  const auto packed =
      SolverRegistry::global().make_from_spec("prop,n=8,pack=6");
  const auto a = run_dalta_nd(exact, dist, params, *plain);
  const auto b = run_dalta_nd(exact, dist, params, *packed);

  EXPECT_EQ(a.med, b.med);
  EXPECT_EQ(a.error_rate, b.error_rate);
  EXPECT_EQ(a.cop_solves, b.cop_solves);
  EXPECT_EQ(a.solver_iterations, b.solver_iterations);
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    ASSERT_EQ(a.approx.word(x), b.approx.word(x)) << "pattern " << x;
  }
}

}  // namespace
}  // namespace adsd
