#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "ising/bsb.hpp"
#include "ising/exhaustive.hpp"
#include "ising/model.hpp"
#include "ising/qubo.hpp"
#include "ising/sa.hpp"
#include "ising/stop.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

std::vector<std::int8_t> spins_from_bits(std::uint64_t bits, std::size_t n) {
  std::vector<std::int8_t> s(n);
  for (std::size_t i = 0; i < n; ++i) {
    s[i] = ((bits >> i) & 1) ? std::int8_t{1} : std::int8_t{-1};
  }
  return s;
}

/// Random small model for property sweeps.
IsingModel random_model(std::size_t n, double density, Rng& rng) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_bias(i, rng.next_double(-1.0, 1.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < density) {
        m.add_coupling(i, j, rng.next_double(-1.0, 1.0));
      }
    }
  }
  m.finalize();
  return m;
}

// ------------------------------------------------------------ IsingModel

TEST(IsingModel, EnergyOfTwoSpinFerromagnet) {
  IsingModel m(2);
  m.add_coupling(0, 1, 1.0);
  m.finalize();
  // Aligned spins: E = -J = -1. Anti-aligned: +1.
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b11, 2)), -1.0);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b00, 2)), -1.0);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b01, 2)), 1.0);
}

TEST(IsingModel, BiasTermSign) {
  IsingModel m(1);
  m.set_bias(0, 2.0);
  m.finalize();
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(1, 1)), -2.0);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0, 1)), 2.0);
}

TEST(IsingModel, ConstantShiftsEnergy) {
  IsingModel m(1);
  m.set_constant(5.0);
  m.finalize();
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0, 1)), 5.0);
}

TEST(IsingModel, DuplicateCouplingsAccumulate) {
  IsingModel m(2);
  m.add_coupling(0, 1, 0.5);
  m.add_coupling(1, 0, 0.25);  // symmetric add merges
  m.finalize();
  EXPECT_EQ(m.num_couplings(), 1u);
  EXPECT_DOUBLE_EQ(m.energy(spins_from_bits(0b11, 2)), -0.75);
}

TEST(IsingModel, FlipDeltaMatchesEnergyDifference) {
  Rng rng(3);
  const auto m = random_model(8, 0.6, rng);
  for (int trial = 0; trial < 50; ++trial) {
    auto s = spins_from_bits(rng.next_u64(), 8);
    const std::size_t i = rng.next_below(8);
    const double before = m.energy(s);
    const double delta = m.flip_delta(s, i);
    s[i] = static_cast<std::int8_t>(-s[i]);
    EXPECT_NEAR(m.energy(s) - before, delta, 1e-12);
  }
}

TEST(IsingModel, LocalFieldsMatchDefinition) {
  IsingModel m(3);
  m.set_bias(0, 0.5);
  m.add_coupling(0, 1, 1.0);
  m.add_coupling(0, 2, -2.0);
  m.finalize();
  std::vector<double> x = {0.1, 0.5, -0.5};
  std::vector<double> f(3);
  m.local_fields(x, f);
  EXPECT_DOUBLE_EQ(f[0], 0.5 + 1.0 * 0.5 + (-2.0) * (-0.5));
  EXPECT_DOUBLE_EQ(f[1], 1.0 * 0.1);
  EXPECT_DOUBLE_EQ(f[2], -2.0 * 0.1);
}

TEST(IsingModel, SignedFieldsUseSigns) {
  IsingModel m(2);
  m.add_coupling(0, 1, 1.0);
  m.finalize();
  std::vector<double> x = {0.0, -0.3};
  std::vector<double> f(2);
  m.local_fields_signed(x, f);
  EXPECT_DOUBLE_EQ(f[0], -1.0);  // sign(-0.3) = -1
  EXPECT_DOUBLE_EQ(f[1], 1.0);   // sign(0.0) treated as +1
}

TEST(IsingModel, CouplingRms) {
  IsingModel m(3);
  m.add_coupling(0, 1, 3.0);
  m.add_coupling(1, 2, -4.0);
  m.finalize();
  EXPECT_NEAR(m.coupling_rms(), std::sqrt((9.0 + 16.0) / 2.0), 1e-12);
}

TEST(IsingModel, NeighborsAdjacency) {
  IsingModel m(4);
  m.add_coupling(0, 2, 1.5);
  m.add_coupling(0, 3, -1.0);
  m.finalize();
  const auto nb = m.neighbors(0);
  EXPECT_EQ(nb.size(), 2u);
  EXPECT_EQ(m.neighbors(1).size(), 0u);
  EXPECT_EQ(m.neighbors(2).size(), 1u);
}

TEST(IsingModel, GuardsAndValidation) {
  EXPECT_THROW(IsingModel(0), std::invalid_argument);
  IsingModel m(2);
  EXPECT_THROW(m.add_coupling(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_coupling(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW((void)m.energy(spins_from_bits(0, 2)), std::logic_error);
  m.finalize();
  EXPECT_THROW((void)m.energy(spins_from_bits(0, 1)), std::invalid_argument);
}

TEST(IsingModel, ZeroCouplingsDropped) {
  IsingModel m(2);
  m.add_coupling(0, 1, 0.5);
  m.add_coupling(0, 1, -0.5);  // cancels to zero
  m.finalize();
  EXPECT_EQ(m.num_couplings(), 0u);
}

// ------------------------------------------------------------------ QUBO

TEST(Qubo, ValueComputation) {
  Qubo q(3);
  q.add_linear(0, 1.0);
  q.add_linear(2, -2.0);
  q.add_quadratic(0, 1, 3.0);
  q.add_constant(0.5);
  std::vector<std::uint8_t> x = {1, 1, 1};
  EXPECT_DOUBLE_EQ(q.value(x), 1.0 - 2.0 + 3.0 + 0.5);
  x = {1, 0, 0};
  EXPECT_DOUBLE_EQ(q.value(x), 1.5);
}

TEST(Qubo, SelfQuadraticFoldsToLinear) {
  Qubo q(1);
  q.add_quadratic(0, 0, 2.0);
  std::vector<std::uint8_t> x = {1};
  EXPECT_DOUBLE_EQ(q.value(x), 2.0);
}

TEST(Qubo, IsingConversionPreservesValues) {
  Rng rng(41);
  for (int trial = 0; trial < 20; ++trial) {
    Qubo q(6);
    for (std::size_t i = 0; i < 6; ++i) {
      q.add_linear(i, rng.next_double(-2.0, 2.0));
      for (std::size_t j = i + 1; j < 6; ++j) {
        if (rng.next_bool()) {
          q.add_quadratic(i, j, rng.next_double(-2.0, 2.0));
        }
      }
    }
    q.add_constant(rng.next_double(-1.0, 1.0));
    const IsingModel m = q.to_ising();
    for (std::uint64_t bits = 0; bits < 64; ++bits) {
      const auto spins = spins_from_bits(bits, 6);
      const auto x = Qubo::spins_to_binary(spins);
      EXPECT_NEAR(m.energy(spins), q.value(x), 1e-9)
          << "bits=" << bits << " trial=" << trial;
    }
  }
}

TEST(Qubo, SpinsToBinary) {
  std::vector<std::int8_t> spins = {1, -1, 1};
  const auto x = Qubo::spins_to_binary(spins);
  EXPECT_EQ(x[0], 1);
  EXPECT_EQ(x[1], 0);
  EXPECT_EQ(x[2], 1);
}

// ------------------------------------------------------------ Exhaustive

TEST(Exhaustive, FindsGroundStateOfFrustratedTriangle) {
  IsingModel m(3);
  // Antiferromagnetic triangle: ground energy = -1 (one bond frustrated).
  m.add_coupling(0, 1, -1.0);
  m.add_coupling(1, 2, -1.0);
  m.add_coupling(0, 2, -1.0);
  m.finalize();
  const auto res = solve_exhaustive(m);
  EXPECT_DOUBLE_EQ(res.energy, -1.0);
}

TEST(Exhaustive, MatchesBruteForceRecomputation) {
  Rng rng(5);
  const auto m = random_model(10, 0.5, rng);
  const auto res = solve_exhaustive(m);
  double best = 1e300;
  for (std::uint64_t bits = 0; bits < 1024; ++bits) {
    best = std::min(best, m.energy(spins_from_bits(bits, 10)));
  }
  EXPECT_NEAR(res.energy, best, 1e-9);
  EXPECT_NEAR(m.energy(res.spins), res.energy, 1e-9);
}

TEST(Exhaustive, RejectsLargeModels) {
  IsingModel m(25);
  m.finalize();
  EXPECT_THROW((void)solve_exhaustive(m), std::invalid_argument);
}

// ------------------------------------------------------------------- bSB

TEST(Bsb, SolvesFerromagneticChainExactly) {
  IsingModel m(16);
  for (std::size_t i = 0; i + 1 < 16; ++i) {
    m.add_coupling(i, i + 1, 1.0);
  }
  m.finalize();
  SbParams p;
  p.max_iterations = 500;
  p.seed = 7;
  const auto res = solve_sb(m, p);
  EXPECT_DOUBLE_EQ(res.energy, -15.0);  // all aligned
}

TEST(Bsb, ReachesGroundStateOnSmallRandomInstances) {
  Rng rng(11);
  int hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const auto m = random_model(12, 0.5, rng);
    const auto exact = solve_exhaustive(m);
    SbParams p;
    p.max_iterations = 2000;
    p.seed = 100 + trial;
    const auto res = solve_sb(m, p);
    EXPECT_GE(res.energy, exact.energy - 1e-9);
    hits += std::fabs(res.energy - exact.energy) < 1e-9;
  }
  EXPECT_GE(hits, 7) << "bSB should find most small ground states";
}

TEST(Bsb, DiscreteVariantAlsoWorks) {
  Rng rng(13);
  const auto m = random_model(12, 0.5, rng);
  const auto exact = solve_exhaustive(m);
  SbParams p;
  p.max_iterations = 2000;
  p.discrete = true;
  p.seed = 3;
  const auto res = solve_sb(m, p);
  EXPECT_GE(res.energy, exact.energy - 1e-9);
  EXPECT_LE(res.energy, exact.energy + 2.0);
}

TEST(Bsb, DynamicStopTerminatesEarly) {
  IsingModel m(8);
  for (std::size_t i = 0; i + 1 < 8; ++i) {
    m.add_coupling(i, i + 1, 1.0);
  }
  m.finalize();
  SbParams p;
  p.max_iterations = 100000;
  p.stop.enabled = true;
  p.stop.sample_interval = 10;
  p.stop.window = 10;
  p.stop.epsilon = 1e-8;
  p.seed = 5;
  const auto res = solve_sb(m, p);
  EXPECT_TRUE(res.stopped_early);
  EXPECT_LT(res.iterations, 100000u);
  EXPECT_DOUBLE_EQ(res.energy, -7.0);
}

TEST(Bsb, DeterministicForFixedSeed) {
  Rng rng(17);
  const auto m = random_model(10, 0.5, rng);
  SbParams p;
  p.max_iterations = 300;
  p.seed = 42;
  const auto a = solve_sb(m, p);
  const auto b = solve_sb(m, p);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.spins, b.spins);
}

TEST(Bsb, HookCalledAtEverySamplePoint) {
  IsingModel m(4);
  m.add_coupling(0, 1, 1.0);
  m.finalize();
  SbParams p;
  p.max_iterations = 100;
  p.stop.sample_interval = 5;
  p.seed = 1;
  int calls = 0;
  const auto res =
      solve_sb(m, p, [&](std::span<double> x, std::span<double> y) {
        ++calls;
        ASSERT_EQ(x.size(), 4u);
        ASSERT_EQ(y.size(), 4u);
      });
  EXPECT_EQ(calls, 100 / 5);
  EXPECT_NEAR(m.energy(res.spins), res.energy, 1e-12);
}

TEST(Bsb, HookPinningImprovesDegenerateSearch) {
  // Bias wants spin 3 down, but a huge detuning freeze keeps the oscillator
  // near its initial (positive-sign) position; the hook supplies the fix
  // and best-seen tracking must retain it. Mirrors the Theorem-3 feedback.
  IsingModel m(4);
  m.set_bias(3, -5.0);
  m.finalize();
  SbParams p;
  p.max_iterations = 20;
  p.stop.sample_interval = 5;
  p.c0 = 1e-9;  // forces effectively disabled: bSB alone cannot flip spin 3
  p.seed = 1;
  const auto plain = solve_sb(m, p);
  const auto hooked =
      solve_sb(m, p, [](std::span<double> x, std::span<double> y) {
        x[3] = -1.0;
        y[3] = 0.0;
      });
  EXPECT_LE(hooked.energy, plain.energy);
  EXPECT_DOUBLE_EQ(hooked.energy, -5.0);  // pinned state is the ground state
  EXPECT_EQ(hooked.spins[3], -1);
}

TEST(Bsb, RejectsBadParameters) {
  IsingModel m(2);
  m.finalize();
  SbParams p;
  p.max_iterations = 0;
  EXPECT_THROW((void)solve_sb(m, p), std::invalid_argument);
  IsingModel unfinalized(2);
  EXPECT_THROW((void)solve_sb(unfinalized, SbParams{}), std::invalid_argument);
}

TEST(Bsb, EnergyReportedMatchesSpins) {
  Rng rng(19);
  const auto m = random_model(14, 0.4, rng);
  SbParams p;
  p.max_iterations = 500;
  p.seed = 23;
  const auto res = solve_sb(m, p);
  EXPECT_NEAR(m.energy(res.spins), res.energy, 1e-9);
}

// ---------------------------------------------------------- Ensemble bSB

TEST(BsbEnsemble, SingleReplicaReproducesSolveSb) {
  Rng rng(41);
  const auto m = random_model(12, 0.5, rng);
  SbParams p;
  p.max_iterations = 400;
  p.seed = 9;
  const auto solo = solve_sb(m, p);
  const auto ens = solve_sb_ensemble(m, p, 1);
  EXPECT_EQ(ens.energy, solo.energy);
  EXPECT_EQ(ens.spins, solo.spins);
}

TEST(BsbEnsemble, MatchesBestOfIndependentRestarts) {
  Rng rng(43);
  const auto m = random_model(10, 0.6, rng);
  SbParams p;
  p.max_iterations = 300;
  p.seed = 17;
  const std::size_t k = 4;
  double best = 1e300;
  for (std::size_t r = 0; r < k; ++r) {
    SbParams pr = p;
    pr.seed = p.seed + 0x9e3779b9u * r;
    best = std::min(best, solve_sb(m, pr).energy);
  }
  const auto ens = solve_sb_ensemble(m, p, k);
  EXPECT_DOUBLE_EQ(ens.energy, best);
  EXPECT_EQ(ens.iterations, 300u * k);
}

TEST(BsbEnsemble, MoreReplicasNeverWorse) {
  Rng rng(47);
  const auto m = random_model(14, 0.5, rng);
  SbParams p;
  p.max_iterations = 300;
  p.seed = 3;
  const auto one = solve_sb_ensemble(m, p, 1);
  const auto eight = solve_sb_ensemble(m, p, 8);
  EXPECT_LE(eight.energy, one.energy);
}

TEST(BsbEnsemble, HookAppliedPerReplica) {
  IsingModel m(4);
  m.set_bias(3, -5.0);
  m.finalize();
  SbParams p;
  p.max_iterations = 20;
  p.stop.sample_interval = 5;
  p.c0 = 1e-9;
  p.seed = 1;
  int calls = 0;
  const auto res = solve_sb_ensemble(
      m, p, 3, [&](std::span<double> x, std::span<double> y) {
        ++calls;
        x[3] = -1.0;
        y[3] = 0.0;
      });
  EXPECT_EQ(calls, (20 / 5) * 3);
  EXPECT_DOUBLE_EQ(res.energy, -5.0);
}

TEST(BsbEnsemble, Validation) {
  IsingModel m(2);
  m.finalize();
  SbParams p;
  EXPECT_THROW((void)solve_sb_ensemble(m, p, 0), std::invalid_argument);
  IsingModel unfinalized(2);
  EXPECT_THROW((void)solve_sb_ensemble(unfinalized, p, 2),
               std::invalid_argument);
}

// -------------------------------------------------------------------- SA

TEST(Sa, SolvesFerromagneticChain) {
  IsingModel m(16);
  for (std::size_t i = 0; i + 1 < 16; ++i) {
    m.add_coupling(i, i + 1, 1.0);
  }
  m.finalize();
  SaParams p;
  p.sweeps = 300;
  p.seed = 3;
  const auto res = solve_sa(m, p);
  EXPECT_DOUBLE_EQ(res.energy, -15.0);
}

TEST(Sa, NearGroundOnRandomInstances) {
  Rng rng(29);
  for (int trial = 0; trial < 5; ++trial) {
    const auto m = random_model(12, 0.5, rng);
    const auto exact = solve_exhaustive(m);
    SaParams p;
    p.sweeps = 500;
    p.seed = 50 + trial;
    const auto res = solve_sa(m, p);
    EXPECT_GE(res.energy, exact.energy - 1e-9);
    EXPECT_LE(res.energy, exact.energy + 1.0);
  }
}

TEST(Sa, DeterministicForFixedSeed) {
  Rng rng(31);
  const auto m = random_model(10, 0.5, rng);
  SaParams p;
  p.sweeps = 100;
  p.seed = 9;
  const auto a = solve_sa(m, p);
  const auto b = solve_sa(m, p);
  EXPECT_EQ(a.energy, b.energy);
}

TEST(Sa, RejectsBadSchedule) {
  IsingModel m(2);
  m.finalize();
  SaParams p;
  p.beta_start = 5.0;
  p.beta_end = 1.0;
  EXPECT_THROW((void)solve_sa(m, p), std::invalid_argument);
}

// ---------------------------------------------------------- Dynamic stop

TEST(DynamicStop, DisabledNeverStops) {
  DynamicStopMonitor mon(DynamicStopParams{});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(mon.observe(1.0));
  }
}

TEST(DynamicStop, StopsOnConstantEnergy) {
  DynamicStopParams p;
  p.enabled = true;
  p.sample_interval = 1;
  p.window = 5;
  p.epsilon = 1e-8;
  DynamicStopMonitor mon(p);
  bool stopped = false;
  for (int i = 0; i < 5; ++i) {
    stopped = mon.observe(3.0);
  }
  EXPECT_TRUE(stopped);
}

TEST(DynamicStop, DoesNotStopWhileVarying) {
  DynamicStopParams p;
  p.enabled = true;
  p.sample_interval = 1;
  p.window = 4;
  p.epsilon = 1e-8;
  DynamicStopMonitor mon(p);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(mon.observe(static_cast<double>(i)));
  }
}

TEST(DynamicStop, NeedsFullWindow) {
  DynamicStopParams p;
  p.enabled = true;
  p.sample_interval = 1;
  p.window = 10;
  DynamicStopMonitor mon(p);
  for (int i = 0; i < 9; ++i) {
    EXPECT_FALSE(mon.observe(0.0));
  }
  EXPECT_TRUE(mon.observe(0.0));
}

TEST(DynamicStop, BadParamsThrow) {
  DynamicStopParams p;
  p.enabled = true;
  p.window = 1;
  EXPECT_THROW(DynamicStopMonitor mon(p), std::invalid_argument);
}

// Property: on random instances bSB with the Theorem-free plain setup never
// reports an energy below the true ground state.
class SolverBoundProperty : public ::testing::TestWithParam<int> {};

TEST_P(SolverBoundProperty, NoSolverBeatsExhaustive) {
  Rng rng(static_cast<std::uint64_t>(1000 + GetParam()));
  const auto m = random_model(11, 0.6, rng);
  const auto exact = solve_exhaustive(m);
  SbParams bp;
  bp.max_iterations = 500;
  bp.seed = static_cast<std::uint64_t>(GetParam());
  EXPECT_GE(solve_sb(m, bp).energy, exact.energy - 1e-9);
  SaParams sp;
  sp.sweeps = 200;
  sp.seed = static_cast<std::uint64_t>(GetParam());
  EXPECT_GE(solve_sa(m, sp).energy, exact.energy - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverBoundProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace adsd
