#include <gtest/gtest.h>

#include <sstream>

#include "boolean/table_io.hpp"
#include "funcs/continuous.hpp"
#include "funcs/registry.hpp"
#include "lut/verilog_export.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

ColumnSetting random_cs(std::size_t r, std::size_t c, Rng& rng) {
  ColumnSetting s;
  s.v1 = BitVec(r);
  s.v2 = BitVec(r);
  s.t = BitVec(c);
  for (std::size_t i = 0; i < r; ++i) {
    s.v1.set(i, rng.next_bool());
    s.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < c; ++j) {
    s.t.set(j, rng.next_bool());
  }
  return s;
}

DecomposedLutNetwork small_network(unsigned n, unsigned m, Rng& rng) {
  DecomposedLutNetwork net;
  for (unsigned k = 0; k < m; ++k) {
    const auto w = InputPartition::random(n, n / 2, rng);
    net.add_output(DecomposedLut::from_column_setting(
        w, random_cs(w.num_rows(), w.num_cols(), rng)));
  }
  return net;
}

/// Extracts the bit string of `localparam [..] NAME = <w>'b<bits>;`.
std::string extract_rom_bits(const std::string& verilog,
                             const std::string& name) {
  const auto pos = verilog.find(name + " = ");
  EXPECT_NE(pos, std::string::npos) << name;
  const auto b = verilog.find("'b", pos);
  const auto end = verilog.find(';', b);
  return verilog.substr(b + 2, end - b - 2);
}

// --------------------------------------------------------------- Verilog

TEST(VerilogExport, ModuleStructure) {
  Rng rng(1);
  const auto net = small_network(6, 3, rng);
  std::ostringstream os;
  write_verilog(os, net, "approx_unit");
  const std::string v = os.str();
  EXPECT_NE(v.find("module approx_unit"), std::string::npos);
  EXPECT_NE(v.find("input  wire [5:0] x"), std::string::npos);
  EXPECT_NE(v.find("output wire [2:0] y"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  for (int k = 0; k < 3; ++k) {
    EXPECT_NE(v.find("assign y[" + std::to_string(k) + "]"),
              std::string::npos);
  }
}

TEST(VerilogExport, RomLiteralsMatchLutContents) {
  Rng rng(2);
  const auto net = small_network(6, 2, rng);
  std::ostringstream os;
  write_verilog(os, net, "dut");
  const std::string v = os.str();
  for (unsigned k = 0; k < 2; ++k) {
    const std::string phi_bits =
        extract_rom_bits(v, "o" + std::to_string(k) + "_PHI");
    const Lut& phi = net.output(k).phi_lut();
    ASSERT_EQ(phi_bits.size(), phi.size_bits());
    for (std::uint64_t a = 0; a < phi.size_bits(); ++a) {
      // Literal is MSB-first: character 0 is address size-1.
      EXPECT_EQ(phi_bits[phi_bits.size() - 1 - a] == '1', phi.read(a))
          << "output " << k << " address " << a;
    }
    const std::string f_bits =
        extract_rom_bits(v, "o" + std::to_string(k) + "_F");
    const Lut& f = net.output(k).f_lut();
    ASSERT_EQ(f_bits.size(), f.size_bits());
    for (std::uint64_t a = 0; a < f.size_bits(); ++a) {
      EXPECT_EQ(f_bits[f_bits.size() - 1 - a] == '1', f.read(a));
    }
  }
}

TEST(VerilogExport, AddressWiresReferencePartitionVariables) {
  Rng rng(3);
  DecomposedLutNetwork net;
  const InputPartition w({1, 4}, {0, 2, 3});
  net.add_output(DecomposedLut::from_column_setting(
      w, random_cs(w.num_rows(), w.num_cols(), rng)));
  std::ostringstream os;
  write_verilog(os, net, "dut");
  const std::string v = os.str();
  // phi address: bound vars {0,2,3} with highest index first.
  EXPECT_NE(v.find("o0_phi_addr = {x[3], x[2], x[0]}"), std::string::npos);
  // F address: phi then free vars {1,4}.
  EXPECT_NE(v.find("o0_f_addr = {o0_phi, x[4], x[1]}"), std::string::npos);
}

TEST(VerilogExport, NonDisjointModule) {
  Rng rng(4);
  const NonDisjointPartition w({0, 1}, {3, 4}, {2});
  NonDisjointSetting s;
  s.slices.push_back(random_cs(4, 4, rng));
  s.slices.push_back(random_cs(4, 4, rng));
  const auto lut = NonDisjointLut::from_setting(w, s);
  std::ostringstream os;
  write_verilog(os, lut, "nd_unit");
  const std::string v = os.str();
  EXPECT_NE(v.find("module nd_unit"), std::string::npos);
  EXPECT_NE(v.find("slice = {x[2]}"), std::string::npos);
  EXPECT_NE(v.find("phi_addr = {slice, x[4], x[3]}"), std::string::npos);
  EXPECT_NE(v.find("f_addr = {phi, slice, x[1], x[0]}"), std::string::npos);
  const std::string phi_bits = extract_rom_bits(v, "PHI");
  ASSERT_EQ(phi_bits.size(), lut.phi_lut().size_bits());
  for (std::uint64_t a = 0; a < lut.phi_lut().size_bits(); ++a) {
    EXPECT_EQ(phi_bits[phi_bits.size() - 1 - a] == '1',
              lut.phi_lut().read(a));
  }
}

TEST(VerilogExport, TestbenchEmbedsExpectations) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 4, 3);
  std::ostringstream os;
  write_verilog_testbench(os, "dut", 4, 3, exact);
  const std::string v = os.str();
  EXPECT_NE(v.find("module tb_dut"), std::string::npos);
  for (std::uint64_t x = 0; x < 16; ++x) {
    const std::string line = "expected[" + std::to_string(x) + "] = 3'd" +
                             std::to_string(exact.word(x)) + ";";
    EXPECT_NE(v.find(line), std::string::npos) << line;
  }
  EXPECT_NE(v.find("$fatal"), std::string::npos);
}

TEST(VerilogExport, TestbenchRejectsLargeTables) {
  TruthTable big(13, 2);
  std::ostringstream os;
  EXPECT_THROW(write_verilog_testbench(os, "dut", 13, 2, big),
               std::invalid_argument);
}

TEST(VerilogExport, MemImageOneBitPerLine) {
  Lut lut(2, BitVec::from_string("1010"));
  std::ostringstream os;
  write_mem_image(os, lut);
  EXPECT_EQ(os.str(), "1\n0\n1\n0\n");
}

// ------------------------------------------------------------- Table IO

TEST(TableIo, PlaRoundTrip) {
  const auto tt = make_benchmark_table("multiplier", 8, 8);
  const TruthTable back = from_pla_string(to_pla_string(tt));
  EXPECT_EQ(back, tt);
}

TEST(TableIo, HexRoundTrip) {
  for (const char* name : {"cos", "exp", "brent-kung"}) {
    const unsigned m = paper_output_bits(name, 8);
    const auto tt = make_benchmark_table(name, 8, m);
    const TruthTable back = from_hex_string(to_hex_string(tt));
    EXPECT_EQ(back, tt) << name;
  }
}

TEST(TableIo, HexRoundTripOddWidth) {
  // 3 inputs: 8 patterns = 2 nibbles.
  Rng rng(7);
  auto tt = TruthTable::from_function(
      3, 5, [&](std::uint64_t) { return rng.next_u64() & 0x1F; });
  EXPECT_EQ(from_hex_string(to_hex_string(tt)), tt);
}

TEST(TableIo, PlaFormatShape) {
  auto tt = TruthTable::from_function(2, 2, [](std::uint64_t x) { return x; });
  const std::string pla = to_pla_string(tt);
  EXPECT_NE(pla.find(".i 2"), std::string::npos);
  EXPECT_NE(pla.find(".o 2"), std::string::npos);
  // Pattern x=1 (x0=1, x1=0) outputs 01 -> bits y0=1 y1=0.
  EXPECT_NE(pla.find("10 10"), std::string::npos);
  EXPECT_NE(pla.find(".e"), std::string::npos);
}

TEST(TableIo, PlaRejectsMalformed) {
  EXPECT_THROW((void)from_pla_string("garbage"), std::invalid_argument);
  EXPECT_THROW((void)from_pla_string(".i 2\n.o 1\n00 1\n.e\n"),
               std::invalid_argument);  // incomplete
  EXPECT_THROW(
      (void)from_pla_string(".i 1\n.o 1\n0 1\n0 1\n.e\n"),
      std::invalid_argument);  // duplicate row
  EXPECT_THROW(
      (void)from_pla_string(".i 1\n.o 1\n- 1\n1 0\n.e\n"),
      std::invalid_argument);  // don't care
}

TEST(TableIo, HexRejectsMalformed) {
  EXPECT_THROW((void)from_hex_string("nope 2 2\n00\n00\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_hex_string(".tt 3 1\nzz\n"),
               std::invalid_argument);
  EXPECT_THROW((void)from_hex_string(".tt 3 1\n0\n"),
               std::invalid_argument);  // wrong row length
}

TEST(TableIo, HexIsCompact) {
  const auto tt = make_continuous_table(continuous_spec("cos"), 10, 10);
  const std::string hex = to_hex_string(tt);
  const std::string pla = to_pla_string(tt);
  EXPECT_LT(hex.size() * 5, pla.size());
}

TEST(DistributionIo, RoundTripPreservesProbabilities) {
  auto d = InputDistribution::from_weights({3.0, 1.0, 0.0, 4.0});
  std::ostringstream os;
  write_distribution(os, d);
  std::istringstream is(os.str());
  const InputDistribution back = read_distribution(is);
  EXPECT_EQ(back.num_inputs(), 2u);
  for (std::uint64_t x = 0; x < 4; ++x) {
    EXPECT_NEAR(back.prob(x), d.prob(x), 1e-12);
  }
}

TEST(DistributionIo, UniformRoundTrips) {
  const auto d = InputDistribution::uniform(5);
  std::ostringstream os;
  write_distribution(os, d);
  std::istringstream is(os.str());
  const InputDistribution back = read_distribution(is);
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_NEAR(back.prob(x), d.prob(x), 1e-12);
  }
}

TEST(DistributionIo, RejectsMalformed) {
  std::istringstream bad_tag("nope 2\n1 1 1 1\n");
  EXPECT_THROW((void)read_distribution(bad_tag), std::invalid_argument);
  std::istringstream truncated(".dist 2\n1 1\n");
  EXPECT_THROW((void)read_distribution(truncated), std::invalid_argument);
  std::istringstream bad_n(".dist 0\n");
  EXPECT_THROW((void)read_distribution(bad_n), std::invalid_argument);
}

}  // namespace
}  // namespace adsd
