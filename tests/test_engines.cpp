// SimCIM and DOCH/ADOCH engine coverage (DESIGN.md §4.8): the two engines
// added on the shared ensemble chassis must be deterministic for a fixed
// seed, find ground states on small instances the exhaustive solver can
// certify, improve (never regress) with more replicas, produce
// kernel-independent trajectories, and solve paper functions end to end
// through the registry + DALTA flow.
#include <gtest/gtest.h>

#include <stdexcept>

#include "boolean/error_metrics.hpp"
#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/registry.hpp"
#include "ising/doch.hpp"
#include "ising/exhaustive.hpp"
#include "ising/model.hpp"
#include "ising/simcim.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

IsingModel random_model(std::size_t n, double density, Rng& rng) {
  IsingModel m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_bias(i, rng.next_double(-1.0, 1.0));
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.next_double() < density) {
        m.add_coupling(i, j, rng.next_double(-1.0, 1.0));
      }
    }
  }
  m.finalize();
  return m;
}

// ------------------------------------------------------------ SimCIM

TEST(Simcim, DeterministicForFixedSeed) {
  Rng rng(11);
  const auto m = random_model(12, 0.6, rng);
  SimcimParams p;
  p.seed = 9;
  const auto a = solve_simcim(m, p, 4);
  const auto b = solve_simcim(m, p, 4);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.spins, b.spins);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(Simcim, ReachesGroundStateOnSmallRandomInstances) {
  int hits = 0;
  for (std::uint64_t ms = 0; ms < 8; ++ms) {
    Rng rng(ms + 40);
    const auto m = random_model(8, 0.6, rng);
    const auto exact = solve_exhaustive(m);
    SimcimParams p;
    p.seed = 7;
    const auto res = solve_simcim(m, p, 8);
    EXPECT_GE(res.energy, exact.energy - 1e-9);
    if (res.energy <= exact.energy + 1e-9) {
      ++hits;
    }
  }
  // The tuned defaults hit ~35/40 across a wider sweep; demand a clear
  // majority here so a dynamics regression fails loudly without making the
  // test flaky about any single instance.
  EXPECT_GE(hits, 6);
}

TEST(Simcim, MoreReplicasNeverWorse) {
  // Replica r's noise stream depends only on (seed, r), so the R-replica
  // ensemble contains the smaller ensemble's trajectories verbatim and
  // best-of can only improve.
  Rng rng(13);
  const auto m = random_model(14, 0.5, rng);
  SimcimParams p;
  p.seed = 3;
  const auto r1 = solve_simcim(m, p, 1);
  const auto r4 = solve_simcim(m, p, 4);
  const auto r8 = solve_simcim(m, p, 8);
  EXPECT_LE(r4.energy, r1.energy + 1e-12);
  EXPECT_LE(r8.energy, r4.energy + 1e-12);
}

TEST(Simcim, KernelChoiceDoesNotChangeTheTrajectory) {
  Rng rng(17);
  const auto m = random_model(16, 0.6, rng);
  SimcimParams scalar;
  scalar.seed = 5;
  scalar.kernel = kernels::ForceKernel::kScalar;
  SimcimParams autok = scalar;
  autok.kernel = kernels::ForceKernel::kAuto;
  const auto a = solve_simcim(m, scalar, 4);
  const auto b = solve_simcim(m, autok, 4);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.spins, b.spins);
}

TEST(Simcim, WarmStartAndValidation) {
  Rng rng(19);
  const auto m = random_model(6, 0.8, rng);
  SimcimParams p;
  p.initial_positions.assign(6, 0.5);
  EXPECT_NO_THROW((void)solve_simcim(m, p, 2));

  SimcimParams wrong_size;
  wrong_size.initial_positions.assign(5, 0.0);
  EXPECT_THROW((void)solve_simcim(m, wrong_size, 2), std::invalid_argument);

  SimcimParams negative_noise;
  negative_noise.noise = -0.1;
  EXPECT_THROW((void)solve_simcim(m, negative_noise, 2),
               std::invalid_argument);

  SimcimParams p2;
  EXPECT_THROW((void)solve_simcim(m, p2, 0), std::invalid_argument);
}

// ------------------------------------------------------------ DOCH

TEST(Doch, DeterministicForFixedSeed) {
  Rng rng(23);
  const auto m = random_model(12, 0.6, rng);
  DochParams p;
  p.seed = 9;
  const auto a = solve_doch(m, p, 4);
  const auto b = solve_doch(m, p, 4);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.spins, b.spins);
}

TEST(Doch, ReachesGroundStateOnSmallRandomInstances) {
  int hits = 0;
  for (std::uint64_t ms = 0; ms < 8; ++ms) {
    Rng rng(ms + 60);
    const auto m = random_model(8, 0.6, rng);
    const auto exact = solve_exhaustive(m);
    DochParams p;
    p.seed = 7;
    const auto res = solve_doch(m, p, 8);
    EXPECT_GE(res.energy, exact.energy - 1e-9);
    if (res.energy <= exact.energy + 1e-9) {
      ++hits;
    }
  }
  // A deterministic multistart local method: weak at R=1 by design, a
  // clear majority of ground states at R=8 (33/40 on the tuning sweep).
  EXPECT_GE(hits, 5);
}

TEST(Doch, MoreReplicasNeverWorse) {
  // Replica starting points depend only on (seed, r): larger ensembles
  // contain the smaller ones.
  Rng rng(29);
  const auto m = random_model(14, 0.5, rng);
  DochParams p;
  p.seed = 3;
  const auto r1 = solve_doch(m, p, 1);
  const auto r4 = solve_doch(m, p, 4);
  const auto r8 = solve_doch(m, p, 8);
  EXPECT_LE(r4.energy, r1.energy + 1e-12);
  EXPECT_LE(r8.energy, r4.energy + 1e-12);
}

TEST(Doch, AutoRhoIsTheMaxRowNorm) {
  IsingModel m(3);
  m.add_coupling(0, 1, 2.0);
  m.add_coupling(1, 2, -3.0);
  m.finalize();
  DochParams p;
  const DochEngine engine(m, p, 1);
  EXPECT_DOUBLE_EQ(engine.rho(), 5.0);  // row 1: |2| + |-3|

  DochParams pinned;
  pinned.rho = 7.5;
  const DochEngine pinned_engine(m, pinned, 1);
  EXPECT_DOUBLE_EQ(pinned_engine.rho(), 7.5);
}

TEST(Doch, KernelChoiceDoesNotChangeTheTrajectory) {
  Rng rng(31);
  const auto m = random_model(16, 0.6, rng);
  DochParams scalar;
  scalar.seed = 5;
  scalar.kernel = kernels::ForceKernel::kScalar;
  DochParams autok = scalar;
  autok.kernel = kernels::ForceKernel::kAuto;
  const auto a = solve_doch(m, scalar, 4);
  const auto b = solve_doch(m, autok, 4);
  EXPECT_EQ(a.energy, b.energy);
  EXPECT_EQ(a.spins, b.spins);
}

TEST(Doch, Validation) {
  Rng rng(37);
  const auto m = random_model(6, 0.8, rng);
  DochParams wrong_size;
  wrong_size.initial_positions.assign(4, 0.0);
  EXPECT_THROW((void)solve_doch(m, wrong_size, 2), std::invalid_argument);
  DochParams p;
  EXPECT_THROW((void)solve_doch(m, p, 0), std::invalid_argument);
  IsingModel unfinalized(4);
  EXPECT_THROW((void)solve_doch(unfinalized, p, 1), std::invalid_argument);
}

// ------------------------------------------ registry + DALTA end to end

// The acceptance bar of the engine layer: "simcim,..." and "doch,..."
// registry specs drive the full decomposition flow over the paper's
// benchmark functions, with fixed-seed reproducibility.
TEST(EngineRegistry, SpecsSolvePaperFunctionsThroughDalta) {
  const RunContext ctx{RunContext::Options{}};
  const auto prop = SolverRegistry::global().make_from_spec("prop,n=8");
  for (const auto& bench : benchmark_suite()) {
    const unsigned m = paper_output_bits(bench.name, 8);
    const TruthTable exact = make_benchmark_table(bench.name, 8, m);
    const InputDistribution dist = InputDistribution::uniform(8);
    DaltaParams params;
    params.free_size = 4;
    params.num_partitions = 2;
    params.rounds = 1;
    params.seed = 42;
    const double prop_er =
        error_rate(exact, run_dalta(exact, dist, params, *prop, ctx).approx,
                   dist);
    for (const char* spec :
         {"simcim,n=8,replicas=2", "doch,n=8,replicas=4"}) {
      const auto solver = SolverRegistry::global().make_from_spec(spec);
      const auto a = run_dalta(exact, dist, params, *solver, ctx);
      const auto b = run_dalta(exact, dist, params, *solver, ctx);
      EXPECT_TRUE(a.approx == b.approx) << spec << " on " << bench.name;
      // Quality floor: within striking distance of the paper solver on the
      // same settings (ER counts any-bit flips, so its absolute level is
      // high for wide outputs; the comparison is what's meaningful).
      EXPECT_LE(error_rate(exact, a.approx, dist), prop_er + 0.15)
          << spec << " on " << bench.name;
    }
  }
}

}  // namespace
}  // namespace adsd
