#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/continuous.hpp"
#include "support/json.hpp"
#include "support/metrics.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

using Histogram = MetricsRegistry::Histogram;

// ---------------------------------------------------------------------------
// Histogram bucket geometry.

TEST(MetricsHistogram, BucketBoundariesAreExactAtPowersOfTwo) {
  // Octave starts land exactly on sub-bucket 0 of their octave: frexp on a
  // binary fraction is exact, so there is no boundary jitter to tolerate.
  for (int e = Histogram::kMinExponent; e < Histogram::kMaxExponent; ++e) {
    const double v = std::ldexp(1.0, e);
    const std::ptrdiff_t idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, 0);
    ASSERT_LT(static_cast<std::size_t>(idx), Histogram::kNumBuckets);
    EXPECT_DOUBLE_EQ(Histogram::bucket_lower(static_cast<std::size_t>(idx)),
                     v)
        << "2^" << e;
  }
}

TEST(MetricsHistogram, BucketsTileTheRangeWithoutGapsOrOverlap) {
  for (std::size_t i = 0; i + 1 < Histogram::kNumBuckets; ++i) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_upper(i),
                     Histogram::bucket_lower(i + 1));
    EXPECT_LT(Histogram::bucket_lower(i), Histogram::bucket_upper(i));
  }
  EXPECT_DOUBLE_EQ(Histogram::bucket_lower(0), Histogram::min_value());
  EXPECT_DOUBLE_EQ(Histogram::bucket_upper(Histogram::kNumBuckets - 1),
                   Histogram::max_value());
}

TEST(MetricsHistogram, EveryValueLandsInItsOwnBucket) {
  Rng rng(123);
  for (int trial = 0; trial < 5000; ++trial) {
    // Log-uniform across the full tracked range.
    const double v = std::exp(
        rng.next_double(std::log(Histogram::min_value()),
                        std::log(Histogram::max_value())));
    const std::ptrdiff_t idx = Histogram::bucket_index(v);
    ASSERT_GE(idx, 0) << v;
    ASSERT_LT(static_cast<std::size_t>(idx), Histogram::kNumBuckets) << v;
    EXPECT_LE(Histogram::bucket_lower(static_cast<std::size_t>(idx)), v);
    EXPECT_GT(Histogram::bucket_upper(static_cast<std::size_t>(idx)), v);
  }
}

TEST(MetricsHistogram, UnderflowAndOverflowClassification) {
  EXPECT_EQ(Histogram::bucket_index(0.0), -1);
  EXPECT_EQ(Histogram::bucket_index(-1.0), -1);
  EXPECT_EQ(Histogram::bucket_index(Histogram::min_value() / 2), -1);
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::quiet_NaN()),
            -1);
  EXPECT_EQ(Histogram::bucket_index(Histogram::max_value()),
            static_cast<std::ptrdiff_t>(Histogram::kNumBuckets));
  EXPECT_EQ(Histogram::bucket_index(
                std::numeric_limits<double>::infinity()),
            static_cast<std::ptrdiff_t>(Histogram::kNumBuckets));
  EXPECT_EQ(Histogram::bucket_index(Histogram::min_value()), 0);
}

TEST(MetricsHistogram, RecordAccountsEveryValueExactlyOnce) {
  Histogram h;
  h.record(0.5);
  h.record(100.0);
  h.record(-3.0);                           // underflow
  h.record(Histogram::max_value() * 2.0);   // overflow
  h.record(std::numeric_limits<double>::quiet_NaN());  // underflow
  const HistogramData d = h.snapshot();
  EXPECT_EQ(d.count, 5u);
  EXPECT_EQ(d.underflow, 2u);
  EXPECT_EQ(d.overflow, 1u);
  std::uint64_t bucketed = 0;
  for (const std::uint64_t b : d.buckets) {
    bucketed += b;
  }
  EXPECT_EQ(bucketed + d.underflow + d.overflow, d.count);
  EXPECT_DOUBLE_EQ(d.min, -3.0);
  EXPECT_DOUBLE_EQ(d.max, Histogram::max_value() * 2.0);
}

TEST(MetricsHistogram, QuantilesMatchSortedReferenceWithinSubBucketWidth) {
  Rng rng(7);
  Histogram h;
  std::vector<double> values;
  for (int i = 0; i < 4000; ++i) {
    // Latency-shaped values across ~6 octaves.
    const double v = 50.0 * std::exp(rng.next_double(0.0, 4.0));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  const HistogramData d = h.snapshot();
  for (const double q : {0.50, 0.95, 0.99}) {
    const std::size_t rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double ref = values[rank - 1];
    const double est = d.quantile(q);
    // The estimate is the covering bucket's upper bound clamped to the
    // exact [min, max]: never below the true nearest-rank value, never
    // more than one sub-bucket (1/8 relative) above it.
    EXPECT_GE(est, ref) << "q=" << q;
    EXPECT_LE(est, ref * (1.0 + 1.0 / Histogram::kSubBuckets) + 1e-9)
        << "q=" << q;
  }
}

TEST(MetricsHistogram, MergeIsAssociativeAndMatchesSingleHistogram) {
  Rng rng(99);
  Histogram all;
  Histogram parts[3];
  for (int i = 0; i < 3000; ++i) {
    const double v = rng.next_double(0.0, 1.0) < 0.01
                         ? -1.0  // sprinkle underflow into the parts
                         : std::exp(rng.next_double(-8.0, 8.0));
    all.record(v);
    parts[i % 3].record(v);
  }
  const HistogramData a = parts[0].snapshot();
  const HistogramData b = parts[1].snapshot();
  const HistogramData c = parts[2].snapshot();

  HistogramData left = a;
  left.merge(b);
  left.merge(c);
  HistogramData right = c;
  right.merge(a);
  right.merge(b);
  const HistogramData whole = all.snapshot();

  for (const HistogramData* m : {&left, &right}) {
    EXPECT_EQ(m->count, whole.count);
    EXPECT_EQ(m->underflow, whole.underflow);
    EXPECT_EQ(m->overflow, whole.overflow);
    EXPECT_DOUBLE_EQ(m->min, whole.min);
    EXPECT_DOUBLE_EQ(m->max, whole.max);
    EXPECT_EQ(m->buckets, whole.buckets);
    // Sums fold in different orders, so exact equality is not guaranteed.
    EXPECT_NEAR(m->sum, whole.sum, 1e-6 * std::abs(whole.sum));
    EXPECT_DOUBLE_EQ(m->quantile(0.5), whole.quantile(0.5));
  }
}

// ---------------------------------------------------------------------------
// Registry resolution and identity.

TEST(MetricsRegistry, SeriesIdentityIsNameAndSortedLabels) {
  MetricsRegistry reg;
  MetricsRegistry::Counter& a =
      reg.counter("solve_total", {{"engine", "sb"}, {"kernel", "avx2"}});
  // Same labels in the other order must resolve to the same series.
  MetricsRegistry::Counter& b =
      reg.counter("solve_total", {{"kernel", "avx2"}, {"engine", "sb"}});
  EXPECT_EQ(&a, &b);
  MetricsRegistry::Counter& c =
      reg.counter("solve_total", {{"engine", "sa"}, {"kernel", "avx2"}});
  EXPECT_NE(&a, &c);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, RejectsBadNamesAndKindMismatch) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("9starts_with_digit"), std::invalid_argument);
  EXPECT_THROW(reg.counter("has-dash"), std::invalid_argument);
  EXPECT_THROW(reg.counter("ok_name", {{"bad-key", "v"}}),
               std::invalid_argument);
  reg.counter("series");
  EXPECT_THROW(reg.gauge("series"), std::logic_error);
}

TEST(MetricsRegistry, SaturationCountsDropsAndKeepsWorking) {
  MetricsRegistry reg;
  // Far beyond kSlots distinct series: the overflow lookups must not
  // crash, must count as dropped, and must still hand back a usable sink.
  for (int i = 0; i < 6000; ++i) {
    reg.counter("sat_" + std::to_string(i)).add();
  }
  EXPECT_GT(reg.dropped(), 0u);
  EXPECT_LE(reg.size(), 4096u);
  std::ostringstream prom;
  reg.write_prometheus(prom);
  EXPECT_NE(prom.str().find("adsd_metrics_dropped_total"),
            std::string::npos);
  // The self-metric reports the saturation in the exposition itself.
  std::ostringstream want;
  want << "adsd_metrics_dropped_total " << reg.dropped();
  EXPECT_NE(prom.str().find(want.str()), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentUpdatesAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&reg] {
      for (int i = 0; i < kPerThread; ++i) {
        reg.counter("concurrent_total").add();
        reg.histogram("concurrent_latency").record(1.0 + (i % 7));
      }
    });
  }
  for (auto& w : workers) {
    w.join();
  }
  EXPECT_EQ(reg.counter("concurrent_total").value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramData d = reg.histogram("concurrent_latency").snapshot();
  EXPECT_EQ(d.count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(d.min, 1.0);
  EXPECT_DOUBLE_EQ(d.max, 7.0);
}

// ---------------------------------------------------------------------------
// Exposition formats.

TEST(MetricsExposition, PrometheusShapeAndSeriesValues) {
  MetricsRegistry reg;
  reg.counter("runs_total", {{"engine", "sb"}}).add(3);
  reg.gauge("queue_depth").set(2.5);
  reg.histogram("latency_us", {{"engine", "sb"}}).record(100.0);
  reg.histogram("latency_us", {{"engine", "sb"}}).record(200.0);
  reg.histogram("latency_us", {{"engine", "sb"}}).record(-1.0);

  std::ostringstream out;
  reg.write_prometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE adsd_runs_total counter"), std::string::npos);
  EXPECT_NE(text.find("adsd_runs_total{engine=\"sb\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE adsd_queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("adsd_queue_depth 2.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE adsd_latency_us histogram"),
            std::string::npos);
  // Mandatory +Inf bucket carries the total count (underflow included).
  EXPECT_NE(text.find("adsd_latency_us_bucket{engine=\"sb\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("adsd_latency_us_count{engine=\"sb\"} 3"),
            std::string::npos);
  // One TYPE line per family even with multiple series.
  reg.counter("runs_total", {{"engine", "sa"}}).add();
  std::ostringstream out2;
  reg.write_prometheus(out2);
  const std::string text2 = out2.str();
  std::size_t type_lines = 0;
  for (std::size_t pos = text2.find("# TYPE adsd_runs_total");
       pos != std::string::npos;
       pos = text2.find("# TYPE adsd_runs_total", pos + 1)) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
}

TEST(MetricsExposition, PrometheusEscapesLabelValues) {
  MetricsRegistry reg;
  reg.counter("esc_total", {{"path", "a\"b\\c\nd"}}).add();
  std::ostringstream out;
  reg.write_prometheus(out);
  EXPECT_NE(out.str().find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(MetricsExposition, JsonSnapshotRoundTripsThroughParser) {
  MetricsRegistry reg;
  reg.counter("runs_total", {{"engine", "sb"}}).add(3);
  reg.gauge("depth").set(1.5);
  for (int i = 1; i <= 100; ++i) {
    reg.histogram("lat_us").record(static_cast<double>(i));
  }
  std::ostringstream out;
  reg.write_json(out);
  const json::Value doc = json::parse(out.str());
  EXPECT_EQ(doc.at("schema").as_string(), "adsd-metrics-v1");
  EXPECT_EQ(doc.at("dropped").as_number(), 0.0);
  const auto& metrics = doc.at("metrics").as_array();
  ASSERT_EQ(metrics.size(), 3u);
  bool saw_hist = false;
  for (const json::Value& m : metrics) {
    if (m.at("kind").as_string() != "histogram") {
      continue;
    }
    saw_hist = true;
    EXPECT_EQ(m.at("count").as_number(), 100.0);
    EXPECT_DOUBLE_EQ(m.at("sum").as_number(), 5050.0);
    EXPECT_DOUBLE_EQ(m.at("min").as_number(), 1.0);
    EXPECT_DOUBLE_EQ(m.at("max").as_number(), 100.0);
    const double p50 = m.at("p50").as_number();
    const double p95 = m.at("p95").as_number();
    const double p99 = m.at("p99").as_number();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 50.0);
    EXPECT_LE(p50, 50.0 * 1.125 + 1e-9);
    double bucketed = 0.0;
    for (const json::Value& b : m.at("buckets").as_array()) {
      ASSERT_EQ(b.as_array().size(), 3u);
      EXPECT_LT(b.as_array()[0].as_number(), b.as_array()[1].as_number());
      bucketed += b.as_array()[2].as_number();
    }
    EXPECT_EQ(bucketed, 100.0);
  }
  EXPECT_TRUE(saw_hist);
}

// ---------------------------------------------------------------------------
// Drop re-export through RunContext (telemetry saturation visible in the
// Prometheus exposition, not just per-run JSON).

TEST(MetricsDropExport, TelemetrySaturationShowsUpInExposition) {
  const std::uint64_t before =
      MetricsRegistry::global().counter("telemetry_dropped_total").value();
  RunContext::Options opts;
  opts.metrics = true;
  const RunContext ctx(opts);
  // TelemetrySink has a fixed slot table (1024); far more distinct
  // counters saturate it and count drops.
  for (int i = 0; i < 3000; ++i) {
    ctx.telemetry().add("sat/" + std::to_string(i));
  }
  ASSERT_GT(ctx.telemetry().dropped(), 0u);
  ctx.flush_drop_metrics();
  const std::uint64_t after =
      MetricsRegistry::global().counter("telemetry_dropped_total").value();
  EXPECT_EQ(after - before, ctx.telemetry().dropped());

  // Flushing again must not double-count (delta tracking).
  ctx.flush_drop_metrics();
  EXPECT_EQ(
      MetricsRegistry::global().counter("telemetry_dropped_total").value(),
      after);

  std::ostringstream out;
  MetricsRegistry::global().write_prometheus(out);
  EXPECT_NE(out.str().find("adsd_telemetry_dropped_total"),
            std::string::npos);
}

TEST(MetricsDropExport, ArmedFollowsContextLifetime) {
  // Tests share the process-wide registry, so only the arm/disarm edges
  // around this scope are observable — not the absolute armed state.
  {
    RunContext::Options opts;
    opts.metrics = true;
    const RunContext ctx(opts);
    EXPECT_NE(MetricsRegistry::armed(), nullptr);
    EXPECT_EQ(ctx.metrics(), &MetricsRegistry::global());
  }
  RunContext plain;
  EXPECT_EQ(plain.metrics(), nullptr);
}

// ---------------------------------------------------------------------------
// Flight recorder.

FlightRecorder::SolveRecord make_record(const std::string& stop,
                                        double energy) {
  FlightRecorder::SolveRecord rec;
  rec.spec = "dalta";
  rec.engine = "prop";
  rec.stop_reason = stop;
  rec.n = 8;
  rec.rounds = 1;
  rec.final_energy = energy;
  rec.med = 0.01;
  rec.duration_s = 0.5;
  return rec;
}

TEST(FlightRecorderTest, RingEvictsOldestAndKeepsSequence) {
  FlightRecorder rec(4);
  for (int i = 0; i < 10; ++i) {
    rec.record(make_record("ok", static_cast<double>(i)));
  }
  EXPECT_EQ(rec.total_recorded(), 10u);
  const auto ring = rec.snapshot();
  ASSERT_EQ(ring.size(), 4u);
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    EXPECT_LT(ring[i].seq, ring[i + 1].seq);
  }
  EXPECT_DOUBLE_EQ(ring.back().final_energy, 9.0);
  EXPECT_DOUBLE_EQ(ring.front().final_energy, 6.0);
}

TEST(FlightRecorderTest, WriteJsonMatchesSchema) {
  FlightRecorder rec(8);
  rec.record(make_record("ok", -1.0));
  rec.record(make_record("deadline", -2.0));
  std::ostringstream out;
  rec.write_json(out, "unit-test");
  const json::Value doc = json::parse(out.str());
  EXPECT_EQ(doc.at("schema").as_string(), "adsd-flight-v1");
  EXPECT_EQ(doc.at("reason").as_string(), "unit-test");
  EXPECT_EQ(doc.at("total_recorded").as_number(), 2.0);
  const auto& solves = doc.at("solves").as_array();
  ASSERT_EQ(solves.size(), 2u);
  EXPECT_EQ(solves[1].at("stop_reason").as_string(), "deadline");
  EXPECT_DOUBLE_EQ(solves[1].at("final_energy").as_number(), -2.0);
}

TEST(FlightRecorderTest, DeadlineRecordTriggersPostmortemDump) {
  const std::string path = "flight_test_postmortem.json";
  std::remove(path.c_str());
  FlightRecorder rec(8);
  rec.record(make_record("ok", -1.0));
  EXPECT_FALSE(rec.dump_postmortem("manual"));  // not armed yet
  rec.arm_postmortem(path);
  EXPECT_TRUE(rec.postmortem_armed());
  rec.record(make_record("deadline", -2.0));  // auto-dumps
  std::ifstream f(path);
  ASSERT_TRUE(f.good()) << "deadline record did not dump " << path;
  std::ostringstream buf;
  buf << f.rdbuf();
  const json::Value doc = json::parse(buf.str());
  EXPECT_EQ(doc.at("reason").as_string(), "deadline_overrun");
  EXPECT_EQ(doc.at("solves").as_array().size(), 2u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fixed-seed bit-identity: metrics (and the other recorders) must never
// perturb results — same DaltaResult with everything off, metrics on, and
// metrics+trace+qor armed, at 1 and 8 threads.

DaltaResult run_once(bool metrics, bool everything, std::size_t threads) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=7");
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 6;
  params.rounds = 1;
  params.seed = 7;
  params.parallel = threads > 1;
  RunContext::Options opts;
  opts.seed = 7;
  opts.threads = threads;
  opts.metrics = metrics || everything;
  opts.trace = everything;
  opts.qor = everything;
  const RunContext ctx(opts);
  return run_dalta(exact, dist, params, *solver, ctx);
}

void expect_identical(const DaltaResult& a, const DaltaResult& b) {
  EXPECT_EQ(a.approx, b.approx);
  EXPECT_DOUBLE_EQ(a.med, b.med);
  EXPECT_DOUBLE_EQ(a.error_rate, b.error_rate);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t k = 0; k < a.outputs.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.outputs[k].objective, b.outputs[k].objective);
  }
}

TEST(MetricsBitIdentity, SingleThreaded) {
  const DaltaResult off = run_once(false, false, 1);
  const DaltaResult on = run_once(true, false, 1);
  const DaltaResult all = run_once(false, true, 1);
  expect_identical(off, on);
  expect_identical(off, all);
}

TEST(MetricsBitIdentity, EightThreads) {
  const DaltaResult off = run_once(false, false, 8);
  const DaltaResult on = run_once(true, false, 8);
  const DaltaResult all = run_once(false, true, 8);
  expect_identical(off, on);
  expect_identical(off, all);
}

TEST(MetricsBitIdentity, ThreadCountDoesNotChangeResults) {
  // The engine metrics read only per-run state, and the pool gauges read
  // only pool state — an 8-thread metered run must equal the 1-thread one.
  expect_identical(run_once(true, true, 1), run_once(true, true, 8));
}

}  // namespace
}  // namespace adsd
