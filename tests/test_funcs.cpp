#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "funcs/arithmetic.hpp"
#include "funcs/continuous.hpp"
#include "funcs/registry.hpp"
#include "support/quantize.hpp"

namespace adsd {
namespace {

// ------------------------------------------------------------ Arithmetic

TEST(BrentKung, MatchesMachineAdditionExhaustively8Bit) {
  for (std::uint64_t a = 0; a < 256; a += 3) {
    for (std::uint64_t b = 0; b < 256; b += 5) {
      EXPECT_EQ(brent_kung_add(a, b, 8), a + b) << a << "+" << b;
    }
  }
}

TEST(BrentKung, NonPowerOfTwoWidths) {
  for (unsigned bits : {1u, 3u, 5u, 6u, 7u, 11u}) {
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    for (std::uint64_t a = 0; a <= mask; a += std::max<std::uint64_t>(1, mask / 17)) {
      for (std::uint64_t b = 0; b <= mask;
           b += std::max<std::uint64_t>(1, mask / 13)) {
        EXPECT_EQ(brent_kung_add(a, b, bits), a + b)
            << "bits=" << bits << " " << a << "+" << b;
      }
    }
  }
}

TEST(BrentKung, CarryOutProduced) {
  EXPECT_EQ(brent_kung_add(255, 1, 8), 256u);
  EXPECT_EQ(brent_kung_add(255, 255, 8), 510u);
}

TEST(ArrayMultiply, MatchesMachineMultiplication) {
  for (std::uint64_t a = 0; a < 256; a += 7) {
    for (std::uint64_t b = 0; b < 256; b += 11) {
      EXPECT_EQ(array_multiply(a, b, 8), a * b) << a << "*" << b;
    }
  }
  EXPECT_EQ(array_multiply(255, 255, 8), 255u * 255u);
  EXPECT_EQ(array_multiply(0, 200, 8), 0u);
}

TEST(ArrayMultiply, WiderOperands) {
  EXPECT_EQ(array_multiply(1023, 1023, 10), 1023u * 1023u);
  EXPECT_EQ(array_multiply(4095, 17, 12), 4095u * 17u);
}

TEST(ArithmeticTables, BrentKungTableIsExactAdder) {
  const auto tt = make_brent_kung_table(8, 5);
  for (std::uint64_t x = 0; x < 256; ++x) {
    const std::uint64_t a = x & 0xF;
    const std::uint64_t b = x >> 4;
    EXPECT_EQ(tt.word(x), a + b);
  }
}

TEST(ArithmeticTables, MultiplierTableIsExact) {
  const auto tt = make_multiplier_table(8, 8);
  for (std::uint64_t x = 0; x < 256; ++x) {
    EXPECT_EQ(tt.word(x), (x & 0xF) * (x >> 4));
  }
}

TEST(ArithmeticTables, RejectsBadWidths) {
  EXPECT_THROW((void)make_brent_kung_table(7, 4), std::invalid_argument);
  EXPECT_THROW((void)make_brent_kung_table(8, 4), std::invalid_argument);
  EXPECT_THROW((void)make_multiplier_table(8, 9), std::invalid_argument);
}

TEST(Kinematics, ForwardTableMonotonicAtZeroElbow) {
  // With t2 = 0 the arm is straight: x = cos(t1), decreasing in t1.
  const auto tt = make_forwardk2j_table(8, 8);
  std::uint64_t prev = tt.word(0);
  for (std::uint64_t t1 = 1; t1 < 16; ++t1) {
    const std::uint64_t now = tt.word(t1);  // t2 bits are the high nibble
    EXPECT_LE(now, prev);
    prev = now;
  }
}

TEST(Kinematics, ForwardTableEndpoints) {
  const auto tt = make_forwardk2j_table(8, 8);
  // t1 = t2 = 0: x = 1 (max code). t1 = t2 = pi/2: x = -0.5 (code 0).
  EXPECT_EQ(tt.word(0), 255u);
  EXPECT_EQ(tt.word(255), 0u);
}

TEST(Kinematics, InverseTableWithinRange) {
  const auto tt = make_inversek2j_table(8, 8);
  for (std::uint64_t x = 0; x < 256; ++x) {
    EXPECT_LT(tt.word(x), 256u);
  }
  // Fully stretched arm (x^2 + y^2 = 1) has elbow angle 0: at the largest
  // coordinates the acos argument saturates at 1.
  EXPECT_EQ(tt.word(255), 0u);
}

// ------------------------------------------------------------ Continuous

TEST(Continuous, SuiteHasSixFunctions) {
  EXPECT_EQ(continuous_specs().size(), 6u);
  for (const auto& s : continuous_specs()) {
    EXPECT_LT(s.domain_lo, s.domain_hi);
    EXPECT_LT(s.range_lo, s.range_hi);
  }
}

TEST(Continuous, PaperDomainsAndRanges) {
  const auto& cos_spec = continuous_spec("cos");
  EXPECT_DOUBLE_EQ(cos_spec.domain_hi, std::numbers::pi / 2.0);
  EXPECT_DOUBLE_EQ(cos_spec.range_hi, 1.0);
  const auto& exp_spec = continuous_spec("exp");
  EXPECT_DOUBLE_EQ(exp_spec.domain_hi, 3.0);
  EXPECT_DOUBLE_EQ(exp_spec.range_hi, 20.09);
  const auto& ln_spec = continuous_spec("ln");
  EXPECT_DOUBLE_EQ(ln_spec.domain_lo, 1.0);
  EXPECT_DOUBLE_EQ(ln_spec.domain_hi, 10.0);
}

TEST(Continuous, UnknownNameThrows) {
  EXPECT_THROW((void)continuous_spec("sinh"), std::invalid_argument);
}

TEST(Continuous, QuantizedCosIsMonotoneDecreasing) {
  const auto tt = make_continuous_table(continuous_spec("cos"), 9, 9);
  std::uint64_t prev = tt.word(0);
  EXPECT_EQ(prev, 511u);  // cos(0) = 1 = top of range
  for (std::uint64_t u = 1; u < 512; ++u) {
    EXPECT_LE(tt.word(u), prev);
    prev = tt.word(u);
  }
  EXPECT_EQ(tt.word(511), 0u);  // cos(pi/2) = 0 = bottom of range
}

TEST(Continuous, QuantizationErrorWithinHalfStep) {
  const auto& spec = continuous_spec("exp");
  const auto tt = make_continuous_table(spec, 9, 9);
  const Quantizer in(spec.domain_lo, spec.domain_hi, 9);
  const Quantizer out(spec.range_lo, spec.range_hi, 9);
  for (std::uint64_t u = 0; u < 512; u += 13) {
    const double exactv = spec.fn(in.decode(u));
    const double stored = out.decode(tt.word(u));
    EXPECT_NEAR(stored, exactv, out.step() / 2.0 + 1e-12);
  }
}

TEST(Continuous, DenoiseRangeRespected) {
  const auto& spec = continuous_spec("denoise");
  const auto tt = make_continuous_table(spec, 9, 9);
  EXPECT_EQ(tt.word(0), 511u);  // peak 0.81 at x = 0
  EXPECT_LT(tt.word(511), 8u);  // tail nearly zero
}

// -------------------------------------------------------------- Registry

TEST(Registry, TenBenchmarksInPaperOrder) {
  const auto& suite = benchmark_suite();
  ASSERT_EQ(suite.size(), 10u);
  EXPECT_EQ(suite[0].name, "cos");
  EXPECT_EQ(suite[5].name, "denoise");
  EXPECT_EQ(suite[6].name, "brent-kung");
  EXPECT_EQ(suite[9].name, "multiplier");
  int continuous = 0;
  for (const auto& b : suite) {
    continuous += b.continuous;
  }
  EXPECT_EQ(continuous, 6);
}

TEST(Registry, PaperOutputBits) {
  EXPECT_EQ(paper_output_bits("brent-kung", 16), 9u);
  EXPECT_EQ(paper_output_bits("multiplier", 16), 16u);
  EXPECT_EQ(paper_output_bits("cos", 16), 16u);
  EXPECT_EQ(paper_output_bits("cos", 9), 9u);
}

TEST(Registry, MakeBenchmarkDispatches) {
  for (const auto& b : benchmark_suite()) {
    const unsigned n = 8;
    const unsigned m = paper_output_bits(b.name, n);
    const auto tt = make_benchmark_table(b.name, n, m);
    EXPECT_EQ(tt.num_inputs(), n);
    EXPECT_EQ(tt.num_outputs(), m);
  }
}

TEST(Registry, UnknownBenchmarkThrows) {
  EXPECT_THROW((void)make_benchmark_table("nope", 8, 8),
               std::invalid_argument);
}

}  // namespace
}  // namespace adsd
