// Portfolio meta-solver coverage (DESIGN.md §4.8): the race must never
// return a worse objective than its anchor on the same seed (the property
// bench_diff gates in CI), the soft budget must skip — not kill — members,
// and adapt mode must accumulate per-family win records that reorder and
// prune the roster.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/column_cop.hpp"
#include "core/portfolio_solver.hpp"
#include "core/solver_registry.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

ColumnCop random_cop(std::uint64_t seed, std::size_t r, std::size_t c) {
  Rng rng(seed);
  BooleanMatrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      m.set(i, j, rng.next_bool());
    }
  }
  const std::vector<double> probs(r * c, 1.0 / static_cast<double>(r * c));
  return ColumnCop::separate(m, probs);
}

TEST(Portfolio, NeverWorseThanTheAnchorAlone) {
  const auto& reg = SolverRegistry::global();
  const auto portfolio = reg.make_from_spec("portfolio,n=6");
  const auto anchor = reg.make_from_spec("prop,n=6");
  const RunContext ctx{RunContext::Options{}};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const ColumnCop cop = random_cop(seed, 6, 14);
    CoreSolveStats race_stats;
    CoreSolveStats anchor_stats;
    (void)portfolio->solve(cop, ctx, seed, &race_stats);
    (void)anchor->solve(cop, ctx, seed, &anchor_stats);
    EXPECT_LE(race_stats.objective, anchor_stats.objective)
        << "seed " << seed;
  }
}

TEST(Portfolio, DeterministicForFixedSeed) {
  const auto portfolio =
      SolverRegistry::global().make_from_spec("portfolio,n=5");
  const RunContext ctx{RunContext::Options{}};
  const ColumnCop cop = random_cop(3, 5, 12);
  CoreSolveStats a_stats;
  CoreSolveStats b_stats;
  const ColumnSetting a = portfolio->solve(cop, ctx, 7, &a_stats);
  const ColumnSetting b = portfolio->solve(cop, ctx, 7, &b_stats);
  EXPECT_EQ(a_stats.objective, b_stats.objective);
  EXPECT_TRUE(a.v1 == b.v1 && a.v2 == b.v2 && a.t == b.t);
}

TEST(Portfolio, RaceTelemetryCountsEveryRace) {
  const auto portfolio =
      SolverRegistry::global().make_from_spec("portfolio,n=5");
  const RunContext ctx{RunContext::Options{}};
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    (void)portfolio->solve(random_cop(seed, 5, 12), ctx, seed, nullptr);
  }
  EXPECT_EQ(ctx.telemetry().counter("core/portfolio/races"), 3u);
}

TEST(Portfolio, TinyBudgetSkipsEveryNonAnchorMember) {
  // budget-ms tiny but positive: the anchor still runs (it always does),
  // the boundary check then skips the rest and records how many.
  PortfolioCoreSolver::Options opt;
  opt.budget_ms = 1e-6;
  const PortfolioCoreSolver portfolio(opt);
  ASSERT_EQ(portfolio.members().size(), 3u);
  const RunContext ctx{RunContext::Options{}};
  const ColumnCop cop = random_cop(2, 5, 12);
  CoreSolveStats stats;
  (void)portfolio.solve(cop, ctx, 1, &stats);
  EXPECT_TRUE(stats.stopped_early);
  EXPECT_EQ(ctx.telemetry().counter("core/portfolio/budget_skips"), 2u);
}

TEST(Portfolio, AdaptModeAccumulatesWinRecordsPerFamily) {
  PortfolioCoreSolver::Options opt;
  opt.mode = PortfolioCoreSolver::Mode::kAdapt;
  opt.min_trials = 100;  // never reorders/prunes within this test
  const PortfolioCoreSolver portfolio(opt);
  const RunContext ctx{RunContext::Options{}};
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    (void)portfolio.solve(random_cop(seed, 5, 12), ctx, seed, nullptr);
  }
  // 4 races, 3 members each, all on the same r5c12 family.
  EXPECT_EQ(portfolio.win_rates().total_trials(), 12u);
  std::uint64_t wins = 0;
  for (const char* member : {"prop", "simcim", "doch"}) {
    const auto s = portfolio.win_rates().stat("r5c12", member);
    EXPECT_EQ(s.trials, 4u) << member;
    wins += s.wins;
  }
  EXPECT_EQ(wins, 4u);  // exactly one winner per race
  // Race mode records nothing.
  const PortfolioCoreSolver racing{PortfolioCoreSolver::Options{}};
  (void)racing.solve(random_cop(1, 5, 12), ctx, 1, nullptr);
  EXPECT_EQ(racing.win_rates().total_trials(), 0u);
}

TEST(Portfolio, AdaptModePrunesHopelessMembers) {
  // min_trials 1 and prune_below 1.0: after the first race on a family,
  // every non-anchor member that did not win it is pruned from the next.
  PortfolioCoreSolver::Options opt;
  opt.mode = PortfolioCoreSolver::Mode::kAdapt;
  opt.min_trials = 1;
  opt.prune_below = 1.0;
  const PortfolioCoreSolver portfolio(opt);
  const RunContext ctx{RunContext::Options{}};
  (void)portfolio.solve(random_cop(1, 5, 12), ctx, 1, nullptr);
  const std::uint64_t first = portfolio.win_rates().total_trials();
  EXPECT_EQ(first, 3u);
  (void)portfolio.solve(random_cop(2, 5, 12), ctx, 2, nullptr);
  // At most the anchor plus one surviving winner raced the second time.
  EXPECT_LE(portfolio.win_rates().total_trials(), first + 2);
  EXPECT_GE(ctx.telemetry().counter("core/portfolio/pruned"), 1u);
}

TEST(Portfolio, RejectsBadConfigurations) {
  PortfolioCoreSolver::Options empty;
  empty.member_specs.clear();
  EXPECT_THROW((void)PortfolioCoreSolver(empty), std::invalid_argument);

  PortfolioCoreSolver::Options nested;
  nested.member_specs = {"prop", "portfolio"};
  EXPECT_THROW((void)PortfolioCoreSolver(nested), std::invalid_argument);

  PortfolioCoreSolver::Options bad_prune;
  bad_prune.prune_below = 1.5;
  EXPECT_THROW((void)PortfolioCoreSolver(bad_prune), std::invalid_argument);

  const auto& reg = SolverRegistry::global();
  EXPECT_THROW((void)reg.make_from_spec("portfolio,mode=bogus"),
               std::invalid_argument);
  EXPECT_THROW((void)reg.make_from_spec("portfolio,members=prop|nope"),
               std::invalid_argument);
  EXPECT_THROW((void)reg.make_from_spec("portfolio,members="),
               std::invalid_argument);
}

TEST(Portfolio, RegistryForwardsSharedKeysToDeclaringMembersOnly) {
  // "sa" takes replicas but not kernel; the forwarded spec must respect
  // each member's declared keys or the member build would throw.
  const auto solver = SolverRegistry::global().make_from_spec(
      "portfolio,members=prop|sa|simcim,n=6,replicas=2,kernel=scalar");
  const auto* portfolio = dynamic_cast<const PortfolioCoreSolver*>(
      solver.get());
  ASSERT_NE(portfolio, nullptr);
  ASSERT_EQ(portfolio->members().size(), 3u);
  EXPECT_EQ(portfolio->options().member_specs[0],
            "prop,n=6,replicas=2,kernel=scalar");
  EXPECT_EQ(portfolio->options().member_specs[1], "sa,n=6,replicas=2");
  EXPECT_EQ(portfolio->options().member_specs[2],
            "simcim,n=6,replicas=2,kernel=scalar");
}

}  // namespace
}  // namespace adsd
