// Tests for the structured logging layer (support/log.hpp): deterministic
// token-bucket rate limiting, whole-record drop accounting under ring
// saturation (and its re-export into MetricsRegistry), the adsd-log-v1 line
// schema with run provenance, tail replay into flight postmortems, and the
// off/on fixed-seed bit-identity contract at 1 and 8 threads.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/continuous.hpp"
#include "support/json.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/run_context.hpp"

namespace adsd {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

std::vector<json::Value> parse_jsonl(const std::string& text) {
  std::vector<json::Value> records;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) {
      records.push_back(json::parse(line));
    }
  }
  return records;
}

// ---------------------------------------------------------------------------
// Level roster.

TEST(LogLevels, NamesRoundTripAndRosterIsStable) {
  for (const LogLevel level :
       {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarn, LogLevel::kError,
        LogLevel::kOff}) {
    const auto parsed = parse_log_level(log_level_name(level));
    ASSERT_TRUE(parsed.has_value()) << log_level_name(level);
    EXPECT_EQ(*parsed, level);
  }
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("INFO").has_value());  // wire names are lower
  EXPECT_EQ(parse_log_level_or_throw("warn"), LogLevel::kWarn);
  try {
    parse_log_level_or_throw("loud");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "unknown log level 'loud' (accepted: debug, info, warn, "
                 "error, off)");
  }
}

// ---------------------------------------------------------------------------
// Token bucket: the caller supplies the clock, so refill math is exact.

TEST(TokenBucket, FirstAcquirePrimesAFullBucket) {
  TokenBucket bucket;
  // burst = 2: exactly two records pass at t=0, the third is suppressed.
  EXPECT_TRUE(bucket.try_acquire(0, 10.0, 2.0));
  EXPECT_TRUE(bucket.try_acquire(0, 10.0, 2.0));
  EXPECT_FALSE(bucket.try_acquire(0, 10.0, 2.0));
}

TEST(TokenBucket, RefillsAtRateAndCapsAtBurst) {
  TokenBucket bucket;
  // Drain the primed burst.
  EXPECT_TRUE(bucket.try_acquire(0, 10.0, 2.0));
  EXPECT_TRUE(bucket.try_acquire(0, 10.0, 2.0));
  EXPECT_FALSE(bucket.try_acquire(0, 10.0, 2.0));
  // 10 tokens/s: after 100 ms exactly one token has refilled.
  EXPECT_TRUE(bucket.try_acquire(100'000'000, 10.0, 2.0));
  EXPECT_FALSE(bucket.try_acquire(100'000'000, 10.0, 2.0));
  // A long idle period refills to burst, never beyond: two pass, not ten.
  EXPECT_TRUE(bucket.try_acquire(1'100'000'000, 10.0, 2.0));
  EXPECT_TRUE(bucket.try_acquire(1'100'000'000, 10.0, 2.0));
  EXPECT_FALSE(bucket.try_acquire(1'100'000'000, 10.0, 2.0));
}

TEST(TokenBucket, ZeroRateNeverRefillsAndTimeNeverRunsBackwards) {
  TokenBucket bucket;
  EXPECT_TRUE(bucket.try_acquire(50, 0.0, 1.0));
  EXPECT_FALSE(bucket.try_acquire(1'000'000'000, 0.0, 1.0));
  // A non-monotone clock sample must not mint tokens.
  TokenBucket second;
  EXPECT_TRUE(second.try_acquire(1'000'000'000, 10.0, 1.0));
  EXPECT_FALSE(second.try_acquire(0, 10.0, 1.0));
  EXPECT_FALSE(second.try_acquire(999'999'999, 10.0, 1.0));
}

// ---------------------------------------------------------------------------
// Off path: disarmed sites are a load + branch and never reach the logger.

TEST(LoggerOffPath, DisarmedSiteIsInert) {
  ASSERT_EQ(Logger::armed(), nullptr);
  // Field expressions must not be evaluated into a record anywhere; this
  // would crash or leak if the macro reached serialization while disarmed.
  ADSD_LOG_ERROR("tests/log", "never emitted", {"n", 64}, {"x", 0.5});
  EXPECT_EQ(Logger::armed(), nullptr);
}

TEST(LoggerOffPath, MintedRunIdsAreSixteenHexCharsAndUnique) {
  const std::string a = Logger::mint_run_id();
  const std::string b = Logger::mint_run_id();
  EXPECT_EQ(a.size(), 16u);
  EXPECT_EQ(b.size(), 16u);
  EXPECT_NE(a, b);
  EXPECT_EQ(a.find_first_not_of("0123456789abcdef"), std::string::npos) << a;
}

// ---------------------------------------------------------------------------
// Line schema + provenance.

TEST(LoggerSchema, EmitsAdsdLogV1WithTypedFieldsAndProvenance) {
  const std::string path = "log_test_schema.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = path;
  opts.run_id = "feedface00000001";
  opts.parent_id = "beadbead00000002";
  opts.async = false;
  Logger::arm(opts);
  ADSD_LOG_DEBUG("tests/log", "all field kinds", {"s", "str\"esc"},
                 {"i", -3}, {"u", 7u}, {"d", 1.5}, {"b", true});
  ADSD_LOG_WARN("tests/other", "no fields");
  Logger::disarm();  // last disarm drains and closes the sink

  const auto records = parse_jsonl(slurp(path));
  ASSERT_EQ(records.size(), 2u);
  const json::Value& rec = records[0];
  EXPECT_EQ(rec.at("schema").as_string(), "adsd-log-v1");
  EXPECT_GT(rec.at("ts").as_number(), 0.0);
  EXPECT_GE(rec.at("thread").as_number(), 0.0);
  EXPECT_EQ(rec.at("level").as_string(), "debug");
  EXPECT_EQ(rec.at("component").as_string(), "tests/log");
  EXPECT_EQ(rec.at("run_id").as_string(), "feedface00000001");
  EXPECT_EQ(rec.at("parent_id").as_string(), "beadbead00000002");
  EXPECT_EQ(rec.at("msg").as_string(), "all field kinds");
  const json::Value& fields = rec.at("fields");
  EXPECT_EQ(fields.at("s").as_string(), "str\"esc");
  EXPECT_DOUBLE_EQ(fields.at("i").as_number(), -3.0);
  EXPECT_DOUBLE_EQ(fields.at("u").as_number(), 7.0);
  EXPECT_DOUBLE_EQ(fields.at("d").as_number(), 1.5);
  EXPECT_TRUE(fields.at("b").as_bool());
  EXPECT_EQ(records[1].at("level").as_string(), "warn");
  EXPECT_TRUE(records[1].at("fields").as_object().empty());
  std::remove(path.c_str());
}

TEST(LoggerSchema, ThresholdFiltersBelowArmedLevel) {
  const std::string path = "log_test_threshold.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kWarn;
  opts.path = path;
  opts.async = false;
  Logger::arm(opts);
  ADSD_LOG_DEBUG("tests/log", "filtered");
  ADSD_LOG_INFO("tests/log", "filtered");
  ADSD_LOG_WARN("tests/log", "kept");
  ADSD_LOG_ERROR("tests/log", "kept");
  Logger::disarm();
  const auto records = parse_jsonl(slurp(path));
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("level").as_string(), "warn");
  EXPECT_EQ(records[1].at("level").as_string(), "error");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Rate limiting.

TEST(LoggerRateLimit, BurstBoundsEmissionAndCountsSuppressions) {
  const std::string path = "log_test_ratelimit.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = path;
  opts.site_rate_per_s = 0.0;  // no refill: exactly `burst` records pass
  opts.site_burst = 2.0;
  opts.async = false;
  Logger::arm(opts);
  Logger& logger = Logger::global();
  LogSite site{"tests/log", __FILE__, __LINE__};
  for (int i = 0; i < 5; ++i) {
    logger.log(site, LogLevel::kInfo, "limited", {{"i", i}});
  }
  EXPECT_EQ(logger.rate_limited(), 3u);
  EXPECT_EQ(site.suppressed.load(), 3u);
  Logger::disarm();
  EXPECT_EQ(parse_jsonl(slurp(path)).size(), 2u);
  std::remove(path.c_str());
}

TEST(LoggerRateLimit, SuppressionCountFoldsIntoNextEmittedRecord) {
  const std::string path = "log_test_suppressed.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = path;
  opts.async = false;
  Logger::arm(opts);
  Logger& logger = Logger::global();
  LogSite site{"tests/log", __FILE__, __LINE__};
  // Pre-seed the site's suppression counter as the limiter would have; the
  // next emitted record must carry it and reset the counter.
  site.suppressed.store(5);
  logger.log(site, LogLevel::kInfo, "after suppression", {});
  EXPECT_EQ(site.suppressed.load(), 0u);
  Logger::disarm();
  const auto records = parse_jsonl(slurp(path));
  ASSERT_EQ(records.size(), 1u);
  EXPECT_DOUBLE_EQ(records[0].at("suppressed").as_number(), 5.0);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Ring saturation: whole records drop, drops are counted, and the counters
// re-export into the process metrics registry at drain time.

TEST(LoggerSaturation, FullRingDropsWholeRecordsAndCountsThem) {
  const std::string path = "log_test_saturation.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = path;
  opts.ring_capacity = 8;
  opts.site_rate_per_s = 1e12;
  opts.site_burst = 1e12;
  opts.async = false;  // nothing drains until flush(): saturation is exact
  Logger::arm(opts);
  Logger& logger = Logger::global();
  LogSite site{"tests/log", __FILE__, __LINE__};
  for (int i = 0; i < 20; ++i) {
    logger.log(site, LogLevel::kInfo, "saturate", {{"i", i}});
  }
  EXPECT_EQ(logger.dropped(), 12u);
  EXPECT_EQ(logger.emitted(), 0u);  // still ring-buffered
  logger.flush();
  EXPECT_EQ(logger.emitted(), 8u);
  Logger::disarm();
  const auto records = parse_jsonl(slurp(path));
  ASSERT_EQ(records.size(), 8u);
  // The ring drops the newest records, never tears or reorders the oldest.
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_DOUBLE_EQ(records[i].at("fields").at("i").as_number(),
                     static_cast<double>(i));
  }
  std::remove(path.c_str());
}

TEST(LoggerSaturation, DropAndSuppressionCountersReexportAsMetrics) {
  RunContext::Options ctx_opts;
  ctx_opts.metrics = true;
  const RunContext ctx(ctx_opts);
  MetricsRegistry& reg = MetricsRegistry::global();
  const std::uint64_t records_before =
      reg.counter("log_records_total").value();
  const std::uint64_t dropped_before =
      reg.counter("log_dropped_total").value();

  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = "log_test_reexport.jsonl";
  opts.ring_capacity = 8;
  opts.site_rate_per_s = 1e12;
  opts.site_burst = 1e12;
  opts.async = false;
  Logger::arm(opts);
  Logger& logger = Logger::global();
  LogSite site{"tests/log", __FILE__, __LINE__};
  for (int i = 0; i < 20; ++i) {
    logger.log(site, LogLevel::kInfo, "saturate", {{"i", i}});
  }
  logger.flush();
  EXPECT_EQ(reg.counter("log_records_total").value() - records_before, 8u);
  EXPECT_EQ(reg.counter("log_dropped_total").value() - dropped_before, 12u);
  // A second flush must not double-count (delta export).
  logger.flush();
  EXPECT_EQ(reg.counter("log_dropped_total").value() - dropped_before, 12u);
  Logger::disarm();
  std::remove("log_test_reexport.jsonl");
}

// ---------------------------------------------------------------------------
// Tail replay.

TEST(LoggerTail, KeepsLastNLinesForPostmortemReplay) {
  const std::string path = "log_test_tail.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = path;
  opts.tail_capacity = 3;
  opts.site_rate_per_s = 1e12;
  opts.site_burst = 1e12;
  opts.async = false;
  Logger::arm(opts);
  Logger& logger = Logger::global();
  LogSite site{"tests/log", __FILE__, __LINE__};
  for (int i = 0; i < 5; ++i) {
    logger.log(site, LogLevel::kInfo, "tail " + std::to_string(i), {});
  }
  logger.flush();
  const std::vector<std::string> tail = logger.tail();
  ASSERT_EQ(tail.size(), 3u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    EXPECT_EQ(json::parse(tail[i]).at("msg").as_string(),
              "tail " + std::to_string(i + 2));
  }
  Logger::disarm();
  std::remove(path.c_str());
}

TEST(LoggerTail, FlightPostmortemEmbedsLogTail) {
  const std::string path = "log_test_flight_tail.jsonl";
  std::remove(path.c_str());
  Logger::Options opts;
  opts.level = LogLevel::kDebug;
  opts.path = path;
  opts.run_id = "c0ffee0000000001";
  opts.async = false;
  Logger::arm(opts);
  ADSD_LOG_INFO("tests/log", "before the crash");
  Logger::global().flush();

  FlightRecorder rec(4);
  FlightRecorder::SolveRecord solve;
  solve.spec = "dalta";
  solve.engine = "prop";
  solve.stop_reason = "deadline";
  solve.run_id = "c0ffee0000000001";
  rec.record(solve);
  std::ostringstream out;
  rec.write_json(out, "unit-test");
  Logger::disarm();

  const json::Value doc = json::parse(out.str());
  EXPECT_EQ(doc.at("solves").as_array()[0].at("run_id").as_string(),
            "c0ffee0000000001");
  const auto& tail = doc.at("log_tail").as_array();
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].at("msg").as_string(), "before the crash");
  EXPECT_EQ(tail[0].at("run_id").as_string(), "c0ffee0000000001");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// RunContext provenance: the context arms the logger, stamps its run_id on
// every record, and drains on destruction.

TEST(LoggerRunContext, ContextArmsLoggerAndStampsRunId) {
  const std::string path = "log_test_ctx.jsonl";
  std::remove(path.c_str());
  std::string run_id;
  {
    RunContext::Options opts;
    opts.log = true;
    opts.log_level = LogLevel::kDebug;
    opts.log_path = path;
    const RunContext ctx(opts);
    run_id = ctx.run_id();
    EXPECT_EQ(run_id.size(), 16u);
    ASSERT_NE(Logger::armed(), nullptr);
    ADSD_LOG_INFO("tests/log", "inside context");
  }
  EXPECT_EQ(Logger::armed(), nullptr);
  const auto records = parse_jsonl(slurp(path));
  ASSERT_GE(records.size(), 1u);
  for (const json::Value& rec : records) {
    EXPECT_EQ(rec.at("run_id").as_string(), run_id);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Fixed-seed bit-identity: logging must never perturb results — same
// DaltaResult with logging off, logging on at debug, and every recorder
// armed, at 1 and 8 threads (the test_metrics harness, extended to log).

DaltaResult run_once(bool log, bool everything, std::size_t threads) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=7");
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 6;
  params.rounds = 1;
  params.seed = 7;
  params.parallel = threads > 1;
  RunContext::Options opts;
  opts.seed = 7;
  opts.threads = threads;
  opts.log = log || everything;
  opts.log_level = LogLevel::kDebug;
  opts.log_path = "log_test_identity.jsonl";
  opts.metrics = everything;
  opts.trace = everything;
  opts.qor = everything;
  const RunContext ctx(opts);
  return run_dalta(exact, dist, params, *solver, ctx);
}

void expect_identical(const DaltaResult& a, const DaltaResult& b) {
  EXPECT_EQ(a.approx, b.approx);
  EXPECT_DOUBLE_EQ(a.med, b.med);
  EXPECT_DOUBLE_EQ(a.error_rate, b.error_rate);
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  for (std::size_t k = 0; k < a.outputs.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.outputs[k].objective, b.outputs[k].objective);
  }
}

TEST(LogBitIdentity, SingleThreaded) {
  const DaltaResult off = run_once(false, false, 1);
  const DaltaResult on = run_once(true, false, 1);
  const DaltaResult all = run_once(false, true, 1);
  expect_identical(off, on);
  expect_identical(off, all);
  std::remove("log_test_identity.jsonl");
}

TEST(LogBitIdentity, EightThreads) {
  const DaltaResult off = run_once(false, false, 8);
  const DaltaResult on = run_once(true, false, 8);
  const DaltaResult all = run_once(false, true, 8);
  expect_identical(off, on);
  expect_identical(off, all);
  std::remove("log_test_identity.jsonl");
}

}  // namespace
}  // namespace adsd
