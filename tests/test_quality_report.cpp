#include <gtest/gtest.h>

#include <sstream>

#include "core/dalta.hpp"
#include "core/quality_report.hpp"
#include "funcs/continuous.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

TEST(QualityReport, MetricsMatchDirectComputation) {
  const auto exact = make_continuous_table(continuous_spec("exp"), 6, 6);
  auto approx = exact;
  Rng rng(3);
  for (int flips = 0; flips < 20; ++flips) {
    approx.set_bit(static_cast<unsigned>(rng.next_below(6)),
                   rng.next_below(64), rng.next_bool());
  }
  const auto dist = InputDistribution::uniform(6);
  const auto report = make_quality_report(exact, approx, dist, 100);

  EXPECT_DOUBLE_EQ(report.med, mean_error_distance(exact, approx, dist));
  EXPECT_DOUBLE_EQ(report.error_rate, error_rate(exact, approx, dist));
  EXPECT_EQ(report.worst_case_error, worst_case_error(exact, approx));
  ASSERT_EQ(report.bit_flip_rate.size(), 6u);
  for (unsigned k = 0; k < 6; ++k) {
    EXPECT_DOUBLE_EQ(report.bit_flip_rate[k],
                     error_rate(exact.output(k), approx.output(k), dist));
  }
  EXPECT_EQ(report.flat_bits, 64u * 6u);
  EXPECT_EQ(report.stored_bits, 100u);
  EXPECT_NEAR(report.saving(), 384.0 / 100.0, 1e-12);
}

TEST(QualityReport, ExactApproximationIsAllZero) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 5, 5);
  const auto dist = InputDistribution::uniform(5);
  const auto report = make_quality_report(exact, exact, dist, 0);
  EXPECT_EQ(report.med, 0.0);
  EXPECT_EQ(report.error_rate, 0.0);
  EXPECT_EQ(report.worst_case_error, 0u);
  for (double r : report.bit_flip_rate) {
    EXPECT_EQ(r, 0.0);
  }
  EXPECT_EQ(report.saving(), 0.0);  // stored_bits == 0 guard
  // med_share with zero MED must not divide by zero.
  for (double s : report.med_share_upper_bound()) {
    EXPECT_EQ(s, 0.0);
  }
}

TEST(QualityReport, BitFlipRatesBoundTheMed) {
  // MED <= sum_k flip_rate[k] * 2^k (triangle inequality on bit flips);
  // the med_share upper bounds therefore sum to >= 1 when MED > 0.
  const auto exact = make_continuous_table(continuous_spec("ln"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  DaltaParams params;
  params.free_size = 3;
  params.num_partitions = 4;
  params.rounds = 1;
  params.mode = DecompMode::kJoint;
  const AlternatingCoreSolver solver(4);
  const auto res = run_dalta(exact, dist, params, solver);
  const auto report =
      make_quality_report(exact, res.approx, dist,
                          res.to_lut_network().total_size_bits());
  double bound = 0.0;
  for (std::size_t k = 0; k < report.bit_flip_rate.size(); ++k) {
    bound += report.bit_flip_rate[k] *
             static_cast<double>(std::uint64_t{1} << k);
  }
  EXPECT_LE(report.med, bound + 1e-12);
  if (report.med > 0.0) {
    double shares = 0.0;
    for (double s : report.med_share_upper_bound()) {
      shares += s;
    }
    EXPECT_GE(shares, 1.0 - 1e-9);
  }
  EXPECT_GT(report.saving(), 1.0);
}

TEST(QualityReport, PrintContainsAllSections) {
  const auto exact = make_continuous_table(continuous_spec("erf"), 5, 4);
  auto approx = exact;
  approx.set_word(3, exact.word(3) ^ 0x5);
  const auto dist = InputDistribution::uniform(5);
  const auto report = make_quality_report(exact, approx, dist, 48);
  std::ostringstream os;
  report.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("MED"), std::string::npos);
  EXPECT_NE(s.find("saving"), std::string::npos);
  EXPECT_NE(s.find("per-output-bit flip rates"), std::string::npos);
  EXPECT_NE(s.find("worst-case error"), std::string::npos);
}

TEST(QualityReport, ShapeMismatchThrows) {
  const auto a = make_continuous_table(continuous_spec("cos"), 5, 5);
  const auto b = make_continuous_table(continuous_spec("cos"), 5, 4);
  const auto dist = InputDistribution::uniform(5);
  EXPECT_THROW((void)make_quality_report(a, b, dist, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace adsd
