#include <gtest/gtest.h>

#include <stdexcept>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "lut/decomposed_lut.hpp"
#include "lut/lut.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

ColumnSetting random_column_setting(const InputPartition& w, Rng& rng) {
  ColumnSetting cs;
  cs.v1 = BitVec(w.num_rows());
  cs.v2 = BitVec(w.num_rows());
  cs.t = BitVec(w.num_cols());
  for (std::size_t i = 0; i < cs.v1.size(); ++i) {
    cs.v1.set(i, rng.next_bool());
    cs.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < cs.t.size(); ++j) {
    cs.t.set(j, rng.next_bool());
  }
  return cs;
}

// ------------------------------------------------------------------- Lut

TEST(Lut, ReadWrite) {
  Lut lut(3);
  EXPECT_EQ(lut.size_bits(), 8u);
  lut.write(5, true);
  EXPECT_TRUE(lut.read(5));
  EXPECT_FALSE(lut.read(4));
}

TEST(Lut, ContentsConstructor) {
  Lut lut(2, BitVec::from_string("1010"));
  EXPECT_TRUE(lut.read(0));
  EXPECT_FALSE(lut.read(1));
  EXPECT_TRUE(lut.read(2));
}

TEST(Lut, RejectsBadShapes) {
  EXPECT_THROW(Lut(0), std::invalid_argument);
  EXPECT_THROW(Lut(31), std::invalid_argument);
  EXPECT_THROW(Lut(3, BitVec(4)), std::invalid_argument);
}

// --------------------------------------------------------- DecomposedLut

TEST(DecomposedLut, SizeMatchesFigure1) {
  // Fig. 1 of the paper: 5-input function, |B| = 3, |A| = 2:
  // 32-bit flat LUT vs 8 + 8 = 16 bits decomposed (2x saving).
  const InputPartition w({3, 4}, {0, 1, 2});
  Rng rng(1);
  const auto cs = random_column_setting(w, rng);
  const auto d = DecomposedLut::from_column_setting(w, cs);
  EXPECT_EQ(d.flat_size_bits(), 32u);
  EXPECT_EQ(d.phi_lut().size_bits(), 8u);
  EXPECT_EQ(d.f_lut().size_bits(), 8u);
  EXPECT_EQ(d.size_bits(), 16u);
}

TEST(DecomposedLut, EvaluatesColumnSettingExactly) {
  Rng rng(2);
  for (int trial = 0; trial < 20; ++trial) {
    const auto w = InputPartition::random(7, 3, rng);
    const auto cs = random_column_setting(w, rng);
    const auto d = DecomposedLut::from_column_setting(w, cs);
    const BitVec expect = compose_output(cs, w);
    EXPECT_EQ(d.truth_table(), expect);
  }
}

TEST(DecomposedLut, RowSettingAgreesWithColumnSetting) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const auto w = InputPartition::random(6, 2, rng);
    const auto cs = random_column_setting(w, rng);
    const RowSetting rs = to_row_setting(cs);
    const auto from_col = DecomposedLut::from_column_setting(w, cs);
    const auto from_row = DecomposedLut::from_row_setting(w, rs);
    EXPECT_EQ(from_col.truth_table(), from_row.truth_table());
  }
}

TEST(DecomposedLut, ExactlyDecomposableFunctionRecovered) {
  Rng rng(4);
  const auto w = InputPartition::random(8, 4, rng);
  const BitVec f = random_decomposable_output(w, rng);
  TruthTable tt(8, 1);
  tt.set_output(0, f);
  const auto m = BooleanMatrix::from_function(tt, 0, w);
  const auto cs = check_column_decomposition(m);
  ASSERT_TRUE(cs.has_value());
  const auto d = DecomposedLut::from_column_setting(w, *cs);
  EXPECT_EQ(d.truth_table(), f) << "lossless decomposition must round-trip";
}

TEST(DecomposedLut, MismatchedSettingRejected) {
  const InputPartition w({0, 1}, {2, 3});
  ColumnSetting cs;
  cs.v1 = BitVec(3);  // wrong: needs 4 rows
  cs.v2 = BitVec(4);
  cs.t = BitVec(4);
  EXPECT_THROW((void)DecomposedLut::from_column_setting(w, cs),
               std::invalid_argument);
}

// -------------------------------------------------- DecomposedLutNetwork

TEST(DecomposedLutNetwork, MultiOutputEvaluation) {
  Rng rng(5);
  const unsigned n = 6;
  DecomposedLutNetwork net;
  std::vector<BitVec> expected;
  for (unsigned k = 0; k < 3; ++k) {
    const auto w = InputPartition::random(n, 3, rng);
    const auto cs = random_column_setting(w, rng);
    expected.push_back(compose_output(cs, w));
    net.add_output(DecomposedLut::from_column_setting(w, cs));
  }
  EXPECT_EQ(net.num_outputs(), 3u);
  for (std::uint64_t x = 0; x < (1u << n); ++x) {
    std::uint64_t word = 0;
    for (unsigned k = 0; k < 3; ++k) {
      word |= static_cast<std::uint64_t>(expected[k].get(x)) << k;
    }
    EXPECT_EQ(net.evaluate(x), word);
  }
}

TEST(DecomposedLutNetwork, ToTruthTableMatchesEvaluate) {
  Rng rng(6);
  DecomposedLutNetwork net;
  for (unsigned k = 0; k < 4; ++k) {
    const auto w = InputPartition::random(5, 2, rng);
    net.add_output(
        DecomposedLut::from_column_setting(w, random_column_setting(w, rng)));
  }
  const TruthTable tt = net.to_truth_table();
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_EQ(tt.word(x), net.evaluate(x));
  }
}

TEST(DecomposedLutNetwork, SizeAccounting) {
  Rng rng(7);
  DecomposedLutNetwork net;
  const auto w = InputPartition::trivial(9, 4);  // paper scheme 1: 4 / 5
  net.add_output(
      DecomposedLut::from_column_setting(w, random_column_setting(w, rng)));
  // phi: 2^5 = 32 bits, F: 2^(4+1) = 32 bits; flat: 512 bits per output.
  EXPECT_EQ(net.total_size_bits(), 64u);
  EXPECT_EQ(net.total_flat_size_bits(), 512u);
}

TEST(DecomposedLutNetwork, RejectsMixedInputWidths) {
  Rng rng(8);
  DecomposedLutNetwork net;
  const auto w5 = InputPartition::trivial(5, 2);
  const auto w6 = InputPartition::trivial(6, 2);
  net.add_output(
      DecomposedLut::from_column_setting(w5, random_column_setting(w5, rng)));
  EXPECT_THROW(net.add_output(DecomposedLut::from_column_setting(
                   w6, random_column_setting(w6, rng))),
               std::invalid_argument);
}

TEST(DecomposedLutNetwork, EmptyToTruthTableThrows) {
  DecomposedLutNetwork net;
  EXPECT_THROW((void)net.to_truth_table(), std::logic_error);
}

}  // namespace
}  // namespace adsd
