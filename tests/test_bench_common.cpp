// Unit tests for the shared bench harness helpers: the argv stripper that
// hides harness-only flags from google-benchmark, and the schema-v2
// BenchReport writer that every BENCH_*.json goes through. The stripper is
// tested directly so that adding a new harness flag (as --qor and --json
// were) cannot silently leak into benchmark::Initialize and abort the run.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common.hpp"
#include "support/json.hpp"

namespace adsd {
namespace {

std::vector<std::string> strip(std::vector<std::string> tokens) {
  std::vector<char*> argv;
  argv.reserve(tokens.size());
  for (std::string& t : tokens) {
    argv.push_back(t.data());
  }
  const std::vector<char*> out =
      bench::strip_harness_flags(static_cast<int>(argv.size()), argv.data());
  std::vector<std::string> result;
  result.reserve(out.size());
  for (char* t : out) {
    result.push_back(t);
  }
  return result;
}

TEST(HarnessFlags, RecognizesAllHarnessFlags) {
  for (const char* flag :
       {"--telemetry", "--trace", "--report", "--threads", "--seed", "--qor",
        "--json", "--metrics", "--metrics-format", "--log-level",
        "--log-file", "--obs-dir"}) {
    EXPECT_TRUE(bench::is_harness_flag(flag)) << flag;
    EXPECT_TRUE(bench::is_harness_flag(std::string(flag) + "=x")) << flag;
  }
}

TEST(HarnessFlags, LeavesBenchmarkFlagsAlone) {
  EXPECT_FALSE(bench::is_harness_flag("--benchmark_min_time=0.05x"));
  EXPECT_FALSE(bench::is_harness_flag("--benchmark_filter=BM_Force"));
  EXPECT_FALSE(bench::is_harness_flag("-seed"));       // not a -- flag
  EXPECT_FALSE(bench::is_harness_flag("seed"));        // bare token
  EXPECT_FALSE(bench::is_harness_flag("--seedling"));  // prefix, not match
}

TEST(HarnessFlags, StripsAttachedForm) {
  EXPECT_EQ(strip({"prog", "--json=out.json", "--benchmark_min_time=0.05x"}),
            (std::vector<std::string>{"prog", "--benchmark_min_time=0.05x"}));
}

TEST(HarnessFlags, StripsDetachedFormWithValue) {
  EXPECT_EQ(strip({"prog", "--qor", "qor.json", "--seed", "7", "positional"}),
            (std::vector<std::string>{"prog", "positional"}));
}

TEST(HarnessFlags, DetachedFlagBeforeAnotherFlagDropsOnlyItself) {
  // "--trace --benchmark_list_tests" must not eat the benchmark flag.
  EXPECT_EQ(strip({"prog", "--trace", "--benchmark_list_tests"}),
            (std::vector<std::string>{"prog", "--benchmark_list_tests"}));
}

TEST(HarnessFlags, PassesThroughUnknownTokens) {
  EXPECT_EQ(strip({"prog", "input.txt", "--unknown", "value"}),
            (std::vector<std::string>{"prog", "input.txt", "--unknown",
                                      "value"}));
}

TEST(BenchReport, WritesSchemaV2WithHostAndRecords) {
  bench::BenchReport report("unit_test");
  report.add_time("kernels/BM_X", 1.25);
  report.add_qor("fig4/med", 0.03125, "", true, "");
  report.add_derived("speedup_2t", 0.99, "max", false,
                     "measured on a 1-CPU host");

  std::ostringstream out;
  report.write(out);
  const json::Value doc = json::parse(out.str());

  EXPECT_EQ(doc.at("schema").as_string(), "adsd-bench-v2");
  EXPECT_TRUE(doc.at("generated").contains("date"));
  EXPECT_TRUE(doc.at("generated").contains("commit"));
  EXPECT_EQ(doc.at("generated").at("generator").as_string(), "unit_test");
  EXPECT_GE(doc.at("host").at("hardware_concurrency").as_number(), 1.0);
  EXPECT_EQ(doc.at("host").at("multi_core").as_bool(),
            bench::multi_core_host());

  const auto& records = doc.at("records").as_array();
  ASSERT_EQ(records.size(), 3u);
  ASSERT_EQ(report.size(), 3u);

  EXPECT_EQ(records[0].at("name").as_string(), "kernels/BM_X");
  EXPECT_EQ(records[0].at("kind").as_string(), "time");
  EXPECT_EQ(records[0].at("unit").as_string(), "s");
  EXPECT_EQ(records[0].at("direction").as_string(), "min");
  EXPECT_TRUE(records[0].at("valid").as_bool());
  EXPECT_DOUBLE_EQ(records[0].at("value").as_number(), 1.25);
  EXPECT_FALSE(records[0].contains("note"));  // empty note is omitted

  EXPECT_EQ(records[1].at("kind").as_string(), "qor");
  EXPECT_EQ(records[1].at("direction").as_string(), "min");
  EXPECT_DOUBLE_EQ(records[1].at("value").as_number(), 0.03125);

  EXPECT_EQ(records[2].at("kind").as_string(), "derived");
  EXPECT_EQ(records[2].at("unit").as_string(), "ratio");
  EXPECT_EQ(records[2].at("direction").as_string(), "max");
  EXPECT_FALSE(records[2].at("valid").as_bool());
  EXPECT_EQ(records[2].at("note").as_string(), "measured on a 1-CPU host");

  // No run_id set: the host block must not carry an empty provenance key.
  EXPECT_FALSE(doc.at("host").contains("run_id"));
}

TEST(BenchReport, StampsRunIdIntoHostBlockWhenSet) {
  bench::BenchReport report("unit_test");
  report.set_run_id("feedface00000001");
  report.add_time("kernels/BM_X", 1.25);
  std::ostringstream out;
  report.write(out);
  const json::Value doc = json::parse(out.str());
  EXPECT_EQ(doc.at("host").at("run_id").as_string(), "feedface00000001");
}

}  // namespace
}  // namespace adsd
