#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/bitvec.hpp"
#include "support/cli.hpp"
#include "support/quantize.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace adsd {
namespace {

// ---------------------------------------------------------------- BitVec

TEST(BitVec, DefaultIsEmpty) {
  BitVec b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.count(), 0u);
}

TEST(BitVec, ConstructAllZero) {
  BitVec b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  for (std::size_t i = 0; i < 130; ++i) {
    EXPECT_FALSE(b.get(i));
  }
}

TEST(BitVec, ConstructAllOne) {
  BitVec b(130, true);
  EXPECT_EQ(b.count(), 130u);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(129));
}

TEST(BitVec, SetGetFlip) {
  BitVec b(100);
  b.set(63, true);
  b.set(64, true);
  EXPECT_TRUE(b.get(63));
  EXPECT_TRUE(b.get(64));
  EXPECT_FALSE(b.get(62));
  b.flip(63);
  EXPECT_FALSE(b.get(63));
  b.flip(0);
  EXPECT_TRUE(b.get(0));
  EXPECT_EQ(b.count(), 2u);
}

TEST(BitVec, FromStringRoundTrip) {
  const std::string s = "0110010111010001";
  BitVec b = BitVec::from_string(s);
  EXPECT_EQ(b.to_string(), s);
  EXPECT_EQ(b.count(), 8u);
}

TEST(BitVec, FromStringRejectsGarbage) {
  EXPECT_THROW(BitVec::from_string("01x0"), std::invalid_argument);
}

TEST(BitVec, HammingDistance) {
  BitVec a = BitVec::from_string("0101010101");
  BitVec b = BitVec::from_string("0101010110");
  EXPECT_EQ(a.hamming_distance(b), 2u);
  EXPECT_EQ(a.hamming_distance(a), 0u);
}

TEST(BitVec, HammingDistanceSizeMismatchThrows) {
  BitVec a(10);
  BitVec b(11);
  EXPECT_THROW((void)a.hamming_distance(b), std::invalid_argument);
}

TEST(BitVec, ComplementTwiceIsIdentity) {
  Rng rng(7);
  BitVec b(97);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b.set(i, rng.next_bool());
  }
  EXPECT_EQ(b.complement().complement(), b);
  EXPECT_EQ(b.complement().count(), b.size() - b.count());
}

TEST(BitVec, ComplementClearsTailBits) {
  BitVec b(3);
  BitVec c = b.complement();
  EXPECT_EQ(c.count(), 3u);
  // Tail word must not leak set bits beyond size(): hamming distance with
  // the all-ones vector of the same size is zero.
  EXPECT_EQ(c.hamming_distance(BitVec(3, true)), 0u);
}

TEST(BitVec, PushBackAndResize) {
  BitVec b;
  for (int i = 0; i < 70; ++i) {
    b.push_back(i % 3 == 0);
  }
  EXPECT_EQ(b.size(), 70u);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(69));
  EXPECT_FALSE(b.get(1));
  b.resize(4);
  EXPECT_EQ(b.size(), 4u);
  b.resize(100);
  EXPECT_FALSE(b.get(99));
}

TEST(BitVec, ResizeDownClearsDroppedBits) {
  BitVec b(10, true);
  b.resize(5);
  b.resize(10);
  EXPECT_EQ(b.count(), 5u);
}

TEST(BitVec, EqualityAndOrdering) {
  BitVec a = BitVec::from_string("0101");
  BitVec b = BitVec::from_string("0101");
  BitVec c = BitVec::from_string("0111");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_TRUE(a < c || c < a);
  EXPECT_FALSE(a < b);
  EXPECT_FALSE(b < a);
}

TEST(BitVec, HashDiscriminates) {
  BitVec a = BitVec::from_string("01010101");
  BitVec b = BitVec::from_string("01010100");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), BitVec::from_string("01010101").hash());
}

TEST(BitVec, FillResetsContent) {
  BitVec b(77, true);
  b.fill(false);
  EXPECT_EQ(b.count(), 0u);
  b.fill(true);
  EXPECT_EQ(b.count(), 77u);
}

// ------------------------------------------------------------------- Rng

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    differing += a.next_u64() != b.next_u64();
  }
  EXPECT_GT(differing, 60);
}

TEST(Rng, NextBelowInRangeAndCoversAll) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextBelowZeroThrows) {
  Rng rng(5);
  EXPECT_THROW((void)rng.next_below(0), std::invalid_argument);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanRoughlyHalf) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) {
    s.add(rng.next_double());
  }
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Rng, GaussianMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    s.add(rng.next_gaussian());
  }
  EXPECT_NEAR(s.mean(), 0.0, 0.03);
  EXPECT_NEAR(s.variance(), 1.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(19);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkDecorrelates) {
  Rng a(23);
  Rng b = a.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, SpinIsPlusMinusOne) {
  Rng rng(29);
  int plus = 0;
  for (int i = 0; i < 1000; ++i) {
    const int s = rng.next_spin();
    ASSERT_TRUE(s == 1 || s == -1);
    plus += s == 1;
  }
  EXPECT_GT(plus, 400);
  EXPECT_LT(plus, 600);
}

// ----------------------------------------------------------------- Stats

TEST(RunningStats, KnownSequence) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(v);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1.0);
  s.add(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(WindowedVariance, ConstantSignalHasZeroVariance) {
  WindowedVariance w(5);
  for (int i = 0; i < 20; ++i) {
    w.add(42.0);
  }
  EXPECT_TRUE(w.full());
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.mean(), 42.0);
}

TEST(WindowedVariance, WindowForgetsOldSamples) {
  WindowedVariance w(3);
  w.add(1000.0);
  w.add(5.0);
  w.add(5.0);
  w.add(5.0);  // evicts 1000
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
}

TEST(WindowedVariance, MatchesTwoPassOnWindow) {
  WindowedVariance w(4);
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    w.add(v);
  }
  // Population variance of {1,2,3,4} = 1.25.
  EXPECT_DOUBLE_EQ(w.variance(), 1.25);
}

TEST(WindowedVariance, NotFullBeforeCapacitySamples) {
  WindowedVariance w(10);
  for (int i = 0; i < 9; ++i) {
    w.add(1.0);
    EXPECT_FALSE(w.full());
  }
  w.add(1.0);
  EXPECT_TRUE(w.full());
}

TEST(WindowedVariance, ZeroCapacityThrows) {
  EXPECT_THROW(WindowedVariance w(0), std::invalid_argument);
}

TEST(StatsHelpers, MeanAndGeometricMean) {
  EXPECT_DOUBLE_EQ(mean_of({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_NEAR(geometric_mean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_THROW((void)geometric_mean({1.0, -1.0}), std::invalid_argument);
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPool, RunsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, SumMatchesSerial) {
  ThreadPool pool(8);
  std::atomic<long long> total{0};
  pool.parallel_for(1000, [&](std::size_t i) {
    total.fetch_add(static_cast<long long>(i));
  });
  EXPECT_EQ(total.load(), 1000LL * 999 / 2);
}

TEST(ThreadPool, PropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 5) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, ZeroAndOneItems) {
  ThreadPool pool(4);
  int count = 0;
  pool.parallel_for(0, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  pool.parallel_for(1, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPool, ReusableAcrossCalls) {
  ThreadPool pool(2);
  for (int round = 0; round < 5; ++round) {
    std::atomic<int> n{0};
    pool.parallel_for(50, [&](std::size_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 50);
  }
}

TEST(ThreadPool, ChunksCoverRangeExactlyOnce) {
  ThreadPool pool(4);
  for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{64}, std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(333);
    pool.parallel_for_chunks(333, grain, [&](std::size_t b, std::size_t e) {
      ASSERT_LT(b, e);
      ASSERT_LE(e, std::size_t{333});
      for (std::size_t i = b; i < e; ++i) {
        hits[i].fetch_add(1);
      }
    });
    for (const auto& h : hits) {
      EXPECT_EQ(h.load(), 1) << "grain " << grain;
    }
  }
}

TEST(ThreadPool, ChunksRespectGrainSize) {
  ThreadPool pool(4);
  std::atomic<int> oversized{0};
  pool.parallel_for_chunks(100, 8, [&](std::size_t b, std::size_t e) {
    if (e - b > 8) {
      oversized.fetch_add(1);
    }
  });
  EXPECT_EQ(oversized.load(), 0);
}

TEST(ThreadPool, ChunksPropagateException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for_chunks(64, 4,
                               [](std::size_t b, std::size_t) {
                                 if (b >= 32) {
                                   throw std::runtime_error("boom");
                                 }
                               }),
      std::runtime_error);
}

TEST(ThreadPool, ChunksWorkOnSingleWorkerPool) {
  ThreadPool pool(1);
  std::vector<int> hits(50, 0);  // serial path: no atomics needed
  pool.parallel_for_chunks(50, 0, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) {
      ++hits[i];
    }
  });
  for (int h : hits) {
    EXPECT_EQ(h, 1);
  }
}

TEST(ThreadPool, ConfigureSharedResizesPool) {
  ThreadPool::configure_shared(3);
  EXPECT_EQ(ThreadPool::shared().thread_count(), 3u);
  std::atomic<int> n{0};
  ThreadPool::shared().parallel_for(20, [&](std::size_t) { n.fetch_add(1); });
  EXPECT_EQ(n.load(), 20);
  ThreadPool::configure_shared(0);  // restore default for other tests
  EXPECT_GT(ThreadPool::shared().thread_count(), 0u);
}

// ------------------------------------------------------------------- CLI

TEST(CliArgs, ParsesSeparateAndEqualsForms) {
  const char* argv[] = {"prog", "--alpha", "3", "--beta=hello", "--flag"};
  CliArgs args(5, argv);
  EXPECT_EQ(args.get_int("alpha", 0), 3);
  EXPECT_EQ(args.get_string("beta", ""), "hello");
  EXPECT_TRUE(args.has("flag"));
  EXPECT_TRUE(args.get_bool("flag", false));
}

TEST(CliArgs, FallbacksWhenMissing) {
  const char* argv[] = {"prog"};
  CliArgs args(1, argv);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_DOUBLE_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_FALSE(args.get_bool("missing", false));
  EXPECT_FALSE(args.has("missing"));
}

TEST(CliArgs, PositionalArguments) {
  const char* argv[] = {"prog", "one", "--x", "1", "two"};
  CliArgs args(5, argv);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "one");
  EXPECT_EQ(args.positional()[1], "two");
}

TEST(CliArgs, FlagFollowedByOption) {
  const char* argv[] = {"prog", "--verbose", "--n", "4"};
  CliArgs args(4, argv);
  EXPECT_TRUE(args.get_bool("verbose", false));
  EXPECT_EQ(args.get_int("n", 0), 4);
}

TEST(CliArgs, BooleanSpellings) {
  const char* argv[] = {"prog", "--a=true", "--b=off", "--c=1", "--d=no"};
  CliArgs args(5, argv);
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_FALSE(args.get_bool("b", true));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(CliArgs, BadBooleanThrows) {
  const char* argv[] = {"prog", "--a=maybe"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get_bool("a", false), std::invalid_argument);
}

TEST(CliArgs, NegativeSizeThrows) {
  const char* argv[] = {"prog", "--n=-3"};
  CliArgs args(2, argv);
  EXPECT_THROW((void)args.get_size("n", 0), std::invalid_argument);
}

// ----------------------------------------------------------------- Table

TEST(Table, AlignsAndPrintsAllRows) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "2.50"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("only"), std::string::npos);
}

TEST(Table, TooManyCellsThrows) {
  Table t({"a"});
  EXPECT_THROW(t.add_row({"1", "2"}), std::invalid_argument);
}

TEST(Table, CsvEscapesSeparators) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_NE(os.str().find("\"x,y\""), std::string::npos);
  EXPECT_NE(os.str().find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

// ------------------------------------------------------------- Quantizer

TEST(Quantizer, EndpointsMapToEnds) {
  Quantizer q(0.0, 1.0, 4);
  EXPECT_EQ(q.levels(), 16u);
  EXPECT_EQ(q.encode(0.0), 0u);
  EXPECT_EQ(q.encode(1.0), 15u);
  EXPECT_DOUBLE_EQ(q.decode(0), 0.0);
  EXPECT_DOUBLE_EQ(q.decode(15), 1.0);
}

TEST(Quantizer, SaturatesOutsideRange) {
  Quantizer q(0.0, 1.0, 4);
  EXPECT_EQ(q.encode(-5.0), 0u);
  EXPECT_EQ(q.encode(7.0), 15u);
}

TEST(Quantizer, RoundTripWithinHalfStep) {
  Quantizer q(-2.0, 3.0, 8);
  for (std::uint64_t u = 0; u < q.levels(); u += 5) {
    EXPECT_EQ(q.encode(q.decode(u)), u);
  }
}

TEST(Quantizer, EncodeRoundsToNearest) {
  Quantizer q(0.0, 15.0, 4);  // step = 1
  EXPECT_EQ(q.encode(7.4), 7u);
  EXPECT_EQ(q.encode(7.6), 8u);
}

TEST(Quantizer, RejectsBadArguments) {
  EXPECT_THROW(Quantizer(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Quantizer(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Quantizer(2.0, 1.0, 4), std::invalid_argument);
  Quantizer q(0.0, 1.0, 4);
  EXPECT_THROW((void)q.decode(16), std::out_of_range);
  EXPECT_THROW((void)q.encode(std::nan("")), std::invalid_argument);
}

// ----------------------------------------------------------------- Timer

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink = sink + std::sqrt(static_cast<double>(i));
  }
  EXPECT_GE(t.seconds(), 0.0);
  EXPECT_GE(t.millis(), t.seconds() * 1e3 - 1e-9);
}

TEST(Deadline, UnlimitedNeverExpires) {
  Deadline d(0.0);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), 1e20);
}

TEST(Deadline, TinyBudgetExpires) {
  Deadline d(1e-9);
  volatile double sink = 0.0;
  for (int i = 0; i < 10000; ++i) {
    sink = sink + i;
  }
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining(), 0.0);
}

}  // namespace
}  // namespace adsd
