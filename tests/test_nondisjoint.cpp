#include <gtest/gtest.h>

#include "boolean/nondisjoint.hpp"
#include "core/dalta.hpp"
#include "core/nondisjoint_dalta.hpp"
#include "core/solver_registry.hpp"
#include "funcs/continuous.hpp"
#include "lut/decomposed_lut.hpp"
#include "lut/nondisjoint_lut.hpp"
#include "support/rng.hpp"

namespace adsd {
namespace {

ColumnSetting random_cs(std::size_t r, std::size_t c, Rng& rng) {
  ColumnSetting s;
  s.v1 = BitVec(r);
  s.v2 = BitVec(r);
  s.t = BitVec(c);
  for (std::size_t i = 0; i < r; ++i) {
    s.v1.set(i, rng.next_bool());
    s.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < c; ++j) {
    s.t.set(j, rng.next_bool());
  }
  return s;
}

// ----------------------------------------------------------- Partition

TEST(NonDisjointPartition, IndexingRoundTrip) {
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    const auto w = NonDisjointPartition::random(8, 3, 2, rng);
    EXPECT_EQ(w.free_vars().size(), 3u);
    EXPECT_EQ(w.shared_vars().size(), 2u);
    EXPECT_EQ(w.bound_vars().size(), 3u);
    for (std::uint64_t x = 0; x < 256; x += 5) {
      EXPECT_EQ(w.input_of(w.slice_of(x), w.row_of(x), w.col_of(x)), x);
    }
  }
}

TEST(NonDisjointPartition, LutBitAccounting) {
  const NonDisjointPartition w({0, 1}, {2, 3, 4}, {5});
  // phi: 2^(3+1) = 16, F: 2^(2+1+1) = 16.
  EXPECT_EQ(w.phi_lut_bits(), 16u);
  EXPECT_EQ(w.f_lut_bits(), 16u);
  EXPECT_EQ(w.num_slices(), 2u);
  EXPECT_EQ(w.num_rows(), 4u);
  EXPECT_EQ(w.num_cols(), 8u);
}

TEST(NonDisjointPartition, EmptySharedAllowed) {
  const NonDisjointPartition w({0, 1}, {2, 3}, {});
  EXPECT_EQ(w.num_slices(), 1u);
  EXPECT_EQ(w.slice_of(0b1111), 0u);
}

TEST(NonDisjointPartition, RejectsBadShapes) {
  EXPECT_THROW(NonDisjointPartition({}, {0, 1}, {2}), std::invalid_argument);
  EXPECT_THROW(NonDisjointPartition({0}, {}, {1}), std::invalid_argument);
  EXPECT_THROW(NonDisjointPartition({0, 1}, {1, 2}, {}),
               std::invalid_argument);
  Rng rng(2);
  EXPECT_THROW((void)NonDisjointPartition::random(5, 3, 2, rng),
               std::invalid_argument);
}

// --------------------------------------------------------- Slice algebra

TEST(NonDisjoint, SliceMatrixMatchesCofactor) {
  Rng rng(3);
  auto tt = TruthTable::from_function(
      7, 1, [&](std::uint64_t) { return rng.next_u64() & 1; });
  const auto w = NonDisjointPartition::random(7, 2, 2, rng);
  for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
    const auto m = slice_matrix(tt, 0, w, sl);
    for (std::uint64_t i = 0; i < w.num_rows(); ++i) {
      for (std::uint64_t j = 0; j < w.num_cols(); ++j) {
        EXPECT_EQ(m.at(i, j), tt.bit(0, w.input_of(sl, i, j)));
      }
    }
  }
}

TEST(NonDisjoint, ComposeOutputInvertsSliceView) {
  Rng rng(4);
  const auto w = NonDisjointPartition::random(7, 2, 2, rng);
  NonDisjointSetting s;
  for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
    s.slices.push_back(random_cs(w.num_rows(), w.num_cols(), rng));
  }
  const BitVec out = compose_output(s, w);
  TruthTable tt(7, 1);
  tt.set_output(0, out);
  for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
    const auto m = slice_matrix(tt, 0, w, sl);
    EXPECT_EQ(mismatch_count(m, s.slices[sl]), 0u);
  }
}

TEST(NonDisjoint, ExactCheckAcceptsPlantedDecomposition) {
  Rng rng(5);
  const auto w = NonDisjointPartition::random(7, 2, 2, rng);
  NonDisjointSetting planted;
  for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
    planted.slices.push_back(random_cs(w.num_rows(), w.num_cols(), rng));
  }
  TruthTable tt(7, 1);
  tt.set_output(0, compose_output(planted, w));
  const auto found = check_nondisjoint_decomposition(tt, 0, w);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(compose_output(*found, w), tt.output(0));
}

TEST(NonDisjoint, ExactCheckRejectsRandomFunction) {
  // A random 7-input function is essentially never non-disjoint
  // decomposable with these sizes.
  Rng rng(6);
  auto tt = TruthTable::from_function(
      7, 1, [&](std::uint64_t) { return rng.next_u64() & 1; });
  const auto w = NonDisjointPartition::random(7, 2, 1, rng);
  EXPECT_FALSE(check_nondisjoint_decomposition(tt, 0, w).has_value());
}

TEST(NonDisjoint, SharedVariableStrictlyEnlargesTheFeasibleSet) {
  // A function decomposable with one shared variable but not disjointly:
  // g = x2 ? f1(x0, x1, x3) : f0(x0, x1, x3) with incompatible slices.
  // Construct via planted slices that differ.
  Rng rng(7);
  const NonDisjointPartition wnd({0, 1}, {3, 4}, {2});
  NonDisjointSetting planted;
  planted.slices.push_back(random_cs(4, 4, rng));
  planted.slices.push_back(random_cs(4, 4, rng));
  TruthTable tt(5, 1);
  tt.set_output(0, compose_output(planted, wnd));
  EXPECT_TRUE(check_nondisjoint_decomposition(tt, 0, wnd).has_value());
  // The corresponding *disjoint* split (x2 in the bound set) usually fails.
  const InputPartition wd({0, 1}, {2, 3, 4});
  const auto m = BooleanMatrix::from_function(tt, 0, wd);
  // Not guaranteed to fail for every seed, but for this seed it does; the
  // point is that non-disjoint acceptance does not imply disjoint
  // acceptance.
  EXPECT_FALSE(check_column_decomposition(m).has_value());
}

// ------------------------------------------------------------------- LUT

TEST(NonDisjointLut, EvaluatesSettingExactly) {
  Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const auto w = NonDisjointPartition::random(7, 2, 2, rng);
    NonDisjointSetting s;
    for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
      s.slices.push_back(random_cs(w.num_rows(), w.num_cols(), rng));
    }
    const auto lut = NonDisjointLut::from_setting(w, s);
    EXPECT_EQ(lut.truth_table(), compose_output(s, w));
  }
}

TEST(NonDisjointLut, SizeMatchesPartitionAccounting) {
  Rng rng(9);
  const auto w = NonDisjointPartition::random(9, 3, 2, rng);
  NonDisjointSetting s;
  for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
    s.slices.push_back(random_cs(w.num_rows(), w.num_cols(), rng));
  }
  const auto lut = NonDisjointLut::from_setting(w, s);
  EXPECT_EQ(lut.phi_lut().size_bits(), w.phi_lut_bits());
  EXPECT_EQ(lut.f_lut().size_bits(), w.f_lut_bits());
  EXPECT_EQ(lut.flat_size_bits(), 512u);
}

TEST(NonDisjointLut, ZeroSharedMatchesDecomposedLutCost) {
  const NonDisjointPartition w({0, 1}, {2, 3, 4}, {});
  // Same cost as the disjoint pair: 2^3 + 2^(2+1) = 16.
  EXPECT_EQ(w.phi_lut_bits() + w.f_lut_bits(), 16u);
}

TEST(NonDisjointLut, RejectsWrongSliceCount) {
  Rng rng(10);
  const auto w = NonDisjointPartition::random(6, 2, 1, rng);
  NonDisjointSetting s;
  s.slices.push_back(random_cs(w.num_rows(), w.num_cols(), rng));
  EXPECT_THROW((void)NonDisjointLut::from_setting(w, s),
               std::invalid_argument);
}

// ------------------------------------------------------------- Framework

TEST(NdDalta, ZeroSharedReproducesDisjointDalta) {
  // With shared_size = 0 the candidate partitions and the per-candidate
  // COPs coincide with run_dalta's, so the results must be identical.
  const auto exact = make_continuous_table(continuous_spec("exp"), 6, 5);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(4);

  DaltaParams dp;
  dp.free_size = 2;
  dp.num_partitions = 5;
  dp.rounds = 1;
  dp.mode = DecompMode::kJoint;
  dp.seed = 9;
  dp.parallel = false;

  NdDaltaParams np;
  np.free_size = 2;
  np.shared_size = 0;
  np.num_partitions = 5;
  np.rounds = 1;
  np.mode = DecompMode::kJoint;
  np.seed = 9;
  np.parallel = false;

  const auto rd = run_dalta(exact, dist, dp, solver);
  const auto rn = run_dalta_nd(exact, dist, np, solver);
  EXPECT_EQ(rd.approx, rn.approx);
  EXPECT_DOUBLE_EQ(rd.med, rn.med);
}

TEST(NdDalta, SharedVariablesReduceErrorOnAverage) {
  const auto exact = make_continuous_table(continuous_spec("tan"), 7, 7);
  const auto dist = InputDistribution::uniform(7);
  const AlternatingCoreSolver solver(4);

  double med[3];
  for (unsigned s = 0; s <= 2; ++s) {
    NdDaltaParams np;
    np.free_size = 3;
    np.shared_size = s;
    np.num_partitions = 6;
    np.rounds = 1;
    np.mode = DecompMode::kJoint;
    np.seed = 11;
    const auto res = run_dalta_nd(exact, dist, np, solver);
    med[s] = res.med;
  }
  // Each shared variable enlarges the feasible set per candidate, so with
  // matched P the error should trend down (allow mild non-monotonic noise).
  EXPECT_LE(med[2], med[0] * 1.05 + 1e-9);
}

TEST(NdDalta, MedMatchesRecomputationAndLutRealization) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 7, 5);
  const auto dist = InputDistribution::uniform(7);
  const auto solver = SolverRegistry::global().make_from_spec("prop,n=7");
  NdDaltaParams np;
  np.free_size = 3;
  np.shared_size = 1;
  np.num_partitions = 4;
  np.rounds = 1;
  np.seed = 13;
  const auto res = run_dalta_nd(exact, dist, np, *solver);
  EXPECT_NEAR(res.med, mean_error_distance(exact, res.approx, dist), 1e-12);

  for (unsigned k = 0; k < 5; ++k) {
    const auto lut = NonDisjointLut::from_setting(res.outputs[k].partition,
                                                  res.outputs[k].setting);
    EXPECT_EQ(lut.truth_table(), res.approx.output(k)) << "output " << k;
  }
  EXPECT_GT(res.total_flat_size_bits(), res.total_size_bits());
}

TEST(NdDalta, StatsCountSlices) {
  const auto exact = make_continuous_table(continuous_spec("erf"), 6, 3);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(2);
  NdDaltaParams np;
  np.free_size = 2;
  np.shared_size = 2;
  np.num_partitions = 3;
  np.rounds = 1;
  np.seed = 17;
  const auto res = run_dalta_nd(exact, dist, np, solver);
  // 3 outputs x 3 partitions x 4 slices.
  EXPECT_EQ(res.cop_solves, 3u * 3u * 4u);
}

TEST(NonDisjointLut, ZeroSharedBitExactMatchWithDecomposedLut) {
  // With an empty shared set the non-disjoint LUT must compute the same
  // function as the disjoint pair built from the same column setting.
  Rng rng(42);
  const InputPartition wd({0, 2}, {1, 3, 4});
  const NonDisjointPartition wn({0, 2}, {1, 3, 4}, {});
  const auto cs = random_cs(4, 8, rng);
  const auto disjoint = DecomposedLut::from_column_setting(wd, cs);
  NonDisjointSetting s;
  s.slices.push_back(cs);
  const auto nd = NonDisjointLut::from_setting(wn, s);
  EXPECT_EQ(nd.truth_table(), disjoint.truth_table());
  EXPECT_EQ(nd.size_bits(), disjoint.size_bits());
}

TEST(NdDalta, RejectsBadParameters) {
  const auto exact = make_continuous_table(continuous_spec("cos"), 6, 3);
  const auto dist = InputDistribution::uniform(6);
  const AlternatingCoreSolver solver(2);
  NdDaltaParams np;
  np.free_size = 3;
  np.shared_size = 3;
  EXPECT_THROW((void)run_dalta_nd(exact, dist, np, solver),
               std::invalid_argument);
}

}  // namespace
}  // namespace adsd
