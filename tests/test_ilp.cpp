#include <gtest/gtest.h>

#include <cmath>

#include "ilp/ilp.hpp"
#include "ilp/lp.hpp"

namespace adsd {
namespace {

// -------------------------------------------------------------------- LP

TEST(Lp, SimpleTwoVarOptimum) {
  // min -x - y  s.t. x + y <= 4, x <= 3, y <= 2  ->  x=3, y=1? No:
  // optimum is x=3 wait x+y<=4 binds with y<=2: best x=2,y=2 value -4 or
  // x=3,y=1 value -4; both optimal with value -4.
  LpProblem p;
  p.objective = {-1.0, -1.0};
  p.add_le({1.0, 1.0}, 4.0);
  p.add_le({1.0, 0.0}, 3.0);
  p.add_le({0.0, 1.0}, 2.0);
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
  EXPECT_NEAR(sol.x[0] + sol.x[1], 4.0, 1e-9);
}

TEST(Lp, EqualityConstraint) {
  // min x + 2y  s.t. x + y == 3  ->  x=3, y=0, value 3.
  LpProblem p;
  p.objective = {1.0, 2.0};
  p.add_eq({1.0, 1.0}, 3.0);
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.0, 1e-9);
}

TEST(Lp, GreaterEqualConstraint) {
  // min x  s.t. x >= 2.5  ->  2.5.
  LpProblem p;
  p.objective = {1.0};
  p.add_ge({1.0}, 2.5);
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.5, 1e-9);
}

TEST(Lp, DetectsInfeasibility) {
  LpProblem p;
  p.objective = {1.0};
  p.add_le({1.0}, 1.0);
  p.add_ge({1.0}, 2.0);
  const auto sol = solve_lp(p);
  EXPECT_EQ(sol.status, LpStatus::kInfeasible);
}

TEST(Lp, DetectsUnboundedness) {
  LpProblem p;
  p.objective = {-1.0};
  p.add_ge({1.0}, 0.0);
  const auto sol = solve_lp(p);
  EXPECT_EQ(sol.status, LpStatus::kUnbounded);
}

TEST(Lp, NegativeRhsNormalized) {
  // min x  s.t. -x <= -3  (i.e. x >= 3).
  LpProblem p;
  p.objective = {1.0};
  p.add_le({-1.0}, -3.0);
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 3.0, 1e-9);
}

TEST(Lp, DegenerateProblemTerminates) {
  // Classic degeneracy: multiple constraints active at the optimum. Bland's
  // rule must avoid cycling.
  LpProblem p;
  p.objective = {-0.75, 150.0, -0.02, 6.0};
  p.add_le({0.25, -60.0, -0.04, 9.0}, 0.0);
  p.add_le({0.5, -90.0, -0.02, 3.0}, 0.0);
  p.add_le({0.0, 0.0, 1.0, 0.0}, 1.0);
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -0.05, 1e-9);  // Beale's cycling example
}

TEST(Lp, SolutionSatisfiesConstraints) {
  LpProblem p;
  p.objective = {2.0, 3.0, 1.0};
  p.add_ge({1.0, 1.0, 1.0}, 10.0);
  p.add_ge({2.0, 1.0, 0.0}, 8.0);
  p.add_le({1.0, 0.0, 0.0}, 6.0);
  const auto sol = solve_lp(p);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_GE(sol.x[0] + sol.x[1] + sol.x[2], 10.0 - 1e-9);
  EXPECT_GE(2 * sol.x[0] + sol.x[1], 8.0 - 1e-9);
  EXPECT_LE(sol.x[0], 6.0 + 1e-9);
}

TEST(Lp, EmptyObjectiveThrows) {
  LpProblem p;
  EXPECT_THROW((void)solve_lp(p), std::invalid_argument);
}

// ------------------------------------------------------------------- ILP

TEST(Ilp, KnapsackSmall) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binary)  ->  min form, answer 16.
  IlpProblem p;
  p.lp.objective = {-10.0, -6.0, -4.0};
  p.lp.add_le({1.0, 1.0, 1.0}, 2.0);
  p.is_binary = {true, true, true};
  const auto sol = solve_ilp(p, IlpParams{});
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -16.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[2], 0.0, 1e-9);
  EXPECT_TRUE(sol.proven_optimal);
}

TEST(Ilp, WeightedKnapsackNeedsBranching) {
  // max 5a + 4b + 3c  s.t. 2a + 3b + c <= 3. LP relax is fractional;
  // integer optimum picks a + c = 8.
  IlpProblem p;
  p.lp.objective = {-5.0, -4.0, -3.0};
  p.lp.add_le({2.0, 3.0, 1.0}, 3.0);
  p.is_binary = {true, true, true};
  const auto sol = solve_ilp(p, IlpParams{});
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -8.0, 1e-9);
}

TEST(Ilp, InfeasibleDetected) {
  IlpProblem p;
  p.lp.objective = {1.0};
  p.lp.add_ge({1.0}, 2.0);  // binary x can be at most 1
  p.is_binary = {true};
  const auto sol = solve_ilp(p, IlpParams{});
  EXPECT_EQ(sol.status, IlpStatus::kInfeasible);
}

TEST(Ilp, MixedIntegerContinuous) {
  // min -x - 10y, x continuous <= 2.5, y binary, x + y <= 3.
  IlpProblem p;
  p.lp.objective = {-1.0, -10.0};
  p.lp.add_le({1.0, 0.0}, 2.5);
  p.lp.add_le({1.0, 1.0}, 3.0);
  p.is_binary = {false, true};
  const auto sol = solve_ilp(p, IlpParams{});
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.objective, -12.0, 1e-9);
}

TEST(Ilp, EqualityOneHot) {
  // Choose exactly one of three with costs 3, 1, 2.
  IlpProblem p;
  p.lp.objective = {3.0, 1.0, 2.0};
  p.lp.add_eq({1.0, 1.0, 1.0}, 1.0);
  p.is_binary = {true, true, true};
  const auto sol = solve_ilp(p, IlpParams{});
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

TEST(Ilp, WarmStartAccepted) {
  IlpProblem p;
  p.lp.objective = {-1.0, -1.0};
  p.lp.add_le({1.0, 1.0}, 1.0);
  p.is_binary = {true, true};
  const std::vector<double> warm = {1.0, 0.0};
  const auto sol = solve_ilp(p, IlpParams{}, &warm);
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-9);
}

TEST(Ilp, AssignmentProblemThreeByThree) {
  // Costs: worker w to task t = c[w][t]; one-hot rows and columns.
  const double c[3][3] = {{4, 2, 8}, {4, 3, 7}, {3, 1, 6}};
  IlpProblem p;
  p.lp.objective.assign(9, 0.0);
  for (int w = 0; w < 3; ++w) {
    for (int t = 0; t < 3; ++t) {
      p.lp.objective[static_cast<std::size_t>(3 * w + t)] = c[w][t];
    }
  }
  p.is_binary.assign(9, true);
  for (int w = 0; w < 3; ++w) {
    std::vector<double> row(9, 0.0);
    for (int t = 0; t < 3; ++t) {
      row[static_cast<std::size_t>(3 * w + t)] = 1.0;
    }
    p.lp.add_eq(std::move(row), 1.0);
  }
  for (int t = 0; t < 3; ++t) {
    std::vector<double> col(9, 0.0);
    for (int w = 0; w < 3; ++w) {
      col[static_cast<std::size_t>(3 * w + t)] = 1.0;
    }
    p.lp.add_eq(std::move(col), 1.0);
  }
  const auto sol = solve_ilp(p, IlpParams{});
  ASSERT_EQ(sol.status, IlpStatus::kOptimal);
  // Optimal assignment: w0->t1 (2), w1->t2 (7), w2->t0 (3) = 12 or better.
  EXPECT_NEAR(sol.objective, 12.0, 1e-9);
}

TEST(Ilp, TimeBudgetReturnsIncumbent) {
  // A nontrivial instance with an immediate warm start and a zero budget:
  // the solver must return the incumbent rather than nothing.
  IlpProblem p;
  p.lp.objective = {-5.0, -4.0, -3.0};
  p.lp.add_le({2.0, 3.0, 1.0}, 3.0);
  p.is_binary = {true, true, true};
  IlpParams params;
  params.time_budget_s = 1e-9;
  const std::vector<double> warm = {0.0, 0.0, 1.0};
  const auto sol = solve_ilp(p, params, &warm);
  EXPECT_EQ(sol.status, IlpStatus::kFeasible);
  EXPECT_FALSE(sol.proven_optimal);
  EXPECT_LE(sol.objective, -3.0 + 1e-9);
}

TEST(Ilp, BinarySizeMismatchThrows) {
  IlpProblem p;
  p.lp.objective = {1.0, 1.0};
  p.is_binary = {true};
  EXPECT_THROW((void)solve_ilp(p, IlpParams{}), std::invalid_argument);
}

}  // namespace
}  // namespace adsd
