#include "ising/poly_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/log.hpp"

namespace adsd {

namespace {

/// Sorts and cancels repeated variables pairwise (sigma^2 = 1).
std::vector<std::uint32_t> canonicalize(std::vector<std::size_t> vars,
                                        std::size_t n) {
  std::vector<std::uint32_t> v;
  v.reserve(vars.size());
  for (std::size_t x : vars) {
    if (x >= n) {
      throw std::out_of_range("PolyIsingModel: spin index out of range");
    }
    v.push_back(static_cast<std::uint32_t>(x));
  }
  std::sort(v.begin(), v.end());
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < v.size();) {
    if (i + 1 < v.size() && v[i] == v[i + 1]) {
      i += 2;  // sigma^2 = 1
    } else {
      out.push_back(v[i]);
      ++i;
    }
  }
  return out;
}

}  // namespace

PolyIsingModel::PolyIsingModel(std::size_t num_spins) : n_(num_spins) {
  if (num_spins == 0) {
    throw std::invalid_argument("PolyIsingModel: need at least one spin");
  }
}

void PolyIsingModel::add_term(std::vector<std::size_t> vars, double coeff) {
  if (coeff == 0.0) {
    return;
  }
  auto v = canonicalize(std::move(vars), n_);
  if (v.empty()) {
    constant_ += coeff;
    return;
  }
  terms_.push_back({std::move(v), coeff});
  finalized_ = false;
}

void PolyIsingModel::finalize() {
  if (finalized_) {
    return;
  }
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.vars < b.vars; });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (auto& t : terms_) {
    if (!merged.empty() && merged.back().vars == t.vars) {
      merged.back().coeff += t.coeff;
    } else {
      merged.push_back(std::move(t));
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Term& t) { return t.coeff == 0.0; }),
               merged.end());
  terms_ = std::move(merged);

  incidence_.assign(n_, {});
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    for (std::uint32_t v : terms_[t].vars) {
      incidence_[v].push_back(static_cast<std::uint32_t>(t));
    }
  }
  finalized_ = true;

  if (terms_.empty()) {
    // Every non-constant term cancelled: the energy landscape is flat and
    // any solver output is as good as any other.
    ADSD_LOG_WARN("ising/poly_model", "all terms cancelled in finalize",
                  {"spins", n_}, {"constant", constant_});
  } else {
    ADSD_LOG_DEBUG("ising/poly_model", "model finalized", {"spins", n_},
                   {"terms", terms_.size()}, {"max_order", max_order()});
  }
}

std::size_t PolyIsingModel::max_order() const {
  std::size_t order = 0;
  for (const auto& t : terms_) {
    order = std::max(order, t.vars.size());
  }
  return order;
}

double PolyIsingModel::energy(std::span<const std::int8_t> spins) const {
  if (!finalized_) {
    throw std::logic_error("PolyIsingModel: finalize() before energy()");
  }
  if (spins.size() != n_) {
    throw std::invalid_argument("PolyIsingModel::energy: spin count");
  }
  double e = constant_;
  for (const auto& t : terms_) {
    double p = t.coeff;
    for (std::uint32_t v : t.vars) {
      p *= spins[v];
    }
    e += p;
  }
  return e;
}

void PolyIsingModel::gradient(std::span<const double> x,
                              std::span<double> out) const {
  if (!finalized_) {
    throw std::logic_error("PolyIsingModel: finalize() before gradient()");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    double g = 0.0;
    for (std::uint32_t ti : incidence_[i]) {
      const Term& t = terms_[ti];
      double p = t.coeff;
      for (std::uint32_t v : t.vars) {
        if (v != i) {
          p *= x[v];
        }
      }
      g += p;
    }
    out[i] = g;
  }
}

void PolyIsingModel::gradient_signed(std::span<const double> x,
                                     std::span<double> out) const {
  if (!finalized_) {
    throw std::logic_error("PolyIsingModel: finalize() before gradient()");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    double g = 0.0;
    for (std::uint32_t ti : incidence_[i]) {
      const Term& t = terms_[ti];
      double p = t.coeff;
      for (std::uint32_t v : t.vars) {
        if (v != i) {
          p *= x[v] >= 0.0 ? 1.0 : -1.0;
        }
      }
      g += p;
    }
    out[i] = g;
  }
}

double PolyIsingModel::flip_delta(std::span<const std::int8_t> spins,
                                  std::size_t i) const {
  if (!finalized_) {
    throw std::logic_error("PolyIsingModel: finalize() before flip_delta()");
  }
  // Flipping sigma_i negates every term containing i: delta = -2 * sum.
  double affected = 0.0;
  for (std::uint32_t ti : incidence_[i]) {
    const Term& t = terms_[ti];
    double p = t.coeff;
    for (std::uint32_t v : t.vars) {
      p *= spins[v];
    }
    affected += p;
  }
  return -2.0 * affected;
}

double PolyIsingModel::coeff_rms() const {
  if (terms_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (const auto& t : terms_) {
    s += t.coeff * t.coeff;
  }
  return std::sqrt(s / static_cast<double>(terms_.size()));
}

// ----------------------------------------------------------------- SpinPoly

SpinPoly SpinPoly::constant(double c) {
  SpinPoly p;
  if (c != 0.0) {
    p.terms_[{}] = c;
  }
  return p;
}

SpinPoly SpinPoly::variable(std::size_t i) {
  SpinPoly p;
  p.terms_[{static_cast<std::uint32_t>(i)}] = 1.0;
  return p;
}

SpinPoly SpinPoly::binary(std::size_t i) {
  SpinPoly p;
  p.terms_[{}] = 0.5;
  p.terms_[{static_cast<std::uint32_t>(i)}] = 0.5;
  return p;
}

SpinPoly& SpinPoly::operator+=(const SpinPoly& other) {
  for (const auto& [vars, coeff] : other.terms_) {
    const double next = (terms_[vars] += coeff);
    if (next == 0.0) {
      terms_.erase(vars);
    }
  }
  return *this;
}

SpinPoly& SpinPoly::operator-=(const SpinPoly& other) {
  for (const auto& [vars, coeff] : other.terms_) {
    const double next = (terms_[vars] -= coeff);
    if (next == 0.0) {
      terms_.erase(vars);
    }
  }
  return *this;
}

SpinPoly& SpinPoly::operator*=(const SpinPoly& other) {
  *this = *this * other;
  return *this;
}

SpinPoly SpinPoly::operator+(const SpinPoly& other) const {
  SpinPoly out = *this;
  out += other;
  return out;
}

SpinPoly SpinPoly::operator-(const SpinPoly& other) const {
  SpinPoly out = *this;
  out -= other;
  return out;
}

SpinPoly SpinPoly::operator*(const SpinPoly& other) const {
  SpinPoly out;
  for (const auto& [va, ca] : terms_) {
    for (const auto& [vb, cb] : other.terms_) {
      // Symmetric difference implements sigma^2 = 1 on sorted sets.
      std::vector<std::uint32_t> prod;
      std::set_symmetric_difference(va.begin(), va.end(), vb.begin(),
                                    vb.end(), std::back_inserter(prod));
      const double next = (out.terms_[prod] += ca * cb);
      if (next == 0.0) {
        out.terms_.erase(prod);
      }
    }
  }
  return out;
}

SpinPoly& SpinPoly::scale(double k) {
  if (k == 0.0) {
    terms_.clear();
    return *this;
  }
  for (auto& [vars, coeff] : terms_) {
    coeff *= k;
  }
  return *this;
}

double SpinPoly::evaluate(std::span<const std::int8_t> spins) const {
  double e = 0.0;
  for (const auto& [vars, coeff] : terms_) {
    double p = coeff;
    for (std::uint32_t v : vars) {
      p *= spins[v];
    }
    e += p;
  }
  return e;
}

void SpinPoly::add_to(PolyIsingModel& model, double scale) const {
  for (const auto& [vars, coeff] : terms_) {
    if (vars.empty()) {
      model.add_constant(coeff * scale);
    } else {
      std::vector<std::size_t> v(vars.begin(), vars.end());
      model.add_term(std::move(v), coeff * scale);
    }
  }
}

}  // namespace adsd
