#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ising/bsb.hpp"
#include "ising/bsb_batch.hpp"
#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "support/aligned.hpp"

namespace adsd {

class RunContext;

/// How BsbPackEngine lays out the packed instances (DESIGN.md §4.7).
///
///  - kSlots:  slot-minor SoA — oscillator i of replica r of the instance
///             in slot s at x[(i * R + r) * T + s % T] of slot tile
///             s / T — with a per-slot weight plane over the UNION
///             sparsity pattern of the members, advanced by the dedicated
///             pack force kernels that vectorize ACROSS INSTANCES. This is
///             the fast path for small replica counts (the DALTA hot path
///             runs R = 1, where the per-instance kernels degenerate to
///             scalar lanes); the union plane costs flops only for columns
///             some member actually couples — DALTA packs share one
///             template pattern, so the union is ~one member's edge count
///             — which the full-width SIMD pays back many times over at
///             R <= 2. Slots are grouped into
///             contiguous cache-sized TILES of T slots each (see
///             PackEngineOptions::tile), and each tile is advanced through
///             a whole inter-sampling block of steps before the next tile
///             runs, so its weight planes stay cache-resident across the
///             block instead of being streamed once per step.
///  - kBlocks: one composite block-diagonal CSR — member m occupies the
///             rows/columns [base_m, base_m + n_m) where base_m is the
///             running spin-count prefix — in the standard
///             replica-contiguous layout, advanced by the existing
///             per-instance force kernels one active block's row range at
///             a time. At R > 2 those kernels already fill the vector
///             width across replicas, so the composite CSR keeps their
///             flop count while amortizing per-solve overhead.
///  - kAuto:   kSlots while the per-slot dense weight planes stay near
///             cache size (n * n * slots <= 4 MB of doubles, R <= 8) or
///             the pack shares one coupling matrix (no per-slot planes at
///             all), else kBlocks.
///
/// Both layouts produce bit-identical results (every kernel tier shares
/// the per-lane accumulation-order contract), so the choice is purely a
/// throughput decision.
enum class PackLayout { kAuto, kSlots, kBlocks };

const char* pack_layout_name(PackLayout layout);
PackLayout parse_pack_layout(const std::string& name);

/// One instance of a packed solve. The model must be finalized and
/// outlive the engine; members may have DIFFERENT num_spins() — smaller
/// members are padded with inert spins up to the pack's maximum n (their
/// padded lanes stay exactly 0.0 and never touch the member's own
/// trajectory, so mixed-n packs remain bit-identical per member).
/// initial_positions (when non-empty, size num_spins()) is the member's
/// replica-0 warm start, also borrowed for the engine's lifetime.
struct PackMember {
  const IsingModel* model = nullptr;
  std::uint64_t seed = 1;
  std::span<const double> initial_positions = {};
};

/// Engine shape knobs beyond the layout (registry keys `pack-tile` and
/// `pack-share-j`).
struct PackEngineOptions {
  PackLayout layout = PackLayout::kAuto;

  /// Slot-tile width of the kSlots layout: the slot axis is carved into
  /// contiguous tiles of this many slots, each with its own contiguous
  /// x/y/force/hp/wp planes, and each tile is advanced through a whole
  /// inter-sampling block of steps before the next tile runs. 0 = auto:
  /// the measured working-set model picks the widest multiple of 8 whose
  /// per-tile coupling planes (union-edges * tile doubles) fit in ~1 MB —
  /// half this host class's L2 — so a tile's weights are loaded from
  /// memory once per block instead of once per step (measured ~2.4x on
  /// the K = 64 x 64-spin point vs the monolithic plane). Members only
  /// interact with shared engine state at sampling points and the pump
  /// ramp depends only on the step index, so any tile width is
  /// bit-identical to any other.
  std::size_t tile = 0;

  /// Shared-J fast path: every member must reference the SAME IsingModel
  /// (packed restart attempts / screening repeats of one instance). The
  /// engine then stores one weight per union edge instead of a per-slot
  /// plane and runs the broadcast-weight pack kernels — slots x less
  /// weight traffic per force pass. kSlots only (auto layout always picks
  /// kSlots when set); results stay bit-identical to non-shared packs.
  bool share_j = false;
};

/// Per-member intervention hook: called at every sampling point for each
/// live member with its state in the STANDALONE layout (element i of
/// replica r at index i * replicas + r, n = the member's own spin count) —
/// the same planes an SbBatchPlaneHook sees, plus the member index. In the
/// kBlocks layout the spans alias engine storage (zero copy); in kSlots
/// the engine gathers into a scratch plane before the call and scatters
/// mutations back, so hooks written against BsbBatchEngine (the Theorem-3
/// reset) work unchanged and see bit-identical values either way.
using PackPlaneHook = std::function<void(
    std::size_t member, std::span<double> x, std::span<double> y,
    std::size_t replicas)>;

/// Multi-instance packed bSB: K independent Ising instances advanced in
/// lockstep so one force pass fills K x R replica planes (DESIGN.md §4.7).
/// Per-member state is fully independent — per-member dynamic-stop
/// variance windows, per-member incremental energy tracking and best
/// selection, per-member early retirement — and every member's trajectory
/// is bit-identical to the same instance solved alone through
/// BsbBatchEngine with SbParams.seed = member.seed:
///
///  - replica r of member m seeds Rng(member.seed + r * 0x9e3779b9) with
///    the standalone draw order (x from initial_positions, then the
///    momenta sweep over the member's own n),
///  - c0 is derived per member from its own coupling RMS and spin count
///    when params.c0 <= 0,
///  - the Euler update uses the standalone expression tree per lane (the
///    pump ramp reads the shared step counter, which equals the member's
///    own step count because all members start at step 0),
///  - members of a mixed-n pack are padded to the pack maximum with inert
///    spins: padded rows have zero bias and coupling, so their positions
///    and momenta stay exactly 0.0 and contribute only +-0.0 addends that
///    cannot perturb any h-seeded accumulator,
///  - sampling, the flip telescope, the best-energy slack filter, and the
///    variance-stop/deadline ordering replicate BsbBatchEngine::run()
///    per member.
///
/// A member whose variance window closes (or whose context deadline has
/// expired — retirement points double as the deadline checks for tiny
/// solves) is retired immediately: in kSlots its slot is swap-compacted
/// out of the active prefix (across tiles when needed) so the force
/// kernels touch only live instances; in kBlocks its row range is simply
/// skipped. The engine run ends when every member has retired or the
/// shared pump ramp completes.
///
/// The shared SbParams supplies everything except seed/initial_positions,
/// which come from each PackMember (SbParams.seed and
/// SbParams.initial_positions are ignored). One intentional difference
/// from BsbBatchEngine: the packed run never takes the budget-aware
/// iteration rescale (it would couple members through the shared ramp),
/// so under a positive RunContext time budget a packed solve may iterate
/// where a standalone one rescaled. Deadline-less contexts — and the
/// parity tests — are unaffected.
///
/// The engine does not shard force rows over the pool: members are tiny by
/// design, and callers (PackedCoreCopSolver) parallelize across packs
/// instead.
class BsbPackEngine {
 public:
  BsbPackEngine(std::span<const PackMember> members, const SbParams& params,
                std::size_t replicas, PackLayout layout = PackLayout::kAuto);
  BsbPackEngine(std::span<const PackMember> members, const SbParams& params,
                std::size_t replicas, const PackEngineOptions& options);

  /// Attaches an execution context (must outlive the engine; nullptr
  /// detaches): deadline checks at retirement points, ising/pack/*
  /// telemetry, per-member trace spans.
  void set_context(const RunContext* ctx) { ctx_ = ctx; }

  std::size_t num_members() const { return members_.size(); }
  /// Maximum spin count over the members (the padded pack width).
  std::size_t num_spins() const { return n_; }
  /// Spin count of one member (its own model's, without padding).
  std::size_t member_spins(std::size_t m) const { return nspins_[m]; }
  std::size_t replicas() const { return R_; }
  std::size_t steps_done() const { return step_; }

  /// Resolved layout (never kAuto).
  PackLayout layout() const { return layout_; }

  /// Resolved slot-tile width (kSlots; equals the slot capacity when
  /// tiling is moot, e.g. under shared-J or small packs).
  std::size_t tile() const { return tile_; }

  /// True when the shared-J fast path is active.
  bool shared_j() const { return share_j_; }

  /// Resolved force-kernel name: "pack-scalar|pack-avx2|pack-avx512"
  /// ("...-sharedj" under shared-J) in kSlots, the per-instance CSR
  /// kernel name in kBlocks.
  const char* kernel_name() const { return kernel_name_; }

  /// One Euler step for every replica of every live member.
  void step();

  /// Force evaluation alone (fills the internal force plane from the
  /// current positions); exposed for the micro-benchmarks.
  void compute_forces();

  /// Full packed solve. Returns one IsingSolveResult per member, in
  /// member order; `iterations` counts Euler steps of one replica of that
  /// member (callers scale by replicas(), as with BsbBatchEngine). At
  /// each sampling point `plane_hook` (if any) runs once per live member
  /// before that member's energy sampling.
  std::vector<IsingSolveResult> run(const PackPlaneHook& plane_hook = nullptr);

 private:
  // kSlots tile-major plane offsets for global slot s (tile s / tile_,
  // in-tile index s % tile_). Group g of the state planes is (i * R + r).
  std::size_t xpos(std::size_t g, std::size_t s) const {
    return (s / tile_) * xstride_ + g * tile_ + s % tile_;
  }
  std::size_t hpos(std::size_t i, std::size_t s) const {
    return (s / tile_) * hstride_ + i * tile_ + s % tile_;
  }
  std::size_t wpos(std::size_t k, std::size_t s) const {
    return (s / tile_) * wstride_ + k * tile_ + s % tile_;
  }

  void advance(std::size_t steps);
  double member_x(std::size_t m, std::size_t lane) const;
  void gather_member(std::size_t m, std::vector<double>& x_out,
                     std::vector<double>& y_out) const;
  void scatter_member(std::size_t m, const std::vector<double>& x_in,
                      const std::vector<double>& y_in);
  void flip(std::size_t m, std::size_t i, std::size_t r, std::int8_t new_sign);
  void sample(std::size_t m);
  double exact_energy(std::size_t m, std::size_t r);
  void copy_member_spins(std::size_t m, std::size_t r,
                         std::vector<std::int8_t>& out) const;
  double consider_all(std::size_t m, IsingSolveResult& result);
  void retire_slot(std::size_t m);

  std::vector<PackMember> members_;
  SbParams params_;
  const RunContext* ctx_ = nullptr;
  PackLayout layout_;
  bool share_j_ = false;
  std::size_t n_;                    // max member spin count (pack width)
  std::vector<std::size_t> nspins_;  // per member
  std::size_t R_;
  std::size_t S_;       // slot capacity == num_members()
  std::size_t active_;  // live members
  std::size_t step_ = 0;
  const char* kernel_name_ = "pack-scalar";

  std::vector<double> c0_;  // per member

  // kSlots planes, tile-major: `tiles_` tiles of `tile_` slots each, every
  // tile's planes contiguous (x/y/force: n * R * tile doubles; hp:
  // n * tile; wp: uedges * tile). A strided tile slice of one monolithic
  // plane reads only part of each cache line, so tiles are first-class
  // contiguous plane groups instead. Weights cover only the UNION
  // sparsity pattern of the members (urow_start_/ucols_, ascending per
  // row): wp_[wpos(e, s)] is slot s's weight on union edge e, 0.0 where
  // that slot lacks the edge. DALTA packs share one template pattern, so
  // the union is ~the per-member edge count, not n * n.
  std::size_t tile_ = 1;
  std::size_t tiles_ = 1;
  std::size_t uedges_ = 0;   // union directed edge count
  std::size_t xstride_ = 0;  // n * R * tile
  std::size_t hstride_ = 0;  // n * tile
  std::size_t wstride_ = 0;  // uedges * tile
  AlignedVector<std::uint32_t> urow_start_;  // n + 1 union row offsets
  AlignedVector<std::uint32_t> ucols_;       // uedges ascending columns
  AlignedVector<double> hp_;  // tiles * hstride
  AlignedVector<double> wp_;  // tiles * wstride (empty under shared-J)
  AlignedVector<double> wj_;  // uedges shared weights (shared-J only)
  std::vector<double> c0_slot_;          // per slot, compacted with the state
  std::vector<std::size_t> slot_of_member_;
  std::vector<std::size_t> member_of_slot_;
  kernels::SelectedPackForceKernel pack_kernel_;
  kernels::PackForceRowsFn pack_fn_ = nullptr;

  // kBlocks planes: composite block-diagonal CSR in the standard layout,
  // member m at rows/cols [row_base_[m], row_base_[m + 1]).
  std::vector<std::size_t> row_base_;   // S + 1 spin-count prefix
  std::vector<std::size_t> row_start_;  // row_base_[S] + 1
  AlignedVector<std::uint32_t> cols_;
  AlignedVector<double> weights_;
  AlignedVector<double> h_;
  std::vector<std::uint8_t> block_active_;  // per member
  kernels::SelectedForceKernel block_kernel_;
  kernels::ForceRowsFn force_fn_ = nullptr;
  kernels::ForcePlanes planes_;

  // State planes (kSlots: tile-major slot-minor, tiles * xstride doubles;
  // kBlocks: member-major standalone layout, row_base_[S] * R doubles).
  AlignedVector<double> x_;
  AlignedVector<double> y_;
  AlignedVector<double> force_;

  // Per-member incremental-energy tracking, member-major standalone
  // layout padded to the pack width: spins_[m * n_ * R + i * R + r].
  AlignedVector<std::int8_t> spins_;
  std::vector<double> energies_;      // M * R
  std::vector<std::uint8_t> dirty_;   // M * R
  std::vector<std::int8_t> scratch_spins_;  // member n
  std::vector<double> scratch_x_;     // n * R hook gather plane (kSlots)
  std::vector<double> scratch_y_;
};

}  // namespace adsd
