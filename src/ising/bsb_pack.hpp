#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ising/bsb.hpp"
#include "ising/bsb_batch.hpp"
#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "support/aligned.hpp"

namespace adsd {

class RunContext;

/// How BsbPackEngine lays out the packed instances (DESIGN.md §4.7).
///
///  - kSlots:  slot-minor SoA — oscillator i of replica r of the instance
///             in slot s at x[(i * R + r) * S + s] — with a per-slot
///             block-diagonal dense weight plane, advanced by the
///             dedicated pack force kernels that vectorize ACROSS
///             INSTANCES. This is the fast path for small replica counts
///             (the DALTA hot path runs R = 1, where the per-instance
///             kernels degenerate to scalar lanes); the dense plane costs
///             ~2x the CSR flops, which the full-width SIMD pays back
///             many times over at R <= 2.
///  - kBlocks: one composite block-diagonal CSR — instance s occupies
///             rows [s*n, (s+1)*n), columns offset by s*n — in the
///             standard replica-contiguous layout, advanced by the
///             existing per-instance force kernels one active block's row
///             range at a time. At R > 2 those kernels already fill the
///             vector width across replicas, so the composite CSR keeps
///             their flop count while amortizing per-solve overhead.
///  - kAuto:   kSlots while the per-slot dense weight planes stay near
///             cache size (n * n * slots <= 4 MB of doubles, R <= 8),
///             else kBlocks.
///
/// Both layouts produce bit-identical results (every kernel tier shares
/// the per-lane accumulation-order contract), so the choice is purely a
/// throughput decision.
enum class PackLayout { kAuto, kSlots, kBlocks };

const char* pack_layout_name(PackLayout layout);
PackLayout parse_pack_layout(const std::string& name);

/// One instance of a packed solve. The model must be finalized, have the
/// same num_spins() as every other member, and outlive the engine;
/// initial_positions (when non-empty, size n) is the member's replica-0
/// warm start, also borrowed for the engine's lifetime.
struct PackMember {
  const IsingModel* model = nullptr;
  std::uint64_t seed = 1;
  std::span<const double> initial_positions = {};
};

/// Per-member intervention hook: called at every sampling point for each
/// live member with its state in the STANDALONE layout (element i of
/// replica r at index i * replicas + r) — the same planes an
/// SbBatchPlaneHook sees, plus the member index. In the kBlocks layout the
/// spans alias engine storage (zero copy); in kSlots the engine gathers
/// into a scratch plane before the call and scatters mutations back, so
/// hooks written against BsbBatchEngine (the Theorem-3 reset) work
/// unchanged and see bit-identical values either way.
using PackPlaneHook = std::function<void(
    std::size_t member, std::span<double> x, std::span<double> y,
    std::size_t replicas)>;

/// Multi-instance packed bSB: K independent same-n Ising instances
/// advanced in lockstep so one force pass fills K x R replica planes
/// (DESIGN.md §4.7). Per-member state is fully independent — per-member
/// dynamic-stop variance windows, per-member incremental energy tracking
/// and best selection, per-member early retirement — and every member's
/// trajectory is bit-identical to the same instance solved alone through
/// BsbBatchEngine with SbParams.seed = member.seed:
///
///  - replica r of member m seeds Rng(member.seed + r * 0x9e3779b9) with
///    the standalone draw order (x from initial_positions, then the
///    momenta sweep),
///  - c0 is derived per member from its own coupling RMS when
///    params.c0 <= 0,
///  - the Euler update uses the standalone expression tree per lane (the
///    pump ramp reads the shared step counter, which equals the member's
///    own step count because all members start at step 0),
///  - sampling, the flip telescope, the best-energy slack filter, and the
///    variance-stop/deadline ordering replicate BsbBatchEngine::run()
///    per member.
///
/// A member whose variance window closes (or whose context deadline has
/// expired — retirement points double as the deadline checks for tiny
/// solves) is retired immediately: in kSlots its slot is swap-compacted
/// out of the active prefix so the force kernels touch only live
/// instances; in kBlocks its row range is simply skipped. The engine run
/// ends when every member has retired or the shared pump ramp completes.
///
/// The shared SbParams supplies everything except seed/initial_positions,
/// which come from each PackMember (SbParams.seed and
/// SbParams.initial_positions are ignored). One intentional difference
/// from BsbBatchEngine: the packed run never takes the budget-aware
/// iteration rescale (it would couple members through the shared ramp),
/// so under a positive RunContext time budget a packed solve may iterate
/// where a standalone one rescaled. Deadline-less contexts — and the
/// parity tests — are unaffected.
///
/// The engine does not shard force rows over the pool: members are tiny by
/// design, and callers (PackedCoreCopSolver) parallelize across packs
/// instead.
class BsbPackEngine {
 public:
  BsbPackEngine(std::span<const PackMember> members, const SbParams& params,
                std::size_t replicas, PackLayout layout = PackLayout::kAuto);

  /// Attaches an execution context (must outlive the engine; nullptr
  /// detaches): deadline checks at retirement points, ising/pack/*
  /// telemetry, per-member trace spans.
  void set_context(const RunContext* ctx) { ctx_ = ctx; }

  std::size_t num_members() const { return members_.size(); }
  std::size_t num_spins() const { return n_; }
  std::size_t replicas() const { return R_; }
  std::size_t steps_done() const { return step_; }

  /// Resolved layout (never kAuto).
  PackLayout layout() const { return layout_; }

  /// Resolved force-kernel name: "pack-scalar|pack-avx2|pack-avx512" in
  /// kSlots, the per-instance CSR kernel name in kBlocks.
  const char* kernel_name() const { return kernel_name_; }

  /// One Euler step for every replica of every live member.
  void step();

  /// Force evaluation alone (fills the internal force plane from the
  /// current positions); exposed for the micro-benchmarks.
  void compute_forces();

  /// Full packed solve. Returns one IsingSolveResult per member, in
  /// member order; `iterations` counts Euler steps of one replica of that
  /// member (callers scale by replicas(), as with BsbBatchEngine). At
  /// each sampling point `plane_hook` (if any) runs once per live member
  /// before that member's energy sampling.
  std::vector<IsingSolveResult> run(const PackPlaneHook& plane_hook = nullptr);

 private:
  double member_x(std::size_t m, std::size_t lane) const;
  void gather_member(std::size_t m, std::vector<double>& x_out,
                     std::vector<double>& y_out) const;
  void scatter_member(std::size_t m, const std::vector<double>& x_in,
                      const std::vector<double>& y_in);
  void flip(std::size_t m, std::size_t i, std::size_t r, std::int8_t new_sign);
  void sample(std::size_t m);
  double exact_energy(std::size_t m, std::size_t r);
  void copy_member_spins(std::size_t m, std::size_t r,
                         std::vector<std::int8_t>& out) const;
  double consider_all(std::size_t m, IsingSolveResult& result);
  void retire_slot(std::size_t m);

  std::vector<PackMember> members_;
  SbParams params_;
  const RunContext* ctx_ = nullptr;
  PackLayout layout_;
  std::size_t n_;
  std::size_t R_;
  std::size_t S_;       // slot capacity == num_members()
  std::size_t active_;  // live members
  std::size_t step_ = 0;
  const char* kernel_name_ = "pack-scalar";

  std::vector<double> c0_;  // per member

  // kSlots planes: slot-minor state + per-slot dense weight/bias planes.
  AlignedVector<double> hp_;  // n * S
  AlignedVector<double> wp_;  // n * n * S
  std::vector<double> c0_slot_;          // per slot, compacted with the state
  std::vector<std::size_t> slot_of_member_;
  std::vector<std::size_t> member_of_slot_;
  kernels::SelectedPackForceKernel pack_kernel_;
  kernels::PackForceRowsFn pack_fn_ = nullptr;
  kernels::PackForcePlanes pack_planes_;

  // kBlocks planes: composite block-diagonal CSR in the standard layout.
  std::vector<std::size_t> row_start_;  // S * n + 1
  AlignedVector<std::uint32_t> cols_;
  AlignedVector<double> weights_;
  AlignedVector<double> h_;
  std::vector<std::uint8_t> block_active_;  // per member
  kernels::SelectedForceKernel block_kernel_;
  kernels::ForceRowsFn force_fn_ = nullptr;
  kernels::ForcePlanes planes_;

  // State planes: n * R * S doubles (kSlots: slot-minor; kBlocks: member-
  // major standalone layout).
  AlignedVector<double> x_;
  AlignedVector<double> y_;
  AlignedVector<double> force_;

  // Per-member incremental-energy tracking, member-major standalone
  // layout: spins_[m * n * R + i * R + r].
  AlignedVector<std::int8_t> spins_;
  std::vector<double> energies_;      // M * R
  std::vector<std::uint8_t> dirty_;   // M * R
  std::vector<std::int8_t> scratch_spins_;  // n
  std::vector<double> scratch_x_;     // n * R hook gather plane (kSlots)
  std::vector<double> scratch_y_;
};

}  // namespace adsd
