#include "ising/qubo.hpp"

#include <stdexcept>

namespace adsd {

Qubo::Qubo(std::size_t num_vars) : n_(num_vars), linear_(num_vars, 0.0) {
  if (num_vars == 0) {
    throw std::invalid_argument("Qubo: need at least one variable");
  }
}

void Qubo::add_linear(std::size_t i, double c) {
  linear_.at(i) += c;
}

void Qubo::add_quadratic(std::size_t i, std::size_t j, double c) {
  if (i >= n_ || j >= n_) {
    throw std::out_of_range("Qubo::add_quadratic: variable out of range");
  }
  if (i == j) {
    // x^2 = x for binary variables; fold into the linear term.
    linear_[i] += c;
    return;
  }
  if (c == 0.0) {
    return;
  }
  quads_.push_back(
      {static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(j), c});
}

double Qubo::value(std::span<const std::uint8_t> x) const {
  if (x.size() != n_) {
    throw std::invalid_argument("Qubo::value: assignment size mismatch");
  }
  double v = constant_;
  for (std::size_t i = 0; i < n_; ++i) {
    if (x[i]) {
      v += linear_[i];
    }
  }
  for (const auto& q : quads_) {
    if (x[q.i] && x[q.j]) {
      v += q.value;
    }
  }
  return v;
}

IsingModel Qubo::to_ising() const {
  // With x_i = (sigma_i + 1)/2:
  //   q_i x_i           = q_i/2 sigma_i + q_i/2
  //   Q_ij x_i x_j      = Q_ij/4 (sigma_i sigma_j + sigma_i + sigma_j + 1).
  // Matching E = -sum h sigma - sum_{i<j} J sigma sigma + const gives
  //   h_i = -(q_i/2 + sum_j Q_ij/4),  J_ij = -Q_ij/4.
  IsingModel m(n_);
  double constant = constant_;
  for (std::size_t i = 0; i < n_; ++i) {
    m.add_bias(i, -linear_[i] / 2.0);
    constant += linear_[i] / 2.0;
  }
  for (const auto& q : quads_) {
    m.add_coupling(q.i, q.j, -q.value / 4.0);
    m.add_bias(q.i, -q.value / 4.0);
    m.add_bias(q.j, -q.value / 4.0);
    constant += q.value / 4.0;
  }
  m.set_constant(constant);
  m.finalize();
  return m;
}

std::vector<std::uint8_t> Qubo::spins_to_binary(
    std::span<const std::int8_t> spins) {
  std::vector<std::uint8_t> x(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    x[i] = spins[i] > 0 ? 1 : 0;
  }
  return x;
}

}  // namespace adsd
