#include "ising/doch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "support/rng.hpp"
#include "support/run_context.hpp"
#include "support/telemetry.hpp"

namespace adsd {

DochEngine::DochEngine(const IsingModel& model, const DochParams& params,
                       std::size_t replicas)
    : EnsembleEngineBase(model, replicas, params.kernel, /*discrete=*/false,
                         "DochEngine"),
      params_(params) {
  if (params.max_iterations == 0 || params.momentum < 0.0 ||
      params.init_amp < 0.0) {
    throw std::invalid_argument("DochEngine: bad parameters");
  }
  if (!params.initial_positions.empty() &&
      params.initial_positions.size() != n_) {
    throw std::invalid_argument("DochEngine: initial_positions size");
  }

  rho_ = params.rho;
  if (rho_ <= 0.0) {
    // Auto rule: the max row 1-norm of |J| upper-bounds the spectral
    // radius, which makes the convex split valid for any instance.
    for (std::size_t i = 0; i < n_; ++i) {
      double row = 0.0;
      for (std::size_t e = csr_.row_start[i]; e < csr_.row_start[i + 1]; ++e) {
        row += std::fabs(csr_.weights[e]);
      }
      rho_ = std::max(rho_, row);
    }
    if (rho_ <= 0.0) {
      rho_ = 1.0;
    }
  }
  inv_rho_ = 1.0 / rho_;

  // Deterministic dynamics: the ensemble explores through diverse random
  // starting points, one uniform kick stream per replica.
  for (std::size_t r = 0; r < R_; ++r) {
    Rng rng(params_.seed + 0x9e3779b9u * r);
    for (std::size_t i = 0; i < n_; ++i) {
      const double base = params_.initial_positions.empty()
                              ? 0.0
                              : params_.initial_positions[i];
      x_[i * R_ + r] = std::clamp(
          base + rng.next_double(-params_.init_amp, params_.init_amp), -1.0,
          1.0);
    }
  }

  z_.assign(n_ * R_, 0.0);
  set_force_input(z_.data());

  init_tracker();
}

void DochEngine::advance(std::size_t /*iter*/) {
  const double beta = params_.momentum;
  const std::size_t total_lanes = n_ * R_;
  // y holds u = x - x_prev from the previous iteration (0 at start and
  // after a hook reset), so the lookahead is one fused pass.
  for (std::size_t k = 0; k < total_lanes; ++k) {
    z_[k] = x_[k] + beta * y_[k];
  }

  compute_forces();

  const double inv_rho = inv_rho_;
  for (std::size_t k = 0; k < total_lanes; ++k) {
    const double zk = z_[k] + inv_rho * force_[k];
    const double lo = zk < -1.0 ? -1.0 : zk;
    const double xn = lo > 1.0 ? 1.0 : lo;
    y_[k] = xn - x_[k];
    x_[k] = xn;
  }
}

std::string DochEngine::curve_name() const {
  return "ising/doch/n" + std::to_string(n_) + "_R" + std::to_string(R_);
}

std::size_t DochEngine::sample_interval() const {
  return params_.stop.sample_interval > 0 ? params_.stop.sample_interval : 10;
}

void DochEngine::record_totals(TelemetrySink& sink, std::size_t iterations,
                               std::size_t energy_samples) const {
  sink.add("ising/doch/steps", iterations);
  sink.add("ising/doch/replica_steps", iterations * R_);
  sink.add("ising/doch/energy_samples", energy_samples);
}

IsingSolveResult solve_doch(const IsingModel& model, const DochParams& params,
                            std::size_t replicas, const SbBatchHook& hook,
                            const SbBatchPlaneHook& plane_hook,
                            const RunContext* ctx) {
  DochEngine engine(model, params, replicas);
  engine.set_context(ctx);
  IsingSolveResult result = engine.run(hook, plane_hook);
  result.iterations *= replicas;
  return result;
}

}  // namespace adsd
