#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ising/engine.hpp"
#include "ising/model.hpp"
#include "ising/stop.hpp"
#include "support/rng.hpp"

namespace adsd {

/// Parameters for the simulated-annealing baseline solver [Kirkpatrick].
///
/// SA updates connected spins sequentially, which is the scalability
/// contrast the paper draws against SB's parallel updates; it is included
/// both as a solver baseline and for the BA-style decomposition baseline.
struct SaParams {
  std::size_t sweeps = 500;

  /// Inverse temperature schedule: beta ramps geometrically from beta_start
  /// to beta_end across the sweeps.
  double beta_start = 0.1;
  double beta_end = 10.0;

  std::uint64_t seed = 1;

  /// Optional dynamic stop on the per-sweep energy (same criterion as SB).
  DynamicStopParams stop{};
};

class RunContext;

/// Metropolis simulated annealing rehosted on the IsingEngine contract:
/// advance() is one sequential Metropolis sweep (beta multiplied into the
/// geometric schedule before every sweep but the first, which reproduces
/// the historical end-of-sweep update bit-for-bit), observe() folds the
/// current assignment into the incumbent and hands the *current* energy to
/// the dynamic-stop window, and the shared driver supplies deadline
/// checks, sampling bookkeeping, and "ising/sa/*" emissions.
class SaEngine final : public IsingEngine {
 public:
  /// The model reference must outlive the engine.
  SaEngine(const IsingModel& model, const SaParams& params);

  std::size_t num_spins() const { return n_; }

  const char* telemetry_prefix() const override { return "ising/sa"; }
  const char* trace_prefix() const override { return "ising/sa"; }
  std::string curve_name() const override;
  std::size_t max_iterations() const override { return params_.sweeps; }
  std::size_t sample_interval() const override { return 1; }
  const DynamicStopParams& stop_params() const override { return params_.stop; }
  void begin(IsingSolveResult& result) override;
  void advance(std::size_t iter) override;
  double observe(IsingSolveResult& result) override;
  void record_totals(TelemetrySink& sink, std::size_t iterations,
                     std::size_t energy_samples) const override;

 private:
  const IsingModel& model_;
  SaParams params_;
  std::size_t n_;
  Rng rng_;
  std::vector<std::int8_t> spins_;
  double energy_;
  double beta_;
  double ratio_;
};

/// Metropolis simulated annealing on a finalized model. Returns the best
/// assignment visited. `iterations` counts executed sweeps. A non-null
/// `ctx` enables per-sweep deadline checks and telemetry counters.
IsingSolveResult solve_sa(const IsingModel& model, const SaParams& params,
                          const RunContext* ctx = nullptr);

}  // namespace adsd
