#pragma once

#include <cstdint>

#include "ising/model.hpp"
#include "ising/stop.hpp"

namespace adsd {

/// Parameters for the simulated-annealing baseline solver [Kirkpatrick].
///
/// SA updates connected spins sequentially, which is the scalability
/// contrast the paper draws against SB's parallel updates; it is included
/// both as a solver baseline and for the BA-style decomposition baseline.
struct SaParams {
  std::size_t sweeps = 500;

  /// Inverse temperature schedule: beta ramps geometrically from beta_start
  /// to beta_end across the sweeps.
  double beta_start = 0.1;
  double beta_end = 10.0;

  std::uint64_t seed = 1;

  /// Optional dynamic stop on the per-sweep energy (same criterion as SB).
  DynamicStopParams stop{};
};

class RunContext;

/// Metropolis simulated annealing on a finalized model. Returns the best
/// assignment visited. `iterations` counts executed sweeps. A non-null
/// `ctx` enables per-sweep deadline checks and telemetry counters.
IsingSolveResult solve_sa(const IsingModel& model, const SaParams& params,
                          const RunContext* ctx = nullptr);

}  // namespace adsd
