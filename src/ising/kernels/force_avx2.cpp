// Hand-vectorized AVX2 force kernels. Compiled with -mavx2 -mfma in its
// own translation unit; only reached through the dispatcher after a
// runtime CPUID check, so the rest of the binary stays baseline-ISA.
//
// Vectorization runs across the replica-contiguous lanes: one ymm holds 4
// consecutive replicas of the same oscillator, the coupling weight is
// broadcast, and lane blocks of 8 (two accumulator registers) / 4 / 1 are
// peeled off exactly like the portable kernel's W = 8/4/1 register files.
// Each lane's per-edge accumulation order is therefore identical to the
// scalar reference -- and the arithmetic is mul-then-add (never FMA; the
// build also pins -ffp-contract=off), so results are bit-exact against
// every other kernel tier.

#include "ising/kernels/force_kernels_detail.hpp"

#ifdef __AVX2__

#include <immintrin.h>

namespace adsd::kernels::detail {

namespace {

/// w * x (continuous) or w * sign(x) (discrete) for one 4-lane vector.
/// sign(x) is the branchless select the scalar kernels use: >= 0 maps to
/// +1 (including -0.0, which IEEE compares equal to +0.0), else -1.
template <bool Discrete>
inline __m256d edge_term(__m256d w, __m256d xj) {
  if constexpr (Discrete) {
    const __m256d ge = _mm256_cmp_pd(xj, _mm256_setzero_pd(), _CMP_GE_OQ);
    xj = _mm256_blendv_pd(_mm256_set1_pd(-1.0), _mm256_set1_pd(1.0), ge);
  }
  return _mm256_mul_pd(w, xj);
}

template <bool Discrete>
inline double edge_term_scalar(double w, double xj) {
  if constexpr (Discrete) {
    return w * (xj >= 0.0 ? 1.0 : -1.0);
  } else {
    return w * xj;
  }
}

/// 2-lane variant for the pack kernel's slot tail (S mod 4 in {2, 3}):
/// same per-lane arithmetic, so the bit-exactness contract holds at any
/// active-slot count.
template <bool Discrete>
inline __m128d edge_term_128(__m128d w, __m128d xj) {
  if constexpr (Discrete) {
    const __m128d ge = _mm_cmp_pd(xj, _mm_setzero_pd(), _CMP_GE_OQ);
    xj = _mm_blendv_pd(_mm_set1_pd(-1.0), _mm_set1_pd(1.0), ge);
  }
  return _mm_mul_pd(w, xj);
}

template <bool Discrete>
void csr_force(const ForcePlanes& p, std::size_t row_begin,
               std::size_t row_end) {
  const std::size_t R = p.replicas;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t e_begin = p.row_start[i];
    const std::size_t e_end = p.row_start[i + 1];
    const double hi = p.h[i];
    double* fi = p.force + i * R;
    std::size_t lane = 0;
    for (; lane + 8 <= R; lane += 8) {
      __m256d acc0 = _mm256_set1_pd(hi);
      __m256d acc1 = acc0;
      for (std::size_t e = e_begin; e < e_end; ++e) {
        const __m256d w = _mm256_set1_pd(p.weights[e]);
        const double* xj =
            p.x + static_cast<std::size_t>(p.cols[e]) * R + lane;
        acc0 = _mm256_add_pd(acc0,
                             edge_term<Discrete>(w, _mm256_loadu_pd(xj)));
        acc1 = _mm256_add_pd(
            acc1, edge_term<Discrete>(w, _mm256_loadu_pd(xj + 4)));
      }
      _mm256_storeu_pd(fi + lane, acc0);
      _mm256_storeu_pd(fi + lane + 4, acc1);
    }
    if (lane + 4 <= R) {
      __m256d acc = _mm256_set1_pd(hi);
      for (std::size_t e = e_begin; e < e_end; ++e) {
        const __m256d w = _mm256_set1_pd(p.weights[e]);
        const double* xj =
            p.x + static_cast<std::size_t>(p.cols[e]) * R + lane;
        acc =
            _mm256_add_pd(acc, edge_term<Discrete>(w, _mm256_loadu_pd(xj)));
      }
      _mm256_storeu_pd(fi + lane, acc);
      lane += 4;
    }
    for (; lane < R; ++lane) {
      double acc = hi;
      for (std::size_t e = e_begin; e < e_end; ++e) {
        acc += edge_term_scalar<Discrete>(
            p.weights[e], p.x[static_cast<std::size_t>(p.cols[e]) * R + lane]);
      }
      fi[lane] = acc;
    }
  }
}

template <bool Discrete>
void dense_force(const ForcePlanes& p, std::size_t row_begin,
                 std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t n = p.n;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* ji = p.dense + i * p.dense_stride;
    const double hi = p.h[i];
    double* fi = p.force + i * R;
    std::size_t lane = 0;
    for (; lane + 8 <= R; lane += 8) {
      __m256d acc0 = _mm256_set1_pd(hi);
      __m256d acc1 = acc0;
      for (std::size_t j = 0; j < n; ++j) {
        const __m256d w = _mm256_set1_pd(ji[j]);
        const double* xj = p.x + j * R + lane;
        acc0 = _mm256_add_pd(acc0,
                             edge_term<Discrete>(w, _mm256_loadu_pd(xj)));
        acc1 = _mm256_add_pd(
            acc1, edge_term<Discrete>(w, _mm256_loadu_pd(xj + 4)));
      }
      _mm256_storeu_pd(fi + lane, acc0);
      _mm256_storeu_pd(fi + lane + 4, acc1);
    }
    if (lane + 4 <= R) {
      __m256d acc = _mm256_set1_pd(hi);
      for (std::size_t j = 0; j < n; ++j) {
        const __m256d w = _mm256_set1_pd(ji[j]);
        const double* xj = p.x + j * R + lane;
        acc =
            _mm256_add_pd(acc, edge_term<Discrete>(w, _mm256_loadu_pd(xj)));
      }
      _mm256_storeu_pd(fi + lane, acc);
      lane += 4;
    }
    for (; lane < R; ++lane) {
      double acc = hi;
      for (std::size_t j = 0; j < n; ++j) {
        acc += edge_term_scalar<Discrete>(ji[j], p.x[j * R + lane]);
      }
      fi[lane] = acc;
    }
  }
}

// Slot-packed kernel (DESIGN.md §4.7): the vector axis is the slot axis,
// so both the weight and the position are vector loads (each slot solves a
// different instance -- no broadcastable scalar weight). The column loop
// runs over the union sparsity pattern -- columns that are structural
// zeros in every slot are skipped; the dropped +-0.0 addends keep each
// slot's h-seeded accumulation bit-identical. Slot blocks of 8 (two
// accumulators) / 4 / 2 / 1 are peeled over the active prefix exactly
// like the replica peel above.
template <bool Discrete>
void pack_force(const PackForcePlanes& p, std::size_t row_begin,
                std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t S = p.slots;
  const std::size_t A = p.active;
  const std::uint32_t* cs = p.ucols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* hi = p.hp + i * S;
    const std::uint32_t e0 = p.urow_start[i];
    const std::uint32_t e1 = p.urow_start[i + 1];
    for (std::size_t r = 0; r < R; ++r) {
      const double* xr = p.x + r * S;
      double* fi = p.force + (i * R + r) * S;
      std::size_t s = 0;
      for (; s + 8 <= A; s += 8) {
        __m256d acc0 = _mm256_loadu_pd(hi + s);
        __m256d acc1 = _mm256_loadu_pd(hi + s + 4);
        for (std::uint32_t e = e0; e < e1; ++e) {
          const double* we = p.wp + static_cast<std::size_t>(e) * S + s;
          const double* xj = xr + static_cast<std::size_t>(cs[e]) * R * S + s;
          acc0 = _mm256_add_pd(
              acc0, edge_term<Discrete>(_mm256_loadu_pd(we),
                                        _mm256_loadu_pd(xj)));
          acc1 = _mm256_add_pd(
              acc1, edge_term<Discrete>(_mm256_loadu_pd(we + 4),
                                        _mm256_loadu_pd(xj + 4)));
        }
        _mm256_storeu_pd(fi + s, acc0);
        _mm256_storeu_pd(fi + s + 4, acc1);
      }
      if (s + 4 <= A) {
        __m256d acc = _mm256_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm256_add_pd(
              acc,
              edge_term<Discrete>(
                  _mm256_loadu_pd(p.wp + static_cast<std::size_t>(e) * S + s),
                  _mm256_loadu_pd(
                      xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm256_storeu_pd(fi + s, acc);
        s += 4;
      }
      if (s + 2 <= A) {
        __m128d acc = _mm_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm_add_pd(
              acc,
              edge_term_128<Discrete>(
                  _mm_loadu_pd(p.wp + static_cast<std::size_t>(e) * S + s),
                  _mm_loadu_pd(
                      xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm_storeu_pd(fi + s, acc);
        s += 2;
      }
      for (; s < A; ++s) {
        double acc = hi[s];
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc += edge_term_scalar<Discrete>(
              p.wp[static_cast<std::size_t>(e) * S + s],
              xr[static_cast<std::size_t>(cs[e]) * R * S + s]);
        }
        fi[s] = acc;
      }
    }
  }
}

// Shared-J pack kernel: every slot solves the same coupling matrix, so the
// weight is one broadcast per union edge (like the dense per-instance
// kernel broadcasts across replica lanes) and only the position is a
// vector load. The broadcast value equals the per-slot load the
// non-shared kernel would issue, keeping bit-exactness; the weight
// traffic drops from uedges*S to uedges doubles per force pass.
template <bool Discrete>
void pack_force_shared(const PackForcePlanes& p, std::size_t row_begin,
                       std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t S = p.slots;
  const std::size_t A = p.active;
  const std::uint32_t* cs = p.ucols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* hi = p.hp + i * S;
    const std::uint32_t e0 = p.urow_start[i];
    const std::uint32_t e1 = p.urow_start[i + 1];
    for (std::size_t r = 0; r < R; ++r) {
      const double* xr = p.x + r * S;
      double* fi = p.force + (i * R + r) * S;
      std::size_t s = 0;
      for (; s + 8 <= A; s += 8) {
        __m256d acc0 = _mm256_loadu_pd(hi + s);
        __m256d acc1 = _mm256_loadu_pd(hi + s + 4);
        for (std::uint32_t e = e0; e < e1; ++e) {
          const __m256d w = _mm256_set1_pd(p.wj[e]);
          const double* xj = xr + static_cast<std::size_t>(cs[e]) * R * S + s;
          acc0 = _mm256_add_pd(acc0,
                               edge_term<Discrete>(w, _mm256_loadu_pd(xj)));
          acc1 = _mm256_add_pd(
              acc1, edge_term<Discrete>(w, _mm256_loadu_pd(xj + 4)));
        }
        _mm256_storeu_pd(fi + s, acc0);
        _mm256_storeu_pd(fi + s + 4, acc1);
      }
      if (s + 4 <= A) {
        __m256d acc = _mm256_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm256_add_pd(
              acc, edge_term<Discrete>(
                       _mm256_set1_pd(p.wj[e]),
                       _mm256_loadu_pd(
                           xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm256_storeu_pd(fi + s, acc);
        s += 4;
      }
      if (s + 2 <= A) {
        __m128d acc = _mm_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm_add_pd(
              acc, edge_term_128<Discrete>(
                       _mm_set1_pd(p.wj[e]),
                       _mm_loadu_pd(
                           xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm_storeu_pd(fi + s, acc);
        s += 2;
      }
      for (; s < A; ++s) {
        double acc = hi[s];
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc += edge_term_scalar<Discrete>(
              p.wj[e], xr[static_cast<std::size_t>(cs[e]) * R * S + s]);
        }
        fi[s] = acc;
      }
    }
  }
}

}  // namespace

void csr_force_avx2(const ForcePlanes& p, std::size_t row_begin,
                    std::size_t row_end) {
  csr_force<false>(p, row_begin, row_end);
}
void csr_force_avx2_d(const ForcePlanes& p, std::size_t row_begin,
                      std::size_t row_end) {
  csr_force<true>(p, row_begin, row_end);
}
void dense_force_avx2(const ForcePlanes& p, std::size_t row_begin,
                      std::size_t row_end) {
  dense_force<false>(p, row_begin, row_end);
}
void dense_force_avx2_d(const ForcePlanes& p, std::size_t row_begin,
                        std::size_t row_end) {
  dense_force<true>(p, row_begin, row_end);
}
void pack_force_avx2(const PackForcePlanes& p, std::size_t row_begin,
                     std::size_t row_end) {
  pack_force<false>(p, row_begin, row_end);
}
void pack_force_avx2_d(const PackForcePlanes& p, std::size_t row_begin,
                       std::size_t row_end) {
  pack_force<true>(p, row_begin, row_end);
}
void pack_force_shared_avx2(const PackForcePlanes& p, std::size_t row_begin,
                            std::size_t row_end) {
  pack_force_shared<false>(p, row_begin, row_end);
}
void pack_force_shared_avx2_d(const PackForcePlanes& p, std::size_t row_begin,
                              std::size_t row_end) {
  pack_force_shared<true>(p, row_begin, row_end);
}

}  // namespace adsd::kernels::detail

#endif  // __AVX2__
