#include "ising/kernels/force_kernels.hpp"

#include <stdexcept>

#include "ising/kernels/force_kernels_detail.hpp"

namespace adsd::kernels {

namespace {

// ----------------------------------------------------- portable tier
//
// The lane-blocked kernel the engine shipped before the explicit-SIMD
// layer existed: W is a compile-time lane-block width, so `acc` is a
// register file and the edge loop reads W consecutive replicas of x per
// coupling without touching the force plane until the row is finished.
// W = 1 degenerates to the scalar reference kernel (same accumulation
// order per lane), which is what keeps replica trajectories bit-identical
// to solve_sb_scalar(). The compiler auto-vectorizes the W-wide inner
// loops at whatever width the build targets (SSE2 on a default x86-64
// build), which makes this tier the portable fallback on any ISA.

template <int W, bool Discrete>
void csr_lanes(const ForcePlanes& p, std::size_t lane0, std::size_t row_begin,
               std::size_t row_end) {
  const std::size_t R = p.replicas;
  const double* x = p.x + lane0;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double acc[W];
    const double hi = p.h[i];
    for (int t = 0; t < W; ++t) {
      acc[t] = hi;
    }
    const std::size_t e_end = p.row_start[i + 1];
    for (std::size_t e = p.row_start[i]; e < e_end; ++e) {
      const double w = p.weights[e];
      const double* xj = x + static_cast<std::size_t>(p.cols[e]) * R;
      for (int t = 0; t < W; ++t) {
        if constexpr (Discrete) {
          acc[t] += w * (xj[t] >= 0.0 ? 1.0 : -1.0);
        } else {
          acc[t] += w * xj[t];
        }
      }
    }
    double* fi = p.force + i * R + lane0;
    for (int t = 0; t < W; ++t) {
      fi[t] = acc[t];
    }
  }
}

template <bool Discrete>
void csr_force_scalar_impl(const ForcePlanes& p, std::size_t row_begin,
                           std::size_t row_end) {
  const std::size_t R = p.replicas;
  std::size_t lane = 0;
  while (lane + 8 <= R) {
    csr_lanes<8, Discrete>(p, lane, row_begin, row_end);
    lane += 8;
  }
  if (lane + 4 <= R) {
    csr_lanes<4, Discrete>(p, lane, row_begin, row_end);
    lane += 4;
  }
  if (lane + 2 <= R) {
    csr_lanes<2, Discrete>(p, lane, row_begin, row_end);
    lane += 2;
  }
  if (lane < R) {
    csr_lanes<1, Discrete>(p, lane, row_begin, row_end);
  }
}

// Dense counterpart: the edge loop walks every column of the padded J
// plane instead of the CSR index list -- sequential weight streaming, no
// index gather. Structurally-absent entries hold exactly 0.0 and
// contribute w * x = +-0.0, which leaves every accumulator bit-identical
// to the CSR traversal (finalize() stores no explicit zero couplings, and
// a +-0.0 addend only matters against a -0.0 accumulator, which the
// h-seeded accumulation cannot produce from finite inputs).
template <int W, bool Discrete>
void dense_lanes(const ForcePlanes& p, std::size_t lane0,
                 std::size_t row_begin, std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t n = p.n;
  const double* x = p.x + lane0;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    double acc[W];
    const double hi = p.h[i];
    for (int t = 0; t < W; ++t) {
      acc[t] = hi;
    }
    const double* ji = p.dense + i * p.dense_stride;
    for (std::size_t j = 0; j < n; ++j) {
      const double w = ji[j];
      const double* xj = x + j * R;
      for (int t = 0; t < W; ++t) {
        if constexpr (Discrete) {
          acc[t] += w * (xj[t] >= 0.0 ? 1.0 : -1.0);
        } else {
          acc[t] += w * xj[t];
        }
      }
    }
    double* fi = p.force + i * R + lane0;
    for (int t = 0; t < W; ++t) {
      fi[t] = acc[t];
    }
  }
}

template <bool Discrete>
void dense_force_scalar_impl(const ForcePlanes& p, std::size_t row_begin,
                             std::size_t row_end) {
  const std::size_t R = p.replicas;
  std::size_t lane = 0;
  while (lane + 8 <= R) {
    dense_lanes<8, Discrete>(p, lane, row_begin, row_end);
    lane += 8;
  }
  if (lane + 4 <= R) {
    dense_lanes<4, Discrete>(p, lane, row_begin, row_end);
    lane += 4;
  }
  if (lane + 2 <= R) {
    dense_lanes<2, Discrete>(p, lane, row_begin, row_end);
    lane += 2;
  }
  if (lane < R) {
    dense_lanes<1, Discrete>(p, lane, row_begin, row_end);
  }
}

// ----------------------------------------------------- portable pack tier
//
// Slot-packed counterpart of dense_lanes: the lane-block walks `active`
// consecutive SLOTS (independent instances) of one (row, replica) group
// instead of consecutive replicas of one instance, and both the weight and
// the position are per-slot loads (each slot is a different J matrix, so
// there is no broadcastable scalar weight). The column loop runs over the
// UNION sparsity pattern (ucols ascending per row), not 0..n: columns that
// are structural zeros in EVERY slot are never touched. Accumulation per
// slot is hp[i*S+s], then += wp[e*S+s] * x[(ucols[e]*R+r)*S+s] for
// ascending union edges e -- the skipped columns contributed +-0.0 to the
// h-seeded sum, so every partial value is identical to the per-instance
// kernels', which is what the packed-parity tests pin down.

template <int W, bool Discrete>
void pack_lanes(const PackForcePlanes& p, std::size_t slot0,
                std::size_t row_begin, std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t S = p.slots;
  const std::uint32_t* cs = p.ucols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* hi = p.hp + i * S + slot0;
    const std::uint32_t e0 = p.urow_start[i];
    const std::uint32_t e1 = p.urow_start[i + 1];
    for (std::size_t r = 0; r < R; ++r) {
      double acc[W];
      for (int t = 0; t < W; ++t) {
        acc[t] = hi[t];
      }
      const double* xr = p.x + r * S + slot0;
      for (std::uint32_t e = e0; e < e1; ++e) {
        const double* we = p.wp + static_cast<std::size_t>(e) * S + slot0;
        const double* xj = xr + static_cast<std::size_t>(cs[e]) * R * S;
        for (int t = 0; t < W; ++t) {
          if constexpr (Discrete) {
            acc[t] += we[t] * (xj[t] >= 0.0 ? 1.0 : -1.0);
          } else {
            acc[t] += we[t] * xj[t];
          }
        }
      }
      double* fi = p.force + (i * R + r) * S + slot0;
      for (int t = 0; t < W; ++t) {
        fi[t] = acc[t];
      }
    }
  }
}

template <bool Discrete>
void pack_force_scalar_impl(const PackForcePlanes& p, std::size_t row_begin,
                            std::size_t row_end) {
  const std::size_t A = p.active;
  std::size_t s = 0;
  while (s + 8 <= A) {
    pack_lanes<8, Discrete>(p, s, row_begin, row_end);
    s += 8;
  }
  if (s + 4 <= A) {
    pack_lanes<4, Discrete>(p, s, row_begin, row_end);
    s += 4;
  }
  if (s + 2 <= A) {
    pack_lanes<2, Discrete>(p, s, row_begin, row_end);
    s += 2;
  }
  if (s < A) {
    pack_lanes<1, Discrete>(p, s, row_begin, row_end);
  }
}

void pack_force_scalar(const PackForcePlanes& p, std::size_t b, std::size_t e) {
  pack_force_scalar_impl<false>(p, b, e);
}
void pack_force_scalar_d(const PackForcePlanes& p, std::size_t b,
                         std::size_t e) {
  pack_force_scalar_impl<true>(p, b, e);
}

// Shared-J portable tier: every slot solves the same coupling matrix, so
// the weight is one scalar broadcast per union edge, wj[e] — exactly the
// value the per-slot kernel would load — and only the position is a
// per-slot vector. Surviving edges keep their ascending-j order, so
// shared-J packs stay bit-identical to standalone solves.

template <int W, bool Discrete>
void pack_shared_lanes(const PackForcePlanes& p, std::size_t slot0,
                       std::size_t row_begin, std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t S = p.slots;
  const std::uint32_t* cs = p.ucols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* hi = p.hp + i * S + slot0;
    const std::uint32_t e0 = p.urow_start[i];
    const std::uint32_t e1 = p.urow_start[i + 1];
    for (std::size_t r = 0; r < R; ++r) {
      double acc[W];
      for (int t = 0; t < W; ++t) {
        acc[t] = hi[t];
      }
      const double* xr = p.x + r * S + slot0;
      for (std::uint32_t e = e0; e < e1; ++e) {
        const double w = p.wj[e];
        const double* xj = xr + static_cast<std::size_t>(cs[e]) * R * S;
        for (int t = 0; t < W; ++t) {
          if constexpr (Discrete) {
            acc[t] += w * (xj[t] >= 0.0 ? 1.0 : -1.0);
          } else {
            acc[t] += w * xj[t];
          }
        }
      }
      double* fi = p.force + (i * R + r) * S + slot0;
      for (int t = 0; t < W; ++t) {
        fi[t] = acc[t];
      }
    }
  }
}

template <bool Discrete>
void pack_force_shared_scalar_impl(const PackForcePlanes& p,
                                   std::size_t row_begin,
                                   std::size_t row_end) {
  const std::size_t A = p.active;
  std::size_t s = 0;
  while (s + 8 <= A) {
    pack_shared_lanes<8, Discrete>(p, s, row_begin, row_end);
    s += 8;
  }
  if (s + 4 <= A) {
    pack_shared_lanes<4, Discrete>(p, s, row_begin, row_end);
    s += 4;
  }
  if (s + 2 <= A) {
    pack_shared_lanes<2, Discrete>(p, s, row_begin, row_end);
    s += 2;
  }
  if (s < A) {
    pack_shared_lanes<1, Discrete>(p, s, row_begin, row_end);
  }
}

void pack_force_shared_scalar(const PackForcePlanes& p, std::size_t b,
                              std::size_t e) {
  pack_force_shared_scalar_impl<false>(p, b, e);
}
void pack_force_shared_scalar_d(const PackForcePlanes& p, std::size_t b,
                                std::size_t e) {
  pack_force_shared_scalar_impl<true>(p, b, e);
}

void csr_force_scalar(const ForcePlanes& p, std::size_t b, std::size_t e) {
  csr_force_scalar_impl<false>(p, b, e);
}
void csr_force_scalar_d(const ForcePlanes& p, std::size_t b, std::size_t e) {
  csr_force_scalar_impl<true>(p, b, e);
}
void dense_force_scalar(const ForcePlanes& p, std::size_t b, std::size_t e) {
  dense_force_scalar_impl<false>(p, b, e);
}
void dense_force_scalar_d(const ForcePlanes& p, std::size_t b, std::size_t e) {
  dense_force_scalar_impl<true>(p, b, e);
}

// ----------------------------------------------------- dispatch tables

struct Tier {
  ForceRowsFn csr_c;
  ForceRowsFn csr_d;
  ForceRowsFn dense_c;
  ForceRowsFn dense_d;
  const char* csr_name;
  const char* dense_name;
};

constexpr Tier kScalarTier = {csr_force_scalar, csr_force_scalar_d,
                              dense_force_scalar, dense_force_scalar_d,
                              "scalar", "dense-scalar"};

#ifdef ADSD_HAVE_AVX2
constexpr Tier kAvx2Tier = {detail::csr_force_avx2, detail::csr_force_avx2_d,
                            detail::dense_force_avx2,
                            detail::dense_force_avx2_d, "avx2", "dense-avx2"};
#endif

#ifdef ADSD_HAVE_AVX512
constexpr Tier kAvx512Tier = {
    detail::csr_force_avx512, detail::csr_force_avx512_d,
    detail::dense_force_avx512, detail::dense_force_avx512_d, "avx512",
    "dense-avx512"};
#endif

const Tier& tier_for(ForceKernel isa) {
  switch (isa) {
#ifdef ADSD_HAVE_AVX2
    case ForceKernel::kAvx2:
      return kAvx2Tier;
#endif
#ifdef ADSD_HAVE_AVX512
    case ForceKernel::kAvx512:
      return kAvx512Tier;
#endif
    default:
      return kScalarTier;
  }
}

struct PackTier {
  PackForceRowsFn c;
  PackForceRowsFn d;
  PackForceRowsFn shared_c;
  PackForceRowsFn shared_d;
  const char* name;
  const char* shared_name;
};

constexpr PackTier kPackScalarTier = {
    pack_force_scalar,        pack_force_scalar_d,
    pack_force_shared_scalar, pack_force_shared_scalar_d,
    "pack-scalar",            "pack-scalar-sharedj"};

#ifdef ADSD_HAVE_AVX2
constexpr PackTier kPackAvx2Tier = {
    detail::pack_force_avx2,        detail::pack_force_avx2_d,
    detail::pack_force_shared_avx2, detail::pack_force_shared_avx2_d,
    "pack-avx2",                    "pack-avx2-sharedj"};
#endif

#ifdef ADSD_HAVE_AVX512
constexpr PackTier kPackAvx512Tier = {
    detail::pack_force_avx512,        detail::pack_force_avx512_d,
    detail::pack_force_shared_avx512, detail::pack_force_shared_avx512_d,
    "pack-avx512",                    "pack-avx512-sharedj"};
#endif

const PackTier& pack_tier_for(ForceKernel isa) {
  switch (isa) {
#ifdef ADSD_HAVE_AVX2
    case ForceKernel::kAvx2:
      return kPackAvx2Tier;
#endif
#ifdef ADSD_HAVE_AVX512
    case ForceKernel::kAvx512:
      return kPackAvx512Tier;
#endif
    default:
      return kPackScalarTier;
  }
}

/// Widest supported explicit-SIMD ISA, or scalar.
ForceKernel best_isa(const CpuFeatures& f) {
  if (force_kernel_supported(ForceKernel::kAvx512, f)) {
    return ForceKernel::kAvx512;
  }
  if (force_kernel_supported(ForceKernel::kAvx2, f)) {
    return ForceKernel::kAvx2;
  }
  return ForceKernel::kScalar;
}

}  // namespace

const char* force_kernel_name(ForceKernel kind) {
  switch (kind) {
    case ForceKernel::kAuto:
      return "auto";
    case ForceKernel::kScalar:
      return "scalar";
    case ForceKernel::kAvx2:
      return "avx2";
    case ForceKernel::kAvx512:
      return "avx512";
    case ForceKernel::kDense:
      return "dense";
  }
  return "auto";
}

ForceKernel parse_force_kernel(const std::string& name) {
  for (ForceKernel kind :
       {ForceKernel::kAuto, ForceKernel::kScalar, ForceKernel::kAvx2,
        ForceKernel::kAvx512, ForceKernel::kDense}) {
    if (name == force_kernel_name(kind)) {
      return kind;
    }
  }
  throw std::invalid_argument("unknown force kernel '" + name +
                              "' (valid: auto, scalar, avx2, avx512, dense)");
}

bool force_kernel_compiled(ForceKernel kind) {
  switch (kind) {
    case ForceKernel::kAvx2:
#ifdef ADSD_HAVE_AVX2
      return true;
#else
      return false;
#endif
    case ForceKernel::kAvx512:
#ifdef ADSD_HAVE_AVX512
      return true;
#else
      return false;
#endif
    default:
      return true;
  }
}

bool force_kernel_supported(ForceKernel kind, const CpuFeatures& features) {
  if (!force_kernel_compiled(kind)) {
    return false;
  }
  switch (kind) {
    case ForceKernel::kAvx2:
      // The AVX2 files are built with -mavx2 -mfma, so require both.
      return features.avx2 && features.fma;
    case ForceKernel::kAvx512:
      return features.avx512f;
    default:
      return true;
  }
}

SelectedForceKernel select_force_kernel(ForceKernel requested,
                                        const CpuFeatures& features,
                                        bool dense_available) {
  // Resolve the dense axis first: dense needs a materialized plane, and
  // auto prefers it when present (finalize() only materializes one past
  // the measured near-complete crossover; see DESIGN.md §4.6).
  const bool use_dense =
      dense_available &&
      (requested == ForceKernel::kAuto || requested == ForceKernel::kDense);

  // Resolve the ISA axis with the fallback chain avx512 -> avx2 -> scalar.
  ForceKernel isa = ForceKernel::kScalar;
  if (requested == ForceKernel::kAuto || requested == ForceKernel::kDense) {
    isa = best_isa(features);
  } else if (requested == ForceKernel::kAvx512) {
    if (force_kernel_supported(ForceKernel::kAvx512, features)) {
      isa = ForceKernel::kAvx512;
    } else if (force_kernel_supported(ForceKernel::kAvx2, features)) {
      isa = ForceKernel::kAvx2;
    }
  } else if (requested == ForceKernel::kAvx2) {
    if (force_kernel_supported(ForceKernel::kAvx2, features)) {
      isa = ForceKernel::kAvx2;
    }
  }

  const Tier& tier = tier_for(isa);
  SelectedForceKernel out;
  if (use_dense) {
    out.continuous = tier.dense_c;
    out.discrete = tier.dense_d;
    out.kind = ForceKernel::kDense;
    out.name = tier.dense_name;
  } else {
    out.continuous = tier.csr_c;
    out.discrete = tier.csr_d;
    out.kind = isa;
    out.name = tier.csr_name;
  }
  return out;
}

std::vector<ForceKernel> selectable_force_kernels(bool dense_available) {
  std::vector<ForceKernel> out{ForceKernel::kScalar};
  const CpuFeatures& f = cpu_features();
  if (force_kernel_supported(ForceKernel::kAvx2, f)) {
    out.push_back(ForceKernel::kAvx2);
  }
  if (force_kernel_supported(ForceKernel::kAvx512, f)) {
    out.push_back(ForceKernel::kAvx512);
  }
  if (dense_available) {
    out.push_back(ForceKernel::kDense);
  }
  return out;
}

SelectedPackForceKernel select_pack_force_kernel(ForceKernel requested,
                                                 const CpuFeatures& features,
                                                 bool shared_j) {
  // Pack planes are dense per construction, so the dense axis collapses:
  // kAuto and kDense both mean "widest ISA". Explicit ISA requests walk
  // the same avx512 -> avx2 -> scalar chain as select_force_kernel().
  ForceKernel isa = ForceKernel::kScalar;
  if (requested == ForceKernel::kAuto || requested == ForceKernel::kDense) {
    isa = best_isa(features);
  } else if (requested == ForceKernel::kAvx512) {
    if (force_kernel_supported(ForceKernel::kAvx512, features)) {
      isa = ForceKernel::kAvx512;
    } else if (force_kernel_supported(ForceKernel::kAvx2, features)) {
      isa = ForceKernel::kAvx2;
    }
  } else if (requested == ForceKernel::kAvx2) {
    if (force_kernel_supported(ForceKernel::kAvx2, features)) {
      isa = ForceKernel::kAvx2;
    }
  }

  const PackTier& tier = pack_tier_for(isa);
  SelectedPackForceKernel out;
  out.continuous = shared_j ? tier.shared_c : tier.c;
  out.discrete = shared_j ? tier.shared_d : tier.d;
  out.kind = isa;
  out.name = shared_j ? tier.shared_name : tier.name;
  return out;
}

}  // namespace adsd::kernels
