#pragma once

#include <cstddef>

#include "ising/kernels/force_kernels.hpp"

// Internal linkage surface between the dispatcher (force_kernels.cpp) and
// the per-ISA translation units, which are compiled with their own -m
// flags. Every function fills force rows [row_begin, row_end) for all
// replica lanes; *_d variants are the discrete (sign-of-x) dSB flavor.
//
// Bit-exactness contract shared by every implementation: lane t of row i
// accumulates h[i] then w_e * x_e terms in CSR edge order (dense kernels:
// ascending column order, which matches CSR order because finalize()
// stores neighbors ascending) with one rounding per multiply and one per
// add -- no FMA contraction (the build pins -ffp-contract=off) and no
// cross-edge reassociation. Vector code vectorizes across lanes only, so
// each lane's scalar accumulation order is untouched.

namespace adsd::kernels::detail {

void csr_force_avx2(const ForcePlanes& p, std::size_t row_begin,
                    std::size_t row_end);
void csr_force_avx2_d(const ForcePlanes& p, std::size_t row_begin,
                      std::size_t row_end);
void dense_force_avx2(const ForcePlanes& p, std::size_t row_begin,
                      std::size_t row_end);
void dense_force_avx2_d(const ForcePlanes& p, std::size_t row_begin,
                        std::size_t row_end);

void csr_force_avx512(const ForcePlanes& p, std::size_t row_begin,
                      std::size_t row_end);
void csr_force_avx512_d(const ForcePlanes& p, std::size_t row_begin,
                        std::size_t row_end);
void dense_force_avx512(const ForcePlanes& p, std::size_t row_begin,
                        std::size_t row_end);
void dense_force_avx512_d(const ForcePlanes& p, std::size_t row_begin,
                          std::size_t row_end);

// Pack kernels (DESIGN.md §4.7): same contract per (instance, replica)
// lane, but the vector axis is the slot axis -- `active` consecutive
// instances per (row, replica) group. Each slot's accumulator still sees
// hp then w * x per ascending column j with one rounding per multiply and
// one per add, so a packed instance's trajectory is bit-identical to the
// same instance run alone through any per-instance kernel.

void pack_force_avx2(const PackForcePlanes& p, std::size_t row_begin,
                     std::size_t row_end);
void pack_force_avx2_d(const PackForcePlanes& p, std::size_t row_begin,
                       std::size_t row_end);

void pack_force_avx512(const PackForcePlanes& p, std::size_t row_begin,
                       std::size_t row_end);
void pack_force_avx512_d(const PackForcePlanes& p, std::size_t row_begin,
                         std::size_t row_end);

// Shared-J pack kernels: one row-major n x n weight plane (planes.wj) for
// every slot, broadcast per column like the dense per-instance kernels
// broadcast per replica lane. The broadcast value equals the per-slot
// load the non-shared kernels would issue, so accumulation order and
// rounding — and therefore bit-exactness against standalone solves — are
// unchanged.

void pack_force_shared_avx2(const PackForcePlanes& p, std::size_t row_begin,
                            std::size_t row_end);
void pack_force_shared_avx2_d(const PackForcePlanes& p, std::size_t row_begin,
                              std::size_t row_end);

void pack_force_shared_avx512(const PackForcePlanes& p, std::size_t row_begin,
                              std::size_t row_end);
void pack_force_shared_avx512_d(const PackForcePlanes& p,
                                std::size_t row_begin, std::size_t row_end);

}  // namespace adsd::kernels::detail
