#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "support/cpu_features.hpp"

namespace adsd::kernels {

/// Force-kernel variants of the batched bSB engine (DESIGN.md §4.6).
///
///  - kAuto:   dense plane when the model materialized one, otherwise the
///             widest explicit-SIMD CSR kernel the CPU supports.
///  - kScalar: the portable lane-blocked kernel (compile-time register
///             file, auto-vectorizes at whatever width the build targets).
///  - kAvx2 /
///    kAvx512: hand-vectorized CSR kernels; vectorization runs across the
///             replica-contiguous lanes, so each lane's per-edge
///             accumulation order -- and therefore bit-exact parity with
///             solve_sb_scalar() -- is preserved.
///  - kDense:  blocked dense matrix x replica-plane kernel over the padded
///             J plane from IsingModel::finalize(); no index gather at all.
///
/// A request the host cannot honor falls down the chain
/// (dense -> SIMD CSR -> scalar; avx512 -> avx2 -> scalar) instead of
/// failing, and the resolved choice is reported by name through
/// engine telemetry/QoR ("ising/sb/kernel/<name>").
enum class ForceKernel { kAuto, kScalar, kAvx2, kAvx512, kDense };

/// Pointer bundle over the engine's flattened planes: replica-contiguous
/// SoA positions/forces (element i of replica r at index i * replicas + r),
/// split CSR index/weight planes, and -- when the model materialized one --
/// the 64-byte-aligned padded row-major dense J plane. All pointers stay
/// owned by the engine/model; kernels write only force[row * replicas ...].
struct ForcePlanes {
  const double* x = nullptr;            // n * replicas positions
  double* force = nullptr;              // n * replicas output
  const double* h = nullptr;            // n biases
  const std::size_t* row_start = nullptr;  // n + 1 CSR offsets
  const std::uint32_t* cols = nullptr;  // CSR column indices
  const double* weights = nullptr;      // CSR coupling weights
  const double* dense = nullptr;        // n x dense_stride row-major J plane
  std::size_t dense_stride = 0;         // padded row length (multiple of 8)
  std::size_t n = 0;                    // spins
  std::size_t replicas = 0;             // lanes per spin
};

/// One kernel entry point: fill force rows [row_begin, row_end) for every
/// replica lane. Rows are independent, so a sharded caller splitting
/// [0, n) across threads gets bit-identical planes in any interleaving.
using ForceRowsFn = void (*)(const ForcePlanes& planes, std::size_t row_begin,
                             std::size_t row_end);

/// A resolved dispatch decision: the continuous (bSB) and discrete (dSB)
/// entry points of one variant, the resolved kind (never kAuto), and the
/// name reported through telemetry ("scalar", "avx2", "avx512",
/// "dense-scalar", "dense-avx2", "dense-avx512").
struct SelectedForceKernel {
  ForceRowsFn continuous = nullptr;
  ForceRowsFn discrete = nullptr;
  ForceKernel kind = ForceKernel::kScalar;
  const char* name = "scalar";
};

/// Canonical spelling of a kernel kind ("auto", "scalar", "avx2",
/// "avx512", "dense") -- the values accepted by the registry `kernel=` key
/// and the CLI `--kernel` flag.
const char* force_kernel_name(ForceKernel kind);

/// Parses a kernel name; throws std::invalid_argument listing the valid
/// names on anything else (the registry's strict-key discipline).
ForceKernel parse_force_kernel(const std::string& name);

/// True when the variant's code was compiled into this binary (explicit
/// SIMD files are dropped under -DADSD_DISABLE_SIMD or on non-x86).
bool force_kernel_compiled(ForceKernel kind);

/// True when the variant is compiled in AND the given CPU can execute it.
/// kAuto/kScalar/kDense are always supported (kDense additionally needs a
/// model with a dense plane, which selection checks separately).
bool force_kernel_supported(ForceKernel kind, const CpuFeatures& features);

/// Resolves a request against CPU features and dense-plane availability,
/// walking the fallback chain when the request cannot be honored. Never
/// fails; the result's fn pointers are always callable.
SelectedForceKernel select_force_kernel(ForceKernel requested,
                                        const CpuFeatures& features,
                                        bool dense_available);

/// The kernels that resolve to themselves on this host (with `cpu_features()`
/// and the given dense availability) -- what the parity tests and the
/// micro-benchmarks enumerate. Always contains kScalar.
std::vector<ForceKernel> selectable_force_kernels(bool dense_available);

/// Pointer bundle of the multi-instance packed bSB engine (DESIGN.md §4.7):
/// `slots` same-n Ising instances advanced by one force pass. The state is
/// slot-minor SoA -- oscillator i of replica r of the instance in slot s
/// lives at x[(i * replicas + r) * slots + s] -- so for a fixed (i, r) the
/// instances are `slots` consecutive doubles and the kernels vectorize
/// ACROSS INSTANCES at full width even at replicas == 1, where the
/// per-instance CSR kernels degenerate to scalar code.
///
/// Weights are laid out over the UNION sparsity pattern of the packed
/// instances (urow_start / ucols: ascending column indices per row, CSR
/// shape, shared by every slot): wp[e * slots + s] is J_s(i, ucols[e]) of
/// the instance in slot s for union edge e of row i, 0.0 where that slot
/// has no such coupling. hp[i * slots + s] is its bias h_s(i). Kernels
/// iterate union edges only, so structurally-zero columns shared by ALL
/// slots cost nothing — for DALTA-style packs whose members share one
/// template pattern this halves weight traffic and flops versus a dense
/// plane, and a fully-dense union degenerates to the dense iteration.
/// Dropping the all-zero columns is bit-exact: they contributed +-0.0
/// addends to h-seeded accumulators, which never change the partial sums,
/// and the surviving edges keep their ascending-j order. Retired
/// instances are swap-compacted to the tail, so kernels touch only the
/// first `active` slots of every group.
///
/// Shared-J variant: when every slot solves the same coupling matrix
/// (e.g. packed restart attempts of one instance), `wj` holds ONE weight
/// per union edge (aligned with ucols) and the shared kernels broadcast
/// wj[e] across the slot vector instead of loading a per-slot weight
/// vector — slots x fewer weight bytes per force pass. `wp` may then be
/// null. The broadcast value is identical to the per-slot load, so
/// accumulation stays bit-exact.
struct PackForcePlanes {
  const double* x = nullptr;   // n * replicas * slots positions
  double* force = nullptr;     // n * replicas * slots output
  const double* hp = nullptr;  // n * slots per-slot biases
  const double* wp = nullptr;  // uedges * slots per-slot union weights
  const double* wj = nullptr;  // uedges shared weights (shared-J)
  const std::uint32_t* urow_start = nullptr;  // n + 1 union row offsets
  const std::uint32_t* ucols = nullptr;       // union column indices
  std::size_t n = 0;           // spins per instance
  std::size_t replicas = 0;    // lockstep replicas per instance
  std::size_t slots = 0;       // slot capacity (the stride)
  std::size_t active = 0;      // live instances, a prefix of every group
};

/// One pack-kernel entry point: fill force rows [row_begin, row_end) for
/// every replica of every active slot. Rows are independent, exactly like
/// ForceRowsFn.
using PackForceRowsFn = void (*)(const PackForcePlanes& planes,
                                 std::size_t row_begin, std::size_t row_end);

/// Resolved pack-kernel dispatch decision; names are "pack-scalar",
/// "pack-avx2", "pack-avx512" (shared-J selection: "pack-scalar-sharedj",
/// "pack-avx2-sharedj", "pack-avx512-sharedj").
struct SelectedPackForceKernel {
  PackForceRowsFn continuous = nullptr;
  PackForceRowsFn discrete = nullptr;
  ForceKernel kind = ForceKernel::kScalar;  // resolved ISA tier, never kAuto
  const char* name = "pack-scalar";
};

/// Resolves a pack-kernel request against CPU features. The pack kernels
/// are dense by construction, so kAuto and kDense both mean "widest ISA";
/// explicit ISA requests walk the same avx512 -> avx2 -> scalar fallback
/// chain as select_force_kernel(). With `shared_j` the broadcast-weight
/// variants (reading PackForcePlanes::wj) are returned instead of the
/// per-slot-weight ones — same tiers, same fallback chain. Never fails.
SelectedPackForceKernel select_pack_force_kernel(ForceKernel requested,
                                                 const CpuFeatures& features,
                                                 bool shared_j = false);

}  // namespace adsd::kernels
