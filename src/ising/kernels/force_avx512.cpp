// Hand-vectorized AVX-512F force kernels: the 8-lane (zmm) sibling of the
// AVX2 file, same lane-across-replicas vectorization, same mul-then-add
// bit-exactness contract (no FMA, -ffp-contract=off). Lane blocks of 16
// (two zmm accumulators) / 8 are peeled, with an AVX2-free scalar tail so
// the file depends on -mavx512f alone. Only reached after the runtime
// CPUID + XCR0 probe confirms OS zmm state support.

#include "ising/kernels/force_kernels_detail.hpp"

#ifdef __AVX512F__

#include <immintrin.h>

namespace adsd::kernels::detail {

namespace {

template <bool Discrete>
inline __m512d edge_term(__m512d w, __m512d xj) {
  if constexpr (Discrete) {
    const __mmask8 ge =
        _mm512_cmp_pd_mask(xj, _mm512_setzero_pd(), _CMP_GE_OQ);
    xj = _mm512_mask_blend_pd(ge, _mm512_set1_pd(-1.0), _mm512_set1_pd(1.0));
  }
  return _mm512_mul_pd(w, xj);
}

template <bool Discrete>
inline double edge_term_scalar(double w, double xj) {
  if constexpr (Discrete) {
    return w * (xj >= 0.0 ? 1.0 : -1.0);
  } else {
    return w * xj;
  }
}

/// 4-lane variant for the pack kernel's slot tail (S mod 8 in {4..7}):
/// AVX is a prerequisite of AVX-512F, so __m256d is available in this TU.
/// Same per-lane arithmetic, keeping the bit-exactness contract at any
/// active-slot count.
template <bool Discrete>
inline __m256d edge_term_256(__m256d w, __m256d xj) {
  if constexpr (Discrete) {
    const __m256d ge = _mm256_cmp_pd(xj, _mm256_setzero_pd(), _CMP_GE_OQ);
    xj = _mm256_blendv_pd(_mm256_set1_pd(-1.0), _mm256_set1_pd(1.0), ge);
  }
  return _mm256_mul_pd(w, xj);
}

template <bool Discrete>
void csr_force(const ForcePlanes& p, std::size_t row_begin,
               std::size_t row_end) {
  const std::size_t R = p.replicas;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const std::size_t e_begin = p.row_start[i];
    const std::size_t e_end = p.row_start[i + 1];
    const double hi = p.h[i];
    double* fi = p.force + i * R;
    std::size_t lane = 0;
    for (; lane + 16 <= R; lane += 16) {
      __m512d acc0 = _mm512_set1_pd(hi);
      __m512d acc1 = acc0;
      for (std::size_t e = e_begin; e < e_end; ++e) {
        const __m512d w = _mm512_set1_pd(p.weights[e]);
        const double* xj =
            p.x + static_cast<std::size_t>(p.cols[e]) * R + lane;
        acc0 = _mm512_add_pd(acc0,
                             edge_term<Discrete>(w, _mm512_loadu_pd(xj)));
        acc1 = _mm512_add_pd(
            acc1, edge_term<Discrete>(w, _mm512_loadu_pd(xj + 8)));
      }
      _mm512_storeu_pd(fi + lane, acc0);
      _mm512_storeu_pd(fi + lane + 8, acc1);
    }
    if (lane + 8 <= R) {
      __m512d acc = _mm512_set1_pd(hi);
      for (std::size_t e = e_begin; e < e_end; ++e) {
        const __m512d w = _mm512_set1_pd(p.weights[e]);
        const double* xj =
            p.x + static_cast<std::size_t>(p.cols[e]) * R + lane;
        acc =
            _mm512_add_pd(acc, edge_term<Discrete>(w, _mm512_loadu_pd(xj)));
      }
      _mm512_storeu_pd(fi + lane, acc);
      lane += 8;
    }
    for (; lane < R; ++lane) {
      double acc = hi;
      for (std::size_t e = e_begin; e < e_end; ++e) {
        acc += edge_term_scalar<Discrete>(
            p.weights[e], p.x[static_cast<std::size_t>(p.cols[e]) * R + lane]);
      }
      fi[lane] = acc;
    }
  }
}

template <bool Discrete>
void dense_force(const ForcePlanes& p, std::size_t row_begin,
                 std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t n = p.n;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* ji = p.dense + i * p.dense_stride;
    const double hi = p.h[i];
    double* fi = p.force + i * R;
    std::size_t lane = 0;
    for (; lane + 16 <= R; lane += 16) {
      __m512d acc0 = _mm512_set1_pd(hi);
      __m512d acc1 = acc0;
      for (std::size_t j = 0; j < n; ++j) {
        const __m512d w = _mm512_set1_pd(ji[j]);
        const double* xj = p.x + j * R + lane;
        acc0 = _mm512_add_pd(acc0,
                             edge_term<Discrete>(w, _mm512_loadu_pd(xj)));
        acc1 = _mm512_add_pd(
            acc1, edge_term<Discrete>(w, _mm512_loadu_pd(xj + 8)));
      }
      _mm512_storeu_pd(fi + lane, acc0);
      _mm512_storeu_pd(fi + lane + 8, acc1);
    }
    if (lane + 8 <= R) {
      __m512d acc = _mm512_set1_pd(hi);
      for (std::size_t j = 0; j < n; ++j) {
        const __m512d w = _mm512_set1_pd(ji[j]);
        const double* xj = p.x + j * R + lane;
        acc =
            _mm512_add_pd(acc, edge_term<Discrete>(w, _mm512_loadu_pd(xj)));
      }
      _mm512_storeu_pd(fi + lane, acc);
      lane += 8;
    }
    for (; lane < R; ++lane) {
      double acc = hi;
      for (std::size_t j = 0; j < n; ++j) {
        acc += edge_term_scalar<Discrete>(ji[j], p.x[j * R + lane]);
      }
      fi[lane] = acc;
    }
  }
}

// Slot-packed kernel: zmm sibling of the AVX2 pack kernel, slot blocks of
// 16 (two zmm accumulators) / 8 peeled over the active prefix with an
// AVX-512-only scalar tail. Weights and positions are both vector loads
// (per-slot J matrices) over the union sparsity pattern — columns that
// are zero in every slot are skipped, which halves weight traffic for
// same-template packs while the skipped +-0.0 addends keep accumulation
// order bit-identical to the per-instance kernels.
template <bool Discrete>
void pack_force(const PackForcePlanes& p, std::size_t row_begin,
                std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t S = p.slots;
  const std::size_t A = p.active;
  const std::uint32_t* cs = p.ucols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* hi = p.hp + i * S;
    const std::uint32_t e0 = p.urow_start[i];
    const std::uint32_t e1 = p.urow_start[i + 1];
    for (std::size_t r = 0; r < R; ++r) {
      const double* xr = p.x + r * S;
      double* fi = p.force + (i * R + r) * S;
      std::size_t s = 0;
      for (; s + 16 <= A; s += 16) {
        __m512d acc0 = _mm512_loadu_pd(hi + s);
        __m512d acc1 = _mm512_loadu_pd(hi + s + 8);
        for (std::uint32_t e = e0; e < e1; ++e) {
          const double* we = p.wp + static_cast<std::size_t>(e) * S + s;
          const double* xj = xr + static_cast<std::size_t>(cs[e]) * R * S + s;
          acc0 = _mm512_add_pd(
              acc0, edge_term<Discrete>(_mm512_loadu_pd(we),
                                        _mm512_loadu_pd(xj)));
          acc1 = _mm512_add_pd(
              acc1, edge_term<Discrete>(_mm512_loadu_pd(we + 8),
                                        _mm512_loadu_pd(xj + 8)));
        }
        _mm512_storeu_pd(fi + s, acc0);
        _mm512_storeu_pd(fi + s + 8, acc1);
      }
      if (s + 8 <= A) {
        __m512d acc = _mm512_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm512_add_pd(
              acc,
              edge_term<Discrete>(
                  _mm512_loadu_pd(p.wp + static_cast<std::size_t>(e) * S + s),
                  _mm512_loadu_pd(
                      xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm512_storeu_pd(fi + s, acc);
        s += 8;
      }
      if (s + 4 <= A) {
        __m256d acc = _mm256_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm256_add_pd(
              acc,
              edge_term_256<Discrete>(
                  _mm256_loadu_pd(p.wp + static_cast<std::size_t>(e) * S + s),
                  _mm256_loadu_pd(
                      xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm256_storeu_pd(fi + s, acc);
        s += 4;
      }
      for (; s < A; ++s) {
        double acc = hi[s];
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc += edge_term_scalar<Discrete>(
              p.wp[static_cast<std::size_t>(e) * S + s],
              xr[static_cast<std::size_t>(cs[e]) * R * S + s]);
        }
        fi[s] = acc;
      }
    }
  }
}

// Shared-J pack kernel: one broadcast weight per union edge (the zmm
// sibling of the AVX2 shared kernel), positions as slot vectors. Weight
// traffic collapses from uedges*S to uedges doubles per pass — measured
// ~5.9x on the n = 64, S = 64 force pass on this host — and the broadcast
// value equals the per-slot load, so bit-exactness holds.
template <bool Discrete>
void pack_force_shared(const PackForcePlanes& p, std::size_t row_begin,
                       std::size_t row_end) {
  const std::size_t R = p.replicas;
  const std::size_t S = p.slots;
  const std::size_t A = p.active;
  const std::uint32_t* cs = p.ucols;
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* hi = p.hp + i * S;
    const std::uint32_t e0 = p.urow_start[i];
    const std::uint32_t e1 = p.urow_start[i + 1];
    for (std::size_t r = 0; r < R; ++r) {
      const double* xr = p.x + r * S;
      double* fi = p.force + (i * R + r) * S;
      std::size_t s = 0;
      for (; s + 16 <= A; s += 16) {
        __m512d acc0 = _mm512_loadu_pd(hi + s);
        __m512d acc1 = _mm512_loadu_pd(hi + s + 8);
        for (std::uint32_t e = e0; e < e1; ++e) {
          const __m512d w = _mm512_set1_pd(p.wj[e]);
          const double* xj = xr + static_cast<std::size_t>(cs[e]) * R * S + s;
          acc0 = _mm512_add_pd(acc0,
                               edge_term<Discrete>(w, _mm512_loadu_pd(xj)));
          acc1 = _mm512_add_pd(
              acc1, edge_term<Discrete>(w, _mm512_loadu_pd(xj + 8)));
        }
        _mm512_storeu_pd(fi + s, acc0);
        _mm512_storeu_pd(fi + s + 8, acc1);
      }
      if (s + 8 <= A) {
        __m512d acc = _mm512_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm512_add_pd(
              acc, edge_term<Discrete>(
                       _mm512_set1_pd(p.wj[e]),
                       _mm512_loadu_pd(
                           xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm512_storeu_pd(fi + s, acc);
        s += 8;
      }
      if (s + 4 <= A) {
        __m256d acc = _mm256_loadu_pd(hi + s);
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc = _mm256_add_pd(
              acc, edge_term_256<Discrete>(
                       _mm256_set1_pd(p.wj[e]),
                       _mm256_loadu_pd(
                           xr + static_cast<std::size_t>(cs[e]) * R * S + s)));
        }
        _mm256_storeu_pd(fi + s, acc);
        s += 4;
      }
      for (; s < A; ++s) {
        double acc = hi[s];
        for (std::uint32_t e = e0; e < e1; ++e) {
          acc += edge_term_scalar<Discrete>(
              p.wj[e], xr[static_cast<std::size_t>(cs[e]) * R * S + s]);
        }
        fi[s] = acc;
      }
    }
  }
}

}  // namespace

void csr_force_avx512(const ForcePlanes& p, std::size_t row_begin,
                      std::size_t row_end) {
  csr_force<false>(p, row_begin, row_end);
}
void csr_force_avx512_d(const ForcePlanes& p, std::size_t row_begin,
                        std::size_t row_end) {
  csr_force<true>(p, row_begin, row_end);
}
void dense_force_avx512(const ForcePlanes& p, std::size_t row_begin,
                        std::size_t row_end) {
  dense_force<false>(p, row_begin, row_end);
}
void dense_force_avx512_d(const ForcePlanes& p, std::size_t row_begin,
                          std::size_t row_end) {
  dense_force<true>(p, row_begin, row_end);
}
void pack_force_avx512(const PackForcePlanes& p, std::size_t row_begin,
                       std::size_t row_end) {
  pack_force<false>(p, row_begin, row_end);
}
void pack_force_avx512_d(const PackForcePlanes& p, std::size_t row_begin,
                         std::size_t row_end) {
  pack_force<true>(p, row_begin, row_end);
}
void pack_force_shared_avx512(const PackForcePlanes& p, std::size_t row_begin,
                              std::size_t row_end) {
  pack_force_shared<false>(p, row_begin, row_end);
}
void pack_force_shared_avx512_d(const PackForcePlanes& p,
                                std::size_t row_begin, std::size_t row_end) {
  pack_force_shared<true>(p, row_begin, row_end);
}

}  // namespace adsd::kernels::detail

#endif  // __AVX512F__
