#include "ising/bsb_pack.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ising/stop.hpp"
#include "support/cpu_features.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {

const char* pack_layout_name(PackLayout layout) {
  switch (layout) {
    case PackLayout::kAuto:
      return "auto";
    case PackLayout::kSlots:
      return "slots";
    case PackLayout::kBlocks:
      return "blocks";
  }
  return "auto";
}

PackLayout parse_pack_layout(const std::string& name) {
  for (PackLayout layout :
       {PackLayout::kAuto, PackLayout::kSlots, PackLayout::kBlocks}) {
    if (name == pack_layout_name(layout)) {
      return layout;
    }
  }
  throw std::invalid_argument("unknown pack layout '" + name +
                              "' (valid: auto, slots, blocks)");
}

BsbPackEngine::BsbPackEngine(std::span<const PackMember> members,
                             const SbParams& params, std::size_t replicas,
                             PackLayout layout)
    : BsbPackEngine(members, params, replicas,
                    PackEngineOptions{layout, 0, false}) {}

BsbPackEngine::BsbPackEngine(std::span<const PackMember> members,
                             const SbParams& params, std::size_t replicas,
                             const PackEngineOptions& options)
    : members_(members.begin(), members.end()),
      params_(params),
      share_j_(options.share_j),
      R_(replicas),
      S_(members.size()),
      active_(members.size()) {
  if (members_.empty()) {
    throw std::invalid_argument("BsbPackEngine: need >= 1 member");
  }
  if (replicas == 0) {
    throw std::invalid_argument("BsbPackEngine: need >= 1 replica");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("BsbPackEngine: bad parameters");
  }
  for (const PackMember& m : members_) {
    if (m.model == nullptr || !m.model->finalized()) {
      throw std::invalid_argument(
          "BsbPackEngine: every member model must be finalized");
    }
  }
  // Mixed spin counts are allowed: the pack is padded to the maximum n
  // with inert spins (zero bias/coupling rows keep the padded lanes at
  // exactly 0.0 forever), so every member still matches its standalone
  // trajectory bit for bit.
  const std::size_t M = S_;
  nspins_.resize(M);
  n_ = 0;
  for (std::size_t m = 0; m < M; ++m) {
    nspins_[m] = members_[m].model->num_spins();
    n_ = std::max(n_, nspins_[m]);
    if (!members_[m].initial_positions.empty() &&
        members_[m].initial_positions.size() != nspins_[m]) {
      throw std::invalid_argument("BsbPackEngine: initial_positions size");
    }
  }
  if (share_j_) {
    for (const PackMember& m : members_) {
      if (m.model != members_[0].model) {
        throw std::invalid_argument(
            "BsbPackEngine: share_j requires every member to reference the "
            "same IsingModel");
      }
    }
  }

  // Auto policy: the slot layout streams per-slot union-pattern coupling
  // rows (at most n*n doubles per slot; the gate uses that conservative
  // bound, computed before the union exists) every force pass, so it is
  // gated on that working set staying near cache size; tiling (below)
  // keeps each tile's share L2-resident across a sampling block, and
  // shared-J drops the per-slot planes entirely, so a shared pack always
  // takes the slot layout. Past the gate the composite-CSR layout wins:
  // no cross-member pattern union, memory linear in the members' own
  // edge counts.
  constexpr std::size_t kSlotPlaneDoubles = (4u << 20) / sizeof(double);
  layout_ = options.layout == PackLayout::kAuto
                ? ((share_j_ || n_ * n_ * S_ <= kSlotPlaneDoubles) && R_ <= 8
                       ? PackLayout::kSlots
                       : PackLayout::kBlocks)
                : options.layout;
  if (share_j_ && layout_ != PackLayout::kSlots) {
    throw std::invalid_argument(
        "BsbPackEngine: share_j requires the slots layout");
  }

  // Per-member c0 from the member's own coupling RMS and spin count — the
  // exact standalone expression, so a packed member integrates with the
  // same coupling strength it would alone.
  c0_.resize(M);
  for (std::size_t m = 0; m < M; ++m) {
    double c0 = params_.c0;
    if (c0 <= 0.0) {
      const double rms = members_[m].model->coupling_rms();
      c0 = rms > 0.0
               ? 0.5 * params_.detuning /
                     (rms * std::sqrt(static_cast<double>(nspins_[m])))
               : 1.0;
    }
    c0_[m] = c0;
  }

  if (layout_ == PackLayout::kSlots) {
    // Union sparsity pattern across the members (ascending columns per
    // row): the weight planes and the pack kernels cover only the columns
    // SOME member actually couples, so columns that are structural zeros
    // in every slot cost neither bandwidth nor flops. DALTA packs carve
    // same-template instances, whose union is ~one member's edge count —
    // half the dense plane on the K = 64 bench point. Dropping a column
    // that is zero in every slot removes only +-0.0 addends from the
    // h-seeded accumulators, and the surviving edges keep their ascending
    // order, so every partial sum — and therefore every trajectory — is
    // bit-identical to the dense iteration. One bitset sweep per row
    // (finalize() stores neighbors ascending; extraction re-sorts anyway).
    const std::size_t words = (n_ + 63) / 64;
    std::vector<std::uint64_t> rowbits(words);
    urow_start_.assign(n_ + 1, 0);
    ucols_.clear();
    const std::size_t scan = share_j_ ? 1 : M;
    for (std::size_t i = 0; i < n_; ++i) {
      std::fill(rowbits.begin(), rowbits.end(), 0);
      for (std::size_t m = 0; m < scan; ++m) {
        if (i >= nspins_[m]) {
          continue;
        }
        for (const auto& [j, w] : members_[m].model->neighbors(i)) {
          rowbits[static_cast<std::size_t>(j) >> 6] |=
              std::uint64_t{1} << (static_cast<std::size_t>(j) & 63);
        }
      }
      for (std::size_t w = 0; w < words; ++w) {
        std::uint64_t bits = rowbits[w];
        while (bits != 0) {
          ucols_.push_back(static_cast<std::uint32_t>(
              w * 64 + static_cast<std::size_t>(std::countr_zero(bits))));
          bits &= bits - 1;
        }
      }
      urow_start_[i + 1] = static_cast<std::uint32_t>(ucols_.size());
    }
    uedges_ = ucols_.size();

    // Slot-tile width: explicit request wins; auto sizes each tile so its
    // per-slot coupling rows (uedges * tile doubles) fit in ~1 MB — half
    // a typical L2 — leaving room for the tile's state planes. Measured
    // on this host class (K = 64, n = 64): contiguous 1 MB tiles advanced
    // a whole sampling block at a time run the force+Euler loop ~2.4x
    // faster than a monolithic 2 MB plane, which is L1-fill-bound when
    // streamed every step. Under shared-J there is no per-slot coupling
    // plane, so the tile defaults to the whole pack.
    if (options.tile > 0) {
      tile_ = std::min(options.tile, S_);
    } else if (share_j_) {
      tile_ = S_;
    } else {
      constexpr std::size_t kTileTargetDoubles = (1u << 20) / sizeof(double);
      std::size_t t = kTileTargetDoubles / std::max<std::size_t>(uedges_, 1);
      t = std::max<std::size_t>(t - t % 8, 8);
      tile_ = std::min(t, S_);
    }
    tiles_ = (S_ + tile_ - 1) / tile_;
    xstride_ = n_ * R_ * tile_;
    hstride_ = n_ * tile_;
    wstride_ = uedges_ * tile_;
    x_.assign(tiles_ * xstride_, 0.0);
    y_.assign(tiles_ * xstride_, 0.0);
    force_.assign(tiles_ * xstride_, 0.0);

    // Per-slot union weight/bias planes, tile-major: wp[wpos(e, s)] is
    // slot s's weight on union edge e, 0.0 where that slot lacks the edge
    // (or where the edge's row is a padded row of a smaller member).
    // Under shared-J one weight per union edge replaces them all.
    hp_.assign(tiles_ * hstride_, 0.0);
    if (share_j_) {
      // The union of one model IS its own pattern, so the shared weights
      // are the model's CSR values in edge order.
      wj_.assign(uedges_, 0.0);
      const IsingModel& model = *members_[0].model;
      std::size_t e = 0;
      for (std::size_t i = 0; i < n_; ++i) {
        for (const auto& [j, w] : model.neighbors(i)) {
          wj_[e++] = w;
        }
      }
    } else {
      wp_.assign(tiles_ * wstride_, 0.0);
    }
    slot_of_member_.resize(M);
    member_of_slot_.resize(M);
    c0_slot_.resize(M);
    for (std::size_t m = 0; m < M; ++m) {
      slot_of_member_[m] = m;
      member_of_slot_[m] = m;
      c0_slot_[m] = c0_[m];
      const IsingModel& model = *members_[m].model;
      double* hm = hp_.data() + (m / tile_) * hstride_ + m % tile_;
      for (std::size_t i = 0; i < nspins_[m]; ++i) {
        hm[i * tile_] = model.bias(i);
      }
    }
    // Weight-plane fill, row-outer/slot-inner: all slots of a tile write
    // row i's union block while it is hot, instead of each member
    // streaming the whole multi-MB plane with partial-line writes. Plane
    // construction is on the packed path's critical path — the engine is
    // rebuilt per restart attempt. The member's ascending neighbors merge
    // into the ascending union slice with one forward cursor per slot.
    if (!share_j_) {
      for (std::size_t t = 0; t < tiles_; ++t) {
        const std::size_t base = t * tile_;
        const std::size_t at = std::min(tile_, S_ - base);
        double* wt = wp_.data() + t * wstride_;
        for (std::size_t i = 0; i < n_; ++i) {
          double* wrow = wt + static_cast<std::size_t>(urow_start_[i]) * tile_;
          for (std::size_t u = 0; u < at; ++u) {
            const std::size_t m = base + u;
            if (i >= nspins_[m]) {
              continue;
            }
            std::size_t e = urow_start_[i];
            for (const auto& [j, w] : members_[m].model->neighbors(i)) {
              while (ucols_[e] != static_cast<std::uint32_t>(j)) {
                ++e;
              }
              wrow[(e - urow_start_[i]) * tile_ + u] = w;
              ++e;
            }
          }
        }
      }
    }
    pack_kernel_ = kernels::select_pack_force_kernel(params_.kernel,
                                                     cpu_features(), share_j_);
    pack_fn_ = params_.discrete ? pack_kernel_.discrete
                                : pack_kernel_.continuous;
    kernel_name_ = pack_kernel_.name;
  } else {
    // Composite block-diagonal CSR: member m occupies rows/cols
    // [row_base_[m], row_base_[m + 1]) — the spin-count prefix, so
    // mixed-n members stack without padding — in the standard
    // replica-contiguous layout; the existing per-instance force kernels
    // run one active block's row range at a time, unchanged. The dense
    // axis is unavailable (no composite dense plane), so a kDense request
    // falls to the widest CSR ISA — still bit-identical.
    row_base_.assign(M + 1, 0);
    for (std::size_t m = 0; m < M; ++m) {
      row_base_[m + 1] = row_base_[m] + nspins_[m];
    }
    const std::size_t rows = row_base_[M];
    x_.assign(rows * R_, 0.0);
    y_.assign(rows * R_, 0.0);
    force_.assign(rows * R_, 0.0);
    row_start_.assign(rows + 1, 0);
    std::size_t nnz = 0;
    for (std::size_t m = 0; m < M; ++m) {
      const IsingModel& model = *members_[m].model;
      for (std::size_t i = 0; i < nspins_[m]; ++i) {
        nnz += model.neighbors(i).size();
        row_start_[row_base_[m] + i + 1] = nnz;
      }
    }
    cols_.resize(nnz);
    weights_.resize(nnz);
    h_.resize(rows);
    for (std::size_t m = 0; m < M; ++m) {
      const IsingModel& model = *members_[m].model;
      const std::uint32_t col_base = static_cast<std::uint32_t>(row_base_[m]);
      for (std::size_t i = 0; i < nspins_[m]; ++i) {
        h_[row_base_[m] + i] = model.bias(i);
        std::size_t e = row_start_[row_base_[m] + i];
        for (const auto& [j, w] : model.neighbors(i)) {
          cols_[e] = col_base + j;
          weights_[e] = w;
          ++e;
        }
      }
    }
    block_active_.assign(M, 1);
    block_kernel_ = kernels::select_force_kernel(params_.kernel,
                                                 cpu_features(),
                                                 /*dense_available=*/false);
    force_fn_ = params_.discrete ? block_kernel_.discrete
                                 : block_kernel_.continuous;
    kernel_name_ = block_kernel_.name;
    planes_ = kernels::ForcePlanes{};
    planes_.x = x_.data();
    planes_.force = force_.data();
    planes_.h = h_.data();
    planes_.row_start = row_start_.data();
    planes_.cols = cols_.data();
    planes_.weights = weights_.data();
    planes_.n = rows;
    planes_.replicas = R_;
  }

  // Standalone replica seeding per member: Rng(seed + r * 0x9e3779b9),
  // x from initial_positions first, then the momenta sweep over the
  // member's own spin count — the same draw order as BsbBatchEngine.
  // Padded lanes of smaller members stay at the 0.0 the planes were
  // filled with.
  for (std::size_t m = 0; m < M; ++m) {
    const PackMember& member = members_[m];
    const std::size_t nm = nspins_[m];
    for (std::size_t r = 0; r < R_; ++r) {
      Rng rng(member.seed + 0x9e3779b9u * r);
      if (!member.initial_positions.empty()) {
        for (std::size_t i = 0; i < nm; ++i) {
          const double xi = member.initial_positions[i];
          if (layout_ == PackLayout::kSlots) {
            x_[xpos(i * R_ + r, m)] = xi;
          } else {
            x_[(row_base_[m] + i) * R_ + r] = xi;
          }
        }
      }
      for (std::size_t i = 0; i < nm; ++i) {
        const double yi = rng.next_double(-0.1, 0.1);
        if (layout_ == PackLayout::kSlots) {
          y_[xpos(i * R_ + r, m)] = yi;
        } else {
          y_[(row_base_[m] + i) * R_ + r] = yi;
        }
      }
    }
  }

  spins_.resize(M * n_ * R_);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t i = 0; i < nspins_[m]; ++i) {
      for (std::size_t r = 0; r < R_; ++r) {
        spins_[m * n_ * R_ + i * R_ + r] =
            member_x(m, i * R_ + r) >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
      }
    }
  }
  scratch_spins_.resize(n_);
  scratch_x_.resize(n_ * R_);
  scratch_y_.resize(n_ * R_);
  energies_.resize(M * R_);
  dirty_.assign(M * R_, 0);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t r = 0; r < R_; ++r) {
      energies_[m * R_ + r] = exact_energy(m, r);
    }
  }
}

double BsbPackEngine::member_x(std::size_t m, std::size_t lane) const {
  if (layout_ == PackLayout::kSlots) {
    return x_[xpos(lane, slot_of_member_[m])];
  }
  return x_[row_base_[m] * R_ + lane];
}

void BsbPackEngine::gather_member(std::size_t m, std::vector<double>& x_out,
                                  std::vector<double>& y_out) const {
  const std::size_t s = slot_of_member_[m];
  const std::size_t base = (s / tile_) * xstride_ + s % tile_;
  for (std::size_t lane = 0; lane < nspins_[m] * R_; ++lane) {
    x_out[lane] = x_[base + lane * tile_];
    y_out[lane] = y_[base + lane * tile_];
  }
}

void BsbPackEngine::scatter_member(std::size_t m,
                                   const std::vector<double>& x_in,
                                   const std::vector<double>& y_in) {
  const std::size_t s = slot_of_member_[m];
  const std::size_t base = (s / tile_) * xstride_ + s % tile_;
  for (std::size_t lane = 0; lane < nspins_[m] * R_; ++lane) {
    x_[base + lane * tile_] = x_in[lane];
    y_[base + lane * tile_] = y_in[lane];
  }
}

void BsbPackEngine::compute_forces() {
  // No pool sharding here: members are tiny by design and callers
  // parallelize across whole packs instead (PackedCoreCopSolver).
  if (layout_ == PackLayout::kSlots) {
    for (std::size_t t = 0; t < tiles_; ++t) {
      const std::size_t base = t * tile_;
      if (base >= active_) {
        break;
      }
      kernels::PackForcePlanes pp;
      pp.x = x_.data() + t * xstride_;
      pp.force = force_.data() + t * xstride_;
      pp.hp = hp_.data() + t * hstride_;
      pp.wp = share_j_ ? nullptr : wp_.data() + t * wstride_;
      pp.wj = share_j_ ? wj_.data() : nullptr;
      pp.urow_start = urow_start_.data();
      pp.ucols = ucols_.data();
      pp.n = n_;
      pp.replicas = R_;
      pp.slots = tile_;
      pp.active = std::min(tile_, active_ - base);
      pack_fn_(pp, 0, n_);
    }
    return;
  }
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (block_active_[m] != 0) {
      force_fn_(planes_, row_base_[m], row_base_[m + 1]);
    }
  }
}

void BsbPackEngine::advance(std::size_t steps) {
  // Time-blocked tile advance: each tile (kSlots) or member block
  // (kBlocks) runs the whole inter-sampling block of steps before the
  // next one starts, so its coupling planes stay cache-resident across
  // the block instead of being streamed once per step. Members only
  // interact with shared engine state at sampling points — there is none
  // inside a block — and the pump ramp depends only on the step index,
  // so the tile-outer order is bit-identical to the step-outer order.
  const auto total = static_cast<double>(params_.max_iterations);
  const double dt = params_.dt;
  const double detuning = params_.detuning;
  if (layout_ == PackLayout::kSlots) {
    for (std::size_t t = 0; t < tiles_; ++t) {
      const std::size_t base = t * tile_;
      if (base >= active_) {
        break;
      }
      const std::size_t at = std::min(tile_, active_ - base);
      kernels::PackForcePlanes pp;
      pp.x = x_.data() + t * xstride_;
      pp.force = force_.data() + t * xstride_;
      pp.hp = hp_.data() + t * hstride_;
      pp.wp = share_j_ ? nullptr : wp_.data() + t * wstride_;
      pp.wj = share_j_ ? wj_.data() : nullptr;
      pp.urow_start = urow_start_.data();
      pp.ucols = ucols_.data();
      pp.n = n_;
      pp.replicas = R_;
      pp.slots = tile_;
      pp.active = at;
      double* xt = x_.data() + t * xstride_;
      double* yt = y_.data() + t * xstride_;
      const double* ft = force_.data() + t * xstride_;
      const double* c0t = c0_slot_.data() + base;
      for (std::size_t b = 0; b < steps; ++b) {
        const double a = params_.detuning *
                         (static_cast<double>(step_ + b) + 1.0) / total;
        const double stiffness = detuning - a;
        pack_fn_(pp, 0, n_);
        for (std::size_t g = 0; g < n_ * R_; ++g) {
          double* yg = yt + g * tile_;
          double* xg = xt + g * tile_;
          const double* fg = ft + g * tile_;
          for (std::size_t u = 0; u < at; ++u) {
            // Standalone expression tree per lane, with the slot's own c0.
            yg[u] += dt * (-stiffness * xg[u] + c0t[u] * fg[u]);
            const double xk = xg[u] + dt * detuning * yg[u];
            const double lo = xk < -1.0 ? -1.0 : xk;
            const double clamped = lo > 1.0 ? 1.0 : lo;
            yg[u] = clamped == xk ? yg[u] : 0.0;
            xg[u] = clamped;
          }
        }
      }
    }
  } else {
    for (std::size_t m = 0; m < members_.size(); ++m) {
      if (block_active_[m] == 0) {
        continue;
      }
      const double c0 = c0_[m];
      const std::size_t lane_begin = row_base_[m] * R_;
      const std::size_t lane_end = row_base_[m + 1] * R_;
      for (std::size_t b = 0; b < steps; ++b) {
        const double a = params_.detuning *
                         (static_cast<double>(step_ + b) + 1.0) / total;
        const double stiffness = detuning - a;
        force_fn_(planes_, row_base_[m], row_base_[m + 1]);
        for (std::size_t k = lane_begin; k < lane_end; ++k) {
          y_[k] += dt * (-stiffness * x_[k] + c0 * force_[k]);
          const double xk = x_[k] + dt * detuning * y_[k];
          const double lo = xk < -1.0 ? -1.0 : xk;
          const double clamped = lo > 1.0 ? 1.0 : lo;
          y_[k] = clamped == xk ? y_[k] : 0.0;
          x_[k] = clamped;
        }
      }
    }
  }
  step_ += steps;
}

void BsbPackEngine::step() { advance(1); }

void BsbPackEngine::flip(std::size_t m, std::size_t i, std::size_t r,
                         std::int8_t new_sign) {
  // The standalone flip telescope against the member's own adjacency
  // (model.neighbors order == the engine's CSR edge order).
  const std::int8_t* sm = spins_.data() + m * n_ * R_;
  const std::int8_t old_sign = sm[i * R_ + r];
  const IsingModel& model = *members_[m].model;
  double field = model.bias(i);
  for (const auto& [j, w] : model.neighbors(i)) {
    field +=
        w * static_cast<double>(sm[static_cast<std::size_t>(j) * R_ + r]);
  }
  energies_[m * R_ + r] += 2.0 * static_cast<double>(old_sign) * field;
  spins_[m * n_ * R_ + i * R_ + r] = new_sign;
  dirty_[m * R_ + r] = 1;
}

void BsbPackEngine::sample(std::size_t m) {
  // Standalone flip discovery order: i outer, r inner, over the member's
  // own spin count (padded lanes never flip — they stay exactly 0.0).
  // One base-pointer resolution per member, not one xpos() div/mod per
  // element: sampling runs once per member per sampling point and was
  // measurable against the time-blocked integration at K = 64.
  const double* xm;
  std::size_t stride;
  if (layout_ == PackLayout::kSlots) {
    const std::size_t s = slot_of_member_[m];
    xm = x_.data() + (s / tile_) * xstride_ + s % tile_;
    stride = tile_;
  } else {
    xm = x_.data() + row_base_[m] * R_;
    stride = 1;
  }
  for (std::size_t i = 0; i < nspins_[m]; ++i) {
    for (std::size_t r = 0; r < R_; ++r) {
      const double xv = xm[(i * R_ + r) * stride];
      const std::int8_t ns = xv >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
      if (ns != spins_[m * n_ * R_ + i * R_ + r]) {
        flip(m, i, r, ns);
      }
    }
  }
}

double BsbPackEngine::exact_energy(std::size_t m, std::size_t r) {
  copy_member_spins(m, r, scratch_spins_);
  return members_[m].model->energy(scratch_spins_);
}

void BsbPackEngine::copy_member_spins(std::size_t m, std::size_t r,
                                      std::vector<std::int8_t>& out) const {
  out.resize(nspins_[m]);
  const std::int8_t* sm = spins_.data() + m * n_ * R_;
  for (std::size_t i = 0; i < nspins_[m]; ++i) {
    out[i] = sm[i * R_ + r];
  }
}

double BsbPackEngine::consider_all(std::size_t m, IsingSolveResult& result) {
  // Standalone best-energy slack filter per member (see
  // BsbBatchEngine::run): tracked energies within flip-rounding slack of
  // the incumbent trigger one from-scratch recomputation and are snapped.
  double best_now = energies_[m * R_];
  for (std::size_t r = 0; r < R_; ++r) {
    const double slack = 1e-9 + 1e-12 * std::fabs(result.energy);
    if (dirty_[m * R_ + r] != 0 &&
        energies_[m * R_ + r] < result.energy + slack) {
      const double es = exact_energy(m, r);
      energies_[m * R_ + r] = es;
      dirty_[m * R_ + r] = 0;
      if (es < result.energy) {
        result.energy = es;
        copy_member_spins(m, r, result.spins);
      }
    }
    best_now = std::min(best_now, energies_[m * R_ + r]);
  }
  return best_now;
}

void BsbPackEngine::retire_slot(std::size_t m) {
  // Swap-compact the retired member's slot out of the active prefix so
  // the pack kernels keep streaming a dense front of live instances; the
  // two slots may live in different tiles, but both sides index through
  // the same tile-major offsets. The force plane is not swapped: it is
  // recomputed from x before its next read, and kernels touch only the
  // active prefix.
  const std::size_t s = slot_of_member_[m];
  const std::size_t last = active_ - 1;
  if (s != last) {
    for (std::size_t g = 0; g < n_ * R_; ++g) {
      std::swap(x_[xpos(g, s)], x_[xpos(g, last)]);
      std::swap(y_[xpos(g, s)], y_[xpos(g, last)]);
    }
    for (std::size_t g = 0; g < n_; ++g) {
      std::swap(hp_[hpos(g, s)], hp_[hpos(g, last)]);
    }
    if (!share_j_) {
      for (std::size_t g = 0; g < uedges_; ++g) {
        std::swap(wp_[wpos(g, s)], wp_[wpos(g, last)]);
      }
    }
    std::swap(c0_slot_[s], c0_slot_[last]);
    const std::size_t other = member_of_slot_[last];
    member_of_slot_[s] = other;
    slot_of_member_[other] = s;
    member_of_slot_[last] = m;
    slot_of_member_[m] = last;
  }
  --active_;
}

std::vector<IsingSolveResult> BsbPackEngine::run(
    const PackPlaneHook& plane_hook) {
  const std::size_t M = members_.size();
  std::vector<IsingSolveResult> results(M);
  for (std::size_t m = 0; m < M; ++m) {
    copy_member_spins(m, 0, results[m].spins);
    results[m].energy = energies_[m * R_];
  }

  const std::size_t sample_every =
      params_.stop.sample_interval > 0 ? params_.stop.sample_interval : 10;
  std::vector<DynamicStopMonitor> monitors;
  monitors.reserve(M);
  for (std::size_t m = 0; m < M; ++m) {
    monitors.emplace_back(params_.stop);
  }

  TraceRecorder* tracer = ctx_ != nullptr ? ctx_->tracer() : nullptr;
  const TraceSpan run_span(tracer, "ising/pack/run");
  // Per-block spans: one open span per member, closed at retirement, so a
  // trace shows exactly how long each instance stayed live in the pack.
  std::vector<TraceRecorder::SpanToken> member_spans(M);
  if (tracer != nullptr) {
    for (std::size_t m = 0; m < M; ++m) {
      member_spans[m] = tracer->begin("ising/pack/member");
    }
  }

  QorRecorder* qor = ctx_ != nullptr ? ctx_->qor() : nullptr;
  if (ctx_ != nullptr) {
    ctx_->telemetry().add("ising/pack/runs");
    ctx_->telemetry().add("ising/pack/members", M);
    const std::string kernel_counter =
        std::string("ising/pack/kernel/") + kernel_name_;
    ctx_->telemetry().add(kernel_counter);
    if (qor != nullptr) {
      qor->add(kernel_counter);
    }
    if (MetricsRegistry* metrics = ctx_->metrics()) {
      metrics->counter("pack_runs_total").add();
      metrics->counter("pack_members_total").add(M);
      metrics->counter("kernel_invocations_total", {{"kernel", kernel_name_}})
          .add();
    }
  }

  std::vector<std::uint8_t> live(M, 1);
  std::size_t retired_early = 0;

  auto finish_member = [&](std::size_t m, bool variance) {
    live[m] = 0;
    results[m].iterations = step_;
    results[m].stopped_early = true;
    ++retired_early;
    if (ctx_ != nullptr) {
      ctx_->telemetry().add(variance ? "ising/pack/dynamic_stops"
                                     : "ising/pack/deadline_hits");
    }
    trace_instant(tracer, variance ? "ising/pack/dynamic_stop"
                                   : "ising/pack/deadline_hit");
    ADSD_LOG_DEBUG("ising/pack",
                   variance ? "member retired on dynamic stop"
                            : "member retired on deadline",
                   {"member", m}, {"step", step_}, {"active", active_ - 1});
    if (tracer != nullptr) {
      tracer->end(member_spans[m]);
    }
    if (layout_ == PackLayout::kSlots) {
      retire_slot(m);
    } else {
      block_active_[m] = 0;
      --active_;
    }
  };

  // Deadline-at-entry: a pack started after the deadline expired (e.g. a
  // later restart) must not burn a whole pump ramp before noticing.
  if (ctx_ != nullptr && ctx_->expired()) {
    ADSD_LOG_WARN("ising/pack", "deadline expired at pack entry",
                  {"members", M}, {"spins", n_});
    for (std::size_t m = 0; m < M; ++m) {
      finish_member(m, /*variance=*/false);
    }
  }

  while (step_ < params_.max_iterations && active_ > 0) {
    // Advance everyone to the next sampling point (or ramp end) in one
    // time-blocked tile sweep; the per-step loop this replaces sampled at
    // exactly these step counts, so the observable schedule is unchanged.
    const std::size_t next =
        std::min(params_.max_iterations,
                 (step_ / sample_every + 1) * sample_every);
    advance(next - step_);
    if (step_ % sample_every == 0) {
      for (std::size_t m = 0; m < M; ++m) {
        if (live[m] == 0) {
          continue;
        }
        if (plane_hook) {
          if (layout_ == PackLayout::kBlocks) {
            plane_hook(m,
                       std::span<double>(x_.data() + row_base_[m] * R_,
                                         nspins_[m] * R_),
                       std::span<double>(y_.data() + row_base_[m] * R_,
                                         nspins_[m] * R_),
                       R_);
          } else {
            gather_member(m, scratch_x_, scratch_y_);
            plane_hook(m,
                       std::span<double>(scratch_x_.data(), nspins_[m] * R_),
                       std::span<double>(scratch_y_.data(), nspins_[m] * R_),
                       R_);
            scatter_member(m, scratch_x_, scratch_y_);
          }
        }
        sample(m);
        const double best_now = consider_all(m, results[m]);
        // Standalone ordering: the variance verdict first, the deadline
        // only when the member did not already stop. Retirement points
        // double as the deadline-check granularity for tiny solves.
        const bool variance_stop = monitors[m].observe(best_now);
        const bool deadline_stop =
            !variance_stop && ctx_ != nullptr && ctx_->expired();
        if (variance_stop || deadline_stop) {
          finish_member(m, variance_stop);
        }
      }
    }
  }

  for (std::size_t m = 0; m < M; ++m) {
    if (live[m] == 0) {
      continue;
    }
    // Members that ran the full ramp: capture flips from any trailing
    // unsampled steps, exactly like the standalone post-loop pass.
    sample(m);
    consider_all(m, results[m]);
    results[m].iterations = step_;
    if (tracer != nullptr) {
      tracer->end(member_spans[m]);
    }
  }

  if (ctx_ != nullptr) {
    std::size_t member_steps = 0;
    for (std::size_t m = 0; m < M; ++m) {
      member_steps += results[m].iterations;
    }
    ctx_->telemetry().add("ising/pack/steps", member_steps);
    ctx_->telemetry().add("ising/pack/retired", retired_early);
    if (MetricsRegistry* metrics = ctx_->metrics()) {
      metrics->counter("pack_member_steps_total").add(member_steps);
      metrics->counter("pack_retired_total").add(retired_early);
    }
  }
  return results;
}

}  // namespace adsd
