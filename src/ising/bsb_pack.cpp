#include "ising/bsb_pack.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ising/stop.hpp"
#include "support/cpu_features.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {

const char* pack_layout_name(PackLayout layout) {
  switch (layout) {
    case PackLayout::kAuto:
      return "auto";
    case PackLayout::kSlots:
      return "slots";
    case PackLayout::kBlocks:
      return "blocks";
  }
  return "auto";
}

PackLayout parse_pack_layout(const std::string& name) {
  for (PackLayout layout :
       {PackLayout::kAuto, PackLayout::kSlots, PackLayout::kBlocks}) {
    if (name == pack_layout_name(layout)) {
      return layout;
    }
  }
  throw std::invalid_argument("unknown pack layout '" + name +
                              "' (valid: auto, slots, blocks)");
}

BsbPackEngine::BsbPackEngine(std::span<const PackMember> members,
                             const SbParams& params, std::size_t replicas,
                             PackLayout layout)
    : members_(members.begin(), members.end()),
      params_(params),
      R_(replicas),
      S_(members.size()),
      active_(members.size()) {
  if (members_.empty()) {
    throw std::invalid_argument("BsbPackEngine: need >= 1 member");
  }
  if (replicas == 0) {
    throw std::invalid_argument("BsbPackEngine: need >= 1 replica");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("BsbPackEngine: bad parameters");
  }
  for (const PackMember& m : members_) {
    if (m.model == nullptr || !m.model->finalized()) {
      throw std::invalid_argument(
          "BsbPackEngine: every member model must be finalized");
    }
  }
  n_ = members_[0].model->num_spins();
  for (const PackMember& m : members_) {
    if (m.model->num_spins() != n_) {
      throw std::invalid_argument(
          "BsbPackEngine: members must share num_spins (bucket by n)");
    }
    if (!m.initial_positions.empty() && m.initial_positions.size() != n_) {
      throw std::invalid_argument("BsbPackEngine: initial_positions size");
    }
  }

  // Auto policy: the slot layout streams a dense n*n plane per slot every
  // force pass, so it is gated on that working set staying near cache
  // size (the K = 64 x 64-spin micro-bench point -- 2 MB -- is already
  // bandwidth-bound but still ahead of looped solves; measured end-to-end
  // it beats kBlocks by ~2x on DALTA's small candidate COPs at any
  // R <= 8). Past the gate the composite-CSR layout wins: no structural
  // zeros, memory linear in the members' real edge counts.
  constexpr std::size_t kSlotPlaneDoubles = (4u << 20) / sizeof(double);
  layout_ = layout == PackLayout::kAuto
                ? (n_ * n_ * S_ <= kSlotPlaneDoubles && R_ <= 8
                       ? PackLayout::kSlots
                       : PackLayout::kBlocks)
                : layout;

  // Per-member c0 from the member's own coupling RMS — the exact
  // standalone expression, so a packed member integrates with the same
  // coupling strength it would alone.
  const std::size_t M = S_;
  c0_.resize(M);
  for (std::size_t m = 0; m < M; ++m) {
    double c0 = params_.c0;
    if (c0 <= 0.0) {
      const double rms = members_[m].model->coupling_rms();
      c0 = rms > 0.0 ? 0.5 * params_.detuning /
                           (rms * std::sqrt(static_cast<double>(n_)))
                     : 1.0;
    }
    c0_[m] = c0;
  }

  x_.assign(n_ * R_ * S_, 0.0);
  y_.assign(n_ * R_ * S_, 0.0);
  force_.assign(n_ * R_ * S_, 0.0);

  if (layout_ == PackLayout::kSlots) {
    // Per-slot dense block-diagonal weight/bias planes: wp[(i*n + j)*S + s]
    // is J_s(i, j), 0.0 where member s has no coupling. Structural zeros
    // contribute +-0.0 per edge, which leaves the h-seeded accumulators
    // bit-identical to the member's CSR traversal (same argument as the
    // per-instance dense kernels; finalize() stores neighbors ascending).
    hp_.assign(n_ * S_, 0.0);
    wp_.assign(n_ * n_ * S_, 0.0);
    slot_of_member_.resize(M);
    member_of_slot_.resize(M);
    c0_slot_.resize(M);
    for (std::size_t m = 0; m < M; ++m) {
      slot_of_member_[m] = m;
      member_of_slot_[m] = m;
      c0_slot_[m] = c0_[m];
      const IsingModel& model = *members_[m].model;
      for (std::size_t i = 0; i < n_; ++i) {
        hp_[i * S_ + m] = model.bias(i);
        for (const auto& [j, w] : model.neighbors(i)) {
          wp_[(i * n_ + static_cast<std::size_t>(j)) * S_ + m] = w;
        }
      }
    }
    pack_kernel_ = kernels::select_pack_force_kernel(params_.kernel,
                                                     cpu_features());
    pack_fn_ = params_.discrete ? pack_kernel_.discrete
                                : pack_kernel_.continuous;
    kernel_name_ = pack_kernel_.name;
    pack_planes_ = kernels::PackForcePlanes{};
    pack_planes_.x = x_.data();
    pack_planes_.force = force_.data();
    pack_planes_.hp = hp_.data();
    pack_planes_.wp = wp_.data();
    pack_planes_.n = n_;
    pack_planes_.replicas = R_;
    pack_planes_.slots = S_;
    pack_planes_.active = active_;
  } else {
    // Composite block-diagonal CSR: member m occupies rows
    // [m*n, (m+1)*n), columns offset by m*n, in the standard
    // replica-contiguous layout — the existing per-instance force kernels
    // run one active block's row range at a time, unchanged. The dense
    // axis is unavailable (no composite dense plane), so a kDense request
    // falls to the widest CSR ISA — still bit-identical.
    row_start_.assign(S_ * n_ + 1, 0);
    std::size_t nnz = 0;
    for (std::size_t m = 0; m < M; ++m) {
      const IsingModel& model = *members_[m].model;
      for (std::size_t i = 0; i < n_; ++i) {
        nnz += model.neighbors(i).size();
        row_start_[m * n_ + i + 1] = nnz;
      }
    }
    cols_.resize(nnz);
    weights_.resize(nnz);
    h_.resize(S_ * n_);
    for (std::size_t m = 0; m < M; ++m) {
      const IsingModel& model = *members_[m].model;
      const std::uint32_t col_base = static_cast<std::uint32_t>(m * n_);
      for (std::size_t i = 0; i < n_; ++i) {
        h_[m * n_ + i] = model.bias(i);
        std::size_t e = row_start_[m * n_ + i];
        for (const auto& [j, w] : model.neighbors(i)) {
          cols_[e] = col_base + j;
          weights_[e] = w;
          ++e;
        }
      }
    }
    block_active_.assign(M, 1);
    block_kernel_ = kernels::select_force_kernel(params_.kernel,
                                                 cpu_features(),
                                                 /*dense_available=*/false);
    force_fn_ = params_.discrete ? block_kernel_.discrete
                                 : block_kernel_.continuous;
    kernel_name_ = block_kernel_.name;
    planes_ = kernels::ForcePlanes{};
    planes_.x = x_.data();
    planes_.force = force_.data();
    planes_.h = h_.data();
    planes_.row_start = row_start_.data();
    planes_.cols = cols_.data();
    planes_.weights = weights_.data();
    planes_.n = S_ * n_;
    planes_.replicas = R_;
  }

  // Standalone replica seeding per member: Rng(seed + r * 0x9e3779b9),
  // x from initial_positions first, then the momenta sweep — the same
  // draw order as BsbBatchEngine.
  for (std::size_t m = 0; m < M; ++m) {
    const PackMember& member = members_[m];
    for (std::size_t r = 0; r < R_; ++r) {
      Rng rng(member.seed + 0x9e3779b9u * r);
      if (!member.initial_positions.empty()) {
        for (std::size_t i = 0; i < n_; ++i) {
          const double xi = member.initial_positions[i];
          if (layout_ == PackLayout::kSlots) {
            x_[(i * R_ + r) * S_ + m] = xi;
          } else {
            x_[m * n_ * R_ + i * R_ + r] = xi;
          }
        }
      }
      for (std::size_t i = 0; i < n_; ++i) {
        const double yi = rng.next_double(-0.1, 0.1);
        if (layout_ == PackLayout::kSlots) {
          y_[(i * R_ + r) * S_ + m] = yi;
        } else {
          y_[m * n_ * R_ + i * R_ + r] = yi;
        }
      }
    }
  }

  spins_.resize(M * n_ * R_);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t lane = 0; lane < n_ * R_; ++lane) {
      spins_[m * n_ * R_ + lane] =
          member_x(m, lane) >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
    }
  }
  scratch_spins_.resize(n_);
  scratch_x_.resize(n_ * R_);
  scratch_y_.resize(n_ * R_);
  energies_.resize(M * R_);
  dirty_.assign(M * R_, 0);
  for (std::size_t m = 0; m < M; ++m) {
    for (std::size_t r = 0; r < R_; ++r) {
      energies_[m * R_ + r] = exact_energy(m, r);
    }
  }
}

double BsbPackEngine::member_x(std::size_t m, std::size_t lane) const {
  if (layout_ == PackLayout::kSlots) {
    return x_[lane * S_ + slot_of_member_[m]];
  }
  return x_[m * n_ * R_ + lane];
}

void BsbPackEngine::gather_member(std::size_t m, std::vector<double>& x_out,
                                  std::vector<double>& y_out) const {
  const std::size_t s = slot_of_member_[m];
  for (std::size_t lane = 0; lane < n_ * R_; ++lane) {
    x_out[lane] = x_[lane * S_ + s];
    y_out[lane] = y_[lane * S_ + s];
  }
}

void BsbPackEngine::scatter_member(std::size_t m,
                                   const std::vector<double>& x_in,
                                   const std::vector<double>& y_in) {
  const std::size_t s = slot_of_member_[m];
  for (std::size_t lane = 0; lane < n_ * R_; ++lane) {
    x_[lane * S_ + s] = x_in[lane];
    y_[lane * S_ + s] = y_in[lane];
  }
}

void BsbPackEngine::compute_forces() {
  // No pool sharding here: members are tiny by design and callers
  // parallelize across whole packs instead (PackedCoreCopSolver).
  if (layout_ == PackLayout::kSlots) {
    pack_planes_.active = active_;
    pack_fn_(pack_planes_, 0, n_);
    return;
  }
  for (std::size_t m = 0; m < members_.size(); ++m) {
    if (block_active_[m] != 0) {
      force_fn_(planes_, m * n_, (m + 1) * n_);
    }
  }
}

void BsbPackEngine::step() {
  const auto total = static_cast<double>(params_.max_iterations);
  // Shared pump ramp: every member started at step 0 and advances in
  // lockstep, so the global step counter equals each member's own —
  // bit-for-bit the standalone ramp expression.
  const double a =
      params_.detuning * (static_cast<double>(step_) + 1.0) / total;
  const double stiffness = params_.detuning - a;

  compute_forces();

  const double dt = params_.dt;
  const double detuning = params_.detuning;
  if (layout_ == PackLayout::kSlots) {
    const std::size_t S = S_;
    const std::size_t A = active_;
    for (std::size_t g = 0; g < n_ * R_; ++g) {
      double* yg = y_.data() + g * S;
      double* xg = x_.data() + g * S;
      const double* fg = force_.data() + g * S;
      for (std::size_t s = 0; s < A; ++s) {
        // Standalone expression tree per lane, with the slot's own c0.
        yg[s] += dt * (-stiffness * xg[s] + c0_slot_[s] * fg[s]);
        const double xk = xg[s] + dt * detuning * yg[s];
        const double lo = xk < -1.0 ? -1.0 : xk;
        const double clamped = lo > 1.0 ? 1.0 : lo;
        yg[s] = clamped == xk ? yg[s] : 0.0;
        xg[s] = clamped;
      }
    }
  } else {
    for (std::size_t m = 0; m < members_.size(); ++m) {
      if (block_active_[m] == 0) {
        continue;
      }
      const double c0 = c0_[m];
      const std::size_t base = m * n_ * R_;
      for (std::size_t k = base; k < base + n_ * R_; ++k) {
        y_[k] += dt * (-stiffness * x_[k] + c0 * force_[k]);
        const double xk = x_[k] + dt * detuning * y_[k];
        const double lo = xk < -1.0 ? -1.0 : xk;
        const double clamped = lo > 1.0 ? 1.0 : lo;
        y_[k] = clamped == xk ? y_[k] : 0.0;
        x_[k] = clamped;
      }
    }
  }
  ++step_;
}

void BsbPackEngine::flip(std::size_t m, std::size_t i, std::size_t r,
                         std::int8_t new_sign) {
  // The standalone flip telescope against the member's own adjacency
  // (model.neighbors order == the engine's CSR edge order).
  const std::int8_t* sm = spins_.data() + m * n_ * R_;
  const std::int8_t old_sign = sm[i * R_ + r];
  const IsingModel& model = *members_[m].model;
  double field = model.bias(i);
  for (const auto& [j, w] : model.neighbors(i)) {
    field +=
        w * static_cast<double>(sm[static_cast<std::size_t>(j) * R_ + r]);
  }
  energies_[m * R_ + r] += 2.0 * static_cast<double>(old_sign) * field;
  spins_[m * n_ * R_ + i * R_ + r] = new_sign;
  dirty_[m * R_ + r] = 1;
}

void BsbPackEngine::sample(std::size_t m) {
  // Standalone flip discovery order: i outer, r inner.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t r = 0; r < R_; ++r) {
      const double xv = member_x(m, i * R_ + r);
      const std::int8_t ns = xv >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
      if (ns != spins_[m * n_ * R_ + i * R_ + r]) {
        flip(m, i, r, ns);
      }
    }
  }
}

double BsbPackEngine::exact_energy(std::size_t m, std::size_t r) {
  copy_member_spins(m, r, scratch_spins_);
  return members_[m].model->energy(scratch_spins_);
}

void BsbPackEngine::copy_member_spins(std::size_t m, std::size_t r,
                                      std::vector<std::int8_t>& out) const {
  out.resize(n_);
  const std::int8_t* sm = spins_.data() + m * n_ * R_;
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = sm[i * R_ + r];
  }
}

double BsbPackEngine::consider_all(std::size_t m, IsingSolveResult& result) {
  // Standalone best-energy slack filter per member (see
  // BsbBatchEngine::run): tracked energies within flip-rounding slack of
  // the incumbent trigger one from-scratch recomputation and are snapped.
  double best_now = energies_[m * R_];
  for (std::size_t r = 0; r < R_; ++r) {
    const double slack = 1e-9 + 1e-12 * std::fabs(result.energy);
    if (dirty_[m * R_ + r] != 0 &&
        energies_[m * R_ + r] < result.energy + slack) {
      const double es = exact_energy(m, r);
      energies_[m * R_ + r] = es;
      dirty_[m * R_ + r] = 0;
      if (es < result.energy) {
        result.energy = es;
        copy_member_spins(m, r, result.spins);
      }
    }
    best_now = std::min(best_now, energies_[m * R_ + r]);
  }
  return best_now;
}

void BsbPackEngine::retire_slot(std::size_t m) {
  // Swap-compact the retired member's slot out of the active prefix so
  // the pack kernels keep streaming a dense front of live instances. The
  // force plane is not swapped: it is recomputed from x before its next
  // read, and kernels touch only the active prefix.
  const std::size_t s = slot_of_member_[m];
  const std::size_t last = active_ - 1;
  if (s != last) {
    for (std::size_t g = 0; g < n_ * R_; ++g) {
      std::swap(x_[g * S_ + s], x_[g * S_ + last]);
      std::swap(y_[g * S_ + s], y_[g * S_ + last]);
    }
    for (std::size_t g = 0; g < n_; ++g) {
      std::swap(hp_[g * S_ + s], hp_[g * S_ + last]);
    }
    for (std::size_t g = 0; g < n_ * n_; ++g) {
      std::swap(wp_[g * S_ + s], wp_[g * S_ + last]);
    }
    std::swap(c0_slot_[s], c0_slot_[last]);
    const std::size_t other = member_of_slot_[last];
    member_of_slot_[s] = other;
    slot_of_member_[other] = s;
    member_of_slot_[last] = m;
    slot_of_member_[m] = last;
  }
  --active_;
}

std::vector<IsingSolveResult> BsbPackEngine::run(
    const PackPlaneHook& plane_hook) {
  const std::size_t M = members_.size();
  std::vector<IsingSolveResult> results(M);
  for (std::size_t m = 0; m < M; ++m) {
    copy_member_spins(m, 0, results[m].spins);
    results[m].energy = energies_[m * R_];
  }

  const std::size_t sample_every =
      params_.stop.sample_interval > 0 ? params_.stop.sample_interval : 10;
  std::vector<DynamicStopMonitor> monitors;
  monitors.reserve(M);
  for (std::size_t m = 0; m < M; ++m) {
    monitors.emplace_back(params_.stop);
  }

  TraceRecorder* tracer = ctx_ != nullptr ? ctx_->tracer() : nullptr;
  const TraceSpan run_span(tracer, "ising/pack/run");
  // Per-block spans: one open span per member, closed at retirement, so a
  // trace shows exactly how long each instance stayed live in the pack.
  std::vector<TraceRecorder::SpanToken> member_spans(M);
  if (tracer != nullptr) {
    for (std::size_t m = 0; m < M; ++m) {
      member_spans[m] = tracer->begin("ising/pack/member");
    }
  }

  QorRecorder* qor = ctx_ != nullptr ? ctx_->qor() : nullptr;
  if (ctx_ != nullptr) {
    ctx_->telemetry().add("ising/pack/runs");
    ctx_->telemetry().add("ising/pack/members", M);
    const std::string kernel_counter =
        std::string("ising/pack/kernel/") + kernel_name_;
    ctx_->telemetry().add(kernel_counter);
    if (qor != nullptr) {
      qor->add(kernel_counter);
    }
    if (MetricsRegistry* metrics = ctx_->metrics()) {
      metrics->counter("pack_runs_total").add();
      metrics->counter("pack_members_total").add(M);
      metrics->counter("kernel_invocations_total", {{"kernel", kernel_name_}})
          .add();
    }
  }

  std::vector<std::uint8_t> live(M, 1);
  std::size_t retired_early = 0;

  auto finish_member = [&](std::size_t m, bool variance) {
    live[m] = 0;
    results[m].iterations = step_;
    results[m].stopped_early = true;
    ++retired_early;
    if (ctx_ != nullptr) {
      ctx_->telemetry().add(variance ? "ising/pack/dynamic_stops"
                                     : "ising/pack/deadline_hits");
    }
    trace_instant(tracer, variance ? "ising/pack/dynamic_stop"
                                   : "ising/pack/deadline_hit");
    ADSD_LOG_DEBUG("ising/pack",
                   variance ? "member retired on dynamic stop"
                            : "member retired on deadline",
                   {"member", m}, {"step", step_}, {"active", active_ - 1});
    if (tracer != nullptr) {
      tracer->end(member_spans[m]);
    }
    if (layout_ == PackLayout::kSlots) {
      retire_slot(m);
    } else {
      block_active_[m] = 0;
      --active_;
    }
  };

  // Deadline-at-entry: a pack started after the deadline expired (e.g. a
  // later restart) must not burn a whole pump ramp before noticing.
  if (ctx_ != nullptr && ctx_->expired()) {
    ADSD_LOG_WARN("ising/pack", "deadline expired at pack entry",
                  {"members", M}, {"spins", n_});
    for (std::size_t m = 0; m < M; ++m) {
      finish_member(m, /*variance=*/false);
    }
  }

  while (step_ < params_.max_iterations && active_ > 0) {
    step();
    if (step_ % sample_every == 0) {
      for (std::size_t m = 0; m < M; ++m) {
        if (live[m] == 0) {
          continue;
        }
        if (plane_hook) {
          if (layout_ == PackLayout::kBlocks) {
            plane_hook(m,
                       std::span<double>(x_.data() + m * n_ * R_, n_ * R_),
                       std::span<double>(y_.data() + m * n_ * R_, n_ * R_),
                       R_);
          } else {
            gather_member(m, scratch_x_, scratch_y_);
            plane_hook(m, std::span<double>(scratch_x_),
                       std::span<double>(scratch_y_), R_);
            scatter_member(m, scratch_x_, scratch_y_);
          }
        }
        sample(m);
        const double best_now = consider_all(m, results[m]);
        // Standalone ordering: the variance verdict first, the deadline
        // only when the member did not already stop. Retirement points
        // double as the deadline-check granularity for tiny solves.
        const bool variance_stop = monitors[m].observe(best_now);
        const bool deadline_stop =
            !variance_stop && ctx_ != nullptr && ctx_->expired();
        if (variance_stop || deadline_stop) {
          finish_member(m, variance_stop);
        }
      }
    }
  }

  for (std::size_t m = 0; m < M; ++m) {
    if (live[m] == 0) {
      continue;
    }
    // Members that ran the full ramp: capture flips from any trailing
    // unsampled steps, exactly like the standalone post-loop pass.
    sample(m);
    consider_all(m, results[m]);
    results[m].iterations = step_;
    if (tracer != nullptr) {
      tracer->end(member_spans[m]);
    }
  }

  if (ctx_ != nullptr) {
    std::size_t member_steps = 0;
    for (std::size_t m = 0; m < M; ++m) {
      member_steps += results[m].iterations;
    }
    ctx_->telemetry().add("ising/pack/steps", member_steps);
    ctx_->telemetry().add("ising/pack/retired", retired_early);
    if (MetricsRegistry* metrics = ctx_->metrics()) {
      metrics->counter("pack_member_steps_total").add(member_steps);
      metrics->counter("pack_retired_total").add(retired_early);
    }
  }
  return results;
}

}  // namespace adsd
