#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "ising/stop.hpp"
#include "support/aligned.hpp"

namespace adsd {

class RunContext;
class TelemetrySink;

/// Mutable view of one replica inside an SoA ensemble engine's
/// replica-contiguous state: element i of the replica lives at offset
/// i * stride. Intervention hooks (the Theorem-3 reset of Sec. 3.3.2) read
/// and write oscillators through this view directly, so no O(n * R)
/// gather/scatter copy is needed per sampling point.
class ReplicaView {
 public:
  ReplicaView(double* x, double* y, std::size_t n, std::size_t stride)
      : x_(x), y_(y), n_(n), stride_(stride) {}

  std::size_t size() const { return n_; }
  std::size_t stride() const { return stride_; }

  double& x(std::size_t i) { return x_[i * stride_]; }
  double x(std::size_t i) const { return x_[i * stride_]; }
  double& y(std::size_t i) { return y_[i * stride_]; }
  double y(std::size_t i) const { return y_[i * stride_]; }

 private:
  double* x_;
  double* y_;
  std::size_t n_;
  std::size_t stride_;
};

/// Per-replica intervention hook; called at every sampling point with the
/// replica index and a strided view of its state.
using SbBatchHook = std::function<void(std::size_t replica, ReplicaView view)>;

/// Whole-ensemble intervention hook: called once per sampling point with
/// the raw SoA position/momentum planes (element i of replica r at index
/// i * replicas + r). Batched interventions (the plane-based Theorem-3
/// reset) use this to sweep all replicas with replica-contiguous inner
/// loops instead of R strided passes. Momentum-free engines (SimCIM) hand
/// a scratch plane as y; velocity-based engines (DOCH) hand the velocity.
using SbBatchPlaneHook = std::function<void(
    std::span<double> x, std::span<double> y, std::size_t replicas)>;

/// Flattened CSR adjacency of one Ising model: separate column-index and
/// weight planes (no interleaved pairs), 64-byte aligned, plus the bias
/// vector — the layout every SoA ensemble engine streams in its force
/// pass and the incremental-energy tracker walks per flip.
struct CsrPlanes {
  std::vector<std::size_t> row_start;  // n + 1
  AlignedVector<std::uint32_t> cols;
  AlignedVector<double> weights;
  AlignedVector<double> h;
};

/// Flattens a finalized model's adjacency into CsrPlanes.
CsrPlanes flatten_csr(const IsingModel& model);

/// The standard coupling normalization 0.5 * detuning / (rms(J) * sqrt(n))
/// shared by bSB (c0) and SimCIM (zeta); 1.0 for coupling-free models.
double default_coupling_strength(const IsingModel& model, double detuning);

/// Incremental sign/energy tracking for an ensemble of R replicas over one
/// model: tracks the sign vector and energy of every replica and, at each
/// sampling point, updates energies by the exact flip telescope in
/// O(flipped spins * degree) instead of recomputing O(edges) per replica
/// (invariant: tracked energy equals IsingModel::energy() of the tracked
/// signs up to accumulation rounding). When a replica's tracked energy
/// threatens the incumbent, the energy is recomputed from scratch once and
/// the tracked value snapped to it, so the reported best is always a
/// from-scratch IsingModel::energy() value.
class EnsembleEnergyTracker {
 public:
  /// Captures signs/energies from the initial positions. The model and
  /// CSR planes must outlive the tracker.
  void init(const IsingModel& model, const CsrPlanes& csr,
            std::span<const double> x, std::size_t replicas);

  /// Refreshes the tracked signs and per-replica energies from the current
  /// positions via incremental flip updates. Call after external position
  /// edits (hooks) and before reading energies()/spins().
  void sample(std::span<const double> x);

  /// Folds any replica that improves on result.energy into `result`
  /// (recomputing threatened energies from scratch first) and returns the
  /// ensemble-best tracked energy.
  double consider_all(IsingSolveResult& result);

  /// From-scratch energy of replica r (also used to seed the tracker).
  double exact_energy(std::size_t r);

  void copy_replica_spins(std::size_t r, std::vector<std::int8_t>& out) const;

  std::span<const double> energies() const { return energies_; }
  std::span<const std::int8_t> spins() const { return spins_; }

 private:
  void flip(std::size_t i, std::size_t r, std::int8_t new_sign);

  const IsingModel* model_ = nullptr;
  const CsrPlanes* csr_ = nullptr;
  std::size_t n_ = 0;
  std::size_t R_ = 0;
  AlignedVector<std::int8_t> spins_;        // n * R
  std::vector<double> energies_;            // R
  std::vector<std::uint8_t> dirty_;         // R: flips since last sync
  std::vector<std::int8_t> scratch_spins_;  // n, gather buffer
};

/// Engine-agnostic contract of one Ising solve (DESIGN.md §4.8).
///
/// The sweep driver run_engine() owns the scaffolding that bSB, SA, and
/// every new engine used to reimplement — the entry deadline check,
/// sampling points, the dynamic-stop window, the budget-aware iteration
/// rescale, best-solution tracking, and telemetry/trace/QoR emission —
/// while the engine contributes only its dynamics (advance) and its
/// sampling-point measurement (observe). Counter/span names are composed
/// from telemetry_prefix()/trace_prefix(), so the rehosted engines keep
/// their historical names ("ising/sb/*" counters, "ising/bsb/*" traces)
/// bit-for-bit.
class IsingEngine {
 public:
  virtual ~IsingEngine() = default;

  /// Attaches an execution context (must outlive the engine; nullptr
  /// detaches). With a context the driver honors the deadline, emits
  /// telemetry/trace/QoR, and engines may shard work over ctx->pool().
  void set_context(const RunContext* ctx) { ctx_ = ctx; }
  const RunContext* context() const { return ctx_; }

  /// Telemetry counter namespace ("ising/sb", "ising/sa", ...).
  virtual const char* telemetry_prefix() const = 0;

  /// Trace span/instant namespace ("ising/bsb" keeps the historical bSB
  /// trace names; new engines use their own).
  virtual const char* trace_prefix() const = 0;

  /// QoR convergence-curve name; only called with recording armed.
  virtual std::string curve_name() const = 0;

  /// Resolved force-kernel label for the metrics `kernel=` dimension
  /// ("scalar", "avx2", "dense-avx512", ...); "none" for engines without a
  /// dispatched kernel (the scalar-sweep SA engine).
  virtual const char* kernel_label() const { return "none"; }

  /// Iteration cap; re-read by the driver every iteration because the
  /// budget rescale may shrink it mid-run.
  virtual std::size_t max_iterations() const = 0;

  /// Iterations between sampling points (>= 1).
  virtual std::size_t sample_interval() const = 0;

  virtual const DynamicStopParams& stop_params() const = 0;

  /// Engines with a pump ramp (or any benefit from completing a shortened
  /// schedule) opt into the budget-aware rescale; apply_budget_rescale
  /// must make max_iterations() return the new cap.
  virtual bool supports_budget_rescale() const { return false; }
  virtual void apply_budget_rescale(std::size_t /*max_iterations*/) {}

  /// Seeds `result` with the engine's initial solution (pre-loop state).
  virtual void begin(IsingSolveResult& result) = 0;

  /// One-shot per-run emissions after the entry-deadline check passed (the
  /// SoA engines report the resolved force kernel here).
  virtual void on_run_start() {}

  /// One integration step / sweep; `iter` is the 0-based loop counter.
  virtual void advance(std::size_t iter) = 0;

  /// Sampling point: apply hooks, refresh energies, fold improvements into
  /// `result`, and return the scalar the dynamic-stop monitor observes.
  virtual double observe(IsingSolveResult& result) = 0;

  /// Final sampling pass after the loop exits.
  virtual void finish(IsingSolveResult& /*result*/) {}

  /// End-of-run totals ("ising/sb/steps", "ising/sa/sweeps", ...); only
  /// called with a context attached.
  virtual void record_totals(TelemetrySink& sink, std::size_t iterations,
                             std::size_t energy_samples) const = 0;

 protected:
  const RunContext* ctx_ = nullptr;
};

/// The shared sweep driver: integration loop, sampling points, dynamic
/// stop, deadline checks (at entry and at sampling points), one-time
/// budget-aware iteration rescale, convergence trace/QoR curve, and the
/// end-of-run totals — extracted verbatim from the pre-refactor
/// BsbBatchEngine::run() so the rehosted engines stay bit-identical.
IsingSolveResult run_engine(IsingEngine& engine);

/// Shared chassis of the SoA lockstep ensemble engines (bSB, SimCIM,
/// DOCH): replica-contiguous position/secondary/force planes, the
/// flattened CSR adjacency, a dispatched force kernel (with row sharding
/// over the context pool), incremental energy tracking, and the
/// sampling-point hook application. Derived engines implement the
/// dynamics (advance) over the shared planes and their parameter plumbing;
/// everything else — begin/observe/finish, hook dispatch, kernel
/// reporting — is inherited.
class EnsembleEngineBase : public IsingEngine {
 public:
  std::size_t num_spins() const { return n_; }
  std::size_t replicas() const { return R_; }

  /// Resolved force-kernel name ("scalar", "avx2", "avx512",
  /// "dense-avx512", ...) after dispatch walked the fallback chain.
  const char* kernel_name() const { return kernel_.name; }
  const char* kernel_label() const override { return kernel_.name; }

  /// Resolved force-kernel kind (never kAuto).
  kernels::ForceKernel kernel_kind() const { return kernel_.kind; }

  /// Force evaluation alone (fills the internal force plane from the
  /// current force-input plane); exposed for the micro-benchmarks.
  void compute_forces();

  /// Refreshes the tracked signs and per-replica energies from the current
  /// positions. Call after external position edits (hooks) and before
  /// reading energies()/spins().
  void sample() { tracker_.sample(x_); }

  /// Tracked per-replica energies (valid after sample()).
  std::span<const double> energies() const { return tracker_.energies(); }

  /// Tracked signs, SoA layout: spins()[i * R + r] (valid after sample()).
  std::span<const std::int8_t> spins() const { return tracker_.spins(); }

  /// Strided state view of replica r.
  ReplicaView view(std::size_t r) {
    return ReplicaView(x_.data() + r, y_.data() + r, n_, R_);
  }

  /// Raw SoA planes (size n * R), for hooks/benchmarks/tests. The y plane
  /// is the engine's secondary state: bSB momenta, DOCH velocities, a
  /// hook scratch plane for the momentum-free SimCIM.
  std::span<double> positions() { return x_; }
  std::span<double> momenta() { return y_; }
  std::span<const double> forces() const { return force_; }

  /// Full solve loop through the shared driver. At each sampling point
  /// `plane_hook` (if any) runs first over the whole ensemble, then `hook`
  /// per replica. `iterations` of the result counts steps of one replica —
  /// callers scale by replicas() if they want the ensemble total.
  IsingSolveResult run(const SbBatchHook& hook = nullptr,
                       const SbBatchPlaneHook& plane_hook = nullptr);

  // IsingEngine scaffolding shared by every SoA engine.
  void begin(IsingSolveResult& result) override;
  void on_run_start() override;
  double observe(IsingSolveResult& result) override;
  void finish(IsingSolveResult& result) override;

 protected:
  /// Flattens the model, resolves the force kernel (honoring `requested`
  /// against CPU features and dense-plane availability), and allocates the
  /// zero-filled x/y/force planes. `label` prefixes validation messages.
  EnsembleEngineBase(const IsingModel& model, std::size_t replicas,
                     kernels::ForceKernel requested, bool discrete,
                     const char* label);

  /// Captures tracker signs/energies from x_; call at the end of the
  /// derived constructor, after the initial positions are in place.
  void init_tracker() { tracker_.init(model_, csr_, x_, R_); }

  /// Repoints the force kernel's input plane (DOCH evaluates the force at
  /// the momentum-lookahead point z rather than at x).
  void set_force_input(const double* x) { planes_.x = x; }

  const IsingModel& model_;
  std::size_t n_;
  std::size_t R_;
  CsrPlanes csr_;
  kernels::SelectedForceKernel kernel_;
  kernels::ForceRowsFn force_fn_ = nullptr;  // continuous or discrete entry
  kernels::ForcePlanes planes_;
  AlignedVector<double> x_;      // n * R positions
  AlignedVector<double> y_;      // n * R secondary state
  AlignedVector<double> force_;  // n * R force output
  EnsembleEnergyTracker tracker_;
  SbBatchHook hook_;
  SbBatchPlaneHook plane_hook_;
};

}  // namespace adsd
