#include "ising/sa.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "support/run_context.hpp"
#include "support/telemetry.hpp"

namespace adsd {

SaEngine::SaEngine(const IsingModel& model, const SaParams& params)
    : model_(model),
      params_(params),
      n_(model.num_spins()),
      rng_(params.seed) {
  if (!model.finalized()) {
    throw std::invalid_argument("SaEngine: model must be finalized");
  }
  if (params.sweeps == 0 || params.beta_start <= 0.0 ||
      params.beta_end < params.beta_start) {
    throw std::invalid_argument("SaEngine: bad parameters");
  }

  spins_.resize(n_);
  for (auto& s : spins_) {
    s = static_cast<std::int8_t>(rng_.next_spin());
  }
  energy_ = model.energy(spins_);

  ratio_ = params_.sweeps > 1
               ? std::pow(params_.beta_end / params_.beta_start,
                          1.0 / static_cast<double>(params_.sweeps - 1))
               : 1.0;
  beta_ = params_.beta_start;
}

std::string SaEngine::curve_name() const {
  return "ising/sa/n" + std::to_string(n_);
}

void SaEngine::begin(IsingSolveResult& result) {
  result.spins = spins_;
  result.energy = energy_;
}

void SaEngine::advance(std::size_t iter) {
  // The historical loop multiplied beta at the *end* of every non-stopping
  // sweep; advancing it at the start of every sweep but the first walks
  // the identical schedule (sweep j runs at beta_start * ratio^j).
  if (iter > 0) {
    beta_ *= ratio_;
  }
  for (std::size_t i = 0; i < n_; ++i) {
    const double delta = model_.flip_delta(spins_, i);
    if (delta <= 0.0 || rng_.next_double() < std::exp(-beta_ * delta)) {
      spins_[i] = static_cast<std::int8_t>(-spins_[i]);
      energy_ += delta;
    }
  }
}

double SaEngine::observe(IsingSolveResult& result) {
  if (energy_ < result.energy) {
    result.energy = energy_;
    result.spins = spins_;
  }
  // The dynamic-stop window watches the *current* (not best) energy, as the
  // historical solver did: a plateaued random walk stops even when the best
  // was found long ago.
  return energy_;
}

void SaEngine::record_totals(TelemetrySink& sink, std::size_t iterations,
                             std::size_t /*energy_samples*/) const {
  sink.add("ising/sa/sweeps", iterations);
}

IsingSolveResult solve_sa(const IsingModel& model, const SaParams& params,
                          const RunContext* ctx) {
  SaEngine engine(model, params);
  engine.set_context(ctx);
  return run_engine(engine);
}

}  // namespace adsd
