#include "ising/sa.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {

IsingSolveResult solve_sa(const IsingModel& model, const SaParams& params,
                          const RunContext* ctx) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sa: model must be finalized");
  }
  if (params.sweeps == 0 || params.beta_start <= 0.0 ||
      params.beta_end < params.beta_start) {
    throw std::invalid_argument("solve_sa: bad parameters");
  }

  const std::size_t n = model.num_spins();
  Rng rng(params.seed);

  std::vector<std::int8_t> spins(n);
  for (auto& s : spins) {
    s = static_cast<std::int8_t>(rng.next_spin());
  }
  double energy = model.energy(spins);

  IsingSolveResult result;
  result.spins = spins;
  result.energy = energy;

  DynamicStopMonitor monitor(params.stop);
  const double ratio =
      params.sweeps > 1 ? std::pow(params.beta_end / params.beta_start,
                                   1.0 / static_cast<double>(params.sweeps - 1))
                        : 1.0;
  double beta = params.beta_start;

  std::size_t sweep = 0;
  for (; sweep < params.sweeps; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = model.flip_delta(spins, i);
      if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
        spins[i] = static_cast<std::int8_t>(-spins[i]);
        energy += delta;
      }
    }
    if (energy < result.energy) {
      result.energy = energy;
      result.spins = spins;
    }
    if (monitor.observe(energy) || (ctx != nullptr && ctx->expired())) {
      result.stopped_early = true;
      ++sweep;
      break;
    }
    beta *= ratio;
  }

  result.iterations = sweep;
  if (ctx != nullptr) {
    ctx->telemetry().add("ising/sa/sweeps", sweep);
  }
  return result;
}

}  // namespace adsd
