#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ising/model.hpp"

namespace adsd {

/// Quadratic unconstrained binary optimization problem
///
///   minimize  f(x) = sum_i q_i x_i + sum_{i<j} Q_{i,j} x_i x_j + constant,
///   x_i in {0, 1}.
///
/// Binary formulations (like the column-based core COP before the spin
/// substitution of Eq. (8)) are naturally QUBOs; `to_ising()` applies the
/// x = (sigma + 1) / 2 transform and tracks the constant so that QUBO
/// objective values and Ising energies agree exactly.
class Qubo {
 public:
  explicit Qubo(std::size_t num_vars);

  std::size_t num_vars() const { return n_; }

  void add_linear(std::size_t i, double c);
  void add_quadratic(std::size_t i, std::size_t j, double c);  // i != j
  void add_constant(double c) { constant_ += c; }

  double linear(std::size_t i) const { return linear_[i]; }
  double constant() const { return constant_; }

  /// Objective value for a full assignment.
  double value(std::span<const std::uint8_t> x) const;

  /// Equivalent Ising model (energies equal objective values for
  /// corresponding assignments x_i = (sigma_i + 1) / 2). The result is
  /// finalized.
  IsingModel to_ising() const;

  /// Binary assignment corresponding to a spin vector.
  static std::vector<std::uint8_t> spins_to_binary(
      std::span<const std::int8_t> spins);

 private:
  std::size_t n_;
  std::vector<double> linear_;
  struct Quad {
    std::uint32_t i;
    std::uint32_t j;
    double value;
  };
  std::vector<Quad> quads_;
  double constant_ = 0.0;
};

}  // namespace adsd
