#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

namespace adsd {

/// Higher-order Ising model (a PUBO over spin variables):
///
///   E(sigma) = constant + sum_t coeff_t * prod_{i in vars_t} sigma_i,
///
/// with sigma_i in {-1, +1}. Order-1 and order-2 terms recover Eq. (1) (up
/// to sign convention: here terms enter E directly, with no leading minus).
///
/// The paper's Sec. 3.1 observes that the *row-based* core COP needs a
/// third-order model, which motivated the column-based reformulation; this
/// class, together with solve_sb_poly(), reproduces that road-not-taken so
/// the claim can be measured (see bench/ablation_order and
/// core/row_cubic_cop).
class PolyIsingModel {
 public:
  explicit PolyIsingModel(std::size_t num_spins);

  std::size_t num_spins() const { return n_; }

  /// Adds coeff * prod sigma_{vars}. Repeated variables cancel pairwise
  /// (sigma^2 = 1). An empty (or fully cancelled) product folds into the
  /// constant.
  void add_term(std::vector<std::size_t> vars, double coeff);

  void add_constant(double c) { constant_ += c; }
  double constant() const { return constant_; }

  /// Merges duplicate terms, drops zeros, and builds the per-variable
  /// incidence index. Required before energy/gradient/flip_delta.
  void finalize();
  bool finalized() const { return finalized_; }

  std::size_t num_terms() const { return terms_.size(); }

  /// Highest term order present (0 if only the constant).
  std::size_t max_order() const;

  /// E(sigma) (requires finalize()).
  double energy(std::span<const std::int8_t> spins) const;

  /// out[i] = dE/dx_i evaluated on continuous positions x: for each term
  /// containing i, coeff * prod_{j != i} x_j. The SB force is -out[i].
  void gradient(std::span<const double> x, std::span<double> out) const;

  /// Same, with every other factor replaced by its sign (dSB variant).
  void gradient_signed(std::span<const double> x,
                       std::span<double> out) const;

  /// Energy change of flipping spin i (requires finalize()).
  double flip_delta(std::span<const std::int8_t> spins, std::size_t i) const;

  /// Root-mean-square coefficient over non-constant terms (c0 scaling).
  double coeff_rms() const;

 private:
  struct Term {
    std::vector<std::uint32_t> vars;  // sorted, unique
    double coeff;
  };

  std::size_t n_;
  double constant_ = 0.0;
  std::vector<Term> terms_;
  bool finalized_ = false;

  // incidence_[i] lists indices of terms containing spin i.
  std::vector<std::vector<std::uint32_t>> incidence_;
};

/// Multilinear polynomial over spin variables used to *build* higher-order
/// models symbolically: supports sum and product with automatic sigma^2 = 1
/// reduction. Key = sorted variable set, value = coefficient.
class SpinPoly {
 public:
  SpinPoly() = default;

  /// The constant polynomial c.
  static SpinPoly constant(double c);

  /// The single-variable polynomial sigma_i.
  static SpinPoly variable(std::size_t i);

  /// The binary indicator (sigma_i + 1) / 2 in {0, 1}.
  static SpinPoly binary(std::size_t i);

  SpinPoly& operator+=(const SpinPoly& other);
  SpinPoly& operator-=(const SpinPoly& other);
  SpinPoly& operator*=(const SpinPoly& other);
  SpinPoly operator+(const SpinPoly& other) const;
  SpinPoly operator-(const SpinPoly& other) const;
  SpinPoly operator*(const SpinPoly& other) const;
  SpinPoly& scale(double k);

  /// Value under a full spin assignment.
  double evaluate(std::span<const std::int8_t> spins) const;

  /// Adds every term (scaled by `scale`) into a model.
  void add_to(PolyIsingModel& model, double scale = 1.0) const;

  std::size_t num_terms() const { return terms_.size(); }

  const std::map<std::vector<std::uint32_t>, double>& terms() const {
    return terms_;
  }

 private:
  // Invariant: keys sorted and duplicate-free; zero coefficients erased.
  std::map<std::vector<std::uint32_t>, double> terms_;
};

}  // namespace adsd
