#include "ising/bsb_batch.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "support/rng.hpp"
#include "support/run_context.hpp"
#include "support/telemetry.hpp"

namespace adsd {

BsbBatchEngine::BsbBatchEngine(const IsingModel& model, const SbParams& params,
                               std::size_t replicas)
    : EnsembleEngineBase(model, replicas, params.kernel, params.discrete,
                         "BsbBatchEngine"),
      params_(params) {
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("BsbBatchEngine: bad parameters");
  }
  if (!params.initial_positions.empty() &&
      params.initial_positions.size() != n_) {
    throw std::invalid_argument("BsbBatchEngine: initial_positions size");
  }

  c0_ = params.c0;
  if (c0_ <= 0.0) {
    c0_ = default_coupling_strength(model, params.detuning);
  }

  // Replica-contiguous state; replica r reproduces the scalar reference with
  // seed params.seed + r * 0x9e3779b9 (same draw order: x first, then the
  // momenta sweep).
  for (std::size_t r = 0; r < R_; ++r) {
    Rng rng(params_.seed + 0x9e3779b9u * r);
    if (!params_.initial_positions.empty()) {
      for (std::size_t i = 0; i < n_; ++i) {
        x_[i * R_ + r] = params_.initial_positions[i];
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      y_[i * R_ + r] = rng.next_double(-0.1, 0.1);
    }
  }

  init_tracker();
}

void BsbBatchEngine::step() {
  const auto total = static_cast<double>(params_.max_iterations);
  // Same ramp expression as the scalar reference (bit-for-bit parity).
  const double a =
      params_.detuning * (static_cast<double>(step_) + 1.0) / total;
  const double stiffness = params_.detuning - a;

  compute_forces();

  const double dt = params_.dt;
  const double detuning = params_.detuning;
  const std::size_t total_lanes = n_ * R_;
  for (std::size_t k = 0; k < total_lanes; ++k) {
    y_[k] += dt * (-stiffness * x_[k] + c0_ * force_[k]);
    const double xk = x_[k] + dt * detuning * y_[k];
    // Branchless inelastic walls: clamp x to [-1, 1] and zero the momentum
    // of any lane that hit a wall (select, not branch, so the loop
    // vectorizes).
    const double lo = xk < -1.0 ? -1.0 : xk;
    const double clamped = lo > 1.0 ? 1.0 : lo;
    y_[k] = clamped == xk ? y_[k] : 0.0;
    x_[k] = clamped;
  }
  ++step_;
}

std::string BsbBatchEngine::curve_name() const {
  return "ising/bsb/n" + std::to_string(n_) + "_R" + std::to_string(R_);
}

std::size_t BsbBatchEngine::sample_interval() const {
  return params_.stop.sample_interval > 0 ? params_.stop.sample_interval : 10;
}

void BsbBatchEngine::record_totals(TelemetrySink& sink, std::size_t iterations,
                                   std::size_t energy_samples) const {
  sink.add("ising/sb/steps", iterations);
  sink.add("ising/sb/replica_steps", iterations * R_);
  sink.add("ising/sb/energy_samples", energy_samples);
}

IsingSolveResult solve_sb_batch(const IsingModel& model, const SbParams& params,
                                std::size_t replicas, const SbBatchHook& hook,
                                const SbBatchPlaneHook& plane_hook,
                                const RunContext* ctx) {
  BsbBatchEngine engine(model, params, replicas);
  engine.set_context(ctx);
  IsingSolveResult result = engine.run(hook, plane_hook);
  result.iterations *= replicas;
  return result;
}

}  // namespace adsd
