#include "ising/bsb_batch.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "ising/stop.hpp"
#include "support/cpu_features.hpp"
#include "support/rng.hpp"
#include "support/run_context.hpp"
#include "support/thread_pool.hpp"

namespace adsd {

namespace {

// Minimum n * R before force evaluation is sharded across the pool: below
// this the whole kernel runs in a few microseconds and chunk dispatch would
// dominate (the batched kernel streams ~2.6 G lanes/s single-threaded).
constexpr std::size_t kForceShardMinLanes = 8192;

}  // namespace

BsbBatchEngine::BsbBatchEngine(const IsingModel& model, const SbParams& params,
                               std::size_t replicas)
    : model_(model), params_(params), n_(model.num_spins()), R_(replicas) {
  if (!model.finalized()) {
    throw std::invalid_argument("BsbBatchEngine: model must be finalized");
  }
  if (replicas == 0) {
    throw std::invalid_argument("BsbBatchEngine: need >= 1 replica");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("BsbBatchEngine: bad parameters");
  }
  if (!params.initial_positions.empty() &&
      params.initial_positions.size() != n_) {
    throw std::invalid_argument("BsbBatchEngine: initial_positions size");
  }

  c0_ = params.c0;
  if (c0_ <= 0.0) {
    const double rms = model.coupling_rms();
    c0_ = rms > 0.0 ? 0.5 * params.detuning /
                          (rms * std::sqrt(static_cast<double>(n_)))
                    : 1.0;
  }

  // Flatten the CSR adjacency into separate index/weight planes so the hot
  // loop streams two homogeneous arrays instead of interleaved pairs.
  row_start_.assign(n_ + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n_; ++i) {
    nnz += model.neighbors(i).size();
    row_start_[i + 1] = nnz;
  }
  cols_.resize(nnz);
  weights_.resize(nnz);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t e = row_start_[i];
    for (const auto& [j, w] : model.neighbors(i)) {
      cols_[e] = j;
      weights_[e] = w;
      ++e;
    }
  }
  h_.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    h_[i] = model.bias(i);
  }

  // Resolve the force kernel once: cpuid-probed ISA tier, dense fast path
  // when the model materialized a plane, explicit override via
  // params.kernel. The dispatch never fails — unsupported requests walk
  // the fallback chain (avx512 -> avx2 -> scalar, dense -> CSR).
  kernel_ = kernels::select_force_kernel(params_.kernel, cpu_features(),
                                         model.has_dense_plane());
  force_fn_ = params_.discrete ? kernel_.discrete : kernel_.continuous;
  planes_ = kernels::ForcePlanes{};
  planes_.h = h_.data();
  planes_.row_start = row_start_.data();
  planes_.cols = cols_.data();
  planes_.weights = weights_.data();
  if (kernel_.kind == kernels::ForceKernel::kDense) {
    planes_.dense = model.dense_plane().data();
    planes_.dense_stride = model.dense_stride();
  }
  planes_.n = n_;
  planes_.replicas = R_;

  // Replica-contiguous state; replica r reproduces the scalar reference with
  // seed params.seed + r * 0x9e3779b9 (same draw order: x first, then the
  // momenta sweep).
  x_.assign(n_ * R_, 0.0);
  y_.assign(n_ * R_, 0.0);
  force_.assign(n_ * R_, 0.0);
  planes_.x = x_.data();
  planes_.force = force_.data();
  for (std::size_t r = 0; r < R_; ++r) {
    Rng rng(params_.seed + 0x9e3779b9u * r);
    if (!params_.initial_positions.empty()) {
      for (std::size_t i = 0; i < n_; ++i) {
        x_[i * R_ + r] = params_.initial_positions[i];
      }
    }
    for (std::size_t i = 0; i < n_; ++i) {
      y_[i * R_ + r] = rng.next_double(-0.1, 0.1);
    }
  }

  spins_.resize(n_ * R_);
  for (std::size_t k = 0; k < n_ * R_; ++k) {
    spins_[k] = x_[k] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
  }
  scratch_spins_.resize(n_);
  energies_.resize(R_);
  for (std::size_t r = 0; r < R_; ++r) {
    energies_[r] = exact_energy(r);
  }
  // Tracked energies start as from-scratch values, so every replica is in
  // sync with IsingModel::energy() until the first flip.
  dirty_.assign(R_, 0);
}

void BsbBatchEngine::compute_forces() {
  // The dispatched kernel fills force rows [begin, end); rows are
  // independent (each writes only force_[i * R + ...]), so sharding across
  // the pool produces bit-identical planes in any interleaving. Every
  // kernel preserves the per-lane per-edge accumulation order of the
  // scalar reference (see ising/kernels/force_kernels.hpp), which is what
  // keeps replica trajectories bit-identical to solve_sb_scalar.
  if (ctx_ != nullptr && ctx_->parallel() && n_ * R_ >= kForceShardMinLanes) {
    ThreadPool& pool = ctx_->pool();
    if (pool.thread_count() > 1) {
      // A nested call from inside DALTA's parallel_for runs inline via the
      // pool's nesting guard — same code path, no oversubscription.
      pool.parallel_for_chunks(
          n_, 0, [this](std::size_t begin, std::size_t end) {
            force_fn_(planes_, begin, end);
          });
      return;
    }
  }
  force_fn_(planes_, 0, n_);
}

void BsbBatchEngine::step() {
  const auto total = static_cast<double>(params_.max_iterations);
  // Same ramp expression as the scalar reference (bit-for-bit parity).
  const double a =
      params_.detuning * (static_cast<double>(step_) + 1.0) / total;
  const double stiffness = params_.detuning - a;

  compute_forces();

  const double dt = params_.dt;
  const double detuning = params_.detuning;
  const std::size_t total_lanes = n_ * R_;
  for (std::size_t k = 0; k < total_lanes; ++k) {
    y_[k] += dt * (-stiffness * x_[k] + c0_ * force_[k]);
    const double xk = x_[k] + dt * detuning * y_[k];
    // Branchless inelastic walls: clamp x to [-1, 1] and zero the momentum
    // of any lane that hit a wall (select, not branch, so the loop
    // vectorizes).
    const double lo = xk < -1.0 ? -1.0 : xk;
    const double clamped = lo > 1.0 ? 1.0 : lo;
    y_[k] = clamped == xk ? y_[k] : 0.0;
    x_[k] = clamped;
  }
  ++step_;
}

void BsbBatchEngine::flip(std::size_t i, std::size_t r, std::int8_t new_sign) {
  // Exact flip telescope: the energy delta of flipping spin i is
  // 2 * s_i * (h_i + sum_j J_ij s_j) with the *current* tracked signs, so
  // applying flips one at a time keeps the tracked energy equal to a full
  // recomputation (up to accumulation rounding).
  const std::int8_t old_sign = spins_[i * R_ + r];
  double field = h_[i];
  for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e) {
    field += weights_[e] *
             static_cast<double>(
                 spins_[static_cast<std::size_t>(cols_[e]) * R_ + r]);
  }
  energies_[r] += 2.0 * static_cast<double>(old_sign) * field;
  spins_[i * R_ + r] = new_sign;
  dirty_[r] = 1;
}

void BsbBatchEngine::sample() {
  const std::size_t R = R_;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* xi = &x_[i * R];
    const std::int8_t* si = &spins_[i * R];
    for (std::size_t r = 0; r < R; ++r) {
      const std::int8_t ns = xi[r] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
      if (ns != si[r]) {
        flip(i, r, ns);
      }
    }
  }
}

double BsbBatchEngine::exact_energy(std::size_t r) {
  copy_replica_spins(r, scratch_spins_);
  return model_.energy(scratch_spins_);
}

void BsbBatchEngine::copy_replica_spins(std::size_t r,
                                        std::vector<std::int8_t>& out) const {
  out.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = spins_[i * R_ + r];
  }
}

IsingSolveResult BsbBatchEngine::run(const SbBatchHook& hook,
                                     const SbBatchPlaneHook& plane_hook) {
  Timer run_timer;
  IsingSolveResult result;
  copy_replica_spins(0, result.spins);
  result.energy = energies_[0];

  // Deadline-at-entry: a run started after the context deadline already
  // expired (a restart boundary of an anytime solver looping tiny solves)
  // must not burn a whole pump ramp before the first sampling point
  // notices. Returns the initial state, flagged as an early stop.
  if (ctx_ != nullptr && ctx_->expired()) {
    result.stopped_early = true;
    ctx_->telemetry().add("ising/sb/deadline_hits");
    trace_instant(ctx_->tracer(), "ising/bsb/deadline_hit");
    return result;
  }

  const std::size_t sample_every =
      params_.stop.sample_interval > 0 ? params_.stop.sample_interval : 10;
  DynamicStopMonitor monitor(params_.stop);

  // Convergence trace: the ensemble-best energy trajectory and the dynamic
  // stop's variance reading at every sampling point, plus an instant for
  // why the run ended. Recording only reads solver state, so traced runs
  // stay bit-identical to untraced ones.
  TraceRecorder* tracer = ctx_ != nullptr ? ctx_->tracer() : nullptr;
  const TraceSpan run_span(tracer, "ising/bsb/run");
  std::size_t energy_samples = 0;

  // Best-energy-vs-iteration curve for the QoR export. The name is built
  // only when recording is armed; the off path is the pointer test alone.
  QorRecorder* qor = ctx_ != nullptr ? ctx_->qor() : nullptr;
  std::uint64_t curve_id = 0;
  if (qor != nullptr) {
    curve_id = qor->begin_curve("ising/bsb/n" + std::to_string(n_) + "_R" +
                                std::to_string(R_));
  }
  // Report which force kernel dispatch resolved to, so run reports and QoR
  // records show whether the SIMD / dense fast path was actually taken.
  if (ctx_ != nullptr) {
    const std::string kernel_counter =
        std::string("ising/sb/kernel/") + kernel_.name;
    ctx_->telemetry().add(kernel_counter);
    if (qor != nullptr) {
      qor->add(kernel_counter);
    }
  }
  bool budget_checked = false;

  // A replica's tracked energy can drift from the from-scratch value only by
  // flip-accumulation rounding (~1e-15 relative), so a tracked energy within
  // this slack of the incumbent triggers one exact recomputation; everything
  // else is filtered in O(1). The recomputed value is snapped back into the
  // tracker, which also re-synchronizes the drift.
  auto consider_all = [&] {
    double best_now = energies_[0];
    for (std::size_t r = 0; r < R_; ++r) {
      const double slack = 1e-9 + 1e-12 * std::fabs(result.energy);
      if (dirty_[r] != 0 && energies_[r] < result.energy + slack) {
        const double es = exact_energy(r);
        energies_[r] = es;
        dirty_[r] = 0;
        if (es < result.energy) {
          result.energy = es;
          copy_replica_spins(r, result.spins);
        }
      }
      best_now = std::min(best_now, energies_[r]);
    }
    return best_now;
  };

  std::size_t iter = 0;
  for (; iter < params_.max_iterations; ++iter) {
    step();
    if ((iter + 1) % sample_every == 0) {
      if (plane_hook) {
        plane_hook(positions(), momenta(), R_);
      }
      if (hook) {
        for (std::size_t r = 0; r < R_; ++r) {
          hook(r, view(r));
        }
      }
      sample();
      const double best_now = consider_all();
      ++energy_samples;
      trace_counter(tracer, "ising/bsb/best_energy", best_now);
      trace_counter(tracer, "ising/bsb/stop_variance",
                    monitor.current_variance());
      if (qor != nullptr) {
        qor->curve_point(curve_id, iter + 1, best_now);
      }

      // Budget-aware iteration rescale: when a context deadline implies
      // fewer sampling points than configured, shrink max_iterations at the
      // first sampling point (the one timing estimate available) so the
      // pump ramp completes by the deadline and a tight budget still
      // returns a polished setting instead of being truncated mid-ramp.
      // Guarded on the deadline alone — budget-less runs never take this
      // path, so fixed-seed results stay bit-identical with QoR on or off.
      if (!budget_checked) {
        budget_checked = true;
        if (ctx_ != nullptr && ctx_->deadline().budget() > 0.0) {
          const double per_step =
              run_timer.seconds() / static_cast<double>(iter + 1);
          const double remaining = ctx_->deadline().remaining();
          if (per_step > 0.0) {
            const double affordable_d =
                static_cast<double>(iter + 1) + 0.9 * remaining / per_step;
            if (affordable_d <
                static_cast<double>(params_.max_iterations)) {
              const std::size_t affordable = std::max<std::size_t>(
                  static_cast<std::size_t>(affordable_d), iter + 2);
              if (affordable < params_.max_iterations) {
                const std::size_t dropped =
                    params_.max_iterations - affordable;
                params_.max_iterations = affordable;
                ctx_->telemetry().add("ising/sb/budget_rescales");
                ctx_->telemetry().add("ising/sb/budget_rescaled_steps",
                                      dropped);
                if (qor != nullptr) {
                  qor->add("ising/sb/budget_rescales");
                  qor->sample("ising/sb/rescaled_max_iterations",
                              static_cast<double>(affordable));
                }
                trace_instant(tracer, "ising/bsb/budget_rescale");
              }
            }
          }
        }
      }

      const bool variance_stop = monitor.observe(best_now);
      const bool deadline_stop =
          !variance_stop && ctx_ != nullptr && ctx_->expired();
      if (variance_stop || deadline_stop) {
        result.stopped_early = true;
        ++iter;
        if (ctx_ != nullptr) {
          ctx_->telemetry().add(variance_stop ? "ising/sb/dynamic_stops"
                                              : "ising/sb/deadline_hits");
        }
        trace_instant(tracer, variance_stop ? "ising/bsb/dynamic_stop"
                                            : "ising/bsb/deadline_hit");
        break;
      }
    }
  }

  sample();
  consider_all();
  result.iterations = iter;
  if (ctx_ != nullptr) {
    ctx_->telemetry().add("ising/sb/steps", iter);
    ctx_->telemetry().add("ising/sb/replica_steps", iter * R_);
    ctx_->telemetry().add("ising/sb/energy_samples", energy_samples);
  }
  return result;
}

IsingSolveResult solve_sb_batch(const IsingModel& model, const SbParams& params,
                                std::size_t replicas, const SbBatchHook& hook,
                                const SbBatchPlaneHook& plane_hook,
                                const RunContext* ctx) {
  BsbBatchEngine engine(model, params, replicas);
  engine.set_context(ctx);
  IsingSolveResult result = engine.run(hook, plane_hook);
  result.iterations *= replicas;
  return result;
}

}  // namespace adsd
