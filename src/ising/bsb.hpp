#pragma once

#include <functional>
#include <span>
#include <vector>

#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "ising/stop.hpp"
#include "support/rng.hpp"

namespace adsd {

/// Parameters for the simulated-bifurcation solvers.
struct SbParams {
  /// Hard iteration cap for the Euler integration.
  std::size_t max_iterations = 1000;

  /// Euler time step.
  double dt = 0.5;

  /// Detuning Delta (the positive Kerr-free oscillator frequency); the
  /// pumping amplitude a(t) ramps linearly from 0 to this value.
  double detuning = 1.0;

  /// Coupling strength c0; 0 selects the standard normalization
  /// 0.5 * Delta / (rms(J) * sqrt(N)).
  double c0 = 0.0;

  /// Seed for the random initial momenta.
  std::uint64_t seed = 1;

  /// Optional initial oscillator positions (size must equal the spin
  /// count). Empty selects the standard all-zero start. Problems with exact
  /// spin-exchange symmetries (like the V1 <-> V2 symmetry of the
  /// column-based core COP) need an asymmetric start: the zero start makes
  /// symmetric oscillators follow identical mean-field trajectories and the
  /// walls then lock in a symmetry-collapsed (degenerate) solution.
  std::vector<double> initial_positions;

  /// dSB variant: forces computed from sign(x_j) instead of x_j, which
  /// suppresses analog error (Goto et al. 2021). Off = ballistic bSB, the
  /// solver the paper uses.
  bool discrete = false;

  /// Force-kernel variant for the batched engine (registry key `kernel=`,
  /// CLI `--kernel`). kAuto picks the dense fast path when the model
  /// materialized a dense plane and otherwise the widest explicit-SIMD
  /// CSR kernel the CPU supports; every variant is bit-identical (see
  /// ising/kernels/force_kernels.hpp).
  kernels::ForceKernel kernel = kernels::ForceKernel::kAuto;

  /// Dynamic stop criterion (Sec. 3.3.1). When disabled the solver still
  /// samples every `stop.sample_interval` iterations to track the best
  /// solution and to run the intervention hook.
  DynamicStopParams stop{};
};

/// Called at every sampling point with the mutable oscillator positions and
/// momenta; the Theorem-3 heuristic of Sec. 3.3.2 plugs in here to reset the
/// column-type spins and feed the state back into the integration.
using SbSampleHook =
    std::function<void(std::span<double> positions, std::span<double> momenta)>;

class RunContext;

/// Ballistic (or discrete) simulated bifurcation on a finalized model.
/// Returns the best solution seen at any sampling point or at termination.
/// Delegates to the batched lockstep engine (ising/bsb_batch.hpp) with a
/// single replica; bit-identical to solve_sb_scalar() for the same seed.
/// A non-null `ctx` enables deadline checks and telemetry counters.
IsingSolveResult solve_sb(const IsingModel& model, const SbParams& params,
                          const SbSampleHook& hook = nullptr,
                          const RunContext* ctx = nullptr);

/// Scalar reference implementation of solve_sb (the seed implementation,
/// one replica, per-sample from-scratch energies). Kept as the ground truth
/// for the batched engine's parity tests and as the baseline of the
/// batched-vs-scalar micro-benchmarks; not used on any hot path.
IsingSolveResult solve_sb_scalar(const IsingModel& model,
                                 const SbParams& params,
                                 const SbSampleHook& hook = nullptr);

/// `replicas` independent SB trajectories integrated in lockstep: the CSR
/// coupling structure is traversed once per step with a replica-contiguous
/// inner loop, which is markedly faster than sequential restarts on models
/// with many couplings (SB's massive parallelism, Sec. 2.1, realized as
/// SIMD-friendly batching). Replica r reproduces solve_sb with seed
/// params.seed + r * 0x9e3779b9 exactly; the best replica's best solution
/// is returned. `iterations` sums Euler steps across replicas. The dynamic
/// stop is evaluated on the ensemble-best energy. Force evaluation goes
/// through the dispatched kernel layer of ising/kernels/force_kernels.hpp
/// (portable / AVX2 / AVX-512 / dense fast path, selected per CPU and
/// model at engine construction; override via SbParams::kernel). The hook
/// (if any) is applied to each replica at sampling points through a legacy
/// gather/scatter adapter — prefer solve_sb_batch() and its strided
/// SbBatchHook for new code, which avoids the per-sample copies.
IsingSolveResult solve_sb_ensemble(const IsingModel& model,
                                   const SbParams& params,
                                   std::size_t replicas,
                                   const SbSampleHook& hook = nullptr,
                                   const RunContext* ctx = nullptr);

}  // namespace adsd
