#include "ising/bsb.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace adsd {

namespace {

std::vector<std::int8_t> signs_of(std::span<const double> x) {
  std::vector<std::int8_t> s(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    s[i] = x[i] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
  }
  return s;
}

}  // namespace

IsingSolveResult solve_sb(const IsingModel& model, const SbParams& params,
                          const SbSampleHook& hook) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sb: model must be finalized");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("solve_sb: bad parameters");
  }

  const std::size_t n = model.num_spins();
  double c0 = params.c0;
  if (c0 <= 0.0) {
    const double rms = model.coupling_rms();
    c0 = rms > 0.0
             ? 0.5 * params.detuning / (rms * std::sqrt(static_cast<double>(n)))
             : 1.0;
  }

  Rng rng(params.seed);
  std::vector<double> x(n, 0.0);
  if (!params.initial_positions.empty()) {
    if (params.initial_positions.size() != n) {
      throw std::invalid_argument("solve_sb: initial_positions size");
    }
    x = params.initial_positions;
  }
  std::vector<double> y(n);
  for (double& yi : y) {
    yi = rng.next_double(-0.1, 0.1);
  }
  std::vector<double> force(n);

  const std::size_t sample_every =
      params.stop.sample_interval > 0 ? params.stop.sample_interval : 10;
  DynamicStopMonitor monitor(params.stop);

  IsingSolveResult result;
  result.spins = signs_of(x);
  result.energy = model.energy(result.spins);

  auto consider = [&](std::span<const double> positions) {
    auto spins = signs_of(positions);
    const double e = model.energy(spins);
    if (e < result.energy) {
      result.energy = e;
      result.spins = std::move(spins);
    }
    return e;
  };

  const auto total = static_cast<double>(params.max_iterations);
  std::size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    // Linear pumping ramp a(t): 0 -> detuning over the iteration budget.
    const double a =
        params.detuning * (static_cast<double>(iter) + 1.0) / total;

    if (params.discrete) {
      model.local_fields_signed(x, force);
    } else {
      model.local_fields(x, force);
    }
    const double stiffness = params.detuning - a;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += params.dt * (-stiffness * x[i] + c0 * force[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += params.dt * params.detuning * y[i];
      // Ballistic boundary: perfectly inelastic walls at +-1.
      if (x[i] > 1.0) {
        x[i] = 1.0;
        y[i] = 0.0;
      } else if (x[i] < -1.0) {
        x[i] = -1.0;
        y[i] = 0.0;
      }
    }

    if ((iter + 1) % sample_every == 0) {
      if (hook) {
        hook(std::span<double>(x), std::span<double>(y));
      }
      const double e = consider(x);
      if (monitor.observe(e)) {
        result.stopped_early = true;
        ++iter;
        break;
      }
    }
  }

  consider(x);
  result.iterations = iter;
  return result;
}

IsingSolveResult solve_sb_ensemble(const IsingModel& model,
                                   const SbParams& params,
                                   std::size_t replicas,
                                   const SbSampleHook& hook) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sb_ensemble: model must be finalized");
  }
  if (replicas == 0) {
    throw std::invalid_argument("solve_sb_ensemble: need >= 1 replica");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("solve_sb_ensemble: bad parameters");
  }

  const std::size_t n = model.num_spins();
  const std::size_t R = replicas;
  double c0 = params.c0;
  if (c0 <= 0.0) {
    const double rms = model.coupling_rms();
    c0 = rms > 0.0
             ? 0.5 * params.detuning / (rms * std::sqrt(static_cast<double>(n)))
             : 1.0;
  }

  // Replica-contiguous layout: x[i * R + r] is spin i of replica r, so the
  // coupling loop streams R consecutive doubles per neighbor access.
  std::vector<double> x(n * R, 0.0);
  std::vector<double> y(n * R);
  for (std::size_t r = 0; r < R; ++r) {
    Rng rng(params.seed + 0x9e3779b9u * r);
    if (!params.initial_positions.empty()) {
      if (params.initial_positions.size() != n) {
        throw std::invalid_argument("solve_sb_ensemble: initial_positions");
      }
      for (std::size_t i = 0; i < n; ++i) {
        x[i * R + r] = params.initial_positions[i];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      y[i * R + r] = rng.next_double(-0.1, 0.1);
    }
  }
  std::vector<double> force(n * R);
  std::vector<double> xr(n);
  std::vector<double> yr(n);
  std::vector<std::int8_t> spins(n);

  const std::size_t sample_every =
      params.stop.sample_interval > 0 ? params.stop.sample_interval : 10;
  DynamicStopMonitor monitor(params.stop);

  IsingSolveResult result;
  auto replica_energy = [&](std::size_t r) {
    for (std::size_t i = 0; i < n; ++i) {
      spins[i] = x[i * R + r] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
    }
    return model.energy(spins);
  };
  result.spins.assign(n, 1);
  result.energy = replica_energy(0);
  for (std::size_t i = 0; i < n; ++i) {
    result.spins[i] = spins[i];
  }

  auto consider_all = [&] {
    double best = 1e300;
    for (std::size_t r = 0; r < R; ++r) {
      const double e = replica_energy(r);
      best = std::min(best, e);
      if (e < result.energy) {
        result.energy = e;
        result.spins = spins;
      }
    }
    return best;
  };

  const auto total = static_cast<double>(params.max_iterations);
  std::size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    const double a =
        params.detuning * (static_cast<double>(iter) + 1.0) / total;
    const double stiffness = params.detuning - a;

    // Shared coupling traversal, replica-contiguous inner loops.
    for (std::size_t i = 0; i < n; ++i) {
      const double h = model.bias(i);
      double* fi = &force[i * R];
      for (std::size_t r = 0; r < R; ++r) {
        fi[r] = h;
      }
      for (const auto& [j, w] : model.neighbors(i)) {
        const double* xj = &x[static_cast<std::size_t>(j) * R];
        if (params.discrete) {
          for (std::size_t r = 0; r < R; ++r) {
            fi[r] += w * (xj[r] >= 0.0 ? 1.0 : -1.0);
          }
        } else {
          for (std::size_t r = 0; r < R; ++r) {
            fi[r] += w * xj[r];
          }
        }
      }
    }
    for (std::size_t k = 0; k < n * R; ++k) {
      y[k] += params.dt * (-stiffness * x[k] + c0 * force[k]);
      x[k] += params.dt * params.detuning * y[k];
      if (x[k] > 1.0) {
        x[k] = 1.0;
        y[k] = 0.0;
      } else if (x[k] < -1.0) {
        x[k] = -1.0;
        y[k] = 0.0;
      }
    }

    if ((iter + 1) % sample_every == 0) {
      if (hook) {
        for (std::size_t r = 0; r < R; ++r) {
          for (std::size_t i = 0; i < n; ++i) {
            xr[i] = x[i * R + r];
            yr[i] = y[i * R + r];
          }
          hook(std::span<double>(xr), std::span<double>(yr));
          for (std::size_t i = 0; i < n; ++i) {
            x[i * R + r] = xr[i];
            y[i * R + r] = yr[i];
          }
        }
      }
      const double best = consider_all();
      if (monitor.observe(best)) {
        result.stopped_early = true;
        ++iter;
        break;
      }
    }
  }

  consider_all();
  result.iterations = iter * R;
  return result;
}

}  // namespace adsd
