#include "ising/bsb.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "ising/bsb_batch.hpp"

namespace adsd {

namespace {

std::vector<std::int8_t> signs_of(std::span<const double> x) {
  std::vector<std::int8_t> s(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    s[i] = x[i] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
  }
  return s;
}

}  // namespace

IsingSolveResult solve_sb_scalar(const IsingModel& model,
                                 const SbParams& params,
                                 const SbSampleHook& hook) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sb: model must be finalized");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("solve_sb: bad parameters");
  }

  const std::size_t n = model.num_spins();
  double c0 = params.c0;
  if (c0 <= 0.0) {
    const double rms = model.coupling_rms();
    c0 = rms > 0.0
             ? 0.5 * params.detuning / (rms * std::sqrt(static_cast<double>(n)))
             : 1.0;
  }

  Rng rng(params.seed);
  std::vector<double> x(n, 0.0);
  if (!params.initial_positions.empty()) {
    if (params.initial_positions.size() != n) {
      throw std::invalid_argument("solve_sb: initial_positions size");
    }
    x = params.initial_positions;
  }
  std::vector<double> y(n);
  for (double& yi : y) {
    yi = rng.next_double(-0.1, 0.1);
  }
  std::vector<double> force(n);

  const std::size_t sample_every =
      params.stop.sample_interval > 0 ? params.stop.sample_interval : 10;
  DynamicStopMonitor monitor(params.stop);

  IsingSolveResult result;
  result.spins = signs_of(x);
  result.energy = model.energy(result.spins);

  // Sampling-point scratch: the sign vector is materialized into a reused
  // buffer and only copied out when it actually improves the incumbent.
  std::vector<std::int8_t> sample_spins(n);
  auto consider = [&](std::span<const double> positions) {
    for (std::size_t i = 0; i < n; ++i) {
      sample_spins[i] =
          positions[i] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
    }
    const double e = model.energy(sample_spins);
    if (e < result.energy) {
      result.energy = e;
      result.spins = sample_spins;
    }
    return e;
  };

  const auto total = static_cast<double>(params.max_iterations);
  std::size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    // Linear pumping ramp a(t): 0 -> detuning over the iteration budget.
    const double a =
        params.detuning * (static_cast<double>(iter) + 1.0) / total;

    if (params.discrete) {
      model.local_fields_signed(x, force);
    } else {
      model.local_fields(x, force);
    }
    const double stiffness = params.detuning - a;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += params.dt * (-stiffness * x[i] + c0 * force[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += params.dt * params.detuning * y[i];
      // Ballistic boundary: perfectly inelastic walls at +-1.
      if (x[i] > 1.0) {
        x[i] = 1.0;
        y[i] = 0.0;
      } else if (x[i] < -1.0) {
        x[i] = -1.0;
        y[i] = 0.0;
      }
    }

    if ((iter + 1) % sample_every == 0) {
      if (hook) {
        hook(std::span<double>(x), std::span<double>(y));
      }
      const double e = consider(x);
      if (monitor.observe(e)) {
        result.stopped_early = true;
        ++iter;
        break;
      }
    }
  }

  consider(x);
  result.iterations = iter;
  return result;
}

IsingSolveResult solve_sb(const IsingModel& model, const SbParams& params,
                          const SbSampleHook& hook, const RunContext* ctx) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sb: model must be finalized");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("solve_sb: bad parameters");
  }
  if (!params.initial_positions.empty() &&
      params.initial_positions.size() != model.num_spins()) {
    throw std::invalid_argument("solve_sb: initial_positions size");
  }

  SbBatchHook batch_hook;
  if (hook) {
    // With one replica the SoA planes are contiguous (stride 1), so the
    // legacy span-based hook sees the live state without any copy.
    batch_hook = [&hook](std::size_t, ReplicaView view) {
      hook(std::span<double>(&view.x(0), view.size()),
           std::span<double>(&view.y(0), view.size()));
    };
  }
  BsbBatchEngine engine(model, params, 1);
  engine.set_context(ctx);
  return engine.run(batch_hook);
}

IsingSolveResult solve_sb_ensemble(const IsingModel& model,
                                   const SbParams& params,
                                   std::size_t replicas,
                                   const SbSampleHook& hook,
                                   const RunContext* ctx) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sb_ensemble: model must be finalized");
  }
  if (replicas == 0) {
    throw std::invalid_argument("solve_sb_ensemble: need >= 1 replica");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("solve_sb_ensemble: bad parameters");
  }
  if (!params.initial_positions.empty() &&
      params.initial_positions.size() != model.num_spins()) {
    throw std::invalid_argument("solve_sb_ensemble: initial_positions");
  }

  SbBatchHook batch_hook;
  std::vector<double> xr;
  std::vector<double> yr;
  if (hook) {
    // Legacy contiguous-span hook: gather/scatter one replica at a time.
    // New code should pass a strided SbBatchHook to solve_sb_batch instead.
    const std::size_t n = model.num_spins();
    xr.resize(n);
    yr.resize(n);
    batch_hook = [&hook, &xr, &yr](std::size_t, ReplicaView view) {
      const std::size_t n_spins = view.size();
      for (std::size_t i = 0; i < n_spins; ++i) {
        xr[i] = view.x(i);
        yr[i] = view.y(i);
      }
      hook(std::span<double>(xr), std::span<double>(yr));
      for (std::size_t i = 0; i < n_spins; ++i) {
        view.x(i) = xr[i];
        view.y(i) = yr[i];
      }
    };
  }
  return solve_sb_batch(model, params, replicas, batch_hook, nullptr, ctx);
}

}  // namespace adsd
