#pragma once

#include "ising/model.hpp"

namespace adsd {

/// Exact ground state by Gray-code enumeration with incremental energy
/// updates (O(2^N * avg_degree)). Restricted to N <= 24 spins; used as the
/// oracle in tests and for tiny core-COP instances.
IsingSolveResult solve_exhaustive(const IsingModel& model);

}  // namespace adsd
