#pragma once

#include "ising/bsb.hpp"
#include "ising/poly_model.hpp"
#include "ising/sa.hpp"

namespace adsd {

class RunContext;

/// Simulated bifurcation for higher-order cost functions (Kanao & Goto,
/// APEX 2022, the paper's ref. [19]): identical oscillator dynamics to
/// solve_sb(), with the mean-field force generalized to the polynomial
/// gradient -dE/dx. Shares SbParams and the sampling-hook contract. A
/// non-null `ctx` enables deadline checks and telemetry counters.
IsingSolveResult solve_sb_poly(const PolyIsingModel& model,
                               const SbParams& params,
                               const SbSampleHook& hook = nullptr,
                               const RunContext* ctx = nullptr);

/// Metropolis annealing on a higher-order model (flip deltas via the term
/// incidence lists).
IsingSolveResult solve_sa_poly(const PolyIsingModel& model,
                               const SaParams& params,
                               const RunContext* ctx = nullptr);

/// Exact ground state by Gray-code enumeration (N <= 24).
IsingSolveResult solve_exhaustive_poly(const PolyIsingModel& model);

}  // namespace adsd
