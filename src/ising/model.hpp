#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/aligned.hpp"

namespace adsd {

/// Second-order Ising model
///
///   E(sigma) = -sum_i h_i sigma_i - 1/2 sum_{i,j} J_{i,j} sigma_i sigma_j
///              + constant,
///
/// with sigma_i in {-1, +1}, J symmetric, J_{i,i} = 0 (Eq. (1) of the
/// paper). The constant term is carried along so that a COP mapped onto the
/// model has energies *equal* to its objective values, which the tests rely
/// on.
///
/// Couplings are accumulated as triplets and compacted into CSR by
/// `finalize()`; solvers require a finalized model. Problem instances in
/// this library are sparse (the core COP is bipartite between T-spins and
/// V-spins), so CSR keeps the bSB inner loop linear in the edge count.
class IsingModel {
 public:
  explicit IsingModel(std::size_t num_spins);

  std::size_t num_spins() const { return n_; }

  void set_bias(std::size_t i, double h);
  void add_bias(std::size_t i, double dh);
  double bias(std::size_t i) const { return h_[i]; }

  /// Accumulates J_{i,j} += j_value (and symmetrically J_{j,i}).
  /// Precondition: i != j.
  void add_coupling(std::size_t i, std::size_t j, double j_value);

  double constant() const { return constant_; }
  void set_constant(double c) { constant_ = c; }
  void add_constant(double dc) { constant_ += dc; }

  /// Merges duplicate couplings and builds the CSR adjacency. Idempotent;
  /// adding couplings afterwards requires another finalize().
  void finalize();
  bool finalized() const { return finalized_; }

  /// Number of distinct unordered coupled pairs (after finalize()).
  std::size_t num_couplings() const;

  /// Energy of a spin assignment (requires finalize()).
  double energy(std::span<const std::int8_t> spins) const;

  /// out[i] = h_i + sum_j J_{i,j} x[j]; the mean-field force used by the SB
  /// solvers, evaluated on continuous positions (requires finalize()).
  void local_fields(std::span<const double> x, std::span<double> out) const;

  /// Same force evaluated on the *signs* of x (discrete SB variant).
  void local_fields_signed(std::span<const double> x,
                           std::span<double> out) const;

  /// Energy change of flipping spin i within `spins` (requires finalize()).
  double flip_delta(std::span<const std::int8_t> spins, std::size_t i) const;

  /// Root-mean-square coupling magnitude over distinct pairs; used for the
  /// standard bSB coupling-strength normalization c0. Zero if no couplings.
  double coupling_rms() const;

  /// Neighbors of spin i as (index, J) pairs (requires finalize()).
  std::span<const std::pair<std::uint32_t, double>> neighbors(
      std::size_t i) const;

  /// Fraction of the n * (n - 1) possible couplings that are present
  /// (requires finalize()). Zero for a single spin.
  double edge_density() const;

  /// Dense fast path: when the edge density clears the measured crossover
  /// threshold (near-complete graphs only -- the lane-batched CSR kernels
  /// amortize the index gather over replicas, see DESIGN.md §4.6) and the
  /// model is small enough for an O(n^2) plane, finalize() additionally
  /// materializes a 64-byte-aligned padded row-major J plane -- row i lives
  /// at dense_plane()[i * dense_stride()], columns beyond n are zero
  /// padding -- so the bSB force kernels can run a blocked dense matrix x
  /// replica-plane product with no index lookups at all.
  bool has_dense_plane() const { return dense_stride_ != 0; }
  std::span<const double> dense_plane() const { return dense_; }
  std::size_t dense_stride() const { return dense_stride_; }

 private:
  std::size_t n_;
  std::vector<double> h_;
  double constant_ = 0.0;

  struct Triplet {
    std::uint32_t i;
    std::uint32_t j;
    double value;
  };
  std::vector<Triplet> triplets_;

  bool finalized_ = false;
  std::vector<std::size_t> row_start_;                     // n_+1 entries
  std::vector<std::pair<std::uint32_t, double>> entries_;  // both directions

  // Dense fast-path plane (empty unless the density threshold was met).
  AlignedVector<double> dense_;  // n_ * dense_stride_, row-major, padded
  std::size_t dense_stride_ = 0;
};

/// Result common to all Ising solvers.
struct IsingSolveResult {
  std::vector<std::int8_t> spins;  // each -1 or +1
  double energy = 0.0;             // includes the model constant
  std::size_t iterations = 0;      // Euler steps / sweeps actually executed
  bool stopped_early = false;      // dynamic stop criterion fired
};

}  // namespace adsd
