#include "ising/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "support/cpu_features.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/qor.hpp"
#include "support/run_context.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace adsd {

namespace {

// Minimum n * R before force evaluation is sharded across the pool: below
// this the whole kernel runs in a few microseconds and chunk dispatch would
// dominate (the batched kernel streams ~2.6 G lanes/s single-threaded).
constexpr std::size_t kForceShardMinLanes = 8192;

// Metrics `engine=` label: the tail of the telemetry prefix ("ising/sb" ->
// "sb"), so the metric dimension matches the counter namespace.
const char* engine_label(const char* telemetry_prefix) {
  const char* label = telemetry_prefix;
  for (const char* p = telemetry_prefix; *p != '\0'; ++p) {
    if (*p == '/') {
      label = p + 1;
    }
  }
  return label;
}

}  // namespace

CsrPlanes flatten_csr(const IsingModel& model) {
  // Flatten the CSR adjacency into separate index/weight planes so the hot
  // loop streams two homogeneous arrays instead of interleaved pairs.
  const std::size_t n = model.num_spins();
  CsrPlanes csr;
  csr.row_start.assign(n + 1, 0);
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    nnz += model.neighbors(i).size();
    csr.row_start[i + 1] = nnz;
  }
  csr.cols.resize(nnz);
  csr.weights.resize(nnz);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t e = csr.row_start[i];
    for (const auto& [j, w] : model.neighbors(i)) {
      csr.cols[e] = j;
      csr.weights[e] = w;
      ++e;
    }
  }
  csr.h.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    csr.h[i] = model.bias(i);
  }
  return csr;
}

double default_coupling_strength(const IsingModel& model, double detuning) {
  const double rms = model.coupling_rms();
  return rms > 0.0
             ? 0.5 * detuning /
                   (rms * std::sqrt(static_cast<double>(model.num_spins())))
             : 1.0;
}

void EnsembleEnergyTracker::init(const IsingModel& model, const CsrPlanes& csr,
                                 std::span<const double> x,
                                 std::size_t replicas) {
  model_ = &model;
  csr_ = &csr;
  n_ = model.num_spins();
  R_ = replicas;
  spins_.resize(n_ * R_);
  for (std::size_t k = 0; k < n_ * R_; ++k) {
    spins_[k] = x[k] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
  }
  scratch_spins_.resize(n_);
  energies_.resize(R_);
  for (std::size_t r = 0; r < R_; ++r) {
    energies_[r] = exact_energy(r);
  }
  // Tracked energies start as from-scratch values, so every replica is in
  // sync with IsingModel::energy() until the first flip.
  dirty_.assign(R_, 0);
}

void EnsembleEnergyTracker::flip(std::size_t i, std::size_t r,
                                 std::int8_t new_sign) {
  // Exact flip telescope: the energy delta of flipping spin i is
  // 2 * s_i * (h_i + sum_j J_ij s_j) with the *current* tracked signs, so
  // applying flips one at a time keeps the tracked energy equal to a full
  // recomputation (up to accumulation rounding).
  const std::int8_t old_sign = spins_[i * R_ + r];
  double field = csr_->h[i];
  for (std::size_t e = csr_->row_start[i]; e < csr_->row_start[i + 1]; ++e) {
    field += csr_->weights[e] *
             static_cast<double>(
                 spins_[static_cast<std::size_t>(csr_->cols[e]) * R_ + r]);
  }
  energies_[r] += 2.0 * static_cast<double>(old_sign) * field;
  spins_[i * R_ + r] = new_sign;
  dirty_[r] = 1;
}

void EnsembleEnergyTracker::sample(std::span<const double> x) {
  const std::size_t R = R_;
  for (std::size_t i = 0; i < n_; ++i) {
    const double* xi = &x[i * R];
    const std::int8_t* si = &spins_[i * R];
    for (std::size_t r = 0; r < R; ++r) {
      const std::int8_t ns = xi[r] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
      if (ns != si[r]) {
        flip(i, r, ns);
      }
    }
  }
}

double EnsembleEnergyTracker::consider_all(IsingSolveResult& result) {
  // A replica's tracked energy can drift from the from-scratch value only by
  // flip-accumulation rounding (~1e-15 relative), so a tracked energy within
  // this slack of the incumbent triggers one exact recomputation; everything
  // else is filtered in O(1). The recomputed value is snapped back into the
  // tracker, which also re-synchronizes the drift.
  double best_now = energies_[0];
  for (std::size_t r = 0; r < R_; ++r) {
    const double slack = 1e-9 + 1e-12 * std::fabs(result.energy);
    if (dirty_[r] != 0 && energies_[r] < result.energy + slack) {
      const double es = exact_energy(r);
      energies_[r] = es;
      dirty_[r] = 0;
      if (es < result.energy) {
        result.energy = es;
        copy_replica_spins(r, result.spins);
      }
    }
    best_now = std::min(best_now, energies_[r]);
  }
  return best_now;
}

double EnsembleEnergyTracker::exact_energy(std::size_t r) {
  copy_replica_spins(r, scratch_spins_);
  return model_->energy(scratch_spins_);
}

void EnsembleEnergyTracker::copy_replica_spins(
    std::size_t r, std::vector<std::int8_t>& out) const {
  out.resize(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out[i] = spins_[i * R_ + r];
  }
}

IsingSolveResult run_engine(IsingEngine& engine) {
  Timer run_timer;
  const RunContext* ctx = engine.context();
  const char* tprefix = engine.telemetry_prefix();
  const char* trprefix = engine.trace_prefix();

  IsingSolveResult result;
  engine.begin(result);

  // Deadline-at-entry: a run started after the context deadline already
  // expired (a restart boundary of an anytime solver looping tiny solves)
  // must not burn a whole schedule before the first sampling point notices.
  // Returns the initial state, flagged as an early stop.
  if (ctx != nullptr && ctx->expired()) {
    result.stopped_early = true;
    ctx->telemetry().add(std::string(tprefix) + "/deadline_hits");
    trace_instant(ctx->tracer(), std::string(trprefix) + "/deadline_hit");
    if (MetricsRegistry* m = ctx->metrics()) {
      m->counter("engine_deadline_hits_total",
                 {{"engine", engine_label(tprefix)}})
          .add();
    }
    ADSD_LOG_WARN("ising/engine", "deadline expired at engine entry",
                  {"engine", engine_label(tprefix)},
                  {"max_iterations", engine.max_iterations()});
    return result;
  }
  const double initial_energy = result.energy;

  const std::size_t sample_every = engine.sample_interval();
  DynamicStopMonitor monitor(engine.stop_params());

  // Convergence trace: the best-energy trajectory and the dynamic stop's
  // variance reading at every sampling point, plus an instant for why the
  // run ended. Recording only reads solver state, so traced runs stay
  // bit-identical to untraced ones.
  TraceRecorder* tracer = ctx != nullptr ? ctx->tracer() : nullptr;
  const TraceSpan run_span(tracer, std::string(trprefix) + "/run");
  std::size_t energy_samples = 0;

  // Best-energy-vs-iteration curve for the QoR export. The name is built
  // only when recording is armed; the off path is the pointer test alone.
  QorRecorder* qor = ctx != nullptr ? ctx->qor() : nullptr;
  std::uint64_t curve_id = 0;
  if (qor != nullptr) {
    curve_id = qor->begin_curve(engine.curve_name());
  }
  if (ctx != nullptr) {
    engine.on_run_start();
  }
  bool budget_checked = false;

  // Composed once: the sampling loop must not allocate per point.
  const std::string best_counter = std::string(trprefix) + "/best_energy";
  const std::string variance_counter =
      std::string(trprefix) + "/stop_variance";

  std::size_t iter = 0;
  for (; iter < engine.max_iterations(); ++iter) {
    engine.advance(iter);
    if ((iter + 1) % sample_every == 0) {
      const double best_now = engine.observe(result);
      ++energy_samples;
      trace_counter(tracer, best_counter, best_now);
      trace_counter(tracer, variance_counter, monitor.current_variance());
      if (qor != nullptr) {
        qor->curve_point(curve_id, iter + 1, best_now);
      }

      // Budget-aware iteration rescale: when a context deadline implies
      // fewer sampling points than configured, shrink max_iterations at the
      // first sampling point (the one timing estimate available) so a
      // pump-ramp engine completes its shortened schedule by the deadline
      // instead of being truncated mid-ramp. Guarded on the deadline alone —
      // budget-less runs never take this path, so fixed-seed results stay
      // bit-identical with QoR on or off.
      if (!budget_checked) {
        budget_checked = true;
        if (engine.supports_budget_rescale() && ctx != nullptr &&
            ctx->deadline().budget() > 0.0) {
          const double per_step =
              run_timer.seconds() / static_cast<double>(iter + 1);
          const double remaining = ctx->deadline().remaining();
          if (per_step > 0.0) {
            const double affordable_d =
                static_cast<double>(iter + 1) + 0.9 * remaining / per_step;
            if (affordable_d < static_cast<double>(engine.max_iterations())) {
              const std::size_t affordable = std::max<std::size_t>(
                  static_cast<std::size_t>(affordable_d), iter + 2);
              if (affordable < engine.max_iterations()) {
                const std::size_t dropped =
                    engine.max_iterations() - affordable;
                engine.apply_budget_rescale(affordable);
                if (MetricsRegistry* m = ctx->metrics()) {
                  m->counter("engine_budget_rescales_total",
                             {{"engine", engine_label(tprefix)}})
                      .add();
                }
                ctx->telemetry().add(std::string(tprefix) +
                                     "/budget_rescales");
                ctx->telemetry().add(
                    std::string(tprefix) + "/budget_rescaled_steps", dropped);
                if (qor != nullptr) {
                  qor->add(std::string(tprefix) + "/budget_rescales");
                  qor->sample(
                      std::string(tprefix) + "/rescaled_max_iterations",
                      static_cast<double>(affordable));
                }
                trace_instant(tracer,
                              std::string(trprefix) + "/budget_rescale");
                ADSD_LOG_INFO("ising/engine",
                              "budget rescale shrank the schedule",
                              {"engine", engine_label(tprefix)},
                              {"max_iterations", affordable},
                              {"dropped_iterations", dropped},
                              {"remaining_s", remaining});
              }
            }
          }
        }
      }

      const bool variance_stop = monitor.observe(best_now);
      const bool deadline_stop =
          !variance_stop && ctx != nullptr && ctx->expired();
      if (variance_stop || deadline_stop) {
        result.stopped_early = true;
        ++iter;
        if (ctx != nullptr) {
          ctx->telemetry().add(std::string(tprefix) +
                               (variance_stop ? "/dynamic_stops"
                                              : "/deadline_hits"));
          if (MetricsRegistry* m = ctx->metrics()) {
            m->counter(variance_stop ? "engine_dynamic_stops_total"
                                     : "engine_deadline_hits_total",
                       {{"engine", engine_label(tprefix)}})
                .add();
          }
        }
        trace_instant(tracer, std::string(trprefix) +
                                  (variance_stop ? "/dynamic_stop"
                                                 : "/deadline_hit"));
        if (variance_stop) {
          ADSD_LOG_DEBUG("ising/engine", "dynamic stop",
                         {"engine", engine_label(tprefix)},
                         {"iterations", iter},
                         {"best_energy", best_now});
        } else {
          ADSD_LOG_WARN("ising/engine", "deadline hit mid-run",
                        {"engine", engine_label(tprefix)},
                        {"iterations", iter},
                        {"best_energy", best_now});
        }
        break;
      }
    }
  }

  engine.finish(result);
  result.iterations = iter;
  if (ctx != nullptr) {
    engine.record_totals(ctx->telemetry(), iter, energy_samples);
    if (MetricsRegistry* m = ctx->metrics()) {
      // Per-engine run cadence plus the scrape-facing latency/quality
      // distributions: how long one engine run takes (split by the
      // resolved kernel tier) and how much energy the run recovered from
      // its initial state. Reads of finished state only — armed runs stay
      // bit-identical to disarmed ones.
      const char* engine_name = engine_label(tprefix);
      m->counter("engine_runs_total", {{"engine", engine_name}}).add();
      m->counter("engine_iterations_total", {{"engine", engine_name}})
          .add(iter);
      m->counter("engine_energy_samples_total", {{"engine", engine_name}})
          .add(energy_samples);
      // The exemplar joins this scrape-facing series to the run that
      // produced its latest observation (see DESIGN.md §4.10 provenance).
      m->histogram("solve_latency_us", {{"engine", engine_name},
                                        {"kernel", engine.kernel_label()}})
          .record(run_timer.seconds() * 1e6, ctx->run_id());
      m->histogram("engine_energy_improvement", {{"engine", engine_name}})
          .record(initial_energy - result.energy);
    }
  }
  return result;
}

EnsembleEngineBase::EnsembleEngineBase(const IsingModel& model,
                                       std::size_t replicas,
                                       kernels::ForceKernel requested,
                                       bool discrete, const char* label)
    : model_(model), n_(model.num_spins()), R_(replicas) {
  if (!model.finalized()) {
    throw std::invalid_argument(std::string(label) +
                                ": model must be finalized");
  }
  if (replicas == 0) {
    throw std::invalid_argument(std::string(label) + ": need >= 1 replica");
  }

  csr_ = flatten_csr(model);

  // Resolve the force kernel once: cpuid-probed ISA tier, dense fast path
  // when the model materialized a plane, explicit override via the
  // engine's kernel parameter. The dispatch never fails — unsupported
  // requests walk the fallback chain (avx512 -> avx2 -> scalar,
  // dense -> CSR).
  kernel_ =
      kernels::select_force_kernel(requested, cpu_features(),
                                   model.has_dense_plane());
  force_fn_ = discrete ? kernel_.discrete : kernel_.continuous;
  planes_ = kernels::ForcePlanes{};
  planes_.h = csr_.h.data();
  planes_.row_start = csr_.row_start.data();
  planes_.cols = csr_.cols.data();
  planes_.weights = csr_.weights.data();
  if (kernel_.kind == kernels::ForceKernel::kDense) {
    planes_.dense = model.dense_plane().data();
    planes_.dense_stride = model.dense_stride();
  }
  planes_.n = n_;
  planes_.replicas = R_;

  x_.assign(n_ * R_, 0.0);
  y_.assign(n_ * R_, 0.0);
  force_.assign(n_ * R_, 0.0);
  planes_.x = x_.data();
  planes_.force = force_.data();
}

void EnsembleEngineBase::compute_forces() {
  // The dispatched kernel fills force rows [begin, end); rows are
  // independent (each writes only force_[i * R + ...]), so sharding across
  // the pool produces bit-identical planes in any interleaving. Every
  // kernel preserves the per-lane per-edge accumulation order of the
  // scalar reference (see ising/kernels/force_kernels.hpp), which is what
  // keeps replica trajectories bit-identical to the scalar references.
  if (ctx_ != nullptr && ctx_->parallel() && n_ * R_ >= kForceShardMinLanes) {
    ThreadPool& pool = ctx_->pool();
    if (pool.thread_count() > 1) {
      // A nested call from inside DALTA's parallel_for runs inline via the
      // pool's nesting guard — same code path, no oversubscription.
      pool.parallel_for_chunks(
          n_, 0, [this](std::size_t begin, std::size_t end) {
            force_fn_(planes_, begin, end);
          });
      return;
    }
  }
  force_fn_(planes_, 0, n_);
}

void EnsembleEngineBase::begin(IsingSolveResult& result) {
  tracker_.copy_replica_spins(0, result.spins);
  result.energy = tracker_.energies()[0];
}

void EnsembleEngineBase::on_run_start() {
  // Report which force kernel dispatch resolved to, so run reports and QoR
  // records show whether the SIMD / dense fast path was actually taken.
  const std::string kernel_counter =
      std::string(telemetry_prefix()) + "/kernel/" + kernel_.name;
  ctx_->telemetry().add(kernel_counter);
  if (QorRecorder* qor = ctx_->qor()) {
    qor->add(kernel_counter);
  }
  if (MetricsRegistry* m = ctx_->metrics()) {
    m->counter("kernel_invocations_total", {{"kernel", kernel_.name}}).add();
  }
}

double EnsembleEngineBase::observe(IsingSolveResult& result) {
  if (plane_hook_) {
    plane_hook_(positions(), momenta(), R_);
  }
  if (hook_) {
    for (std::size_t r = 0; r < R_; ++r) {
      hook_(r, view(r));
    }
  }
  sample();
  return tracker_.consider_all(result);
}

void EnsembleEngineBase::finish(IsingSolveResult& result) {
  sample();
  tracker_.consider_all(result);
}

IsingSolveResult EnsembleEngineBase::run(const SbBatchHook& hook,
                                         const SbBatchPlaneHook& plane_hook) {
  hook_ = hook;
  plane_hook_ = plane_hook;
  IsingSolveResult result = run_engine(*this);
  hook_ = nullptr;
  plane_hook_ = nullptr;
  return result;
}

}  // namespace adsd
