#include "ising/model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/log.hpp"

namespace adsd {

namespace {

// Dense fast-path materialization gates (DESIGN.md §4.6). The threshold is
// the measured single-thread crossover of the dense vs the same-ISA CSR
// force kernels (random models, n in {64, 256, 768}, R in {8, 32}, AVX-512
// tier): because the batched kernels amortize each index/weight load over R
// replica lanes, the CSR "gather" is nearly free and the dense kernel --
// which must stream the structural zeros to keep the per-lane accumulation
// order bit-exact -- only reaches parity at ~0.93-0.97 density and wins up
// to ~12% beyond it. The paper's column-COP instances (~0.45 dense at
// n = 16, ~0.52 at n = 9) therefore do NOT qualify, contrary to the initial
// hypothesis; only near-complete graphs do. The spin cap bounds the O(n^2)
// plane to 128 MiB (a graph that clears 0.95 density at that size carries a
// CSR image ~3x larger anyway).
constexpr double kDenseMinDensity = 0.95;
constexpr std::size_t kDenseMaxSpins = 4096;

}  // namespace

IsingModel::IsingModel(std::size_t num_spins) : n_(num_spins), h_(num_spins) {
  if (num_spins == 0) {
    throw std::invalid_argument("IsingModel: need at least one spin");
  }
}

void IsingModel::set_bias(std::size_t i, double h) {
  h_.at(i) = h;
}

void IsingModel::add_bias(std::size_t i, double dh) {
  h_.at(i) += dh;
}

void IsingModel::add_coupling(std::size_t i, std::size_t j, double j_value) {
  if (i >= n_ || j >= n_) {
    throw std::out_of_range("IsingModel::add_coupling: spin out of range");
  }
  if (i == j) {
    throw std::invalid_argument("IsingModel::add_coupling: self coupling");
  }
  if (j_value == 0.0) {
    return;
  }
  triplets_.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(j), j_value});
  finalized_ = false;
}

void IsingModel::finalize() {
  if (finalized_) {
    return;
  }
  // Canonicalize to (min, max) pairs, sort, and merge duplicates.
  for (auto& t : triplets_) {
    if (t.i > t.j) {
      std::swap(t.i, t.j);
    }
  }
  std::sort(triplets_.begin(), triplets_.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.i != b.i ? a.i < b.i : a.j < b.j;
            });
  std::vector<Triplet> merged;
  merged.reserve(triplets_.size());
  for (const auto& t : triplets_) {
    if (!merged.empty() && merged.back().i == t.i && merged.back().j == t.j) {
      merged.back().value += t.value;
    } else {
      merged.push_back(t);
    }
  }
  merged.erase(std::remove_if(merged.begin(), merged.end(),
                              [](const Triplet& t) { return t.value == 0.0; }),
               merged.end());
  triplets_ = std::move(merged);

  // Build CSR with each edge stored in both rows.
  std::vector<std::size_t> degree(n_, 0);
  for (const auto& t : triplets_) {
    ++degree[t.i];
    ++degree[t.j];
  }
  row_start_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    row_start_[i + 1] = row_start_[i] + degree[i];
  }
  entries_.assign(row_start_[n_], {0, 0.0});
  std::vector<std::size_t> cursor(row_start_.begin(), row_start_.end() - 1);
  for (const auto& t : triplets_) {
    entries_[cursor[t.i]++] = {t.j, t.value};
    entries_[cursor[t.j]++] = {t.i, t.value};
  }
  finalized_ = true;

  // Dense fast-path plane. Stride padded to a multiple of 8 doubles keeps
  // every row 64-byte aligned; the padding columns stay exactly 0.0.
  dense_.clear();
  dense_stride_ = 0;
  if (n_ >= 2 && n_ <= kDenseMaxSpins && edge_density() >= kDenseMinDensity) {
    dense_stride_ = (n_ + 7) / 8 * 8;
    dense_.assign(n_ * dense_stride_, 0.0);
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e) {
        dense_[i * dense_stride_ + entries_[e].first] = entries_[e].second;
      }
    }
    ADSD_LOG_DEBUG("ising/model", "dense force plane materialized",
                   {"spins", n_}, {"density", edge_density()},
                   {"stride", dense_stride_});
  }
}

double IsingModel::edge_density() const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before edge_density()");
  }
  if (n_ < 2) {
    return 0.0;
  }
  // entries_ stores each unordered pair twice, matching the n * (n - 1)
  // ordered-pair denominator.
  return static_cast<double>(entries_.size()) /
         (static_cast<double>(n_) * static_cast<double>(n_ - 1));
}

std::size_t IsingModel::num_couplings() const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before num_couplings()");
  }
  return entries_.size() / 2;
}

double IsingModel::energy(std::span<const std::int8_t> spins) const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before energy()");
  }
  if (spins.size() != n_) {
    throw std::invalid_argument("IsingModel::energy: spin count mismatch");
  }
  double linear = 0.0;
  for (std::size_t i = 0; i < n_; ++i) {
    linear += h_[i] * spins[i];
  }
  double quad = 0.0;
  for (const auto& t : triplets_) {
    quad += t.value * spins[t.i] * spins[t.j];
  }
  // Each unordered pair appears once in triplets_, so the 1/2 in Eq. (1)
  // against the double-counted symmetric sum is already accounted for.
  return -linear - quad + constant_;
}

void IsingModel::local_fields(std::span<const double> x,
                              std::span<double> out) const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before local_fields()");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    double f = h_[i];
    for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e) {
      f += entries_[e].second * x[entries_[e].first];
    }
    out[i] = f;
  }
}

void IsingModel::local_fields_signed(std::span<const double> x,
                                     std::span<double> out) const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before local_fields()");
  }
  for (std::size_t i = 0; i < n_; ++i) {
    double f = h_[i];
    for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e) {
      const double s = x[entries_[e].first] >= 0.0 ? 1.0 : -1.0;
      f += entries_[e].second * s;
    }
    out[i] = f;
  }
}

double IsingModel::flip_delta(std::span<const std::int8_t> spins,
                              std::size_t i) const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before flip_delta()");
  }
  double field = h_[i];
  for (std::size_t e = row_start_[i]; e < row_start_[i + 1]; ++e) {
    field += entries_[e].second * spins[entries_[e].first];
  }
  return 2.0 * spins[i] * field;
}

double IsingModel::coupling_rms() const {
  if (triplets_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (const auto& t : triplets_) {
    s += t.value * t.value;
  }
  return std::sqrt(s / static_cast<double>(triplets_.size()));
}

std::span<const std::pair<std::uint32_t, double>> IsingModel::neighbors(
    std::size_t i) const {
  if (!finalized_) {
    throw std::logic_error("IsingModel: finalize() before neighbors()");
  }
  return {entries_.data() + row_start_[i], row_start_[i + 1] - row_start_[i]};
}

}  // namespace adsd
