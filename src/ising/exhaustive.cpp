#include "ising/exhaustive.hpp"

#include <bit>
#include <stdexcept>
#include <vector>

namespace adsd {

IsingSolveResult solve_exhaustive(const IsingModel& model) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_exhaustive: model must be finalized");
  }
  const std::size_t n = model.num_spins();
  if (n > 24) {
    throw std::invalid_argument("solve_exhaustive: too many spins (max 24)");
  }

  std::vector<std::int8_t> spins(n, -1);
  double energy = model.energy(spins);

  IsingSolveResult result;
  result.spins = spins;
  result.energy = energy;

  // Gray code: assignment g(k) differs from g(k-1) in bit ctz(k); flipping
  // exactly one spin lets flip_delta keep the energy incremental.
  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t k = 1; k < total; ++k) {
    const auto bit = static_cast<std::size_t>(std::countr_zero(k));
    energy += model.flip_delta(spins, bit);
    spins[bit] = static_cast<std::int8_t>(-spins[bit]);
    if (energy < result.energy) {
      result.energy = energy;
      result.spins = spins;
    }
  }

  result.iterations = total;
  return result;
}

}  // namespace adsd
