#include "ising/poly_solvers.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "support/rng.hpp"
#include "support/run_context.hpp"

namespace adsd {

namespace {

std::vector<std::int8_t> signs_of(std::span<const double> x) {
  std::vector<std::int8_t> s(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    s[i] = x[i] >= 0.0 ? std::int8_t{1} : std::int8_t{-1};
  }
  return s;
}

}  // namespace

IsingSolveResult solve_sb_poly(const PolyIsingModel& model,
                               const SbParams& params,
                               const SbSampleHook& hook,
                               const RunContext* ctx) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sb_poly: model must be finalized");
  }
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.detuning <= 0.0) {
    throw std::invalid_argument("solve_sb_poly: bad parameters");
  }

  const std::size_t n = model.num_spins();
  double c0 = params.c0;
  if (c0 <= 0.0) {
    const double rms = model.coeff_rms();
    c0 = rms > 0.0
             ? 0.5 * params.detuning / (rms * std::sqrt(static_cast<double>(n)))
             : 1.0;
  }

  Rng rng(params.seed);
  std::vector<double> x(n, 0.0);
  if (!params.initial_positions.empty()) {
    if (params.initial_positions.size() != n) {
      throw std::invalid_argument("solve_sb_poly: initial_positions size");
    }
    x = params.initial_positions;
  }
  std::vector<double> y(n);
  for (double& yi : y) {
    yi = rng.next_double(-0.1, 0.1);
  }
  std::vector<double> grad(n);

  const std::size_t sample_every =
      params.stop.sample_interval > 0 ? params.stop.sample_interval : 10;
  DynamicStopMonitor monitor(params.stop);

  IsingSolveResult result;
  result.spins = signs_of(x);
  result.energy = model.energy(result.spins);

  auto consider = [&](std::span<const double> positions) {
    auto spins = signs_of(positions);
    const double e = model.energy(spins);
    if (e < result.energy) {
      result.energy = e;
      result.spins = std::move(spins);
    }
    return e;
  };

  const auto total = static_cast<double>(params.max_iterations);
  std::size_t iter = 0;
  for (; iter < params.max_iterations; ++iter) {
    const double a =
        params.detuning * (static_cast<double>(iter) + 1.0) / total;
    if (params.discrete) {
      model.gradient_signed(x, grad);
    } else {
      model.gradient(x, grad);
    }
    const double stiffness = params.detuning - a;
    for (std::size_t i = 0; i < n; ++i) {
      // Force is the negative gradient of the cost.
      y[i] += params.dt * (-stiffness * x[i] - c0 * grad[i]);
    }
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += params.dt * params.detuning * y[i];
      if (x[i] > 1.0) {
        x[i] = 1.0;
        y[i] = 0.0;
      } else if (x[i] < -1.0) {
        x[i] = -1.0;
        y[i] = 0.0;
      }
    }

    if ((iter + 1) % sample_every == 0) {
      if (hook) {
        hook(std::span<double>(x), std::span<double>(y));
      }
      const double e = consider(x);
      if (monitor.observe(e) || (ctx != nullptr && ctx->expired())) {
        result.stopped_early = true;
        ++iter;
        break;
      }
    }
  }

  consider(x);
  result.iterations = iter;
  if (ctx != nullptr) {
    ctx->telemetry().add("ising/sb_poly/steps", iter);
  }
  return result;
}

IsingSolveResult solve_sa_poly(const PolyIsingModel& model,
                               const SaParams& params, const RunContext* ctx) {
  if (!model.finalized()) {
    throw std::invalid_argument("solve_sa_poly: model must be finalized");
  }
  if (params.sweeps == 0 || params.beta_start <= 0.0 ||
      params.beta_end < params.beta_start) {
    throw std::invalid_argument("solve_sa_poly: bad parameters");
  }

  const std::size_t n = model.num_spins();
  Rng rng(params.seed);
  std::vector<std::int8_t> spins(n);
  for (auto& s : spins) {
    s = static_cast<std::int8_t>(rng.next_spin());
  }
  double energy = model.energy(spins);

  IsingSolveResult result;
  result.spins = spins;
  result.energy = energy;

  DynamicStopMonitor monitor(params.stop);
  const double ratio =
      params.sweeps > 1 ? std::pow(params.beta_end / params.beta_start,
                                   1.0 / static_cast<double>(params.sweeps - 1))
                        : 1.0;
  double beta = params.beta_start;

  std::size_t sweep = 0;
  for (; sweep < params.sweeps; ++sweep) {
    for (std::size_t i = 0; i < n; ++i) {
      const double delta = model.flip_delta(spins, i);
      if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
        spins[i] = static_cast<std::int8_t>(-spins[i]);
        energy += delta;
      }
    }
    if (energy < result.energy) {
      result.energy = energy;
      result.spins = spins;
    }
    if (monitor.observe(energy) || (ctx != nullptr && ctx->expired())) {
      result.stopped_early = true;
      ++sweep;
      break;
    }
    beta *= ratio;
  }

  result.iterations = sweep;
  if (ctx != nullptr) {
    ctx->telemetry().add("ising/sa_poly/sweeps", sweep);
  }
  return result;
}

IsingSolveResult solve_exhaustive_poly(const PolyIsingModel& model) {
  if (!model.finalized()) {
    throw std::invalid_argument(
        "solve_exhaustive_poly: model must be finalized");
  }
  const std::size_t n = model.num_spins();
  if (n > 24) {
    throw std::invalid_argument("solve_exhaustive_poly: too many spins");
  }

  std::vector<std::int8_t> spins(n, -1);
  double energy = model.energy(spins);

  IsingSolveResult result;
  result.spins = spins;
  result.energy = energy;

  const std::uint64_t total = std::uint64_t{1} << n;
  for (std::uint64_t k = 1; k < total; ++k) {
    const auto bit = static_cast<std::size_t>(std::countr_zero(k));
    energy += model.flip_delta(spins, bit);
    spins[bit] = static_cast<std::int8_t>(-spins[bit]);
    if (energy < result.energy) {
      result.energy = energy;
      result.spins = spins;
    }
  }

  result.iterations = total;
  return result;
}

}  // namespace adsd
