#pragma once

#include <cstddef>

#include "support/stats.hpp"

namespace adsd {

/// Parameters of the dynamic stop criterion (paper Sec. 3.3.1): sample the
/// system energy every `sample_interval` iterations and stop once the
/// variance over the last `window` samples drops below `epsilon`.
///
/// The paper uses f = s = 20 for n = 9 and f = s = 10 for n = 16 with
/// epsilon = 1e-8.
struct DynamicStopParams {
  bool enabled = false;
  std::size_t sample_interval = 10;  // f
  std::size_t window = 10;           // s
  double epsilon = 1e-8;
};

/// Stateful evaluator of the criterion; feed it one energy per sample.
class DynamicStopMonitor {
 public:
  explicit DynamicStopMonitor(const DynamicStopParams& params);

  /// Records a sampled energy; returns true when the search should stop.
  bool observe(double energy);

  /// Variance over the current window (diagnostics).
  double current_variance() const { return window_.variance(); }

  void reset() { window_.reset(); }

 private:
  DynamicStopParams params_;
  WindowedVariance window_;
};

}  // namespace adsd
