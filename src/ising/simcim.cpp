#include "ising/simcim.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "support/run_context.hpp"
#include "support/telemetry.hpp"

namespace adsd {

SimcimEngine::SimcimEngine(const IsingModel& model, const SimcimParams& params,
                           std::size_t replicas)
    : EnsembleEngineBase(model, replicas, params.kernel, /*discrete=*/false,
                         "SimcimEngine"),
      params_(params) {
  if (params.max_iterations == 0 || params.dt <= 0.0 ||
      params.pump_end < params.pump_start) {
    throw std::invalid_argument("SimcimEngine: bad parameters");
  }
  if (params.noise < 0.0) {
    throw std::invalid_argument("SimcimEngine: negative noise");
  }
  if (!params.initial_positions.empty() &&
      params.initial_positions.size() != n_) {
    throw std::invalid_argument("SimcimEngine: initial_positions size");
  }

  c0_ = params.c0;
  if (c0_ <= 0.0) {
    c0_ = default_coupling_strength(model, 1.0);
  }

  // Warm amplitudes are copied into every replica; divergence comes from
  // the per-replica noise streams, not from the starting point.
  if (!params_.initial_positions.empty()) {
    for (std::size_t r = 0; r < R_; ++r) {
      for (std::size_t i = 0; i < n_; ++i) {
        x_[i * R_ + r] = params_.initial_positions[i];
      }
    }
  }

  rngs_.reserve(R_);
  for (std::size_t r = 0; r < R_; ++r) {
    rngs_.emplace_back(params_.seed + 0x9e3779b9u * r);
  }

  init_tracker();
}

void SimcimEngine::advance(std::size_t iter) {
  const auto total = static_cast<double>(params_.max_iterations);
  const double p =
      params_.pump_start + (params_.pump_end - params_.pump_start) *
                               (static_cast<double>(iter) + 1.0) / total;

  compute_forces();

  const double dt = params_.dt;
  const double c0 = c0_;
  const double noise = params_.noise;
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t r = 0; r < R_; ++r) {
      const std::size_t k = i * R_ + r;
      double xk = x_[k] + dt * (p * x_[k] + c0 * force_[k]);
      if (noise > 0.0) {
        xk += noise * rngs_[r].next_gaussian();
      }
      x_[k] = std::clamp(xk, -1.0, 1.0);
    }
  }
}

std::string SimcimEngine::curve_name() const {
  return "ising/simcim/n" + std::to_string(n_) + "_R" + std::to_string(R_);
}

std::size_t SimcimEngine::sample_interval() const {
  return params_.stop.sample_interval > 0 ? params_.stop.sample_interval : 10;
}

void SimcimEngine::record_totals(TelemetrySink& sink, std::size_t iterations,
                                 std::size_t energy_samples) const {
  sink.add("ising/simcim/steps", iterations);
  sink.add("ising/simcim/replica_steps", iterations * R_);
  sink.add("ising/simcim/energy_samples", energy_samples);
}

IsingSolveResult solve_simcim(const IsingModel& model,
                              const SimcimParams& params, std::size_t replicas,
                              const SbBatchHook& hook,
                              const SbBatchPlaneHook& plane_hook,
                              const RunContext* ctx) {
  SimcimEngine engine(model, params, replicas);
  engine.set_context(ctx);
  IsingSolveResult result = engine.run(hook, plane_hook);
  result.iterations *= replicas;
  return result;
}

}  // namespace adsd
