#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ising/engine.hpp"
#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "ising/stop.hpp"
#include "support/aligned.hpp"

namespace adsd {

class RunContext;

/// Parameters of the DOCH / ADOCH engine (difference-of-convex optimization
/// heuristic): the box-relaxed energy -x'Jx/2 - h'x is split as a
/// difference of convex functions with a proximal weight rho, giving the
/// fixed-point iteration
///
///   z = x + momentum * (x - x_prev)          (ADOCH lookahead; 0 = DOCH)
///   x <- clamp(z + (1/rho) * f(z), -1, 1)
///
/// where f is the same local field the bSB force kernels compute. Each
/// iteration is one force pass plus an O(n * R) update, monotone up to the
/// momentum term, and converges to a box fixed point whose signs are the
/// rounded solution; replica diversity comes from random starting points
/// (the dynamics themselves are deterministic).
struct DochParams {
  std::size_t max_iterations = 500;

  /// Proximal weight; <= 0 selects the auto rule max_i sum_j |J_ij|
  /// (an upper bound on the spectral radius of J, so the convex split is
  /// valid), floored at 1.
  double rho = 0.0;

  /// Inertial lookahead coefficient: 0 is plain DOCH, > 0 the accelerated
  /// ADOCH variant.
  double momentum = 0.7;

  /// Half-width of the uniform random start: replica r draws every
  /// coordinate from seed + r * 0x9e3779b9 in [-init_amp, init_amp] around
  /// the warm point (or 0).
  double init_amp = 1.0;

  std::uint64_t seed = 1;

  /// Optional warm start: base point the per-replica random kick is
  /// applied around.
  std::vector<double> initial_positions;

  /// Force-kernel selection, same key as bSB (auto-dispatched by default).
  kernels::ForceKernel kernel = kernels::ForceKernel::kAuto;

  /// Dynamic stop on the ensemble-best energy (same criterion as bSB).
  DynamicStopParams stop{};
};

/// DOCH/ADOCH on the shared SoA ensemble chassis. The y plane holds the
/// per-lane displacement u = x - x_prev, so plane hooks that zero a
/// replica's y (the Theorem-3 reset) legitimately kill its inertia; the
/// force kernel's input plane is repointed at the lookahead buffer z.
/// Emits under "ising/doch/*".
class DochEngine final : public EnsembleEngineBase {
 public:
  /// The model reference must outlive the engine.
  DochEngine(const IsingModel& model, const DochParams& params,
             std::size_t replicas);

  /// Resolved proximal weight (after the auto rule).
  double rho() const { return rho_; }

  const char* telemetry_prefix() const override { return "ising/doch"; }
  const char* trace_prefix() const override { return "ising/doch"; }
  std::string curve_name() const override;
  std::size_t max_iterations() const override { return params_.max_iterations; }
  std::size_t sample_interval() const override;
  const DynamicStopParams& stop_params() const override { return params_.stop; }
  bool supports_budget_rescale() const override { return true; }
  void apply_budget_rescale(std::size_t max_iterations) override {
    params_.max_iterations = max_iterations;
  }
  void advance(std::size_t iter) override;
  void record_totals(TelemetrySink& sink, std::size_t iterations,
                     std::size_t energy_samples) const override;

 private:
  DochParams params_;
  double rho_;
  double inv_rho_;
  AlignedVector<double> z_;  // n * R lookahead points (force input)
};

/// Ensemble DOCH/ADOCH solve mirroring solve_sb_batch: best replica's best
/// solution, dynamic stop on the ensemble-best energy, `iterations` summed
/// over replicas, hooks applied at every sampling point.
IsingSolveResult solve_doch(const IsingModel& model, const DochParams& params,
                            std::size_t replicas,
                            const SbBatchHook& hook = nullptr,
                            const SbBatchPlaneHook& plane_hook = nullptr,
                            const RunContext* ctx = nullptr);

}  // namespace adsd
