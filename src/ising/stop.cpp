#include "ising/stop.hpp"

#include <stdexcept>

namespace adsd {

DynamicStopMonitor::DynamicStopMonitor(const DynamicStopParams& params)
    : params_(params), window_(params.window == 0 ? 1 : params.window) {
  if (params.enabled && (params.window < 2 || params.sample_interval == 0)) {
    throw std::invalid_argument(
        "DynamicStopMonitor: need window >= 2 and sample_interval >= 1");
  }
}

bool DynamicStopMonitor::observe(double energy) {
  if (!params_.enabled) {
    return false;
  }
  window_.add(energy);
  return window_.full() && window_.variance() < params_.epsilon;
}

}  // namespace adsd
