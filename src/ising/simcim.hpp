#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ising/engine.hpp"
#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "ising/stop.hpp"
#include "support/rng.hpp"

namespace adsd {

class RunContext;

/// Parameters of the SimCIM engine (simulated coherent Ising machine,
/// Tiunov et al. 2019): momentum-free mean-field amplitude dynamics
///
///   x_k += dt * (p(t) * x_k + zeta * f_k) + noise * N(0, 1),  |x_k| <= 1
///
/// where f is the same local field the bSB force kernels compute and p(t)
/// ramps linearly from pump_start (net loss, amplitudes decay toward 0) to
/// pump_end (net gain, amplitudes saturate at the walls and commit to
/// signs). The per-replica gaussian noise stream both breaks symmetry and
/// diversifies replicas, playing the role bSB's random initial momenta do.
struct SimcimParams {
  std::size_t max_iterations = 1000;

  /// Integration step of the amplitude update.
  double dt = 0.25;

  /// Linear pump ramp: p(t) = pump_start + (pump_end - pump_start) * t/T.
  double pump_start = -2.0;
  double pump_end = 1.0;

  /// Coupling scale zeta; <= 0 selects the shared rms normalization
  /// 0.5 / (rms(J) * sqrt(n)) (default_coupling_strength with detuning 1).
  double c0 = 0.0;

  /// Gaussian noise amplitude per step (0 disables; replicas then collapse
  /// to identical trajectories). Tuned on random instances n in [8, 16] at
  /// density 0.6: 0.1/0.25 (noise/dt) found the ground state on 35/40
  /// instances vs 30/40 at 0.02/0.5, edging out bSB's 31/40.
  double noise = 0.1;

  std::uint64_t seed = 1;

  /// Optional warm start: amplitudes copied into every replica (replicas
  /// still diverge through their noise streams).
  std::vector<double> initial_positions;

  /// Force-kernel selection, same key as bSB (auto-dispatched by default).
  kernels::ForceKernel kernel = kernels::ForceKernel::kAuto;

  /// Dynamic stop on the ensemble-best energy (same criterion as bSB).
  DynamicStopParams stop{};
};

/// SimCIM on the shared SoA ensemble chassis: replica r draws its noise
/// from seed + r * 0x9e3779b9, the force pass reuses the dispatched SIMD
/// kernels, and the y plane is a zeroed scratch handed to plane hooks (the
/// dynamics are momentum-free). Emits under "ising/simcim/*".
class SimcimEngine final : public EnsembleEngineBase {
 public:
  /// The model reference must outlive the engine.
  SimcimEngine(const IsingModel& model, const SimcimParams& params,
               std::size_t replicas);

  const char* telemetry_prefix() const override { return "ising/simcim"; }
  const char* trace_prefix() const override { return "ising/simcim"; }
  std::string curve_name() const override;
  std::size_t max_iterations() const override { return params_.max_iterations; }
  std::size_t sample_interval() const override;
  const DynamicStopParams& stop_params() const override { return params_.stop; }
  bool supports_budget_rescale() const override { return true; }
  void apply_budget_rescale(std::size_t max_iterations) override {
    params_.max_iterations = max_iterations;
  }
  void advance(std::size_t iter) override;
  void record_totals(TelemetrySink& sink, std::size_t iterations,
                     std::size_t energy_samples) const override;

 private:
  SimcimParams params_;
  double c0_;
  std::vector<Rng> rngs_;  // one noise stream per replica
};

/// Ensemble SimCIM solve mirroring solve_sb_batch: best replica's best
/// solution, dynamic stop on the ensemble-best energy, `iterations` summed
/// over replicas, hooks applied at every sampling point.
IsingSolveResult solve_simcim(const IsingModel& model,
                              const SimcimParams& params, std::size_t replicas,
                              const SbBatchHook& hook = nullptr,
                              const SbBatchPlaneHook& plane_hook = nullptr,
                              const RunContext* ctx = nullptr);

}  // namespace adsd
