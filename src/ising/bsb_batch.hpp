#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "ising/bsb.hpp"
#include "ising/kernels/force_kernels.hpp"
#include "ising/model.hpp"
#include "support/aligned.hpp"

namespace adsd {

class RunContext;

/// Mutable view of one replica inside the batched engine's
/// replica-contiguous (structure-of-arrays) state: element i of the replica
/// lives at offset i * stride. Intervention hooks (the Theorem-3 reset of
/// Sec. 3.3.2) read and write oscillators through this view directly, so no
/// O(n * R) gather/scatter copy is needed per sampling point.
class ReplicaView {
 public:
  ReplicaView(double* x, double* y, std::size_t n, std::size_t stride)
      : x_(x), y_(y), n_(n), stride_(stride) {}

  std::size_t size() const { return n_; }
  std::size_t stride() const { return stride_; }

  double& x(std::size_t i) { return x_[i * stride_]; }
  double x(std::size_t i) const { return x_[i * stride_]; }
  double& y(std::size_t i) { return y_[i * stride_]; }
  double y(std::size_t i) const { return y_[i * stride_]; }

 private:
  double* x_;
  double* y_;
  std::size_t n_;
  std::size_t stride_;
};

/// Per-replica intervention hook of the batched engine; called at every
/// sampling point with the replica index and a strided view of its state.
using SbBatchHook = std::function<void(std::size_t replica, ReplicaView view)>;

/// Whole-ensemble intervention hook: called once per sampling point with
/// the raw SoA position/momentum planes (element i of replica r at index
/// i * replicas + r). Batched interventions (the plane-based Theorem-3
/// reset) use this to sweep all replicas with replica-contiguous inner
/// loops instead of R strided passes.
using SbBatchPlaneHook = std::function<void(
    std::span<double> x, std::span<double> y, std::size_t replicas)>;

/// Batched ballistic/discrete simulated bifurcation: R replicas advanced in
/// lockstep over a single flattened CSR traversal.
///
/// Layout: all state is structure-of-arrays with replicas contiguous —
/// x[i * R + r] is oscillator i of replica r — so the coupling loop loads
/// the weight of edge (i, j) once and streams R consecutive doubles of x.
/// The CSR adjacency is split into separate column-index and weight planes
/// (no interleaved pairs) and all planes are 64-byte aligned. Force
/// evaluation dispatches through the kernel layer of
/// ising/kernels/force_kernels.hpp: a cpuid-probed explicit-SIMD CSR
/// kernel (AVX2 / AVX-512, portable lane-blocked fallback) or, when the
/// model materialized a dense J plane, a blocked dense matrix x
/// replica-plane kernel with no index gather — selected at construction
/// from SbParams::kernel (kAuto by default) and reported via
/// kernel_name() and the "ising/sb/kernel/<name>" telemetry counter.
/// Every variant is bit-identical by construction.
///
/// Replica r reproduces the scalar reference solve_sb_scalar() with seed
/// params.seed + r * 0x9e3779b9 bit-for-bit: the per-replica arithmetic uses
/// the same expression trees and the same operation order per element, and
/// the wall clamp is a branchless select with identical semantics.
///
/// Energy sampling is incremental: the engine tracks the sign vector and
/// energy of every replica and, at each sampling point, updates the energy
/// by the exact flip telescope in O(flipped spins * degree) instead of
/// recomputing O(edges) per replica (invariant: tracked energy equals
/// IsingModel::energy() of the tracked signs up to accumulation rounding).
/// When a replica's tracked energy threatens the incumbent, the energy is
/// recomputed from scratch once and the tracked value snapped to it, so the
/// reported best is always a from-scratch IsingModel::energy() value.
class BsbBatchEngine {
 public:
  /// The model reference must outlive the engine.
  BsbBatchEngine(const IsingModel& model, const SbParams& params,
                 std::size_t replicas);

  /// Attaches an execution context (must outlive the engine; nullptr
  /// detaches). With a context, force evaluation shards rows across
  /// ctx->pool() once n * R is large enough to amortize chunk dispatch —
  /// bit-identical at every thread count because each row's accumulation
  /// is independent and element order within a row is unchanged — and
  /// run() honors the context deadline at sampling points.
  void set_context(const RunContext* ctx) { ctx_ = ctx; }

  std::size_t num_spins() const { return n_; }
  std::size_t replicas() const { return R_; }
  std::size_t steps_done() const { return step_; }

  /// Resolved force-kernel name ("scalar", "avx2", "avx512",
  /// "dense-avx512", ...) after dispatch walked the fallback chain.
  const char* kernel_name() const { return kernel_.name; }

  /// Resolved force-kernel kind (never kAuto).
  kernels::ForceKernel kernel_kind() const { return kernel_.kind; }

  /// One Euler step for all replicas (pump ramp from the step counter).
  void step();

  /// Force evaluation alone (fills the internal force plane from the
  /// current positions); exposed for the micro-benchmarks.
  void compute_forces();

  /// Refreshes the tracked signs and per-replica energies from the current
  /// positions via incremental flip updates. Call after external position
  /// edits (hooks) and before reading energies()/spins().
  void sample();

  /// Tracked per-replica energies (valid after sample()).
  std::span<const double> energies() const { return energies_; }

  /// Tracked signs, SoA layout: spins()[i * R + r] (valid after sample()).
  std::span<const std::int8_t> spins() const { return spins_; }

  /// Strided state view of replica r.
  ReplicaView view(std::size_t r) {
    return ReplicaView(x_.data() + r, y_.data() + r, n_, R_);
  }

  /// Raw SoA position/momentum planes (size n * R), for benchmarks/tests.
  std::span<double> positions() { return x_; }
  std::span<double> momenta() { return y_; }
  std::span<const double> forces() const { return force_; }

  /// Full solve loop (integration, sampling, dynamic stop, best tracking);
  /// `iterations` of the result counts Euler steps of one replica — callers
  /// scale by replicas() if they want the ensemble total. At each sampling
  /// point `plane_hook` (if any) runs first over the whole ensemble, then
  /// `hook` per replica.
  IsingSolveResult run(const SbBatchHook& hook = nullptr,
                       const SbBatchPlaneHook& plane_hook = nullptr);

 private:
  void flip(std::size_t i, std::size_t r, std::int8_t new_sign);
  double exact_energy(std::size_t r);
  void copy_replica_spins(std::size_t r, std::vector<std::int8_t>& out) const;

  const IsingModel& model_;
  SbParams params_;
  const RunContext* ctx_ = nullptr;
  std::size_t n_;
  std::size_t R_;
  double c0_;
  std::size_t step_ = 0;

  // Flattened CSR planes: separate index and weight arrays.
  std::vector<std::size_t> row_start_;       // n_ + 1
  AlignedVector<std::uint32_t> cols_;
  AlignedVector<double> weights_;
  AlignedVector<double> h_;

  // Dispatched force kernel: resolved entry points + the pointer bundle
  // handed to them (set up once in the constructor, after the planes
  // above stop reallocating).
  kernels::SelectedForceKernel kernel_;
  kernels::ForceRowsFn force_fn_ = nullptr;  // continuous or discrete entry
  kernels::ForcePlanes planes_;

  // SoA replica-contiguous state, n_ * R_ each.
  AlignedVector<double> x_;
  AlignedVector<double> y_;
  AlignedVector<double> force_;

  // Incremental-energy tracking.
  AlignedVector<std::int8_t> spins_;   // n_ * R_
  std::vector<double> energies_;       // R_
  std::vector<std::uint8_t> dirty_;    // R_: flips since last scratch sync
  std::vector<std::int8_t> scratch_spins_;  // n_, gather buffer
};

/// Batched counterpart of solve_sb_ensemble() built on BsbBatchEngine: R
/// replicas in lockstep, best replica's best solution returned, dynamic stop
/// on the ensemble-best energy, `iterations` summed over replicas. The hook
/// (if any) is applied to every replica at each sampling point through a
/// strided view (no copies); `plane_hook` (if any) runs once per sampling
/// point over the whole ensemble before the per-replica hook. A non-null
/// `ctx` enables row-sharded force evaluation over ctx->pool(), deadline
/// checks, and step counters in ctx->telemetry().
IsingSolveResult solve_sb_batch(const IsingModel& model, const SbParams& params,
                                std::size_t replicas,
                                const SbBatchHook& hook = nullptr,
                                const SbBatchPlaneHook& plane_hook = nullptr,
                                const RunContext* ctx = nullptr);

}  // namespace adsd
