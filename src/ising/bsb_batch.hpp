#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ising/bsb.hpp"
#include "ising/engine.hpp"
#include "ising/model.hpp"

namespace adsd {

class RunContext;

/// Batched ballistic/discrete simulated bifurcation: R replicas advanced in
/// lockstep over a single flattened CSR traversal, hosted on the shared
/// EnsembleEngineBase chassis (SoA planes, dispatched force kernel,
/// incremental energy tracking) and driven by the engine-agnostic
/// run_engine() sweep driver.
///
/// Layout: all state is structure-of-arrays with replicas contiguous —
/// x[i * R + r] is oscillator i of replica r — so the coupling loop loads
/// the weight of edge (i, j) once and streams R consecutive doubles of x.
/// The CSR adjacency is split into separate column-index and weight planes
/// (no interleaved pairs) and all planes are 64-byte aligned. Force
/// evaluation dispatches through the kernel layer of
/// ising/kernels/force_kernels.hpp: a cpuid-probed explicit-SIMD CSR
/// kernel (AVX2 / AVX-512, portable lane-blocked fallback) or, when the
/// model materialized a dense J plane, a blocked dense matrix x
/// replica-plane kernel with no index gather — selected at construction
/// from SbParams::kernel (kAuto by default) and reported via
/// kernel_name() and the "ising/sb/kernel/<name>" telemetry counter.
/// Every variant is bit-identical by construction.
///
/// Replica r reproduces the scalar reference solve_sb_scalar() with seed
/// params.seed + r * 0x9e3779b9 bit-for-bit: the per-replica arithmetic uses
/// the same expression trees and the same operation order per element, and
/// the wall clamp is a branchless select with identical semantics.
class BsbBatchEngine final : public EnsembleEngineBase {
 public:
  /// The model reference must outlive the engine.
  BsbBatchEngine(const IsingModel& model, const SbParams& params,
                 std::size_t replicas);

  std::size_t steps_done() const { return step_; }

  /// One Euler step for all replicas (pump ramp from the step counter).
  void step();

  // IsingEngine contract: the "ising/sb" counter and "ising/bsb" trace
  // namespaces are the engine's historical names, kept verbatim.
  const char* telemetry_prefix() const override { return "ising/sb"; }
  const char* trace_prefix() const override { return "ising/bsb"; }
  std::string curve_name() const override;
  std::size_t max_iterations() const override { return params_.max_iterations; }
  std::size_t sample_interval() const override;
  const DynamicStopParams& stop_params() const override { return params_.stop; }
  bool supports_budget_rescale() const override { return true; }
  void apply_budget_rescale(std::size_t max_iterations) override {
    params_.max_iterations = max_iterations;
  }
  void advance(std::size_t /*iter*/) override { step(); }
  void record_totals(TelemetrySink& sink, std::size_t iterations,
                     std::size_t energy_samples) const override;

 private:
  SbParams params_;
  double c0_;
  std::size_t step_ = 0;
};

/// Batched counterpart of solve_sb_ensemble() built on BsbBatchEngine: R
/// replicas in lockstep, best replica's best solution returned, dynamic stop
/// on the ensemble-best energy, `iterations` summed over replicas. The hook
/// (if any) is applied to every replica at each sampling point through a
/// strided view (no copies); `plane_hook` (if any) runs once per sampling
/// point over the whole ensemble before the per-replica hook. A non-null
/// `ctx` enables row-sharded force evaluation over ctx->pool(), deadline
/// checks, and step counters in ctx->telemetry().
IsingSolveResult solve_sb_batch(const IsingModel& model, const SbParams& params,
                                std::size_t replicas,
                                const SbBatchHook& hook = nullptr,
                                const SbBatchPlaneHook& plane_hook = nullptr,
                                const RunContext* ctx = nullptr);

}  // namespace adsd
