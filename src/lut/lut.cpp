#include "lut/lut.hpp"

#include <stdexcept>

namespace adsd {

Lut::Lut(unsigned address_bits)
    : address_bits_(address_bits),
      contents_(std::uint64_t{1} << address_bits) {
  if (address_bits == 0 || address_bits > 30) {
    throw std::invalid_argument("Lut: address bits must be in [1, 30]");
  }
}

Lut::Lut(unsigned address_bits, BitVec contents) : Lut(address_bits) {
  if (contents.size() != (std::uint64_t{1} << address_bits)) {
    throw std::invalid_argument("Lut: contents size mismatch");
  }
  contents_ = std::move(contents);
}

}  // namespace adsd
