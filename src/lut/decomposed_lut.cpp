#include "lut/decomposed_lut.hpp"

#include <stdexcept>

namespace adsd {

DecomposedLut::DecomposedLut(InputPartition w, Lut phi, Lut f)
    : partition_(std::move(w)), phi_(std::move(phi)), f_(std::move(f)) {}

DecomposedLut DecomposedLut::from_column_setting(const InputPartition& w,
                                                 const ColumnSetting& cs) {
  if (cs.t.size() != w.num_cols() || cs.v1.size() != w.num_rows() ||
      cs.v2.size() != w.num_rows()) {
    throw std::invalid_argument(
        "DecomposedLut: column setting does not match the partition");
  }
  const auto free_bits = static_cast<unsigned>(w.free_vars().size());
  const auto bound_bits = static_cast<unsigned>(w.bound_vars().size());

  Lut phi(bound_bits, cs.t);

  Lut f(free_bits + 1);
  for (std::uint64_t i = 0; i < w.num_rows(); ++i) {
    f.write(i, cs.v1.get(i));
    f.write((std::uint64_t{1} << free_bits) | i, cs.v2.get(i));
  }
  return DecomposedLut(w, std::move(phi), std::move(f));
}

DecomposedLut DecomposedLut::from_row_setting(const InputPartition& w,
                                              const RowSetting& rs) {
  if (rs.pattern.size() != w.num_cols() || rs.types.size() != w.num_rows()) {
    throw std::invalid_argument(
        "DecomposedLut: row setting does not match the partition");
  }
  const auto free_bits = static_cast<unsigned>(w.free_vars().size());
  const auto bound_bits = static_cast<unsigned>(w.bound_vars().size());

  Lut phi(bound_bits, rs.pattern);

  Lut f(free_bits + 1);
  for (std::uint64_t i = 0; i < w.num_rows(); ++i) {
    for (std::uint64_t p = 0; p <= 1; ++p) {
      bool value = false;
      switch (rs.types[i]) {
        case RowType::kAllZero:
          value = false;
          break;
        case RowType::kAllOne:
          value = true;
          break;
        case RowType::kPattern:
          value = p != 0;
          break;
        case RowType::kComplement:
          value = p == 0;
          break;
      }
      f.write((p << free_bits) | i, value);
    }
  }
  return DecomposedLut(w, std::move(phi), std::move(f));
}

bool DecomposedLut::evaluate(std::uint64_t x) const {
  const std::uint64_t col = partition_.col_of(x);
  const std::uint64_t row = partition_.row_of(x);
  const bool phi = phi_.read(col);
  const auto free_bits = static_cast<unsigned>(partition_.free_vars().size());
  return f_.read((static_cast<std::uint64_t>(phi) << free_bits) | row);
}

BitVec DecomposedLut::truth_table() const {
  const std::uint64_t patterns = std::uint64_t{1} << partition_.num_inputs();
  BitVec out(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    out.set(x, evaluate(x));
  }
  return out;
}

void DecomposedLutNetwork::add_output(DecomposedLut lut) {
  if (!outputs_.empty() &&
      outputs_.front().partition().num_inputs() !=
          lut.partition().num_inputs()) {
    throw std::invalid_argument(
        "DecomposedLutNetwork: all outputs must share the input width");
  }
  outputs_.push_back(std::move(lut));
}

std::uint64_t DecomposedLutNetwork::evaluate(std::uint64_t x) const {
  std::uint64_t word = 0;
  for (std::size_t k = 0; k < outputs_.size(); ++k) {
    word |= static_cast<std::uint64_t>(outputs_[k].evaluate(x)) << k;
  }
  return word;
}

TruthTable DecomposedLutNetwork::to_truth_table() const {
  if (outputs_.empty()) {
    throw std::logic_error("DecomposedLutNetwork: no outputs");
  }
  const unsigned n = outputs_.front().partition().num_inputs();
  TruthTable tt(n, static_cast<unsigned>(outputs_.size()));
  for (unsigned k = 0; k < outputs_.size(); ++k) {
    tt.set_output(k, outputs_[k].truth_table());
  }
  return tt;
}

std::uint64_t DecomposedLutNetwork::total_size_bits() const {
  std::uint64_t total = 0;
  for (const auto& o : outputs_) {
    total += o.size_bits();
  }
  return total;
}

std::uint64_t DecomposedLutNetwork::total_flat_size_bits() const {
  std::uint64_t total = 0;
  for (const auto& o : outputs_) {
    total += o.flat_size_bits();
  }
  return total;
}

}  // namespace adsd
