#pragma once

#include <cstdint>

#include "support/bitvec.hpp"

namespace adsd {

/// Flat single-output lookup table: 2^address_bits one-bit entries.
///
/// This is the storage model of computing-with-memory: the function value
/// is fetched by addressing the table with the input pattern. The cost model
/// is simply the number of stored bits.
class Lut {
 public:
  explicit Lut(unsigned address_bits);
  Lut(unsigned address_bits, BitVec contents);

  unsigned address_bits() const { return address_bits_; }
  std::uint64_t size_bits() const { return contents_.size(); }

  bool read(std::uint64_t address) const { return contents_.get(address); }
  void write(std::uint64_t address, bool v) { contents_.set(address, v); }

  const BitVec& contents() const { return contents_; }

 private:
  unsigned address_bits_;
  BitVec contents_;
};

}  // namespace adsd
