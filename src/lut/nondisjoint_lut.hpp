#pragma once

#include <cstdint>

#include "boolean/nondisjoint.hpp"
#include "lut/lut.hpp"

namespace adsd {

/// Hardware realization of a non-disjoint decomposition
/// g(X) = F(phi(B' u S), A' u S):
///
///   * phi-LUT: 2^(|B'|+|S|) bits, addressed by (shared, bound) bits;
///   * F-LUT:   2^(|A'|+|S|+1) bits, addressed by (phi, shared, free) bits.
///
/// With |S| = 0 this degenerates to the DecomposedLut pair. Each extra
/// shared variable doubles both tables -- the accuracy/storage knob the
/// BA framework (ref. [10]) explores.
class NonDisjointLut {
 public:
  static NonDisjointLut from_setting(const NonDisjointPartition& w,
                                     const NonDisjointSetting& s);

  const NonDisjointPartition& partition() const { return partition_; }
  const Lut& phi_lut() const { return phi_; }
  const Lut& f_lut() const { return f_; }

  /// Reads the two tables exactly as hardware would.
  bool evaluate(std::uint64_t x) const;

  std::uint64_t size_bits() const { return phi_.size_bits() + f_.size_bits(); }
  std::uint64_t flat_size_bits() const {
    return std::uint64_t{1} << partition_.num_inputs();
  }

  BitVec truth_table() const;

 private:
  NonDisjointLut(NonDisjointPartition w, Lut phi, Lut f);

  NonDisjointPartition partition_;
  Lut phi_;
  Lut f_;
};

}  // namespace adsd
