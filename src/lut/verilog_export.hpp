#pragma once

#include <ostream>
#include <string>

#include "lut/decomposed_lut.hpp"
#include "lut/nondisjoint_lut.hpp"

namespace adsd {

/// Emits a synthesizable Verilog-2001 module implementing the decomposed
/// LUT network: per output, a phi-ROM and an F-ROM expressed as localparam
/// bit vectors indexed by the (re-wired) input bits -- the literal
/// computing-with-memory structure of Fig. 1.
///
/// Interface: `module <name>(input wire [n-1:0] x, output wire [m-1:0] y);`
void write_verilog(std::ostream& os, const DecomposedLutNetwork& net,
                   const std::string& module_name);

/// Same for a single non-disjoint output:
/// `module <name>(input wire [n-1:0] x, output wire y);`
void write_verilog(std::ostream& os, const NonDisjointLut& lut,
                   const std::string& module_name);

/// Emits a self-checking testbench that drives every input pattern and
/// compares against the expected truth table, `$fatal`-ing on mismatch.
/// `expected` must have one entry (the m-bit word) per input pattern.
void write_verilog_testbench(std::ostream& os, const std::string& dut_name,
                             unsigned num_inputs, unsigned num_outputs,
                             const TruthTable& expected);

/// Writes a LUT's contents as a $readmemb-compatible memory image
/// (one bit per line, address ascending).
void write_mem_image(std::ostream& os, const Lut& lut);

}  // namespace adsd
