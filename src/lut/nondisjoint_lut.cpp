#include "lut/nondisjoint_lut.hpp"

#include <stdexcept>

namespace adsd {

NonDisjointLut::NonDisjointLut(NonDisjointPartition w, Lut phi, Lut f)
    : partition_(std::move(w)), phi_(std::move(phi)), f_(std::move(f)) {}

NonDisjointLut NonDisjointLut::from_setting(const NonDisjointPartition& w,
                                            const NonDisjointSetting& s) {
  if (s.slices.size() != w.num_slices()) {
    throw std::invalid_argument("NonDisjointLut: slice count mismatch");
  }
  const auto free_bits = static_cast<unsigned>(w.free_vars().size());
  const auto bound_bits = static_cast<unsigned>(w.bound_vars().size());
  const auto shared_bits = static_cast<unsigned>(w.shared_vars().size());

  Lut phi(bound_bits + shared_bits);
  Lut f(free_bits + shared_bits + 1);
  for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
    const ColumnSetting& cs = s.slices[sl];
    if (cs.t.size() != w.num_cols() || cs.v1.size() != w.num_rows() ||
        cs.v2.size() != w.num_rows()) {
      throw std::invalid_argument("NonDisjointLut: setting shape mismatch");
    }
    for (std::uint64_t j = 0; j < w.num_cols(); ++j) {
      phi.write((sl << bound_bits) | j, cs.t.get(j));
    }
    for (std::uint64_t i = 0; i < w.num_rows(); ++i) {
      const std::uint64_t base = (sl << free_bits) | i;
      f.write(base, cs.v1.get(i));
      f.write((std::uint64_t{1} << (free_bits + shared_bits)) | base,
              cs.v2.get(i));
    }
  }
  return NonDisjointLut(w, std::move(phi), std::move(f));
}

bool NonDisjointLut::evaluate(std::uint64_t x) const {
  const auto free_bits =
      static_cast<unsigned>(partition_.free_vars().size());
  const auto bound_bits =
      static_cast<unsigned>(partition_.bound_vars().size());
  const auto shared_bits =
      static_cast<unsigned>(partition_.shared_vars().size());

  const std::uint64_t slice = partition_.slice_of(x);
  const bool phi = phi_.read((slice << bound_bits) | partition_.col_of(x));
  const std::uint64_t f_addr =
      (static_cast<std::uint64_t>(phi) << (free_bits + shared_bits)) |
      (slice << free_bits) | partition_.row_of(x);
  return f_.read(f_addr);
}

BitVec NonDisjointLut::truth_table() const {
  const std::uint64_t patterns = std::uint64_t{1} << partition_.num_inputs();
  BitVec out(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    out.set(x, evaluate(x));
  }
  return out;
}

}  // namespace adsd
