#pragma once

#include <cstdint>
#include <vector>

#include "boolean/decomposition.hpp"
#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "lut/lut.hpp"

namespace adsd {

/// One output bit implemented as the two-level LUT structure produced by a
/// disjoint decomposition g(X) = F(phi(B), A):
///
///   * phi-LUT: 2^|B| bits, addressed by the bound-set assignment;
///   * F-LUT:   2^(|A|+1) bits, addressed by (phi, free-set assignment).
///
/// Storage drops from 2^n to 2^|B| + 2^(|A|+1) bits (the Fig. 1 saving).
class DecomposedLut {
 public:
  /// Builds the LUT pair realizing a column-based setting (phi = T,
  /// F(0, i) = V1_i, F(1, i) = V2_i).
  static DecomposedLut from_column_setting(const InputPartition& w,
                                           const ColumnSetting& cs);

  /// Builds the LUT pair realizing a row-based setting (phi = V; F follows
  /// the row type).
  static DecomposedLut from_row_setting(const InputPartition& w,
                                        const RowSetting& rs);

  const InputPartition& partition() const { return partition_; }
  const Lut& phi_lut() const { return phi_; }
  const Lut& f_lut() const { return f_; }

  /// Reads the two tables for input pattern x exactly as hardware would.
  bool evaluate(std::uint64_t x) const;

  std::uint64_t size_bits() const { return phi_.size_bits() + f_.size_bits(); }

  /// Storage of the undecomposed LUT for the same output.
  std::uint64_t flat_size_bits() const {
    return std::uint64_t{1} << partition_.num_inputs();
  }

  /// Full truth-table column recovered by evaluating every pattern.
  BitVec truth_table() const;

 private:
  DecomposedLut(InputPartition w, Lut phi, Lut f);

  InputPartition partition_;
  Lut phi_;
  Lut f_;
};

/// A complete m-output approximate LUT architecture: one decomposed LUT per
/// output, each free to use its own input partition (as in the DALTA
/// framework, where partitions are optimized per component function).
class DecomposedLutNetwork {
 public:
  DecomposedLutNetwork() = default;

  void add_output(DecomposedLut lut);

  std::size_t num_outputs() const { return outputs_.size(); }
  const DecomposedLut& output(std::size_t k) const { return outputs_[k]; }

  /// m-bit output word for an input pattern (output k is bit k).
  std::uint64_t evaluate(std::uint64_t x) const;

  /// Truth table of the whole network.
  TruthTable to_truth_table() const;

  std::uint64_t total_size_bits() const;
  std::uint64_t total_flat_size_bits() const;

 private:
  std::vector<DecomposedLut> outputs_;
};

}  // namespace adsd
