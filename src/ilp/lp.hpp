#pragma once

#include <cstddef>
#include <vector>

namespace adsd {

/// Relation of a linear constraint.
enum class Relation { kLe, kGe, kEq };

/// One row: coeffs . x  (rel)  rhs. Missing trailing coefficients are zero.
struct LinearConstraint {
  std::vector<double> coeffs;
  Relation rel = Relation::kLe;
  double rhs = 0.0;
};

/// Linear program
///
///   minimize  objective . x
///   s.t.      every constraint holds,  x >= 0.
///
/// Variables are continuous and non-negative; upper bounds are expressed as
/// explicit constraints (the binary ILP layer adds x_i <= 1 rows itself).
/// This is the LP-relaxation engine of the branch-and-bound ILP solver that
/// stands in for Gurobi (see DESIGN.md).
struct LpProblem {
  std::vector<double> objective;
  std::vector<LinearConstraint> constraints;

  std::size_t num_vars() const { return objective.size(); }

  /// Convenience builders.
  void add_le(std::vector<double> coeffs, double rhs);
  void add_ge(std::vector<double> coeffs, double rhs);
  void add_eq(std::vector<double> coeffs, double rhs);
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded, kIterLimit };

struct LpSolution {
  LpStatus status = LpStatus::kIterLimit;
  double objective = 0.0;
  std::vector<double> x;
};

/// Two-phase dense tableau simplex with Bland's anti-cycling rule.
/// Intended for the small/medium instances of this library; it is exact up
/// to floating-point tolerance, not a high-performance production LP code.
LpSolution solve_lp(const LpProblem& problem, std::size_t max_pivots = 50000);

}  // namespace adsd
