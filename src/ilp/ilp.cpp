#include "ilp/ilp.hpp"

#include <cmath>
#include <stdexcept>

namespace adsd {

namespace {

constexpr double kIntTol = 1e-6;

struct Node {
  // Variable fixings accumulated on the path from the root: pairs of
  // (variable, value). Re-applied as equality rows on the base LP; simple
  // and robust, and our trees are shallow enough that re-solving from
  // scratch dominates anyway with a dense tableau.
  std::vector<std::pair<std::size_t, int>> fixings;
};

class BranchAndBound {
 public:
  BranchAndBound(const IlpProblem& p, const IlpParams& params)
      : problem_(p), params_(params), deadline_(params.time_budget_s) {
    if (p.is_binary.size() != p.lp.num_vars()) {
      throw std::invalid_argument("solve_ilp: is_binary size mismatch");
    }
  }

  IlpSolution run(const std::vector<double>* initial) {
    if (initial != nullptr) {
      accept_if_feasible(*initial);
    }
    std::vector<Node> stack;
    stack.push_back({});

    while (!stack.empty()) {
      if (deadline_.expired() || result_.nodes_explored >= params_.max_nodes) {
        break;
      }
      Node node = std::move(stack.back());
      stack.pop_back();
      ++result_.nodes_explored;

      const LpSolution relax = solve_node(node);
      if (relax.status == LpStatus::kInfeasible) {
        continue;
      }
      if (relax.status != LpStatus::kOptimal) {
        // Unbounded/iteration-limited relaxations: cannot bound, give up on
        // pruning this subtree but keep exploring by branching blindly.
        branch_first_free(node, stack);
        continue;
      }
      if (has_incumbent_ &&
          relax.objective >= result_.objective - params_.gap_tol) {
        continue;  // bound prune
      }

      const std::size_t frac = most_fractional(relax.x);
      if (frac == problem_.lp.num_vars()) {
        accept_if_feasible(relax.x);
        continue;
      }

      // Explore the rounded-nearest child first (depth-first dive).
      const int near = relax.x[frac] >= 0.5 ? 1 : 0;
      Node far_child = node;
      far_child.fixings.emplace_back(frac, 1 - near);
      Node near_child = std::move(node);
      near_child.fixings.emplace_back(frac, near);
      stack.push_back(std::move(far_child));
      stack.push_back(std::move(near_child));
    }

    result_.proven_optimal = stack.empty() && has_incumbent_ &&
                             result_.nodes_explored < params_.max_nodes &&
                             !deadline_.expired();
    if (!has_incumbent_) {
      result_.status =
          stack.empty() ? IlpStatus::kInfeasible : IlpStatus::kNoSolution;
    } else {
      result_.status =
          result_.proven_optimal ? IlpStatus::kOptimal : IlpStatus::kFeasible;
    }
    return result_;
  }

 private:
  LpSolution solve_node(const Node& node) {
    LpProblem lp = problem_.lp;
    const std::size_t n = lp.num_vars();
    // Binary bounds x <= 1 (x >= 0 is implicit in the simplex).
    for (std::size_t j = 0; j < n; ++j) {
      if (problem_.is_binary[j]) {
        std::vector<double> row(j + 1, 0.0);
        row[j] = 1.0;
        lp.add_le(std::move(row), 1.0);
      }
    }
    for (const auto& [var, value] : node.fixings) {
      std::vector<double> row(var + 1, 0.0);
      row[var] = 1.0;
      lp.add_eq(std::move(row), static_cast<double>(value));
    }
    return solve_lp(lp);
  }

  std::size_t most_fractional(const std::vector<double>& x) const {
    std::size_t best = problem_.lp.num_vars();
    double best_dist = kIntTol;
    for (std::size_t j = 0; j < x.size(); ++j) {
      if (!problem_.is_binary[j]) {
        continue;
      }
      const double frac = std::fabs(x[j] - std::round(x[j]));
      if (frac > best_dist) {
        best_dist = frac;
        best = j;
      }
    }
    return best;
  }

  void branch_first_free(const Node& node, std::vector<Node>& stack) const {
    std::vector<bool> fixed(problem_.lp.num_vars(), false);
    for (const auto& [var, value] : node.fixings) {
      (void)value;
      fixed[var] = true;
    }
    for (std::size_t j = 0; j < problem_.lp.num_vars(); ++j) {
      if (problem_.is_binary[j] && !fixed[j]) {
        for (int v = 0; v <= 1; ++v) {
          Node child = node;
          child.fixings.emplace_back(j, v);
          stack.push_back(std::move(child));
        }
        return;
      }
    }
  }

  void accept_if_feasible(const std::vector<double>& x) {
    if (x.size() != problem_.lp.num_vars()) {
      return;
    }
    std::vector<double> rounded = x;
    for (std::size_t j = 0; j < rounded.size(); ++j) {
      if (problem_.is_binary[j]) {
        const double r = std::round(rounded[j]);
        if (std::fabs(rounded[j] - r) > kIntTol || r < -kIntTol ||
            r > 1.0 + kIntTol) {
          return;
        }
        rounded[j] = r;
      } else if (rounded[j] < -kIntTol) {
        return;
      }
    }
    for (const auto& c : problem_.lp.constraints) {
      double lhs = 0.0;
      for (std::size_t j = 0; j < c.coeffs.size(); ++j) {
        lhs += c.coeffs[j] * rounded[j];
      }
      const double slack = lhs - c.rhs;
      if ((c.rel == Relation::kLe && slack > 1e-6) ||
          (c.rel == Relation::kGe && slack < -1e-6) ||
          (c.rel == Relation::kEq && std::fabs(slack) > 1e-6)) {
        return;
      }
    }
    double obj = 0.0;
    for (std::size_t j = 0; j < rounded.size(); ++j) {
      obj += problem_.lp.objective[j] * rounded[j];
    }
    if (!has_incumbent_ || obj < result_.objective) {
      has_incumbent_ = true;
      result_.objective = obj;
      result_.x = std::move(rounded);
    }
  }

  const IlpProblem& problem_;
  IlpParams params_;
  Deadline deadline_;
  IlpSolution result_;
  bool has_incumbent_ = false;
};

}  // namespace

IlpSolution solve_ilp(const IlpProblem& problem, const IlpParams& params,
                      const std::vector<double>* initial) {
  BranchAndBound bb(problem, params);
  return bb.run(initial);
}

}  // namespace adsd
