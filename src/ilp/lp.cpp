#include "ilp/lp.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace adsd {

void LpProblem::add_le(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), Relation::kLe, rhs});
}
void LpProblem::add_ge(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), Relation::kGe, rhs});
}
void LpProblem::add_eq(std::vector<double> coeffs, double rhs) {
  constraints.push_back({std::move(coeffs), Relation::kEq, rhs});
}

namespace {

constexpr double kEps = 1e-9;

/// Dense simplex tableau. Columns: structural vars, slack/surplus vars,
/// artificial vars, rhs. One extra row holds the (priced-out) objective.
class Tableau {
 public:
  Tableau(const LpProblem& p) {
    const std::size_t n = p.num_vars();
    const std::size_t m = p.constraints.size();

    // Count auxiliary columns.
    num_slack_ = 0;
    num_art_ = 0;
    for (const auto& c : p.constraints) {
      const bool flipped = c.rhs < 0.0;
      const Relation rel = flipped ? flip(c.rel) : c.rel;
      if (rel != Relation::kEq) {
        ++num_slack_;
      }
      if (rel != Relation::kLe) {
        ++num_art_;
      }
    }

    n_ = n;
    m_ = m;
    cols_ = n + num_slack_ + num_art_ + 1;
    rows_.assign(m, std::vector<double>(cols_, 0.0));
    basis_.assign(m, 0);
    art_start_ = n + num_slack_;

    std::size_t slack = 0;
    std::size_t art = 0;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& c = p.constraints[i];
      if (c.coeffs.size() > n) {
        throw std::invalid_argument("LP: constraint wider than objective");
      }
      const bool flipped = c.rhs < 0.0;
      const double sign = flipped ? -1.0 : 1.0;
      const Relation rel = flipped ? flip(c.rel) : c.rel;

      for (std::size_t j = 0; j < c.coeffs.size(); ++j) {
        rows_[i][j] = sign * c.coeffs[j];
      }
      rows_[i][cols_ - 1] = sign * c.rhs;

      if (rel == Relation::kLe) {
        rows_[i][n + slack] = 1.0;
        basis_[i] = n + slack;
        ++slack;
      } else if (rel == Relation::kGe) {
        rows_[i][n + slack] = -1.0;
        ++slack;
        rows_[i][art_start_ + art] = 1.0;
        basis_[i] = art_start_ + art;
        ++art;
      } else {
        rows_[i][art_start_ + art] = 1.0;
        basis_[i] = art_start_ + art;
        ++art;
      }
    }
  }

  /// Runs the simplex loop to optimality on cost vector `cost` (size
  /// cols_-1). Returns false on unboundedness. `allowed_cols` bounds the
  /// entering-candidate range (used to exclude artificials in phase 2).
  bool optimize(const std::vector<double>& cost, std::size_t allowed_cols,
                std::size_t& pivots, std::size_t max_pivots) {
    // Price out: z-row = cost, minus cost of basic variables times rows.
    z_.assign(cols_, 0.0);
    for (std::size_t j = 0; j + 1 < cols_; ++j) {
      z_[j] = cost[j];
    }
    for (std::size_t i = 0; i < m_; ++i) {
      const double cb = cost[basis_[i]];
      if (cb != 0.0) {
        for (std::size_t j = 0; j < cols_; ++j) {
          z_[j] -= cb * rows_[i][j];
        }
      }
    }

    while (pivots < max_pivots) {
      // Bland's rule: smallest-index column with negative reduced cost.
      std::size_t enter = cols_;
      for (std::size_t j = 0; j < allowed_cols; ++j) {
        if (z_[j] < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter == cols_) {
        return true;  // optimal
      }

      // Ratio test, Bland tie-break on the leaving basic variable index.
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        const double a = rows_[i][enter];
        if (a > kEps) {
          const double ratio = rows_[i][cols_ - 1] / a;
          if (ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps &&
               (leave == m_ || basis_[i] < basis_[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) {
        return false;  // unbounded in this direction
      }
      pivot(leave, enter);
      ++pivots;
    }
    return true;  // iteration limit; caller checks pivots
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = rows_[row][col];
    for (std::size_t j = 0; j < cols_; ++j) {
      rows_[row][j] /= p;
    }
    rows_[row][col] = 1.0;  // kill roundoff
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == row) {
        continue;
      }
      const double f = rows_[i][col];
      if (f != 0.0) {
        for (std::size_t j = 0; j < cols_; ++j) {
          rows_[i][j] -= f * rows_[row][j];
        }
        rows_[i][col] = 0.0;
      }
    }
    const double fz = z_[col];
    if (fz != 0.0) {
      for (std::size_t j = 0; j < cols_; ++j) {
        z_[j] -= fz * rows_[row][j];
      }
      z_[col] = 0.0;
    }
    basis_[row] = col;
  }

  /// After phase 1: pivot any artificial still basic (at value 0) onto a
  /// structural/slack column, so phase 2 never re-enters artificials.
  void expel_artificials() {
    for (std::size_t i = 0; i < m_; ++i) {
      if (basis_[i] < art_start_) {
        continue;
      }
      std::size_t col = art_start_;
      for (std::size_t j = 0; j < art_start_; ++j) {
        if (std::fabs(rows_[i][j]) > kEps) {
          col = j;
          break;
        }
      }
      if (col < art_start_) {
        pivot(i, col);
      }
      // Otherwise the row is redundant (all structural coefficients zero,
      // rhs zero); leaving the artificial basic at zero is harmless as long
      // as phase 2 never lets artificials enter, which allowed_cols ensures.
    }
  }

  double rhs(std::size_t i) const { return rows_[i][cols_ - 1]; }
  std::size_t basic_var(std::size_t i) const { return basis_[i]; }
  std::size_t num_rows() const { return m_; }
  std::size_t num_structural() const { return n_; }
  std::size_t art_start() const { return art_start_; }
  std::size_t num_cols() const { return cols_; }
  bool has_artificials() const { return num_art_ > 0; }

 private:
  static Relation flip(Relation r) {
    if (r == Relation::kLe) {
      return Relation::kGe;
    }
    if (r == Relation::kGe) {
      return Relation::kLe;
    }
    return Relation::kEq;
  }

  std::size_t n_ = 0;
  std::size_t m_ = 0;
  std::size_t cols_ = 0;
  std::size_t num_slack_ = 0;
  std::size_t num_art_ = 0;
  std::size_t art_start_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<double> z_;
  std::vector<std::size_t> basis_;
};

}  // namespace

LpSolution solve_lp(const LpProblem& problem, std::size_t max_pivots) {
  if (problem.objective.empty()) {
    throw std::invalid_argument("solve_lp: no variables");
  }

  Tableau t(problem);
  std::size_t pivots = 0;

  if (t.has_artificials()) {
    // Phase 1: minimize the sum of artificials.
    std::vector<double> cost(t.num_cols() - 1, 0.0);
    for (std::size_t j = t.art_start(); j + 1 < t.num_cols(); ++j) {
      cost[j] = 1.0;
    }
    if (!t.optimize(cost, t.num_cols() - 1, pivots, max_pivots)) {
      // Phase 1 objective is bounded below by zero; unbounded cannot occur.
      return {LpStatus::kInfeasible, 0.0, {}};
    }
    if (pivots >= max_pivots) {
      return {LpStatus::kIterLimit, 0.0, {}};
    }
    double art_sum = 0.0;
    for (std::size_t i = 0; i < t.num_rows(); ++i) {
      if (t.basic_var(i) >= t.art_start()) {
        art_sum += t.rhs(i);
      }
    }
    if (art_sum > 1e-7) {
      return {LpStatus::kInfeasible, 0.0, {}};
    }
    t.expel_artificials();
  }

  // Phase 2: the real objective over structural + slack columns only.
  std::vector<double> cost(t.num_cols() - 1, 0.0);
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    cost[j] = problem.objective[j];
  }
  if (!t.optimize(cost, t.art_start(), pivots, max_pivots)) {
    return {LpStatus::kUnbounded, 0.0, {}};
  }
  if (pivots >= max_pivots) {
    return {LpStatus::kIterLimit, 0.0, {}};
  }

  LpSolution sol;
  sol.status = LpStatus::kOptimal;
  sol.x.assign(problem.num_vars(), 0.0);
  for (std::size_t i = 0; i < t.num_rows(); ++i) {
    if (t.basic_var(i) < problem.num_vars()) {
      sol.x[t.basic_var(i)] = t.rhs(i);
    }
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < problem.num_vars(); ++j) {
    sol.objective += problem.objective[j] * sol.x[j];
  }
  return sol;
}

}  // namespace adsd
