#pragma once

#include <cstdint>
#include <vector>

#include "ilp/lp.hpp"
#include "support/timer.hpp"

namespace adsd {

/// 0-1 integer linear program: the LP plus a set of variables restricted to
/// {0, 1}. Non-flagged variables stay continuous (mixed formulations, e.g.
/// the linearized products in the row-based core-COP encoding, keep the
/// auxiliaries continuous).
struct IlpProblem {
  LpProblem lp;
  std::vector<bool> is_binary;  // size == lp.num_vars()
};

struct IlpParams {
  /// Anytime budget in seconds; <= 0 means unlimited. On expiry the
  /// incumbent (best feasible found) is returned with proven_optimal=false,
  /// matching how the paper runs Gurobi with a wall-clock cap.
  double time_budget_s = 10.0;

  /// Stop when the tree gap closes below this absolute tolerance.
  double gap_tol = 1e-9;

  std::size_t max_nodes = 10'000'000;
};

enum class IlpStatus { kOptimal, kFeasible, kInfeasible, kNoSolution };

struct IlpSolution {
  IlpStatus status = IlpStatus::kNoSolution;
  double objective = 0.0;
  std::vector<double> x;  // binaries are exact 0/1
  std::size_t nodes_explored = 0;
  bool proven_optimal = false;
};

/// Depth-first branch-and-bound with LP-relaxation bounds (most-fractional
/// branching, incumbent warm start optional via `initial`).
IlpSolution solve_ilp(const IlpProblem& problem, const IlpParams& params,
                      const std::vector<double>* initial = nullptr);

}  // namespace adsd
