#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "boolean/error_metrics.hpp"
#include "boolean/partition.hpp"
#include "ising/model.hpp"

namespace adsd {

/// Optimization mode of the approximate decomposition (Sec. 2.4): separate
/// minimizes the error rate of the current component function alone; joint
/// minimizes the mean error distance of the whole output word with the
/// other components fixed at their latest versions.
enum class DecompMode { kSeparate, kJoint };

/// Per-cell occurrence probabilities p_kij of the Boolean matrix of output k
/// under partition `w`: p_ij = Pr[input pattern at row i, column j].
std::vector<double> matrix_probs(const InputDistribution& dist,
                                 const InputPartition& w);

/// Allocation-free variant for hot loops: fills `out` (resized to
/// rows * cols) with the cell probabilities under `w`. `idx` must be the
/// indexer of `w`; the non-uniform path scatters pattern probabilities
/// through its byte LUTs in one pass over the 2^n patterns instead of
/// calling input_of per cell.
void matrix_probs_into(const InputDistribution& dist, const InputPartition& w,
                       const PartitionIndexer& idx, std::vector<double>& out);

/// The column-based core COP for one (component function, partition) pair:
///
///   minimize  sum_ij ( base_ij + gain_ij * Ohat_ij ),
///   Ohat_ij = (1 - T_j) V1_i + T_j V2_i            (Eq. 3),
///
/// where (base, gain) encode either the separate-mode error rate (Eq. 7:
/// base = p*O, gain = p(1-2O)) or the joint-mode linearized error distance
/// (Eqs. 13/15: gain = p*q with the D_kij case analysis). The linearization
/// is exact for binary Ohat, so `objective()` returns the true weighted
/// error of a setting, and the Ising model produced by `to_ising()` has
/// energies *equal* to objectives (constant tracked).
class ColumnCop {
 public:
  /// Separate mode: minimizes the ER of this output alone (Eq. 4).
  static ColumnCop separate(const BooleanMatrix& exact,
                            const std::vector<double>& probs);

  /// Joint mode: minimizes the linearized MED with the other outputs fixed
  /// (Eq. 10). `d` holds D_kij per cell (row-major) and `bit_weight` is
  /// 2^(k-1) in the paper's 1-based indexing, i.e. 1 << k for 0-based k.
  static ColumnCop joint(const BooleanMatrix& exact,
                         const std::vector<double>& probs,
                         const std::vector<double>& d, double bit_weight);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  /// Spin layout: V1 spins at [0, r), V2 at [r, 2r), T at [2r, 2r+c).
  std::size_t num_spins() const { return 2 * rows_ + cols_; }
  std::size_t v1_spin(std::size_t i) const { return i; }
  std::size_t v2_spin(std::size_t i) const { return rows_ + i; }
  std::size_t t_spin(std::size_t j) const { return 2 * rows_ + j; }

  /// True weighted error of a setting (ER in separate mode; the MED
  /// contribution of this output in joint mode).
  double objective(const ColumnSetting& s) const;

  /// Error contribution of one cell when the approximate value is `ohat`.
  double cell_cost(std::size_t i, std::size_t j, bool ohat) const {
    const std::size_t idx = i * cols_ + j;
    return base_[idx] + (ohat ? gain_[idx] : 0.0);
  }

  /// Second-order Ising formulation (Eq. 9 / Eq. 16), finalized, with the
  /// constant chosen so energies equal objective values.
  IsingModel to_ising() const;

  /// Decodes a spin vector (layout above) into a setting.
  ColumnSetting decode(std::span<const std::int8_t> spins) const;

  /// Spin vector realizing a setting (inverse of decode()).
  std::vector<std::int8_t> encode(const ColumnSetting& s) const;

  /// Theorem 3: rewrites s.t with the per-column optimal choice for the
  /// current s.v1/s.v2. Never increases objective(). Ties pick pattern 1.
  void reset_optimal_t(ColumnSetting& s) const;

  /// Batched Theorem 3 over the SoA oscillator planes of the lockstep bSB
  /// engine (element i of replica r at index i * replicas + r, spin layout
  /// as num_spins()): for every replica at once, reads the V1/V2 signs,
  /// computes the per-column optimal T choice, and writes the T oscillators
  /// (+-1 positions, zeroed momenta). Equivalent to decoding each replica,
  /// calling reset_optimal_t(), and re-encoding T — but with
  /// replica-contiguous inner loops and no per-replica O(rows * cols) pass.
  ///
  /// `cost_scratch` is resized to 2 * replicas and reused across calls.
  /// When `degenerate` is non-null it is resized to `replicas` and flags
  /// the replicas whose reset landed in a collapsed state (all columns on
  /// one pattern, or V1 == V2) — the anti-collapse intervention handles
  /// those separately.
  void reset_optimal_t_planes(std::span<double> x, std::span<double> y,
                              std::size_t replicas,
                              std::vector<double>& cost_scratch,
                              std::vector<std::uint8_t>* degenerate) const;

  /// Per-row optimal V1/V2 for the current s.t (the complementary
  /// half-step; together with reset_optimal_t this yields the alternating
  /// minimization baseline). Never increases objective().
  void reset_optimal_v(ColumnSetting& s) const;

  /// Lower bound on the objective: every cell takes its cheaper value.
  double ideal_bound() const;

  /// The exact matrix this COP approximates (for seeding heuristics).
  const BooleanMatrix& exact_matrix() const { return exact_; }

 private:
  ColumnCop(const BooleanMatrix& exact, std::vector<double> base,
            std::vector<double> gain);

  BooleanMatrix exact_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> base_;  // row-major r*c
  std::vector<double> gain_;  // row-major r*c
};

}  // namespace adsd
