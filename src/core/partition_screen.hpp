#pragma once

#include <memory>

#include "bdd/bdd.hpp"
#include "bdd/bdd_decompose.hpp"
#include "boolean/partition.hpp"
#include "support/bitvec.hpp"

namespace adsd {

/// BDD-based candidate-partition screener.
///
/// The DALTA framework samples P random partitions per output and pays a
/// full core-COP solve for each. The column multiplicity (number of
/// distinct bound-set cofactors) is a cheap proxy for how well a partition
/// can be approximated by two column patterns: multiplicity 2 means an
/// exact decomposition exists, and low multiplicity means the columns
/// cluster tightly. Screening generates `screen_factor * P` candidates,
/// ranks them by multiplicity on the output's BDD, and keeps the best P --
/// trading a cheap BDD pass for fewer wasted solver calls.
class PartitionScreener {
 public:
  /// Builds the BDD of one output column (2^n bits).
  explicit PartitionScreener(const BitVec& output_bits, unsigned num_inputs);

  /// Column multiplicity of the screened output under `w`.
  std::size_t multiplicity(const InputPartition& w) const;

  /// Keeps the `keep` partitions of lowest multiplicity (stable order among
  /// ties, so results stay deterministic).
  std::vector<InputPartition> screen(std::vector<InputPartition> candidates,
                                     std::size_t keep) const;

 private:
  // The manager is mutable state (caches) behind a const-looking API;
  // guarded by value semantics per screener instance.
  mutable std::unique_ptr<BddManager> mgr_;
  BddManager::NodeRef root_;
};

}  // namespace adsd
