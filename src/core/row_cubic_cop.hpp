#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "ising/poly_model.hpp"

namespace adsd {

/// Third-order Ising formulation of the *row-based* core COP (separate
/// mode) -- the alternative the paper rejects in Sec. 3.1 because it does
/// not fit the second-order model of Eq. (1). Implemented here so the
/// claim is measurable (bench/ablation_order): the column-based
/// reformulation exists precisely to avoid this model.
///
/// Encoding: the row type S_i in {all-0, all-1, V, ~V} takes two bits
/// (a_i, b_i); the predicted matrix value is the multilinear form
///
///   P_ij = b_i + a_i V_j - 2 a_i b_i V_j          (binary algebra)
///
/// whose a*b*V monomial is what forces third order after the spin
/// substitution. Cell cost = e0 + (e1 - e0) P with e0/e1 the weighted cost
/// of predicting 0/1.
///
/// Spin layout: V_j at [0, c), a_i at [c, c+r), b_i at [c+r, c+2r).
class RowCubicCop {
 public:
  /// Separate mode: minimize the weighted error rate of this output.
  static RowCubicCop separate(const BooleanMatrix& exact,
                              const std::vector<double>& probs);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t num_spins() const { return cols_ + 2 * rows_; }

  std::size_t v_spin(std::size_t j) const { return j; }
  std::size_t a_spin(std::size_t i) const { return cols_ + i; }
  std::size_t b_spin(std::size_t i) const { return cols_ + rows_ + i; }

  /// Finalized third-order model whose energies equal objective values.
  PolyIsingModel to_poly_ising() const;

  /// True weighted error of a row setting.
  double objective(const RowSetting& s) const;

  RowSetting decode(std::span<const std::int8_t> spins) const;
  std::vector<std::int8_t> encode(const RowSetting& s) const;

  const BooleanMatrix& exact_matrix() const { return exact_; }

 private:
  RowCubicCop(const BooleanMatrix& exact, std::vector<double> e0,
              std::vector<double> e1);

  BooleanMatrix exact_;
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> e0_;  // row-major: weighted cost of predicting 0
  std::vector<double> e1_;  // weighted cost of predicting 1
};

}  // namespace adsd
