#include "core/row_cubic_cop.hpp"

#include <stdexcept>

namespace adsd {

RowCubicCop::RowCubicCop(const BooleanMatrix& exact, std::vector<double> e0,
                         std::vector<double> e1)
    : exact_(exact),
      rows_(exact.rows()),
      cols_(exact.cols()),
      e0_(std::move(e0)),
      e1_(std::move(e1)) {}

RowCubicCop RowCubicCop::separate(const BooleanMatrix& exact,
                                  const std::vector<double>& probs) {
  const std::size_t r = exact.rows();
  const std::size_t c = exact.cols();
  if (probs.size() != r * c) {
    throw std::invalid_argument("RowCubicCop::separate: probs mismatch");
  }
  std::vector<double> e0(r * c);
  std::vector<double> e1(r * c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const std::size_t idx = i * c + j;
      e0[idx] = exact.at(i, j) ? probs[idx] : 0.0;
      e1[idx] = exact.at(i, j) ? 0.0 : probs[idx];
    }
  }
  return RowCubicCop(exact, std::move(e0), std::move(e1));
}

PolyIsingModel RowCubicCop::to_poly_ising() const {
  PolyIsingModel model(num_spins());

  // Row-level pieces are shared across the columns of a row; build each
  // once. P = b + aV - 2abV => cost contribution per cell is
  // (e1-e0) * [b + (a - 2ab) * V] + e0.
  for (std::size_t i = 0; i < rows_; ++i) {
    const SpinPoly a = SpinPoly::binary(a_spin(i));
    const SpinPoly b = SpinPoly::binary(b_spin(i));
    const SpinPoly ab2 = (a * b).scale(-2.0) + a;  // a - 2ab
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::size_t idx = i * cols_ + j;
      const double gain = e1_[idx] - e0_[idx];
      if (e0_[idx] != 0.0) {
        model.add_constant(e0_[idx]);
      }
      if (gain == 0.0) {
        continue;
      }
      const SpinPoly v = SpinPoly::binary(v_spin(j));
      SpinPoly p = b + ab2 * v;
      p.add_to(model, gain);
    }
  }
  model.finalize();
  return model;
}

namespace {

RowType type_from_bits(bool a, bool b) {
  if (!a) {
    return b ? RowType::kAllOne : RowType::kAllZero;
  }
  return b ? RowType::kComplement : RowType::kPattern;
}

void bits_from_type(RowType t, bool* a, bool* b) {
  switch (t) {
    case RowType::kAllZero:
      *a = false;
      *b = false;
      return;
    case RowType::kAllOne:
      *a = false;
      *b = true;
      return;
    case RowType::kPattern:
      *a = true;
      *b = false;
      return;
    case RowType::kComplement:
      *a = true;
      *b = true;
      return;
  }
}

}  // namespace

double RowCubicCop::objective(const RowSetting& s) const {
  if (s.pattern.size() != cols_ || s.types.size() != rows_) {
    throw std::invalid_argument("RowCubicCop::objective: setting shape");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::size_t idx = i * cols_ + j;
      total += s.value(i, j) ? e1_[idx] : e0_[idx];
    }
  }
  return total;
}

RowSetting RowCubicCop::decode(std::span<const std::int8_t> spins) const {
  if (spins.size() != num_spins()) {
    throw std::invalid_argument("RowCubicCop::decode: spin count");
  }
  RowSetting s;
  s.pattern = BitVec(cols_);
  s.types.resize(rows_);
  for (std::size_t j = 0; j < cols_; ++j) {
    s.pattern.set(j, spins[v_spin(j)] > 0);
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    s.types[i] =
        type_from_bits(spins[a_spin(i)] > 0, spins[b_spin(i)] > 0);
  }
  return s;
}

std::vector<std::int8_t> RowCubicCop::encode(const RowSetting& s) const {
  std::vector<std::int8_t> spins(num_spins());
  for (std::size_t j = 0; j < cols_; ++j) {
    spins[v_spin(j)] = s.pattern.get(j) ? 1 : -1;
  }
  for (std::size_t i = 0; i < rows_; ++i) {
    bool a = false;
    bool b = false;
    bits_from_type(s.types[i], &a, &b);
    spins[a_spin(i)] = a ? 1 : -1;
    spins[b_spin(i)] = b ? 1 : -1;
  }
  return spins;
}

}  // namespace adsd
