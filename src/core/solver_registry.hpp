#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cop_solvers.hpp"

namespace adsd {

/// Key=value configuration of one registry solver, parsed from a spec
/// string or built programmatically. Keys are solver-specific and strictly
/// validated: the registry rejects any key the chosen solver does not
/// declare, so typos fail loudly instead of silently running defaults.
class SolverConfig {
 public:
  SolverConfig() = default;

  /// Sets (or overwrites) one key.
  void set(const std::string& key, const std::string& value);

  bool has(const std::string& key) const;
  const std::map<std::string, std::string>& values() const { return values_; }

  /// Typed getters; return `fallback` when the key is absent and throw
  /// std::invalid_argument when present but malformed.
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;

 private:
  std::map<std::string, std::string> values_;
};

/// String-keyed factory for every CoreCopSolver in the repo: the single
/// construction path shared by the CLI, the experiment harnesses, the
/// examples, and the tests (direct `SomeSolver(...)` construction outside
/// the registry and its unit tests is a review error).
///
/// Canonical names follow the CLI convention (prop / dalta / dalta-lit /
/// ilp / ba / alt / exhaustive); each entry also accepts the class
/// `name()` string as an alias (ising-bsb, dalta-greedy, ilp-bnb,
/// ba-anneal, alternating), so telemetry paths and registry lookups agree.
class SolverRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<CoreCopSolver>(const SolverConfig&)>;

  struct Entry {
    std::string name;                   // canonical CLI name
    std::string summary;                // one line for `adsd_cli info`
    std::vector<std::string> aliases;   // accepted alternate names
    std::vector<std::string> keys;      // declared config keys ("key=doc")
    Factory factory;

    /// True when `query` is the canonical name or an alias.
    bool accepts(const std::string& query) const;
  };

  /// Registers an entry; throws std::invalid_argument when the name or an
  /// alias collides with an existing entry.
  void add(Entry entry);

  /// Builds a solver by name with strict key validation.
  std::unique_ptr<CoreCopSolver> make(const std::string& name,
                                      const SolverConfig& config = {}) const;

  /// Builds from a one-string spec "name,key=value,key=value".
  std::unique_ptr<CoreCopSolver> make_from_spec(const std::string& spec) const;

  /// Splits a spec string into (name, config) without building.
  static std::pair<std::string, SolverConfig> parse_spec(
      const std::string& spec);

  const std::vector<Entry>& entries() const { return entries_; }
  const Entry* find(const std::string& name) const;

  /// The process-wide registry, pre-populated with every built-in solver.
  static const SolverRegistry& global();

 private:
  std::vector<Entry> entries_;
};

}  // namespace adsd
