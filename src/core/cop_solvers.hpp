#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/column_cop.hpp"
#include "ising/bsb.hpp"
#include "ising/bsb_pack.hpp"
#include "ising/doch.hpp"
#include "ising/sa.hpp"
#include "ising/simcim.hpp"
#include "support/run_context.hpp"
#include "support/timer.hpp"

namespace adsd {

/// Flat per-solve counters, kept for call sites that aggregate by hand;
/// the context's TelemetrySink supersedes them for reporting (every solve
/// records a span under "core/solve/<name>" plus iteration counters).
struct CoreSolveStats {
  double objective = 0.0;
  std::size_t iterations = 0;   // solver-specific unit (Euler steps, sweeps, nodes)
  bool stopped_early = false;   // dynamic stop / deadline fired
  bool proven_optimal = false;  // exact solvers only
};

/// Strategy interface: produce a setting (V1, V2, T) minimizing the COP
/// objective. Implementations must be deterministic for a fixed seed and
/// safe to call concurrently from multiple threads on distinct COPs.
///
/// Non-virtual interface: callers use solve(), which threads the
/// RunContext down and wraps every solve in a telemetry span; subclasses
/// implement do_solve(). The context-free overload runs under the
/// process-wide RunContext::fallback() with identical semantics, so
/// results never depend on which overload was called.
class CoreCopSolver {
 public:
  virtual ~CoreCopSolver() = default;
  virtual std::string name() const = 0;

  ColumnSetting solve(const ColumnCop& cop, const RunContext& ctx,
                      std::uint64_t seed, CoreSolveStats* stats = nullptr) const;

  ColumnSetting solve(const ColumnCop& cop, std::uint64_t seed,
                      CoreSolveStats* stats = nullptr) const {
    return solve(cop, RunContext::fallback(), seed, stats);
  }

  /// True when the solver has a real batched implementation. Callers with
  /// many independent same-shape COPs (run_dalta's P candidates per
  /// output-round) should then hand the whole batch to solve_batch()
  /// instead of looping tiny solves.
  virtual bool batched() const { return false; }

  /// Solves `cops.size()` independent instances; `seeds[i]` is instance
  /// i's solve seed (same contract as solve()). Results and stats come
  /// back in input order. The default path loops solve() — identical
  /// telemetry and results to a caller-side loop — while batched()
  /// solvers override do_solve_batch and get one "core/solve_batch/<name>"
  /// span around the whole batch plus the usual per-solve counters.
  std::vector<ColumnSetting> solve_batch(
      std::span<const ColumnCop> cops, const RunContext& ctx,
      std::span<const std::uint64_t> seeds,
      std::vector<CoreSolveStats>* stats = nullptr) const;

 protected:
  virtual ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                                 std::uint64_t seed,
                                 CoreSolveStats* stats) const = 0;

  /// Batched counterpart of do_solve; only reached when batched() is
  /// true. `out` and `stats` are pre-sized to cops.size().
  virtual void do_solve_batch(std::span<const ColumnCop> cops,
                              const RunContext& ctx,
                              std::span<const std::uint64_t> seeds,
                              std::span<ColumnSetting> out,
                              std::span<CoreSolveStats> stats) const;
};

/// Which Ising engine an IsingCoreSolver drives through the shared
/// restart/Theorem-3/polish state machine (DESIGN.md §4.8). kBsb is the
/// paper's proposal; the others reuse the identical COP scaffolding with a
/// different dynamics core.
enum class IsingEngineKind {
  kBsb,     // ballistic/discrete simulated bifurcation (the paper)
  kSa,      // Metropolis simulated annealing
  kSimcim,  // mean-field coherent Ising machine
  kDoch,    // difference-of-convex heuristic (ADOCH with momentum > 0)
};

/// The paper's proposal: ballistic simulated bifurcation on the Ising
/// formulation, with the dynamic stop criterion (Sec. 3.3.1) and the
/// Theorem-3 column-type reset fed back at every sampling point
/// (Sec. 3.3.2). A final Theorem-3 reset polishes the decoded setting.
/// Options::engine swaps the dynamics core (SA / SimCIM / DOCH) while the
/// surrounding state machine — warm start, restarts, Theorem-3 feedback,
/// final polish, best selection — stays identical.
class IsingCoreSolver final : public CoreCopSolver {
 public:
  struct Options {
    /// Dynamics core driven by the restart loop. Engine-specific
    /// parameters live in the matching member below (sb / sa / simcim /
    /// doch); the shared fields (restarts, replicas, Theorem-3, polish,
    /// column seed) apply to every kind. SA realizes `replicas` as
    /// shifted-seed repeats (its dynamics are scalar) and ignores warm
    /// positions (spin starts are drawn, not continuous) — the warm
    /// *incumbent* still applies.
    IsingEngineKind engine = IsingEngineKind::kBsb;

    SbParams sb{};
    SaParams sa{};
    SimcimParams simcim{};
    DochParams doch{};

    bool use_theorem3 = true;
    bool final_polish = true;
    std::size_t restarts = 1;

    /// Lockstep bSB replicas per restart (batched engine). Replica 0 of the
    /// first restart reproduces the single-trajectory solve exactly; extra
    /// replicas explore from shifted seeds and the best one wins. Cheaper
    /// than the same number of `restarts` because the coupling structure is
    /// traversed once for all replicas.
    std::size_t replicas = 1;

    /// Start the V1/V2 oscillators at small amplitudes spelling the two
    /// most frequent distinct columns of the exact matrix. The Ising
    /// formulation is invariant under (V1 <-> V2, T -> -T); from the
    /// standard zero start, bSB's mean-field dynamics keep the two pattern
    /// blocks identical and collapse to a rank-1 (single-pattern) solution
    /// on structured matrices. The asymmetric seed breaks the symmetry
    /// while leaving the search free to move away from it. The polished
    /// seed additionally serves as the warm incumbent: the bSB result only
    /// replaces it when strictly better, the usual contract of a
    /// warm-started anytime solver.
    bool column_seed_init = true;

    /// Strengthens the Theorem-3 intervention against the degenerate
    /// fixed point where every column selects the same pattern (the other
    /// pattern's oscillators then feel zero coupling force and the search
    /// freezes in a rank-1 solution): when the optimal T uses one pattern
    /// only or V1 == V2, the unused pattern is re-seeded with the exact
    /// column worst served by the current solution before feeding back.
    /// Requires use_theorem3.
    bool anti_collapse = true;

    /// Paper-faithful defaults for a given input size (f = s = 20 for
    /// n = 9, f = s = 10 for n = 16, epsilon = 1e-8, dynamic stop on).
    static Options paper_defaults(unsigned num_inputs);
  };

  explicit IsingCoreSolver(Options options) : options_(options) {}

  std::string name() const override {
    switch (options_.engine) {
      case IsingEngineKind::kSa:
        return "ising-sa";
      case IsingEngineKind::kSimcim:
        return "ising-simcim";
      case IsingEngineKind::kDoch:
        return "ising-doch";
      case IsingEngineKind::kBsb:
        break;
    }
    return "ising-bsb";
  }

  const Options& options() const { return options_; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

 private:
  Options options_;
};

/// Packed variant of IsingCoreSolver (registry spec `prop,pack=K,...`):
/// one BsbPackEngine run advances up to `pack` independent core COPs at
/// once (DESIGN.md §4.7), so DALTA's per-output-round batch of P tiny
/// candidate solves stops paying per-solve kernel setup and — on the
/// R = 1 hot path — runs the force pass at full SIMD width across
/// instances instead of scalar lanes. Single solves and every packed
/// member are bit-identical to IsingCoreSolver with the same core
/// options: same per-instance seeds, Theorem-3 feedback, dynamic stop,
/// restarts, warm incumbent, and final polish (see BsbPackEngine for the
/// one budget-rescale caveat under positive time budgets).
///
/// do_solve_batch sorts instances by num_spins (stable order) and carves
/// them into chunks of at most `pack` members; neighboring sizes share a
/// chunk (the engine pads smaller members with inert spins) as long as the
/// padded volume stays within 25% of the members' own sum of n^2, so a
/// straggler size no longer forces its own under-filled pack. When the
/// context allows parallelism, whole chunks are distributed over
/// ctx.pool(): parallelism across packs, SIMD across members, replicas
/// inside the engine. Under `share_j` with restarts > 1, each instance
/// instead becomes its own shared-model pack of restart attempts.
class PackedCoreCopSolver final : public CoreCopSolver {
 public:
  struct Options {
    /// Shared per-instance solver options (seed handling, restarts,
    /// replicas, Theorem-3, polish) — the packed solve replicates
    /// IsingCoreSolver with exactly these options per member.
    IsingCoreSolver::Options core{};

    /// Maximum members per packed engine run (the K of `pack=K`).
    std::size_t pack = 16;

    /// Engine layout; kAuto picks slots at replicas <= 2, blocks above.
    PackLayout layout = PackLayout::kAuto;

    /// Slot-tile width forwarded to the engine (`pack-tile=K`; 0 = auto,
    /// the engine's measured working-set model).
    std::size_t tile = 0;

    /// Shared-J restart packing (`pack-share-j=1`): solve each instance's
    /// `restarts` attempts as members of ONE shared-model pack on the
    /// broadcast-weight kernels, instead of sequential engine runs. Same
    /// per-attempt seeds, warm start on attempt 0 only, ascending-attempt
    /// strict-less best selection — bit-identical to the sequential loop
    /// for deadline-less contexts (an expired deadline retires the
    /// concurrent attempts instead of skipping the later ones). No-op at
    /// restarts <= 1.
    bool share_j = false;
  };

  explicit PackedCoreCopSolver(Options options) : options_(options) {
    if (options_.core.engine != IsingEngineKind::kBsb) {
      throw std::invalid_argument(
          "PackedCoreCopSolver: pack supports the bSB engine only");
    }
  }

  std::string name() const override { return "ising-bsb-pack"; }
  bool batched() const override { return true; }

  const Options& options() const { return options_; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

  void do_solve_batch(std::span<const ColumnCop> cops, const RunContext& ctx,
                      std::span<const std::uint64_t> seeds,
                      std::span<ColumnSetting> out,
                      std::span<CoreSolveStats> stats) const override;

 private:
  Options options_;
};

/// Exact oracle for tiny instances: exhaustive search over all spin
/// assignments of the Ising formulation (2r + c <= 24).
class ExhaustiveCoreSolver final : public CoreCopSolver {
 public:
  std::string name() const override { return "exhaustive"; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;
};

/// Lloyd-style alternating minimization: random (V1, V2), then alternate
/// the two closed-form half-steps (Theorem 3 for T; per-row majority for V)
/// to a fixpoint; best of `restarts` starts.
class AlternatingCoreSolver final : public CoreCopSolver {
 public:
  explicit AlternatingCoreSolver(std::size_t restarts = 8,
                                 std::size_t max_sweeps = 64)
      : restarts_(restarts), max_sweeps_(max_sweeps) {}

  std::string name() const override { return "alternating"; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

 private:
  std::size_t restarts_;
  std::size_t max_sweeps_;
};

/// DALTA-style greedy heuristic (reconstruction of the fast baseline of
/// [Meng et al., ICCAD'21]; see DESIGN.md): seed the two column patterns
/// from the most frequent distinct columns of the exact matrix, assign
/// column types by Theorem 3, then up to `refine_sweeps` closed-form
/// alternating sweeps. `refine_sweeps = 0` is the most literal one-shot
/// reconstruction; the default 4 is a deliberately strengthened baseline
/// (closer to BA quality) so comparisons are conservative.
class HeuristicCoreSolver final : public CoreCopSolver {
 public:
  explicit HeuristicCoreSolver(std::size_t refine_sweeps = 4)
      : refine_sweeps_(refine_sweeps) {}

  std::string name() const override { return "dalta-greedy"; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

 private:
  std::size_t refine_sweeps_;
};

/// BA-style simulated annealing over the setting bits (reconstruction of
/// the DATE'23 baseline): Metropolis single-bit flips with incremental
/// objective deltas and a geometric cooling schedule.
class AnnealCoreSolver final : public CoreCopSolver {
 public:
  struct Options {
    std::size_t sweeps = 300;
    double beta_start = 0.5;
    double beta_end = 200.0;
    std::size_t restarts = 2;
  };

  AnnealCoreSolver() : options_(Options{}) {}
  explicit AnnealCoreSolver(Options options) : options_(options) {}

  std::string name() const override { return "ba-anneal"; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

 private:
  Options options_;
};

/// Anytime exact branch-and-bound standing in for DALTA-ILP/Gurobi (see
/// DESIGN.md): depth-first over column types T in decreasing-weight order,
/// per-row separable lower bounds, alternating-minimization incumbent,
/// wall-clock budget after which the incumbent is returned (the contract
/// the paper uses for Gurobi's 3600 s cap).
class BnbCoreSolver final : public CoreCopSolver {
 public:
  struct Options {
    double time_budget_s = 2.0;  // <= 0: run to proven optimality
    std::size_t warm_restarts = 8;
  };

  BnbCoreSolver() : options_(Options{}) {}
  explicit BnbCoreSolver(Options options) : options_(options) {}

  std::string name() const override { return "ilp-bnb"; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

 private:
  Options options_;
};

}  // namespace adsd
