#include "core/dalta.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <stdexcept>

#include "core/partition_screen.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace adsd {

DecomposedLutNetwork DaltaResult::to_lut_network() const {
  DecomposedLutNetwork net;
  for (const auto& out : outputs) {
    net.add_output(DecomposedLut::from_column_setting(out.partition,
                                                      out.setting));
  }
  return net;
}

namespace {

struct Candidate {
  InputPartition partition;
  ColumnSetting setting;
  CoreSolveStats stats;
};

/// Thread-local buffers of one candidate evaluation, reused across
/// candidates by the pool workers (all candidates of a run share the
/// r x c shape, so reuse means zero steady-state allocation).
struct EvalScratch {
  std::optional<BooleanMatrix> matrix;
  std::vector<double> probs;
  std::vector<double> d;
};

}  // namespace

DaltaResult run_dalta(const TruthTable& exact, const InputDistribution& dist,
                      const DaltaParams& params, const CoreCopSolver& solver) {
  RunContext::Options opts;
  opts.seed = params.seed;
  opts.parallel = params.parallel;
  const RunContext ctx(opts);
  return run_dalta(exact, dist, params, solver, ctx);
}

DaltaResult run_dalta(const TruthTable& exact, const InputDistribution& dist,
                      const DaltaParams& params, const CoreCopSolver& solver,
                      const RunContext& ctx) {
  const unsigned n = exact.num_inputs();
  const unsigned m = exact.num_outputs();
  if (dist.num_inputs() != n) {
    throw std::invalid_argument("run_dalta: distribution shape mismatch");
  }
  if (params.free_size == 0 || params.free_size >= n) {
    throw std::invalid_argument("run_dalta: free size must be in (0, n)");
  }
  if (params.num_partitions == 0 || params.rounds == 0) {
    throw std::invalid_argument("run_dalta: need partitions and rounds >= 1");
  }

  Timer timer;
  TelemetrySink& sink = ctx.telemetry();
  const auto run_span = sink.span("dalta/run");
  TraceRecorder* tracer = ctx.tracer();
  const TraceSpan run_trace(tracer, "dalta/run");
  const std::uint64_t patterns = exact.num_patterns();

  TruthTable approx = exact;
  // Output words cached as integers so the joint-mode D terms are O(1) per
  // pattern: D(x) = (approx word without bit k) - exact word.
  std::vector<std::int64_t> exact_words(patterns);
  std::vector<std::int64_t> approx_words(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    exact_words[x] = static_cast<std::int64_t>(exact.word(x));
    approx_words[x] = exact_words[x];
  }

  std::vector<std::optional<OutputDecomposition>> chosen(m);

  DaltaResult result{std::move(approx), {}, 0.0, 0.0, 0.0, 0, 0, 0};

  std::vector<double> d_by_input;  // joint mode scratch, indexed by pattern

  for (std::size_t round = 0; round < params.rounds; ++round) {
    const TraceSpan round_trace(tracer, "dalta/round");
    for (unsigned kk = 0; kk < m; ++kk) {
      const unsigned k = m - 1 - kk;  // MSB -> LSB, as in the paper
      const TraceSpan output_trace(tracer, "dalta/output");

      if (params.mode == DecompMode::kJoint) {
        d_by_input.resize(patterns);
        const BitVec& gk = result.approx.output(k);
        const std::int64_t weight = std::int64_t{1} << k;
        for (std::uint64_t x = 0; x < patterns; ++x) {
          const std::int64_t rest =
              approx_words[x] - (gk.get(x) ? weight : 0);
          d_by_input[x] = static_cast<double>(rest - exact_words[x]);
        }
      }

      // The candidate partitions for this (round, output) are fixed by the
      // context seed alone, so every solver sees the same sequence.
      Rng part_rng = ctx.stream("dalta/partitions", round, k);
      const std::size_t oversample =
          params.num_partitions * std::max<std::size_t>(1, params.screen_factor);
      std::vector<InputPartition> candidates_w;
      candidates_w.reserve(oversample);
      for (std::size_t p = 0; p < oversample; ++p) {
        candidates_w.push_back(
            InputPartition::random(n, params.free_size, part_rng));
      }
      if (oversample > params.num_partitions) {
        const auto screen_span = sink.span("dalta/screen");
        const TraceSpan screen_trace(tracer, "dalta/screen");
        const PartitionScreener screener(exact.output(k), n);
        candidates_w =
            screener.screen(std::move(candidates_w), params.num_partitions);
        sink.add("dalta/screened", oversample - params.num_partitions);
        qor_add(ctx.qor(), "dalta/partitions_screened",
                static_cast<double>(oversample - params.num_partitions));
        if (MetricsRegistry* met = ctx.metrics()) {
          met->counter("dalta_partitions_screened_total")
              .add(oversample - params.num_partitions);
        }
      }

      std::vector<std::optional<Candidate>> candidates(params.num_partitions);
      // Candidate p's COP, built into `scratch` buffers (the Boolean
      // matrix, the probability table, and the joint D table are all shape
      // r x c for every candidate, so a reused scratch allocates once).
      // ColumnCop owns copies of everything it needs, so the returned COP
      // outlives the scratch contents.
      auto build_cop = [&](std::size_t p, EvalScratch& scratch) {
        const InputPartition& w = candidates_w[p];
        const PartitionIndexer idx(w);
        if (!scratch.matrix) {
          scratch.matrix.emplace(w.num_rows(), w.num_cols());
        }
        BooleanMatrix& matrix = *scratch.matrix;
        BooleanMatrix::from_function_into(exact, k, w, idx, matrix);
        matrix_probs_into(dist, w, idx, scratch.probs);

        if (params.mode == DecompMode::kSeparate) {
          return ColumnCop::separate(matrix, scratch.probs);
        }
        const std::size_t c = w.num_cols();
        scratch.d.resize(w.num_rows() * c);
        // Every input pattern owns exactly one (row, col) cell, so one
        // pass with the byte-LUT indexer fills the whole D table.
        for (std::uint64_t x = 0; x < patterns; ++x) {
          scratch.d[idx.row_of(x) * c + idx.col_of(x)] = d_by_input[x];
        }
        return ColumnCop::joint(matrix, scratch.probs, scratch.d,
                                static_cast<double>(std::int64_t{1} << k));
      };
      auto evaluate = [&](std::size_t p) {
        // Runs on a pool worker under parallel dispatch, so this span lands
        // on that worker's trace timeline — the per-thread work
        // distribution of the candidate fan-out read straight off the
        // flame graph.
        const TraceSpan candidate_trace(tracer, "dalta/candidate");
        // Per-worker scratch reused across candidate partitions (and across
        // rounds), so only the first evaluation on each thread allocates.
        thread_local EvalScratch scratch;
        ColumnCop cop = build_cop(p, scratch);
        Candidate cand{candidates_w[p], {}, {}};
        cand.setting =
            solver.solve(cop, ctx, ctx.stream_seed("dalta/candidate", round,
                                                   k, p),
                         &cand.stats);
        cand.stats.objective = cop.objective(cand.setting);
        candidates[p] = std::move(cand);
      };

      if (solver.batched() && params.num_partitions > 1) {
        // Batched fan-out: same COPs and per-candidate seeds as the looped
        // path, handed to the solver in one solve_batch call so packed
        // solvers advance the whole P-candidate round together.
        const TraceSpan batch_trace(tracer, "dalta/candidate_batch");
        EvalScratch scratch;
        std::vector<ColumnCop> cops;
        cops.reserve(params.num_partitions);
        std::vector<std::uint64_t> seeds(params.num_partitions);
        for (std::size_t p = 0; p < params.num_partitions; ++p) {
          cops.push_back(build_cop(p, scratch));
          seeds[p] = ctx.stream_seed("dalta/candidate", round, k, p);
        }
        std::vector<CoreSolveStats> stats;
        std::vector<ColumnSetting> settings =
            solver.solve_batch(cops, ctx, seeds, &stats);
        for (std::size_t p = 0; p < params.num_partitions; ++p) {
          Candidate cand{candidates_w[p], std::move(settings[p]), stats[p]};
          cand.stats.objective = cops[p].objective(cand.setting);
          candidates[p] = std::move(cand);
        }
      } else if (ctx.parallel() && params.parallel &&
                 params.num_partitions > 1) {
        ctx.pool().parallel_for(params.num_partitions, evaluate);
      } else {
        for (std::size_t p = 0; p < params.num_partitions; ++p) {
          evaluate(p);
        }
      }

      // A candidate slot stays disengaged if its evaluation never ran
      // (e.g. a sibling threw and parallel_for rethrew after this round's
      // remaining work was drained) — never dereference blindly.
      std::size_t best_p = params.num_partitions;
      for (std::size_t p = 0; p < params.num_partitions; ++p) {
        if (!candidates[p].has_value()) {
          continue;
        }
        if (best_p == params.num_partitions ||
            candidates[p]->stats.objective <
                candidates[best_p]->stats.objective - 1e-15) {
          best_p = p;
        }
      }
      if (best_p == params.num_partitions) {
        throw std::runtime_error(
            "run_dalta: no candidate partition was evaluated");
      }

      Candidate& best = *candidates[best_p];
      for (const auto& cand : candidates) {
        if (!cand.has_value()) {
          continue;
        }
        result.cop_solves += 1;
        result.solver_iterations += cand->stats.iterations;
        result.early_stops += cand->stats.stopped_early ? 1 : 0;
      }

      // Commit: replace output k and refresh the cached words.
      BitVec new_bits = compose_output(best.setting, best.partition);
      const BitVec& old_bits = result.approx.output(k);
      const std::int64_t weight = std::int64_t{1} << k;
      for (std::uint64_t x = 0; x < patterns; ++x) {
        const bool was = old_bits.get(x);
        const bool now = new_bits.get(x);
        if (was != now) {
          approx_words[x] += now ? weight : -weight;
        }
      }
      result.approx.set_output(k, std::move(new_bits));
      trace_counter(tracer, "dalta/committed_objective",
                    best.stats.objective);
      chosen[k] = OutputDecomposition{best.partition, std::move(best.setting),
                                      best.stats.objective};

      // Quality observability: record the committed decision. Reads only —
      // the committed bits and candidate objectives are already fixed — so
      // the off path stays bit-identical (and costs one pointer test).
      if (QorRecorder* q = ctx.qor()) {
        std::size_t tried = 0;
        double worst = best.stats.objective;
        for (const auto& cand : candidates) {
          if (!cand.has_value()) {
            continue;
          }
          ++tried;
          worst = std::max(worst, cand->stats.objective);
        }
        QorRecorder::OutputRecord rec;
        rec.stage = "dalta";
        rec.round = round;
        rec.output = k;
        rec.tried = tried;
        rec.best_objective = best.stats.objective;
        rec.worst_objective = worst;
        rec.error_rate =
            error_rate(exact.output(k), result.approx.output(k), dist);
        q->record_output(std::move(rec));
        q->add("dalta/partitions_tried", static_cast<double>(tried));
        q->add("dalta/commits");
      }
    }
  }

  result.outputs.reserve(m);
  for (unsigned k = 0; k < m; ++k) {
    result.outputs.push_back(std::move(*chosen[k]));
  }
  result.med = mean_error_distance(exact, result.approx, dist);
  result.error_rate = error_rate(exact, result.approx, dist);
  result.seconds = timer.seconds();
  sink.add("dalta/cop_solves", result.cop_solves);
  sink.add("dalta/outputs", m);
  sink.add("dalta/rounds", params.rounds);
  if (MetricsRegistry* met = ctx.metrics()) {
    met->counter("dalta_runs_total", {{"stage", "dalta"}}).add();
    met->counter("dalta_rounds_total").add(params.rounds);
    met->counter("dalta_outputs_total").add(m);
    met->counter("dalta_cop_solves_total").add(result.cop_solves);
    met->histogram("dalta_run_duration_us", {{"stage", "dalta"}})
        .record(result.seconds * 1e6, ctx.run_id());
  }
  if (ctx.expired()) {
    ADSD_LOG_WARN("core/dalta", "run finished past the deadline",
                  {"stage", "dalta"}, {"rounds", params.rounds},
                  {"med", result.med}, {"seconds", result.seconds});
  } else {
    ADSD_LOG_INFO("core/dalta", "run complete", {"stage", "dalta"},
                  {"outputs", m}, {"rounds", params.rounds},
                  {"cop_solves", result.cop_solves}, {"med", result.med},
                  {"seconds", result.seconds});
  }
  if (MetricsRegistry::armed() != nullptr ||
      FlightRecorder::global().postmortem_armed()) {
    // One flight-recorder summary per framework run: enough to postmortem
    // "what was the process doing" after a crash or deadline overrun
    // without any per-run artifact files.
    FlightRecorder::SolveRecord rec;
    rec.spec = "dalta";
    rec.engine = solver.name();
    rec.stop_reason = ctx.expired() ? "deadline" : "ok";
    rec.run_id = ctx.run_id();
    rec.n = n;
    rec.rounds = params.rounds;
    for (unsigned k = 0; k < m; ++k) {
      rec.final_energy += result.outputs[k].objective;
    }
    rec.med = result.med;
    rec.duration_s = result.seconds;
    FlightRecorder::global().record(std::move(rec));
  }
  if (QorRecorder* q = ctx.qor()) {
    QorRecorder::Final fin;
    fin.stage = "dalta";
    fin.med = result.med;
    fin.error_rate = result.error_rate;
    const DecomposedLutNetwork net = result.to_lut_network();
    fin.lut_bits = net.total_size_bits();
    fin.flat_bits = net.total_flat_size_bits();
    fin.outputs.reserve(m);
    for (unsigned k = 0; k < m; ++k) {
      QorRecorder::FinalOutput out;
      out.error_rate =
          error_rate(exact.output(k), result.approx.output(k), dist);
      out.lut_bits = net.output(k).size_bits();
      out.flat_bits = net.output(k).flat_size_bits();
      fin.outputs.push_back(out);
    }
    q->record_final(std::move(fin));
  }
  return result;
}

}  // namespace adsd
