#include "core/nondisjoint_dalta.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>

#include "core/column_cop.hpp"
#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace adsd {

std::uint64_t NdDaltaResult::total_size_bits() const {
  std::uint64_t total = 0;
  for (const auto& out : outputs) {
    total += out.partition.phi_lut_bits() + out.partition.f_lut_bits();
  }
  return total;
}

std::uint64_t NdDaltaResult::total_flat_size_bits() const {
  std::uint64_t total = 0;
  for (const auto& out : outputs) {
    total += std::uint64_t{1} << out.partition.num_inputs();
  }
  return total;
}

namespace {

struct NdCandidate {
  NonDisjointPartition partition;
  NonDisjointSetting setting;
  double objective = 0.0;
  std::size_t iterations = 0;
};

}  // namespace

NdDaltaResult run_dalta_nd(const TruthTable& exact,
                           const InputDistribution& dist,
                           const NdDaltaParams& params,
                           const CoreCopSolver& solver) {
  RunContext::Options opts;
  opts.seed = params.seed;
  opts.parallel = params.parallel;
  const RunContext ctx(opts);
  return run_dalta_nd(exact, dist, params, solver, ctx);
}

NdDaltaResult run_dalta_nd(const TruthTable& exact,
                           const InputDistribution& dist,
                           const NdDaltaParams& params,
                           const CoreCopSolver& solver,
                           const RunContext& ctx) {
  const unsigned n = exact.num_inputs();
  const unsigned m = exact.num_outputs();
  if (dist.num_inputs() != n) {
    throw std::invalid_argument("run_dalta_nd: distribution shape mismatch");
  }
  if (params.free_size == 0 ||
      params.free_size + params.shared_size >= n) {
    throw std::invalid_argument("run_dalta_nd: bad free/shared sizes");
  }
  if (params.num_partitions == 0 || params.rounds == 0) {
    throw std::invalid_argument("run_dalta_nd: need partitions and rounds");
  }

  Timer timer;
  TelemetrySink& sink = ctx.telemetry();
  const auto run_span = sink.span("dalta_nd/run");
  TraceRecorder* tracer = ctx.tracer();
  const TraceSpan run_trace(tracer, "dalta_nd/run");
  const std::uint64_t patterns = exact.num_patterns();

  std::vector<std::int64_t> exact_words(patterns);
  std::vector<std::int64_t> approx_words(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    exact_words[x] = static_cast<std::int64_t>(exact.word(x));
    approx_words[x] = exact_words[x];
  }

  NdDaltaResult result{exact, {}, 0.0, 0.0, 0.0, 0, 0};
  std::vector<std::optional<NdOutputDecomposition>> chosen(m);
  std::vector<double> d_by_input;

  for (std::size_t round = 0; round < params.rounds; ++round) {
    const TraceSpan round_trace(tracer, "dalta_nd/round");
    for (unsigned kk = 0; kk < m; ++kk) {
      const unsigned k = m - 1 - kk;
      const TraceSpan output_trace(tracer, "dalta_nd/output");

      if (params.mode == DecompMode::kJoint) {
        d_by_input.resize(patterns);
        const BitVec& gk = result.approx.output(k);
        const std::int64_t weight = std::int64_t{1} << k;
        for (std::uint64_t x = 0; x < patterns; ++x) {
          const std::int64_t rest =
              approx_words[x] - (gk.get(x) ? weight : 0);
          d_by_input[x] = static_cast<double>(rest - exact_words[x]);
        }
      }

      // Same stream tag as run_dalta, so shared_size == 0 draws the same
      // partition sequence as the disjoint flow.
      Rng part_rng = ctx.stream("dalta/partitions", round, k);
      std::vector<NonDisjointPartition> candidates_w;
      candidates_w.reserve(params.num_partitions);
      for (std::size_t p = 0; p < params.num_partitions; ++p) {
        candidates_w.push_back(NonDisjointPartition::random(
            n, params.free_size, params.shared_size, part_rng));
      }

      std::vector<std::optional<NdCandidate>> candidates(
          params.num_partitions);
      // Slice sl of candidate p as a COP, built into reusable `probs`/`d`
      // buffers (every slice matrix of a run has the same r x c shape;
      // ColumnCop copies what it keeps).
      auto build_cop = [&](const NonDisjointPartition& w, std::uint64_t sl,
                           std::vector<double>& probs,
                           std::vector<double>& d) {
        const std::size_t r = w.num_rows();
        const std::size_t c = w.num_cols();
        const BooleanMatrix matrix = slice_matrix(exact, k, w, sl);
        probs.assign(r * c, 0.0);
        d.clear();
        if (params.mode == DecompMode::kJoint) {
          d.resize(r * c);
        }
        for (std::size_t i = 0; i < r; ++i) {
          for (std::size_t j = 0; j < c; ++j) {
            const std::uint64_t x = w.input_of(sl, i, j);
            probs[i * c + j] = dist.prob(x);
            if (!d.empty()) {
              d[i * c + j] = d_by_input[x];
            }
          }
        }
        return params.mode == DecompMode::kSeparate
                   ? ColumnCop::separate(matrix, probs)
                   : ColumnCop::joint(matrix, probs, d,
                                      static_cast<double>(std::int64_t{1}
                                                          << k));
      };
      // Slice 0 must reuse run_dalta's per-candidate seed so that
      // shared_size == 0 reproduces the disjoint flow exactly; the
      // four-counter stream_seed guarantees that at sl == 0 by
      // construction.
      auto slice_seed = [&](std::size_t p, std::uint64_t sl) {
        return ctx.stream_seed("dalta/candidate", round, k, p, sl);
      };
      auto evaluate = [&](std::size_t p) {
        // Lands on the evaluating pool worker's trace timeline (see
        // run_dalta's candidate span).
        const TraceSpan candidate_trace(tracer, "dalta_nd/candidate");
        const NonDisjointPartition& w = candidates_w[p];
        NdCandidate cand{w, {}, 0.0, 0};

        // Per-worker buffers reused across slices and candidates.
        thread_local std::vector<double> probs;
        thread_local std::vector<double> d;
        for (std::uint64_t sl = 0; sl < w.num_slices(); ++sl) {
          ColumnCop cop = build_cop(w, sl, probs, d);
          CoreSolveStats stats;
          ColumnSetting cs = solver.solve(cop, ctx, slice_seed(p, sl),
                                          &stats);
          cand.objective += cop.objective(cs);
          cand.iterations += stats.iterations;
          cand.setting.slices.push_back(std::move(cs));
        }
        candidates[p] = std::move(cand);
      };

      const std::uint64_t slices = candidates_w.front().num_slices();
      if (solver.batched() && params.num_partitions * slices > 1) {
        // Batched fan-out: the whole (partition, slice) grid flattened
        // into one solve_batch call with the same per-slice seeds as the
        // looped path, so packed solvers advance every slice of every
        // candidate together.
        const TraceSpan batch_trace(tracer, "dalta_nd/candidate_batch");
        std::vector<double> probs;
        std::vector<double> d;
        std::vector<ColumnCop> cops;
        cops.reserve(params.num_partitions * slices);
        std::vector<std::uint64_t> seeds;
        seeds.reserve(params.num_partitions * slices);
        for (std::size_t p = 0; p < params.num_partitions; ++p) {
          for (std::uint64_t sl = 0; sl < slices; ++sl) {
            cops.push_back(build_cop(candidates_w[p], sl, probs, d));
            seeds.push_back(slice_seed(p, sl));
          }
        }
        std::vector<CoreSolveStats> stats;
        std::vector<ColumnSetting> settings =
            solver.solve_batch(cops, ctx, seeds, &stats);
        for (std::size_t p = 0; p < params.num_partitions; ++p) {
          NdCandidate cand{candidates_w[p], {}, 0.0, 0};
          for (std::uint64_t sl = 0; sl < slices; ++sl) {
            const std::size_t i = p * slices + sl;
            cand.objective += cops[i].objective(settings[i]);
            cand.iterations += stats[i].iterations;
            cand.setting.slices.push_back(std::move(settings[i]));
          }
          candidates[p] = std::move(cand);
        }
      } else if (ctx.parallel() && params.parallel &&
                 params.num_partitions > 1) {
        ctx.pool().parallel_for(params.num_partitions, evaluate);
      } else {
        for (std::size_t p = 0; p < params.num_partitions; ++p) {
          evaluate(p);
        }
      }

      // Guard disengaged slots (evaluation skipped after a sibling threw).
      std::size_t best_p = params.num_partitions;
      for (std::size_t p = 0; p < params.num_partitions; ++p) {
        if (!candidates[p].has_value()) {
          continue;
        }
        if (best_p == params.num_partitions ||
            candidates[p]->objective < candidates[best_p]->objective - 1e-15) {
          best_p = p;
        }
      }
      if (best_p == params.num_partitions) {
        throw std::runtime_error(
            "run_dalta_nd: no candidate partition was evaluated");
      }
      for (const auto& cand : candidates) {
        if (!cand.has_value()) {
          continue;
        }
        result.cop_solves += cand->setting.slices.size();
        result.solver_iterations += cand->iterations;
      }

      NdCandidate& best = *candidates[best_p];
      BitVec new_bits = compose_output(best.setting, best.partition);
      const BitVec& old_bits = result.approx.output(k);
      const std::int64_t weight = std::int64_t{1} << k;
      for (std::uint64_t x = 0; x < patterns; ++x) {
        const bool was = old_bits.get(x);
        const bool now = new_bits.get(x);
        if (was != now) {
          approx_words[x] += now ? weight : -weight;
        }
      }
      result.approx.set_output(k, std::move(new_bits));
      chosen[k] = NdOutputDecomposition{best.partition,
                                        std::move(best.setting),
                                        best.objective};

      // Quality observability (reads only; see run_dalta's commit site).
      if (QorRecorder* q = ctx.qor()) {
        std::size_t tried = 0;
        double worst = best.objective;
        for (const auto& cand : candidates) {
          if (!cand.has_value()) {
            continue;
          }
          ++tried;
          worst = std::max(worst, cand->objective);
        }
        QorRecorder::OutputRecord rec;
        rec.stage = "dalta_nd";
        rec.round = round;
        rec.output = k;
        rec.tried = tried;
        rec.best_objective = best.objective;
        rec.worst_objective = worst;
        rec.error_rate =
            error_rate(exact.output(k), result.approx.output(k), dist);
        q->record_output(std::move(rec));
        q->add("dalta_nd/partitions_tried", static_cast<double>(tried));
        q->add("dalta_nd/commits");
      }
    }
  }

  result.outputs.reserve(m);
  for (unsigned k = 0; k < m; ++k) {
    result.outputs.push_back(std::move(*chosen[k]));
  }
  result.med = mean_error_distance(exact, result.approx, dist);
  result.error_rate = error_rate(exact, result.approx, dist);
  result.seconds = timer.seconds();
  sink.add("dalta_nd/cop_solves", result.cop_solves);
  sink.add("dalta_nd/outputs", m);
  if (MetricsRegistry* met = ctx.metrics()) {
    met->counter("dalta_runs_total", {{"stage", "dalta_nd"}}).add();
    met->counter("dalta_rounds_total").add(params.rounds);
    met->counter("dalta_outputs_total").add(m);
    met->counter("dalta_cop_solves_total").add(result.cop_solves);
    met->histogram("dalta_run_duration_us", {{"stage", "dalta_nd"}})
        .record(result.seconds * 1e6, ctx.run_id());
  }
  if (ctx.expired()) {
    ADSD_LOG_WARN("core/dalta", "run finished past the deadline",
                  {"stage", "dalta_nd"}, {"rounds", params.rounds},
                  {"med", result.med}, {"seconds", result.seconds});
  } else {
    ADSD_LOG_INFO("core/dalta", "run complete", {"stage", "dalta_nd"},
                  {"outputs", m}, {"rounds", params.rounds},
                  {"cop_solves", result.cop_solves}, {"med", result.med},
                  {"seconds", result.seconds});
  }
  if (MetricsRegistry::armed() != nullptr ||
      FlightRecorder::global().postmortem_armed()) {
    FlightRecorder::SolveRecord rec;
    rec.spec = "dalta_nd";
    rec.engine = solver.name();
    rec.stop_reason = ctx.expired() ? "deadline" : "ok";
    rec.run_id = ctx.run_id();
    rec.n = n;
    rec.rounds = params.rounds;
    for (unsigned k = 0; k < m; ++k) {
      rec.final_energy += result.outputs[k].objective;
    }
    rec.med = result.med;
    rec.duration_s = result.seconds;
    FlightRecorder::global().record(std::move(rec));
  }
  if (QorRecorder* q = ctx.qor()) {
    QorRecorder::Final fin;
    fin.stage = "dalta_nd";
    fin.med = result.med;
    fin.error_rate = result.error_rate;
    fin.lut_bits = result.total_size_bits();
    fin.flat_bits = result.total_flat_size_bits();
    fin.outputs.reserve(m);
    for (unsigned k = 0; k < m; ++k) {
      const auto& out = result.outputs[k];
      QorRecorder::FinalOutput rec;
      rec.error_rate =
          error_rate(exact.output(k), result.approx.output(k), dist);
      rec.lut_bits =
          out.partition.phi_lut_bits() + out.partition.f_lut_bits();
      rec.flat_bits = std::uint64_t{1} << out.partition.num_inputs();
      fin.outputs.push_back(rec);
    }
    q->record_final(std::move(fin));
  }
  return result;
}

}  // namespace adsd
