#include "core/column_cop.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace adsd {

std::vector<double> matrix_probs(const InputDistribution& dist,
                                 const InputPartition& w) {
  std::vector<double> p;
  matrix_probs_into(dist, w, PartitionIndexer(w), p);
  return p;
}

void matrix_probs_into(const InputDistribution& dist, const InputPartition& w,
                       const PartitionIndexer& idx, std::vector<double>& out) {
  if (dist.num_inputs() != w.num_inputs()) {
    throw std::invalid_argument("matrix_probs: shape mismatch");
  }
  const std::size_t r = w.num_rows();
  const std::size_t c = w.num_cols();
  out.assign(r * c, 0.0);
  if (dist.is_uniform()) {
    const double u = dist.prob(0);
    for (auto& v : out) {
      v = u;
    }
    return;
  }
  // One pass over the input patterns: each pattern owns exactly one cell.
  const std::uint64_t patterns = std::uint64_t{1} << w.num_inputs();
  for (std::uint64_t x = 0; x < patterns; ++x) {
    out[idx.row_of(x) * c + idx.col_of(x)] = dist.prob(x);
  }
}

ColumnCop::ColumnCop(const BooleanMatrix& exact, std::vector<double> base,
                     std::vector<double> gain)
    : exact_(exact),
      rows_(exact.rows()),
      cols_(exact.cols()),
      base_(std::move(base)),
      gain_(std::move(gain)) {}

ColumnCop ColumnCop::separate(const BooleanMatrix& exact,
                              const std::vector<double>& probs) {
  const std::size_t r = exact.rows();
  const std::size_t c = exact.cols();
  if (probs.size() != r * c) {
    throw std::invalid_argument("ColumnCop::separate: probs size mismatch");
  }
  // ED = O + (1 - 2O) * Ohat  (Eq. 6/7): cost(Ohat=0) = O, cost(1) = 1 - O.
  std::vector<double> base(r * c);
  std::vector<double> gain(r * c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const std::size_t idx = i * c + j;
      const double o = exact.at(i, j) ? 1.0 : 0.0;
      base[idx] = probs[idx] * o;
      gain[idx] = probs[idx] * (1.0 - 2.0 * o);
    }
  }
  return ColumnCop(exact, std::move(base), std::move(gain));
}

ColumnCop ColumnCop::joint(const BooleanMatrix& exact,
                           const std::vector<double>& probs,
                           const std::vector<double>& d, double bit_weight) {
  const std::size_t r = exact.rows();
  const std::size_t c = exact.cols();
  if (probs.size() != r * c || d.size() != r * c) {
    throw std::invalid_argument("ColumnCop::joint: coefficient size mismatch");
  }
  if (bit_weight <= 0.0) {
    throw std::invalid_argument("ColumnCop::joint: bad bit weight");
  }
  // ED = |2^(k-1) Ohat + D|, linearized per the sign of D (Eqs. 12-15):
  //   -2^(k-1) <= D <= 0 : ED = (2^(k-1) + 2D) Ohat - D
  //   otherwise           : ED = 2^(k-1) sgn(D) Ohat + |D|.
  // Both branches are exact for Ohat in {0, 1}.
  std::vector<double> base(r * c);
  std::vector<double> gain(r * c);
  for (std::size_t idx = 0; idx < r * c; ++idx) {
    const double dij = d[idx];
    double q;
    double b;
    if (dij >= -bit_weight && dij <= 0.0) {
      q = bit_weight + 2.0 * dij;
      b = -dij;
    } else {
      const double sgn = dij > 0.0 ? 1.0 : -1.0;
      q = bit_weight * sgn;
      b = std::fabs(dij);
    }
    base[idx] = probs[idx] * b;
    gain[idx] = probs[idx] * q;
  }
  return ColumnCop(exact, std::move(base), std::move(gain));
}

double ColumnCop::objective(const ColumnSetting& s) const {
  if (s.v1.size() != rows_ || s.v2.size() != rows_ || s.t.size() != cols_) {
    throw std::invalid_argument("ColumnCop::objective: setting shape");
  }
  double total = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    const bool a = s.v1.get(i);
    const bool b = s.v2.get(i);
    for (std::size_t j = 0; j < cols_; ++j) {
      total += cell_cost(i, j, s.t.get(j) ? b : a);
    }
  }
  return total;
}

IsingModel ColumnCop::to_ising() const {
  // With Ohat = 1/2 + (v1 + v2 - t*v1 + t*v2)/4 in spin variables (Eq. 8),
  // the objective becomes
  //   sum(base + gain/2)
  //   + sum_i (sum_j gain/4) v1_i + sum_i (sum_j gain/4) v2_i
  //   - sum_ij gain/4 t_j v1_i + sum_ij gain/4 t_j v2_i.
  // Matching E = -sum h s - sum_{pairs} J s s gives h = -(linear coeff) and
  // J = -(pair coeff).
  IsingModel m(num_spins());
  double constant = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) {
    double row_gain = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const std::size_t idx = i * cols_ + j;
      constant += base_[idx] + gain_[idx] / 2.0;
      row_gain += gain_[idx];
      const double quarter = gain_[idx] / 4.0;
      if (quarter != 0.0) {
        m.add_coupling(v1_spin(i), t_spin(j), quarter);
        m.add_coupling(v2_spin(i), t_spin(j), -quarter);
      }
    }
    m.set_bias(v1_spin(i), -row_gain / 4.0);
    m.set_bias(v2_spin(i), -row_gain / 4.0);
  }
  m.set_constant(constant);
  m.finalize();
  return m;
}

ColumnSetting ColumnCop::decode(std::span<const std::int8_t> spins) const {
  if (spins.size() != num_spins()) {
    throw std::invalid_argument("ColumnCop::decode: spin count mismatch");
  }
  ColumnSetting s;
  s.v1 = BitVec(rows_);
  s.v2 = BitVec(rows_);
  s.t = BitVec(cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    s.v1.set(i, spins[v1_spin(i)] > 0);
    s.v2.set(i, spins[v2_spin(i)] > 0);
  }
  for (std::size_t j = 0; j < cols_; ++j) {
    s.t.set(j, spins[t_spin(j)] > 0);
  }
  return s;
}

std::vector<std::int8_t> ColumnCop::encode(const ColumnSetting& s) const {
  std::vector<std::int8_t> spins(num_spins());
  for (std::size_t i = 0; i < rows_; ++i) {
    spins[v1_spin(i)] = s.v1.get(i) ? 1 : -1;
    spins[v2_spin(i)] = s.v2.get(i) ? 1 : -1;
  }
  for (std::size_t j = 0; j < cols_; ++j) {
    spins[t_spin(j)] = s.t.get(j) ? 1 : -1;
  }
  return spins;
}

void ColumnCop::reset_optimal_t(ColumnSetting& s) const {
  // For column j the base terms cancel between the two choices, so compare
  // sum_i gain_ij V1_i against sum_i gain_ij V2_i (Theorem 3).
  for (std::size_t j = 0; j < cols_; ++j) {
    double cost1 = 0.0;
    double cost2 = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
      const double g = gain_[i * cols_ + j];
      if (s.v1.get(i)) {
        cost1 += g;
      }
      if (s.v2.get(i)) {
        cost2 += g;
      }
    }
    s.t.set(j, cost2 < cost1);
  }
}

void ColumnCop::reset_optimal_t_planes(std::span<double> x,
                                       std::span<double> y,
                                       std::size_t replicas,
                                       std::vector<double>& cost_scratch,
                                       std::vector<std::uint8_t>* degenerate)
    const {
  const std::size_t R = replicas;
  if (x.size() != num_spins() * R || y.size() != x.size()) {
    throw std::invalid_argument("reset_optimal_t_planes: plane size");
  }
  cost_scratch.assign(2 * R, 0.0);
  double* cost1 = cost_scratch.data();
  double* cost2 = cost_scratch.data() + R;

  // Degeneracy bookkeeping shares the plane sweeps: V1 == V2 folds over the
  // row loop once (independent of columns), pattern-2 counts fold over the
  // column loop as T is chosen.
  std::vector<std::uint8_t> v_equal;
  std::vector<std::uint32_t> t2_count;
  if (degenerate != nullptr) {
    v_equal.assign(R, 1);
    t2_count.assign(R, 0);
    for (std::size_t i = 0; i < rows_; ++i) {
      const double* x1 = &x[v1_spin(i) * R];
      const double* x2 = &x[v2_spin(i) * R];
      for (std::size_t r = 0; r < R; ++r) {
        v_equal[r] =
            static_cast<std::uint8_t>(v_equal[r] & ((x1[r] >= 0.0) ==
                                                    (x2[r] >= 0.0)));
      }
    }
  }

  // Same comparison as reset_optimal_t (base terms cancel; ties pick
  // pattern 1), with the i/r loops replica-contiguous: per (j, i) pair the
  // inner loop streams R consecutive doubles of each plane, which
  // auto-vectorizes, instead of R strided per-replica passes.
  for (std::size_t j = 0; j < cols_; ++j) {
    std::fill(cost1, cost1 + R, 0.0);
    std::fill(cost2, cost2 + R, 0.0);
    for (std::size_t i = 0; i < rows_; ++i) {
      const double g = gain_[i * cols_ + j];
      const double* x1 = &x[v1_spin(i) * R];
      const double* x2 = &x[v2_spin(i) * R];
      for (std::size_t r = 0; r < R; ++r) {
        cost1[r] += x1[r] >= 0.0 ? g : 0.0;
      }
      for (std::size_t r = 0; r < R; ++r) {
        cost2[r] += x2[r] >= 0.0 ? g : 0.0;
      }
    }
    double* xt = &x[t_spin(j) * R];
    double* yt = &y[t_spin(j) * R];
    for (std::size_t r = 0; r < R; ++r) {
      const bool pattern2 = cost2[r] < cost1[r];
      xt[r] = pattern2 ? 1.0 : -1.0;
      yt[r] = 0.0;
      if (degenerate != nullptr) {
        t2_count[r] += pattern2 ? 1u : 0u;
      }
    }
  }

  if (degenerate != nullptr) {
    degenerate->assign(R, 0);
    for (std::size_t r = 0; r < R; ++r) {
      const bool collapsed =
          t2_count[r] == 0 || t2_count[r] == cols_ || v_equal[r] != 0;
      (*degenerate)[r] = collapsed ? 1 : 0;
    }
  }
}

void ColumnCop::reset_optimal_v(ColumnSetting& s) const {
  // Row i's V1 bit only affects columns with T_j = 0 and contributes
  // gain_ij per such column when set; choose 1 iff that sum is negative.
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum1 = 0.0;
    double sum2 = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const double g = gain_[i * cols_ + j];
      if (s.t.get(j)) {
        sum2 += g;
      } else {
        sum1 += g;
      }
    }
    s.v1.set(i, sum1 < 0.0);
    s.v2.set(i, sum2 < 0.0);
  }
}

double ColumnCop::ideal_bound() const {
  double total = 0.0;
  for (std::size_t idx = 0; idx < base_.size(); ++idx) {
    total += base_[idx] + std::min(0.0, gain_[idx]);
  }
  return total;
}

}  // namespace adsd
