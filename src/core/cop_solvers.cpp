#include "core/cop_solvers.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <tuple>

#include "ising/bsb_batch.hpp"
#include "ising/bsb_pack.hpp"
#include "ising/exhaustive.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace adsd {

namespace {

ColumnSetting random_setting(std::size_t rows, std::size_t cols, Rng& rng) {
  ColumnSetting s;
  s.v1 = BitVec(rows);
  s.v2 = BitVec(rows);
  s.t = BitVec(cols);
  for (std::size_t i = 0; i < rows; ++i) {
    s.v1.set(i, rng.next_bool());
    s.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < cols; ++j) {
    s.t.set(j, rng.next_bool());
  }
  return s;
}

/// Alternate the two closed-form half-steps to a fixpoint.
double alternate_to_fixpoint(const ColumnCop& cop, ColumnSetting& s,
                             std::size_t max_sweeps) {
  double best = cop.objective(s);
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    cop.reset_optimal_t(s);
    cop.reset_optimal_v(s);
    const double now = cop.objective(s);
    if (now >= best - 1e-15) {
      best = std::min(best, now);
      break;
    }
    best = now;
  }
  return best;
}

/// Scalar anti-collapse intervention for one replica whose Theorem-3 reset
/// landed in a degenerate state (Sec. 3.3.2): re-derives the setting from
/// the oscillator signs, re-seeds the unused pattern's oscillators with the
/// exact column worst served by the current solution, recomputes the
/// optimal T, and writes the T oscillators back. Only degenerate replicas
/// take this O(rows * cols) path; the common case is handled batched by
/// ColumnCop::reset_optimal_t_planes().
void anti_collapse_intervene(const ColumnCop& cop, ReplicaView v) {
  const std::size_t r = cop.rows();
  const std::size_t c = cop.cols();
  ColumnSetting s;
  s.v1 = BitVec(r);
  s.v2 = BitVec(r);
  s.t = BitVec(c);
  for (std::size_t i = 0; i < r; ++i) {
    s.v1.set(i, v.x(cop.v1_spin(i)) >= 0.0);
    s.v2.set(i, v.x(cop.v2_spin(i)) >= 0.0);
  }
  cop.reset_optimal_t(s);

  const std::size_t on_pattern2 = s.t.count();
  const BooleanMatrix& m = cop.exact_matrix();
  double worst = -1.0;
  std::size_t worst_col = 0;
  for (std::size_t j = 0; j < c; ++j) {
    double cost = 0.0;
    for (std::size_t i = 0; i < r; ++i) {
      cost += cop.cell_cost(i, j, s.t.get(j) ? s.v2.get(i) : s.v1.get(i));
    }
    if (cost > worst) {
      worst = cost;
      worst_col = j;
    }
  }
  const bool reseed_v2 = on_pattern2 == 0 || s.v1 == s.v2;
  for (std::size_t i = 0; i < r; ++i) {
    const bool bit = m.at(i, worst_col);
    const std::size_t idx = reseed_v2 ? cop.v2_spin(i) : cop.v1_spin(i);
    v.x(idx) = bit ? 1.0 : -1.0;
    v.y(idx) = 0.0;
    if (reseed_v2) {
      s.v2.set(i, bit);
    } else {
      s.v1.set(i, bit);
    }
  }
  cop.reset_optimal_t(s);

  for (std::size_t j = 0; j < c; ++j) {
    const std::size_t idx = cop.t_spin(j);
    v.x(idx) = s.t.get(j) ? 1.0 : -1.0;
    v.y(idx) = 0.0;
  }
}

/// The Theorem-3 feedback closure (Sec. 3.3.2, batched): one plane sweep
/// computes the optimal column types for every replica at once and pins the
/// T oscillators before the integration continues; replicas whose reset
/// landed degenerate take the scalar anti-collapse re-seeding path. Shared
/// between the standalone solve and the packed batch (one closure per
/// member there, so each member keeps its own scratch).
SbBatchPlaneHook make_theorem3_hook(const ColumnCop& cop, const RunContext& ctx,
                                    bool anti_collapse) {
  return [&cop, &ctx, anti_collapse, cost_scratch = std::vector<double>{},
          degenerate = std::vector<std::uint8_t>{}](
             std::span<double> x, std::span<double> y,
             std::size_t replicas) mutable {
    cop.reset_optimal_t_planes(x, y, replicas, cost_scratch,
                               anti_collapse ? &degenerate : nullptr);
    ctx.telemetry().add("ising/theorem3/resets", replicas);
    qor_add(ctx.qor(), "ising/theorem3/resets",
            static_cast<double>(replicas));
    if (MetricsRegistry* m = ctx.metrics()) {
      m->counter("theorem3_resets_total").add(replicas);
    }
    if (!anti_collapse) {
      return;
    }
    std::size_t intervened = 0;
    for (std::size_t rep = 0; rep < replicas; ++rep) {
      if (degenerate[rep] != 0) {
        anti_collapse_intervene(
            cop, ReplicaView(x.data() + rep, y.data() + rep, cop.num_spins(),
                             replicas));
        ++intervened;
      }
    }
    if (intervened > 0) {
      ctx.telemetry().add("ising/theorem3/anti_collapse", intervened);
      qor_add(ctx.qor(), "ising/theorem3/anti_collapse",
              static_cast<double>(intervened));
      if (MetricsRegistry* m = ctx.metrics()) {
        m->counter("theorem3_anti_collapse_total").add(intervened);
      }
    }
    trace_counter(ctx.tracer(), "ising/theorem3/degenerate_replicas",
                  static_cast<double>(intervened));
  };
}

/// Symmetry-breaking start (Options::column_seed_init): V1/V2 oscillators
/// at +-0.1 spelling the two dominant exact columns, plus the refined
/// incumbent those columns alternate to — bSB's answer replaces it only
/// when strictly better.
struct WarmStart {
  std::vector<double> positions;  // empty when seeding is disabled
  ColumnSetting incumbent;
  double objective = 0.0;
  bool have = false;
};

WarmStart column_seed_warm_start(const ColumnCop& cop) {
  WarmStart warm;
  const std::size_t r = cop.rows();
  const auto [col1, col2] = dominant_column_pair(cop.exact_matrix());
  warm.positions.assign(cop.num_spins(), 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    warm.positions[cop.v1_spin(i)] = col1.get(i) ? 0.1 : -0.1;
    warm.positions[cop.v2_spin(i)] = col2.get(i) ? 0.1 : -0.1;
  }
  ColumnSetting incumbent;
  incumbent.v1 = col1;
  incumbent.v2 = col2;
  incumbent.t = BitVec(cop.cols());
  warm.objective = alternate_to_fixpoint(cop, incumbent, 8);
  warm.incumbent = std::move(incumbent);
  warm.have = true;
  return warm;
}

/// Final Theorem-3 polish of one decoded candidate plus its objective. The
/// polish delta (pre - post objective) is recorded only with QoR armed;
/// the extra evaluations read state only, so the off path is untouched.
double polish_and_score(const ColumnCop& cop, const RunContext& ctx,
                        ColumnSetting& s, bool final_polish) {
  if (final_polish) {
    if (QorRecorder* q = ctx.qor()) {
      const double pre = cop.objective(s);
      cop.reset_optimal_t(s);
      q->sample("ising/theorem3/polish_delta", pre - cop.objective(s));
    } else {
      cop.reset_optimal_t(s);
    }
  }
  return cop.objective(s);
}

/// The full bSB core solve (Theorem-3 feedback, warm incumbent, restarts,
/// final polish) as a free function, so IsingCoreSolver::do_solve and
/// PackedCoreCopSolver's single-instance path share one implementation.
ColumnSetting ising_core_solve(const ColumnCop& cop, const RunContext& ctx,
                               std::uint64_t seed, CoreSolveStats* stats,
                               const IsingCoreSolver::Options& options) {
  IsingModel model = cop.to_ising();

  SbBatchPlaneHook plane_hook;
  if (options.use_theorem3) {
    plane_hook = make_theorem3_hook(cop, ctx, options.anti_collapse);
  }

  ColumnSetting best;
  double best_obj = 0.0;
  std::size_t total_iters = 0;
  bool any_early = false;
  bool have_best = false;

  WarmStart warm;
  if (options.column_seed_init) {
    warm = column_seed_warm_start(cop);
    best = std::move(warm.incumbent);
    best_obj = warm.objective;
    have_best = true;
  }

  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
  const char* restart_span_name = "ising/bsb/restart";
  const char* engine_metric_label = "sb";  // matches run_engine's label
  switch (options.engine) {
    case IsingEngineKind::kSa:
      restart_span_name = "ising/sa/restart";
      engine_metric_label = "sa";
      break;
    case IsingEngineKind::kSimcim:
      restart_span_name = "ising/simcim/restart";
      engine_metric_label = "simcim";
      break;
    case IsingEngineKind::kDoch:
      restart_span_name = "ising/doch/restart";
      engine_metric_label = "doch";
      break;
    case IsingEngineKind::kBsb:
      break;
  }
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    // One trace span per restart, so each restart's energy trajectory is a
    // separate segment of the flame graph.
    const TraceSpan restart_span(ctx.tracer(), restart_span_name);
    if (MetricsRegistry* m = ctx.metrics()) {
      m->counter("engine_restarts_total", {{"engine", engine_metric_label}})
          .add();
    }
    const std::uint64_t attempt_seed = seed + 0x9e3779b9u * attempt;
    // First attempt runs from the informed seed; further restarts explore
    // from the plain start with fresh momenta / noise / kicks.
    const bool use_warm = attempt == 0 && !warm.positions.empty();
    IsingSolveResult res;
    switch (options.engine) {
      case IsingEngineKind::kBsb: {
        SbParams params = options.sb;
        params.seed = attempt_seed;
        if (use_warm) {
          params.initial_positions = warm.positions;
        }
        res = solve_sb_batch(model, params, replicas, nullptr, plane_hook,
                             &ctx);
        break;
      }
      case IsingEngineKind::kSa: {
        // Scalar spin-flip dynamics: replicas are realized as shifted-seed
        // repeats picking the best energy, iterations summed (matching the
        // ensemble engines' replica-scaled counts). Warm *positions* and
        // the Theorem-3 plane hook don't apply — SA has no oscillator
        // planes — but the warm incumbent and final polish still do.
        bool have = false;
        for (std::size_t rep = 0; rep < replicas; ++rep) {
          SaParams params = options.sa;
          params.seed = attempt_seed + 0x9e3779b9u * rep;
          IsingSolveResult one = solve_sa(model, params, &ctx);
          if (!have || one.energy < res.energy) {
            const std::size_t iters_so_far = have ? res.iterations : 0;
            const bool early_so_far = have && res.stopped_early;
            res = std::move(one);
            res.iterations += iters_so_far;
            res.stopped_early = res.stopped_early || early_so_far;
          } else {
            res.iterations += one.iterations;
            res.stopped_early = res.stopped_early || one.stopped_early;
          }
          have = true;
          if (ctx.expired()) {
            break;
          }
        }
        break;
      }
      case IsingEngineKind::kSimcim: {
        SimcimParams params = options.simcim;
        params.seed = attempt_seed;
        if (use_warm) {
          params.initial_positions = warm.positions;
        }
        res = solve_simcim(model, params, replicas, nullptr, plane_hook,
                           &ctx);
        break;
      }
      case IsingEngineKind::kDoch: {
        DochParams params = options.doch;
        params.seed = attempt_seed;
        if (use_warm) {
          params.initial_positions = warm.positions;
          // A full-amplitude kick would drown the ±0.1 warm pattern; keep
          // the first attempt in the seed's basin.
          params.init_amp = std::min(params.init_amp, 0.1);
        }
        res = solve_doch(model, params, replicas, nullptr, plane_hook, &ctx);
        break;
      }
    }
    total_iters += res.iterations;
    any_early = any_early || res.stopped_early;

    ColumnSetting s = cop.decode(res.spins);
    const double obj = polish_and_score(cop, ctx, s, options.final_polish);
    if (!have_best || obj < best_obj) {
      best = std::move(s);
      best_obj = obj;
      have_best = true;
    }
    if (ctx.expired()) {
      any_early = true;
      break;
    }
  }

  if (stats != nullptr) {
    stats->objective = best_obj;
    stats->iterations = total_iters;
    stats->stopped_early = any_early;
    stats->proven_optimal = false;
  }
  return best;
}

/// One packed chunk of the batched solve: up to `pack` same-n instances
/// through one BsbPackEngine per restart attempt. Every member replicates
/// the standalone ising_core_solve state machine — same warm start, same
/// per-attempt seeds, same Theorem-3 closure per member, same polish and
/// best-selection — so packed results are bit-identical per instance.
void solve_packed_chunk(std::span<const ColumnCop> cops, const RunContext& ctx,
                        std::span<const std::uint64_t> seeds,
                        std::span<ColumnSetting> out,
                        std::span<CoreSolveStats> stats,
                        std::span<const std::size_t> members,
                        const IsingCoreSolver::Options& options,
                        const PackEngineOptions& engine_opts) {
  const std::size_t M = members.size();
  if (M == 1) {
    const std::size_t idx = members[0];
    out[idx] = ising_core_solve(cops[idx], ctx, seeds[idx], &stats[idx],
                                options);
    return;
  }

  struct MemberState {
    std::optional<IsingModel> model;
    SbBatchPlaneHook hook;
    WarmStart warm;
    ColumnSetting best;
    double best_obj = 0.0;
    std::size_t total_iters = 0;
    bool any_early = false;
    bool have_best = false;
  };
  std::vector<MemberState> ms(M);
  for (std::size_t m = 0; m < M; ++m) {
    const ColumnCop& cop = cops[members[m]];
    ms[m].model.emplace(cop.to_ising());
    if (options.use_theorem3) {
      ms[m].hook = make_theorem3_hook(cop, ctx, options.anti_collapse);
    }
    if (options.column_seed_init) {
      ms[m].warm = column_seed_warm_start(cop);
      ms[m].best = std::move(ms[m].warm.incumbent);
      ms[m].best_obj = ms[m].warm.objective;
      ms[m].have_best = true;
    }
  }

  PackPlaneHook pack_hook;
  if (options.use_theorem3) {
    pack_hook = [&ms](std::size_t m, std::span<double> x, std::span<double> y,
                      std::size_t replicas) {
      ms[m].hook(x, y, replicas);
    };
  }

  const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    std::vector<PackMember> pack(M);
    for (std::size_t m = 0; m < M; ++m) {
      pack[m].model = &*ms[m].model;
      pack[m].seed = seeds[members[m]] + 0x9e3779b9u * attempt;
      if (attempt == 0 && !ms[m].warm.positions.empty()) {
        pack[m].initial_positions = ms[m].warm.positions;
      }
    }
    BsbPackEngine engine(pack, options.sb, replicas, engine_opts);
    engine.set_context(&ctx);
    const std::vector<IsingSolveResult> results = engine.run(pack_hook);

    for (std::size_t m = 0; m < M; ++m) {
      const IsingSolveResult& res = results[m];
      // solve_sb_batch scales iterations by the replica count; mirror it.
      ms[m].total_iters += res.iterations * replicas;
      ms[m].any_early = ms[m].any_early || res.stopped_early;
      const ColumnCop& cop = cops[members[m]];
      ColumnSetting s = cop.decode(res.spins);
      const double obj = polish_and_score(cop, ctx, s, options.final_polish);
      if (!ms[m].have_best || obj < ms[m].best_obj) {
        ms[m].best = std::move(s);
        ms[m].best_obj = obj;
        ms[m].have_best = true;
      }
    }
    if (ctx.expired()) {
      for (std::size_t m = 0; m < M; ++m) {
        ms[m].any_early = true;
      }
      break;
    }
  }

  for (std::size_t m = 0; m < M; ++m) {
    const std::size_t idx = members[m];
    out[idx] = std::move(ms[m].best);
    stats[idx].objective = ms[m].best_obj;
    stats[idx].iterations = ms[m].total_iters;
    stats[idx].stopped_early = ms[m].any_early;
    stats[idx].proven_optimal = false;
  }
}

/// Shared-J restart packing (Options::share_j): the `restarts` attempts of
/// ONE instance run as members of a single shared-model pack on the
/// broadcast-weight kernels — one n x n coupling plane instead of one per
/// attempt. Bit-identical to the sequential restart loop of
/// ising_core_solve: same per-attempt seeds (seed + attempt * 0x9e3779b9),
/// warm start on attempt 0 only, one shared Theorem-3 closure (its
/// captures are pure per-call scratch), ascending-attempt strict-less best
/// selection. One intentional difference: the sequential loop skips the
/// remaining restarts once the deadline expires mid-sequence, while the
/// packed attempts run concurrently and all retire at the deadline — more
/// attempts finish, and the best objective can only improve.
ColumnSetting ising_core_solve_shared_restarts(
    const ColumnCop& cop, const RunContext& ctx, std::uint64_t seed,
    CoreSolveStats* stats, const IsingCoreSolver::Options& options,
    PackEngineOptions engine_opts) {
  const std::size_t restarts = std::max<std::size_t>(1, options.restarts);
  const std::size_t replicas = std::max<std::size_t>(1, options.replicas);
  const IsingModel model = cop.to_ising();

  SbBatchPlaneHook hook;
  PackPlaneHook pack_hook;
  if (options.use_theorem3) {
    hook = make_theorem3_hook(cop, ctx, options.anti_collapse);
    pack_hook = [&hook](std::size_t, std::span<double> x, std::span<double> y,
                        std::size_t reps) { hook(x, y, reps); };
  }

  ColumnSetting best;
  double best_obj = 0.0;
  bool have_best = false;
  WarmStart warm;
  if (options.column_seed_init) {
    warm = column_seed_warm_start(cop);
    best = std::move(warm.incumbent);
    best_obj = warm.objective;
    have_best = true;
  }

  std::vector<PackMember> pack(restarts);
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    pack[attempt].model = &model;
    pack[attempt].seed = seed + 0x9e3779b9u * attempt;
    if (attempt == 0 && !warm.positions.empty()) {
      pack[attempt].initial_positions = warm.positions;
    }
  }
  engine_opts.share_j = true;
  BsbPackEngine engine(pack, options.sb, replicas, engine_opts);
  engine.set_context(&ctx);
  const std::vector<IsingSolveResult> results = engine.run(pack_hook);

  std::size_t total_iters = 0;
  bool any_early = false;
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    const IsingSolveResult& res = results[attempt];
    // solve_sb_batch scales iterations by the replica count; mirror it.
    total_iters += res.iterations * replicas;
    any_early = any_early || res.stopped_early;
    ColumnSetting s = cop.decode(res.spins);
    const double obj = polish_and_score(cop, ctx, s, options.final_polish);
    if (!have_best || obj < best_obj) {
      best = std::move(s);
      best_obj = obj;
      have_best = true;
    }
  }

  if (stats != nullptr) {
    stats->objective = best_obj;
    stats->iterations = total_iters;
    stats->stopped_early = any_early;
    stats->proven_optimal = false;
  }
  return best;
}

}  // namespace

ColumnSetting CoreCopSolver::solve(const ColumnCop& cop, const RunContext& ctx,
                                   std::uint64_t seed,
                                   CoreSolveStats* stats) const {
  CoreSolveStats local;
  CoreSolveStats* out = stats != nullptr ? stats : &local;
  TelemetrySink& sink = ctx.telemetry();
  const std::string span_path = "core/solve/" + name();
  const auto span = sink.span(span_path);
  const TraceSpan trace_span(ctx.tracer(), span_path);
  const Timer solve_timer;
  ColumnSetting s = do_solve(cop, ctx, seed, out);
  sink.add("core/solves");
  sink.add("core/iterations", out->iterations);
  if (out->stopped_early) {
    sink.add("core/early_stops");
  }
  if (MetricsRegistry* m = ctx.metrics()) {
    // Solver-level latency (restarts + polish included, unlike the
    // per-engine-run solve_latency_us) and the cross-solve cadence.
    m->counter("core_solves_total", {{"solver", name()}}).add();
    m->counter("core_iterations_total", {{"solver", name()}})
        .add(out->iterations);
    if (out->stopped_early) {
      m->counter("core_early_stops_total", {{"solver", name()}}).add();
    }
    m->histogram("core_solve_latency_us", {{"solver", name()}})
        .record(solve_timer.seconds() * 1e6);
  }
  // Per-solver objective distribution; guarded on the pointer because the
  // sample name is built by concatenation.
  if (QorRecorder* q = ctx.qor()) {
    q->sample("core/objective/" + name(), out->objective);
  }
  return s;
}

std::vector<ColumnSetting> CoreCopSolver::solve_batch(
    std::span<const ColumnCop> cops, const RunContext& ctx,
    std::span<const std::uint64_t> seeds,
    std::vector<CoreSolveStats>* stats) const {
  if (cops.size() != seeds.size()) {
    throw std::invalid_argument(
        "CoreCopSolver::solve_batch: one seed per instance required");
  }
  std::vector<ColumnSetting> out(cops.size());
  std::vector<CoreSolveStats> local(cops.size());
  if (!batched()) {
    // Unbatched solvers get the exact caller-side loop, per-solve spans
    // and all, so feeding a batch is never a behavior change.
    for (std::size_t i = 0; i < cops.size(); ++i) {
      out[i] = solve(cops[i], ctx, seeds[i], &local[i]);
    }
  } else if (!cops.empty()) {
    TelemetrySink& sink = ctx.telemetry();
    const std::string span_path = "core/solve_batch/" + name();
    const auto span = sink.span(span_path);
    const TraceSpan trace_span(ctx.tracer(), span_path);
    do_solve_batch(cops, ctx, seeds, out, local);
    sink.add("core/solves", cops.size());
    sink.add("core/batch_solves");
    QorRecorder* q = ctx.qor();
    const std::string qor_name =
        q != nullptr ? "core/objective/" + name() : std::string{};
    for (const CoreSolveStats& s : local) {
      sink.add("core/iterations", s.iterations);
      if (s.stopped_early) {
        sink.add("core/early_stops");
      }
      if (q != nullptr) {
        q->sample(qor_name, s.objective);
      }
    }
  }
  if (stats != nullptr) {
    *stats = std::move(local);
  }
  return out;
}

void CoreCopSolver::do_solve_batch(std::span<const ColumnCop> cops,
                                   const RunContext& ctx,
                                   std::span<const std::uint64_t> seeds,
                                   std::span<ColumnSetting> out,
                                   std::span<CoreSolveStats> stats) const {
  for (std::size_t i = 0; i < cops.size(); ++i) {
    out[i] = do_solve(cops[i], ctx, seeds[i], &stats[i]);
  }
}

IsingCoreSolver::Options IsingCoreSolver::Options::paper_defaults(
    unsigned num_inputs) {
  Options o;
  o.sb.max_iterations = 1000;
  o.sb.dt = 0.5;
  o.sb.stop.enabled = true;
  o.sb.stop.epsilon = 1e-8;
  const std::size_t fs = num_inputs <= 12 ? 20 : 10;
  o.sb.stop.sample_interval = fs;
  o.sb.stop.window = fs;
  return o;
}

ColumnSetting IsingCoreSolver::do_solve(const ColumnCop& cop,
                                        const RunContext& ctx,
                                        std::uint64_t seed,
                                        CoreSolveStats* stats) const {
  return ising_core_solve(cop, ctx, seed, stats, options_);
}

ColumnSetting PackedCoreCopSolver::do_solve(const ColumnCop& cop,
                                            const RunContext& ctx,
                                            std::uint64_t seed,
                                            CoreSolveStats* stats) const {
  // Shared-J restart packing: even a lone instance has restarts to pack.
  if (options_.share_j && std::max<std::size_t>(1, options_.core.restarts) > 1) {
    return ising_core_solve_shared_restarts(
        cop, ctx, seed, stats, options_.core,
        PackEngineOptions{options_.layout, options_.tile, true});
  }
  // A lone instance takes the standalone path — bit-identical to
  // IsingCoreSolver with the same core options, no packing overhead.
  return ising_core_solve(cop, ctx, seed, stats, options_.core);
}

void PackedCoreCopSolver::do_solve_batch(std::span<const ColumnCop> cops,
                                         const RunContext& ctx,
                                         std::span<const std::uint64_t> seeds,
                                         std::span<ColumnSetting> out,
                                         std::span<CoreSolveStats> stats) const {
  // Shared-J restart packing: members of one pack must share a model, so
  // each instance becomes its own pack of restart attempts; the pool then
  // parallelizes across instances exactly as it would across chunks.
  if (options_.share_j &&
      std::max<std::size_t>(1, options_.core.restarts) > 1) {
    const PackEngineOptions engine_opts{options_.layout, options_.tile, true};
    auto run_one = [&](std::size_t i) {
      out[i] = ising_core_solve_shared_restarts(cops[i], ctx, seeds[i],
                                                &stats[i], options_.core,
                                                engine_opts);
    };
    if (ctx.parallel() && cops.size() > 1) {
      ThreadPool& pool = ctx.pool();
      if (pool.thread_count() > 1) {
        pool.parallel_for(cops.size(), run_one);
        return;
      }
    }
    for (std::size_t i = 0; i < cops.size(); ++i) {
      run_one(i);
    }
    return;
  }

  // Sort instances by num_spins (stable, so same-shape batches — the
  // DALTA case, where all P candidates share the r x c shape — keep input
  // order), then carve chunks of at most `pack` members. Sizes may mix
  // inside a chunk: the engine pads smaller members with inert spins, and
  // admitting the next (sorted, so largest-so-far) instance is allowed as
  // long as the padded volume n_new^2 * count stays within 25% of the
  // members' own sum of n^2 — a straggler size rides along instead of
  // forcing its own under-filled pack, but never at more than 1.25x the
  // force-pass flops the members would cost unpadded.
  std::vector<std::size_t> order(cops.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&cops](std::size_t a, std::size_t b) {
                     return cops[a].num_spins() < cops[b].num_spins();
                   });

  const std::size_t pack = std::max<std::size_t>(1, options_.pack);
  struct Chunk {
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Chunk> chunks;
  for (std::size_t i = 0; i < order.size();) {
    std::size_t j = i;
    std::size_t own_volume = 0;
    while (j < order.size() && j - i < pack) {
      const std::size_t n = cops[order[j]].num_spins();
      const std::size_t padded = n * n * (j - i + 1);
      const std::size_t own = own_volume + n * n;
      if (j > i && padded * 4 > own * 5) {
        break;
      }
      own_volume = own;
      ++j;
    }
    chunks.push_back({i, j});
    i = j;
  }

  const PackEngineOptions engine_opts{options_.layout, options_.tile, false};
  auto run_chunk = [&](std::size_t c) {
    const Chunk& chunk = chunks[c];
    solve_packed_chunk(cops, ctx, seeds, out, stats,
                       std::span<const std::size_t>(order.data() + chunk.begin,
                                                    chunk.end - chunk.begin),
                       options_.core, engine_opts);
  };

  // Parallelism across whole packs: each chunk's engine run is serial
  // (members are tiny; SIMD across members does the intra-pack work), so
  // chunks are the natural unit for the pool. A nested call from inside a
  // caller's parallel_for runs inline via the pool's nesting guard.
  if (ctx.parallel() && chunks.size() > 1) {
    ThreadPool& pool = ctx.pool();
    if (pool.thread_count() > 1) {
      pool.parallel_for(chunks.size(), run_chunk);
      return;
    }
  }
  for (std::size_t c = 0; c < chunks.size(); ++c) {
    run_chunk(c);
  }
}

ColumnSetting ExhaustiveCoreSolver::do_solve(const ColumnCop& cop,
                                             const RunContext& /*ctx*/,
                                             std::uint64_t /*seed*/,
                                             CoreSolveStats* stats) const {
  if (cop.num_spins() > 24) {
    throw std::invalid_argument(
        "ExhaustiveCoreSolver: instance too large (2r + c must be <= 24)");
  }
  const IsingModel model = cop.to_ising();
  const IsingSolveResult res = solve_exhaustive(model);
  ColumnSetting s = cop.decode(res.spins);
  if (stats != nullptr) {
    stats->objective = cop.objective(s);
    stats->iterations = res.iterations;
    stats->stopped_early = false;
    stats->proven_optimal = true;
  }
  return s;
}

ColumnSetting AlternatingCoreSolver::do_solve(const ColumnCop& cop,
                                              const RunContext& /*ctx*/,
                                              std::uint64_t seed,
                                              CoreSolveStats* stats) const {
  Rng rng(seed);
  ColumnSetting best;
  double best_obj = 0.0;
  bool have_best = false;
  const std::size_t restarts = std::max<std::size_t>(1, restarts_);
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    ColumnSetting s = random_setting(cop.rows(), cop.cols(), rng);
    const double obj = alternate_to_fixpoint(cop, s, max_sweeps_);
    if (!have_best || obj < best_obj) {
      best = std::move(s);
      best_obj = obj;
      have_best = true;
    }
  }
  if (stats != nullptr) {
    stats->objective = best_obj;
    stats->iterations = restarts * max_sweeps_;
    stats->stopped_early = false;
    stats->proven_optimal = false;
  }
  return best;
}

ColumnSetting HeuristicCoreSolver::do_solve(const ColumnCop& cop,
                                            const RunContext& /*ctx*/,
                                            std::uint64_t /*seed*/,
                                            CoreSolveStats* stats) const {
  const BooleanMatrix& m = cop.exact_matrix();

  // The two most frequent distinct exact columns seed the pattern pair.
  ColumnSetting s;
  std::tie(s.v1, s.v2) = dominant_column_pair(m);
  s.t = BitVec(m.cols());
  if (refine_sweeps_ == 0) {
    cop.reset_optimal_t(s);
  } else {
    alternate_to_fixpoint(cop, s, refine_sweeps_);
  }

  if (stats != nullptr) {
    stats->objective = cop.objective(s);
    stats->iterations = 1;
    stats->stopped_early = false;
    stats->proven_optimal = false;
  }
  return s;
}

ColumnSetting AnnealCoreSolver::do_solve(const ColumnCop& cop,
                                         const RunContext& /*ctx*/,
                                         std::uint64_t seed,
                                         CoreSolveStats* stats) const {
  const std::size_t r = cop.rows();
  const std::size_t c = cop.cols();
  const std::size_t bits = 2 * r + c;
  Rng rng(seed);

  ColumnSetting best;
  double best_obj = 0.0;
  bool have_best = false;
  std::size_t sweeps_done = 0;

  const std::size_t restarts = std::max<std::size_t>(1, options_.restarts);
  for (std::size_t attempt = 0; attempt < restarts; ++attempt) {
    ColumnSetting s = random_setting(r, c, rng);
    double obj = cop.objective(s);
    if (!have_best || obj < best_obj) {
      best = s;
      best_obj = obj;
      have_best = true;
    }

    const double ratio =
        options_.sweeps > 1
            ? std::pow(options_.beta_end / options_.beta_start,
                       1.0 / static_cast<double>(options_.sweeps - 1))
            : 1.0;
    double beta = options_.beta_start;

    for (std::size_t sweep = 0; sweep < options_.sweeps; ++sweep) {
      for (std::size_t step = 0; step < bits; ++step) {
        const std::size_t pick = rng.next_below(bits);
        double delta = 0.0;
        if (pick < r) {
          // Flip V1_i: affects columns with T_j = 0.
          const std::size_t i = pick;
          const double sign = s.v1.get(i) ? -1.0 : 1.0;
          for (std::size_t j = 0; j < c; ++j) {
            if (!s.t.get(j)) {
              delta += sign * (cop.cell_cost(i, j, true) -
                               cop.cell_cost(i, j, false));
            }
          }
          if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
            s.v1.flip(i);
            obj += delta;
          }
        } else if (pick < 2 * r) {
          const std::size_t i = pick - r;
          const double sign = s.v2.get(i) ? -1.0 : 1.0;
          for (std::size_t j = 0; j < c; ++j) {
            if (s.t.get(j)) {
              delta += sign * (cop.cell_cost(i, j, true) -
                               cop.cell_cost(i, j, false));
            }
          }
          if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
            s.v2.flip(i);
            obj += delta;
          }
        } else {
          // Flip T_j: column j switches pattern.
          const std::size_t j = pick - 2 * r;
          const bool now = s.t.get(j);
          for (std::size_t i = 0; i < r; ++i) {
            const bool cur = now ? s.v2.get(i) : s.v1.get(i);
            const bool nxt = now ? s.v1.get(i) : s.v2.get(i);
            if (cur != nxt) {
              delta += cop.cell_cost(i, j, nxt) - cop.cell_cost(i, j, cur);
            }
          }
          if (delta <= 0.0 || rng.next_double() < std::exp(-beta * delta)) {
            s.t.flip(j);
            obj += delta;
          }
        }
      }
      ++sweeps_done;
      if (obj < best_obj) {
        best = s;
        best_obj = obj;
      }
      beta *= ratio;
    }
  }

  // Guard against drift in the incrementally tracked objective.
  best_obj = cop.objective(best);

  if (stats != nullptr) {
    stats->objective = best_obj;
    stats->iterations = sweeps_done;
    stats->stopped_early = false;
    stats->proven_optimal = false;
  }
  return best;
}

namespace {

/// Depth-first exact search over column-type assignments with per-row
/// separable bounds; see BnbCoreSolver docs.
class ColumnBnb {
 public:
  ColumnBnb(const ColumnCop& cop, double time_budget_s)
      : cop_(cop),
        r_(cop.rows()),
        c_(cop.cols()),
        deadline_(time_budget_s) {
    // Visit heavy columns first: their assignment moves the bound most.
    order_.resize(c_);
    for (std::size_t j = 0; j < c_; ++j) {
      order_[j] = j;
    }
    std::vector<double> weight(c_, 0.0);
    std::vector<double> colmin(c_, 0.0);
    for (std::size_t j = 0; j < c_; ++j) {
      for (std::size_t i = 0; i < r_; ++i) {
        const double c0 = cop.cell_cost(i, j, false);
        const double c1 = cop.cell_cost(i, j, true);
        weight[j] += std::fabs(c1 - c0);
        colmin[j] += std::min(c0, c1);
      }
    }
    std::sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return weight[a] > weight[b];
    });
    // rem_[pos] = sum over columns at positions >= pos of their cell-wise
    // minimum cost: the relaxation value of everything not yet assigned.
    rem_.assign(c_ + 1, 0.0);
    for (std::size_t pos = c_; pos-- > 0;) {
      rem_[pos] = rem_[pos + 1] + colmin[order_[pos]];
    }
    cost1_.assign(2 * r_, 0.0);
    cost2_.assign(2 * r_, 0.0);
    t_.assign(c_, 0);
  }

  void set_incumbent(const ColumnSetting& s, double obj) {
    best_setting_ = s;
    best_obj_ = obj;
  }

  void run() {
    dfs(0, 0.0);
  }

  const ColumnSetting& best() const { return best_setting_; }
  double best_objective() const { return best_obj_; }
  std::size_t nodes() const { return nodes_; }
  bool hit_deadline() const { return hit_deadline_; }

 private:
  // cost1_[2i + v] accumulates the cost of row i taking value v over the
  // columns assigned to pattern 1 so far; cost2_ likewise for pattern 2.
  double lower_bound(std::size_t pos) const {
    double lb = rem_[pos];
    for (std::size_t i = 0; i < r_; ++i) {
      lb += std::min(cost1_[2 * i], cost1_[2 * i + 1]);
      lb += std::min(cost2_[2 * i], cost2_[2 * i + 1]);
    }
    return lb;
  }

  void assign(std::size_t j, int pattern, int direction) {
    auto& cost = pattern == 1 ? cost1_ : cost2_;
    const double sign = direction;
    for (std::size_t i = 0; i < r_; ++i) {
      cost[2 * i] += sign * cop_.cell_cost(i, j, false);
      cost[2 * i + 1] += sign * cop_.cell_cost(i, j, true);
    }
  }

  void dfs(std::size_t pos, double /*unused*/) {
    if (hit_deadline_ || (++nodes_ % 1024 == 0 && deadline_.expired())) {
      hit_deadline_ = true;
      return;
    }
    if (lower_bound(pos) >= best_obj_ - 1e-12) {
      return;
    }
    if (pos == c_) {
      // All columns typed: the optimal V is the per-row argmin.
      ColumnSetting s;
      s.v1 = BitVec(r_);
      s.v2 = BitVec(r_);
      s.t = BitVec(c_);
      double obj = 0.0;
      for (std::size_t i = 0; i < r_; ++i) {
        s.v1.set(i, cost1_[2 * i + 1] < cost1_[2 * i]);
        s.v2.set(i, cost2_[2 * i + 1] < cost2_[2 * i]);
        obj += std::min(cost1_[2 * i], cost1_[2 * i + 1]);
        obj += std::min(cost2_[2 * i], cost2_[2 * i + 1]);
      }
      for (std::size_t pos2 = 0; pos2 < c_; ++pos2) {
        s.t.set(order_[pos2], t_[pos2] == 2);
      }
      if (obj < best_obj_) {
        best_obj_ = obj;
        best_setting_ = std::move(s);
      }
      return;
    }

    const std::size_t j = order_[pos];
    for (int pattern = 1; pattern <= 2; ++pattern) {
      t_[pos] = pattern;
      assign(j, pattern, +1);
      dfs(pos + 1, 0.0);
      assign(j, pattern, -1);
      if (hit_deadline_) {
        return;
      }
    }
  }

  const ColumnCop& cop_;
  std::size_t r_;
  std::size_t c_;
  Deadline deadline_;
  std::vector<std::size_t> order_;
  std::vector<double> rem_;
  std::vector<double> cost1_;
  std::vector<double> cost2_;
  std::vector<int> t_;
  ColumnSetting best_setting_;
  double best_obj_ = 1e300;
  std::size_t nodes_ = 0;
  bool hit_deadline_ = false;
};

}  // namespace

ColumnSetting BnbCoreSolver::do_solve(const ColumnCop& cop,
                                      const RunContext& ctx,
                                      std::uint64_t seed,
                                      CoreSolveStats* stats) const {
  // Warm incumbent from alternating minimization (cheap, often near-opt).
  const AlternatingCoreSolver warm(options_.warm_restarts);
  ColumnSetting incumbent = warm.solve(cop, ctx, seed, nullptr);
  const double incumbent_obj = cop.objective(incumbent);

  // The context deadline caps the solver's own budget (whichever is
  // tighter); a budget-less context leaves the configured budget alone.
  double budget = options_.time_budget_s;
  if (ctx.deadline().budget() > 0.0) {
    const double remaining = ctx.deadline().remaining();
    budget = budget > 0.0 ? std::min(budget, remaining) : remaining;
  }

  ColumnBnb bnb(cop, budget);
  bnb.set_incumbent(incumbent, incumbent_obj);
  bnb.run();

  if (stats != nullptr) {
    stats->objective = bnb.best_objective();
    stats->iterations = bnb.nodes();
    stats->stopped_early = bnb.hit_deadline();
    stats->proven_optimal = !bnb.hit_deadline();
  }
  return bnb.best();
}

}  // namespace adsd
