#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cop_solvers.hpp"
#include "support/qor.hpp"

namespace adsd {

/// Racing portfolio meta-solver (registry spec
/// `"portfolio,members=prop|simcim|doch,budget-ms=...,mode=race|adapt"`,
/// DESIGN.md §4.8): runs every member solver on the same COP with the same
/// seed and commits the strictly best objective. Member 0 is the *anchor*
/// — it always runs, and ties go to it — so with the default `prop` anchor
/// the portfolio never returns a worse setting than plain bSB on the same
/// seed (the property bench_diff gates in CI).
///
/// budget-ms > 0 makes the race anytime: the soft budget is checked at
/// member boundaries (a started member finishes; the per-member deadline
/// machinery inside each engine handles intra-solve budgets), and members
/// that would start past it are skipped and counted. Without a budget the
/// race is deterministic — every member always runs — which is what the
/// fixed-seed CI gate wants.
///
/// mode=adapt additionally accumulates per-(instance-family, member) win
/// rates across the solver's lifetime in a WinRateTable (families are
/// "r{rows}c{cols}" COP shapes) and, once a family has min_trials races,
/// reorders the non-anchor members by descending win rate and prunes those
/// below prune_below — DALTA's thousands of same-family core COPs make
/// the table converge within one run.
class PortfolioCoreSolver final : public CoreCopSolver {
 public:
  enum class Mode { kRace, kAdapt };

  struct Options {
    /// Registry specs of the member solvers; members[0] is the anchor.
    /// Nested portfolios are rejected.
    std::vector<std::string> member_specs = {"prop", "simcim", "doch"};

    /// Soft race budget in milliseconds; <= 0 disables (deterministic).
    double budget_ms = 0.0;

    Mode mode = Mode::kRace;

    /// Adapt mode: races a family must accumulate before reorder/prune
    /// kicks in for it.
    std::uint64_t min_trials = 8;

    /// Adapt mode: non-anchor members whose family win rate drops below
    /// this after min_trials races are skipped.
    double prune_below = 0.05;
  };

  explicit PortfolioCoreSolver(Options options);

  std::string name() const override { return "portfolio"; }

  const Options& options() const { return options_; }

  /// Member solvers in configured order (anchor first).
  const std::vector<std::unique_ptr<CoreCopSolver>>& members() const {
    return members_;
  }

  /// The accumulated adapt-mode decision records (empty in race mode).
  const WinRateTable& win_rates() const { return wins_; }

 protected:
  ColumnSetting do_solve(const ColumnCop& cop, const RunContext& ctx,
                         std::uint64_t seed,
                         CoreSolveStats* stats) const override;

 private:
  Options options_;
  std::vector<std::unique_ptr<CoreCopSolver>> members_;
  mutable WinRateTable wins_;
};

}  // namespace adsd
