#include "core/row_ilp.hpp"

#include <cmath>
#include <stdexcept>

namespace adsd {

RowIlpEncoding encode_row_cop_separate(const BooleanMatrix& exact,
                                       const std::vector<double>& probs) {
  const std::size_t r = exact.rows();
  const std::size_t c = exact.cols();
  if (probs.size() != r * c) {
    throw std::invalid_argument("encode_row_cop_separate: probs mismatch");
  }
  std::vector<double> cost0(r * c);
  std::vector<double> cost1(r * c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      const std::size_t idx = i * c + j;
      cost0[idx] = exact.at(i, j) ? probs[idx] : 0.0;
      cost1[idx] = exact.at(i, j) ? 0.0 : probs[idx];
    }
  }
  return encode_row_cop(exact, cost0, cost1);
}

RowIlpEncoding encode_row_cop_joint(const BooleanMatrix& exact,
                                    const std::vector<double>& probs,
                                    const std::vector<double>& d,
                                    double bit_weight) {
  const std::size_t cells = exact.rows() * exact.cols();
  if (probs.size() != cells || d.size() != cells) {
    throw std::invalid_argument("encode_row_cop_joint: size mismatch");
  }
  if (bit_weight <= 0.0) {
    throw std::invalid_argument("encode_row_cop_joint: bad bit weight");
  }
  std::vector<double> cost0(cells);
  std::vector<double> cost1(cells);
  for (std::size_t idx = 0; idx < cells; ++idx) {
    cost0[idx] = probs[idx] * std::fabs(d[idx]);
    cost1[idx] = probs[idx] * std::fabs(bit_weight + d[idx]);
  }
  return encode_row_cop(exact, cost0, cost1);
}

RowIlpEncoding encode_row_cop(const BooleanMatrix& exact,
                              const std::vector<double>& cost0,
                              const std::vector<double>& cost1) {
  const std::size_t r = exact.rows();
  const std::size_t c = exact.cols();
  if (cost0.size() != r * c || cost1.size() != r * c) {
    throw std::invalid_argument("encode_row_cop: cost size mismatch");
  }

  RowIlpEncoding enc;
  enc.rows = r;
  enc.cols = c;
  const std::size_t num_vars = c + 4 * r + 2 * r * c;
  enc.problem.lp.objective.assign(num_vars, 0.0);
  enc.problem.is_binary.assign(num_vars, false);

  for (std::size_t j = 0; j < c; ++j) {
    enc.problem.is_binary[enc.v_var(j)] = true;
  }
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t t = 0; t < 4; ++t) {
      enc.problem.is_binary[enc.s_var(i, t)] = true;
    }
  }

  auto& obj = enc.problem.lp.objective;
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      // Cost of predicting 0 / 1 at this cell.
      const double e0 = cost0[i * c + j];
      const double e1 = cost1[i * c + j];
      // Type all-0 predicts 0 everywhere; all-1 predicts 1 everywhere.
      obj[enc.s_var(i, 0)] += e0;
      obj[enc.s_var(i, 1)] += e1;
      // Type V predicts V_j:   cost = e0 * s + (e1 - e0) * (s AND V_j).
      obj[enc.s_var(i, 2)] += e0;
      obj[enc.z1_var(i, j)] += e1 - e0;
      // Type ~V predicts 1-V_j: cost = e1 * s + (e0 - e1) * (s AND V_j).
      obj[enc.s_var(i, 3)] += e1;
      obj[enc.z2_var(i, j)] += e0 - e1;
    }
  }

  auto& lp = enc.problem.lp;
  auto unit_row = [num_vars](std::size_t var, double coeff) {
    std::vector<double> row(num_vars, 0.0);
    row[var] = coeff;
    return row;
  };

  // One-hot row types.
  for (std::size_t i = 0; i < r; ++i) {
    std::vector<double> row(num_vars, 0.0);
    for (std::size_t t = 0; t < 4; ++t) {
      row[enc.s_var(i, t)] = 1.0;
    }
    lp.add_eq(std::move(row), 1.0);
  }

  // McCormick envelopes pinning z = s * V at binary corners:
  //   z <= s,  z <= V,  z >= s + V - 1,  z >= 0 (implicit).
  auto add_product = [&](std::size_t z, std::size_t s, std::size_t v) {
    std::vector<double> row = unit_row(z, 1.0);
    row[s] = -1.0;
    lp.add_le(std::move(row), 0.0);

    row = unit_row(z, 1.0);
    row[v] = -1.0;
    lp.add_le(std::move(row), 0.0);

    row = unit_row(z, 1.0);
    row[s] = -1.0;
    row[v] = -1.0;
    lp.add_ge(std::move(row), -1.0);
  };
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      add_product(enc.z1_var(i, j), enc.s_var(i, 2), enc.v_var(j));
      add_product(enc.z2_var(i, j), enc.s_var(i, 3), enc.v_var(j));
    }
  }

  return enc;
}

RowSetting decode_row_ilp(const RowIlpEncoding& enc,
                          const std::vector<double>& x) {
  RowSetting rs;
  rs.pattern = BitVec(enc.cols);
  rs.types.resize(enc.rows);
  for (std::size_t j = 0; j < enc.cols; ++j) {
    rs.pattern.set(j, x[enc.v_var(j)] > 0.5);
  }
  for (std::size_t i = 0; i < enc.rows; ++i) {
    std::size_t chosen = 0;
    double best = -1.0;
    for (std::size_t t = 0; t < 4; ++t) {
      const double v = x[enc.s_var(i, t)];
      if (v > best) {
        best = v;
        chosen = t;
      }
    }
    rs.types[i] = static_cast<RowType>(chosen);
  }
  return rs;
}

}  // namespace adsd
