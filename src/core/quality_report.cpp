#include "core/quality_report.hpp"

#include <ostream>
#include <stdexcept>

#include "support/table.hpp"

namespace adsd {

std::vector<double> QualityReport::med_share_upper_bound() const {
  std::vector<double> share(bit_flip_rate.size(), 0.0);
  if (med <= 0.0) {
    return share;
  }
  for (std::size_t k = 0; k < bit_flip_rate.size(); ++k) {
    share[k] = bit_flip_rate[k] *
               static_cast<double>(std::uint64_t{1} << k) / med;
  }
  return share;
}

void QualityReport::print(std::ostream& os) const {
  Table summary({"metric", "value"});
  summary.add_row({"MED", Table::num(med, 4)});
  summary.add_row({"error rate", Table::num(error_rate, 4)});
  summary.add_row({"worst-case error", std::to_string(worst_case_error)});
  summary.add_row({"mean relative error",
                   Table::num(mean_relative_error, 4)});
  if (stored_bits != 0) {
    summary.add_row({"flat LUT bits", std::to_string(flat_bits)});
    summary.add_row({"stored bits", std::to_string(stored_bits)});
    summary.add_row({"saving", Table::num(saving(), 2) + "x"});
  }
  summary.print(os);

  Table bits({"bit", "weight", "flip rate"});
  for (std::size_t k = bit_flip_rate.size(); k-- > 0;) {
    bits.add_row({std::to_string(k),
                  std::to_string(std::uint64_t{1} << k),
                  Table::num(bit_flip_rate[k], 4)});
  }
  os << "\nper-output-bit flip rates:\n";
  bits.print(os);
}

QualityReport make_quality_report(const TruthTable& exact,
                                  const TruthTable& approx,
                                  const InputDistribution& dist,
                                  std::uint64_t stored_bits) {
  if (exact.num_inputs() != approx.num_inputs() ||
      exact.num_outputs() != approx.num_outputs()) {
    throw std::invalid_argument("make_quality_report: shape mismatch");
  }
  QualityReport report;
  report.med = mean_error_distance(exact, approx, dist);
  report.error_rate = error_rate(exact, approx, dist);
  report.mean_relative_error = mean_relative_error(exact, approx, dist);
  report.worst_case_error = worst_case_error(exact, approx);
  report.bit_flip_rate.resize(exact.num_outputs());
  for (unsigned k = 0; k < exact.num_outputs(); ++k) {
    report.bit_flip_rate[k] =
        error_rate(exact.output(k), approx.output(k), dist);
  }
  report.flat_bits =
      exact.num_patterns() * static_cast<std::uint64_t>(exact.num_outputs());
  report.stored_bits = stored_bits;
  return report;
}

}  // namespace adsd
