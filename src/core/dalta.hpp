#pragma once

#include <cstdint>
#include <vector>

#include "boolean/decomposition.hpp"
#include "boolean/error_metrics.hpp"
#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "core/cop_solvers.hpp"
#include "lut/decomposed_lut.hpp"

namespace adsd {

/// Parameters of the DALTA outer framework (Sec. 2.4): optimize the setting
/// of each component function individually, MSB -> LSB, for R rounds; for
/// each component try P candidate input partitions and keep the best.
struct DaltaParams {
  /// |A|, the free-set size; |B| = n - |A|. The paper uses 4/5 for n = 9
  /// and 7/9 for n = 16.
  unsigned free_size = 4;

  std::size_t num_partitions = 16;  // P
  std::size_t rounds = 2;           // R
  DecompMode mode = DecompMode::kJoint;
  std::uint64_t seed = 42;

  /// Evaluate the P candidate partitions of one output concurrently.
  bool parallel = true;

  /// BDD-multiplicity partition screening (extension; see
  /// core/partition_screen.hpp): when > 1, sample `screen_factor * P`
  /// random partitions and keep the P of lowest column multiplicity before
  /// spending solver time. 1 disables screening (the paper's behaviour).
  std::size_t screen_factor = 1;
};

/// Per-output record of the chosen decomposition.
struct OutputDecomposition {
  InputPartition partition;
  ColumnSetting setting;
  double objective = 0.0;  // solver objective of the winning candidate
};

/// Result of a full approximate-decomposition run.
struct DaltaResult {
  TruthTable approx;                          // the decomposed approximation
  std::vector<OutputDecomposition> outputs;   // per output bit, index = k
  double med = 0.0;
  double error_rate = 0.0;
  double seconds = 0.0;

  std::size_t cop_solves = 0;
  std::size_t solver_iterations = 0;  // summed CoreSolveStats::iterations
  std::size_t early_stops = 0;        // solves where the dynamic stop fired

  /// Builds the two-level LUT architecture realizing the approximation.
  DecomposedLutNetwork to_lut_network() const;
};

/// Runs the framework on `exact` with the given core-COP solver. The same
/// partition sequence is derived from the seed alone regardless of solver,
/// so different solvers compete on identical candidate sets. Results are
/// bit-identical for a fixed seed at every thread count: candidates are
/// evaluated into per-index slots and the winner picked deterministically.
///
/// The context overload is the primary entry point: ctx supplies the seed
/// (params.seed is superseded), the thread pool, the deadline, and the
/// telemetry sink (spans under "dalta/", per-solve spans under "core/").
/// Parallel evaluation requires both ctx.parallel() and params.parallel.
DaltaResult run_dalta(const TruthTable& exact, const InputDistribution& dist,
                      const DaltaParams& params, const CoreCopSolver& solver,
                      const RunContext& ctx);

/// Convenience overload: builds a context from params (seed, parallel flag,
/// shared pool, no deadline) — identical results to the context form.
DaltaResult run_dalta(const TruthTable& exact, const InputDistribution& dist,
                      const DaltaParams& params, const CoreCopSolver& solver);

}  // namespace adsd
