#pragma once

#include <cstdint>
#include <vector>

#include "boolean/error_metrics.hpp"
#include "boolean/nondisjoint.hpp"
#include "boolean/truth_table.hpp"
#include "core/cop_solvers.hpp"

namespace adsd {

/// Parameters of the non-disjoint DALTA flow (the BA extension, ref. [10]):
/// identical structure to DaltaParams plus the shared-set size. With
/// shared_size = 0 the flow reduces exactly to run_dalta() (and produces
/// identical results for the same seed, which the tests assert).
struct NdDaltaParams {
  unsigned free_size = 4;
  unsigned shared_size = 1;
  std::size_t num_partitions = 16;  // P
  std::size_t rounds = 2;           // R
  DecompMode mode = DecompMode::kJoint;
  std::uint64_t seed = 42;
  bool parallel = true;
};

struct NdOutputDecomposition {
  NonDisjointPartition partition;
  NonDisjointSetting setting;
  double objective = 0.0;
};

struct NdDaltaResult {
  TruthTable approx;
  std::vector<NdOutputDecomposition> outputs;
  double med = 0.0;
  double error_rate = 0.0;
  double seconds = 0.0;
  std::size_t cop_solves = 0;          // one per (partition, slice)
  std::size_t solver_iterations = 0;

  /// Total decomposed storage in bits across outputs.
  std::uint64_t total_size_bits() const;
  std::uint64_t total_flat_size_bits() const;
};

/// Non-disjoint approximate decomposition: per candidate partition, one
/// column-based core COP per shared-assignment slice, each solved with
/// `solver`; the slice objectives add up because slices cover disjoint
/// input patterns.
///
/// The context overload is the primary entry point (ctx supplies the seed,
/// pool, deadline, and telemetry; params.seed is superseded). Slice 0
/// shares run_dalta's candidate seed stream, so shared_size == 0
/// reproduces the disjoint flow exactly under the same seed.
NdDaltaResult run_dalta_nd(const TruthTable& exact,
                           const InputDistribution& dist,
                           const NdDaltaParams& params,
                           const CoreCopSolver& solver, const RunContext& ctx);

/// Convenience overload: builds a context from params (seed, parallel
/// flag, shared pool, no deadline) — identical results to the context form.
NdDaltaResult run_dalta_nd(const TruthTable& exact,
                           const InputDistribution& dist,
                           const NdDaltaParams& params,
                           const CoreCopSolver& solver);

}  // namespace adsd
