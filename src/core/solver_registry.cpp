#include "core/solver_registry.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "core/portfolio_solver.hpp"
#include "ising/kernels/force_kernels.hpp"

namespace adsd {

namespace {

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* want) {
  throw std::invalid_argument("solver config key '" + key + "': '" + value +
                              "' is not a valid " + want);
}

std::string join(const std::vector<std::string>& items) {
  std::string out;
  for (const std::string& item : items) {
    out += out.empty() ? item : ", " + item;
  }
  return out;
}

}  // namespace

void SolverConfig::set(const std::string& key, const std::string& value) {
  if (key.empty()) {
    throw std::invalid_argument("solver config: empty key");
  }
  values_[key] = value;
}

bool SolverConfig::has(const std::string& key) const {
  return values_.count(key) != 0;
}

std::size_t SolverConfig::get_size(const std::string& key,
                                   std::size_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  std::size_t out = 0;
  const auto [ptr, ec] =
      std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc{} || ptr != v.data() + v.size()) {
    bad_value(key, v, "non-negative integer");
  }
  return out;
}

double SolverConfig::get_double(const std::string& key,
                                double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  try {
    std::size_t used = 0;
    const double out = std::stod(v, &used);
    if (used != v.size()) {
      bad_value(key, v, "number");
    }
    return out;
  } catch (const std::invalid_argument&) {
    bad_value(key, v, "number");
  } catch (const std::out_of_range&) {
    bad_value(key, v, "number");
  }
}

std::string SolverConfig::get_string(const std::string& key,
                                     const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

bool SolverConfig::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "on" || v == "yes") {
    return true;
  }
  if (v == "0" || v == "false" || v == "off" || v == "no") {
    return false;
  }
  bad_value(key, v, "boolean (1/0/true/false/on/off/yes/no)");
}

bool SolverRegistry::Entry::accepts(const std::string& query) const {
  return query == name ||
         std::find(aliases.begin(), aliases.end(), query) != aliases.end();
}

void SolverRegistry::add(Entry entry) {
  auto check = [this](const std::string& candidate) {
    for (const Entry& existing : entries_) {
      if (existing.accepts(candidate)) {
        throw std::invalid_argument("solver registry: name '" + candidate +
                                    "' already registered");
      }
    }
  };
  check(entry.name);
  for (const std::string& alias : entry.aliases) {
    check(alias);
  }
  entries_.push_back(std::move(entry));
}

const SolverRegistry::Entry* SolverRegistry::find(
    const std::string& name) const {
  for (const Entry& entry : entries_) {
    if (entry.accepts(name)) {
      return &entry;
    }
  }
  return nullptr;
}

std::unique_ptr<CoreCopSolver> SolverRegistry::make(
    const std::string& name, const SolverConfig& config) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    // Enumerate everything a valid spec could have named — canonical names
    // and aliases, each sorted — so a typo'd spec is self-correcting.
    std::vector<std::string> names;
    std::vector<std::string> aliases;
    for (const Entry& e : entries_) {
      names.push_back(e.name);
      aliases.insert(aliases.end(), e.aliases.begin(), e.aliases.end());
    }
    std::sort(names.begin(), names.end());
    std::sort(aliases.begin(), aliases.end());
    std::string message = "unknown solver '" + name + "' (known: ";
    message += join(names);
    if (!aliases.empty()) {
      message += "; aliases: " + join(aliases);
    }
    message += ")";
    throw std::invalid_argument(message);
  }
  for (const auto& [key, value] : config.values()) {
    if (std::find(entry->keys.begin(), entry->keys.end(), key) ==
        entry->keys.end()) {
      std::vector<std::string> keys = entry->keys;
      std::sort(keys.begin(), keys.end());
      throw std::invalid_argument(
          "solver '" + entry->name + "' does not take key '" + key + "'" +
          (keys.empty() ? std::string(" (no keys)")
                        : " (keys: " + join(keys) + ")"));
    }
  }
  return entry->factory(config);
}

std::pair<std::string, SolverConfig> SolverRegistry::parse_spec(
    const std::string& spec) {
  SolverConfig config;
  std::size_t pos = spec.find(',');
  const std::string name = spec.substr(0, pos);
  if (name.empty()) {
    throw std::invalid_argument("solver spec: empty name in '" + spec + "'");
  }
  while (pos != std::string::npos) {
    const std::size_t start = pos + 1;
    pos = spec.find(',', start);
    const std::string item =
        spec.substr(start, pos == std::string::npos ? pos : pos - start);
    if (item.empty()) {
      continue;
    }
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("solver spec item '" + item +
                                  "' is not key=value");
    }
    config.set(item.substr(0, eq), item.substr(eq + 1));
  }
  return {name, std::move(config)};
}

std::unique_ptr<CoreCopSolver> SolverRegistry::make_from_spec(
    const std::string& spec) const {
  auto [name, config] = parse_spec(spec);
  return make(name, config);
}

const SolverRegistry& SolverRegistry::global() {
  static const SolverRegistry registry = [] {
    SolverRegistry r;

    r.add({"prop",
           "Ising/bSB solver proposed by the paper (dynamic stop + "
           "Theorem-3 feedback)",
           {"ising-bsb"},
           {"n", "replicas", "restarts", "theorem3", "anti-collapse",
            "polish", "seed-init", "max-iter", "dt", "discrete", "kernel",
            "stop", "stop-interval", "stop-window", "stop-epsilon", "pack",
            "pack-layout", "pack-tile", "pack-share-j"},
           [](const SolverConfig& c) -> std::unique_ptr<CoreCopSolver> {
             auto options = IsingCoreSolver::Options::paper_defaults(
                 static_cast<unsigned>(c.get_size("n", 9)));
             options.replicas =
                 std::max<std::size_t>(1, c.get_size("replicas", 1));
             options.restarts =
                 std::max<std::size_t>(1, c.get_size("restarts", 1));
             options.use_theorem3 = c.get_bool("theorem3", true);
             options.anti_collapse = c.get_bool("anti-collapse", true);
             options.final_polish = c.get_bool("polish", true);
             options.column_seed_init = c.get_bool("seed-init", true);
             options.sb.max_iterations =
                 c.get_size("max-iter", options.sb.max_iterations);
             options.sb.dt = c.get_double("dt", options.sb.dt);
             options.sb.discrete = c.get_bool("discrete", false);
             options.sb.kernel = kernels::parse_force_kernel(
                 c.get_string("kernel", "auto"));
             options.sb.stop.enabled =
                 c.get_bool("stop", options.sb.stop.enabled);
             options.sb.stop.sample_interval = c.get_size(
                 "stop-interval", options.sb.stop.sample_interval);
             options.sb.stop.window =
                 c.get_size("stop-window", options.sb.stop.window);
             options.sb.stop.epsilon =
                 c.get_double("stop-epsilon", options.sb.stop.epsilon);
             // pack=K (K > 0) swaps in the multi-instance packed engine:
             // bit-identical per instance, one force pass for K solves.
             const std::size_t pack = c.get_size("pack", 0);
             if (pack > 0) {
               PackedCoreCopSolver::Options packed;
               packed.core = options;
               packed.pack = pack;
               packed.layout = parse_pack_layout(
                   c.get_string("pack-layout", "auto"));
               // pack-tile=auto|<slots>: slot-tile width of the slot
               // layout (0 = the engine's measured working-set model).
               const std::string tile = c.get_string("pack-tile", "auto");
               if (tile != "auto") {
                 std::size_t width = 0;
                 const auto [ptr, ec] = std::from_chars(
                     tile.data(), tile.data() + tile.size(), width);
                 if (ec != std::errc{} ||
                     ptr != tile.data() + tile.size() || width == 0) {
                   throw std::invalid_argument(
                       "solver 'prop': bad value '" + tile +
                       "' for 'pack-tile' (expected auto or a positive "
                       "slot count)");
                 }
                 packed.tile = width;
               }
               packed.share_j = c.get_bool("pack-share-j", false);
               return std::make_unique<PackedCoreCopSolver>(packed);
             }
             for (const char* key :
                  {"pack-layout", "pack-tile", "pack-share-j"}) {
               if (c.has(key)) {
                 throw std::invalid_argument("solver 'prop': '" +
                                             std::string(key) +
                                             "' requires 'pack' > 0");
               }
             }
             return std::make_unique<IsingCoreSolver>(options);
           }});

    // Shared stop-key plumbing of the engine-family entries: every engine
    // entry takes the same stop / stop-interval / stop-window /
    // stop-epsilon keys over paper-default dynamic-stop settings.
    const auto apply_stop_keys = [](const SolverConfig& c,
                                    DynamicStopParams& stop,
                                    const DynamicStopParams& defaults) {
      stop = defaults;
      stop.enabled = c.get_bool("stop", stop.enabled);
      stop.sample_interval =
          c.get_size("stop-interval", stop.sample_interval);
      stop.window = c.get_size("stop-window", stop.window);
      stop.epsilon = c.get_double("stop-epsilon", stop.epsilon);
    };
    const auto apply_shared_keys = [](const SolverConfig& c,
                                      IsingCoreSolver::Options& options) {
      options.replicas = std::max<std::size_t>(1, c.get_size("replicas", 1));
      options.restarts = std::max<std::size_t>(1, c.get_size("restarts", 1));
      options.use_theorem3 = c.get_bool("theorem3", true);
      options.anti_collapse = c.get_bool("anti-collapse", true);
      options.final_polish = c.get_bool("polish", true);
      options.column_seed_init = c.get_bool("seed-init", true);
    };

    r.add({"sa",
           "Metropolis simulated annealing on the Ising formulation "
           "(engine-rehosted baseline)",
           {"ising-sa"},
           {"n", "replicas", "restarts", "polish", "seed-init", "sweeps",
            "beta-start", "beta-end", "stop", "stop-interval", "stop-window",
            "stop-epsilon"},
           [apply_stop_keys,
            apply_shared_keys](const SolverConfig& c)
               -> std::unique_ptr<CoreCopSolver> {
             auto options = IsingCoreSolver::Options::paper_defaults(
                 static_cast<unsigned>(c.get_size("n", 9)));
             options.engine = IsingEngineKind::kSa;
             apply_shared_keys(c, options);
             // Spin-flip dynamics have no oscillator planes: the Theorem-3
             // feedback and anti-collapse interventions don't apply.
             options.use_theorem3 = false;
             options.anti_collapse = false;
             options.sa.sweeps = c.get_size("sweeps", options.sa.sweeps);
             options.sa.beta_start =
                 c.get_double("beta-start", options.sa.beta_start);
             options.sa.beta_end =
                 c.get_double("beta-end", options.sa.beta_end);
             apply_stop_keys(c, options.sa.stop, options.sb.stop);
             return std::make_unique<IsingCoreSolver>(options);
           }});

    r.add({"simcim",
           "Mean-field coherent Ising machine (pump ramp + noise) on the "
           "shared engine chassis",
           {"ising-simcim"},
           {"n", "replicas", "restarts", "theorem3", "anti-collapse",
            "polish", "seed-init", "max-iter", "dt", "pump-start", "pump-end",
            "noise", "c0", "kernel", "stop", "stop-interval", "stop-window",
            "stop-epsilon"},
           [apply_stop_keys,
            apply_shared_keys](const SolverConfig& c)
               -> std::unique_ptr<CoreCopSolver> {
             auto options = IsingCoreSolver::Options::paper_defaults(
                 static_cast<unsigned>(c.get_size("n", 9)));
             options.engine = IsingEngineKind::kSimcim;
             apply_shared_keys(c, options);
             options.simcim.max_iterations =
                 c.get_size("max-iter", options.simcim.max_iterations);
             options.simcim.dt = c.get_double("dt", options.simcim.dt);
             options.simcim.pump_start =
                 c.get_double("pump-start", options.simcim.pump_start);
             options.simcim.pump_end =
                 c.get_double("pump-end", options.simcim.pump_end);
             options.simcim.noise =
                 c.get_double("noise", options.simcim.noise);
             options.simcim.c0 = c.get_double("c0", options.simcim.c0);
             options.simcim.kernel = kernels::parse_force_kernel(
                 c.get_string("kernel", "auto"));
             apply_stop_keys(c, options.simcim.stop, options.sb.stop);
             return std::make_unique<IsingCoreSolver>(options);
           }});

    r.add({"doch",
           "Difference-of-convex heuristic (ADOCH with momentum > 0) on "
           "the shared engine chassis",
           {"ising-doch"},
           {"n", "replicas", "restarts", "theorem3", "anti-collapse",
            "polish", "seed-init", "max-iter", "rho", "momentum", "init-amp",
            "kernel", "stop", "stop-interval", "stop-window",
            "stop-epsilon"},
           [apply_stop_keys,
            apply_shared_keys](const SolverConfig& c)
               -> std::unique_ptr<CoreCopSolver> {
             auto options = IsingCoreSolver::Options::paper_defaults(
                 static_cast<unsigned>(c.get_size("n", 9)));
             options.engine = IsingEngineKind::kDoch;
             apply_shared_keys(c, options);
             options.doch.max_iterations =
                 c.get_size("max-iter", options.doch.max_iterations);
             options.doch.rho = c.get_double("rho", options.doch.rho);
             options.doch.momentum =
                 c.get_double("momentum", options.doch.momentum);
             options.doch.init_amp =
                 c.get_double("init-amp", options.doch.init_amp);
             options.doch.kernel = kernels::parse_force_kernel(
                 c.get_string("kernel", "auto"));
             apply_stop_keys(c, options.doch.stop, options.sb.stop);
             return std::make_unique<IsingCoreSolver>(options);
           }});

    r.add({"portfolio",
           "Racing meta-solver: members race on the same seed, strictly "
           "best objective wins (ties to the anchor)",
           {},
           {"members", "budget-ms", "mode", "min-trials", "prune-below",
            "n", "replicas", "kernel"},
           [](const SolverConfig& c) -> std::unique_ptr<CoreCopSolver> {
             PortfolioCoreSolver::Options opt;
             opt.member_specs.clear();
             const std::string members =
                 c.get_string("members", "prop|simcim|doch");
             // The registry is fully built by the time factories run, so
             // nested lookups (member validation, shared-key forwarding)
             // are safe here.
             const SolverRegistry& reg = SolverRegistry::global();
             std::size_t start = 0;
             while (start <= members.size()) {
               const std::size_t bar = members.find('|', start);
               const std::string m =
                   members.substr(start, bar == std::string::npos
                                             ? std::string::npos
                                             : bar - start);
               if (!m.empty()) {
                 const SolverRegistry::Entry* member_entry = reg.find(m);
                 if (member_entry == nullptr) {
                   // Route through make() for the enumerating error text.
                   (void)reg.make(m);
                 }
                 // Forward the shared shape/tuning keys to every member
                 // that takes them, so "portfolio,n=9,replicas=4" sizes
                 // the whole roster consistently.
                 std::string spec = m;
                 for (const char* key : {"n", "replicas", "kernel"}) {
                   if (c.has(key) &&
                       std::find(member_entry->keys.begin(),
                                 member_entry->keys.end(),
                                 key) != member_entry->keys.end()) {
                     spec += std::string(",") + key + "=" +
                             c.get_string(key, "");
                   }
                 }
                 opt.member_specs.push_back(std::move(spec));
               }
               if (bar == std::string::npos) {
                 break;
               }
               start = bar + 1;
             }
             if (opt.member_specs.empty()) {
               throw std::invalid_argument(
                   "solver 'portfolio': 'members' must name at least one "
                   "solver ('a|b|c')");
             }
             opt.budget_ms = c.get_double("budget-ms", 0.0);
             const std::string mode = c.get_string("mode", "race");
             if (mode == "race") {
               opt.mode = PortfolioCoreSolver::Mode::kRace;
             } else if (mode == "adapt") {
               opt.mode = PortfolioCoreSolver::Mode::kAdapt;
             } else {
               throw std::invalid_argument(
                   "solver 'portfolio': mode '" + mode +
                   "' is not one of race, adapt");
             }
             opt.min_trials = c.get_size("min-trials", opt.min_trials);
             opt.prune_below =
                 c.get_double("prune-below", opt.prune_below);
             return std::make_unique<PortfolioCoreSolver>(opt);
           }});

    r.add({"dalta",
           "DALTA-style greedy heuristic with alternating refinement",
           {"dalta-greedy"},
           {"sweeps"},
           [](const SolverConfig& c) -> std::unique_ptr<CoreCopSolver> {
             return std::make_unique<HeuristicCoreSolver>(
                 c.get_size("sweeps", 4));
           }});

    r.add({"dalta-lit",
           "One-shot greedy heuristic (literal ICCAD'21 reconstruction)",
           {},
           {},
           [](const SolverConfig&) -> std::unique_ptr<CoreCopSolver> {
             return std::make_unique<HeuristicCoreSolver>(0);
           }});

    r.add({"ilp",
           "Anytime exact branch-and-bound (stands in for DALTA-ILP)",
           {"ilp-bnb"},
           {"budget", "warm-restarts"},
           [](const SolverConfig& c) -> std::unique_ptr<CoreCopSolver> {
             BnbCoreSolver::Options opt;
             opt.time_budget_s = c.get_double("budget", opt.time_budget_s);
             opt.warm_restarts =
                 c.get_size("warm-restarts", opt.warm_restarts);
             return std::make_unique<BnbCoreSolver>(opt);
           }});

    r.add({"ba",
           "BA-style simulated annealing over setting bits (DATE'23)",
           {"ba-anneal"},
           {"sweeps", "beta-start", "beta-end", "restarts"},
           [](const SolverConfig& c) -> std::unique_ptr<CoreCopSolver> {
             AnnealCoreSolver::Options opt;
             opt.sweeps = c.get_size("sweeps", opt.sweeps);
             opt.beta_start = c.get_double("beta-start", opt.beta_start);
             opt.beta_end = c.get_double("beta-end", opt.beta_end);
             opt.restarts = c.get_size("restarts", opt.restarts);
             return std::make_unique<AnnealCoreSolver>(opt);
           }});

    r.add({"alt",
           "Lloyd-style alternating minimization, best of restarts",
           {"alternating"},
           {"restarts", "sweeps"},
           [](const SolverConfig& c) -> std::unique_ptr<CoreCopSolver> {
             return std::make_unique<AlternatingCoreSolver>(
                 c.get_size("restarts", 8), c.get_size("sweeps", 64));
           }});

    r.add({"exhaustive",
           "Exact oracle: exhaustive spin enumeration (2r + c <= 24)",
           {},
           {},
           [](const SolverConfig&) -> std::unique_ptr<CoreCopSolver> {
             return std::make_unique<ExhaustiveCoreSolver>();
           }});

    return r;
  }();
  return registry;
}

}  // namespace adsd
