#pragma once

#include <iosfwd>
#include <vector>

#include "boolean/error_metrics.hpp"
#include "boolean/truth_table.hpp"

namespace adsd {

/// Full accuracy/storage characterization of an approximate LUT design:
/// the word-level metrics of Sec. 2.3 plus a per-output-bit breakdown
/// (flip rate per bit, weighted by significance), and the storage ledger.
/// One place to compute what the CLI, the examples, and the experiment
/// harnesses all report.
struct QualityReport {
  // Word-level error metrics.
  double med = 0.0;
  double error_rate = 0.0;
  double mean_relative_error = 0.0;
  std::uint64_t worst_case_error = 0;

  // Per-output-bit flip probability, index k = bit of weight 2^k.
  std::vector<double> bit_flip_rate;

  // Storage ledger (bits).
  std::uint64_t flat_bits = 0;
  std::uint64_t stored_bits = 0;

  double saving() const {
    return stored_bits == 0 ? 0.0
                            : static_cast<double>(flat_bits) /
                                  static_cast<double>(stored_bits);
  }

  /// Fraction of the MED attributable to each bit's flips (upper bound by
  /// independence: flip_rate[k] * 2^k / MED). Diagnostic for the joint
  /// mode's bit-significance claim.
  std::vector<double> med_share_upper_bound() const;

  /// Two-column table ("metric", "value") plus the per-bit breakdown.
  void print(std::ostream& os) const;
};

/// Computes the report for an approximation of `exact` under `dist`.
/// `stored_bits` comes from the LUT network realizing the approximation
/// (0 if not applicable).
QualityReport make_quality_report(const TruthTable& exact,
                                  const TruthTable& approx,
                                  const InputDistribution& dist,
                                  std::uint64_t stored_bits);

}  // namespace adsd
