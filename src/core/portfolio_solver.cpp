#include "core/portfolio_solver.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/solver_registry.hpp"
#include "support/log.hpp"
#include "support/run_context.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace adsd {

namespace {

std::string spec_head(const std::string& spec) {
  const std::size_t comma = spec.find(',');
  return comma == std::string::npos ? spec : spec.substr(0, comma);
}

}  // namespace

PortfolioCoreSolver::PortfolioCoreSolver(Options options)
    : options_(std::move(options)) {
  if (options_.member_specs.empty()) {
    throw std::invalid_argument("PortfolioCoreSolver: need >= 1 member");
  }
  if (options_.prune_below < 0.0 || options_.prune_below > 1.0) {
    throw std::invalid_argument("PortfolioCoreSolver: prune_below in [0, 1]");
  }
  members_.reserve(options_.member_specs.size());
  for (const std::string& spec : options_.member_specs) {
    // A nested portfolio would race races (and self-recurse through the
    // registry); reject it up front with a clear message.
    if (spec_head(spec) == "portfolio") {
      throw std::invalid_argument(
          "PortfolioCoreSolver: nested portfolio member '" + spec + "'");
    }
    members_.push_back(SolverRegistry::global().make_from_spec(spec));
  }
}

ColumnSetting PortfolioCoreSolver::do_solve(const ColumnCop& cop,
                                            const RunContext& ctx,
                                            std::uint64_t seed,
                                            CoreSolveStats* stats) const {
  TelemetrySink& telemetry = ctx.telemetry();
  const std::string family =
      "r" + std::to_string(cop.rows()) + "c" + std::to_string(cop.cols());

  // Non-anchor member order: configured order in race mode; in adapt mode,
  // once this family has min_trials races, descending win rate (stable, so
  // the configured order breaks ties) with hopeless members pruned.
  std::vector<std::size_t> order;
  order.reserve(members_.size() > 0 ? members_.size() - 1 : 0);
  for (std::size_t i = 1; i < members_.size(); ++i) {
    order.push_back(i);
  }
  if (options_.mode == Mode::kAdapt) {
    std::vector<double> rate(members_.size(), 1.0);
    std::vector<std::uint64_t> trials(members_.size(), 0);
    for (std::size_t i = 1; i < members_.size(); ++i) {
      const WinRateTable::Stat s =
          wins_.stat(family, options_.member_specs[i]);
      trials[i] = s.trials;
      rate[i] = s.trials == 0 ? 1.0
                              : static_cast<double>(s.wins) /
                                    static_cast<double>(s.trials);
    }
    std::stable_sort(order.begin(), order.end(),
                     [&rate](std::size_t a, std::size_t b) {
                       return rate[a] > rate[b];
                     });
    const auto pruned = std::stable_partition(
        order.begin(), order.end(), [&](std::size_t i) {
          return trials[i] < options_.min_trials ||
                 rate[i] >= options_.prune_below;
        });
    if (pruned != order.end()) {
      telemetry.add("core/portfolio/pruned",
                    static_cast<std::uint64_t>(order.end() - pruned));
      if (MetricsRegistry* m = ctx.metrics()) {
        m->counter("portfolio_member_prunes_total")
            .add(static_cast<std::uint64_t>(order.end() - pruned));
      }
      ADSD_LOG_INFO("core/portfolio", "adapt mode pruned losing members",
                    {"pruned", static_cast<std::uint64_t>(
                                   order.end() - pruned)},
                    {"remaining", static_cast<std::uint64_t>(
                                      pruned - order.begin()) + 1});
      order.erase(pruned, order.end());
    }
  }

  Timer race_timer;
  const TraceSpan race_span(ctx.tracer(), "core/portfolio/race");

  // The anchor always runs: its result is the floor the race can only
  // improve on, which is what makes the portfolio never-worse than the
  // anchor alone on the same seed.
  CoreSolveStats anchor_stats;
  ColumnSetting best = members_[0]->solve(cop, ctx, seed, &anchor_stats);
  const double anchor_obj = anchor_stats.objective;
  double best_obj = anchor_obj;
  std::size_t winner = 0;
  std::size_t total_iters = anchor_stats.iterations;
  bool any_early = anchor_stats.stopped_early;

  std::vector<std::size_t> raced;
  raced.reserve(members_.size());
  raced.push_back(0);
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    // Soft budget, checked at member boundaries: a started member finishes
    // (intra-solve budgets are the members' own deadline machinery).
    if ((options_.budget_ms > 0.0 &&
         race_timer.seconds() * 1000.0 >= options_.budget_ms) ||
        ctx.expired()) {
      telemetry.add("core/portfolio/budget_skips",
                    static_cast<std::uint64_t>(order.size() - pos));
      if (MetricsRegistry* m = ctx.metrics()) {
        m->counter("portfolio_member_skips_total")
            .add(static_cast<std::uint64_t>(order.size() - pos));
      }
      ADSD_LOG_DEBUG("core/portfolio", "race budget exhausted, skipping",
                     {"skipped", static_cast<std::uint64_t>(
                                     order.size() - pos)},
                     {"elapsed_ms", race_timer.seconds() * 1000.0},
                     {"deadline_expired", ctx.expired()});
      any_early = true;
      break;
    }
    const std::size_t idx = order[pos];
    CoreSolveStats member_stats;
    ColumnSetting s = members_[idx]->solve(cop, ctx, seed, &member_stats);
    total_iters += member_stats.iterations;
    any_early = any_early || member_stats.stopped_early;
    raced.push_back(idx);
    // Strictly better only: ties stay with the earliest racer (ultimately
    // the anchor), preserving the never-worse guarantee.
    if (member_stats.objective < best_obj) {
      best = std::move(s);
      best_obj = member_stats.objective;
      winner = idx;
    }
  }

  telemetry.add("core/portfolio/races");
  telemetry.add("core/portfolio/wins/" +
                spec_head(options_.member_specs[winner]));
  if (MetricsRegistry* m = ctx.metrics()) {
    m->counter("portfolio_races_total").add();
    m->counter("portfolio_member_wins_total",
               {{"member", spec_head(options_.member_specs[winner])}})
        .add();
  }
  ADSD_LOG_DEBUG("core/portfolio", "race decided",
                 {"winner", spec_head(options_.member_specs[winner])},
                 {"margin", anchor_obj - best_obj},
                 {"raced", static_cast<std::uint64_t>(raced.size())});
  if (options_.mode == Mode::kAdapt) {
    for (const std::size_t idx : raced) {
      wins_.record(family, options_.member_specs[idx], idx == winner);
    }
  }
  if (QorRecorder* qor = ctx.qor()) {
    qor->add("core/portfolio/wins/" +
             spec_head(options_.member_specs[winner]));
    qor->sample("core/portfolio/margin", anchor_obj - best_obj);
  }

  if (stats != nullptr) {
    stats->objective = best_obj;
    stats->iterations = total_iters;
    stats->stopped_early = any_early;
    stats->proven_optimal = false;
  }
  return best;
}

}  // namespace adsd
