#pragma once

#include <vector>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "ilp/ilp.hpp"

namespace adsd {

/// Faithful ILP encoding of the *row-based* core COP in separate mode, the
/// formulation DALTA-ILP hands to Gurobi [Meng et al., ICCAD'21]:
///
///   variables  V_j in {0,1} (fixed row pattern),
///              s_{i,t} in {0,1} (one-hot row type: all-0, all-1, V, ~V),
///              z1_{i,j}, z2_{i,j} in [0,1] (McCormick products s_{i,V}V_j
///              and s_{i,~V}V_j),
///   objective  the weighted error rate of the induced approximation.
///
/// The encoding grows as O(r*c) auxiliaries, which is why the paper reports
/// poor ILP scalability; here it backs the ILP pathway on small instances
/// (tests, examples) while BnbCoreSolver covers the large-scale runs.
struct RowIlpEncoding {
  IlpProblem problem;
  std::size_t rows = 0;
  std::size_t cols = 0;

  // Variable index helpers.
  std::size_t v_var(std::size_t j) const { return j; }
  std::size_t s_var(std::size_t i, std::size_t t) const {
    return cols + 4 * i + t;
  }
  std::size_t z1_var(std::size_t i, std::size_t j) const {
    return cols + 4 * rows + i * cols + j;
  }
  std::size_t z2_var(std::size_t i, std::size_t j) const {
    return cols + 4 * rows + rows * cols + i * cols + j;
  }
};

/// Builds the encoding for an exact matrix with per-cell probabilities
/// (row-major, as produced by matrix_probs()).
RowIlpEncoding encode_row_cop_separate(const BooleanMatrix& exact,
                                       const std::vector<double>& probs);

/// General cost form: e0/e1 give the weighted cost of predicting 0/1 at
/// each cell (row-major). The separate mode is e0 = p*O, e1 = p*(1-O); the
/// joint mode uses the D_kij linearization of Eqs. (13)/(15). `exact`
/// supplies only the matrix shape.
RowIlpEncoding encode_row_cop(const BooleanMatrix& exact,
                              const std::vector<double>& cost0,
                              const std::vector<double>& cost1);

/// Joint-mode costs from D values and the bit weight 2^(k-1):
/// cost0 = p * |D|, cost1 = p * |bit_weight + D| (exact ED at Ohat = 0/1).
RowIlpEncoding encode_row_cop_joint(const BooleanMatrix& exact,
                                    const std::vector<double>& probs,
                                    const std::vector<double>& d,
                                    double bit_weight);

/// Decodes an ILP solution vector into the row setting it represents.
RowSetting decode_row_ilp(const RowIlpEncoding& enc,
                          const std::vector<double>& x);

}  // namespace adsd
