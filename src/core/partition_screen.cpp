#include "core/partition_screen.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace adsd {

PartitionScreener::PartitionScreener(const BitVec& output_bits,
                                     unsigned num_inputs)
    : mgr_(std::make_unique<BddManager>(num_inputs)) {
  if (output_bits.size() != (std::uint64_t{1} << num_inputs)) {
    throw std::invalid_argument("PartitionScreener: table size mismatch");
  }
  root_ = mgr_->from_truth_table(output_bits);
}

std::size_t PartitionScreener::multiplicity(const InputPartition& w) const {
  return bdd_column_multiplicity(*mgr_, root_, w);
}

std::vector<InputPartition> PartitionScreener::screen(
    std::vector<InputPartition> candidates, std::size_t keep) const {
  if (keep >= candidates.size()) {
    return candidates;
  }
  std::vector<std::size_t> mu(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    mu[i] = multiplicity(candidates[i]);
  }
  std::vector<std::size_t> order(candidates.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) { return mu[a] < mu[b]; });
  std::vector<InputPartition> kept;
  kept.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) {
    kept.push_back(std::move(candidates[order[i]]));
  }
  return kept;
}

}  // namespace adsd
