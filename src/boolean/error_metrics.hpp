#pragma once

#include <cstdint>
#include <vector>

#include "boolean/truth_table.hpp"
#include "support/bitvec.hpp"

namespace adsd {

/// Occurrence probabilities p_X of the input patterns.
///
/// The paper's metrics (ER, MED) weight each input pattern by its occurrence
/// probability; the experiments use the uniform distribution, but the solver
/// accepts arbitrary ones, so profile-driven distributions plug in directly.
class InputDistribution {
 public:
  /// Uniform distribution over 2^n patterns.
  static InputDistribution uniform(unsigned num_inputs);

  /// Normalizes arbitrary non-negative weights (size must be a power of
  /// two). Throws if all weights are zero or any is negative.
  static InputDistribution from_weights(std::vector<double> weights);

  unsigned num_inputs() const { return num_inputs_; }
  std::uint64_t num_patterns() const { return std::uint64_t{1} << num_inputs_; }

  double prob(std::uint64_t x) const {
    return uniform_ ? uniform_prob_ : probs_[x];
  }
  bool is_uniform() const { return uniform_; }

 private:
  InputDistribution() = default;

  unsigned num_inputs_ = 0;
  bool uniform_ = true;
  double uniform_prob_ = 0.0;
  std::vector<double> probs_;
};

/// Error rate of a single-output approximation: probability that the
/// approximate bit differs from the exact one.
double error_rate(const BitVec& exact, const BitVec& approx,
                  const InputDistribution& dist);

/// Error rate of a multi-output approximation: probability that any output
/// bit differs.
double error_rate(const TruthTable& exact, const TruthTable& approx,
                  const InputDistribution& dist);

/// Mean error distance: E[ |Bin(G(X)) - Bin(Ghat(X))| ], Eq. (2).
double mean_error_distance(const TruthTable& exact, const TruthTable& approx,
                           const InputDistribution& dist);

/// Worst-case error distance: max over patterns of |Bin - Bin|.
std::uint64_t worst_case_error(const TruthTable& exact,
                               const TruthTable& approx);

/// Mean relative error distance: E[ |Bin - Bin| / max(1, Bin(G(X))) ].
double mean_relative_error(const TruthTable& exact, const TruthTable& approx,
                           const InputDistribution& dist);

}  // namespace adsd
