#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "boolean/boolean_matrix.hpp"
#include "boolean/decomposition.hpp"
#include "boolean/truth_table.hpp"
#include "support/rng.hpp"

namespace adsd {

/// A *non-disjoint* partition of the n inputs: free set A', bound set B',
/// and a shared set S replicated into both sides, so the decomposition is
/// g(X) = F(phi(B' u S), A' u S). This is the generalization the BA
/// framework (DATE'23, the paper's ref. [10]) adds on top of DALTA; it
/// buys accuracy at the cost of a larger F-LUT (the shared bits address
/// both tables).
///
/// Equivalent slice view: for each assignment of S, the cofactor of g is an
/// ordinary Boolean matrix over (A', B'), and g decomposes exactly iff
/// *every* slice satisfies Theorem 2; approximation solves one column-based
/// core COP per slice.
class NonDisjointPartition {
 public:
  NonDisjointPartition(std::vector<unsigned> free_vars,
                       std::vector<unsigned> bound_vars,
                       std::vector<unsigned> shared_vars);

  /// Random partition with the given sizes (free + bound + shared = n).
  static NonDisjointPartition random(unsigned num_inputs, unsigned free_size,
                                     unsigned shared_size, Rng& rng);

  unsigned num_inputs() const { return num_inputs_; }
  const std::vector<unsigned>& free_vars() const { return free_vars_; }
  const std::vector<unsigned>& bound_vars() const { return bound_vars_; }
  const std::vector<unsigned>& shared_vars() const { return shared_vars_; }

  std::uint64_t num_rows() const { return std::uint64_t{1} << free_vars_.size(); }
  std::uint64_t num_cols() const { return std::uint64_t{1} << bound_vars_.size(); }
  std::uint64_t num_slices() const {
    return std::uint64_t{1} << shared_vars_.size();
  }

  std::uint64_t row_of(std::uint64_t x) const;
  std::uint64_t col_of(std::uint64_t x) const;
  std::uint64_t slice_of(std::uint64_t x) const;
  std::uint64_t input_of(std::uint64_t slice, std::uint64_t row,
                         std::uint64_t col) const;

  /// Storage of the decomposed implementation:
  /// phi-LUT 2^(|B'|+|S|) bits + F-LUT 2^(|A'|+|S|+1) bits.
  std::uint64_t phi_lut_bits() const {
    return std::uint64_t{1} << (bound_vars_.size() + shared_vars_.size());
  }
  std::uint64_t f_lut_bits() const {
    return std::uint64_t{1} << (free_vars_.size() + shared_vars_.size() + 1);
  }

  std::string to_string() const;

 private:
  unsigned num_inputs_;
  std::vector<unsigned> free_vars_;
  std::vector<unsigned> bound_vars_;
  std::vector<unsigned> shared_vars_;
};

/// Per-slice column settings: settings[slice] describes the cofactor of
/// that shared assignment.
struct NonDisjointSetting {
  std::vector<ColumnSetting> slices;

  bool value(std::uint64_t slice, std::size_t i, std::size_t j) const {
    return slices[slice].value(i, j);
  }
};

/// The Boolean matrix of output k restricted to one shared assignment.
BooleanMatrix slice_matrix(const TruthTable& tt, unsigned k,
                           const NonDisjointPartition& w,
                           std::uint64_t slice);

/// Exact non-disjoint decomposition check: Theorem 2 per slice. Returns the
/// witness when every slice passes.
std::optional<NonDisjointSetting> check_nondisjoint_decomposition(
    const TruthTable& tt, unsigned k, const NonDisjointPartition& w);

/// Truth-table column realized by a non-disjoint setting.
BitVec compose_output(const NonDisjointSetting& s,
                      const NonDisjointPartition& w);

}  // namespace adsd
