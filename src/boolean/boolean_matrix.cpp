#include "boolean/boolean_matrix.hpp"

#include <stdexcept>
#include <unordered_set>

namespace adsd {

BooleanMatrix::BooleanMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), bits_(rows * cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BooleanMatrix: empty shape");
  }
}

BooleanMatrix BooleanMatrix::from_function(const TruthTable& tt, unsigned k,
                                           const InputPartition& w) {
  BooleanMatrix m(w.num_rows(), w.num_cols());
  from_function_into(tt, k, w, PartitionIndexer(w), m);
  return m;
}

void BooleanMatrix::from_function_into(const TruthTable& tt, unsigned k,
                                       const InputPartition& w,
                                       const PartitionIndexer& idx,
                                       BooleanMatrix& out) {
  if (w.num_inputs() != tt.num_inputs()) {
    throw std::invalid_argument(
        "BooleanMatrix::from_function: partition does not match the table");
  }
  if (k >= tt.num_outputs()) {
    throw std::invalid_argument("BooleanMatrix::from_function: bad output");
  }
  out.reshape(w.num_rows(), w.num_cols());
  const BitVec& g = tt.output(k);
  // Iterate over input patterns once rather than over (row, col) pairs; the
  // indexer resolves each pattern's (row, col) with byte-LUT gathers.
  const std::uint64_t patterns = tt.num_patterns();
  const std::size_t cols = out.cols_;
  for (std::uint64_t x = 0; x < patterns; ++x) {
    out.bits_.set(idx.row_of(x) * cols + idx.col_of(x), g.get(x));
  }
}

void BooleanMatrix::reshape(std::size_t rows, std::size_t cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("BooleanMatrix: empty shape");
  }
  rows_ = rows;
  cols_ = cols;
  bits_.resize(rows * cols);
  bits_.fill(false);
}

BitVec BooleanMatrix::row(std::size_t i) const {
  BitVec out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) {
    out.set(j, at(i, j));
  }
  return out;
}

BitVec BooleanMatrix::column(std::size_t j) const {
  BitVec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    out.set(i, at(i, j));
  }
  return out;
}

std::vector<BitVec> BooleanMatrix::distinct_rows() const {
  std::vector<BitVec> out;
  std::unordered_set<std::size_t> seen;
  for (std::size_t i = 0; i < rows_; ++i) {
    BitVec r = row(i);
    const std::size_t h = r.hash();
    if (seen.count(h) != 0) {
      bool dup = false;
      for (const auto& existing : out) {
        if (existing == r) {
          dup = true;
          break;
        }
      }
      if (dup) {
        continue;
      }
    }
    seen.insert(h);
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<BitVec> BooleanMatrix::distinct_columns() const {
  std::vector<BitVec> out;
  for (std::size_t j = 0; j < cols_; ++j) {
    BitVec c = column(j);
    bool dup = false;
    for (const auto& existing : out) {
      if (existing == c) {
        dup = true;
        break;
      }
    }
    if (!dup) {
      out.push_back(std::move(c));
    }
  }
  return out;
}

bool BooleanMatrix::operator==(const BooleanMatrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ &&
         bits_ == other.bits_;
}

}  // namespace adsd
