#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace adsd {

/// A disjoint partition w = {A, B} of the n input variables.
///
/// A is the *free set* (its variables index the rows of the Boolean matrix)
/// and B is the *bound set* (columns). Variable positions refer to bit
/// positions of the input code. The i-th listed variable of a set supplies
/// bit i of the corresponding row/column index, so the partition fully
/// determines the row/column coordinate system.
class InputPartition {
 public:
  InputPartition(std::vector<unsigned> free_vars,
                 std::vector<unsigned> bound_vars);

  /// Partition with A = {0, .., free_size-1}, B = the rest.
  static InputPartition trivial(unsigned num_inputs, unsigned free_size);

  /// Uniformly random partition with the given free-set size.
  static InputPartition random(unsigned num_inputs, unsigned free_size,
                               Rng& rng);

  unsigned num_inputs() const { return num_inputs_; }
  const std::vector<unsigned>& free_vars() const { return free_vars_; }
  const std::vector<unsigned>& bound_vars() const { return bound_vars_; }

  std::uint64_t num_rows() const { return std::uint64_t{1} << free_vars_.size(); }
  std::uint64_t num_cols() const { return std::uint64_t{1} << bound_vars_.size(); }

  /// Row index of an input pattern (bits of x at the free positions).
  std::uint64_t row_of(std::uint64_t x) const;

  /// Column index of an input pattern (bits of x at the bound positions).
  std::uint64_t col_of(std::uint64_t x) const;

  /// Input pattern whose free bits spell `row` and bound bits spell `col`.
  std::uint64_t input_of(std::uint64_t row, std::uint64_t col) const;

  bool operator==(const InputPartition& other) const {
    return free_vars_ == other.free_vars_ && bound_vars_ == other.bound_vars_;
  }

  /// "A={...} B={...}" for logs.
  std::string to_string() const;

 private:
  unsigned num_inputs_;
  std::vector<unsigned> free_vars_;
  std::vector<unsigned> bound_vars_;
};

}  // namespace adsd
