#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace adsd {

/// A disjoint partition w = {A, B} of the n input variables.
///
/// A is the *free set* (its variables index the rows of the Boolean matrix)
/// and B is the *bound set* (columns). Variable positions refer to bit
/// positions of the input code. The i-th listed variable of a set supplies
/// bit i of the corresponding row/column index, so the partition fully
/// determines the row/column coordinate system.
class InputPartition {
 public:
  InputPartition(std::vector<unsigned> free_vars,
                 std::vector<unsigned> bound_vars);

  /// Partition with A = {0, .., free_size-1}, B = the rest.
  static InputPartition trivial(unsigned num_inputs, unsigned free_size);

  /// Uniformly random partition with the given free-set size.
  static InputPartition random(unsigned num_inputs, unsigned free_size,
                               Rng& rng);

  unsigned num_inputs() const { return num_inputs_; }
  const std::vector<unsigned>& free_vars() const { return free_vars_; }
  const std::vector<unsigned>& bound_vars() const { return bound_vars_; }

  std::uint64_t num_rows() const { return std::uint64_t{1} << free_vars_.size(); }
  std::uint64_t num_cols() const { return std::uint64_t{1} << bound_vars_.size(); }

  /// Row index of an input pattern (bits of x at the free positions).
  std::uint64_t row_of(std::uint64_t x) const;

  /// Column index of an input pattern (bits of x at the bound positions).
  std::uint64_t col_of(std::uint64_t x) const;

  /// Input pattern whose free bits spell `row` and bound bits spell `col`.
  std::uint64_t input_of(std::uint64_t row, std::uint64_t col) const;

  bool operator==(const InputPartition& other) const {
    return free_vars_ == other.free_vars_ && bound_vars_ == other.bound_vars_;
  }

  /// "A={...} B={...}" for logs.
  std::string to_string() const;

 private:
  unsigned num_inputs_;
  std::vector<unsigned> free_vars_;
  std::vector<unsigned> bound_vars_;
};

/// Precomputed byte-wise lookup tables for a partition's (row_of, col_of)
/// maps. row_of/col_of gather scattered bits one at a time — O(free + bound)
/// shifts per pattern — and the DALTA hot loop calls them for all 2^n
/// patterns of every candidate partition. The indexer instead splits the
/// pattern into bytes and ORs one 256-entry table lookup per byte: the
/// tables fold the entire bit scatter of that byte into a single load, so a
/// full (row, col) pair costs 2 * ceil(n / 8) table loads.
class PartitionIndexer {
 public:
  explicit PartitionIndexer(const InputPartition& w);

  /// Identical to w.row_of(x) / w.col_of(x) for every x in [0, 2^n).
  std::uint64_t row_of(std::uint64_t x) const {
    return lookup(row_lut_, x);
  }
  std::uint64_t col_of(std::uint64_t x) const {
    return lookup(col_lut_, x);
  }

 private:
  std::uint64_t lookup(const std::vector<std::uint64_t>& lut,
                       std::uint64_t x) const {
    std::uint64_t out = 0;
    for (std::size_t b = 0; b < bytes_; ++b) {
      out |= lut[b * 256 + ((x >> (8 * b)) & 0xff)];
    }
    return out;
  }

  std::size_t bytes_;
  std::vector<std::uint64_t> row_lut_;  // bytes_ * 256
  std::vector<std::uint64_t> col_lut_;  // bytes_ * 256
};

}  // namespace adsd
