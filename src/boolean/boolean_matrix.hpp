#pragma once

#include <cstdint>
#include <vector>

#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "support/bitvec.hpp"

namespace adsd {

/// The Boolean matrix of one component function under an input partition:
/// rows are indexed by the free-set assignment, columns by the bound-set
/// assignment, entry (i, j) is the function value at the corresponding
/// input pattern.
class BooleanMatrix {
 public:
  BooleanMatrix(std::size_t rows, std::size_t cols);

  /// Materializes the matrix of output `k` of `tt` under partition `w`.
  static BooleanMatrix from_function(const TruthTable& tt, unsigned k,
                                     const InputPartition& w);

  /// Allocation-free variant for hot loops: materializes the matrix of
  /// output `k` under `w` into `out`, reshaping it as needed (reusing its
  /// bit storage when the capacity already fits). `idx` must be the indexer
  /// of `w`; the caller keeps it alive across the outputs of one partition
  /// so the byte LUTs are built once per candidate, not once per output.
  static void from_function_into(const TruthTable& tt, unsigned k,
                                 const InputPartition& w,
                                 const PartitionIndexer& idx,
                                 BooleanMatrix& out);

  /// Resizes to rows x cols and clears every bit.
  void reshape(std::size_t rows, std::size_t cols);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  bool at(std::size_t i, std::size_t j) const {
    return bits_.get(i * cols_ + j);
  }
  void set(std::size_t i, std::size_t j, bool v) {
    bits_.set(i * cols_ + j, v);
  }

  /// Copy of row i as a BitVec of length cols().
  BitVec row(std::size_t i) const;

  /// Copy of column j as a BitVec of length rows().
  BitVec column(std::size_t j) const;

  /// Distinct row patterns in first-appearance order.
  std::vector<BitVec> distinct_rows() const;

  /// Distinct column patterns in first-appearance order.
  std::vector<BitVec> distinct_columns() const;

  bool operator==(const BooleanMatrix& other) const;
  bool operator!=(const BooleanMatrix& other) const {
    return !(*this == other);
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  BitVec bits_;  // row-major
};

}  // namespace adsd
