#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "support/bitvec.hpp"

namespace adsd {

/// Complete truth table of a multi-output Boolean function
/// G : {0,1}^n -> {0,1}^m.
///
/// Output k (0-based) is the bit of weight 2^k in the output word, i.e.
/// output m-1 is the most significant bit; the decomposition framework
/// optimizes outputs from MSB to LSB as in the paper. Inputs are indexed by
/// the integer encoding of the input pattern, bit i of the index being input
/// variable x_i.
class TruthTable {
 public:
  /// All-zero function with n inputs and m outputs.
  TruthTable(unsigned num_inputs, unsigned num_outputs);

  /// Tabulates `f`, which maps an input code in [0, 2^n) to an m-bit output
  /// word (higher bits are ignored).
  static TruthTable from_function(
      unsigned num_inputs, unsigned num_outputs,
      const std::function<std::uint64_t(std::uint64_t)>& f);

  unsigned num_inputs() const { return num_inputs_; }
  unsigned num_outputs() const { return num_outputs_; }
  std::uint64_t num_patterns() const { return std::uint64_t{1} << num_inputs_; }

  bool bit(unsigned output, std::uint64_t input) const {
    return outputs_[output].get(input);
  }
  void set_bit(unsigned output, std::uint64_t input, bool v) {
    outputs_[output].set(input, v);
  }

  /// Full m-bit output word for an input pattern.
  std::uint64_t word(std::uint64_t input) const;
  void set_word(std::uint64_t input, std::uint64_t value);

  /// The single-output function as a packed column of 2^n bits.
  const BitVec& output(unsigned k) const { return outputs_[k]; }
  void set_output(unsigned k, BitVec bits);

  bool operator==(const TruthTable& other) const;
  bool operator!=(const TruthTable& other) const { return !(*this == other); }

  /// Number of input patterns where any output differs.
  std::uint64_t diff_count(const TruthTable& other) const;

 private:
  unsigned num_inputs_;
  unsigned num_outputs_;
  std::vector<BitVec> outputs_;
};

}  // namespace adsd
