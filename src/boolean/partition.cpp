#include "boolean/partition.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace adsd {

InputPartition::InputPartition(std::vector<unsigned> free_vars,
                               std::vector<unsigned> bound_vars)
    : free_vars_(std::move(free_vars)), bound_vars_(std::move(bound_vars)) {
  num_inputs_ = static_cast<unsigned>(free_vars_.size() + bound_vars_.size());
  if (free_vars_.empty() || bound_vars_.empty()) {
    throw std::invalid_argument(
        "InputPartition: both the free and bound set must be non-empty");
  }
  if (num_inputs_ > 63) {
    throw std::invalid_argument("InputPartition: too many inputs");
  }
  std::vector<bool> seen(num_inputs_, false);
  auto check = [&](const std::vector<unsigned>& vars) {
    for (unsigned v : vars) {
      if (v >= num_inputs_ || seen[v]) {
        throw std::invalid_argument(
            "InputPartition: sets must disjointly cover 0..n-1");
      }
      seen[v] = true;
    }
  };
  check(free_vars_);
  check(bound_vars_);
}

InputPartition InputPartition::trivial(unsigned num_inputs,
                                       unsigned free_size) {
  if (free_size == 0 || free_size >= num_inputs) {
    throw std::invalid_argument("InputPartition::trivial: bad free size");
  }
  std::vector<unsigned> a(free_size);
  std::vector<unsigned> b(num_inputs - free_size);
  for (unsigned i = 0; i < free_size; ++i) {
    a[i] = i;
  }
  for (unsigned i = free_size; i < num_inputs; ++i) {
    b[i - free_size] = i;
  }
  return InputPartition(std::move(a), std::move(b));
}

InputPartition InputPartition::random(unsigned num_inputs, unsigned free_size,
                                      Rng& rng) {
  if (free_size == 0 || free_size >= num_inputs) {
    throw std::invalid_argument("InputPartition::random: bad free size");
  }
  const auto perm = rng.permutation(num_inputs);
  std::vector<unsigned> a(perm.begin(), perm.begin() + free_size);
  std::vector<unsigned> b(perm.begin() + free_size, perm.end());
  // Canonicalize variable order within each set; only the membership
  // matters for decomposability, and sorted sets make partitions comparable.
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return InputPartition(std::move(a), std::move(b));
}

std::uint64_t InputPartition::row_of(std::uint64_t x) const {
  std::uint64_t row = 0;
  for (std::size_t i = 0; i < free_vars_.size(); ++i) {
    row |= ((x >> free_vars_[i]) & 1) << i;
  }
  return row;
}

std::uint64_t InputPartition::col_of(std::uint64_t x) const {
  std::uint64_t col = 0;
  for (std::size_t i = 0; i < bound_vars_.size(); ++i) {
    col |= ((x >> bound_vars_[i]) & 1) << i;
  }
  return col;
}

std::uint64_t InputPartition::input_of(std::uint64_t row,
                                       std::uint64_t col) const {
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < free_vars_.size(); ++i) {
    x |= ((row >> i) & 1) << free_vars_[i];
  }
  for (std::size_t i = 0; i < bound_vars_.size(); ++i) {
    x |= ((col >> i) & 1) << bound_vars_[i];
  }
  return x;
}

PartitionIndexer::PartitionIndexer(const InputPartition& w)
    : bytes_((w.num_inputs() + 7) / 8),
      row_lut_(bytes_ * 256, 0),
      col_lut_(bytes_ * 256, 0) {
  // Table for byte b maps the byte's 256 values to their contribution to the
  // gathered index: destination bit i of the row (column) receives source
  // bit free_vars[i] (bound_vars[i]) of the pattern whenever that source bit
  // falls inside byte b.
  auto fill = [&](std::vector<std::uint64_t>& lut,
                  const std::vector<unsigned>& vars) {
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const std::size_t b = vars[i] / 8;
      const unsigned bit = vars[i] % 8;
      std::uint64_t* table = &lut[b * 256];
      for (std::size_t v = 0; v < 256; ++v) {
        table[v] |= ((v >> bit) & 1) << i;
      }
    }
  };
  fill(row_lut_, w.free_vars());
  fill(col_lut_, w.bound_vars());
}

std::string InputPartition::to_string() const {
  std::ostringstream os;
  auto emit = [&](const char* name, const std::vector<unsigned>& vars) {
    os << name << "={";
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (i != 0) {
        os << ",";
      }
      os << "x" << vars[i];
    }
    os << "}";
  };
  emit("A", free_vars_);
  os << " ";
  emit("B", bound_vars_);
  return os.str();
}

}  // namespace adsd
