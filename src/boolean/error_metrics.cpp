#include "boolean/error_metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace adsd {

InputDistribution InputDistribution::uniform(unsigned num_inputs) {
  if (num_inputs == 0 || num_inputs > 26) {
    throw std::invalid_argument("InputDistribution: inputs must be in [1,26]");
  }
  InputDistribution d;
  d.num_inputs_ = num_inputs;
  d.uniform_ = true;
  d.uniform_prob_ =
      1.0 / static_cast<double>(std::uint64_t{1} << num_inputs);
  return d;
}

InputDistribution InputDistribution::from_weights(std::vector<double> weights) {
  if (weights.empty() || (weights.size() & (weights.size() - 1)) != 0) {
    throw std::invalid_argument(
        "InputDistribution: weight count must be a power of two");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0 || std::isnan(w)) {
      throw std::invalid_argument("InputDistribution: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("InputDistribution: all weights are zero");
  }
  InputDistribution d;
  d.uniform_ = false;
  unsigned n = 0;
  while ((std::size_t{1} << n) < weights.size()) {
    ++n;
  }
  d.num_inputs_ = n;
  d.probs_ = std::move(weights);
  for (double& p : d.probs_) {
    p /= total;
  }
  return d;
}

namespace {

void check_shapes(const TruthTable& exact, const TruthTable& approx,
                  const InputDistribution& dist) {
  if (exact.num_inputs() != approx.num_inputs() ||
      exact.num_outputs() != approx.num_outputs()) {
    throw std::invalid_argument("error metric: table shape mismatch");
  }
  if (dist.num_inputs() != exact.num_inputs()) {
    throw std::invalid_argument("error metric: distribution shape mismatch");
  }
}

}  // namespace

double error_rate(const BitVec& exact, const BitVec& approx,
                  const InputDistribution& dist) {
  if (exact.size() != approx.size() ||
      exact.size() != dist.num_patterns()) {
    throw std::invalid_argument("error_rate: size mismatch");
  }
  if (dist.is_uniform()) {
    return static_cast<double>(exact.hamming_distance(approx)) /
           static_cast<double>(exact.size());
  }
  double er = 0.0;
  for (std::uint64_t x = 0; x < exact.size(); ++x) {
    if (exact.get(x) != approx.get(x)) {
      er += dist.prob(x);
    }
  }
  return er;
}

double error_rate(const TruthTable& exact, const TruthTable& approx,
                  const InputDistribution& dist) {
  check_shapes(exact, approx, dist);
  double er = 0.0;
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    if (exact.word(x) != approx.word(x)) {
      er += dist.prob(x);
    }
  }
  return er;
}

double mean_error_distance(const TruthTable& exact, const TruthTable& approx,
                           const InputDistribution& dist) {
  check_shapes(exact, approx, dist);
  double med = 0.0;
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    const auto a = static_cast<std::int64_t>(exact.word(x));
    const auto b = static_cast<std::int64_t>(approx.word(x));
    med += dist.prob(x) * static_cast<double>(std::llabs(a - b));
  }
  return med;
}

std::uint64_t worst_case_error(const TruthTable& exact,
                               const TruthTable& approx) {
  if (exact.num_inputs() != approx.num_inputs() ||
      exact.num_outputs() != approx.num_outputs()) {
    throw std::invalid_argument("worst_case_error: table shape mismatch");
  }
  std::uint64_t wce = 0;
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    const auto a = static_cast<std::int64_t>(exact.word(x));
    const auto b = static_cast<std::int64_t>(approx.word(x));
    const auto d = static_cast<std::uint64_t>(std::llabs(a - b));
    if (d > wce) {
      wce = d;
    }
  }
  return wce;
}

double mean_relative_error(const TruthTable& exact, const TruthTable& approx,
                           const InputDistribution& dist) {
  check_shapes(exact, approx, dist);
  double mre = 0.0;
  for (std::uint64_t x = 0; x < exact.num_patterns(); ++x) {
    const auto a = static_cast<std::int64_t>(exact.word(x));
    const auto b = static_cast<std::int64_t>(approx.word(x));
    const double denom = a > 0 ? static_cast<double>(a) : 1.0;
    mre += dist.prob(x) * static_cast<double>(std::llabs(a - b)) / denom;
  }
  return mre;
}

}  // namespace adsd
