#include "boolean/truth_table.hpp"

#include <stdexcept>

namespace adsd {

TruthTable::TruthTable(unsigned num_inputs, unsigned num_outputs)
    : num_inputs_(num_inputs), num_outputs_(num_outputs) {
  if (num_inputs == 0 || num_inputs > 26) {
    throw std::invalid_argument("TruthTable: inputs must be in [1, 26]");
  }
  if (num_outputs == 0 || num_outputs > 63) {
    throw std::invalid_argument("TruthTable: outputs must be in [1, 63]");
  }
  outputs_.assign(num_outputs, BitVec(num_patterns()));
}

TruthTable TruthTable::from_function(
    unsigned num_inputs, unsigned num_outputs,
    const std::function<std::uint64_t(std::uint64_t)>& f) {
  TruthTable tt(num_inputs, num_outputs);
  const std::uint64_t patterns = tt.num_patterns();
  for (std::uint64_t x = 0; x < patterns; ++x) {
    tt.set_word(x, f(x));
  }
  return tt;
}

std::uint64_t TruthTable::word(std::uint64_t input) const {
  std::uint64_t w = 0;
  for (unsigned k = 0; k < num_outputs_; ++k) {
    w |= static_cast<std::uint64_t>(outputs_[k].get(input)) << k;
  }
  return w;
}

void TruthTable::set_word(std::uint64_t input, std::uint64_t value) {
  for (unsigned k = 0; k < num_outputs_; ++k) {
    outputs_[k].set(input, (value >> k) & 1);
  }
}

void TruthTable::set_output(unsigned k, BitVec bits) {
  if (bits.size() != num_patterns()) {
    throw std::invalid_argument("TruthTable::set_output: size mismatch");
  }
  outputs_[k] = std::move(bits);
}

bool TruthTable::operator==(const TruthTable& other) const {
  return num_inputs_ == other.num_inputs_ &&
         num_outputs_ == other.num_outputs_ && outputs_ == other.outputs_;
}

std::uint64_t TruthTable::diff_count(const TruthTable& other) const {
  if (num_inputs_ != other.num_inputs_ ||
      num_outputs_ != other.num_outputs_) {
    throw std::invalid_argument("TruthTable::diff_count: shape mismatch");
  }
  std::uint64_t c = 0;
  for (std::uint64_t x = 0; x < num_patterns(); ++x) {
    if (word(x) != other.word(x)) {
      ++c;
    }
  }
  return c;
}

}  // namespace adsd
