#pragma once

#include <iosfwd>
#include <string>

#include "boolean/error_metrics.hpp"
#include "boolean/truth_table.hpp"

namespace adsd {

/// Text formats for complete truth tables, so LUT contents can round-trip
/// to and from external flows (ABC-style PLA listings, memory images).
///
/// PLA format (full listing, no don't-cares):
///   .i <n>
///   .o <m>
///   <n input bits, x0 leftmost> <m output bits, y0 leftmost>   x 2^n rows
///   .e
///
/// Hex format (compact, one line per output):
///   .tt <n> <m>
///   <output 0 as hex, lowest address in the least significant nibble>
///   ...
void write_pla(std::ostream& os, const TruthTable& tt);
TruthTable read_pla(std::istream& is);

void write_hex(std::ostream& os, const TruthTable& tt);
TruthTable read_hex(std::istream& is);

/// Convenience round-trips through strings (used by tests and the CLI).
std::string to_pla_string(const TruthTable& tt);
TruthTable from_pla_string(const std::string& text);
std::string to_hex_string(const TruthTable& tt);
TruthTable from_hex_string(const std::string& text);

/// Profile-driven input distribution (e.g. from application traces):
///   .dist <n>
///   <2^n non-negative weights, whitespace separated>
/// Weights are normalized on load. write_distribution emits probabilities.
void write_distribution(std::ostream& os, const InputDistribution& dist);
InputDistribution read_distribution(std::istream& is);

}  // namespace adsd
