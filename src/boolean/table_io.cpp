#include "boolean/table_io.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace adsd {

void write_pla(std::ostream& os, const TruthTable& tt) {
  os << ".i " << tt.num_inputs() << "\n.o " << tt.num_outputs() << "\n";
  for (std::uint64_t x = 0; x < tt.num_patterns(); ++x) {
    for (unsigned i = 0; i < tt.num_inputs(); ++i) {
      os << ((x >> i) & 1);
    }
    os << ' ';
    for (unsigned k = 0; k < tt.num_outputs(); ++k) {
      os << (tt.bit(k, x) ? '1' : '0');
    }
    os << '\n';
  }
  os << ".e\n";
}

TruthTable read_pla(std::istream& is) {
  unsigned n = 0;
  unsigned m = 0;
  std::string token;
  while (is >> token) {
    if (token == ".i") {
      is >> n;
    } else if (token == ".o") {
      is >> m;
      break;
    } else {
      throw std::invalid_argument("read_pla: expected .i/.o header");
    }
  }
  if (n == 0 || m == 0) {
    throw std::invalid_argument("read_pla: missing .i/.o header");
  }
  TruthTable tt(n, m);
  std::vector<bool> seen(tt.num_patterns(), false);
  std::string in_bits;
  std::string out_bits;
  std::uint64_t rows = 0;
  while (is >> in_bits) {
    if (in_bits == ".e") {
      break;
    }
    if (!(is >> out_bits) || in_bits.size() != n || out_bits.size() != m) {
      throw std::invalid_argument("read_pla: malformed row");
    }
    std::uint64_t x = 0;
    for (unsigned i = 0; i < n; ++i) {
      if (in_bits[i] == '1') {
        x |= std::uint64_t{1} << i;
      } else if (in_bits[i] != '0') {
        throw std::invalid_argument("read_pla: don't-cares not supported");
      }
    }
    if (seen[x]) {
      throw std::invalid_argument("read_pla: duplicate input pattern");
    }
    seen[x] = true;
    ++rows;
    for (unsigned k = 0; k < m; ++k) {
      if (out_bits[k] == '1') {
        tt.set_bit(k, x, true);
      } else if (out_bits[k] != '0') {
        throw std::invalid_argument("read_pla: bad output bit");
      }
    }
  }
  if (rows != tt.num_patterns()) {
    throw std::invalid_argument("read_pla: incomplete truth table");
  }
  return tt;
}

void write_hex(std::ostream& os, const TruthTable& tt) {
  os << ".tt " << tt.num_inputs() << ' ' << tt.num_outputs() << '\n';
  const std::uint64_t patterns = tt.num_patterns();
  const std::uint64_t nibbles = (patterns + 3) / 4;
  for (unsigned k = 0; k < tt.num_outputs(); ++k) {
    std::string line(nibbles, '0');
    for (std::uint64_t nib = 0; nib < nibbles; ++nib) {
      unsigned value = 0;
      for (unsigned b = 0; b < 4; ++b) {
        const std::uint64_t x = nib * 4 + b;
        if (x < patterns && tt.bit(k, x)) {
          value |= 1u << b;
        }
      }
      // Most significant nibble first in the text.
      line[nibbles - 1 - nib] = "0123456789abcdef"[value];
    }
    os << line << '\n';
  }
}

TruthTable read_hex(std::istream& is) {
  std::string tag;
  unsigned n = 0;
  unsigned m = 0;
  if (!(is >> tag >> n >> m) || tag != ".tt") {
    throw std::invalid_argument("read_hex: expected '.tt n m' header");
  }
  TruthTable tt(n, m);
  const std::uint64_t patterns = tt.num_patterns();
  const std::uint64_t nibbles = (patterns + 3) / 4;
  for (unsigned k = 0; k < m; ++k) {
    std::string line;
    if (!(is >> line) || line.size() != nibbles) {
      throw std::invalid_argument("read_hex: bad output row length");
    }
    for (std::uint64_t pos = 0; pos < nibbles; ++pos) {
      const char ch = line[nibbles - 1 - pos];
      unsigned value = 0;
      if (ch >= '0' && ch <= '9') {
        value = static_cast<unsigned>(ch - '0');
      } else if (ch >= 'a' && ch <= 'f') {
        value = static_cast<unsigned>(ch - 'a') + 10;
      } else if (ch >= 'A' && ch <= 'F') {
        value = static_cast<unsigned>(ch - 'A') + 10;
      } else {
        throw std::invalid_argument("read_hex: bad hex digit");
      }
      for (unsigned b = 0; b < 4; ++b) {
        const std::uint64_t x = pos * 4 + b;
        if (x < patterns && ((value >> b) & 1)) {
          tt.set_bit(k, x, true);
        }
      }
    }
  }
  return tt;
}

void write_distribution(std::ostream& os, const InputDistribution& dist) {
  os << ".dist " << dist.num_inputs() << '\n';
  for (std::uint64_t x = 0; x < dist.num_patterns(); ++x) {
    os << dist.prob(x) << '\n';
  }
}

InputDistribution read_distribution(std::istream& is) {
  std::string tag;
  unsigned n = 0;
  if (!(is >> tag >> n) || tag != ".dist") {
    throw std::invalid_argument("read_distribution: expected '.dist n'");
  }
  if (n == 0 || n > 26) {
    throw std::invalid_argument("read_distribution: bad input count");
  }
  const std::uint64_t patterns = std::uint64_t{1} << n;
  std::vector<double> weights(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    if (!(is >> weights[x])) {
      throw std::invalid_argument("read_distribution: truncated weights");
    }
  }
  return InputDistribution::from_weights(std::move(weights));
}

std::string to_pla_string(const TruthTable& tt) {
  std::ostringstream os;
  write_pla(os, tt);
  return os.str();
}

TruthTable from_pla_string(const std::string& text) {
  std::istringstream is(text);
  return read_pla(is);
}

std::string to_hex_string(const TruthTable& tt) {
  std::ostringstream os;
  write_hex(os, tt);
  return os.str();
}

TruthTable from_hex_string(const std::string& text) {
  std::istringstream is(text);
  return read_hex(is);
}

}  // namespace adsd
