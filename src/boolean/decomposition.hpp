#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "boolean/boolean_matrix.hpp"
#include "boolean/partition.hpp"
#include "boolean/truth_table.hpp"
#include "support/bitvec.hpp"
#include "support/rng.hpp"

namespace adsd {

/// Row classification of Theorem 1 (Shen-McKellar, row-based condition):
/// every row of a decomposable matrix is all-zeros, all-ones, a fixed
/// pattern V, or the complement of V.
enum class RowType : std::uint8_t {
  kAllZero = 0,
  kAllOne = 1,
  kPattern = 2,
  kComplement = 3,
};

/// Row-based decomposition setting (V, S): the fixed row pattern V (one bit
/// per column) and the per-row type vector S. Together with the partition it
/// fully determines the decomposed function g(X) = F(phi(B), A).
struct RowSetting {
  BitVec pattern;             // V, length = number of columns
  std::vector<RowType> types; // S, length = number of rows

  /// Value of the (re)composed function at matrix cell (i, j).
  bool value(std::size_t i, std::size_t j) const {
    switch (types[i]) {
      case RowType::kAllZero:
        return false;
      case RowType::kAllOne:
        return true;
      case RowType::kPattern:
        return pattern.get(j);
      case RowType::kComplement:
        return !pattern.get(j);
    }
    return false;  // unreachable
  }
};

/// Column-based decomposition setting (V1, V2, T) of Theorem 2: two column
/// patterns (one bit per row) and a per-column type selector. T_j = 0 picks
/// V1 for column j, T_j = 1 picks V2. This is the representation the Ising
/// formulation optimizes: it is quadratic in the binary unknowns.
struct ColumnSetting {
  BitVec v1;  // column pattern 1, length = number of rows
  BitVec v2;  // column pattern 2, length = number of rows
  BitVec t;   // column type vector, length = number of columns

  /// Value of the (re)composed function at matrix cell (i, j), i.e. Eq. (3).
  bool value(std::size_t i, std::size_t j) const {
    return t.get(j) ? v2.get(i) : v1.get(i);
  }
};

/// Theorem 1 check. Returns a witness setting when the matrix has a disjoint
/// decomposition, std::nullopt otherwise. When all rows are constant any
/// pattern works; the all-zeros pattern is returned.
std::optional<RowSetting> check_row_decomposition(const BooleanMatrix& m);

/// Theorem 2 check. Returns a witness setting when the matrix has at most
/// two distinct columns. With a single distinct column, V1 = V2 = that
/// column and T = 0.
std::optional<ColumnSetting> check_column_decomposition(const BooleanMatrix& m);

/// Converts a column setting into the equivalent row setting (V = T; the row
/// type follows from the pair (V1_i, V2_i)). The two representations always
/// describe the same matrix.
RowSetting to_row_setting(const ColumnSetting& cs);

/// Converts a row setting into the equivalent column setting (T = V).
ColumnSetting to_column_setting(const RowSetting& rs);

/// Materializes the matrix described by a setting.
BooleanMatrix realize(const ColumnSetting& cs);
BooleanMatrix realize(const RowSetting& rs);

/// Truth-table column (2^n bits) of the decomposed function under `w`.
BitVec compose_output(const ColumnSetting& cs, const InputPartition& w);

/// Number of matrix cells where the setting disagrees with `m`
/// (unweighted error; the weighted objectives live in core/).
std::uint64_t mismatch_count(const BooleanMatrix& m, const ColumnSetting& cs);
std::uint64_t mismatch_count(const BooleanMatrix& m, const RowSetting& rs);

/// Random single-output function that decomposes exactly under `w`
/// (used by tests and the exact-case benchmarks).
BitVec random_decomposable_output(const InputPartition& w, Rng& rng);

/// The two most frequent distinct columns of `m` (ties broken
/// lexicographically; if only one distinct column exists the second is its
/// complement). This is the natural 2-clustering seed for the column
/// patterns: the greedy baseline starts from it, and the Ising solver uses
/// it to break the V1 <-> V2 exchange symmetry of the formulation (see
/// IsingCoreSolver::Options::column_seed_init).
std::pair<BitVec, BitVec> dominant_column_pair(const BooleanMatrix& m);

}  // namespace adsd
