#include "boolean/decomposition.hpp"

#include <map>
#include <stdexcept>

namespace adsd {

namespace {

bool is_constant(const BitVec& bits, bool* value) {
  const std::size_t ones = bits.count();
  if (ones == 0) {
    *value = false;
    return true;
  }
  if (ones == bits.size()) {
    *value = true;
    return true;
  }
  return false;
}

}  // namespace

std::optional<RowSetting> check_row_decomposition(const BooleanMatrix& m) {
  RowSetting setting;
  setting.types.resize(m.rows());
  bool have_pattern = false;
  BitVec pattern;

  for (std::size_t i = 0; i < m.rows(); ++i) {
    BitVec row = m.row(i);
    bool constant = false;
    if (is_constant(row, &constant)) {
      setting.types[i] = constant ? RowType::kAllOne : RowType::kAllZero;
      continue;
    }
    if (!have_pattern) {
      pattern = std::move(row);
      have_pattern = true;
      setting.types[i] = RowType::kPattern;
      continue;
    }
    if (row == pattern) {
      setting.types[i] = RowType::kPattern;
    } else if (row == pattern.complement()) {
      setting.types[i] = RowType::kComplement;
    } else {
      return std::nullopt;
    }
  }

  setting.pattern = have_pattern ? std::move(pattern) : BitVec(m.cols());
  return setting;
}

std::optional<ColumnSetting> check_column_decomposition(
    const BooleanMatrix& m) {
  ColumnSetting setting;
  setting.t = BitVec(m.cols());
  bool have_first = false;
  bool have_second = false;

  for (std::size_t j = 0; j < m.cols(); ++j) {
    BitVec col = m.column(j);
    if (!have_first) {
      setting.v1 = std::move(col);
      have_first = true;
      continue;
    }
    if (col == setting.v1) {
      continue;
    }
    if (!have_second) {
      setting.v2 = std::move(col);
      have_second = true;
      setting.t.set(j, true);
      continue;
    }
    if (col == setting.v2) {
      setting.t.set(j, true);
    } else {
      return std::nullopt;
    }
  }

  if (!have_second) {
    setting.v2 = setting.v1;
  }
  return setting;
}

RowSetting to_row_setting(const ColumnSetting& cs) {
  if (cs.v1.size() != cs.v2.size()) {
    throw std::invalid_argument("to_row_setting: V1/V2 length mismatch");
  }
  RowSetting rs;
  rs.pattern = cs.t;
  rs.types.resize(cs.v1.size());
  for (std::size_t i = 0; i < cs.v1.size(); ++i) {
    const bool a = cs.v1.get(i);
    const bool b = cs.v2.get(i);
    if (!a && !b) {
      rs.types[i] = RowType::kAllZero;
    } else if (a && b) {
      rs.types[i] = RowType::kAllOne;
    } else if (!a && b) {
      // Row equals T itself (0 where T_j = 0, 1 where T_j = 1).
      rs.types[i] = RowType::kPattern;
    } else {
      rs.types[i] = RowType::kComplement;
    }
  }
  return rs;
}

ColumnSetting to_column_setting(const RowSetting& rs) {
  ColumnSetting cs;
  cs.t = rs.pattern;
  cs.v1 = BitVec(rs.types.size());
  cs.v2 = BitVec(rs.types.size());
  for (std::size_t i = 0; i < rs.types.size(); ++i) {
    switch (rs.types[i]) {
      case RowType::kAllZero:
        break;
      case RowType::kAllOne:
        cs.v1.set(i, true);
        cs.v2.set(i, true);
        break;
      case RowType::kPattern:
        cs.v2.set(i, true);
        break;
      case RowType::kComplement:
        cs.v1.set(i, true);
        break;
    }
  }
  return cs;
}

BooleanMatrix realize(const ColumnSetting& cs) {
  BooleanMatrix m(cs.v1.size(), cs.t.size());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m.set(i, j, cs.value(i, j));
    }
  }
  return m;
}

BooleanMatrix realize(const RowSetting& rs) {
  BooleanMatrix m(rs.types.size(), rs.pattern.size());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m.set(i, j, rs.value(i, j));
    }
  }
  return m;
}

BitVec compose_output(const ColumnSetting& cs, const InputPartition& w) {
  if (cs.v1.size() != w.num_rows() || cs.t.size() != w.num_cols()) {
    throw std::invalid_argument("compose_output: setting/partition mismatch");
  }
  const std::uint64_t patterns = std::uint64_t{1} << w.num_inputs();
  BitVec out(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    out.set(x, cs.value(w.row_of(x), w.col_of(x)));
  }
  return out;
}

std::uint64_t mismatch_count(const BooleanMatrix& m, const ColumnSetting& cs) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      c += m.at(i, j) != cs.value(i, j);
    }
  }
  return c;
}

std::uint64_t mismatch_count(const BooleanMatrix& m, const RowSetting& rs) {
  std::uint64_t c = 0;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      c += m.at(i, j) != rs.value(i, j);
    }
  }
  return c;
}

std::pair<BitVec, BitVec> dominant_column_pair(const BooleanMatrix& m) {
  std::map<BitVec, std::size_t> freq;
  for (std::size_t j = 0; j < m.cols(); ++j) {
    ++freq[m.column(j)];
  }
  const BitVec* first = nullptr;
  const BitVec* second = nullptr;
  std::size_t first_count = 0;
  std::size_t second_count = 0;
  for (const auto& [col, count] : freq) {
    if (count > first_count) {
      second = first;
      second_count = first_count;
      first = &col;
      first_count = count;
    } else if (count > second_count) {
      second = &col;
      second_count = count;
    }
  }
  return {*first, second != nullptr ? *second : first->complement()};
}

BitVec random_decomposable_output(const InputPartition& w, Rng& rng) {
  ColumnSetting cs;
  cs.v1 = BitVec(w.num_rows());
  cs.v2 = BitVec(w.num_rows());
  cs.t = BitVec(w.num_cols());
  for (std::size_t i = 0; i < cs.v1.size(); ++i) {
    cs.v1.set(i, rng.next_bool());
    cs.v2.set(i, rng.next_bool());
  }
  for (std::size_t j = 0; j < cs.t.size(); ++j) {
    cs.t.set(j, rng.next_bool());
  }
  return compose_output(cs, w);
}

}  // namespace adsd
