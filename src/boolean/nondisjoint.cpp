#include "boolean/nondisjoint.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace adsd {

NonDisjointPartition::NonDisjointPartition(std::vector<unsigned> free_vars,
                                           std::vector<unsigned> bound_vars,
                                           std::vector<unsigned> shared_vars)
    : free_vars_(std::move(free_vars)),
      bound_vars_(std::move(bound_vars)),
      shared_vars_(std::move(shared_vars)) {
  num_inputs_ = static_cast<unsigned>(free_vars_.size() + bound_vars_.size() +
                                      shared_vars_.size());
  if (free_vars_.empty() || bound_vars_.empty()) {
    throw std::invalid_argument(
        "NonDisjointPartition: free and bound sets must be non-empty");
  }
  if (num_inputs_ > 63) {
    throw std::invalid_argument("NonDisjointPartition: too many inputs");
  }
  std::vector<bool> seen(num_inputs_, false);
  auto check = [&](const std::vector<unsigned>& vars) {
    for (unsigned v : vars) {
      if (v >= num_inputs_ || seen[v]) {
        throw std::invalid_argument(
            "NonDisjointPartition: sets must disjointly cover 0..n-1");
      }
      seen[v] = true;
    }
  };
  check(free_vars_);
  check(bound_vars_);
  check(shared_vars_);
}

NonDisjointPartition NonDisjointPartition::random(unsigned num_inputs,
                                                  unsigned free_size,
                                                  unsigned shared_size,
                                                  Rng& rng) {
  if (free_size == 0 || free_size + shared_size >= num_inputs) {
    throw std::invalid_argument("NonDisjointPartition::random: bad sizes");
  }
  const auto perm = rng.permutation(num_inputs);
  std::vector<unsigned> a(perm.begin(), perm.begin() + free_size);
  std::vector<unsigned> s(perm.begin() + free_size,
                          perm.begin() + free_size + shared_size);
  std::vector<unsigned> b(perm.begin() + free_size + shared_size, perm.end());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  std::sort(s.begin(), s.end());
  return NonDisjointPartition(std::move(a), std::move(b), std::move(s));
}

std::uint64_t NonDisjointPartition::row_of(std::uint64_t x) const {
  std::uint64_t row = 0;
  for (std::size_t i = 0; i < free_vars_.size(); ++i) {
    row |= ((x >> free_vars_[i]) & 1) << i;
  }
  return row;
}

std::uint64_t NonDisjointPartition::col_of(std::uint64_t x) const {
  std::uint64_t col = 0;
  for (std::size_t i = 0; i < bound_vars_.size(); ++i) {
    col |= ((x >> bound_vars_[i]) & 1) << i;
  }
  return col;
}

std::uint64_t NonDisjointPartition::slice_of(std::uint64_t x) const {
  std::uint64_t s = 0;
  for (std::size_t i = 0; i < shared_vars_.size(); ++i) {
    s |= ((x >> shared_vars_[i]) & 1) << i;
  }
  return s;
}

std::uint64_t NonDisjointPartition::input_of(std::uint64_t slice,
                                             std::uint64_t row,
                                             std::uint64_t col) const {
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < free_vars_.size(); ++i) {
    x |= ((row >> i) & 1) << free_vars_[i];
  }
  for (std::size_t i = 0; i < bound_vars_.size(); ++i) {
    x |= ((col >> i) & 1) << bound_vars_[i];
  }
  for (std::size_t i = 0; i < shared_vars_.size(); ++i) {
    x |= ((slice >> i) & 1) << shared_vars_[i];
  }
  return x;
}

std::string NonDisjointPartition::to_string() const {
  std::ostringstream os;
  auto emit = [&](const char* name, const std::vector<unsigned>& vars) {
    os << name << "={";
    for (std::size_t i = 0; i < vars.size(); ++i) {
      if (i != 0) {
        os << ",";
      }
      os << "x" << vars[i];
    }
    os << "}";
  };
  emit("A", free_vars_);
  os << " ";
  emit("B", bound_vars_);
  os << " ";
  emit("S", shared_vars_);
  return os.str();
}

BooleanMatrix slice_matrix(const TruthTable& tt, unsigned k,
                           const NonDisjointPartition& w,
                           std::uint64_t slice) {
  if (w.num_inputs() != tt.num_inputs() || k >= tt.num_outputs() ||
      slice >= w.num_slices()) {
    throw std::invalid_argument("slice_matrix: shape mismatch");
  }
  BooleanMatrix m(w.num_rows(), w.num_cols());
  const BitVec& g = tt.output(k);
  for (std::uint64_t i = 0; i < w.num_rows(); ++i) {
    for (std::uint64_t j = 0; j < w.num_cols(); ++j) {
      m.set(i, j, g.get(w.input_of(slice, i, j)));
    }
  }
  return m;
}

std::optional<NonDisjointSetting> check_nondisjoint_decomposition(
    const TruthTable& tt, unsigned k, const NonDisjointPartition& w) {
  NonDisjointSetting setting;
  setting.slices.reserve(w.num_slices());
  for (std::uint64_t s = 0; s < w.num_slices(); ++s) {
    auto cs = check_column_decomposition(slice_matrix(tt, k, w, s));
    if (!cs.has_value()) {
      return std::nullopt;
    }
    setting.slices.push_back(std::move(*cs));
  }
  return setting;
}

BitVec compose_output(const NonDisjointSetting& s,
                      const NonDisjointPartition& w) {
  if (s.slices.size() != w.num_slices()) {
    throw std::invalid_argument("compose_output: slice count mismatch");
  }
  const std::uint64_t patterns = std::uint64_t{1} << w.num_inputs();
  BitVec out(patterns);
  for (std::uint64_t x = 0; x < patterns; ++x) {
    out.set(x, s.value(w.slice_of(x), w.row_of(x), w.col_of(x)));
  }
  return out;
}

}  // namespace adsd
