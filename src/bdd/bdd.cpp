#include "bdd/bdd.hpp"

#include <stdexcept>

namespace adsd {

BddManager::BddManager(unsigned num_vars) : num_vars_(num_vars) {
  if (num_vars == 0 || num_vars > 26) {
    throw std::invalid_argument("BddManager: vars must be in [1, 26]");
  }
  // Terminals carry the sentinel level num_vars_ so that every internal
  // node's variable compares smaller.
  nodes_.push_back({num_vars_, kFalse, kFalse});  // 0 = false
  nodes_.push_back({num_vars_, kTrue, kTrue});    // 1 = true
}

BddManager::NodeRef BddManager::make_node(unsigned v, NodeRef lo,
                                          NodeRef hi) {
  if (lo == hi) {
    return lo;  // reduction rule
  }
  const UniqueKey key{v, lo, hi};
  const auto it = unique_.find(key);
  if (it != unique_.end()) {
    return it->second;
  }
  const auto ref = static_cast<NodeRef>(nodes_.size());
  nodes_.push_back({v, lo, hi});
  unique_.emplace(key, ref);
  return ref;
}

BddManager::NodeRef BddManager::var(unsigned v) {
  if (v >= num_vars_) {
    throw std::out_of_range("BddManager::var: variable out of range");
  }
  return make_node(v, kFalse, kTrue);
}

BddManager::NodeRef BddManager::nvar(unsigned v) {
  if (v >= num_vars_) {
    throw std::out_of_range("BddManager::nvar: variable out of range");
  }
  return make_node(v, kTrue, kFalse);
}

BddManager::NodeRef BddManager::ite(NodeRef f, NodeRef g, NodeRef h) {
  // Terminal cases.
  if (f == kTrue) {
    return g;
  }
  if (f == kFalse) {
    return h;
  }
  if (g == h) {
    return g;
  }
  if (g == kTrue && h == kFalse) {
    return f;
  }

  const IteKey key{f, g, h};
  const auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) {
    return it->second;
  }

  // Split on the topmost variable among the three operands.
  unsigned top = nodes_[f].var;
  if (nodes_[g].var < top) {
    top = nodes_[g].var;
  }
  if (nodes_[h].var < top) {
    top = nodes_[h].var;
  }
  auto cof = [&](NodeRef x, bool hi) {
    if (is_terminal(x) || nodes_[x].var != top) {
      return x;
    }
    return hi ? nodes_[x].hi : nodes_[x].lo;
  };
  const NodeRef lo = ite(cof(f, false), cof(g, false), cof(h, false));
  const NodeRef hi = ite(cof(f, true), cof(g, true), cof(h, true));
  const NodeRef result = make_node(top, lo, hi);
  ite_cache_.emplace(key, result);
  return result;
}

BddManager::NodeRef BddManager::restrict_var(NodeRef f, unsigned v,
                                             bool value) {
  if (v >= num_vars_) {
    throw std::out_of_range("BddManager::restrict_var: variable");
  }
  if (is_terminal(f) || nodes_[f].var > v) {
    return f;
  }
  if (nodes_[f].var == v) {
    return value ? nodes_[f].hi : nodes_[f].lo;
  }
  const std::uint64_t key = (static_cast<std::uint64_t>(f) << 32) |
                            (static_cast<std::uint64_t>(v) << 1) |
                            (value ? 1u : 0u);
  const auto it = restrict_cache_.find(key);
  if (it != restrict_cache_.end()) {
    return it->second;
  }
  const NodeRef lo = restrict_var(nodes_[f].lo, v, value);
  const NodeRef hi = restrict_var(nodes_[f].hi, v, value);
  const NodeRef result = make_node(nodes_[f].var, lo, hi);
  restrict_cache_.emplace(key, result);
  return result;
}

bool BddManager::evaluate(NodeRef f, std::uint64_t assignment) const {
  while (!is_terminal(f)) {
    const Node& n = nodes_[f];
    f = ((assignment >> n.var) & 1) ? n.hi : n.lo;
  }
  return f == kTrue;
}

std::uint64_t BddManager::count_sat(NodeRef f) {
  // s(f) counts assignments of variables in [var(f), n); scale to [0, n).
  struct Rec {
    BddManager* mgr;
    std::uint64_t operator()(NodeRef f) {
      if (f == BddManager::kFalse) {
        return 0;
      }
      if (f == BddManager::kTrue) {
        return 1;
      }
      const auto it = mgr->sat_cache_.find(f);
      if (it != mgr->sat_cache_.end()) {
        return it->second;
      }
      const auto& n = mgr->nodes_[f];
      const std::uint64_t lo = (*this)(n.lo);
      const std::uint64_t hi = (*this)(n.hi);
      const unsigned lo_var = mgr->nodes_[n.lo].var;
      const unsigned hi_var = mgr->nodes_[n.hi].var;
      const std::uint64_t total =
          lo * (std::uint64_t{1} << (lo_var - n.var - 1)) +
          hi * (std::uint64_t{1} << (hi_var - n.var - 1));
      mgr->sat_cache_.emplace(f, total);
      return total;
    }
  };
  const std::uint64_t partial = Rec{this}(f);
  const unsigned top = nodes_[f].var;
  return partial * (std::uint64_t{1} << (f <= kTrue ? num_vars_ : top));
}

BddManager::NodeRef BddManager::build_from_table(const BitVec& bits,
                                                 unsigned v,
                                                 std::uint64_t fixed_bits) {
  if (v == num_vars_) {
    return bits.get(fixed_bits) ? kTrue : kFalse;
  }
  const NodeRef lo = build_from_table(bits, v + 1, fixed_bits);
  const NodeRef hi =
      build_from_table(bits, v + 1, fixed_bits | (std::uint64_t{1} << v));
  return make_node(v, lo, hi);
}

BddManager::NodeRef BddManager::from_truth_table(const BitVec& bits) {
  if (bits.size() != (std::uint64_t{1} << num_vars_)) {
    throw std::invalid_argument("BddManager::from_truth_table: size");
  }
  return build_from_table(bits, 0, 0);
}

void BddManager::fill_table(NodeRef f, unsigned v, std::uint64_t fixed_bits,
                            BitVec* out) const {
  if (v == num_vars_) {
    out->set(fixed_bits, f == kTrue);
    return;
  }
  if (!is_terminal(f) && nodes_[f].var == v) {
    fill_table(nodes_[f].lo, v + 1, fixed_bits, out);
    fill_table(nodes_[f].hi, v + 1, fixed_bits | (std::uint64_t{1} << v),
               out);
  } else {
    fill_table(f, v + 1, fixed_bits, out);
    fill_table(f, v + 1, fixed_bits | (std::uint64_t{1} << v), out);
  }
}

BitVec BddManager::to_truth_table(NodeRef f) const {
  BitVec out(std::uint64_t{1} << num_vars_);
  fill_table(f, 0, 0, &out);
  return out;
}

std::size_t BddManager::node_count(NodeRef f) const {
  std::vector<NodeRef> stack{f};
  std::unordered_map<NodeRef, bool> seen;
  std::size_t count = 0;
  while (!stack.empty()) {
    const NodeRef x = stack.back();
    stack.pop_back();
    if (is_terminal(x) || seen.count(x) != 0) {
      continue;
    }
    seen.emplace(x, true);
    ++count;
    stack.push_back(nodes_[x].lo);
    stack.push_back(nodes_[x].hi);
  }
  return count;
}

}  // namespace adsd
