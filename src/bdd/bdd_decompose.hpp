#pragma once

#include <optional>

#include "bdd/bdd.hpp"
#include "boolean/partition.hpp"

namespace adsd {

/// Column multiplicity of `f` under the input partition `w`, computed on
/// the BDD: the number of distinct bound-set cofactors. Hash-consing makes
/// cofactor equality a NodeRef comparison, so this is the classical
/// logic-synthesis route to Theorem 2 (a matrix has at most `mu` distinct
/// columns iff the function has `mu` distinct bound cofactors).
std::size_t bdd_column_multiplicity(BddManager& mgr, BddManager::NodeRef f,
                                    const InputPartition& w);

/// Theorem 2 on the BDD: disjoint decomposability iff multiplicity <= 2.
bool bdd_is_decomposable(BddManager& mgr, BddManager::NodeRef f,
                         const InputPartition& w);

/// Exhaustive search over all partitions with the given free-set size for
/// one admitting an exact disjoint decomposition. Returns the first found
/// (variables in ascending order), or std::nullopt.
std::optional<InputPartition> bdd_find_decomposable_partition(
    BddManager& mgr, BddManager::NodeRef f, unsigned free_size);

}  // namespace adsd
