#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "support/bitvec.hpp"

namespace adsd {

/// Reduced ordered binary decision diagram manager with hash-consing and an
/// ITE computed cache.
///
/// Logic-synthesis tools test decomposability on BDDs rather than explicit
/// matrices: the column multiplicity of a partition is the number of
/// distinct bound-set cofactors, which hash-consing makes a pointer-set
/// count (see bdd_decompose.hpp). This manager provides the classical core:
/// ITE-based boolean algebra, restriction, satisfiability counting, and
/// truth-table conversion. Variable 0 is the topmost decision.
///
/// NodeRefs are indices into the manager's node array; 0 and 1 are the
/// constant-false/true terminals. Nodes are never freed (no GC): the
/// workloads here build bounded structures.
class BddManager {
 public:
  using NodeRef = std::uint32_t;

  explicit BddManager(unsigned num_vars);

  unsigned num_vars() const { return num_vars_; }

  static constexpr NodeRef kFalse = 0;
  static constexpr NodeRef kTrue = 1;

  /// The projection function x_v.
  NodeRef var(unsigned v);
  /// Its complement.
  NodeRef nvar(unsigned v);

  /// if-then-else: f ? g : h. The universal connective; all two-input ops
  /// route through it.
  NodeRef ite(NodeRef f, NodeRef g, NodeRef h);

  NodeRef land(NodeRef a, NodeRef b) { return ite(a, b, kFalse); }
  NodeRef lor(NodeRef a, NodeRef b) { return ite(a, kTrue, b); }
  NodeRef lxor(NodeRef a, NodeRef b) { return ite(a, lnot(b), b); }
  NodeRef lnot(NodeRef a) { return ite(a, kFalse, kTrue); }

  /// Shannon cofactor f|_{x_v = value}.
  NodeRef restrict_var(NodeRef f, unsigned v, bool value);

  /// Value under a complete assignment (bit v of `assignment` is x_v).
  bool evaluate(NodeRef f, std::uint64_t assignment) const;

  /// Number of satisfying assignments over all num_vars() variables.
  std::uint64_t count_sat(NodeRef f);

  /// Builds the BDD of a complete truth-table column (bit i of `bits` is
  /// the value at assignment i).
  NodeRef from_truth_table(const BitVec& bits);

  /// Expands back to the full table.
  BitVec to_truth_table(NodeRef f) const;

  /// Nodes reachable from f (terminals excluded).
  std::size_t node_count(NodeRef f) const;

  /// Total nodes ever allocated in this manager (terminals excluded).
  std::size_t total_nodes() const { return nodes_.size() - 2; }

  /// Structural equality is reference equality under hash-consing.
  bool is_terminal(NodeRef f) const { return f <= kTrue; }
  unsigned node_var(NodeRef f) const { return nodes_[f].var; }
  NodeRef node_lo(NodeRef f) const { return nodes_[f].lo; }
  NodeRef node_hi(NodeRef f) const { return nodes_[f].hi; }

 private:
  struct Node {
    unsigned var;  // num_vars_ for terminals
    NodeRef lo;
    NodeRef hi;
  };

  NodeRef make_node(unsigned v, NodeRef lo, NodeRef hi);
  NodeRef build_from_table(const BitVec& bits, unsigned v,
                           std::uint64_t fixed_bits);
  void fill_table(NodeRef f, unsigned v, std::uint64_t fixed_bits,
                  BitVec* out) const;

  unsigned num_vars_;
  std::vector<Node> nodes_;

  struct UniqueKey {
    unsigned var;
    NodeRef lo;
    NodeRef hi;
    bool operator==(const UniqueKey& o) const {
      return var == o.var && lo == o.lo && hi == o.hi;
    }
  };
  struct UniqueHash {
    std::size_t operator()(const UniqueKey& k) const {
      std::size_t h = k.var;
      h = h * 0x9e3779b97f4a7c15ull + k.lo;
      h = h * 0x9e3779b97f4a7c15ull + k.hi;
      return h;
    }
  };
  std::unordered_map<UniqueKey, NodeRef, UniqueHash> unique_;

  struct IteKey {
    NodeRef f;
    NodeRef g;
    NodeRef h;
    bool operator==(const IteKey& o) const {
      return f == o.f && g == o.g && h == o.h;
    }
  };
  struct IteHash {
    std::size_t operator()(const IteKey& k) const {
      std::size_t x = k.f;
      x = x * 0x100000001b3ull + k.g;
      x = x * 0x100000001b3ull + k.h;
      return x;
    }
  };
  std::unordered_map<IteKey, NodeRef, IteHash> ite_cache_;
  std::unordered_map<std::uint64_t, NodeRef> restrict_cache_;
  std::unordered_map<NodeRef, std::uint64_t> sat_cache_;
};

}  // namespace adsd
