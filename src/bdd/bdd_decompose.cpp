#include "bdd/bdd_decompose.hpp"

#include <stdexcept>
#include <unordered_set>

namespace adsd {

namespace {

void collect_cofactors(BddManager& mgr, BddManager::NodeRef f,
                       const std::vector<unsigned>& bound, std::size_t idx,
                       std::unordered_set<BddManager::NodeRef>* out) {
  if (idx == bound.size()) {
    out->insert(f);
    return;
  }
  collect_cofactors(mgr, mgr.restrict_var(f, bound[idx], false), bound,
                    idx + 1, out);
  collect_cofactors(mgr, mgr.restrict_var(f, bound[idx], true), bound,
                    idx + 1, out);
}

}  // namespace

std::size_t bdd_column_multiplicity(BddManager& mgr, BddManager::NodeRef f,
                                    const InputPartition& w) {
  if (w.num_inputs() != mgr.num_vars()) {
    throw std::invalid_argument(
        "bdd_column_multiplicity: partition width mismatch");
  }
  std::unordered_set<BddManager::NodeRef> cofactors;
  collect_cofactors(mgr, f, w.bound_vars(), 0, &cofactors);
  return cofactors.size();
}

bool bdd_is_decomposable(BddManager& mgr, BddManager::NodeRef f,
                         const InputPartition& w) {
  return bdd_column_multiplicity(mgr, f, w) <= 2;
}

std::optional<InputPartition> bdd_find_decomposable_partition(
    BddManager& mgr, BddManager::NodeRef f, unsigned free_size) {
  const unsigned n = mgr.num_vars();
  if (free_size == 0 || free_size >= n) {
    throw std::invalid_argument(
        "bdd_find_decomposable_partition: bad free size");
  }
  // Enumerate free-variable subsets of the requested size via bitmasks.
  const std::uint64_t limit = std::uint64_t{1} << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (static_cast<unsigned>(__builtin_popcountll(mask)) != free_size) {
      continue;
    }
    std::vector<unsigned> free_vars;
    std::vector<unsigned> bound_vars;
    for (unsigned v = 0; v < n; ++v) {
      if ((mask >> v) & 1) {
        free_vars.push_back(v);
      } else {
        bound_vars.push_back(v);
      }
    }
    InputPartition w(std::move(free_vars), std::move(bound_vars));
    if (bdd_is_decomposable(mgr, f, w)) {
      return w;
    }
  }
  return std::nullopt;
}

}  // namespace adsd
