#include "funcs/continuous.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "support/quantize.hpp"

namespace adsd {

const std::vector<ContinuousSpec>& continuous_specs() {
  static const std::vector<ContinuousSpec> specs = {
      {"cos", 0.0, std::numbers::pi / 2.0, 0.0, 1.0,
       [](double x) { return std::cos(x); }},
      {"tan", 0.0, 2.0 * std::numbers::pi / 5.0, 0.0, 3.08,
       [](double x) { return std::tan(x); }},
      {"exp", 0.0, 3.0, 0.0, 20.09, [](double x) { return std::exp(x); }},
      {"ln", 1.0, 10.0, 0.0, 2.30, [](double x) { return std::log(x); }},
      {"erf", 0.0, 3.0, 0.0, 1.0, [](double x) { return std::erf(x); }},
      {"denoise", 0.0, 3.0, 0.0, 0.81,
       [](double x) { return 0.81 * std::exp(-x * x / 2.0); }},
  };
  return specs;
}

const ContinuousSpec& continuous_spec(const std::string& name) {
  for (const auto& s : continuous_specs()) {
    if (s.name == name) {
      return s;
    }
  }
  throw std::invalid_argument("continuous_spec: unknown function '" + name +
                              "'");
}

TruthTable make_continuous_table(const ContinuousSpec& spec,
                                 unsigned input_bits, unsigned output_bits) {
  const Quantizer in(spec.domain_lo, spec.domain_hi, input_bits);
  const Quantizer out(spec.range_lo, spec.range_hi, output_bits);
  return TruthTable::from_function(
      input_bits, output_bits, [&](std::uint64_t u) {
        return out.encode(spec.fn(in.decode(u)));
      });
}

}  // namespace adsd
