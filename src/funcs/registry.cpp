#include "funcs/registry.hpp"

#include <stdexcept>

#include "funcs/arithmetic.hpp"
#include "funcs/continuous.hpp"

namespace adsd {

const std::vector<BenchmarkCase>& benchmark_suite() {
  static const std::vector<BenchmarkCase> suite = {
      {"cos", true},        {"tan", true},       {"exp", true},
      {"ln", true},         {"erf", true},       {"denoise", true},
      {"brent-kung", false}, {"forwardk2j", false}, {"inversek2j", false},
      {"multiplier", false},
  };
  return suite;
}

unsigned paper_output_bits(const std::string& name, unsigned input_bits) {
  if (name == "brent-kung") {
    return input_bits / 2 + 1;
  }
  return input_bits;
}

TruthTable make_benchmark_table(const std::string& name, unsigned input_bits,
                                unsigned output_bits) {
  if (name == "brent-kung") {
    return make_brent_kung_table(input_bits, output_bits);
  }
  if (name == "multiplier") {
    return make_multiplier_table(input_bits, output_bits);
  }
  if (name == "forwardk2j") {
    return make_forwardk2j_table(input_bits, output_bits);
  }
  if (name == "inversek2j") {
    return make_inversek2j_table(input_bits, output_bits);
  }
  return make_continuous_table(continuous_spec(name), input_bits, output_bits);
}

}  // namespace adsd
