#pragma once

#include <cstdint>

#include "boolean/truth_table.hpp"

namespace adsd {

/// Gate-level Brent-Kung parallel-prefix addition of two `bits`-wide
/// operands. Returns the (bits+1)-bit sum computed through the actual
/// prefix network (generate/propagate up-sweep + down-sweep), not through
/// the machine adder — the network is the circuit AxBench's Brent-Kung
/// benchmark tabulates.
std::uint64_t brent_kung_add(std::uint64_t a, std::uint64_t b, unsigned bits);

/// Gate-level unsigned array multiplication (`bits` x `bits` -> 2*bits) via
/// rows of full/half adders.
std::uint64_t array_multiply(std::uint64_t a, std::uint64_t b, unsigned bits);

/// Truth table of the Brent-Kung adder benchmark: the n-bit input word
/// splits into two n/2-bit operands; the output is their (n/2+1)-bit sum.
/// Precondition: n even, output_bits == n/2 + 1.
TruthTable make_brent_kung_table(unsigned input_bits, unsigned output_bits);

/// Truth table of the multiplier benchmark: two n/2-bit operands, n-bit
/// product. Precondition: n even, output_bits == n.
TruthTable make_multiplier_table(unsigned input_bits, unsigned output_bits);

/// Truth table of the forward-kinematics benchmark (forwardk2j): the input
/// word splits into two angle codes over [0, pi/2]; the output is the
/// quantized x-coordinate of a two-joint arm with unit half-links,
/// x = 0.5 cos(t1) + 0.5 cos(t1 + t2). Precondition: n even.
TruthTable make_forwardk2j_table(unsigned input_bits, unsigned output_bits);

/// Truth table of the inverse-kinematics benchmark (inversek2j): the input
/// word splits into two coordinate codes over [0.05, 1.0]; the output is the
/// quantized elbow angle acos((x^2 + y^2 - 0.5) / 0.5) over [0, pi].
/// Precondition: n even.
TruthTable make_inversek2j_table(unsigned input_bits, unsigned output_bits);

}  // namespace adsd
