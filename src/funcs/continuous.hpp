#pragma once

#include <functional>
#include <string>
#include <vector>

#include "boolean/truth_table.hpp"

namespace adsd {

/// A real-valued function together with the domain/range used to quantize
/// it into a LUT benchmark (Table 1 of the paper).
struct ContinuousSpec {
  std::string name;
  double domain_lo;
  double domain_hi;
  double range_lo;
  double range_hi;
  std::function<double(double)> fn;
};

/// The six continuous benchmarks of the paper with their published domains
/// and ranges: cos, tan, exp, ln, erf, denoise.
///
/// `denoise` is reconstructed as 0.81 * exp(-x^2 / 2) on [0, 3] -> [0, 0.81]
/// (the paper specifies only the domain and range; see DESIGN.md).
const std::vector<ContinuousSpec>& continuous_specs();

/// Lookup by name; throws std::invalid_argument for unknown names.
const ContinuousSpec& continuous_spec(const std::string& name);

/// Quantizes `spec.fn` into an n-input, m-output truth table: input code u
/// decodes to a domain sample, the image is encoded with the range
/// quantizer (saturating).
TruthTable make_continuous_table(const ContinuousSpec& spec,
                                 unsigned input_bits, unsigned output_bits);

}  // namespace adsd
