#pragma once

#include <string>
#include <vector>

#include "boolean/truth_table.hpp"

namespace adsd {

/// One entry of the paper's benchmark suite: six continuous functions and
/// four arithmetic circuits from AxBench.
struct BenchmarkCase {
  std::string name;
  bool continuous;
};

/// The ten benchmarks in the order the paper lists them.
const std::vector<BenchmarkCase>& benchmark_suite();

/// Output width used by the paper's large-scale experiment (n = 16):
/// 16 for every benchmark except Brent-Kung, which produces a 9-bit sum.
unsigned paper_output_bits(const std::string& name, unsigned input_bits);

/// Builds the truth table for a named benchmark at the given widths.
/// Throws std::invalid_argument for unknown names or incompatible widths.
TruthTable make_benchmark_table(const std::string& name, unsigned input_bits,
                                unsigned output_bits);

}  // namespace adsd
