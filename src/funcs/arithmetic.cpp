#include "funcs/arithmetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "support/quantize.hpp"

namespace adsd {

namespace {

void check_operand_width(unsigned bits) {
  if (bits == 0 || bits > 31) {
    throw std::invalid_argument("arithmetic: operand width must be in [1,31]");
  }
}

struct GenProp {
  bool g;
  bool p;
};

GenProp combine(const GenProp& hi, const GenProp& lo) {
  return {hi.g || (hi.p && lo.g), hi.p && lo.p};
}

/// Sum bit via full adder logic.
bool full_adder_sum(bool a, bool b, bool cin) { return a ^ b ^ cin; }
bool full_adder_carry(bool a, bool b, bool cin) {
  return (a && b) || (cin && (a ^ b));
}

}  // namespace

std::uint64_t brent_kung_add(std::uint64_t a, std::uint64_t b, unsigned bits) {
  check_operand_width(bits);
  std::vector<bool> p(bits), g(bits);
  std::vector<GenProp> prefix(bits);
  for (unsigned i = 0; i < bits; ++i) {
    const bool ai = (a >> i) & 1;
    const bool bi = (b >> i) & 1;
    p[i] = ai ^ bi;
    g[i] = ai && bi;
    prefix[i] = {g[i], p[i]};
  }

  // Brent-Kung up-sweep: build the sparse prefix tree.
  for (unsigned d = 1; d < bits; d *= 2) {
    for (unsigned i = 2 * d - 1; i < bits; i += 2 * d) {
      prefix[i] = combine(prefix[i], prefix[i - d]);
    }
  }
  // Down-sweep: fill in the remaining prefixes.
  unsigned top = 1;
  while (top * 2 < bits) {
    top *= 2;
  }
  for (unsigned d = top; d >= 1; d /= 2) {
    for (unsigned i = 3 * d - 1; i < bits; i += 2 * d) {
      prefix[i] = combine(prefix[i], prefix[i - d]);
    }
    if (d == 1) {
      break;
    }
  }

  // prefix[i].g is the carry out of position i; c_0 = 0.
  std::uint64_t sum = 0;
  bool carry_in = false;
  for (unsigned i = 0; i < bits; ++i) {
    if (full_adder_sum(p[i], false, carry_in)) {
      sum |= std::uint64_t{1} << i;
    }
    carry_in = prefix[i].g;
  }
  if (carry_in) {
    sum |= std::uint64_t{1} << bits;
  }
  return sum;
}

std::uint64_t array_multiply(std::uint64_t a, std::uint64_t b, unsigned bits) {
  check_operand_width(bits);
  // Accumulator of 2*bits result bits, updated one partial-product row at a
  // time with an explicit ripple of full adders.
  std::vector<bool> acc(2 * bits, false);
  for (unsigned j = 0; j < bits; ++j) {
    if (((b >> j) & 1) == 0) {
      continue;
    }
    bool carry = false;
    for (unsigned i = 0; i < bits; ++i) {
      const bool pp = (a >> i) & 1;
      const bool s = full_adder_sum(acc[i + j], pp, carry);
      carry = full_adder_carry(acc[i + j], pp, carry);
      acc[i + j] = s;
    }
    // Propagate the final carry up the accumulator.
    for (unsigned i = bits + j; carry && i < 2 * bits; ++i) {
      const bool s = acc[i] ^ carry;
      carry = acc[i] && carry;
      acc[i] = s;
    }
  }
  std::uint64_t out = 0;
  for (unsigned i = 0; i < 2 * bits; ++i) {
    if (acc[i]) {
      out |= std::uint64_t{1} << i;
    }
  }
  return out;
}

namespace {

void check_even_inputs(unsigned input_bits) {
  if (input_bits < 2 || input_bits % 2 != 0) {
    throw std::invalid_argument(
        "arithmetic benchmark: input width must be even and >= 2");
  }
}

}  // namespace

TruthTable make_brent_kung_table(unsigned input_bits, unsigned output_bits) {
  check_even_inputs(input_bits);
  const unsigned half = input_bits / 2;
  if (output_bits != half + 1) {
    throw std::invalid_argument(
        "make_brent_kung_table: output width must be n/2 + 1");
  }
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  return TruthTable::from_function(
      input_bits, output_bits, [&](std::uint64_t u) {
        return brent_kung_add(u & mask, u >> half, half);
      });
}

TruthTable make_multiplier_table(unsigned input_bits, unsigned output_bits) {
  check_even_inputs(input_bits);
  const unsigned half = input_bits / 2;
  if (output_bits != input_bits) {
    throw std::invalid_argument(
        "make_multiplier_table: output width must equal input width");
  }
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  return TruthTable::from_function(
      input_bits, output_bits, [&](std::uint64_t u) {
        return array_multiply(u & mask, u >> half, half);
      });
}

TruthTable make_forwardk2j_table(unsigned input_bits, unsigned output_bits) {
  check_even_inputs(input_bits);
  const unsigned half = input_bits / 2;
  const Quantizer angle(0.0, std::numbers::pi / 2.0, half);
  // x = 0.5 cos(t1) + 0.5 cos(t1 + t2) with t1, t2 in [0, pi/2]:
  // maximum 1 at t1 = t2 = 0, minimum -0.5 at t1 = pi/2, t2 = pi/2.
  const Quantizer out(-0.5, 1.0, output_bits);
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  return TruthTable::from_function(
      input_bits, output_bits, [&](std::uint64_t u) {
        const double t1 = angle.decode(u & mask);
        const double t2 = angle.decode(u >> half);
        return out.encode(0.5 * std::cos(t1) + 0.5 * std::cos(t1 + t2));
      });
}

TruthTable make_inversek2j_table(unsigned input_bits, unsigned output_bits) {
  check_even_inputs(input_bits);
  const unsigned half = input_bits / 2;
  const Quantizer coord(0.05, 1.0, half);
  const Quantizer out(0.0, std::numbers::pi, output_bits);
  const std::uint64_t mask = (std::uint64_t{1} << half) - 1;
  return TruthTable::from_function(
      input_bits, output_bits, [&](std::uint64_t u) {
        const double x = coord.decode(u & mask);
        const double y = coord.decode(u >> half);
        // Two-joint arm with l1 = l2 = 0.5:
        // cos(t2) = (x^2 + y^2 - l1^2 - l2^2) / (2 l1 l2).
        double c = (x * x + y * y - 0.5) / 0.5;
        if (c > 1.0) {
          c = 1.0;
        } else if (c < -1.0) {
          c = -1.0;
        }
        return out.encode(std::acos(c));
      });
}

}  // namespace adsd
