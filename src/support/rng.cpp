#include "support/rng.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace adsd {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) {
    s = splitmix64(sm);
  }
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) {
    s_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) {
    throw std::invalid_argument("Rng::next_below: bound must be positive");
  }
  // Lemire-style rejection: accept when the draw falls in the largest
  // multiple of `bound` that fits in 2^64.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) {
  return lo + (hi - lo) * next_double();
}

double Rng::next_gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = next_double();
  while (u1 <= 0.0) {
    u1 = next_double();
  }
  const double u2 = next_double();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = i;
  }
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = next_below(i);
    std::swap(p[i - 1], p[j]);
  }
  return p;
}

Rng Rng::fork() {
  return Rng(next_u64() ^ 0xd1b54a32d192ed03ull);
}

}  // namespace adsd
