#include "support/table.hpp"

#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace adsd {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table: need at least one column");
  }
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() > headers_.size()) {
    throw std::invalid_argument("Table::add_row: more cells than columns");
  }
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c]))
         << row[c] << " |";
    }
    os << "\n";
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };

  print_rule();
  print_row(headers_);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row);
  }
  print_rule();
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) {
        os << ",";
      }
      // Quote cells containing separators.
      if (row[c].find_first_of(",\"\n") != std::string::npos) {
        os << '"';
        for (char ch : row[c]) {
          if (ch == '"') {
            os << "\"\"";
          } else {
            os << ch;
          }
        }
        os << '"';
      } else {
        os << row[c];
      }
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) {
    emit(row);
  }
}

}  // namespace adsd
