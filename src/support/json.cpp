#include "support/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace adsd::json {

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::runtime_error("json: " + what + " at byte " +
                           std::to_string(pos));
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {
    // Tolerate a UTF-8 BOM so artifacts round-trip through editors.
    if (text_.substr(0, 3) == "\xef\xbb\xbf") {
      pos_ = 3;
    }
  }

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail(pos_, "trailing garbage");
    }
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail(pos_, "unexpected end of input");
    }
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(pos_, std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"':
        return Value::make_string(parse_string());
      case 't':
        if (consume_literal("true")) {
          return Value::make_bool(true);
        }
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) {
          return Value::make_bool(false);
        }
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) {
          return Value::make_null();
        }
        fail(pos_, "bad literal");
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    std::map<std::string, Value> members;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Value::make_object(std::move(members));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      members.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Value::make_object(std::move(members));
    }
  }

  Value parse_array() {
    expect('[');
    std::vector<Value> items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Value::make_array(std::move(items));
    }
    while (true) {
      items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Value::make_array(std::move(items));
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        fail(pos_ - 1, "raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          append_utf8(out, parse_hex4());
          break;
        default:
          fail(pos_ - 1, "bad escape");
      }
    }
  }

  std::uint32_t parse_hex4() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = peek();
      ++pos_;
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        fail(pos_ - 1, "bad \\u escape");
      }
    }
    return v;
  }

  void append_utf8(std::string& out, std::uint32_t cp) {
    // Surrogate pairs: a high surrogate must be followed by \uDC00-\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (!consume_literal("\\u")) {
        fail(pos_, "lone high surrogate");
      }
      const std::uint32_t lo = parse_hex4();
      if (lo < 0xDC00 || lo > 0xDFFF) {
        fail(pos_, "bad low surrogate");
      }
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail(pos_, "lone low surrogate");
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') {
      ++pos_;
    }
    if (!std::isdigit(static_cast<unsigned char>(peek()))) {
      fail(pos_, "bad number");
    }
    const std::size_t int_start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail(int_start, "leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail(pos_, "bad fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        fail(pos_, "bad exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    double v = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (res.ec != std::errc{}) {
      fail(start, "unrepresentable number");
    }
    return Value::make_number(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Value::as_bool() const {
  if (kind_ != Kind::kBool) {
    throw std::runtime_error("json: not a bool");
  }
  return bool_;
}

double Value::as_number() const {
  if (kind_ != Kind::kNumber) {
    throw std::runtime_error("json: not a number");
  }
  return number_;
}

const std::string& Value::as_string() const {
  if (kind_ != Kind::kString) {
    throw std::runtime_error("json: not a string");
  }
  return string_;
}

const std::vector<Value>& Value::as_array() const {
  if (kind_ != Kind::kArray) {
    throw std::runtime_error("json: not an array");
  }
  return array_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (kind_ != Kind::kObject) {
    throw std::runtime_error("json: not an object");
  }
  return object_;
}

const Value& Value::at(std::string_view key) const {
  const Value* v = find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
  }
  return *v;
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) {
    return nullptr;
  }
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

Value Value::make_bool(bool b) {
  Value v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}

Value Value::make_number(double n) {
  Value v;
  v.kind_ = Kind::kNumber;
  v.number_ = n;
  return v;
}

Value Value::make_string(std::string s) {
  Value v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}

Value Value::make_array(std::vector<Value> items) {
  Value v;
  v.kind_ = Kind::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::make_object(std::map<std::string, Value> members) {
  Value v;
  v.kind_ = Kind::kObject;
  v.object_ = std::move(members);
  return v;
}

Value parse(std::string_view text) {
  return Parser(text).parse_document();
}

namespace {

void write_json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\r':
        out << "\\r";
        break;
      case '\t':
        out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_json_number(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  // Exact integers below 2^53 print without a decimal point, so counters
  // and bit budgets stay readable; everything else round-trips via %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9007199254740992.0) {
    out << static_cast<long long>(v);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void write_indent(std::ostream& out, int depth) {
  for (int i = 0; i < depth; ++i) {
    out << ' ';
  }
}

}  // namespace

void write(std::ostream& out, const Value& value, int indent) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      out << "null";
      return;
    case Value::Kind::kBool:
      out << (value.as_bool() ? "true" : "false");
      return;
    case Value::Kind::kNumber:
      write_json_number(out, value.as_number());
      return;
    case Value::Kind::kString:
      write_json_string(out, value.as_string());
      return;
    case Value::Kind::kArray: {
      const auto& items = value.as_array();
      if (items.empty()) {
        out << "[]";
        return;
      }
      out << "[";
      bool first = true;
      for (const Value& item : items) {
        out << (first ? "\n" : ",\n");
        first = false;
        write_indent(out, indent + 1);
        write(out, item, indent + 1);
      }
      out << "\n";
      write_indent(out, indent);
      out << "]";
      return;
    }
    case Value::Kind::kObject: {
      const auto& members = value.as_object();
      if (members.empty()) {
        out << "{}";
        return;
      }
      out << "{";
      bool first = true;
      for (const auto& [key, member] : members) {
        out << (first ? "\n" : ",\n");
        first = false;
        write_indent(out, indent + 1);
        write_json_string(out, key);
        out << ": ";
        write(out, member, indent + 1);
      }
      out << "\n";
      write_indent(out, indent);
      out << "}";
      return;
    }
  }
}

std::string dump(const Value& value) {
  std::ostringstream out;
  write(out, value, 0);
  out << "\n";
  return out.str();
}

}  // namespace adsd::json
