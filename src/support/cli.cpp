#include "support/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace adsd {

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) {
    program_ = argv[0];
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      options_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--name value` unless the next token is itself an option or absent.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      options_[arg] = argv[i + 1];
      ++i;
    } else {
      options_[arg] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return options_.count(name) != 0;
}

std::optional<std::string> CliArgs::raw(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::string CliArgs::get_string(const std::string& name,
                                std::string fallback) const {
  const auto v = raw(name);
  return v ? *v : fallback;
}

int CliArgs::get_int(const std::string& name, int fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) {
    return fallback;
  }
  return std::stoi(*v);
}

std::size_t CliArgs::get_size(const std::string& name,
                              std::size_t fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) {
    return fallback;
  }
  const long long parsed = std::stoll(*v);
  if (parsed < 0) {
    throw std::invalid_argument("--" + name + " must be non-negative");
  }
  return static_cast<std::size_t>(parsed);
}

std::size_t CliArgs::get_positive_size(const std::string& name,
                                       std::size_t fallback) const {
  const auto v = raw(name);
  if (!v) {
    return fallback;
  }
  unsigned long long parsed = 0;
  const char* begin = v->data();
  const char* end = begin + v->size();
  const auto [ptr, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc{} || ptr != end || parsed == 0) {
    throw std::invalid_argument("--" + name +
                                ": expected a positive integer, got '" + *v +
                                "'");
  }
  return static_cast<std::size_t>(parsed);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v || v->empty()) {
    return fallback;
  }
  return std::stod(*v);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) {
    return fallback;
  }
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on") {
    return true;
  }
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") {
    return false;
  }
  throw std::invalid_argument("--" + name + ": expected a boolean, got '" +
                              *v + "'");
}

}  // namespace adsd
