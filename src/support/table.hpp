#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace adsd {

/// Column-aligned ASCII table used by the benchmark harnesses to print
/// paper-style result tables; can also emit CSV for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds one row. Rows shorter than the header are padded with empty cells;
  /// longer rows throw.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace adsd
