#include "support/log.hpp"

#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <mutex>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include "support/metrics.hpp"

namespace adsd {

namespace {

// JSON string escaping for the hand-rolled line serializer (the json::Value
// path would allocate a tree per record; log lines are flat and hot enough
// to format directly, like trace.cpp does for Chrome events).
void append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no Inf/NaN; stringify like the qor writer does.
    append_escaped(out, std::isnan(v) ? "nan" : (v > 0 ? "inf" : "-inf"));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

// Process-stable small thread ordinal for the "thread" field (the raw
// std::thread::id is opaque and unstable across runs).
std::uint32_t thread_ordinal() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "info";
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "off") return LogLevel::kOff;
  return std::nullopt;
}

const char* log_level_roster() { return "debug, info, warn, error, off"; }

LogLevel parse_log_level_or_throw(std::string_view name) {
  const auto level = parse_log_level(name);
  if (!level.has_value()) {
    throw std::invalid_argument("unknown log level '" + std::string(name) +
                                "' (accepted: " + log_level_roster() + ")");
  }
  return *level;
}

bool TokenBucket::try_acquire(std::uint64_t now_ns, double rate_per_s,
                              double burst) {
  while (lock_.test_and_set(std::memory_order_acquire)) {
  }
  if (!primed_) {
    primed_ = true;
    tokens_ = burst;
    last_ns_ = now_ns;
  } else if (now_ns > last_ns_) {
    tokens_ += static_cast<double>(now_ns - last_ns_) * 1e-9 * rate_per_s;
    if (tokens_ > burst) {
      tokens_ = burst;
    }
    last_ns_ = now_ns;
  }
  const bool ok = tokens_ >= 1.0;
  if (ok) {
    tokens_ -= 1.0;
  }
  lock_.clear(std::memory_order_release);
  return ok;
}

/// SPSC ring of pre-serialized lines: the owning thread produces, the drain
/// (writer thread or an explicit flush()) consumes. head_/tail_ are
/// monotone; slot content is published by the head_ release store.
struct Logger::ThreadBuffer {
  explicit ThreadBuffer(std::size_t capacity_in)
      : capacity(capacity_in), slots(capacity_in) {}

  const std::size_t capacity;
  std::vector<std::string> slots;
  std::atomic<std::uint64_t> head{0};  // next write (producer only)
  std::atomic<std::uint64_t> tail{0};  // next read (consumer only)
  std::uint32_t thread = 0;

  bool push(std::string&& line) {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    if (h - tail.load(std::memory_order_acquire) >= capacity) {
      return false;
    }
    slots[h % capacity] = std::move(line);
    head.store(h + 1, std::memory_order_release);
    return true;
  }
};

struct Logger::Impl {
  Options options;
  std::ofstream file;
  std::ostream* out = nullptr;

  std::mutex buffers_mutex;
  // Owned forever (cleared only when fully drained and closed with no
  // producers left — i.e. never freed mid-flight); one entry per thread
  // that ever logged while this logger was open.
  std::vector<std::unique_ptr<ThreadBuffer>> buffers;

  std::mutex run_mutex;
  std::string run_id;
  std::string parent_id;

  std::mutex tail_mutex;
  std::vector<std::string> tail_ring;  // circular, tail_head = oldest
  std::size_t tail_head = 0;

  std::mutex drain_mutex;
  std::mutex wake_mutex;
  std::condition_variable wake;
  bool stop = false;
  std::thread writer;
};

std::atomic<Logger*>& Logger::armed_ptr() {
  static std::atomic<Logger*> ptr{nullptr};
  return ptr;
}

Logger& Logger::global() {
  // Leaked on purpose (like MetricsRegistry::global's static): a stale
  // armed() pointer loaded just before the last disarm must stay valid.
  static Logger* instance = new Logger();
  return *instance;
}

namespace {
std::mutex g_arm_mutex;
int g_arm_count = 0;
}  // namespace

void Logger::arm(const Options& options) {
  std::lock_guard<std::mutex> lock(g_arm_mutex);
  Logger& logger = global();
  if (g_arm_count == 0) {
    logger.open(options);
    armed_ptr().store(&logger, std::memory_order_release);
  } else {
    // Nested contexts join the open sink; only provenance refreshes.
    logger.set_run(options.run_id, options.parent_id);
  }
  ++g_arm_count;
}

void Logger::disarm() {
  std::lock_guard<std::mutex> lock(g_arm_mutex);
  if (g_arm_count <= 0) {
    return;
  }
  if (--g_arm_count == 0) {
    armed_ptr().store(nullptr, std::memory_order_release);
    global().close();
  }
}

std::string Logger::mint_run_id() {
  // OS entropy + a process-local counter; independent of every solver RNG
  // stream, so minting can never perturb results.
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x = std::random_device{}();
  x = (x << 32) ^ std::random_device{}();
  x ^= static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  x ^= counter.fetch_add(1, std::memory_order_relaxed) * 0x9e3779b97f4a7c15ull;
  // One splitmix64 finalizer round so consecutive mints share no pattern.
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(x));
  return std::string(buf);
}

void Logger::open(const Options& options) {
  Impl* impl = new Impl();
  impl->options = options;
  if (!options.path.empty() && options.path != "-") {
    impl->file.open(options.path, std::ios::out | std::ios::trunc);
    if (!impl->file) {
      delete impl;
      throw std::runtime_error("cannot open log file: " + options.path);
    }
    impl->out = &impl->file;
  } else {
    impl->out = &std::clog;
  }
  impl->run_id = options.run_id;
  impl->parent_id = options.parent_id;
  impl->tail_ring.reserve(options.tail_capacity);
  impl_.store(impl, std::memory_order_release);
  exported_emitted_ = 0;
  exported_dropped_ = 0;
  exported_rate_limited_ = 0;
  emitted_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  rate_limited_.store(0, std::memory_order_relaxed);
  threshold_.store(static_cast<std::uint8_t>(options.level),
                   std::memory_order_relaxed);
  if (options.async) {
    impl->writer = std::thread([this, impl] {
      std::unique_lock<std::mutex> wake_lock(impl->wake_mutex);
      while (!impl->stop) {
        impl->wake.wait_for(wake_lock, std::chrono::milliseconds(50));
        wake_lock.unlock();
        drain_once();
        wake_lock.lock();
      }
    });
  }
}

void Logger::close() {
  Impl* impl = impl_.load(std::memory_order_acquire);
  if (impl == nullptr) {
    return;
  }
  threshold_.store(static_cast<std::uint8_t>(LogLevel::kOff),
                   std::memory_order_relaxed);
  if (impl->writer.joinable()) {
    {
      std::lock_guard<std::mutex> wake_lock(impl->wake_mutex);
      impl->stop = true;
    }
    impl->wake.notify_all();
    impl->writer.join();
  }
  drain_once();
  impl->out->flush();
  impl_.store(nullptr, std::memory_order_release);
  // The Impl (and its rings) is leaked on purpose: a producer that loaded
  // armed() just before the close may still be completing one log() call.
  // Bounded by arm cycles per process, each a few KiB.
}

Logger::ThreadBuffer& Logger::buffer_for_thread(Impl& impl) {
  thread_local ThreadBuffer* cached = nullptr;
  thread_local Impl* cached_impl = nullptr;
  if (cached != nullptr && cached_impl == &impl) {
    return *cached;
  }
  std::lock_guard<std::mutex> lock(impl.buffers_mutex);
  impl.buffers.push_back(
      std::make_unique<ThreadBuffer>(impl.options.ring_capacity));
  cached = impl.buffers.back().get();
  cached->thread = thread_ordinal();
  cached_impl = &impl;
  return *cached;
}

void Logger::log(LogSite& site, LogLevel level, std::string_view message,
                 std::initializer_list<LogField> fields) {
  Impl* impl = impl_.load(std::memory_order_acquire);
  if (impl == nullptr || level == LogLevel::kOff) {
    return;
  }

  const std::uint64_t now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  if (!site.bucket.try_acquire(now_ns, impl->options.site_rate_per_s,
                               impl->options.site_burst)) {
    site.suppressed.fetch_add(1, std::memory_order_relaxed);
    rate_limited_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const std::uint64_t suppressed =
      site.suppressed.exchange(0, std::memory_order_relaxed);

  const double ts =
      std::chrono::duration<double>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();

  std::string line;
  line.reserve(192);
  line += "{\"schema\":\"adsd-log-v1\",\"ts\":";
  char ts_buf[40];
  std::snprintf(ts_buf, sizeof(ts_buf), "%.6f", ts);
  line += ts_buf;
  line += ",\"level\":\"";
  line += log_level_name(level);
  line += "\",\"thread\":";
  line += std::to_string(thread_ordinal());
  line += ",\"component\":";
  append_escaped(line, site.component);
  line += ",\"run_id\":";
  {
    std::lock_guard<std::mutex> run_lock(impl->run_mutex);
    append_escaped(line, impl->run_id);
    if (!impl->parent_id.empty()) {
      line += ",\"parent_id\":";
      append_escaped(line, impl->parent_id);
    }
  }
  line += ",\"msg\":";
  append_escaped(line, message);
  if (suppressed > 0) {
    line += ",\"suppressed\":";
    line += std::to_string(suppressed);
  }
  line += ",\"fields\":{";
  bool first = true;
  for (const LogField& field : fields) {
    if (!first) {
      line.push_back(',');
    }
    first = false;
    append_escaped(line, field.key);
    line.push_back(':');
    switch (field.value.kind()) {
      case LogValue::Kind::kString:
        append_escaped(line, field.value.string_value());
        break;
      case LogValue::Kind::kInt:
        line += std::to_string(field.value.int_value());
        break;
      case LogValue::Kind::kUint:
        line += std::to_string(field.value.uint_value());
        break;
      case LogValue::Kind::kDouble:
        append_double(line, field.value.double_value());
        break;
      case LogValue::Kind::kBool:
        line += field.value.bool_value() ? "true" : "false";
        break;
    }
  }
  line += "}}";

  // Tail replay ring first: a record that reaches the postmortem tail but
  // is then ring-dropped is better than the reverse.
  if (impl->options.tail_capacity > 0) {
    std::lock_guard<std::mutex> tail_lock(impl->tail_mutex);
    if (impl->tail_ring.size() < impl->options.tail_capacity) {
      impl->tail_ring.push_back(line);
    } else {
      impl->tail_ring[impl->tail_head] = line;
      impl->tail_head = (impl->tail_head + 1) % impl->options.tail_capacity;
    }
  }

  if (!buffer_for_thread(*impl).push(std::move(line))) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (impl->options.async) {
    impl->wake.notify_one();
  }
}

void Logger::drain_once() {
  Impl* impl = impl_.load(std::memory_order_acquire);
  if (impl == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> drain_lock(impl->drain_mutex);
  std::size_t buffer_count = 0;
  {
    std::lock_guard<std::mutex> lock(impl->buffers_mutex);
    buffer_count = impl->buffers.size();
  }
  std::uint64_t written = 0;
  for (std::size_t i = 0; i < buffer_count; ++i) {
    ThreadBuffer* buffer = nullptr;
    {
      std::lock_guard<std::mutex> lock(impl->buffers_mutex);
      buffer = impl->buffers[i].get();
    }
    std::uint64_t t = buffer->tail.load(std::memory_order_relaxed);
    const std::uint64_t h = buffer->head.load(std::memory_order_acquire);
    for (; t < h; ++t) {
      std::string& slot = buffer->slots[t % buffer->capacity];
      (*impl->out) << slot << '\n';
      slot.clear();
      ++written;
      buffer->tail.store(t + 1, std::memory_order_release);
    }
  }
  if (written > 0) {
    emitted_.fetch_add(written, std::memory_order_relaxed);
    impl->out->flush();
  }
  // Re-export drop/suppression totals as process metrics (the
  // adsd_metrics_dropped_total discipline) so saturation shows up in a
  // scrape, not just in this logger's own counters.
  if (MetricsRegistry* m = MetricsRegistry::armed()) {
    const auto export_delta = [&](std::uint64_t now, std::uint64_t& exported,
                                  const char* name) {
      if (now > exported) {
        m->counter(name).add(now - exported);
        exported = now;
      }
    };
    export_delta(emitted_.load(std::memory_order_relaxed), exported_emitted_,
                 "log_records_total");
    export_delta(dropped_.load(std::memory_order_relaxed), exported_dropped_,
                 "log_dropped_total");
    export_delta(rate_limited_.load(std::memory_order_relaxed),
                 exported_rate_limited_, "log_rate_limited_total");
  }
}

void Logger::flush() {
  drain_once();
}

void Logger::set_run(std::string run_id, std::string parent_id) {
  Impl* impl = impl_.load(std::memory_order_acquire);
  if (impl == nullptr) {
    return;
  }
  std::lock_guard<std::mutex> run_lock(impl->run_mutex);
  if (!run_id.empty()) {
    impl->run_id = std::move(run_id);
  }
  impl->parent_id = std::move(parent_id);
}

std::vector<std::string> Logger::tail() const {
  Impl* impl = impl_.load(std::memory_order_acquire);
  std::vector<std::string> out;
  if (impl == nullptr) {
    return out;
  }
  std::lock_guard<std::mutex> tail_lock(impl->tail_mutex);
  const std::size_t size = impl->tail_ring.size();
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    out.push_back(impl->tail_ring[(impl->tail_head + i) % size]);
  }
  return out;
}

}  // namespace adsd
