#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace adsd::json {

/// Minimal read-only JSON document model: just enough to load and validate
/// the observability artifacts this repo emits (telemetry reports, Chrome
/// trace_event files, run reports) without an external dependency. Parsing
/// is strict RFC-8259 except that it accepts (and ignores) a UTF-8 BOM; on
/// malformed input parse() throws std::runtime_error with a byte offset.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw std::runtime_error on kind mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::map<std::string, Value>& as_object() const;

  /// Object member lookup; throws if not an object or the key is absent.
  const Value& at(std::string_view key) const;

  /// Object member lookup returning nullptr when absent (or not an object).
  const Value* find(std::string_view key) const;

  bool contains(std::string_view key) const { return find(key) != nullptr; }

  static Value make_null() { return Value(); }
  static Value make_bool(bool b);
  static Value make_number(double n);
  static Value make_string(std::string s);
  static Value make_array(std::vector<Value> items);
  static Value make_object(std::map<std::string, Value> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected). Throws std::runtime_error on malformed input.
Value parse(std::string_view text);

/// Serializes a Value as RFC 8259 JSON. Object keys come out sorted (the
/// document model is a std::map), so output is stable across runs — the
/// property the committed bench/QoR baselines rely on for reviewable diffs.
/// Numbers that hold an exact integer below 2^53 print without a decimal
/// point; everything else uses round-trippable %.17g. Non-finite numbers
/// serialize as null (RFC 8259 has no representation for them).
/// `indent` is the starting indentation depth (one space per level, matching
/// the hand-written artifact writers elsewhere in the repo).
void write(std::ostream& out, const Value& value, int indent = 0);

/// write() into a string.
std::string dump(const Value& value);

}  // namespace adsd::json
