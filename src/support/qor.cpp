#include "support/qor.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

#include "support/json.hpp"

namespace adsd {
namespace {

json::Value num(double v) { return json::Value::make_number(v); }
json::Value num(std::uint64_t v) {
  return json::Value::make_number(static_cast<double>(v));
}
json::Value str(std::string s) {
  return json::Value::make_string(std::move(s));
}

}  // namespace

QorRecorder::QorRecorder(std::size_t curve_capacity)
    : curve_capacity_(curve_capacity) {}

void QorRecorder::add(std::string_view name, double delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

void QorRecorder::sample(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = samples_.find(name);
  if (it == samples_.end()) {
    it = samples_.emplace(std::string(name), Dist{}).first;
  }
  Dist& d = it->second;
  if (d.count == 0 || value < d.min) {
    d.min = value;
  }
  if (d.count == 0 || value > d.max) {
    d.max = value;
  }
  d.sum += value;
  ++d.count;
}

void QorRecorder::record_output(OutputRecord rec) {
  std::lock_guard<std::mutex> lock(mutex_);
  decisions_.push_back(std::move(rec));
}

std::uint64_t QorRecorder::begin_curve(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  curves_.push_back(Curve{std::string(name), {}});
  return static_cast<std::uint64_t>(curves_.size() - 1);
}

void QorRecorder::curve_point(std::uint64_t id, std::uint64_t iteration,
                              double best_energy) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (id >= curves_.size()) {
    return;
  }
  if (curve_points_ >= curve_capacity_) {
    ++dropped_;
    return;
  }
  curves_[id].points.emplace_back(iteration, best_energy);
  ++curve_points_;
}

void QorRecorder::record_final(Final fin) {
  std::lock_guard<std::mutex> lock(mutex_);
  finals_.push_back(std::move(fin));
}

std::uint64_t QorRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

bool QorRecorder::has_final() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !finals_.empty();
}

QorRecorder::Final QorRecorder::final_summary() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finals_.empty()) {
    throw std::runtime_error("QorRecorder: no final summary recorded");
  }
  return finals_.back();
}

double QorRecorder::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0.0 : it->second;
}

std::size_t QorRecorder::curve_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return curves_.size();
}

std::size_t QorRecorder::decision_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_.size();
}

void QorRecorder::write_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);

  std::map<std::string, json::Value> root;
  root.emplace("schema", str("adsd-qor-v1"));
  if (!run_id_.empty()) {
    root.emplace("run_id", str(run_id_));
  }
  if (!parent_id_.empty()) {
    root.emplace("parent_id", str(parent_id_));
  }

  std::map<std::string, json::Value> counters;
  for (const auto& [name, value] : counters_) {
    counters.emplace(name, num(value));
  }
  root.emplace("counters", json::Value::make_object(std::move(counters)));

  std::map<std::string, json::Value> samples;
  for (const auto& [name, d] : samples_) {
    std::map<std::string, json::Value> obj;
    obj.emplace("count", num(d.count));
    obj.emplace("min", num(d.min));
    obj.emplace("max", num(d.max));
    obj.emplace("sum", num(d.sum));
    obj.emplace("mean", num(d.count > 0
                                ? d.sum / static_cast<double>(d.count)
                                : 0.0));
    samples.emplace(name, json::Value::make_object(std::move(obj)));
  }
  root.emplace("samples", json::Value::make_object(std::move(samples)));

  std::vector<json::Value> decisions;
  decisions.reserve(decisions_.size());
  for (const OutputRecord& rec : decisions_) {
    std::map<std::string, json::Value> obj;
    obj.emplace("stage", str(rec.stage));
    obj.emplace("round", num(rec.round));
    obj.emplace("output", num(rec.output));
    obj.emplace("tried", num(rec.tried));
    obj.emplace("best_objective", num(rec.best_objective));
    obj.emplace("worst_objective", num(rec.worst_objective));
    obj.emplace("error_rate", num(rec.error_rate));
    decisions.push_back(json::Value::make_object(std::move(obj)));
  }
  root.emplace("decisions", json::Value::make_array(std::move(decisions)));

  std::vector<json::Value> curves;
  curves.reserve(curves_.size());
  for (const Curve& curve : curves_) {
    std::map<std::string, json::Value> obj;
    obj.emplace("name", str(curve.name));
    std::vector<json::Value> iters;
    std::vector<json::Value> energies;
    iters.reserve(curve.points.size());
    energies.reserve(curve.points.size());
    for (const auto& [iteration, energy] : curve.points) {
      iters.push_back(num(iteration));
      energies.push_back(num(energy));
    }
    obj.emplace("iterations", json::Value::make_array(std::move(iters)));
    obj.emplace("best_energy", json::Value::make_array(std::move(energies)));
    curves.push_back(json::Value::make_object(std::move(obj)));
  }
  root.emplace("curves", json::Value::make_array(std::move(curves)));

  std::vector<json::Value> finals;
  finals.reserve(finals_.size());
  for (const Final& fin : finals_) {
    std::map<std::string, json::Value> obj;
    obj.emplace("stage", str(fin.stage));
    obj.emplace("med", num(fin.med));
    obj.emplace("error_rate", num(fin.error_rate));
    obj.emplace("lut_bits", num(fin.lut_bits));
    obj.emplace("flat_bits", num(fin.flat_bits));
    std::vector<json::Value> outputs;
    outputs.reserve(fin.outputs.size());
    for (const FinalOutput& o : fin.outputs) {
      std::map<std::string, json::Value> oobj;
      oobj.emplace("error_rate", num(o.error_rate));
      oobj.emplace("lut_bits", num(o.lut_bits));
      oobj.emplace("flat_bits", num(o.flat_bits));
      outputs.push_back(json::Value::make_object(std::move(oobj)));
    }
    obj.emplace("outputs", json::Value::make_array(std::move(outputs)));
    finals.push_back(json::Value::make_object(std::move(obj)));
  }
  root.emplace("finals", json::Value::make_array(std::move(finals)));

  root.emplace("dropped", num(dropped_));

  json::write(out, json::Value::make_object(std::move(root)));
  out << '\n';
}

std::string QorRecorder::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void WinRateTable::record(std::string_view family, std::string_view member,
                          bool won) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stat& s = stats_[{std::string(family), std::string(member)}];
  ++s.trials;
  if (won) {
    ++s.wins;
  }
}

WinRateTable::Stat WinRateTable::stat(std::string_view family,
                                      std::string_view member) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = stats_.find({std::string(family), std::string(member)});
  return it != stats_.end() ? it->second : Stat{};
}

double WinRateTable::win_rate(std::string_view family,
                              std::string_view member) const {
  const Stat s = stat(family, member);
  return s.trials == 0 ? 1.0
                       : static_cast<double>(s.wins) /
                             static_cast<double>(s.trials);
}

std::uint64_t WinRateTable::total_trials() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [key, s] : stats_) {
    total += s.trials;
  }
  return total;
}

}  // namespace adsd
