#include "support/run_context.hpp"

#include <utility>

#include "support/thread_pool.hpp"

namespace adsd {

namespace {

std::uint64_t splitmix_round(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

RunContext::RunContext(Options options)
    : options_(std::move(options)),
      deadline_(options_.time_budget_s),
      telemetry_(std::make_unique<TelemetrySink>()),
      trace_(options_.trace
                 ? std::make_unique<TraceRecorder>(options_.trace_capacity)
                 : nullptr),
      qor_(options_.qor
               ? std::make_unique<QorRecorder>(options_.qor_curve_capacity)
               : nullptr) {
  // Provenance: every context has a run_id, minted here when the caller
  // didn't supply one, and stamped into each recorder so all artifacts of
  // this run join on it.
  if (options_.run_id.empty()) {
    options_.run_id = Logger::mint_run_id();
  }
  telemetry_->set_run(options_.run_id, options_.parent_id);
  if (trace_ != nullptr) {
    trace_->set_run(options_.run_id, options_.parent_id);
  }
  if (qor_ != nullptr) {
    qor_->set_run(options_.run_id, options_.parent_id);
  }
  if (options_.metrics) {
    MetricsRegistry::arm();
    metrics_ = &MetricsRegistry::global();
  }
  if (options_.log) {
    Logger::Options log_options;
    log_options.level = options_.log_level;
    log_options.path = options_.log_path;
    log_options.run_id = options_.run_id;
    log_options.parent_id = options_.parent_id;
    Logger::arm(log_options);
    log_armed_ = true;
  }
}

RunContext::~RunContext() {
  if (log_armed_) {
    // Drain while metrics are still armed so the logger's final
    // log_dropped_total / log_rate_limited_total deltas land in the scrape.
    Logger::global().flush();
  }
  if (metrics_ != nullptr) {
    flush_drop_metrics();
    MetricsRegistry::disarm();
  }
  if (log_armed_) {
    Logger::disarm();
  }
}

void RunContext::flush_drop_metrics() const {
  if (metrics_ == nullptr) {
    return;
  }
  const auto export_delta = [&](std::atomic<std::uint64_t>& exported,
                                std::uint64_t now, const char* name) {
    const std::uint64_t previous =
        exported.exchange(now, std::memory_order_relaxed);
    if (now > previous) {
      metrics_->counter(name).add(now - previous);
    }
  };
  export_delta(exported_telemetry_drops_, telemetry_->dropped(),
               "telemetry_dropped_total");
  if (trace_ != nullptr) {
    export_delta(exported_trace_drops_, trace_->dropped(),
                 "trace_dropped_total");
  }
  if (qor_ != nullptr) {
    export_delta(exported_qor_drops_, qor_->dropped(),
                 "qor_dropped_total");
  }
}

std::uint64_t RunContext::stream_seed(std::string_view tag, std::uint64_t a,
                                      std::uint64_t b, std::uint64_t c) const {
  // Counter-based keyed hash: fold each component through a full
  // splitmix64 round so neighboring counters (round, round + 1) land in
  // unrelated streams. Deterministic across platforms and call order.
  std::uint64_t h = splitmix_round(options_.seed ^ fnv1a(tag));
  h = splitmix_round(h ^ a);
  h = splitmix_round(h ^ b);
  h = splitmix_round(h ^ c);
  return h;
}

std::uint64_t RunContext::stream_seed(std::string_view tag, std::uint64_t a,
                                      std::uint64_t b, std::uint64_t c,
                                      std::uint64_t d) const {
  // The d round only fires for d != 0 so the four-counter form degrades to
  // the three-counter one at d == 0 (callers adding a grid axis keep every
  // existing stream stable).
  std::uint64_t h = stream_seed(tag, a, b, c);
  return d == 0 ? h : splitmix_round(h ^ d);
}

ThreadPool& RunContext::pool() const {
  if (options_.threads == Options::kSharedPool) {
    return ThreadPool::shared();
  }
  std::lock_guard<std::mutex> lock(pool_mutex_);
  if (!owned_pool_) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.threads);
  }
  return *owned_pool_;
}

const RunContext& RunContext::fallback() {
  static RunContext ctx;
  return ctx;
}

}  // namespace adsd
