#include "support/trace.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "support/telemetry.hpp"

namespace adsd {

namespace {

struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
  std::size_t operator()(const std::string& s) const {
    return std::hash<std::string_view>{}(s);
  }
};

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

double to_seconds(std::uint64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

std::atomic<std::uint64_t> next_recorder_id{1};

}  // namespace

struct TraceRecorder::ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<Event> events;
  std::vector<std::string> names;
  std::unordered_map<std::string, std::uint32_t, StringHash, std::equal_to<>>
      name_ids;
  // Open begin events whose matching end slot is reserved; begin() refuses
  // new spans unless both the begin and its end fit, so a saturated buffer
  // drops whole spans and the exported trace always balances.
  std::size_t reserved_ends = 0;

  std::uint32_t intern(std::string_view name) {
    const auto it = name_ids.find(name);
    if (it != name_ids.end()) {
      return it->second;
    }
    const auto id = static_cast<std::uint32_t>(names.size());
    names.emplace_back(name);
    name_ids.emplace(names.back(), id);
    return id;
  }
};

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : epoch_(std::chrono::steady_clock::now()),
      capacity_(std::max<std::size_t>(capacity_per_thread, 8)),
      id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadBuffer& TraceRecorder::local_buffer() {
  // Thread-local cache of (recorder id -> buffer). Ids are process-unique
  // and never reused, so entries for destroyed recorders can linger without
  // ever resolving; a linear scan wins for the 1-2 live recorders a thread
  // typically touches.
  struct CacheEntry {
    std::uint64_t recorder_id;
    ThreadBuffer* buffer;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const CacheEntry& e : cache) {
    if (e.recorder_id == id_) {
      return *e.buffer;
    }
  }
  std::lock_guard<std::mutex> lock(registry_mutex_);
  auto fresh = std::make_unique<ThreadBuffer>();
  fresh->tid = static_cast<std::uint32_t>(buffers_.size());
  ThreadBuffer* buffer = fresh.get();
  buffers_.push_back(std::move(fresh));
  cache.push_back(CacheEntry{id_, buffer});
  return *buffer;
}

TraceRecorder::SpanToken TraceRecorder::begin(std::string_view name) {
  ThreadBuffer& buf = local_buffer();
  if (buf.events.size() + buf.reserved_ends + 2 > capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return SpanToken{};
  }
  const std::uint32_t id = buf.intern(name);
  buf.events.push_back(Event{now_ns(), 0.0, id, EventType::kBegin});
  ++buf.reserved_ends;
  return SpanToken{&buf, id};
}

void TraceRecorder::end(SpanToken token) {
  if (token.buffer == nullptr) {
    return;
  }
  auto& buf = *static_cast<ThreadBuffer*>(token.buffer);
  --buf.reserved_ends;
  buf.events.push_back(Event{now_ns(), 0.0, token.name, EventType::kEnd});
}

void TraceRecorder::instant(std::string_view name) {
  emit(EventType::kInstant, name, now_ns(), 0.0);
}

void TraceRecorder::counter(std::string_view name, double value) {
  emit(EventType::kCounter, name, now_ns(), value);
}

void TraceRecorder::emit(EventType type, std::string_view name,
                         std::uint64_t ts_ns, double value) {
  ThreadBuffer& buf = local_buffer();
  if (buf.events.size() + buf.reserved_ends + 1 > capacity_) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  buf.events.push_back(Event{ts_ns, value, buf.intern(name), type});
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  std::size_t total = 0;
  for (const auto& buf : buffers_) {
    total += buf->events.size();
  }
  return total;
}

std::size_t TraceRecorder::thread_count() const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  return buffers_.size();
}

void TraceRecorder::write_chrome_json(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(registry_mutex_);
  out.precision(9);
  out << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&] {
    out << (first ? "\n " : ",\n ");
    first = false;
  };
  for (const auto& buf : buffers_) {
    sep();
    out << "{\"ph\": \"M\", \"pid\": 1, \"tid\": " << buf->tid
        << ", \"name\": \"thread_name\", \"args\": {\"name\": \"thread-"
        << buf->tid << "\"}}";
  }
  for (const auto& buf : buffers_) {
    for (const Event& e : buf->events) {
      sep();
      const double ts_us = static_cast<double>(e.ts_ns) * 1e-3;
      out << "{\"ph\": \"";
      switch (e.type) {
        case EventType::kBegin:
          out << 'B';
          break;
        case EventType::kEnd:
          out << 'E';
          break;
        case EventType::kInstant:
          out << 'i';
          break;
        case EventType::kCounter:
          out << 'C';
          break;
      }
      out << "\", \"pid\": 1, \"tid\": " << buf->tid << ", \"ts\": " << ts_us
          << ", \"name\": ";
      write_escaped(out, buf->names[e.name]);
      if (e.type == EventType::kInstant) {
        out << ", \"s\": \"t\"";
      } else if (e.type == EventType::kCounter) {
        out << ", \"args\": {\"value\": " << e.value << "}";
      }
      out << "}";
    }
  }
  out << (first ? "]" : "\n]") << ",\n\"displayTimeUnit\": \"ms\",\n"
      << "\"otherData\": {";
  if (!run_id_.empty()) {
    out << "\"run_id\": ";
    write_escaped(out, run_id_);
    out << ", ";
  }
  if (!parent_id_.empty()) {
    out << "\"parent_id\": ";
    write_escaped(out, parent_id_);
    out << ", ";
  }
  out << "\"dropped\": " << dropped_.load(std::memory_order_relaxed)
      << "}}\n";
}

double TraceRecorder::quantile_sorted(
    const std::vector<double>& sorted_ascending, double q) {
  if (sorted_ascending.empty()) {
    return 0.0;
  }
  const double n = static_cast<double>(sorted_ascending.size());
  auto rank = static_cast<std::size_t>(std::ceil(q * n));
  rank = std::min(std::max<std::size_t>(rank, 1), sorted_ascending.size());
  return sorted_ascending[rank - 1];
}

void TraceRecorder::write_report_json(std::ostream& out,
                                      const TelemetrySink* telemetry) const {
  struct CounterStats {
    std::size_t samples = 0;
    double first = 0.0;
    double last = 0.0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };
  struct ThreadStats {
    std::uint32_t tid = 0;
    std::size_t events = 0;
    std::uint64_t busy_ns = 0;  // total duration of depth-0 spans
  };

  std::map<std::string, std::vector<double>> span_durations_s;
  std::map<std::string, CounterStats> counters;
  std::map<std::string, std::size_t> instants;
  std::vector<ThreadStats> threads;
  std::size_t total_events = 0;
  std::size_t unmatched_begins = 0;
  std::size_t unmatched_ends = 0;
  std::uint64_t min_ts = ~std::uint64_t{0};
  std::uint64_t max_ts = 0;

  {
    std::lock_guard<std::mutex> lock(registry_mutex_);
    struct Open {
      std::uint32_t name;
      std::uint64_t ts;
    };
    for (const auto& buf : buffers_) {
      ThreadStats ts;
      ts.tid = buf->tid;
      ts.events = buf->events.size();
      total_events += buf->events.size();
      std::vector<Open> stack;
      for (const Event& e : buf->events) {
        min_ts = std::min(min_ts, e.ts_ns);
        max_ts = std::max(max_ts, e.ts_ns);
        switch (e.type) {
          case EventType::kBegin:
            stack.push_back(Open{e.name, e.ts_ns});
            break;
          case EventType::kEnd: {
            if (stack.empty()) {
              ++unmatched_ends;
              break;
            }
            const Open open = stack.back();
            stack.pop_back();
            const std::uint64_t dur =
                e.ts_ns >= open.ts ? e.ts_ns - open.ts : 0;
            span_durations_s[buf->names[open.name]].push_back(
                to_seconds(dur));
            if (stack.empty()) {
              ts.busy_ns += dur;
            }
            break;
          }
          case EventType::kInstant:
            ++instants[buf->names[e.name]];
            break;
          case EventType::kCounter: {
            CounterStats& c = counters[buf->names[e.name]];
            if (c.samples == 0) {
              c.first = c.min = c.max = e.value;
            }
            c.last = e.value;
            c.min = std::min(c.min, e.value);
            c.max = std::max(c.max, e.value);
            c.sum += e.value;
            ++c.samples;
            break;
          }
        }
      }
      unmatched_begins += stack.size();
      threads.push_back(ts);
    }
  }

  const std::uint64_t span_ns = total_events > 0 ? max_ts - min_ts : 0;
  const double duration_s = to_seconds(span_ns);

  out.precision(9);
  out << "{\n\"meta\": {";
  if (!run_id_.empty()) {
    out << "\"run_id\": ";
    write_escaped(out, run_id_);
    out << ", ";
  }
  if (!parent_id_.empty()) {
    out << "\"parent_id\": ";
    write_escaped(out, parent_id_);
    out << ", ";
  }
  out << "\"threads\": " << threads.size()
      << ", \"events\": " << total_events
      << ", \"dropped\": " << dropped_.load(std::memory_order_relaxed)
      << ", \"duration_s\": " << duration_s
      << ", \"unmatched_begins\": " << unmatched_begins
      << ", \"unmatched_ends\": " << unmatched_ends << "},\n";

  out << "\"spans\": {";
  bool first = true;
  for (auto& [path, durations] : span_durations_s) {
    std::sort(durations.begin(), durations.end());
    double total = 0.0;
    for (const double d : durations) {
      total += d;
    }
    out << (first ? "\n " : ",\n ");
    first = false;
    write_escaped(out, path);
    out << ": {\"count\": " << durations.size() << ", \"total_s\": " << total
        << ", \"mean_s\": " << total / static_cast<double>(durations.size())
        << ", \"min_s\": " << durations.front()
        << ", \"max_s\": " << durations.back()
        << ", \"p50_s\": " << quantile_sorted(durations, 0.50)
        << ", \"p95_s\": " << quantile_sorted(durations, 0.95)
        << ", \"p99_s\": " << quantile_sorted(durations, 0.99) << "}";
  }
  out << (first ? "},\n" : "\n},\n");

  out << "\"counters\": {";
  first = true;
  for (const auto& [name, c] : counters) {
    out << (first ? "\n " : ",\n ");
    first = false;
    write_escaped(out, name);
    out << ": {\"samples\": " << c.samples << ", \"first\": " << c.first
        << ", \"last\": " << c.last << ", \"min\": " << c.min
        << ", \"max\": " << c.max
        << ", \"mean\": " << c.sum / static_cast<double>(c.samples) << "}";
  }
  out << (first ? "},\n" : "\n},\n");

  out << "\"instants\": {";
  first = true;
  for (const auto& [name, count] : instants) {
    out << (first ? "\n " : ",\n ");
    first = false;
    write_escaped(out, name);
    out << ": " << count;
  }
  out << (first ? "},\n" : "\n},\n");

  out << "\"threads\": [";
  first = true;
  for (const ThreadStats& t : threads) {
    out << (first ? "\n " : ",\n ");
    first = false;
    out << "{\"tid\": " << t.tid << ", \"events\": " << t.events
        << ", \"busy_s\": " << to_seconds(t.busy_ns) << ", \"utilization\": "
        << (span_ns > 0 ? to_seconds(t.busy_ns) / duration_s : 0.0) << "}";
  }
  out << (first ? "]" : "\n]");

  if (telemetry != nullptr) {
    std::string sink_json = telemetry->to_json();
    while (!sink_json.empty() &&
           (sink_json.back() == '\n' || sink_json.back() == ' ')) {
      sink_json.pop_back();
    }
    out << ",\n\"telemetry\": " << sink_json;
  }
  out << "\n}\n";
}

std::string TraceRecorder::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

std::string TraceRecorder::report_json(const TelemetrySink* telemetry) const {
  std::ostringstream out;
  write_report_json(out, telemetry);
  return out.str();
}

}  // namespace adsd
