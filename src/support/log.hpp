#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adsd {

/// Severity of one log record. Ordered: a logger armed at level L emits
/// records with level >= L. kOff is a threshold-only value ("log nothing")
/// and never appears on a record.
enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// Lowercase wire name ("debug" / "info" / "warn" / "error" / "off").
const char* log_level_name(LogLevel level);

/// Parses a wire name; std::nullopt for anything unknown.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// The accepted-level roster for error messages: "debug, info, warn, error,
/// off".
const char* log_level_roster();

/// Parse with the registry-style error contract: throws
/// std::invalid_argument("unknown log level '<name>' (accepted: ...)").
LogLevel parse_log_level_or_throw(std::string_view name);

/// One typed field value attached to a log record. Views must outlive the
/// ADSD_LOG_* call (the record is serialized inside it), which string
/// literals and in-scope locals trivially satisfy.
class LogValue {
 public:
  enum class Kind : std::uint8_t { kString, kInt, kUint, kDouble, kBool };

  LogValue(const char* s) : kind_(Kind::kString), s_(s) {}
  LogValue(std::string_view s) : kind_(Kind::kString), s_(s) {}
  LogValue(const std::string& s) : kind_(Kind::kString), s_(s) {}
  LogValue(double v) : kind_(Kind::kDouble), d_(v) {}
  LogValue(float v) : kind_(Kind::kDouble), d_(v) {}
  LogValue(bool v) : kind_(Kind::kBool), b_(v) {}
  LogValue(int v) : kind_(Kind::kInt), i_(v) {}
  LogValue(long v) : kind_(Kind::kInt), i_(v) {}
  LogValue(long long v) : kind_(Kind::kInt), i_(v) {}
  LogValue(unsigned v) : kind_(Kind::kUint), u_(v) {}
  LogValue(unsigned long v) : kind_(Kind::kUint), u_(v) {}
  LogValue(unsigned long long v) : kind_(Kind::kUint), u_(v) {}

  Kind kind() const { return kind_; }
  std::string_view string_value() const { return s_; }
  std::int64_t int_value() const { return i_; }
  std::uint64_t uint_value() const { return u_; }
  double double_value() const { return d_; }
  bool bool_value() const { return b_; }

 private:
  Kind kind_;
  std::string_view s_{};
  union {
    std::int64_t i_;
    std::uint64_t u_;
    double d_;
    bool b_;
  };
};

/// One key/value field at a log site: ADSD_LOG_INFO("c", "m", {"n", 64}).
struct LogField {
  std::string_view key;
  LogValue value;
};

/// Deterministic token bucket: `burst` tokens of headroom refilled at
/// `rate_per_s`, both passed per call so the bucket itself is pure state
/// (one spinlocked {tokens, last_ns} pair — log sites are never inner-loop
/// hot once armed, and the disarmed path never reaches the bucket). The
/// caller supplies the clock, which is what makes the unit tests exact.
class TokenBucket {
 public:
  TokenBucket() = default;

  /// True (and consumes one token) when the site may emit at `now_ns`.
  bool try_acquire(std::uint64_t now_ns, double rate_per_s, double burst);

 private:
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  bool primed_ = false;       // first acquire starts with a full bucket
  double tokens_ = 0.0;       // guarded by lock_
  std::uint64_t last_ns_ = 0;
};

/// Per-call-site static state for the ADSD_LOG_* macros: identity plus the
/// rate-limiter bucket and its suppression count. Constructed lazily (the
/// macro's `static`) only on the first armed-and-enabled pass.
struct LogSite {
  LogSite(const char* component_in, const char* file_in, int line_in)
      : component(component_in), file(file_in), line(line_in) {}

  const char* component;
  const char* file;
  int line;
  TokenBucket bucket;
  /// Records suppressed by the limiter since the site last emitted; folded
  /// into the next emitted record as "suppressed": N.
  std::atomic<std::uint64_t> suppressed{0};
};

/// Process-wide structured logger — the fourth observability pillar next to
/// TraceRecorder / QorRecorder / MetricsRegistry, and the run-provenance
/// spine joining all of them: every record carries the current run_id.
///
/// Off path: ADSD_LOG_* compiles to one relaxed armed() load (the
/// MetricsRegistry discipline); nullptr when no context armed logging, so a
/// disarmed site costs a load + branch and never constructs its LogSite.
/// Logging only *reads* call-site state, so fixed-seed runs are
/// bit-identical with logging off or on (tests/test_log.cpp asserts this at
/// 1 and 8 threads).
///
/// Hot path (armed): the record is serialized to one `adsd-log-v1` JSON
/// line on the calling thread, appended to that thread's lock-free SPSC
/// ring, and drained to the sink (file or stderr) by an async writer
/// thread. A full ring drops the whole record — never a torn line — and
/// drops are counted and re-exported as `log_dropped_total` when metrics
/// are armed. Per-site token buckets bound record rate; suppressions are
/// counted (`log_rate_limited_total`) and surfaced on the next emitted
/// record. The last tail_capacity serialized lines are retained in a ring
/// that FlightRecorder postmortems replay as "log_tail".
///
/// Line schema (`adsd-log-v1`, one JSON object per line):
///   {"schema":"adsd-log-v1","ts":<unix seconds>,"level":"info",
///    "thread":<ordinal>,"component":"core/dalta","run_id":"...",
///    "msg":"...","fields":{...}}          (+ optional "parent_id",
///                                          "suppressed")
class Logger {
 public:
  static constexpr std::size_t kDefaultRingCapacity = 1024;  // per thread
  static constexpr std::size_t kDefaultTailCapacity = 64;
  static constexpr double kDefaultSiteRatePerS = 100.0;
  static constexpr double kDefaultSiteBurst = 20.0;

  struct Options {
    /// Minimum severity emitted; kOff arms the logger but emits nothing.
    LogLevel level = LogLevel::kInfo;
    /// JSONL destination; empty = stderr.
    std::string path;
    /// Bound on buffered records per producing thread; a full ring drops
    /// whole records (counted in dropped()).
    std::size_t ring_capacity = kDefaultRingCapacity;
    /// Last-N serialized lines kept for FlightRecorder postmortem replay.
    std::size_t tail_capacity = kDefaultTailCapacity;
    /// Per-site token bucket: burst tokens refilled at rate_per_s.
    double site_rate_per_s = kDefaultSiteRatePerS;
    double site_burst = kDefaultSiteBurst;
    /// Provenance stamped into every record (see RunContext).
    std::string run_id;
    std::string parent_id;
    /// false = no writer thread; records stay ring-buffered until flush()
    /// (deterministic saturation tests). Production arms async.
    bool async = true;
  };

  /// Arm/disarm refcount for the process-wide logger (RunContext holds one
  /// reference per log-enabled context; the CLI/bench flags arm through
  /// RunContext). The first arm (0 -> 1) applies `options` — opens the
  /// sink, spawns the writer; nested arms join the open logger and only
  /// refresh run_id/parent_id. The last disarm drains every ring, flushes,
  /// and closes the sink.
  static void arm(const Options& options);
  static void disarm();

  /// The context-free off-path test: one relaxed atomic load, nullptr when
  /// no context has logging armed.
  static Logger* armed() {
    return armed_ptr().load(std::memory_order_relaxed);
  }

  /// The singleton behind arm()/armed(); storage never dies, so a stale
  /// armed() pointer read racing a disarm stays dereferenceable.
  static Logger& global();

  /// Mints a fresh 16-hex-char correlation ID (process-unique, seeded from
  /// the OS entropy source; never affects solver RNG streams).
  static std::string mint_run_id();

  bool enabled(LogLevel level) const {
    return static_cast<std::uint8_t>(level) >=
           threshold_.load(std::memory_order_relaxed);
  }
  LogLevel level() const {
    return static_cast<LogLevel>(threshold_.load(std::memory_order_relaxed));
  }

  /// Serializes and enqueues one record. Call through ADSD_LOG_* so the
  /// site carries its static LogSite; `fields` views need only outlive the
  /// call.
  void log(LogSite& site, LogLevel level, std::string_view message,
           std::initializer_list<LogField> fields);

  /// Refreshes the provenance stamped on subsequent records.
  void set_run(std::string run_id, std::string parent_id);

  /// Drains every thread ring to the sink on the calling thread and
  /// flushes it. Safe concurrently with the writer thread and producers.
  void flush();

  /// Records fully emitted to the sink.
  std::uint64_t emitted() const {
    return emitted_.load(std::memory_order_relaxed);
  }
  /// Whole records dropped because a thread ring was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Records suppressed by per-site token buckets.
  std::uint64_t rate_limited() const {
    return rate_limited_.load(std::memory_order_relaxed);
  }

  /// Oldest-to-newest copy of the last-N serialized lines (each one a
  /// complete `adsd-log-v1` JSON object) for postmortem replay.
  std::vector<std::string> tail() const;

  Logger(const Logger&) = delete;
  Logger& operator=(const Logger&) = delete;

 private:
  Logger() = default;

  struct ThreadBuffer;
  struct Impl;

  static std::atomic<Logger*>& armed_ptr();

  void open(const Options& options);
  void close();
  void drain_once();
  ThreadBuffer& buffer_for_thread(Impl& impl);

  std::atomic<std::uint8_t> threshold_{
      static_cast<std::uint8_t>(LogLevel::kOff)};
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> rate_limited_{0};
  // Drain-time deltas already exported into MetricsRegistry.
  std::uint64_t exported_emitted_ = 0;
  std::uint64_t exported_dropped_ = 0;
  std::uint64_t exported_rate_limited_ = 0;
  // Atomic because producers that loaded armed() race the closing disarm;
  // the pointed-to Impl is leaked on purpose (see close()).
  std::atomic<Impl*> impl_{nullptr};
};

}  // namespace adsd

// Severity-leveled structured log sites. Disarmed cost: one relaxed load +
// branch (<= 2 ns, benchmarked by BM_LogOffPath). Usage:
//   ADSD_LOG_WARN("ising/engine", "deadline at entry", {"sweeps", done});
#define ADSD_LOG_AT(level_, component_, message_, ...)                    \
  do {                                                                    \
    ::adsd::Logger* adsd_log_inst_ = ::adsd::Logger::armed();             \
    if (adsd_log_inst_ != nullptr && adsd_log_inst_->enabled(level_)) {   \
      static ::adsd::LogSite adsd_log_site_{component_, __FILE__,         \
                                            __LINE__};                    \
      adsd_log_inst_->log(adsd_log_site_, level_, (message_),             \
                          {__VA_ARGS__});                                 \
    }                                                                     \
  } while (false)

#define ADSD_LOG_DEBUG(component_, message_, ...)             \
  ADSD_LOG_AT(::adsd::LogLevel::kDebug, component_, message_  \
              __VA_OPT__(, ) __VA_ARGS__)
#define ADSD_LOG_INFO(component_, message_, ...)              \
  ADSD_LOG_AT(::adsd::LogLevel::kInfo, component_, message_   \
              __VA_OPT__(, ) __VA_ARGS__)
#define ADSD_LOG_WARN(component_, message_, ...)              \
  ADSD_LOG_AT(::adsd::LogLevel::kWarn, component_, message_   \
              __VA_OPT__(, ) __VA_ARGS__)
#define ADSD_LOG_ERROR(component_, message_, ...)             \
  ADSD_LOG_AT(::adsd::LogLevel::kError, component_, message_  \
              __VA_OPT__(, ) __VA_ARGS__)
