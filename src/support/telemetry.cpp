#include "support/telemetry.hpp"

#include <algorithm>
#include <sstream>

namespace adsd {

namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double to_seconds(std::uint64_t ns) {
  return static_cast<double>(ns) * 1e-9;
}

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out << '\\';
    }
    out << c;
  }
  out << '"';
}

}  // namespace

TelemetrySink::~TelemetrySink() {
  for (auto& slot : slots_) {
    delete slot.load(std::memory_order_relaxed);
  }
}

TelemetrySink::Metric* TelemetrySink::metric(std::string_view path) {
  const std::size_t start = fnv1a(path) % kSlots;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    auto& slot = slots_[(start + probe) % kSlots];
    Metric* existing = slot.load(std::memory_order_acquire);
    if (existing == nullptr) {
      auto* fresh = new Metric(std::string(path));
      if (slot.compare_exchange_strong(existing, fresh,
                                       std::memory_order_acq_rel)) {
        return fresh;
      }
      delete fresh;  // lost the race; `existing` now holds the winner
    }
    if (existing->path == path) {
      return existing;
    }
  }
  // Table saturated: count the rejection rather than throwing mid-solve or
  // silently losing the path; write_json() surfaces the total.
  dropped_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void TelemetrySink::add(std::string_view path, std::uint64_t delta) {
  Metric* m = metric(path);
  if (m == nullptr) {
    return;
  }
  m->count.fetch_add(1, std::memory_order_relaxed);
  m->sum.fetch_add(delta, std::memory_order_relaxed);
}

void TelemetrySink::record_ns(Metric& m, std::uint64_t ns) {
  m.count.fetch_add(1, std::memory_order_relaxed);
  m.total_ns.fetch_add(ns, std::memory_order_relaxed);
  atomic_min(m.min_ns, ns);
  atomic_max(m.max_ns, ns);
}

void TelemetrySink::record_ns(std::string_view path, std::uint64_t ns) {
  Metric* m = metric(path);
  if (m != nullptr) {
    record_ns(*m, ns);
  }
}

void TelemetrySink::Span::close() {
  if (metric_ == nullptr) {
    return;
  }
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  record_ns(*metric_,
            static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                    .count()));
  metric_ = nullptr;
}

std::vector<TelemetrySink::MetricValue> TelemetrySink::snapshot() const {
  std::vector<MetricValue> out;
  for (const auto& slot : slots_) {
    const Metric* m = slot.load(std::memory_order_acquire);
    if (m == nullptr) {
      continue;
    }
    MetricValue v;
    v.path = m->path;
    v.count = m->count.load(std::memory_order_relaxed);
    v.sum = m->sum.load(std::memory_order_relaxed);
    v.total_ns = m->total_ns.load(std::memory_order_relaxed);
    v.max_ns = m->max_ns.load(std::memory_order_relaxed);
    const std::uint64_t min_raw = m->min_ns.load(std::memory_order_relaxed);
    v.is_span = min_raw != ~std::uint64_t{0};
    v.min_ns = v.is_span ? min_raw : 0;
    out.push_back(std::move(v));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricValue& a, const MetricValue& b) {
              return a.path < b.path;
            });
  return out;
}

std::uint64_t TelemetrySink::counter(std::string_view path) const {
  const std::size_t start = fnv1a(path) % kSlots;
  for (std::size_t probe = 0; probe < kSlots; ++probe) {
    const Metric* m =
        slots_[(start + probe) % kSlots].load(std::memory_order_acquire);
    if (m == nullptr) {
      return 0;
    }
    if (m->path == path) {
      return m->sum.load(std::memory_order_relaxed);
    }
  }
  return 0;
}

void TelemetrySink::write_json(std::ostream& out) const {
  const auto metrics = snapshot();
  out << "{\n";
  if (!run_id_.empty()) {
    out << " \"run_id\": ";
    write_escaped(out, run_id_);
    out << ",\n";
  }
  if (!parent_id_.empty()) {
    out << " \"parent_id\": ";
    write_escaped(out, parent_id_);
    out << ",\n";
  }
  out << " \"dropped\": " << dropped_.load(std::memory_order_relaxed)
      << ",\n \"counters\": {";
  bool first = true;
  for (const auto& m : metrics) {
    if (m.is_span) {
      continue;
    }
    out << (first ? "\n  " : ",\n  ");
    first = false;
    write_escaped(out, m.path);
    out << ": " << m.sum;
  }
  out << (first ? "}," : "\n },");
  out << "\n \"spans\": {";
  first = true;
  for (const auto& m : metrics) {
    if (!m.is_span) {
      continue;
    }
    out << (first ? "\n  " : ",\n  ");
    first = false;
    write_escaped(out, m.path);
    out << ": {\"count\": " << m.count
        << ", \"total_s\": " << to_seconds(m.total_ns) << ", \"mean_s\": "
        << (m.count > 0 ? to_seconds(m.total_ns) / static_cast<double>(m.count)
                        : 0.0)
        << ", \"min_s\": " << to_seconds(m.min_ns)
        << ", \"max_s\": " << to_seconds(m.max_ns) << "}";
  }
  out << (first ? "}" : "\n }") << "\n}\n";
}

std::string TelemetrySink::to_json() const {
  std::ostringstream out;
  out.precision(9);
  write_json(out);
  return out.str();
}

}  // namespace adsd
