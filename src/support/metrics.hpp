#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <limits>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adsd {

/// One key="value" pair at a metric call site. Both views must point at
/// storage that outlives the call (string literals or owned strings).
struct MetricLabel {
  std::string_view key;
  std::string_view value;
};

/// Mergeable point-in-time copy of one histogram: the bucket counts plus
/// the exact aggregates. merge() is associative and commutative, so
/// per-thread histograms can be folded in any order and match a single
/// histogram fed all values (the property tests/test_metrics.cpp asserts).
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::uint64_t underflow = 0;  // values below the lowest bucket (and NaN)
  std::uint64_t overflow = 0;   // values at or above the highest bound
  std::vector<std::uint64_t> buckets;  // Histogram::kNumBuckets entries

  void merge(const HistogramData& other);

  /// Nearest-rank quantile estimate from the bucket counts: the upper bound
  /// of the bucket holding the rank-ceil(q * count) value, clamped to the
  /// exact [min, max] seen. Relative overestimate is bounded by the
  /// sub-bucket width (1 / Histogram::kSubBuckets) for in-range values.
  double quantile(double q) const;
};

/// Process-wide registry of lock-free counters, gauges, and log-bucketed
/// histograms with labeled families — the third observability axis next to
/// TraceRecorder (per-run timelines) and QorRecorder (per-run quality):
/// cheap aggregates that accumulate across every solve in the process and
/// export as Prometheus text (v0.0.4) or an `adsd-metrics-v1` JSON
/// snapshot.
///
/// Off path: sites reach the registry through RunContext::metrics() (a
/// cached pointer, nullptr when the context was built without metrics) or
/// MetricsRegistry::armed() (one relaxed atomic load), so a disarmed site
/// costs one pointer test — same discipline as trace/QoR, and recording
/// only ever *reads* solver state, so fixed-seed runs are bit-identical
/// with metrics on or off.
///
/// Hot path: metric slots live in a fixed open-addressed table of atomic
/// pointers (the TelemetrySink scheme) — claimed once by CAS, never
/// rehashed or removed, every update a relaxed atomic op. Table saturation
/// is counted in dropped() (and self-exported as metrics_dropped_total);
/// saturated lookups return a process-wide sink metric so call sites never
/// branch on failure.
class MetricsRegistry {
 public:
  enum class Kind { kCounter, kGauge, kHistogram };

  /// Monotonically increasing integer total.
  class Counter {
   public:
    void add(std::uint64_t delta = 1) {
      value_.fetch_add(delta, std::memory_order_relaxed);
    }
    std::uint64_t value() const {
      return value_.load(std::memory_order_relaxed);
    }

   private:
    std::atomic<std::uint64_t> value_{0};
  };

  /// Last-write-wins double (set) with an optional accumulate (add).
  class Gauge {
   public:
    void set(double v) {
      bits_.store(std::bit_cast<std::uint64_t>(v),
                  std::memory_order_relaxed);
    }
    void add(double delta);
    double value() const {
      return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
    }

   private:
    std::atomic<std::uint64_t> bits_{std::bit_cast<std::uint64_t>(0.0)};
  };

  /// HDR-style log-linear histogram: kSubBuckets linear sub-buckets per
  /// power-of-two octave over [2^kMinExponent, 2^kMaxExponent), plus
  /// underflow/overflow buckets and exact count/sum/min/max. The bucket
  /// maps are static so the boundary tests can probe them directly.
  /// Recording is a relaxed fetch_add on one bucket plus CAS folds of the
  /// double aggregates — wait-free in practice, mergeable via snapshot().
  class Histogram {
   public:
    static constexpr int kSubBuckets = 8;     // per octave, relative
                                              // resolution 1/8 = 12.5%
    static constexpr int kMinExponent = -10;  // lowest bound 2^-10
    static constexpr int kMaxExponent = 44;   // overflow at >= 2^44 (~1.8e13)
    static constexpr std::size_t kNumBuckets =
        static_cast<std::size_t>(kMaxExponent - kMinExponent) * kSubBuckets;

    Histogram();

    static double min_value();  // lower bound of bucket 0
    static double max_value();  // upper bound of the last bucket

    /// Bucket for value v: -1 = underflow (v < min_value(), negatives,
    /// NaN), kNumBuckets = overflow, else the regular bucket index.
    static std::ptrdiff_t bucket_index(double v);
    static double bucket_lower(std::size_t index);
    static double bucket_upper(std::size_t index);

    void record(double v);

    /// record() plus an exemplar: the latest (value, run_id) pair is kept
    /// and exposed in both expositions, joining this series to the run
    /// that produced its most recent observation. An empty id records
    /// without touching the exemplar.
    void record(double v, std::string_view exemplar_run_id);

    /// Copies the latest exemplar; false when none was ever recorded.
    bool exemplar(double* value, std::string* run_id) const;

    HistogramData snapshot() const;

   private:
    mutable std::atomic_flag exemplar_lock_ = ATOMIC_FLAG_INIT;
    bool has_exemplar_ = false;        // guarded by exemplar_lock_
    double exemplar_value_ = 0.0;      // guarded by exemplar_lock_
    std::string exemplar_run_id_;      // guarded by exemplar_lock_
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_bits_{std::bit_cast<std::uint64_t>(0.0)};
    std::atomic<std::uint64_t> min_bits_{std::bit_cast<std::uint64_t>(
        std::numeric_limits<double>::infinity())};
    std::atomic<std::uint64_t> max_bits_{std::bit_cast<std::uint64_t>(
        -std::numeric_limits<double>::infinity())};
    std::atomic<std::uint64_t> underflow_{0};
    std::atomic<std::uint64_t> overflow_{0};
    std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
  };

  MetricsRegistry() = default;
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve (creating on first use) a metric of the given kind. `name`
  /// and label keys must match [a-zA-Z_][a-zA-Z0-9_]* (throws
  /// std::invalid_argument otherwise); re-resolving an existing key with a
  /// different kind throws std::logic_error. On table saturation the
  /// update is redirected to a shared sink metric and counted in
  /// dropped(). The returned reference stays valid for the registry's
  /// lifetime and may be cached across calls.
  Counter& counter(std::string_view name,
                   std::initializer_list<MetricLabel> labels = {});
  Gauge& gauge(std::string_view name,
               std::initializer_list<MetricLabel> labels = {});
  Histogram& histogram(std::string_view name,
                       std::initializer_list<MetricLabel> labels = {});

  /// Lookups rejected because the slot table was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Distinct metric series currently registered.
  std::size_t size() const;

  /// Prometheus text exposition format v0.0.4: every family prefixed
  /// "adsd_", one # TYPE line per family, histogram series as cumulative
  /// _bucket{le=...} (non-empty buckets plus the mandatory +Inf), _sum and
  /// _count. Families and series are sorted, output is stable.
  void write_prometheus(std::ostream& out) const;

  /// Schema-versioned JSON snapshot ("adsd-metrics-v1"): sorted series
  /// array with per-kind payloads; histograms carry count/sum/min/max,
  /// underflow/overflow, p50/p95/p99, and the non-empty [lower, upper,
  /// count] buckets.
  void write_json(std::ostream& out) const;

  /// The process-wide registry every instrumentation site aggregates into.
  static MetricsRegistry& global();

  /// Arm/disarm refcount for the global registry (RunContext holds one
  /// reference per metrics-enabled context). armed() is the context-free
  /// off-path test — one relaxed atomic load, nullptr when no context has
  /// metrics enabled.
  static void arm();
  static void disarm();
  static MetricsRegistry* armed() {
    return armed_ptr().load(std::memory_order_relaxed);
  }

 private:
  struct Metric {
    std::string key;  // canonical "name{k=\"v\",...}" (labels sorted)
    std::string name;
    std::vector<std::pair<std::string, std::string>> labels;
    Kind kind = Kind::kCounter;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;  // kHistogram only
  };

  static constexpr std::size_t kSlots = 4096;

  static std::atomic<MetricsRegistry*>& armed_ptr();

  Metric* resolve(Kind kind, std::string_view name,
                  std::initializer_list<MetricLabel> labels);
  std::vector<const Metric*> sorted_metrics() const;

  std::array<std::atomic<Metric*>, kSlots> slots_{};
  std::atomic<std::uint64_t> dropped_{0};
};

/// Bounded ring of recent solve summaries — the crash-time complement to
/// the live registry: every run_dalta / run_dalta_nd completion appends a
/// record (when metrics or a postmortem are armed), and the recorder dumps
/// the ring as a postmortem JSON ("adsd-flight-v1") on deadline overrun,
/// solver exception (the CLI catch block), or a fatal signal.
///
/// Fatal-signal path: while a postmortem is armed, every record() refreshes
/// a pre-serialized buffer, so the signal handler only open()/write()s
/// bytes that already exist — no allocation, no formatting, async-signal
/// safe. A crash racing a concurrent record() can at worst lose the
/// refresh (the handler then writes the previous consistent snapshot).
class FlightRecorder {
 public:
  struct SolveRecord {
    std::string spec;         // stage, e.g. "dalta" / "dalta_nd"
    std::string engine;       // core-COP solver name
    std::string stop_reason;  // "ok" | "deadline" | "exception"
    std::string run_id;       // provenance (RunContext::run_id), may be ""
    std::uint64_t n = 0;      // table inputs
    std::uint64_t rounds = 0;
    double final_energy = 0.0;  // total committed objective
    double med = 0.0;
    double duration_s = 0.0;
    std::uint64_t seq = 0;  // assigned by record(), monotone
  };

  static constexpr std::size_t kDefaultCapacity = 128;

  explicit FlightRecorder(std::size_t capacity = kDefaultCapacity);

  /// Appends one summary (oldest evicted past capacity). While a
  /// postmortem is armed this refreshes the signal buffer and, for a
  /// "deadline" record, dumps the postmortem immediately.
  void record(SolveRecord rec);

  /// Oldest-to-newest copy of the ring.
  std::vector<SolveRecord> snapshot() const;

  /// Records ever seen (>= snapshot().size()).
  std::uint64_t total_recorded() const;

  /// Arms postmortem dumping to `path`. With install_handlers (global
  /// recorder only, POSIX), fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/
  /// SIGILL) write the pre-serialized ring to `path` before re-raising.
  void arm_postmortem(std::string path, bool install_handlers = false);
  bool postmortem_armed() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Writes the ring to the armed path with the given reason. Returns
  /// false when no postmortem is armed or the file cannot be opened.
  bool dump_postmortem(std::string_view reason) const;

  /// The "adsd-flight-v1" document: schema, reason, total_recorded, and
  /// the ring oldest-to-newest.
  void write_json(std::ostream& out, std::string_view reason) const;

  static FlightRecorder& global();

 private:
  void refresh_signal_buffer_locked() const;
  std::string to_json_locked(std::string_view reason) const;

  mutable std::mutex mutex_;
  std::vector<SolveRecord> ring_;  // circular, head_ = oldest
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::uint64_t total_ = 0;
  std::string postmortem_path_;
  std::atomic<bool> armed_{false};
  bool signal_buffer_ = false;  // this recorder feeds the signal buffer
};

}  // namespace adsd
