#pragma once

#include <string>

namespace adsd {

/// Instruction-set extensions the force-kernel dispatcher cares about,
/// probed once at runtime. On x86 every flag requires both the CPUID
/// feature bit and operating-system state support (XCR0 via XGETBV: the
/// kernel must save the ymm/zmm register file across context switches,
/// otherwise executing the instructions faults even though CPUID
/// advertises them). On non-x86 targets every flag is false and the
/// portable kernel tier is selected.
///
/// The struct is plain data on purpose: dispatch decisions take a
/// CpuFeatures value, so tests can mask features and exercise the whole
/// fallback chain on any host.
struct CpuFeatures {
  bool avx2 = false;     // AVX2 + OS ymm state
  bool fma = false;      // FMA3 + OS ymm state
  bool avx512f = false;  // AVX-512 Foundation + OS zmm state

  /// Human-readable summary ("avx2 fma avx512f" / "none") for logs.
  std::string summary() const;
};

/// Probes the executing CPU (CPUID + XGETBV on x86; all-false elsewhere).
CpuFeatures detect_cpu_features();

/// Cached process-wide probe result; what production dispatch uses.
const CpuFeatures& cpu_features();

}  // namespace adsd
