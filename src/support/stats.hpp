#pragma once

#include <cstddef>
#include <vector>

namespace adsd {

/// Numerically stable running mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Population variance (divides by n). Zero until two samples are seen.
  double variance() const;
  /// Sample variance (divides by n-1). Zero until two samples are seen.
  double sample_variance() const;
  double min() const { return min_; }
  double max() const { return max_; }

  void reset();

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Variance over a sliding window of the last `capacity` samples.
///
/// This is the statistic behind the paper's dynamic stop criterion
/// (Sec. 3.3.1): sample the Ising energy every `f` iterations and stop when
/// the variance over the last `s` samples falls below a threshold.
class WindowedVariance {
 public:
  explicit WindowedVariance(std::size_t capacity);

  void add(double x);

  /// True once `capacity` samples have been observed.
  bool full() const { return count_ >= capacity(); }
  std::size_t count() const { return count_ < buf_.size() ? count_ : buf_.size(); }
  std::size_t capacity() const { return buf_.size(); }

  /// Population variance over the samples currently in the window.
  /// Zero until two samples exist.
  double variance() const;
  double mean() const;

  void reset();

 private:
  std::vector<double> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

/// Arithmetic mean of a vector; 0 for empty input.
double mean_of(const std::vector<double>& xs);

/// Geometric mean of strictly positive values; throws otherwise.
double geometric_mean(const std::vector<double>& xs);

}  // namespace adsd
