#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>

#include "support/log.hpp"
#include "support/metrics.hpp"
#include "support/qor.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "support/timer.hpp"
#include "support/trace.hpp"

namespace adsd {

class ThreadPool;

/// Shared execution context for one solve run, threaded through the whole
/// stack (run_dalta / run_dalta_nd -> partition screening -> core COP
/// solvers -> the Ising engines). It owns the four cross-cutting concerns
/// every layer used to wire up separately:
///
///  - the ThreadPool handle (process-wide shared pool by default, or a
///    private pool when an explicit thread count is requested),
///  - a counter-based deterministic RNG stream factory: stream(tag, k...)
///    yields the same stream for the same (seed, tag, indices) regardless
///    of call order or thread count, replacing ad-hoc `seed + offset`
///    arithmetic,
///  - a wall-clock deadline/budget for anytime solvers,
///  - a hierarchical TelemetrySink aggregating per-solve spans and
///    counters lock-free into one JSON-serializable report.
///
/// The context is handed around as `const RunContext&`; telemetry and pool
/// access are const because both are internally synchronized.
class RunContext {
 public:
  struct Options {
    /// Root seed; every stream(tag, ...) derives from it.
    std::uint64_t seed = 42;

    /// kSharedPool uses the process-wide ThreadPool::shared(); any other
    /// value builds a private pool with that many workers (1 = serial
    /// participation-only execution, 0 = hardware concurrency).
    static constexpr std::size_t kSharedPool = static_cast<std::size_t>(-1);
    std::size_t threads = kSharedPool;

    /// Master parallelism switch; false keeps every layer on the calling
    /// thread regardless of pool size.
    bool parallel = true;

    /// Wall-clock budget in seconds, measured from context construction.
    /// Non-positive = unlimited.
    double time_budget_s = 0.0;

    /// Per-thread event tracing (spans / instants / counter samples with
    /// Chrome-trace and run-report export). Off by default: tracer()
    /// returns nullptr and every instrumentation site reduces to one
    /// pointer test. Tracing never perturbs results — recording only reads
    /// solver state, so a fixed-seed run is bit-identical either way.
    bool trace = false;

    /// Bound on buffered events per recording thread when tracing is on;
    /// beyond it whole spans are dropped (and counted), never torn.
    std::size_t trace_capacity = TraceRecorder::kDefaultCapacity;

    /// Quality-of-result recording (per-output error rates, partition
    /// accept/try counts, bSB convergence curves, LUT-bit totals, with
    /// qor.json export). Same discipline as trace: off by default, qor()
    /// returns nullptr, and recording never perturbs results — fixed-seed
    /// runs are bit-identical either way.
    bool qor = false;

    /// Bound on stored convergence-curve points when QoR recording is on;
    /// beyond it points are dropped (and counted).
    std::size_t qor_curve_capacity = QorRecorder::kDefaultCurveCapacity;

    /// Always-on aggregate metrics (counters / gauges / latency histograms
    /// with Prometheus exposition; see support/metrics.hpp). Arms the
    /// process-wide MetricsRegistry for this context's lifetime: metrics()
    /// returns &MetricsRegistry::global() and context-free sites see
    /// MetricsRegistry::armed() != nullptr. Same discipline as trace/qor:
    /// off by default, one pointer test per disarmed site, and recording
    /// never perturbs results — fixed-seed runs are bit-identical either
    /// way.
    bool metrics = false;

    /// Run provenance: the correlation ID stamped into every artifact this
    /// context produces — telemetry report, trace metadata, adsd-qor-v1
    /// header, metrics exemplars, flight records, and every log line — so
    /// one request can be joined across all observability pillars. Empty =
    /// minted at construction (16 hex chars); a caller-supplied value (the
    /// future daemon's request ID) is taken verbatim.
    std::string run_id;

    /// Optional caller-side parent correlation ID, carried alongside
    /// run_id in every artifact that has one. Never minted.
    std::string parent_id;

    /// Structured leveled logging (support/log.hpp). Arms the process-wide
    /// Logger for this context's lifetime with the run provenance above.
    /// Same discipline as metrics: off by default, one relaxed load per
    /// disarmed site, and logging never perturbs results — fixed-seed runs
    /// are bit-identical either way.
    bool log = false;

    /// Minimum severity emitted while log is armed.
    LogLevel log_level = LogLevel::kInfo;

    /// JSONL destination for log records; empty = stderr.
    std::string log_path;
  };

  RunContext() : RunContext(Options{}) {}
  explicit RunContext(Options options);
  explicit RunContext(std::uint64_t seed) : RunContext(make_seeded(seed)) {}
  ~RunContext();

  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  std::uint64_t seed() const { return options_.seed; }
  bool parallel() const { return options_.parallel; }

  /// This run's correlation ID (never empty — minted at construction when
  /// Options::run_id was). Stamped into every artifact; see
  /// Options::run_id.
  const std::string& run_id() const { return options_.run_id; }

  /// Caller-supplied parent correlation ID; empty when none was given.
  const std::string& parent_id() const { return options_.parent_id; }

  /// Deterministic stream seed for (tag, a, b, c): a keyed hash of the root
  /// seed, the tag string, and up to three counters. Streams with different
  /// tags or counters are statistically independent.
  std::uint64_t stream_seed(std::string_view tag, std::uint64_t a = 0,
                            std::uint64_t b = 0, std::uint64_t c = 0) const;

  /// Four-counter variant for call sites with an extra grid axis (e.g. the
  /// non-disjoint screener's (partition, slice) pairs). The d round is
  /// applied only when d != 0, so stream_seed(tag, a, b, c, 0) equals the
  /// three-counter value — existing streams keep their seeds and a new
  /// axis's slice 0 aliases the un-sliced stream by construction.
  std::uint64_t stream_seed(std::string_view tag, std::uint64_t a,
                            std::uint64_t b, std::uint64_t c,
                            std::uint64_t d) const;

  /// Ready-to-use generator over stream_seed().
  Rng stream(std::string_view tag, std::uint64_t a = 0, std::uint64_t b = 0,
             std::uint64_t c = 0) const {
    return Rng(stream_seed(tag, a, b, c));
  }

  /// Worker pool: the process-wide shared pool unless Options::threads
  /// selected a private one. Lazily resolved so serial contexts never spin
  /// up threads.
  ThreadPool& pool() const;

  const Deadline& deadline() const { return deadline_; }
  bool expired() const { return deadline_.expired(); }

  TelemetrySink& telemetry() const { return *telemetry_; }

  /// Event tracer, or nullptr when Options::trace was off. Pass the pointer
  /// straight to TraceSpan / trace_instant / trace_counter — all of them
  /// no-op on nullptr.
  TraceRecorder* tracer() const { return trace_.get(); }

  /// QoR recorder, or nullptr when Options::qor was off. qor_add/qor_sample
  /// no-op on nullptr; sites that must build the recorded value (strings,
  /// extra evaluations) should test the pointer themselves first.
  QorRecorder* qor() const { return qor_.get(); }

  /// The process-wide metrics registry, or nullptr when Options::metrics
  /// was off. Sites test the pointer and record through it directly.
  MetricsRegistry* metrics() const { return metrics_; }

  /// Re-exports this context's recorder drop counts (telemetry slot
  /// saturation, trace whole-span drops, QoR curve-point drops) into the
  /// metrics registry as *_dropped_total counters, so saturation is
  /// visible in a scrape, not just in per-run JSON. Delta-tracked and
  /// idempotent; called automatically at context destruction, and
  /// explicitly by exposition writers that scrape mid-run. No-op without
  /// metrics armed.
  void flush_drop_metrics() const;

  /// Process-wide fallback context used by convenience overloads that take
  /// no explicit context (seed 42, shared pool, no deadline). Its telemetry
  /// sink aggregates across all such calls.
  static const RunContext& fallback();

 private:
  static Options make_seeded(std::uint64_t seed) {
    Options o;
    o.seed = seed;
    return o;
  }

  Options options_;
  Deadline deadline_;
  std::unique_ptr<TelemetrySink> telemetry_;
  std::unique_ptr<TraceRecorder> trace_;
  std::unique_ptr<QorRecorder> qor_;
  MetricsRegistry* metrics_ = nullptr;
  bool log_armed_ = false;  // this context holds one Logger::arm reference
  // Last drop counts already exported, so repeated flushes add deltas.
  mutable std::atomic<std::uint64_t> exported_telemetry_drops_{0};
  mutable std::atomic<std::uint64_t> exported_trace_drops_{0};
  mutable std::atomic<std::uint64_t> exported_qor_drops_{0};
  mutable std::unique_ptr<ThreadPool> owned_pool_;
  mutable std::mutex pool_mutex_;
};

}  // namespace adsd
