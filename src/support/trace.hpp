#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace adsd {

class TelemetrySink;

/// Per-thread, lock-free event tracer for one solve run.
///
/// Complements the aggregating TelemetrySink: where the sink answers "how
/// much / how many" with per-path totals, the recorder keeps the *timeline*
/// — which thread did what, when — so a whole run_dalta is one navigable
/// flame graph and bSB convergence (energy trajectory, stop variance,
/// Theorem-3 interventions) can be read off per sampling point.
///
/// Design:
///  - Every recording thread owns a private ThreadBuffer (events + interned
///    name table), registered once under a mutex on that thread's first
///    event and cached thread-locally afterwards, so the hot path is a
///    plain vector append with zero synchronization. No ordering exists
///    between buffers; per-thread order is program order, which is exactly
///    what span nesting needs.
///  - Buffers are bounded. Begin events reserve the slot for their matching
///    end, so a saturated buffer drops whole spans (counted in dropped()),
///    never half of one — exported traces always balance.
///  - Timestamps are nanoseconds on the steady clock since the recorder's
///    construction, shared across threads.
///
/// A null TraceRecorder* is the disabled state: TraceSpan and the free
/// helpers below no-op on nullptr, so instrumentation sites record
/// unconditionally and a run without --trace pays one pointer test.
///
/// Export:
///  - write_chrome_json(): Chrome trace_event JSON array format, loadable
///    in chrome://tracing and Perfetto (B/E duration events per thread,
///    C counter events, i instants, M thread-name metadata).
///  - write_report_json(): compact run report — per span path the count,
///    total/mean/min/max and p50/p95/p99 latencies (nearest-rank), counter
///    series summaries, per-thread event counts and utilization, plus the
///    TelemetrySink report embedded when a sink is supplied.
class TraceRecorder {
 public:
  enum class EventType : std::uint8_t {
    kBegin = 0,
    kEnd = 1,
    kInstant = 2,
    kCounter = 3,
  };

  struct Event {
    std::uint64_t ts_ns = 0;
    double value = 0.0;     // counter sample (kCounter only)
    std::uint32_t name = 0; // index into the owning buffer's name table
    EventType type = EventType::kInstant;
  };

  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // events/thread

  explicit TraceRecorder(std::size_t capacity_per_thread = kDefaultCapacity);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Nanoseconds since recorder construction on the steady clock.
  std::uint64_t now_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  /// Opaque handle of one open span; returned by begin() and consumed by
  /// end(). A default-constructed token is inert (dropped or disabled).
  struct SpanToken {
    void* buffer = nullptr;
    std::uint32_t name = 0;
  };

  /// Opens a span on the calling thread. Returns an inert token when the
  /// thread's buffer is saturated (the drop is counted).
  SpanToken begin(std::string_view name);

  /// Closes a span opened by begin() — must run on the same thread.
  void end(SpanToken token);

  /// Point event / counter sample on the calling thread's timeline.
  void instant(std::string_view name);
  void counter(std::string_view name, double value);

  /// Raw append with an explicit timestamp, on the calling thread's buffer.
  /// Used by the report tests to stage exactly-known durations; subject to
  /// the same capacity accounting as the clocked API.
  void emit(EventType type, std::string_view name, std::uint64_t ts_ns,
            double value = 0.0);

  /// Events recorded across all threads (export-time accounting, takes the
  /// registry lock; not for hot paths).
  std::size_t event_count() const;

  /// Events rejected because a thread buffer was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Provenance stamped into both exports (Chrome "otherData" and the run
  /// report "meta"). Set once by RunContext at construction, before any
  /// concurrent recording; empty values are omitted.
  void set_run(std::string run_id, std::string parent_id) {
    run_id_ = std::move(run_id);
    parent_id_ = std::move(parent_id);
  }
  const std::string& run_id() const { return run_id_; }

  std::size_t thread_count() const;

  /// Chrome trace_event JSON: {"traceEvents": [...], ...}.
  void write_chrome_json(std::ostream& out) const;

  /// Compact run report; embeds `telemetry`'s report when non-null.
  void write_report_json(std::ostream& out,
                         const TelemetrySink* telemetry = nullptr) const;

  std::string chrome_json() const;
  std::string report_json(const TelemetrySink* telemetry = nullptr) const;

  /// Nearest-rank quantile of an ascending-sorted sample vector: the
  /// ceil(q*N)-th smallest value (q in (0,1]; N >= 1). Exposed so tests can
  /// pin the report's p50/p95/p99 definition.
  static double quantile_sorted(const std::vector<double>& sorted_ascending,
                                double q);

 private:
  struct ThreadBuffer;

  ThreadBuffer& local_buffer();

  std::chrono::steady_clock::time_point epoch_;
  std::size_t capacity_;
  std::uint64_t id_;  // process-unique, for the thread-local cache
  std::atomic<std::uint64_t> dropped_{0};
  std::string run_id_;
  std::string parent_id_;

  mutable std::mutex registry_mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span; no-ops on a null recorder. Must be destroyed on the thread
/// that created it (stack scoping gives this for free).
class TraceSpan {
 public:
  TraceSpan() = default;
  TraceSpan(TraceRecorder* recorder, std::string_view name)
      : recorder_(recorder) {
    if (recorder_ != nullptr) {
      token_ = recorder_->begin(name);
    }
  }
  TraceSpan(TraceSpan&& other) noexcept
      : recorder_(other.recorder_), token_(other.token_) {
    other.recorder_ = nullptr;
    other.token_ = {};
  }
  TraceSpan& operator=(TraceSpan&& other) noexcept {
    if (this != &other) {
      close();
      recorder_ = other.recorder_;
      token_ = other.token_;
      other.recorder_ = nullptr;
      other.token_ = {};
    }
    return *this;
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  ~TraceSpan() { close(); }

 private:
  void close() {
    if (recorder_ != nullptr) {
      recorder_->end(token_);
      recorder_ = nullptr;
      token_ = {};
    }
  }

  TraceRecorder* recorder_ = nullptr;
  TraceRecorder::SpanToken token_{};
};

/// Null-safe free helpers for instrumentation sites.
inline void trace_instant(TraceRecorder* recorder, std::string_view name) {
  if (recorder != nullptr) {
    recorder->instant(name);
  }
}

inline void trace_counter(TraceRecorder* recorder, std::string_view name,
                          double value) {
  if (recorder != nullptr) {
    recorder->counter(name, value);
  }
}

}  // namespace adsd
