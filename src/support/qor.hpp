#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adsd {

/// Quality-of-result recorder for one solve run.
///
/// Complements the TelemetrySink/TraceRecorder pair: where those observe how
/// long the solver took and where the time went, the QorRecorder observes
/// what the solver *achieved* — per-output error rate of the committed
/// decompositions, accepted-vs-tried candidate partitions, the objective
/// distribution per core solver, bSB best-energy-vs-iteration convergence
/// curves, Theorem-3 polish deltas, and the final LUT-bit cost against the
/// exact 2^n baseline. These are the axes decomposition / Ising-machine
/// papers evaluate on, exported machine-readable so tools/bench_diff can
/// gate regressions in CI.
///
/// Discipline (identical to TraceRecorder):
///  - Armed via RunContext::Options::qor; RunContext::qor() returns nullptr
///    when off, and every instrumentation site reduces to a single pointer
///    test on that path.
///  - Recording only *reads* solver state — it never perturbs RNG streams,
///    candidate ordering, or arithmetic — so a fixed-seed run is
///    bit-identical with recording on or off (tested).
///  - Thread-safe: the DALTA candidate fan-out records from pool workers.
///    Sites record at decision/sampling granularity (not per Euler step),
///    so a mutex is cheap relative to the work between records.
///  - Convergence-curve storage is bounded; points beyond the capacity are
///    dropped and counted, never silently lost.
///
/// Export: write_json() emits the versioned `qor.json` schema
/// ("adsd-qor-v1", built on support/json's writer; see DESIGN.md §4.5).
class QorRecorder {
 public:
  /// Bound on stored convergence-curve points across all curves.
  static constexpr std::size_t kDefaultCurveCapacity = 1u << 15;

  explicit QorRecorder(std::size_t curve_capacity = kDefaultCurveCapacity);

  QorRecorder(const QorRecorder&) = delete;
  QorRecorder& operator=(const QorRecorder&) = delete;

  /// Monotonic named totals (Theorem-3 resets, anti-collapse interventions,
  /// budget rescales, partitions screened, ...).
  void add(std::string_view name, double delta = 1.0);

  /// Distribution sample: tracks count / min / max / sum per name
  /// (per-solver objectives, Theorem-3 polish deltas, rescaled iteration
  /// budgets, ...).
  void sample(std::string_view name, double value);

  /// One committed (round, output) decision of the DALTA outer loop.
  struct OutputRecord {
    std::string stage;            // "dalta" | "dalta_nd"
    std::size_t round = 0;
    std::size_t output = 0;       // output bit index k
    std::size_t tried = 0;        // candidate partitions evaluated
    double best_objective = 0.0;  // committed candidate
    double worst_objective = 0.0; // worst evaluated candidate
    double error_rate = 0.0;      // committed output bit vs the exact bit
  };
  void record_output(OutputRecord rec);

  /// Opens a bSB convergence curve and returns its id; feed sampling points
  /// with curve_point(). Ids are assigned in registration order (which may
  /// interleave across threads — curves are independent, order is not
  /// meaningful).
  std::uint64_t begin_curve(std::string_view name);

  /// One (iteration, ensemble-best energy) sampling point of curve `id`.
  void curve_point(std::uint64_t id, std::uint64_t iteration,
                   double best_energy);

  /// End-of-run summary of one run_dalta / run_dalta_nd invocation. A
  /// context shared across several runs (the bench harnesses) accumulates
  /// one Final per run; final_summary() returns the last.
  struct FinalOutput {
    double error_rate = 0.0;
    std::uint64_t lut_bits = 0;   // 2^|B| + 2^(|A|+1) (stored)
    std::uint64_t flat_bits = 0;  // 2^n (exact baseline)
  };
  struct Final {
    std::string stage;
    double med = 0.0;
    double error_rate = 0.0;
    std::uint64_t lut_bits = 0;
    std::uint64_t flat_bits = 0;
    std::vector<FinalOutput> outputs;  // index = output bit k
  };
  void record_final(Final fin);

  /// Curve points rejected because the capacity was exhausted.
  std::uint64_t dropped() const;

  /// Provenance stamped into the adsd-qor-v1 header ("run_id" /
  /// "parent_id"). Set once by RunContext at construction, before any
  /// concurrent recording; empty values are omitted.
  void set_run(std::string run_id, std::string parent_id) {
    run_id_ = std::move(run_id);
    parent_id_ = std::move(parent_id);
  }
  const std::string& run_id() const { return run_id_; }

  bool has_final() const;
  Final final_summary() const;  // last recorded Final; throws if none
  double counter(std::string_view name) const;  // 0 when never recorded
  std::size_t curve_count() const;
  std::size_t decision_count() const;

  /// The versioned qor.json document ("schema": "adsd-qor-v1").
  void write_json(std::ostream& out) const;
  std::string to_json() const;

 private:
  struct Dist {
    std::size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
  };
  struct Curve {
    std::string name;
    std::vector<std::pair<std::uint64_t, double>> points;
  };

  std::size_t curve_capacity_;

  mutable std::mutex mutex_;
  std::string run_id_;
  std::string parent_id_;
  std::map<std::string, double, std::less<>> counters_;
  std::map<std::string, Dist, std::less<>> samples_;
  std::vector<OutputRecord> decisions_;
  std::vector<Curve> curves_;
  std::size_t curve_points_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<Final> finals_;
};

/// Cross-run win-rate accumulator for the portfolio meta-solver's adapt
/// mode (DESIGN.md §4.8): counts, per (instance family, member) pair, how
/// many races the member entered and how many it won. Families are short
/// keys like "r5c12" (core-COP shape), so the table learns per-function-
/// family which engines pay off and the portfolio can reorder/prune
/// members on later rounds. Thread-safe (DALTA races from pool workers);
/// lives for the solver's lifetime, independent of any RunContext, so the
/// accumulated records span every run the solver serves.
class WinRateTable {
 public:
  struct Stat {
    std::uint64_t trials = 0;
    std::uint64_t wins = 0;
  };

  /// Records one race entry for `member` on `family`; `won` marks the race
  /// winner (ties go to the configured anchor, so at most one win per race).
  void record(std::string_view family, std::string_view member, bool won);

  /// Totals for one (family, member) pair; zeros when never raced.
  Stat stat(std::string_view family, std::string_view member) const;

  /// Empirical win rate in [0, 1]; optimistic 1.0 when the pair has no
  /// trials yet, so unexplored members sort ahead of known losers.
  double win_rate(std::string_view family, std::string_view member) const;

  /// Total race entries recorded across all pairs.
  std::uint64_t total_trials() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::string>, Stat> stats_;
};

/// Null-safe helpers mirroring trace_instant/trace_counter: sites record
/// unconditionally and a disarmed recorder costs one pointer test. Callers
/// that would pay to *build* the recorded value (string concatenation,
/// objective evaluation) should test the pointer themselves instead.
inline void qor_add(QorRecorder* qor, std::string_view name,
                    double delta = 1.0) {
  if (qor != nullptr) {
    qor->add(name, delta);
  }
}

inline void qor_sample(QorRecorder* qor, std::string_view name, double value) {
  if (qor != nullptr) {
    qor->sample(name, value);
  }
}

}  // namespace adsd
